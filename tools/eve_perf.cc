/**
 * @file
 * eve_perf — simulator-performance harness: sim-speed measurement
 * and the timing-parity guard, over an arbitrary slice of the
 * Table III grid.
 *
 *   eve_perf --small --check tests/golden/timing_parity_small.txt
 *   eve_perf --iters 3 --json speed.json --baseline-jps 12.5
 *   eve_perf --systems O3EVE --pf 8 --workloads vvadd --small
 *
 * Flags:
 *   --systems A,B     system kinds (default: all Table III kinds)
 *   --pf N,M          EVE parallelization factors (default 1..32)
 *   --workloads a,b   workload names (default: the paper's seven)
 *   --small           small smoke-test inputs
 *   --paper           paper-scale inputs (mmult 1024x1024x1024);
 *                     meant to be combined with --sample
 *   --sample SPEC     interval sampling (sim/sampling.hh): "default",
 *                     "INTERVAL[,WARMUP[,STRIDE]]", or the canonical
 *                     "interval=N;warmup=N;stride=N". Incompatible
 *                     with --parity/--check/--update: goldens record
 *                     exact timing.
 *   --checkpoint-dir PATH  save/restore functional fast-forward
 *                     checkpoints for sampled jobs under PATH
 *   --iters N         measurement iterations (default 1)
 *   --threads N       job-level worker threads (default 1). With
 *                     N > 1 the grid runs on a thread pool — right
 *                     for fast parity runs — and the speed table is
 *                     suppressed: per-job wall times overlap, so
 *                     jobs/s would be meaningless.
 *   --sim-threads N   threads pipelining each simulation (default 1;
 *                     timing-parity guarded, so a pure wall-clock
 *                     knob)
 *   --json PATH       write the speed report as JSON
 *   --baseline-jps X  record speedup vs. a baseline jobs/sec
 *   --parity PATH     timing-parity check against golden PATH
 *                     (exit 1 and list divergences on failure);
 *                     --check PATH is the historical spelling
 *   --update PATH     write fresh golden fingerprints to PATH
 *   --quiet           suppress the speed table
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "driver/table.hh"
#include "exp/perf.hh"
#include "exp/runner.hh"

using namespace eve;

namespace
{

std::vector<std::string>
splitList(const std::string& arg)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char c : arg) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

SystemKind
parseKind(const std::string& name)
{
    if (name == "IO") return SystemKind::IO;
    if (name == "O3") return SystemKind::O3;
    if (name == "O3IV") return SystemKind::O3IV;
    if (name == "O3DV") return SystemKind::O3DV;
    if (name == "O3EVE") return SystemKind::O3EVE;
    fatal("unknown system kind '%s' (want IO, O3, O3IV, O3DV, or "
          "O3EVE)", name.c_str());
}

} // namespace

int
main(int argc, char** argv)
{
    setInformEnabled(false);

    std::vector<std::string> system_kinds;
    std::vector<unsigned> pfs = {1, 2, 4, 8, 16, 32};
    std::vector<std::string> workloads = exp::paperWorkloads();
    bool small = false;
    bool paper = false;
    bool quiet = false;
    unsigned iters = 1;
    unsigned threads = 1;
    unsigned sim_threads = 1;
    std::string json_path, check_path, update_path;
    std::string sample_spec, checkpoint_dir;
    double baseline_jps = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--systems")
            system_kinds = splitList(value());
        else if (arg == "--pf") {
            pfs.clear();
            for (const auto& tok : splitList(value()))
                pfs.push_back(
                    unsigned(std::strtoul(tok.c_str(), nullptr, 10)));
        } else if (arg == "--workloads")
            workloads = splitList(value());
        else if (arg == "--small")
            small = true;
        else if (arg == "--paper")
            paper = true;
        else if (arg == "--sample")
            sample_spec = value();
        else if (arg == "--checkpoint-dir")
            checkpoint_dir = value();
        else if (arg == "--iters")
            iters = unsigned(std::strtoul(value().c_str(), nullptr, 10));
        else if (arg == "--threads")
            threads =
                unsigned(std::strtoul(value().c_str(), nullptr, 10));
        else if (arg == "--sim-threads")
            sim_threads =
                unsigned(std::strtoul(value().c_str(), nullptr, 10));
        else if (arg == "--json")
            json_path = value();
        else if (arg == "--baseline-jps")
            baseline_jps = std::strtod(value().c_str(), nullptr);
        else if (arg == "--check" || arg == "--parity")
            check_path = value();
        else if (arg == "--update")
            update_path = value();
        else if (arg == "--quiet")
            quiet = true;
        else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: eve_perf [--systems LIST] [--pf LIST]\n"
                "  [--workloads LIST] [--small | --paper] [--iters N]\n"
                "  [--sample SPEC] [--checkpoint-dir PATH]\n"
                "  [--threads N] [--sim-threads N]\n"
                "  [--json PATH] [--baseline-jps X]\n"
                "  [--parity GOLDEN | --check GOLDEN |\n"
                "   --update GOLDEN] [--quiet]\n"
                "\n"
                "--threads N > 1 runs the grid on a job-level thread\n"
                "pool (fast parity runs); the speed table and --json\n"
                "are unavailable because per-job wall times overlap.\n"
                "--sim-threads N pipelines each simulation; timing is\n"
                "byte-identical at any value (parity-guarded).\n");
            return 0;
        } else
            fatal("unknown flag '%s' (try --help)", arg.c_str());
    }

    std::vector<SystemConfig> systems;
    if (system_kinds.empty()) {
        systems = exp::tableIIISystems();
    } else {
        for (const auto& name : system_kinds) {
            const SystemKind kind = parseKind(name);
            if (kind == SystemKind::O3EVE) {
                for (unsigned pf : pfs) {
                    SystemConfig cfg;
                    cfg.kind = kind;
                    cfg.eve_pf = pf;
                    systems.push_back(cfg);
                }
            } else {
                SystemConfig cfg;
                cfg.kind = kind;
                systems.push_back(cfg);
            }
        }
    }

    if (small && paper)
        fatal("--small and --paper are mutually exclusive");
    const std::string scale =
        paper ? "paper" : (small ? "small" : "full");

    SamplingConfig sampling;
    if (!sample_spec.empty() &&
        !parseSamplingFlag(sample_spec, sampling))
        fatal("--sample: bad spec '%s' (want \"default\", "
              "\"INTERVAL[,WARMUP[,STRIDE]]\", or "
              "\"interval=N;warmup=N;stride=N\")",
              sample_spec.c_str());
    if (sampling.enabled() &&
        (!check_path.empty() || !update_path.empty()))
        fatal("--sample cannot be combined with --parity/--check/"
              "--update: parity goldens record exact timing "
              "fingerprints");

    exp::SweepSpec spec;
    spec.systems(systems);
    spec.workloads(workloads, scale);
    spec.sampling(sampling);
    const auto jobs = spec.jobs();

    exp::SpeedReport report;
    if (threads > 1) {
        // Pooled execution overlaps per-job wall times, so speed
        // numbers would be meaningless — this mode exists for fast
        // parity runs over large grids.
        if (!json_path.empty())
            fatal("--json needs --threads 1 (speed numbers are only "
                  "meaningful when jobs run serially)");
        exp::RunnerOptions ropts;
        ropts.threads = threads;
        ropts.sim_threads = sim_threads;
        ropts.checkpoint_dir = checkpoint_dir;
        report.results = exp::Runner(ropts).run(jobs);
        for (const auto& r : report.results)
            if (r.status != exp::JobStatus::Ok)
                fatal("job '%s' %s%s%s", r.label.c_str(),
                      exp::jobStatusName(r.status),
                      r.error.empty() ? "" : ": ", r.error.c_str());
    } else {
        report = exp::measureSimSpeed(jobs, iters, sim_threads,
                                      checkpoint_dir);
    }

    if (!quiet && threads > 1) {
        std::fprintf(stderr,
                     "%zu jobs on %u threads (speed table suppressed; "
                     "use --threads 1 to measure)\n",
                     report.results.size(), threads);
    }
    if (!quiet && threads <= 1) {
        TextTable table({"system", "jobs", "wall_s", "jobs/s",
                         "ns/cycle"});
        for (const auto& ss : report.per_system)
            table.addRow({ss.system, std::to_string(ss.jobs),
                          TextTable::num(ss.wall_seconds, 3),
                          TextTable::num(ss.jobs_per_sec, 2),
                          TextTable::num(ss.ns_per_sim_cycle, 1)});
        table.addRow({"total", std::to_string(report.jobs),
                      TextTable::num(report.wall_seconds, 3),
                      TextTable::num(report.jobs_per_sec, 2),
                      TextTable::num(report.ns_per_sim_cycle, 1)});
        std::printf("%s\n", table.render().c_str());
        if (baseline_jps > 0)
            std::printf("speedup vs. baseline (%.2f jobs/s): %.2fx\n",
                        baseline_jps,
                        report.jobs_per_sec / baseline_jps);
    }

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out)
            fatal("cannot open '%s' for writing", json_path.c_str());
        out << exp::speedReportJson(report, "custom", baseline_jps)
            << '\n';
        if (!out)
            fatal("write to '%s' failed", json_path.c_str());
    }

    if (!update_path.empty()) {
        exp::ParityFile::fromResults(report.results, scale)
            .save(update_path);
        std::fprintf(stderr, "parity goldens: %s\n",
                     update_path.c_str());
    }
    if (!check_path.empty()) {
        const auto diffs = exp::ParityFile::load(check_path).check(
            report.results, scale);
        if (!diffs.empty()) {
            for (const auto& d : diffs)
                std::fprintf(stderr, "parity: %s\n", d.c_str());
            fatal("timing parity violated: %zu grid points diverge "
                  "from %s",
                  diffs.size(), check_path.c_str());
        }
        std::printf("timing parity: %zu grid points byte-identical "
                    "to %s\n",
                    report.results.size(), check_path.c_str());
    }
    return 0;
}
