/**
 * @file
 * eve_report — one command from a sweep directory to the paper's
 * figures, and the regression gate between two runs.
 *
 *   eve_report SWEEP_DIR [--out DIR] [--baseline DIR]
 *              [--max-regress PCT] [--quiet]
 *
 * SWEEP_DIR is any directory holding sweep JSONL artifacts (what
 * eve_sweep --json writes, what the benches drop via EVE_EXP_OUT_DIR,
 * or a daemon client's stream capture). The report groups the
 * records, prints fig6/fig7/fig8/Table III/Table IV equivalents, and
 * writes each as CSV + gnuplot script + SVG under --out (default
 * SWEEP_DIR/report).
 *
 * With --baseline PRIOR_DIR the simulated metrics of every cell are
 * diffed against the prior run and the per-cell deltas printed;
 * --max-regress PCT (default 0) turns that into an exit-status gate:
 * any cycles/seconds regression above the bound, any status
 * degradation, or any baseline cell missing from the current run
 * exits 1. Identical runs always report zero deltas — host wall time
 * is excluded from the comparison by design.
 *
 * Exit codes: 0 ok, 1 gate failed, 2 no records found / bad usage.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "driver/table.hh"
#include "report/figures.hh"
#include "report/report.hh"

using namespace eve;

namespace
{

void
usage()
{
    std::printf(
        "usage: eve_report SWEEP_DIR [options]\n"
        "\n"
        "Turn a directory of sweep JSONL artifacts into the paper's\n"
        "figure tables and (optionally) a regression report.\n"
        "\n"
        "options:\n"
        "  --out DIR          artifact directory "
        "(default SWEEP_DIR/report)\n"
        "  --baseline DIR     prior sweep directory to diff against\n"
        "  --max-regress PCT  fail (exit 1) on any cycles/seconds\n"
        "                     regression above PCT%% (default 0)\n"
        "  --quiet            suppress the figure tables on stdout\n"
        "  --help             this text\n"
        "\n"
        "figures written (per non-empty table, as .csv + .gp + .svg):\n"
        "  fig6_performance        speed-up over IO per workload\n"
        "  fig7_breakdown          EVE execution breakdown vs EVE-1\n"
        "  fig8_vmu_stalls         VMU cache-induced stall %%\n"
        "  table3_systems          per-system record inventory\n"
        "  table4_characterization per-workload instruction mix\n");
}

std::string
cellText(double v)
{
    if (v != v)  // NaN: missing cell
        return "";
    return TextTable::num(v, 3);
}

void
printFigure(const report::FigureTable& fig)
{
    if (fig.empty())
        return;
    std::printf("%s (%s)\n", fig.title.c_str(), fig.name.c_str());
    std::vector<std::string> headers = {fig.row_header};
    headers.insert(headers.end(), fig.columns.begin(),
                   fig.columns.end());
    TextTable table(headers);
    for (std::size_t r = 0; r < fig.rows.size(); ++r) {
        std::vector<std::string> row = {fig.rows[r]};
        for (std::size_t c = 0; c < fig.columns.size(); ++c)
            row.push_back(cellText(fig.at(r, c)));
        table.addRow(row);
    }
    std::printf("%s", table.render().c_str());
    if (!fig.note.empty())
        std::printf("%s\n", fig.note.c_str());
    std::printf("\n");
}

} // namespace

int
main(int argc, char** argv)
{
    std::string sweep_dir;
    std::string out_dir;
    std::string baseline_dir;
    double max_regress = 0;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "eve_report: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--out") {
            out_dir = value();
        } else if (arg == "--baseline") {
            baseline_dir = value();
        } else if (arg == "--max-regress") {
            max_regress = std::atof(value().c_str());
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "eve_report: unknown option %s\n",
                         arg.c_str());
            usage();
            return 2;
        } else if (sweep_dir.empty()) {
            sweep_dir = arg;
        } else {
            std::fprintf(stderr, "eve_report: extra argument %s\n",
                         arg.c_str());
            return 2;
        }
    }
    if (sweep_dir.empty()) {
        usage();
        return 2;
    }
    if (out_dir.empty())
        out_dir = sweep_dir + "/report";

    report::LoadStats stats;
    const auto records = report::loadSweepDir(sweep_dir, &stats);
    if (records.empty()) {
        std::fprintf(stderr,
                     "eve_report: no sweep records under %s "
                     "(%zu files scanned, %zu lines skipped)\n",
                     sweep_dir.c_str(), stats.files,
                     stats.skipped_lines);
        return 2;
    }
    std::fprintf(stderr,
                 "eve_report: %zu records from %zu files under %s\n",
                 stats.records, stats.files, sweep_dir.c_str());
    if (stats.skipped_lines)
        std::fprintf(stderr,
                     "eve_report: %zu malformed lines skipped\n",
                     stats.skipped_lines);

    const auto figures = report::buildAll(records);
    if (!quiet)
        for (const auto& fig : figures)
            printFigure(fig);
    const auto written =
        report::writeFigureArtifacts(figures, out_dir);
    std::fprintf(stderr, "eve_report: %zu artifacts under %s\n",
                 written.size(), out_dir.c_str());

    if (baseline_dir.empty())
        return 0;

    report::LoadStats base_stats;
    const auto baseline =
        report::loadSweepDir(baseline_dir, &base_stats);
    if (baseline.empty()) {
        std::fprintf(stderr,
                     "eve_report: no baseline records under %s\n",
                     baseline_dir.c_str());
        return 2;
    }
    const auto delta = report::compareRuns(records, baseline);
    std::printf("regression report vs %s: %zu cells compared, "
                "%zu deltas, worst regression %.3f%%\n",
                baseline_dir.c_str(), delta.cells,
                delta.deltas.size(), delta.worst_regress_pct);
    for (const auto& line : report::renderDeltas(delta))
        std::printf("  %s\n", line.c_str());
    if (!report::gatePassed(delta, max_regress)) {
        std::printf("GATE FAILED (max-regress %.3f%%: worst %.3f%%, "
                    "%zu status degradations, %zu baseline cells "
                    "missing)\n",
                    max_regress, delta.worst_regress_pct,
                    delta.status_degradations,
                    delta.missing_in_current.size());
        return 1;
    }
    std::printf("gate passed (max-regress %.3f%%)\n", max_regress);
    return 0;
}
