/**
 * @file
 * eve_sweep — gem5-runner-style command-line front end for the
 * experiment subsystem. Every axis is a comma-separated flag; the
 * cartesian product runs on a thread pool and lands in JSONL/CSV.
 *
 *   eve_sweep --systems O3,O3EVE --pf 4,8 --workloads vvadd,backprop
 *             --llc-mshrs 32,64 --threads 8 --small
 *             --json out.jsonl --csv out.csv
 *
 * With --jobs-dir the same sweep runs over the distributed job-file
 * protocol (exp/dist.hh): the orchestrator materializes claim files
 * under the directory and executes through in-process lanes, while
 * any number of `eve_sweep --worker --jobs-dir DIR` processes — on
 * this host or on others sharing the directory — claim and run jobs
 * alongside it.
 *
 * Flags:
 *   --systems   IO,O3,O3IV,O3DV,O3EVE   (default O3EVE)
 *   --pf        EVE parallelization factors     (axis)
 *   --llc-mshrs LLC MSHR counts                 (axis)
 *   --l2-mshrs  L2 MSHR counts                  (axis)
 *   --dtus      data-transfer-unit counts       (axis)
 *   --prefetch  LLC prefetch line depths        (axis)
 *   --workloads workload names (default: all paper workloads)
 *   --threads   worker threads (default: hardware concurrency)
 *   --sim-threads N  threads pipelining each simulation (default 1).
 *               Simulated timing is byte-identical at any value
 *               (parity-guarded), so results and cache keys are
 *               unaffected — a pure wall-clock knob. Applies to
 *               in-process lanes and --worker execution alike.
 *   --parity GOLDEN  after the sweep, check every result's timing
 *               fingerprint against the golden file (same format and
 *               semantics as `eve_perf --parity`); exit 1 and list
 *               divergences on failure. Parity needs fresh Ok runs,
 *               so combine with --no-cache.
 *   --small     use small smoke-test inputs
 *   --paper     use paper-scale inputs (mmult 1024x1024x1024); meant
 *               to be combined with --sample
 *   --sample SPEC  interval sampling (sim/sampling.hh): "default",
 *               "INTERVAL[,WARMUP[,STRIDE]]", or the canonical
 *               "interval=N;warmup=N;stride=N". Cycle counts are
 *               extrapolated from the measured windows, results are
 *               tagged sampled, and cache/job keys include the
 *               schedule so sampled and exact records never mix.
 *               Incompatible with --parity (goldens are exact).
 *               Defaults to $EVE_EXP_SAMPLE when set.
 *   --checkpoint-dir PATH  save/restore functional fast-forward
 *               checkpoints for sampled jobs under PATH; jobs that
 *               share a (workload, scale, vector-length, schedule)
 *               prefix restore one snapshot instead of re-running
 *               the functional warm-up. Defaults to
 *               $EVE_EXP_CKPT_DIR when set.
 *   --keep-going / --abort-on-failure  failure policy (default keep)
 *   --json PATH write JSON lines        --csv PATH write CSV
 *   --json-payload PATH  write JSON lines without the host wall-clock
 *               field; byte-comparable across runs/hosts/thread counts
 *   --cache-dir PATH  content-hash result cache: jobs whose key
 *               (canonical config + workload + scale + simulator
 *               salt) is already stored are not re-simulated, and
 *               fresh Ok results are stored back — a repeated
 *               invocation executes 0 jobs and emits byte-identical
 *               JSONL. Defaults to $EVE_EXP_CACHE_DIR when set.
 *   --no-cache  disable the result cache (overrides both)
 *   --quiet     suppress progress lines
 *
 * Distributed flags (see docs/OPERATIONS.md):
 *   --jobs-dir DIR   run the sweep over the job-file protocol under
 *               DIR. Defaults to $EVE_EXP_JOBS_DIR when set.
 *   --worker    claim-and-execute loop over --jobs-dir; needs no
 *               sweep flags (jobs are rebuilt from their files).
 *               SIGINT/SIGTERM make the worker finish and publish
 *               its in-flight job, then exit cleanly; a second
 *               signal kills it immediately.
 *   --status    print the jobs directory's state (plus this binary's
 *               version and simulator salt) and exit: 0 when the
 *               sweep is complete, 2 when quarantined jobs need an
 *               operator, 1 otherwise
 *   --stop      ask every worker on --jobs-dir to exit, then exit
 *   --orchestrate-only  orchestrate with zero local execution lanes
 *               (claim files + reclaim + merge only)
 *   --worker-id ID      stable lease identity (default <host>-<pid>)
 *   --lease-timeout SEC seconds before an unrenewed lease is
 *               reclaimed (default 60)
 *   --heartbeat SEC     lease renewal period (default 2)
 *   --poll SEC          idle rescan period (default 0.25)
 *   --join-timeout SEC  worker wait for the manifest (default 600)
 *   --max-attempts N    claims per job before quarantine (default 3)
 *   --persistent        worker: serve a growing job pool; never exit
 *               because the directory looks momentarily complete
 *   --idle-exit SEC     worker: retire after SEC without a claim
 *
 * Service flags (sweep-as-a-service; see docs/OPERATIONS.md):
 *   --serve     run the persistent sweep daemon over --jobs-dir:
 *               listen on --socket, pool submissions from any number
 *               of clients (identical jobs across tenants execute
 *               once), stream results back, and run an elastic local
 *               worker fleet. SIGTERM/SIGINT drain gracefully.
 *   --submit    send this invocation's sweep to a daemon instead of
 *               executing locally; all output flags work unchanged
 *               and the merged results are byte-identical to a local
 *               batch run
 *   --watch     stream the daemon's status line until interrupted
 *   --shutdown  ask the daemon to drain and exit
 *   --hello     print the daemon's identity (version/salt) and exit
 *   --socket PATH       daemon socket (default $EVE_SVC_SOCKET, else
 *               <jobs-dir>/daemon.sock)
 *   --sweep-name NAME   submission name shown in daemon logs
 *   --min-workers N     long-lived worker floor (default 1)
 *   --max-workers N     fleet ceiling (default: hw concurrency)
 *   --idle-exit SEC     surge-worker retirement idle time (serve
 *               mode default 5)
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "common/version.hh"
#include "driver/table.hh"
#include "exp/exp.hh"
#include "exp/perf.hh"
#include "svc/client.hh"
#include "svc/service.hh"
#include "workloads/workload.hh"

using namespace eve;

namespace
{

std::vector<std::string>
splitList(const std::string& arg)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char c : arg) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::vector<unsigned>
splitUnsigned(const std::string& flag, const std::string& arg)
{
    std::vector<unsigned> out;
    for (const auto& tok : splitList(arg)) {
        char* end = nullptr;
        const unsigned long v = std::strtoul(tok.c_str(), &end, 10);
        if (!end || *end != '\0')
            fatal("%s: '%s' is not a number", flag.c_str(),
                  tok.c_str());
        out.push_back(static_cast<unsigned>(v));
    }
    if (out.empty())
        fatal("%s: empty value list", flag.c_str());
    return out;
}

double
parseSeconds(const std::string& flag, const std::string& arg)
{
    char* end = nullptr;
    const double v = std::strtod(arg.c_str(), &end);
    if (!end || *end != '\0' || v <= 0)
        fatal("%s: '%s' is not a positive number", flag.c_str(),
              arg.c_str());
    return v;
}

SystemKind
parseKind(const std::string& name)
{
    if (name == "IO") return SystemKind::IO;
    if (name == "O3") return SystemKind::O3;
    if (name == "O3IV") return SystemKind::O3IV;
    if (name == "O3DV") return SystemKind::O3DV;
    if (name == "O3EVE") return SystemKind::O3EVE;
    fatal("unknown system kind '%s' (want IO, O3, O3IV, O3DV, or "
          "O3EVE)", name.c_str());
}

/**
 * Default workload axis: the paper's Table IV list. The RiVEC-style
 * extension kernels (axpy, blackscholes, streamcluster,
 * particlefilter) and the other extension kernels (spmv, fir, scan)
 * are opt-in via --workloads.
 */
const std::vector<std::string> kAllWorkloads = {
    "vvadd", "mmult", "k-means", "pathfinder", "jacobi-2d",
    "backprop", "sw"};

/** Signals received so far (worker and serve modes). */
volatile std::sig_atomic_t g_signals = 0;

/**
 * Worker: first SIGINT/SIGTERM requests a cooperative stop (the
 * in-flight job finishes and publishes); the second kills the
 * process the traditional way.
 */
void
workerSignalHandler(int)
{
    const std::sig_atomic_t prior = g_signals;
    g_signals = prior + 1;
    if (prior > 0)
        std::_Exit(130);
    exp::requestWorkerStop();
}

/** Serve: any SIGINT/SIGTERM starts a graceful drain (polled). */
void
serveSignalHandler(int)
{
    g_signals = g_signals + 1;
}

void
installSignalHandlers(void (*handler)(int))
{
    std::signal(SIGINT, handler);
    std::signal(SIGTERM, handler);
}

} // namespace

int
main(int argc, char** argv)
{
    setInformEnabled(false);

    std::vector<std::string> systems = {"O3EVE"};
    std::vector<std::string> workloads = kAllWorkloads;
    std::vector<unsigned> pfs, llc_mshrs, l2_mshrs, dtus, prefetch;
    std::string json_path, csv_path, payload_path, parity_path;
    std::string cache_dir = exp::envCacheDir();
    bool no_cache = false;
    exp::RunnerOptions opts;
    opts.threads = exp::envThreads();
    opts.checkpoint_dir = exp::envCheckpointDir();
    std::string sample_spec = exp::envSampling();
    bool small = false;
    bool paper = false;
    bool quiet = false;

    exp::DistOptions dist;
    dist.jobs_dir = exp::envJobsDir();
    enum class Mode
    {
        Sweep, Worker, Status, Stop,
        Serve, Submit, Watch, Shutdown, Hello
    };
    Mode mode = Mode::Sweep;
    bool orchestrate_only = false;

    std::string socket_path;
    if (const char* env = std::getenv("EVE_SVC_SOCKET"))
        socket_path = env;
    std::string sweep_name = "eve_sweep";
    unsigned min_workers = 1;
    unsigned max_workers = 0;
    double idle_exit_s = -1; // <0 = per-mode default

    auto need = [&](int i) -> std::string {
        if (i + 1 >= argc)
            fatal("%s needs a value", argv[i]);
        return argv[i + 1];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--systems") {
            systems = splitList(need(i)); ++i;
        } else if (flag == "--workloads") {
            workloads = splitList(need(i)); ++i;
        } else if (flag == "--pf") {
            pfs = splitUnsigned(flag, need(i)); ++i;
        } else if (flag == "--llc-mshrs") {
            llc_mshrs = splitUnsigned(flag, need(i)); ++i;
        } else if (flag == "--l2-mshrs") {
            l2_mshrs = splitUnsigned(flag, need(i)); ++i;
        } else if (flag == "--dtus") {
            dtus = splitUnsigned(flag, need(i)); ++i;
        } else if (flag == "--prefetch") {
            prefetch = splitUnsigned(flag, need(i)); ++i;
        } else if (flag == "--threads") {
            opts.threads = splitUnsigned(flag, need(i)).front(); ++i;
        } else if (flag == "--sim-threads") {
            opts.sim_threads = splitUnsigned(flag, need(i)).front();
            dist.sim_threads = opts.sim_threads;
            ++i;
        } else if (flag == "--parity") {
            parity_path = need(i); ++i;
        } else if (flag == "--json") {
            json_path = need(i); ++i;
        } else if (flag == "--json-payload") {
            payload_path = need(i); ++i;
        } else if (flag == "--csv") {
            csv_path = need(i); ++i;
        } else if (flag == "--cache-dir") {
            cache_dir = need(i); ++i;
        } else if (flag == "--no-cache") {
            no_cache = true;
        } else if (flag == "--small") {
            small = true;
        } else if (flag == "--paper") {
            paper = true;
        } else if (flag == "--sample") {
            sample_spec = need(i); ++i;
        } else if (flag == "--checkpoint-dir") {
            opts.checkpoint_dir = need(i); ++i;
        } else if (flag == "--quiet") {
            quiet = true;
        } else if (flag == "--keep-going") {
            opts.on_failure = exp::FailurePolicy::Record;
        } else if (flag == "--abort-on-failure") {
            opts.on_failure = exp::FailurePolicy::Abort;
        } else if (flag == "--jobs-dir") {
            dist.jobs_dir = need(i); ++i;
        } else if (flag == "--worker") {
            mode = Mode::Worker;
        } else if (flag == "--status") {
            mode = Mode::Status;
        } else if (flag == "--stop") {
            mode = Mode::Stop;
        } else if (flag == "--orchestrate-only") {
            orchestrate_only = true;
        } else if (flag == "--worker-id") {
            dist.worker_id = need(i); ++i;
        } else if (flag == "--lease-timeout") {
            dist.lease_timeout_s = parseSeconds(flag, need(i)); ++i;
        } else if (flag == "--heartbeat") {
            dist.heartbeat_s = parseSeconds(flag, need(i)); ++i;
        } else if (flag == "--poll") {
            dist.poll_s = parseSeconds(flag, need(i)); ++i;
        } else if (flag == "--join-timeout") {
            dist.join_timeout_s = parseSeconds(flag, need(i)); ++i;
        } else if (flag == "--max-attempts") {
            dist.max_attempts =
                splitUnsigned(flag, need(i)).front(); ++i;
        } else if (flag == "--persistent") {
            dist.persistent = true;
        } else if (flag == "--idle-exit") {
            idle_exit_s = parseSeconds(flag, need(i)); ++i;
        } else if (flag == "--serve") {
            mode = Mode::Serve;
        } else if (flag == "--submit") {
            mode = Mode::Submit;
        } else if (flag == "--watch") {
            mode = Mode::Watch;
        } else if (flag == "--shutdown") {
            mode = Mode::Shutdown;
        } else if (flag == "--hello") {
            mode = Mode::Hello;
        } else if (flag == "--socket") {
            socket_path = need(i); ++i;
        } else if (flag == "--sweep-name") {
            sweep_name = need(i); ++i;
        } else if (flag == "--min-workers") {
            min_workers = splitUnsigned(flag, need(i)).front(); ++i;
        } else if (flag == "--max-workers") {
            max_workers = splitUnsigned(flag, need(i)).front(); ++i;
        } else if (flag == "--help" || flag == "-h") {
            std::printf(
                "usage: eve_sweep [--systems LIST] [--pf LIST]\n"
                "  [--llc-mshrs LIST] [--l2-mshrs LIST] [--dtus LIST]\n"
                "  [--prefetch LIST] [--workloads LIST] [--threads N]\n"
                "  [--sim-threads N] [--parity GOLDEN]\n"
                "  [--small | --paper] [--sample SPEC]\n"
                "  [--checkpoint-dir PATH]\n"
                "  [--keep-going|--abort-on-failure]\n"
                "  [--json PATH] [--json-payload PATH] [--csv PATH]\n"
                "  [--cache-dir PATH] [--no-cache] [--quiet]\n"
                "  [--jobs-dir DIR [--orchestrate-only]\n"
                "   [--lease-timeout SEC] [--max-attempts N]]\n"
                "       eve_sweep --worker --jobs-dir DIR\n"
                "  [--worker-id ID] [--lease-timeout SEC]\n"
                "  [--heartbeat SEC] [--poll SEC] [--join-timeout SEC]\n"
                "  [--max-attempts N] [--persistent] [--idle-exit SEC]\n"
                "  [--sim-threads N] [--checkpoint-dir PATH] [--quiet]\n"
                "\n"
                "--sim-threads pipelines each simulation; timing is\n"
                "byte-identical at any value (parity-guarded).\n"
                "--sample runs interval sampling (extrapolated\n"
                "cycles, keyed separately from exact results);\n"
                "--checkpoint-dir reuses functional fast-forward\n"
                "state across sampled jobs.\n"
                "--parity checks result fingerprints against a golden\n"
                "file, exactly like eve_perf --parity.\n"
                "--workloads defaults to the paper's seven kernels;\n"
                "extension kernels (axpy, blackscholes,\n"
                "streamcluster, particlefilter, spmv, fir, scan) are\n"
                "available by name — see docs/WORKLOADS.md.\n"
                "       eve_sweep --status --jobs-dir DIR\n"
                "       eve_sweep --stop --jobs-dir DIR\n"
                "       eve_sweep --serve --jobs-dir DIR [--socket P]\n"
                "  [--min-workers N] [--max-workers N]\n"
                "  [--idle-exit SEC] [--quiet]\n"
                "       eve_sweep --submit --socket P [sweep flags]\n"
                "  [--sweep-name NAME]\n"
                "       eve_sweep --watch --socket P\n"
                "       eve_sweep --shutdown --socket P\n"
                "       eve_sweep --hello --socket P\n");
            return 0;
        } else {
            fatal("unknown flag '%s' (try --help)", flag.c_str());
        }
    }

    if (socket_path.empty() && !dist.jobs_dir.empty())
        socket_path = dist.jobs_dir + "/daemon.sock";

    if (small && paper)
        fatal("--small and --paper are mutually exclusive");
    const std::string scale =
        paper ? "paper" : (small ? "small" : "full");

    SamplingConfig sampling;
    if (!sample_spec.empty() &&
        !parseSamplingFlag(sample_spec, sampling))
        fatal("--sample: bad spec '%s' (want \"default\", "
              "\"INTERVAL[,WARMUP[,STRIDE]]\", or "
              "\"interval=N;warmup=N;stride=N\")",
              sample_spec.c_str());
    if (sampling.enabled() && !parity_path.empty())
        fatal("--sample cannot be combined with --parity: parity "
              "goldens record exact timing fingerprints");
    // Workers restore/save checkpoints for the sampled jobs they
    // claim; the flag rides DistOptions either way.
    dist.checkpoint_dir = opts.checkpoint_dir;

    // ---- distributed utility modes (no sweep construction) ----
    if (mode == Mode::Status) {
        if (dist.jobs_dir.empty())
            fatal("--status needs --jobs-dir (or $EVE_EXP_JOBS_DIR)");
        const exp::JobsDir jd(dist);
        const exp::DistStatus s = jd.status();
        std::printf("%s\n", exp::formatDistStatus(s).c_str());
        std::printf("binary %s, simulator salt %s\n", kEveVersion,
                    exp::kSimulatorSalt);
        if (s.quarantined > 0) {
            std::printf("ATTENTION: %zu job(s) exhausted the retry "
                        "budget — inspect %s/quarantine\n",
                        s.quarantined, dist.jobs_dir.c_str());
            return 2;
        }
        return s.complete() ? 0 : 1;
    }
    if (mode == Mode::Stop) {
        if (dist.jobs_dir.empty())
            fatal("--stop needs --jobs-dir (or $EVE_EXP_JOBS_DIR)");
        exp::JobsDir jd(dist);
        jd.requestStop();
        std::printf("stop requested in %s\n", dist.jobs_dir.c_str());
        return 0;
    }
    if (mode == Mode::Worker) {
        if (dist.jobs_dir.empty())
            fatal("--worker needs --jobs-dir (or $EVE_EXP_JOBS_DIR)");
        if (idle_exit_s > 0)
            dist.idle_exit_s = idle_exit_s;
        installSignalHandlers(workerSignalHandler);
        if (!quiet) {
            dist.progress = [](const exp::JobResult& r,
                               std::size_t done, std::size_t) {
                std::fprintf(stderr, "[worker:%zu] %-40s %s (%.2fs)\n",
                             done, r.label.c_str(),
                             exp::jobStatusName(r.status),
                             r.wall_seconds);
            };
        }
        const exp::WorkerReport report = exp::runDistWorker(dist);
        if (!quiet)
            std::fprintf(stderr,
                         "worker: %zu executed, %zu reclaimed, %zu "
                         "quarantined, %zu refused%s%s%s\n",
                         report.executed, report.reclaimed,
                         report.quarantined, report.unrebuildable,
                         report.stopped ? " (stopped)" : "",
                         report.idled ? " (idle retirement)" : "",
                         report.joined ? "" : " (never joined)");
        return report.joined ? 0 : 1;
    }

    // ---- service modes ----
    if (mode == Mode::Serve) {
        if (dist.jobs_dir.empty())
            fatal("--serve needs --jobs-dir (or $EVE_EXP_JOBS_DIR)");
        // A daemon's inform() lines are its operational log.
        if (!quiet)
            setInformEnabled(true);
        svc::ServiceOptions so;
        so.socket_path = socket_path;
        so.dist = dist;
        so.cache_dir = (!cache_dir.empty() && !no_cache)
                           ? cache_dir
                           : dist.jobs_dir + "/cache";
        so.min_workers = min_workers;
        so.max_workers = max_workers;
        if (idle_exit_s > 0)
            so.worker_idle_exit_s = idle_exit_s;
        so.quiet = quiet;
        svc::SweepService service(std::move(so));

        installSignalHandlers(serveSignalHandler);
        std::atomic<bool> watcher_done{false};
        std::thread watcher([&] {
            while (!watcher_done.load()) {
                if (g_signals > 0) {
                    service.requestShutdown();
                    return;
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(50));
            }
        });

        std::string err;
        const bool ok = service.run(&err);
        watcher_done.store(true);
        watcher.join();
        if (!ok)
            fatal("--serve: %s", err.c_str());
        return 0;
    }
    if (mode == Mode::Hello) {
        if (socket_path.empty())
            fatal("--hello needs --socket (or $EVE_SVC_SOCKET)");
        const svc::ServerHello hello = svc::helloServer(socket_path);
        if (!hello.ok)
            fatal("--hello: %s", hello.error.c_str());
        std::printf("%s %s (protocol %s, simulator salt %s) at %s\n",
                    hello.service.c_str(), hello.version.c_str(),
                    hello.protocol.c_str(), hello.salt.c_str(),
                    socket_path.c_str());
        return 0;
    }
    if (mode == Mode::Watch) {
        if (socket_path.empty())
            fatal("--watch needs --socket (or $EVE_SVC_SOCKET)");
        installSignalHandlers(serveSignalHandler);
        const bool connected = svc::watchServer(
            socket_path, 1.0, [](const std::string& line) {
                if (!line.empty())
                    std::printf("%s\n", line.c_str());
                std::fflush(stdout);
                return g_signals == 0;
            });
        if (!connected)
            fatal("--watch: cannot connect to %s",
                  socket_path.c_str());
        return 0;
    }
    if (mode == Mode::Shutdown) {
        if (socket_path.empty())
            fatal("--shutdown needs --socket (or $EVE_SVC_SOCKET)");
        if (!svc::shutdownServer(socket_path))
            fatal("--shutdown: no acknowledgement from %s",
                  socket_path.c_str());
        std::printf("drain requested at %s\n", socket_path.c_str());
        return 0;
    }

    // ---- sweep construction (in-process or orchestrated) ----
    exp::SweepSpec spec;
    for (const auto& name : systems) {
        SystemConfig cfg;
        cfg.kind = parseKind(name);
        spec.system(cfg);
    }
    if (!pfs.empty())
        spec.axis<unsigned>("pf", pfs, [](SystemConfig& c, unsigned v) {
            c.eve_pf = v;
        });
    if (!llc_mshrs.empty())
        spec.axis<unsigned>("llc_mshrs", llc_mshrs,
                            [](SystemConfig& c, unsigned v) {
                                c.llc_mshrs = v;
                            });
    if (!l2_mshrs.empty())
        spec.axis<unsigned>("l2_mshrs", l2_mshrs,
                            [](SystemConfig& c, unsigned v) {
                                c.l2_mshrs = v;
                            });
    if (!dtus.empty())
        spec.axis<unsigned>("dtus", dtus,
                            [](SystemConfig& c, unsigned v) {
                                c.dtus = v;
                            });
    if (!prefetch.empty())
        spec.axis<unsigned>("prefetch", prefetch,
                            [](SystemConfig& c, unsigned v) {
                                c.llc_prefetch_lines = v;
                            });
    spec.workloads(workloads, scale);
    spec.sampling(sampling);

    if (!quiet) {
        opts.progress = [](const exp::JobResult& r, std::size_t done,
                           std::size_t total) {
            std::fprintf(stderr, "[%zu/%zu] %-40s %s (%.2fs)\n", done,
                         total, r.label.c_str(),
                         exp::jobStatusName(r.status),
                         r.wall_seconds);
        };
    }

    std::unique_ptr<exp::ResultCache> cache;
    if (!cache_dir.empty() && !no_cache && mode != Mode::Submit) {
        cache = std::make_unique<exp::ResultCache>(cache_dir);
        const std::size_t loaded = cache->load();
        if (!quiet)
            std::fprintf(stderr, "cache: %zu entries in %s\n", loaded,
                         cache->filePath().c_str());
        opts.cache = cache.get();
    }

    const auto jobs = spec.jobs();
    std::vector<exp::JobResult> results;
    if (mode == Mode::Submit) {
        if (socket_path.empty())
            fatal("--submit needs --socket (or $EVE_SVC_SOCKET)");
        svc::ClientOptions co;
        co.socket_path = socket_path;
        co.sweep = sweep_name;
        co.progress = opts.progress;
        if (!quiet)
            std::fprintf(stderr, "%zu jobs via daemon at %s\n",
                         jobs.size(), socket_path.c_str());
        svc::SweepOutcome outcome = svc::submitSweep(jobs, co);
        if (!outcome.ok)
            fatal("--submit: %s", outcome.error.c_str());
        if (!quiet)
            std::fprintf(stderr,
                         "daemon served %zu jobs (%zu cached, %zu "
                         "shared, %zu fresh)\n",
                         jobs.size(), outcome.cached, outcome.shared,
                         outcome.fresh);
        results = std::move(outcome.results);
    } else if (!dist.jobs_dir.empty()) {
        dist.lanes = orchestrate_only
                         ? 0
                         : (opts.threads
                                ? opts.threads
                                : std::thread::hardware_concurrency());
        dist.progress = opts.progress;
        if (!quiet)
            std::fprintf(stderr,
                         "%zu jobs via %s (%u local lanes)\n",
                         jobs.size(), dist.jobs_dir.c_str(),
                         dist.lanes);
        results = exp::runDistributed(jobs, dist, opts.cache);
    } else {
        const exp::Runner runner(opts);
        if (!quiet)
            std::fprintf(stderr, "%zu jobs on %u threads\n",
                         jobs.size(),
                         runner.effectiveThreads(jobs.size()));
        results = runner.run(jobs);
    }

    TextTable table({"job", "status", "cycles", "sim s", "wall s"});
    for (const auto& r : results) {
        table.addRow({r.label, exp::jobStatusName(r.status),
                      TextTable::num(r.result.cycles, 0),
                      TextTable::num(r.result.seconds, 6),
                      TextTable::num(r.wall_seconds, 2)});
    }
    std::printf("%s", table.render().c_str());

    if (!json_path.empty())
        exp::writeJsonLines(results, json_path);
    if (!payload_path.empty())
        exp::writeJsonLines(results, payload_path,
                            /*include_host_time=*/false);
    if (!csv_path.empty())
        exp::writeCsv(results, csv_path);

    if (cache && !quiet) {
        std::fprintf(stderr,
                     "cache: %zu hits, %zu executed, %zu stored\n",
                     exp::countStatus(results, exp::JobStatus::Cached),
                     results.size() -
                         exp::countStatus(results,
                                          exp::JobStatus::Cached),
                     cache->stores());
    }

    if (!parity_path.empty()) {
        const auto diffs = exp::ParityFile::load(parity_path)
                               .check(results, scale);
        if (!diffs.empty()) {
            for (const auto& d : diffs)
                std::fprintf(stderr, "parity: %s\n", d.c_str());
            fatal("timing parity violated: %zu grid points diverge "
                  "from %s",
                  diffs.size(), parity_path.c_str());
        }
        std::printf("timing parity: %zu grid points byte-identical "
                    "to %s\n",
                    results.size(), parity_path.c_str());
    }

    const std::size_t failed =
        exp::countStatus(results, exp::JobStatus::Failed) +
        exp::countStatus(results, exp::JobStatus::Mismatch) +
        exp::countStatus(results, exp::JobStatus::Skipped);
    return failed ? 1 : 0;
}
