/**
 * @file
 * Ablation: LLC MSHR sweep (the paper's "Limited MSHR Effect" and
 * its future-work direction). backprop and k-means are the
 * MSHR-starved workloads; performance should scale with the MSHR
 * count until another bottleneck takes over.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/log.hh"
#include "driver/table.hh"
#include "workloads/workload.hh"

using namespace eve;

int
main()
{
    setInformEnabled(false);
    const bool small = bench::smallRuns();

    std::printf("Ablation: LLC MSHR count vs. EVE-8 performance\n"
                "(speed-up over the 32-MSHR Table III baseline)\n\n");

    const unsigned sweeps[] = {8, 16, 32, 64, 128, 256};
    std::vector<std::string> headers = {"workload"};
    for (unsigned m : sweeps)
        headers.push_back(std::to_string(m) + " MSHRs");
    TextTable table(headers);

    for (const auto* wname : {"backprop", "k-means", "vvadd"}) {
        double base_seconds = 0.0;
        std::vector<double> seconds;
        for (unsigned m : sweeps) {
            SystemConfig cfg;
            cfg.kind = SystemKind::O3EVE;
            cfg.eve_pf = 8;
            cfg.llc_mshrs = m;
            auto w = makeWorkload(wname, small);
            const RunResult r = runWorkload(cfg, *w);
            if (r.mismatches)
                fatal("%s failed functionally", wname);
            if (m == 32)
                base_seconds = r.seconds;
            seconds.push_back(r.seconds);
        }
        std::vector<std::string> row = {wname};
        for (double s : seconds)
            row.push_back(TextTable::num(base_seconds / s, 2));
        table.addRow(row);
    }
    std::printf("%s", table.render().c_str());
    return 0;
}
