/**
 * @file
 * Ablation: LLC MSHR sweep (the paper's "Limited MSHR Effect" and
 * its future-work direction). backprop and k-means are the
 * MSHR-starved workloads; performance should scale with the MSHR
 * count until another bottleneck takes over.
 *
 * The sweep is one axis-override line on the Table III EVE-8 config,
 * executed through the shared runSweep() plumbing; a JSONL artifact
 * with the per-job stats accompanies the printed table.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/log.hh"
#include "driver/table.hh"

using namespace eve;

int
main()
{
    setInformEnabled(false);
    const bool small = bench::smallRuns();

    std::printf("Ablation: LLC MSHR count vs. EVE-8 performance\n"
                "(speed-up over the 32-MSHR Table III baseline)\n\n");

    const std::vector<unsigned> sweeps = {8, 16, 32, 64, 128, 256};
    const std::vector<std::string> wnames = {"backprop", "k-means",
                                             "vvadd"};

    exp::SweepSpec spec;
    spec.system(bench::makeConfig(SystemKind::O3EVE, 8))
        .axis<unsigned>("llc_mshrs", sweeps,
                        [](SystemConfig& c, unsigned m) {
                            c.llc_mshrs = m;
                        })
        .workloads(wnames, small);

    bench::SweepOptions opts;
    opts.artifact = "ablation_mshr.jsonl";
    const auto results = bench::runSweep(spec, opts);

    // jobs() order: MSHR axis outermost, workloads innermost.
    auto seconds = [&](std::size_t m, std::size_t wl) {
        return results[m * wnames.size() + wl].result.seconds;
    };
    const std::size_t base_idx = 2; // sweeps[2] == 32, the baseline

    std::vector<std::string> headers = {"workload"};
    for (unsigned m : sweeps)
        headers.push_back(std::to_string(m) + " MSHRs");
    TextTable table(headers);

    for (std::size_t wl = 0; wl < wnames.size(); ++wl) {
        std::vector<std::string> row = {wnames[wl]};
        const double base_seconds = seconds(base_idx, wl);
        for (std::size_t m = 0; m < sweeps.size(); ++m)
            row.push_back(
                TextTable::num(base_seconds / seconds(m, wl), 2));
        table.addRow(row);
    }
    std::printf("%s", table.render().c_str());
    return 0;
}
