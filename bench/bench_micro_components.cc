/**
 * @file
 * google-benchmark micro-benchmarks of the simulator's hot
 * components: EVE SRAM micro-op execution, macro-op program
 * generation, cache access timing, and the functional vector
 * machine. These guard the simulator's own performance (a full
 * Figure 6 sweep replays ~10^9 events).
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "core/sram/eve_sram.hh"
#include "core/uprog/macro_lib.hh"
#include "isa/functional.hh"
#include "mem/hierarchy.hh"

namespace
{

using namespace eve;

void
BM_EveSramAdd(benchmark::State& state)
{
    EveSramConfig cfg;
    cfg.lanes = unsigned(state.range(0));
    cfg.pf = 8;
    EveSram sram(cfg);
    MacroLib lib(cfg);
    Instr add;
    add.op = Op::VAdd;
    add.dst = 1;
    add.src1 = 2;
    add.src2 = 3;
    const MacroProgram prog = lib.build(add).prog;
    for (auto _ : state)
        sram.run(prog);
    state.SetItemsProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(prog.size()));
}
BENCHMARK(BM_EveSramAdd)->Arg(8)->Arg(64);

void
BM_MacroLibBuildMul(benchmark::State& state)
{
    EveSramConfig cfg;
    cfg.lanes = 1;
    cfg.pf = unsigned(state.range(0));
    MacroLib lib(cfg);
    Instr mul;
    mul.op = Op::VMul;
    mul.dst = 1;
    mul.src1 = 2;
    mul.src2 = 3;
    for (auto _ : state)
        benchmark::DoNotOptimize(lib.build(mul));
}
BENCHMARK(BM_MacroLibBuildMul)->Arg(1)->Arg(8)->Arg(32);

void
BM_CacheAccessStream(benchmark::State& state)
{
    HierarchyParams hp;
    MemHierarchy mem(hp);
    Rng rng(1);
    Tick t = 0;
    for (auto _ : state) {
        t += 1025;
        benchmark::DoNotOptimize(
            mem.l1d().access(rng.below(1 << 22), false, t));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccessStream);

void
BM_VecMachineAdd(benchmark::State& state)
{
    ByteMem mem(1 << 16);
    VecMachine machine(mem, 2048);
    Instr add;
    add.op = Op::VAdd;
    add.dst = 1;
    add.src1 = 2;
    add.src2 = 3;
    add.vl = 2048;
    for (auto _ : state)
        machine.consume(add);
    state.SetItemsProcessed(std::int64_t(state.iterations()) * 2048);
}
BENCHMARK(BM_VecMachineAdd);

} // namespace

BENCHMARK_MAIN();
