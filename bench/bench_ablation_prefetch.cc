/**
 * @file
 * Ablation: LLC stream prefetching (the paper's future-work
 * direction — "address the limited MSHRs efficiently to enable EVE
 * to utilize memory bandwidth more effectively"). A next-N-line
 * prefetcher at the LLC converts demand misses into hits for
 * unit-stride vector streams without consuming the VMU's MSHR
 * window; large-stride kernels (backprop) see no benefit.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/log.hh"
#include "driver/table.hh"
#include "workloads/workload.hh"

using namespace eve;

int
main()
{
    setInformEnabled(false);
    const bool small = bench::smallRuns();

    std::printf("Ablation: LLC stream prefetch depth vs. EVE-8 "
                "performance\n(speed-up over the no-prefetch Table "
                "III baseline)\n\n");

    const unsigned depths[] = {0, 1, 2, 4, 8};
    std::vector<std::string> headers = {"workload"};
    for (unsigned d : depths)
        headers.push_back("N=" + std::to_string(d));
    TextTable table(headers);

    for (const char* wname :
         {"vvadd", "pathfinder", "jacobi-2d", "backprop"}) {
        double base_seconds = 0.0;
        std::vector<std::string> row = {wname};
        for (unsigned d : depths) {
            SystemConfig cfg;
            cfg.kind = SystemKind::O3EVE;
            cfg.eve_pf = 8;
            cfg.llc_prefetch_lines = d;
            auto w = makeWorkload(wname, small);
            const RunResult r = runWorkload(cfg, *w);
            if (r.mismatches)
                fatal("%s failed functionally", wname);
            if (d == 0)
                base_seconds = r.seconds;
            row.push_back(TextTable::num(base_seconds / r.seconds, 2));
        }
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Unit-stride streams gain until DRAM bandwidth "
                "saturates; the one-line-per-element\nstrided walk "
                "of backprop is prefetch-immune (the next line is "
                "not the next element).\n");
    return 0;
}
