/**
 * @file
 * Ablation: LLC stream prefetching (the paper's future-work
 * direction — "address the limited MSHRs efficiently to enable EVE
 * to utilize memory bandwidth more effectively"). A next-N-line
 * prefetcher at the LLC converts demand misses into hits for
 * unit-stride vector streams without consuming the VMU's MSHR
 * window; large-stride kernels (backprop) see no benefit.
 *
 * The grid runs through runSweep(): thread-pool (or, with
 * EVE_EXP_JOBS_DIR, distributed) execution, the EVE_EXP_CACHE_DIR
 * result cache, and a JSONL artifact.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/log.hh"
#include "driver/table.hh"
#include "workloads/workload.hh"

using namespace eve;

int
main()
{
    setInformEnabled(false);
    const bool small = bench::smallRuns();

    std::printf("Ablation: LLC stream prefetch depth vs. EVE-8 "
                "performance\n(speed-up over the no-prefetch Table "
                "III baseline)\n\n");

    const std::vector<unsigned> depths = {0, 1, 2, 4, 8};
    const std::vector<std::string> names = {"vvadd", "pathfinder",
                                            "jacobi-2d", "backprop"};

    exp::SweepSpec spec;
    spec.system(bench::makeConfig(SystemKind::O3EVE, 8))
        .axis<unsigned>("prefetch", depths,
                        [](SystemConfig& c, unsigned d) {
                            c.llc_prefetch_lines = d;
                        })
        .workloads(names, small);
    bench::SweepOptions opts;
    opts.artifact = "ablation_prefetch.jsonl";
    const auto results = bench::runSweep(spec, opts);

    // Expansion order: depth axis outermost, workloads innermost.
    auto seconds = [&](std::size_t d, std::size_t w) {
        return results[d * names.size() + w].result.seconds;
    };

    std::vector<std::string> headers = {"workload"};
    for (unsigned d : depths)
        headers.push_back("N=" + std::to_string(d));
    TextTable table(headers);

    for (std::size_t w = 0; w < names.size(); ++w) {
        const double base_seconds = seconds(0, w);
        std::vector<std::string> row = {names[w]};
        for (std::size_t d = 0; d < depths.size(); ++d)
            row.push_back(
                TextTable::num(base_seconds / seconds(d, w), 2));
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Unit-stride streams gain until DRAM bandwidth "
                "saturates; the one-line-per-element\nstrided walk "
                "of backprop is prefetch-immune (the next line is "
                "not the next element).\n");
    return 0;
}
