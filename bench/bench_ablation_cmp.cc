/**
 * @file
 * Ablation: chip-multiprocessor co-execution. EVE is a *private*
 * per-core engine (Section V); two cores that both spawn engines
 * share only the LLC and the DRAM channel. This harness measures the
 * slowdown a core suffers when a memory-hungry neighbour runs
 * alongside it, for scalar, DV, and EVE cores.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/log.hh"
#include "driver/table.hh"
#include "workloads/workload.hh"

using namespace eve;

int
main()
{
    setInformEnabled(false);
    const bool small = bench::smallRuns();

    std::printf("Ablation: two-core co-execution (shared LLC + DRAM)\n"
                "Slowdown of the observed core when a vvadd-streaming "
                "neighbour co-runs:\n\n");

    TextTable table({"observed core / workload", "solo (ms)",
                     "co-run (ms)", "slowdown"});

    struct Case
    {
        SystemKind kind;
        unsigned pf;
        const char* workload;
    };
    const Case cases[] = {
        {SystemKind::O3, 8, "pathfinder"},
        {SystemKind::O3DV, 8, "pathfinder"},
        {SystemKind::O3EVE, 8, "pathfinder"},
        {SystemKind::O3EVE, 8, "vvadd"},
        {SystemKind::O3EVE, 8, "mmult"},
    };

    for (const Case& c : cases) {
        SystemConfig observed;
        observed.kind = c.kind;
        observed.eve_pf = c.pf;

        auto solo_w = makeWorkload(c.workload, small);
        const RunResult solo = runWorkload(observed, *solo_w);

        // Neighbour: an EVE-8 core streaming vvadd.
        SystemConfig neighbour;
        neighbour.kind = SystemKind::O3EVE;
        neighbour.eve_pf = 8;
        auto noise = makeWorkload("vvadd", small);
        auto contended_w = makeWorkload(c.workload, small);
        const auto [noise_r, contended] =
            runCmpPair(neighbour, *noise, observed, *contended_w);
        if (contended.mismatches || noise_r.mismatches)
            fatal("functional failure in CMP pair");

        table.addRow({systemName(observed) + " / " + c.workload,
                      TextTable::num(solo.seconds * 1e3, 3),
                      TextTable::num(contended.seconds * 1e3, 3),
                      TextTable::num(contended.seconds / solo.seconds,
                                     2) + "x"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Memory-bound work suffers from the shared channel; "
                "compute-bound EVE work is insulated.\n");
    return 0;
}
