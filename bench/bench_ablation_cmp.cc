/**
 * @file
 * Ablation: chip-multiprocessor co-execution. EVE is a *private*
 * per-core engine (Section V); two cores that both spawn engines
 * share only the LLC and the DRAM channel. This harness measures the
 * slowdown a core suffers when a memory-hungry neighbour runs
 * alongside it, for scalar, DV, and EVE cores.
 *
 * Solo runs are ordinary sweep jobs; each co-run is a
 * custom-executor job (Job::exec calling runCmpPair) whose
 * Job::variant names the neighbour, so its result-cache key stays
 * distinct from the solo run of the same configuration. Both kinds
 * flow through runSweep() — thread-pool (or, with
 * EVE_EXP_JOBS_DIR, distributed) execution, the EVE_EXP_CACHE_DIR
 * result cache, and a JSONL artifact. Custom-executor jobs are never
 * handed to spec-less external workers; the orchestrator's own lanes
 * run them.
 */

#include <cstdio>
#include <stdexcept>

#include "bench_util.hh"
#include "common/log.hh"
#include "driver/table.hh"
#include "workloads/workload.hh"

using namespace eve;

int
main()
{
    setInformEnabled(false);
    const bool small = bench::smallRuns();

    std::printf("Ablation: two-core co-execution (shared LLC + DRAM)\n"
                "Slowdown of the observed core when a vvadd-streaming "
                "neighbour co-runs:\n\n");

    struct Case
    {
        SystemKind kind;
        unsigned pf;
        const char* workload;
    };
    const std::vector<Case> cases = {
        {SystemKind::O3, 8, "pathfinder"},
        {SystemKind::O3DV, 8, "pathfinder"},
        {SystemKind::O3EVE, 8, "pathfinder"},
        {SystemKind::O3EVE, 8, "vvadd"},
        {SystemKind::O3EVE, 8, "mmult"},
    };
    const std::string scale = small ? "small" : "full";

    std::vector<exp::Job> jobs;
    for (const Case& c : cases) {
        const SystemConfig observed =
            bench::makeConfig(c.kind, c.pf);
        const std::string name = c.workload;

        exp::Job solo;
        solo.label = systemName(observed) + "/" + name + "/solo";
        solo.config = observed;
        solo.workload = name;
        solo.scale = scale;
        solo.make = [name, small] {
            return makeWorkload(name, small);
        };
        jobs.push_back(std::move(solo));

        exp::Job co;
        co.label = systemName(observed) + "/" + name + "/co-run";
        co.config = observed;
        co.workload = name;
        co.scale = scale;
        co.variant = "cmp:neighbour=O3EVE-8/vvadd";
        co.exec = [name, small](const SystemConfig& obs) {
            // Neighbour: an EVE-8 core streaming vvadd.
            const SystemConfig neighbour =
                bench::makeConfig(SystemKind::O3EVE, 8);
            auto noise = makeWorkload("vvadd", small);
            auto w = makeWorkload(name, small);
            const auto [noise_r, contended] =
                runCmpPair(neighbour, *noise, obs, *w);
            if (noise_r.mismatches)
                throw std::runtime_error(
                    "CMP neighbour failed functionally");
            return contended;
        };
        jobs.push_back(std::move(co));
    }
    bench::SweepOptions opts;
    opts.artifact = "ablation_cmp.jsonl";
    const auto results = bench::runSweep(std::move(jobs), opts);

    TextTable table({"observed core / workload", "solo (ms)",
                     "co-run (ms)", "slowdown"});
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const RunResult& solo = results[2 * i].result;
        const RunResult& contended = results[2 * i + 1].result;
        table.addRow({systemName(results[2 * i].config) + " / " +
                          cases[i].workload,
                      TextTable::num(solo.seconds * 1e3, 3),
                      TextTable::num(contended.seconds * 1e3, 3),
                      TextTable::num(contended.seconds / solo.seconds,
                                     2) + "x"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Memory-bound work suffers from the shared channel; "
                "compute-bound EVE work is insulated.\n");
    return 0;
}
