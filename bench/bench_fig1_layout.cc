/**
 * @file
 * Figure 1: data organization in an S-CIM SRAM array — stored
 * elements and in-situ ALUs for a small array while varying the
 * number of vector registers and the parallelization factor.
 */

#include <cstdio>

#include "analytic/taxonomy.hh"
#include "driver/table.hh"

using namespace eve;

int
main()
{
    std::printf("Figure 1: data organization in a 16x16 S-CIM array "
                "(8-bit elements)\n\n");

    TextTable table({"vregs", "pf", "elements", "in-situ ALUs",
                     "storage util"});
    for (unsigned vregs : {1u, 2u, 4u}) {
        for (unsigned pf : {1u, 2u, 4u, 8u}) {
            const Fig1Point p = fig1Point(16, 16, 8, vregs, pf);
            table.addRow({std::to_string(vregs), std::to_string(pf),
                          std::to_string(p.elements),
                          std::to_string(p.alus),
                          TextTable::num(100.0 * p.storageUtilization,
                                         1) + "%"});
        }
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("Key effects (Section II):\n"
                "- at pf=1, adding registers beyond balance repurposes"
                " columns, cutting ALUs;\n"
                "- higher pf supports more registers per column group"
                " but fewer, wider lanes.\n");
    return 0;
}
