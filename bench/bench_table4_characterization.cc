/**
 * @file
 * Table IV: benchmark characterization — dynamic instruction counts,
 * vector instruction fraction, the per-class mix of vector
 * instructions at VL=64 (as the paper reports), logical parallelism,
 * work inflation, arithmetic intensity, and speed-ups of O3+DV and
 * every EVE design over O3+IV.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/log.hh"
#include "driver/table.hh"
#include "isa/program.hh"
#include "workloads/workload.hh"

using namespace eve;

int
main()
{
    setInformEnabled(false);
    const bool small = bench::smallRuns();

    std::printf("Table IV: benchmark characterization "
                "(vector mix measured at VL=64)\n\n");

    TextTable mix({"name", "suite", "sDIns", "vDIns", "VI%", "ctrl%",
                   "ialu%", "imul%", "xe%", "us%", "st%", "idx%",
                   "prd%", "DOp", "VO%", "VPar", "WInf", "ArInt"});

    for (auto& w : makeAllWorkloads(small)) {
        w->init();
        CountingSink scalar_count;
        w->emitScalar(scalar_count);

        Characterizer c;
        w->emitVector(c, 64);

        auto pct = [&](std::uint64_t n) {
            return TextTable::num(
                c.vecInstrs ? 100.0 * double(n) / double(c.vecInstrs)
                            : 0.0, 0);
        };
        mix.addRow({w->name(), w->suite(),
                    TextTable::num(double(scalar_count.total) / 1e6,
                                   2) + "M",
                    TextTable::num(double(c.dynInstrs) / 1e6, 2) + "M",
                    TextTable::num(c.vecInstrPct(), 0),
                    pct(c.ctrl), pct(c.ialu), pct(c.imul), pct(c.xe),
                    pct(c.us), pct(c.st), pct(c.idx),
                    TextTable::num(
                        c.vecInstrs ? 100.0 * double(c.predInstrs) /
                                          double(c.vecInstrs)
                                    : 0.0, 0),
                    TextTable::num(double(c.totalOps) / 1e6, 1) + "M",
                    TextTable::num(c.vecOpPct(), 0),
                    TextTable::num(c.logicalParallelism(), 1),
                    TextTable::num(double(c.totalOps) /
                                   double(scalar_count.total), 2),
                    TextTable::num(c.arithIntensity(), 2)});
    }
    std::printf("%s\n", mix.render().c_str());

    std::printf("Speed-ups vs. O3+IV:\n\n");
    std::vector<SystemConfig> systems;
    systems.push_back(bench::makeConfig(SystemKind::O3IV));
    systems.push_back(bench::makeConfig(SystemKind::O3DV));
    for (unsigned pf : {1u, 2u, 4u, 8u, 16u, 32u})
        systems.push_back(bench::makeConfig(SystemKind::O3EVE, pf));

    const std::vector<std::string> names = {
        "vvadd", "mmult", "k-means", "pathfinder", "jacobi-2d",
        "backprop", "sw"};

    // The systems × workloads grid runs through runSweep():
    // thread-pool (or, with EVE_EXP_JOBS_DIR, distributed)
    // execution, the EVE_EXP_CACHE_DIR result cache, and a JSONL
    // artifact. Expansion order: systems outermost, workloads
    // innermost. With EVE_BENCH_PAPER=1 the grid runs at paper
    // scale (mmult 1024^3) and defaults to interval sampling —
    // exact paper-scale runs are possible but pointless for a
    // characterization table whose error bound is 3%.
    exp::SweepSpec spec;
    spec.systems(systems).workloads(names, bench::benchScale());
    bench::SweepOptions opts;
    opts.artifact = "table4_speedups.jsonl";
    if (bench::paperRuns() && exp::envSampling().empty())
        opts.sampling = defaultSampling();
    const auto results = bench::runSweep(spec, opts);
    auto seconds = [&](std::size_t sys, std::size_t w) {
        return results[sys * names.size() + w].result.seconds;
    };

    std::vector<std::string> headers = {"name"};
    for (std::size_t i = 1; i < systems.size(); ++i)
        headers.push_back(systemName(systems[i]));
    TextTable speed(headers);

    for (std::size_t w = 0; w < names.size(); ++w) {
        const double iv_seconds = seconds(0, w);
        std::vector<std::string> row = {names[w]};
        for (std::size_t i = 1; i < systems.size(); ++i)
            row.push_back(
                TextTable::num(iv_seconds / seconds(i, w), 2));
        speed.addRow(row);
    }
    std::printf("%s", speed.render().c_str());
    return 0;
}
