/**
 * @file
 * Energy analysis (Section VII): estimated energy per run and per
 * useful element operation for every system, plus the blc/read and
 * peak-power figures from the circuits evaluation. Absolute joules
 * are first-order estimates; the comparative ordering is the result.
 */

#include <cstdio>

#include "analytic/circuits.hh"
#include "analytic/energy.hh"
#include "bench_util.hh"
#include "common/log.hh"
#include "driver/table.hh"
#include "workloads/workload.hh"

using namespace eve;

int
main()
{
    setInformEnabled(false);
    const bool small = bench::smallRuns();

    std::printf("Energy analysis (first-order 28nm-class model)\n\n");
    std::printf("Circuit-level figures (Section VI): blc = %.2fx a "
                "vanilla read;\npeak array power +%.0f%%; non-blc "
                "extra uops cheaper than reads.\n\n",
                CircuitModel::blcEnergyVsRead(),
                CircuitModel::peakPowerOverheadPct());

    for (const auto* wname : {"jacobi-2d", "vvadd", "sw"}) {
        TextTable table({"system", "core (uJ)", "engine (uJ)",
                         "cache (uJ)", "dram (uJ)", "total (uJ)",
                         "energy x delay (rel)"});
        double base_edp = 0.0;
        for (const auto& cfg : bench::fig6Systems()) {
            auto w = makeWorkload(wname, small);
            const RunResult r = runWorkload(cfg, *w);
            if (r.mismatches)
                fatal("%s failed functionally on %s", wname,
                      r.system.c_str());
            const EnergyReport e = estimateEnergy(r, cfg);
            const double edp = e.total_nj() * r.seconds;
            if (cfg.kind == SystemKind::IO)
                base_edp = edp;
            table.addRow({r.system,
                          TextTable::num(e.core_nj / 1e3, 1),
                          TextTable::num(e.engine_nj / 1e3, 1),
                          TextTable::num(e.cache_nj / 1e3, 1),
                          TextTable::num(e.dram_nj / 1e3, 1),
                          TextTable::num(e.total_nj() / 1e3, 1),
                          TextTable::num(edp / base_edp, 3)});
        }
        std::printf("%s\n%s\n", wname, table.render().c_str());
    }
    return 0;
}
