/**
 * @file
 * Table III: the simulated systems — printed from the live
 * configuration objects so the table cannot drift from the code.
 * The configuration grid comes from the same SweepSpec the Figure 6
 * harness executes, so the table always describes exactly what the
 * performance sweep runs.
 */

#include <cstdio>

#include "analytic/circuits.hh"
#include "bench_util.hh"
#include "driver/table.hh"

using namespace eve;

int
main()
{
    std::printf("Table III: simulated systems\n\n");
    const exp::SweepSpec spec = bench::fig6Sweep(false);
    TextTable table({"system", "clock (ns)", "hw vl", "L2 in vector "
                     "mode", "notes"});
    for (const auto& cfg : spec.expandedSystems()) {
        System sys(cfg);
        std::string notes;
        switch (cfg.kind) {
          case SystemKind::IO:
            notes = "single-issue in-order RV-style core";
            break;
          case SystemKind::O3:
            notes = "8-wide out-of-order core, 192 ROB";
            break;
          case SystemKind::O3IV:
            notes = "integrated unit, OoO issue, 3 shared pipes";
            break;
          case SystemKind::O3DV:
            notes = "decoupled engine, in-order issue, 4 pipes, "
                    "16 lanes";
            break;
          case SystemKind::O3EVE:
            notes = "EVE-" + std::to_string(cfg.eve_pf) +
                    ": " + std::to_string(32 / cfg.eve_pf) +
                    " segments/element, 32 sub-arrays, 8 DTUs";
            break;
        }
        const double clock_ns =
            cfg.kind == SystemKind::O3EVE
                ? CircuitModel::cycleTimeNs(cfg.eve_pf)
                : CircuitModel::baselineCycleNs();
        table.addRow({systemName(cfg), TextTable::num(clock_ns, 3),
                      std::to_string(sys.hwVectorLength()),
                      cfg.kind == SystemKind::O3EVE ? "yes (4-way, "
                                                      "256KB)"
                                                    : "no",
                      notes});
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("Shared memory system: L1I 32KB/4w 1-cycle, L1D "
                "32KB/4w 2-cycle (16 MSHRs),\nL2 512KB/8w/8-bank "
                "8-cycle (32 MSHRs), LLC 2MB/16w 12-cycle (32 MSHRs),"
                "\nsingle-channel DDR4-2400 (60 ns, 19.2 GB/s)\n");

    std::printf("\nWorkload axis (%zu kernels%s):",
                spec.workloadCount(),
                bench::rivecRuns() ? ", EVE_BENCH_RIVEC=1"
                                   : "");
    for (const auto& name : spec.workloadNames())
        std::printf(" %s", name.c_str());
    std::printf("\n%s", bench::rivecRuns()
                            ? ""
                            : "(set EVE_BENCH_RIVEC=1 to append the "
                              "RiVEC kernels: axpy blackscholes "
                              "streamcluster particlefilter)\n");
    return 0;
}
