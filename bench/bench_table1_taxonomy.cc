/**
 * @file
 * Table I: the taxonomy of vector architectures. Static summary,
 * printed with the attributes the simulated systems exhibit so the
 * table is backed by configuration rather than prose.
 */

#include <cstdio>

#include "driver/system.hh"
#include "driver/table.hh"

using namespace eve;

int
main()
{
    std::printf("Table I: a summary of vector architectures\n\n");
    TextTable table({"attribute", "packed SIMD", "long vector",
                     "next generation"});
    table.addRow({"length", "fixed, short", "scalable, long",
                  "scalable"});
    table.addRow({"element width", "variable", "fixed", "variable"});
    table.addRow({"predication", "limited", "full", "full"});
    table.addRow({"cross-element ops", "full", "limited", "full"});
    table.addRow({"gather/scatter", "limited", "full", "full"});
    table.addRow({"integration", "integrated", "decoupled", "either"});
    table.addRow({"speculative execution", "yes", "no", "either"});
    table.addRow({"compute pipeline", "integrated", "decoupled",
                  "either"});
    table.addRow({"memory bandwidth", "modest", "large", "either"});
    table.addRow({"memory latency", "low", "high", "either"});
    std::printf("%s\n", table.render().c_str());

    // Back the "next generation" column with this repo's systems.
    std::printf("Simulated next-generation implementations:\n");
    TextTable impls({"system", "hw vl", "integration"});
    for (auto kind : {SystemKind::O3IV, SystemKind::O3DV,
                      SystemKind::O3EVE}) {
        SystemConfig cfg;
        cfg.kind = kind;
        System sys(cfg);
        impls.addRow({systemName(cfg),
                      std::to_string(sys.hwVectorLength()),
                      kind == SystemKind::O3IV ? "integrated"
                                               : "decoupled"});
    }
    std::printf("%s", impls.render().c_str());
    return 0;
}
