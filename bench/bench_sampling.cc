/**
 * @file
 * Interval-sampling benchmark: what sampled simulation costs and
 * what it gets wrong.
 *
 * For every workload the harness runs the same grid point twice —
 * exact, then sampled under the given schedule — and reports host
 * wall time for both, the sampling speedup, and the extrapolated-
 * cycle error against the exact run. With a checkpoint directory the
 * sampled run executes a second time to show the warm-restore cost
 * (the first sampled run saves the checkpoint the second restores).
 * The numbers land in BENCH_sampling.json (EVE_EXP_OUT_DIR overrides
 * the directory) so the sampling error bound is diffable across
 * commits.
 *
 * Flags:
 *   --smoke            small inputs (CI)
 *   --paper            paper-scale inputs (mmult 1024^3)
 *   --sample SPEC      schedule ("default" if omitted; see
 *                      sim/sampling.hh)
 *   --checkpoint-dir PATH  also measure a warm (checkpoint-restored)
 *                      sampled pass
 *   --workloads LIST   comma-separated names (default: the paper's)
 *   --json NAME        output name (default BENCH_sampling.json)
 *   --max-error PCT    fail when any workload's cycle error exceeds
 *                      PCT percent (default 3, the acceptance bound;
 *                      0 disables)
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/log.hh"
#include "driver/table.hh"

using namespace eve;

namespace
{

std::vector<std::string>
splitList(const std::string& arg)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char c : arg) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

struct Row
{
    std::string workload;
    double exact_wall_s = 0;
    double sampled_wall_s = 0;
    double warm_wall_s = -1; ///< <0 = not measured
    double exact_cycles = 0;
    double sampled_cycles = 0;
    double error_pct = 0;
    std::uint64_t windows = 0;
};

} // namespace

int
main(int argc, char** argv)
{
    setInformEnabled(false);
    bool small = bench::smallRuns();
    bool paper = bench::paperRuns();
    std::string sample_spec = "default";
    std::string checkpoint_dir;
    std::string json_name = "BENCH_sampling.json";
    std::vector<std::string> workloads = exp::paperWorkloads();
    double max_error_pct = 3;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc)
                fatal("%s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--smoke")
            small = true;
        else if (arg == "--paper")
            paper = true;
        else if (arg == "--sample")
            sample_spec = value();
        else if (arg == "--checkpoint-dir")
            checkpoint_dir = value();
        else if (arg == "--workloads")
            workloads = splitList(value());
        else if (arg == "--json")
            json_name = value();
        else if (arg == "--max-error")
            max_error_pct = std::strtod(value(), nullptr);
        else
            fatal("unknown flag '%s'", arg.c_str());
    }

    const std::string scale =
        paper ? "paper" : (small ? "small" : "full");
    SamplingConfig sampling;
    if (!parseSamplingFlag(sample_spec, sampling))
        fatal("--sample: bad spec '%s'", sample_spec.c_str());

    std::printf("Interval sampling: exact vs. sampled (%s inputs, "
                "schedule %s)\n\n",
                scale.c_str(), samplingCanonical(sampling).c_str());

    // One grid point per workload; the error bound is about the
    // extrapolation, not the system zoo, so the paper's default EVE
    // configuration stands in for all of them.
    exp::SweepSpec spec;
    spec.system(bench::makeConfig(SystemKind::O3EVE));
    spec.workloads(workloads, scale);

    std::vector<Row> rows;
    double exact_total = 0, sampled_total = 0;
    double max_err = 0;
    std::vector<exp::Job> jobs = spec.jobs();
    for (exp::Job& job : jobs) {
        Row row;
        row.workload = job.workload;

        exp::JobResult exact;
        exp::runJob(job, exact);
        if (exact.status != exp::JobStatus::Ok)
            fatal("exact job '%s' %s: %s", job.label.c_str(),
                  exp::jobStatusName(exact.status),
                  exact.error.c_str());
        row.exact_wall_s = exact.wall_seconds;
        row.exact_cycles = exact.result.cycles;

        job.sampling = sampling;
        exp::JobResult samp;
        exp::runJob(job, samp, 1, checkpoint_dir);
        if (samp.status != exp::JobStatus::Ok)
            fatal("sampled job '%s' %s: %s", job.label.c_str(),
                  exp::jobStatusName(samp.status),
                  samp.error.c_str());
        row.sampled_wall_s = samp.wall_seconds;
        row.sampled_cycles = samp.result.cycles;
        row.windows = samp.result.sample_windows;
        row.error_pct = row.exact_cycles > 0
                            ? 100.0 *
                                  std::fabs(row.sampled_cycles -
                                            row.exact_cycles) /
                                  row.exact_cycles
                            : 0;

        if (!checkpoint_dir.empty()) {
            exp::JobResult warm;
            exp::runJob(job, warm, 1, checkpoint_dir);
            row.warm_wall_s = warm.wall_seconds;
        }

        exact_total += row.exact_wall_s;
        sampled_total += row.sampled_wall_s;
        max_err = std::max(max_err, row.error_pct);
        rows.push_back(row);
    }

    TextTable table({"workload", "exact_s", "sampled_s", "warm_s",
                     "speedup", "windows", "err%"});
    for (const auto& r : rows)
        table.addRow(
            {r.workload, TextTable::num(r.exact_wall_s, 3),
             TextTable::num(r.sampled_wall_s, 3),
             r.warm_wall_s < 0 ? "-"
                               : TextTable::num(r.warm_wall_s, 3),
             TextTable::num(r.sampled_wall_s > 0
                                ? r.exact_wall_s / r.sampled_wall_s
                                : 0, 2),
             std::to_string(r.windows),
             TextTable::num(r.error_pct, 3)});
    std::printf("%s\n", table.render().c_str());
    std::printf("total: exact %.3fs, sampled %.3fs (%.2fx), max "
                "cycle error %.3f%%\n",
                exact_total, sampled_total,
                sampled_total > 0 ? exact_total / sampled_total : 0,
                max_err);

    std::string json = "{";
    json += "\"bench\":\"sampling\",\"grid\":\"" + scale + "\"";
    json += ",\"sampling\":\"" + samplingCanonical(sampling) + "\"";
    json += ",\"total_exact_wall_s\":" + std::to_string(exact_total);
    json += ",\"total_sampled_wall_s\":" +
            std::to_string(sampled_total);
    json += ",\"speedup\":" +
            std::to_string(sampled_total > 0
                               ? exact_total / sampled_total
                               : 0);
    json += ",\"max_error_pct\":" + std::to_string(max_err);
    json += ",\"workloads\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        if (i)
            json += ",";
        json += "{\"workload\":\"" + r.workload + "\"";
        json += ",\"exact_wall_s\":" + std::to_string(r.exact_wall_s);
        json += ",\"sampled_wall_s\":" +
                std::to_string(r.sampled_wall_s);
        if (r.warm_wall_s >= 0)
            json += ",\"warm_wall_s\":" +
                    std::to_string(r.warm_wall_s);
        json += ",\"exact_cycles\":" + std::to_string(r.exact_cycles);
        json += ",\"sampled_cycles\":" +
                std::to_string(r.sampled_cycles);
        json += ",\"error_pct\":" + std::to_string(r.error_pct);
        json += ",\"sample_windows\":" + std::to_string(r.windows);
        json += "}";
    }
    json += "]}";

    const std::string json_path = exp::artifactPath(json_name);
    std::ofstream out(json_path);
    if (!out)
        fatal("cannot open '%s' for writing", json_path.c_str());
    out << json << '\n';
    if (!out)
        fatal("write to '%s' failed", json_path.c_str());
    std::fprintf(stderr, "results: %s\n", json_path.c_str());

    if (max_error_pct > 0 && max_err > max_error_pct)
        fatal("sampling error %.3f%% exceeds the %.2f%% bound",
              max_err, max_error_pct);
    return 0;
}
