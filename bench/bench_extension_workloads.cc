/**
 * @file
 * Extension workloads (beyond the paper's Table IV): spmv (gather
 * bound), fir (streaming MAC), and scan (cross-element bound) —
 * showing how the EVE design space behaves on kernel shapes the
 * paper did not evaluate.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/log.hh"
#include "driver/table.hh"
#include "workloads/workload.hh"

using namespace eve;

int
main()
{
    setInformEnabled(false);
    const bool small = bench::smallRuns();
    const auto systems = bench::fig6Systems();

    std::printf("Extension workloads: speed-up over IO\n\n");
    std::vector<std::string> headers = {"workload"};
    for (const auto& cfg : systems)
        headers.push_back(systemName(cfg));
    TextTable table(headers);

    std::vector<std::string> names = {"spmv", "fir", "scan"};
    if (bench::rivecRuns())
        names.insert(names.end(), {"axpy", "blackscholes",
                                   "streamcluster", "particlefilter"});
    for (const std::string& wname : names) {
        double io_seconds = 0.0;
        std::vector<std::string> row = {wname};
        for (const auto& cfg : systems) {
            auto w = makeWorkload(wname, small);
            const RunResult r = runWorkload(cfg, *w);
            if (r.mismatches)
                fatal("%s failed functionally on %s", wname.c_str(),
                      r.system.c_str());
            if (cfg.kind == SystemKind::IO)
                io_seconds = r.seconds;
            row.push_back(TextTable::num(io_seconds / r.seconds, 2));
        }
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Shapes: spmv is gather/MSHR bound (EVE flat-ish); "
                "fir is MAC bound (EVE tracks\nthe Figure 2 multiply "
                "curve); scan is VRU/cross-element bound (favours "
                "short-VL\nmachines, an honest EVE weakness).\n");
    return 0;
}
