/**
 * @file
 * Simulator-speed benchmark: how fast the timing core itself runs.
 *
 * Executes the Table III sweep (every simulated system crossed with
 * the paper's workloads) serially, measuring host jobs/sec and
 * host-ns per simulated cycle, overall and per system. The numbers
 * land in BENCH_simspeed.json (EVE_EXP_OUT_DIR overrides the
 * directory) so perf regressions are diffable across commits.
 *
 * The same pass can drive the timing-parity guard: --golden checks
 * the run's stat fingerprints against a checked-in golden file and
 * fails if any simulated number moved (see src/exp/perf.hh), and
 * --update-golden regenerates that file after an *intentional*
 * timing change (which must also bump exp::kSimulatorSalt).
 *
 * Flags:
 *   --smoke               small inputs, one iteration (CI)
 *   --iters N             measurement iterations (default 1; 3 with
 *                         full inputs smooths host-timer noise)
 *   --sim-threads N       threads pipelining each simulation (jobs
 *                         still run one at a time, so attribution
 *                         stays exact; timing is parity-guarded at
 *                         any value)
 *   --json PATH           output path (default BENCH_simspeed.json)
 *   --golden PATH         run the timing-parity check against PATH
 *   --update-golden PATH  write fresh golden fingerprints to PATH
 *   --baseline-jps X      record speedup vs. a baseline jobs/sec
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "bench_util.hh"
#include "common/log.hh"
#include "driver/table.hh"
#include "exp/perf.hh"

using namespace eve;

int
main(int argc, char** argv)
{
    setInformEnabled(false);
    bool small = bench::smallRuns();
    unsigned iters = 1;
    unsigned sim_threads = 1;
    std::string json_name = "BENCH_simspeed.json";
    std::string golden;
    std::string update_golden;
    double baseline_jps = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc)
                fatal("%s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--smoke")
            small = true;
        else if (arg == "--iters")
            iters = unsigned(std::strtoul(value(), nullptr, 10));
        else if (arg == "--sim-threads")
            sim_threads =
                unsigned(std::strtoul(value(), nullptr, 10));
        else if (arg == "--json")
            json_name = value();
        else if (arg == "--golden")
            golden = value();
        else if (arg == "--update-golden")
            update_golden = value();
        else if (arg == "--baseline-jps")
            baseline_jps = std::strtod(value(), nullptr);
        else
            fatal("unknown flag '%s'", arg.c_str());
    }

    const std::string scale = small ? "small" : "full";
    const exp::SweepSpec spec = exp::tableIIISweep(small);
    const auto jobs = spec.jobs();

    std::printf("Simulator speed: Table III sweep (%zu jobs, %s "
                "inputs, %u iteration%s)\n\n",
                jobs.size(), scale.c_str(), iters,
                iters == 1 ? "" : "s");

    const exp::SpeedReport report =
        exp::measureSimSpeed(jobs, iters, sim_threads);

    TextTable table({"system", "jobs", "wall_s", "jobs/s",
                     "Mcycles", "ns/cycle"});
    for (const auto& ss : report.per_system)
        table.addRow({ss.system, std::to_string(ss.jobs),
                      TextTable::num(ss.wall_seconds, 3),
                      TextTable::num(ss.jobs_per_sec, 2),
                      TextTable::num(ss.sim_cycles / 1e6, 2),
                      TextTable::num(ss.ns_per_sim_cycle, 1)});
    table.addRow({"total", std::to_string(report.jobs),
                  TextTable::num(report.wall_seconds, 3),
                  TextTable::num(report.jobs_per_sec, 2),
                  TextTable::num(report.sim_cycles / 1e6, 2),
                  TextTable::num(report.ns_per_sim_cycle, 1)});
    std::printf("%s\n", table.render().c_str());
    if (baseline_jps > 0)
        std::printf("speedup vs. baseline (%.2f jobs/s): %.2fx\n",
                    baseline_jps, report.jobs_per_sec / baseline_jps);

    const std::string json_path = exp::artifactPath(json_name);
    std::ofstream out(json_path);
    if (!out)
        fatal("cannot open '%s' for writing", json_path.c_str());
    out << exp::speedReportJson(report,
                                "table3x" + scale, baseline_jps)
        << '\n';
    if (!out)
        fatal("write to '%s' failed", json_path.c_str());
    std::fprintf(stderr, "results: %s\n", json_path.c_str());

    if (!update_golden.empty()) {
        exp::ParityFile::fromResults(report.results, scale)
            .save(update_golden);
        std::fprintf(stderr, "parity goldens: %s\n",
                     update_golden.c_str());
    }
    if (!golden.empty()) {
        const auto diffs = exp::ParityFile::load(golden).check(
            report.results, scale);
        if (!diffs.empty()) {
            for (const auto& d : diffs)
                std::fprintf(stderr, "parity: %s\n", d.c_str());
            fatal("timing parity violated: %zu grid points diverge "
                  "from %s (an intentional timing change must bump "
                  "exp::kSimulatorSalt and refresh the goldens with "
                  "--update-golden)",
                  diffs.size(), golden.c_str());
        }
        std::printf("timing parity: %zu grid points byte-identical "
                    "to %s\n",
                    report.results.size(), golden.c_str());
    }
    return 0;
}
