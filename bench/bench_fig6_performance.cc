/**
 * @file
 * Figure 6: performance of every simulated system on every workload,
 * normalized to the in-order core (IO). Also prints the geometric
 * mean over the paper's geomean subset {k-means, pathfinder,
 * jacobi-2d, backprop, sw}.
 */

#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include "bench_util.hh"
#include "common/log.hh"
#include "driver/table.hh"
#include "workloads/workload.hh"

using namespace eve;

int
main()
{
    setInformEnabled(false);
    const bool small = bench::smallRuns();
    const auto systems = bench::fig6Systems();

    const std::set<std::string> geomean_set = {
        "k-means", "pathfinder", "jacobi-2d", "backprop", "sw"};

    std::vector<std::string> headers = {"workload"};
    for (const auto& cfg : systems)
        headers.push_back(systemName(cfg));
    TextTable table(headers);

    std::map<std::string, double> geo_acc;
    std::map<std::string, int> geo_n;

    std::printf("Figure 6: speed-up over the in-order core (IO)\n");
    std::printf("(higher is better; %s inputs)\n\n",
                small ? "small smoke-test" : "full");

    for (const auto& wname :
         {"vvadd", "mmult", "k-means", "pathfinder", "jacobi-2d",
          "backprop", "sw"}) {
        double io_seconds = 0.0;
        std::vector<std::string> row = {wname};
        for (const auto& cfg : systems) {
            auto w = makeWorkload(wname, small);
            const RunResult r = runWorkload(cfg, *w);
            if (r.mismatches)
                fatal("%s failed functionally on %s", wname,
                      r.system.c_str());
            if (cfg.kind == SystemKind::IO)
                io_seconds = r.seconds;
            const double speedup = io_seconds / r.seconds;
            row.push_back(TextTable::num(speedup, 2));
            if (geomean_set.count(wname)) {
                geo_acc[r.system] += std::log(speedup);
                geo_n[r.system] += 1;
            }
        }
        table.addRow(row);
    }

    std::vector<std::string> geo_row = {"geomean*"};
    for (const auto& cfg : systems) {
        const std::string name = systemName(cfg);
        geo_row.push_back(TextTable::num(
            std::exp(geo_acc[name] / geo_n[name]), 2));
    }
    table.addRow(geo_row);

    std::printf("%s\n", table.render().c_str());
    std::printf("* geomean over {k-means, pathfinder, jacobi-2d, "
                "backprop, sw} (the paper's subset)\n");
    return 0;
}
