/**
 * @file
 * Figure 6: performance of every simulated system on every workload,
 * normalized to the in-order core (IO). Also prints the geometric
 * mean over the paper's geomean subset {k-means, pathfinder,
 * jacobi-2d, backprop, sw}.
 *
 * The grid runs through the exp::Runner thread pool (one core per
 * independent simulation); results come back keyed by job index, so
 * the printed table is identical to the historical serial loop. A
 * JSON-lines artifact with the full stats maps is written next to
 * the table (EVE_EXP_OUT_DIR overrides the directory).
 */

#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include "bench_util.hh"
#include "common/log.hh"
#include "driver/table.hh"

using namespace eve;

int
main()
{
    setInformEnabled(false);
    const bool small = bench::smallRuns();
    const auto systems = bench::fig6Systems();

    const std::set<std::string> geomean_set = {
        "k-means", "pathfinder", "jacobi-2d", "backprop", "sw"};

    std::printf("Figure 6: speed-up over the in-order core (IO)\n");
    std::printf("(higher is better; %s inputs)\n\n",
                small ? "small smoke-test" : "full");

    const exp::SweepSpec spec = bench::fig6Sweep(small);
    bench::SweepOptions opts;
    opts.artifact = "fig6_performance.jsonl";
    const auto results = bench::runSweep(spec, opts);

    // jobs() order: systems outermost, workloads innermost.
    const std::size_t n_workloads = spec.workloadCount();
    auto at = [&](std::size_t sys, std::size_t wl) -> const RunResult& {
        return results[sys * n_workloads + wl].result;
    };

    std::vector<std::string> headers = {"workload"};
    for (const auto& cfg : systems)
        headers.push_back(systemName(cfg));
    TextTable table(headers);

    std::map<std::string, double> geo_acc;
    std::map<std::string, int> geo_n;

    for (std::size_t wl = 0; wl < n_workloads; ++wl) {
        const std::string& wname = results[wl].workload;
        const double io_seconds = at(0, wl).seconds; // systems[0] is IO
        std::vector<std::string> row = {wname};
        for (std::size_t sys = 0; sys < systems.size(); ++sys) {
            const RunResult& r = at(sys, wl);
            const double speedup = io_seconds / r.seconds;
            row.push_back(TextTable::num(speedup, 2));
            if (geomean_set.count(wname)) {
                geo_acc[r.system] += std::log(speedup);
                geo_n[r.system] += 1;
            }
        }
        table.addRow(row);
    }

    std::vector<std::string> geo_row = {"geomean*"};
    for (const auto& cfg : systems) {
        const std::string name = systemName(cfg);
        geo_row.push_back(TextTable::num(
            std::exp(geo_acc[name] / geo_n[name]), 2));
    }
    table.addRow(geo_row);

    std::printf("%s\n", table.render().c_str());
    std::printf("* geomean over {k-means, pathfinder, jacobi-2d, "
                "backprop, sw} (the paper's subset)\n");
    return 0;
}
