/**
 * @file
 * Shared helpers for the bench harnesses: workload scale selection
 * and the standard set of simulated systems.
 */

#ifndef EVE_BENCH_BENCH_UTIL_HH
#define EVE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/log.hh"
#include "driver/system.hh"
#include "exp/exp.hh"

namespace eve::bench
{

/** Honour EVE_BENCH_SMALL=1 for quick smoke runs. */
inline bool
smallRuns()
{
    const char* env = std::getenv("EVE_BENCH_SMALL");
    return env && env[0] == '1';
}

/** A Table III configuration of the given kind (defaults elsewhere). */
inline SystemConfig
makeConfig(SystemKind kind, unsigned pf = 8)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.eve_pf = pf;
    return cfg;
}

/** The Figure 6 system list: scalar + vector baselines + EVE sweep. */
inline std::vector<SystemConfig>
fig6Systems()
{
    std::vector<SystemConfig> systems;
    systems.push_back(makeConfig(SystemKind::IO));
    systems.push_back(makeConfig(SystemKind::O3));
    systems.push_back(makeConfig(SystemKind::O3IV));
    systems.push_back(makeConfig(SystemKind::O3DV));
    for (unsigned pf : {1u, 2u, 4u, 8u, 16u, 32u})
        systems.push_back(makeConfig(SystemKind::O3EVE, pf));
    return systems;
}

/** The EVE-only sweep (Figures 7 and 8). */
inline std::vector<SystemConfig>
eveSystems()
{
    std::vector<SystemConfig> systems;
    for (unsigned pf : {1u, 2u, 4u, 8u, 16u, 32u})
        systems.push_back(makeConfig(SystemKind::O3EVE, pf));
    return systems;
}

/**
 * The Figure 6 experiment grid as a sweep spec: every Table III
 * system crossed with the paper's workload list. Shared by the
 * performance figure (which runs it) and Table III (which only
 * enumerates expandedSystems()).
 */
inline exp::SweepSpec
fig6Sweep(bool small)
{
    exp::SweepSpec spec;
    spec.systems(fig6Systems());
    spec.workloads({"vvadd", "mmult", "k-means", "pathfinder",
                    "jacobi-2d", "backprop", "sw"},
                   small);
    return spec;
}

/**
 * Optional result cache from EVE_EXP_CACHE_DIR (nullptr when unset).
 * Benches that run through the exp::Runner opt in by passing it to
 * makeRunner(); rerunning a harness then re-simulates only grid
 * points whose content key changed.
 */
inline std::unique_ptr<exp::ResultCache>
envCache()
{
    const std::string dir = exp::envCacheDir();
    if (dir.empty())
        return nullptr;
    auto cache = std::make_unique<exp::ResultCache>(dir);
    const std::size_t loaded = cache->load();
    std::fprintf(stderr, "cache: %zu entries in %s\n", loaded,
                 cache->filePath().c_str());
    return cache;
}

/** Standard bench runner: env-tunable threads, abort-free sweeps. */
inline exp::Runner
makeRunner(exp::ResultCache* cache = nullptr)
{
    exp::RunnerOptions opts;
    opts.threads = exp::envThreads();
    opts.cache = cache;
    return exp::Runner(opts);
}

/** Die if any job in @p results failed or mismatched. */
inline void
requireAllOk(const std::vector<exp::JobResult>& results)
{
    for (const auto& r : results) {
        if (r.status != exp::JobStatus::Ok &&
            r.status != exp::JobStatus::Cached)
            fatal("job '%s' %s%s%s", r.label.c_str(),
                  exp::jobStatusName(r.status),
                  r.error.empty() ? "" : ": ",
                  r.error.c_str());
    }
}

/** Write the JSONL artifact and tell the user where it went. */
inline void
writeArtifact(const std::vector<exp::JobResult>& results,
              const std::string& name)
{
    const std::string path = exp::artifactPath(name);
    exp::writeJsonLines(results, path);
    std::fprintf(stderr, "results: %s\n", path.c_str());
}

} // namespace eve::bench

#endif // EVE_BENCH_BENCH_UTIL_HH
