/**
 * @file
 * Shared helpers for the bench harnesses: workload scale selection
 * and the standard set of simulated systems.
 */

#ifndef EVE_BENCH_BENCH_UTIL_HH
#define EVE_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <vector>

#include "driver/system.hh"

namespace eve::bench
{

/** Honour EVE_BENCH_SMALL=1 for quick smoke runs. */
inline bool
smallRuns()
{
    const char* env = std::getenv("EVE_BENCH_SMALL");
    return env && env[0] == '1';
}

/** A Table III configuration of the given kind (defaults elsewhere). */
inline SystemConfig
makeConfig(SystemKind kind, unsigned pf = 8)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.eve_pf = pf;
    return cfg;
}

/** The Figure 6 system list: scalar + vector baselines + EVE sweep. */
inline std::vector<SystemConfig>
fig6Systems()
{
    std::vector<SystemConfig> systems;
    systems.push_back(makeConfig(SystemKind::IO));
    systems.push_back(makeConfig(SystemKind::O3));
    systems.push_back(makeConfig(SystemKind::O3IV));
    systems.push_back(makeConfig(SystemKind::O3DV));
    for (unsigned pf : {1u, 2u, 4u, 8u, 16u, 32u})
        systems.push_back(makeConfig(SystemKind::O3EVE, pf));
    return systems;
}

/** The EVE-only sweep (Figures 7 and 8). */
inline std::vector<SystemConfig>
eveSystems()
{
    std::vector<SystemConfig> systems;
    for (unsigned pf : {1u, 2u, 4u, 8u, 16u, 32u})
        systems.push_back(makeConfig(SystemKind::O3EVE, pf));
    return systems;
}

} // namespace eve::bench

#endif // EVE_BENCH_BENCH_UTIL_HH
