/**
 * @file
 * Shared helpers for the bench harnesses: workload scale selection
 * and the standard set of simulated systems.
 */

#ifndef EVE_BENCH_BENCH_UTIL_HH
#define EVE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "driver/system.hh"
#include "exp/exp.hh"
#include "exp/perf.hh"

namespace eve::bench
{

/** Honour EVE_BENCH_SMALL=1 for quick smoke runs. */
inline bool
smallRuns()
{
    const char* env = std::getenv("EVE_BENCH_SMALL");
    return env && env[0] == '1';
}

/**
 * Honour EVE_BENCH_PAPER=1 for paper-scale inputs (mmult at
 * 1024x1024x1024). Meant to be combined with interval sampling
 * (EVE_EXP_SAMPLE) and checkpoints (EVE_EXP_CKPT_DIR) — see
 * EXPERIMENTS.md "Sampled simulation".
 */
inline bool
paperRuns()
{
    const char* env = std::getenv("EVE_BENCH_PAPER");
    return env && env[0] == '1';
}

/** The workload scale tag selected by the EVE_BENCH_* env vars. */
inline std::string
benchScale()
{
    if (smallRuns())
        return "small";
    return paperRuns() ? "paper" : "full";
}

/**
 * Honour EVE_BENCH_RIVEC=1: append the RiVEC-style extension
 * kernels (axpy, blackscholes, streamcluster, particlefilter) to
 * the Figure 6 / Table III workload axis. Off by default so the
 * BENCH_* speed and parity trajectories stay comparable across PRs.
 */
inline bool
rivecRuns()
{
    const char* env = std::getenv("EVE_BENCH_RIVEC");
    return env && env[0] == '1';
}

/** A Table III configuration of the given kind (defaults elsewhere). */
inline SystemConfig
makeConfig(SystemKind kind, unsigned pf = 8)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.eve_pf = pf;
    return cfg;
}

/**
 * The Figure 6 system list: scalar + vector baselines + EVE sweep.
 * One definition lives in exp::perf (the sim-speed benchmark runs
 * the identical grid); these are the bench-facing names.
 */
inline std::vector<SystemConfig>
fig6Systems()
{
    return exp::tableIIISystems();
}

/** The EVE-only sweep (Figures 7 and 8). */
inline std::vector<SystemConfig>
eveSystems()
{
    return exp::eveDesignSystems();
}

/**
 * The Figure 6 experiment grid as a sweep spec: every Table III
 * system crossed with the paper's workload list (plus the RiVEC
 * kernels under EVE_BENCH_RIVEC=1). Shared by the performance
 * figure (which runs it), Table III (which only enumerates
 * expandedSystems()), and the sim-speed benchmark (which pins the
 * paper list for trajectory comparability).
 */
inline exp::SweepSpec
fig6Sweep(bool small)
{
    return exp::tableIIISweep(small, rivecRuns());
}

/**
 * Every knob of a sweep execution in one place. Each field's empty/
 * zero default defers to the corresponding environment variable, so
 * a default-constructed SweepOptions behaves exactly like the env-
 * driven plumbing it replaced; a harness that needs to pin a value
 * sets the field and the env var is ignored.
 */
struct SweepOptions
{
    /** JSONL artifact name; empty writes no artifact. */
    std::string artifact;

    /** Result-cache directory; empty defers to EVE_EXP_CACHE_DIR. */
    std::string cache_dir;

    /**
     * Distributed jobs directory; empty defers to EVE_EXP_JOBS_DIR.
     * When neither is set the sweep runs on the in-process pool.
     */
    std::string jobs_dir;

    /** Worker threads / distributed lanes; 0 defers to EVE_EXP_THREADS. */
    unsigned threads = 0;

    /** Threads pipelining each simulation; <= 1 runs inline. */
    unsigned sim_threads = 1;

    /**
     * Interval-sampling schedule applied to every job (see
     * sim/sampling.hh); disabled default defers to EVE_EXP_SAMPLE.
     * Sampled results carry their own cache/job keys, so a sampled
     * bench run never collides with exact records.
     */
    SamplingConfig sampling;

    /**
     * Functional-checkpoint directory for sampled jobs; empty defers
     * to EVE_EXP_CKPT_DIR.
     */
    std::string checkpoint_dir;

    /** Die unless every job is Ok/Cached (on by default). */
    bool require_ok = true;
};

/**
 * Optional result cache from @p dir, or EVE_EXP_CACHE_DIR when empty
 * (nullptr when neither is set). Rerunning a harness then
 * re-simulates only grid points whose content key changed.
 */
inline std::unique_ptr<exp::ResultCache>
envCache(const std::string& dir = {})
{
    const std::string resolved = dir.empty() ? exp::envCacheDir() : dir;
    if (resolved.empty())
        return nullptr;
    auto cache = std::make_unique<exp::ResultCache>(resolved);
    const std::size_t loaded = cache->load();
    std::fprintf(stderr, "cache: %zu entries in %s\n", loaded,
                 cache->filePath().c_str());
    return cache;
}

/** Standard bench runner: env-tunable threads, abort-free sweeps. */
inline exp::Runner
makeRunner(exp::ResultCache* cache = nullptr, unsigned threads = 0,
           unsigned sim_threads = 1)
{
    exp::RunnerOptions opts;
    opts.threads = threads ? threads : exp::envThreads();
    opts.sim_threads = sim_threads;
    opts.cache = cache;
    return exp::Runner(opts);
}

/** Die if any job in @p results failed or mismatched. */
inline void
requireAllOk(const std::vector<exp::JobResult>& results)
{
    for (const auto& r : results) {
        if (r.status != exp::JobStatus::Ok &&
            r.status != exp::JobStatus::Cached)
            fatal("job '%s' %s%s%s", r.label.c_str(),
                  exp::jobStatusName(r.status),
                  r.error.empty() ? "" : ": ",
                  r.error.c_str());
    }
}

/** Write the JSONL artifact and tell the user where it went. */
inline void
writeArtifact(const std::vector<exp::JobResult>& results,
              const std::string& name)
{
    const std::string path = exp::artifactPath(name);
    exp::writeJsonLines(results, path);
    std::fprintf(stderr, "results: %s\n", path.c_str());
}

/**
 * The standard harness plumbing in one call, over an explicit job
 * list: reindex the jobs 0..N-1, wire up the optional result cache,
 * execute, die if any job failed (unless opts.require_ok is off),
 * write the JSONL artifact (skipped when opts.artifact is empty),
 * and hand back the index-ordered results.
 *
 * When a jobs directory is configured (opts.jobs_dir or
 * EVE_EXP_JOBS_DIR) the jobs run over the distributed job-file
 * protocol (exp/dist.hh) under that directory — any
 * `eve_sweep --worker --jobs-dir DIR` processes sharing it take part
 * — otherwise on the in-process thread pool. Either way the results
 * (and the artifact) are byte-identical, so the choice is a pure
 * deployment decision.
 */
inline std::vector<exp::JobResult>
runSweep(std::vector<exp::Job> jobs, const SweepOptions& opts = {})
{
    SamplingConfig sampling = opts.sampling;
    if (!sampling.enabled()) {
        const std::string spec = exp::envSampling();
        if (!spec.empty() && !parseSamplingFlag(spec, sampling))
            fatal("EVE_EXP_SAMPLE: bad spec '%s'", spec.c_str());
    }
    const std::string checkpoint_dir = opts.checkpoint_dir.empty()
                                           ? exp::envCheckpointDir()
                                           : opts.checkpoint_dir;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        jobs[i].index = i;
        if (sampling.enabled())
            jobs[i].sampling = sampling;
    }
    const auto cache = envCache(opts.cache_dir);
    std::vector<exp::JobResult> results;
    const std::string jobs_dir =
        opts.jobs_dir.empty() ? exp::envJobsDir() : opts.jobs_dir;
    if (!jobs_dir.empty()) {
        exp::DistOptions dist;
        dist.jobs_dir = jobs_dir;
        const unsigned lanes =
            opts.threads ? opts.threads : exp::envThreads();
        dist.lanes =
            lanes ? lanes : std::thread::hardware_concurrency();
        dist.sim_threads = opts.sim_threads;
        dist.checkpoint_dir = checkpoint_dir;
        results = exp::runDistributed(jobs, dist, cache.get());
    } else {
        exp::RunnerOptions ropts;
        ropts.threads = opts.threads ? opts.threads
                                     : exp::envThreads();
        ropts.sim_threads = opts.sim_threads;
        ropts.cache = cache.get();
        ropts.checkpoint_dir = checkpoint_dir;
        results = exp::Runner(ropts).run(jobs);
    }
    if (opts.require_ok)
        requireAllOk(results);
    if (!opts.artifact.empty())
        writeArtifact(results, opts.artifact);
    return results;
}

/**
 * runSweep() over a SweepSpec's expansion. Every table/figure bench
 * goes through here so cache, artifact, and distributed behaviour
 * stay uniform.
 */
inline std::vector<exp::JobResult>
runSweep(const exp::SweepSpec& spec, const SweepOptions& opts = {})
{
    return runSweep(spec.jobs(), opts);
}

} // namespace eve::bench

#endif // EVE_BENCH_BENCH_UTIL_HH
