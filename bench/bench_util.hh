/**
 * @file
 * Shared helpers for the bench harnesses: workload scale selection
 * and the standard set of simulated systems.
 */

#ifndef EVE_BENCH_BENCH_UTIL_HH
#define EVE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "driver/system.hh"
#include "exp/exp.hh"
#include "exp/perf.hh"

namespace eve::bench
{

/** Honour EVE_BENCH_SMALL=1 for quick smoke runs. */
inline bool
smallRuns()
{
    const char* env = std::getenv("EVE_BENCH_SMALL");
    return env && env[0] == '1';
}

/** A Table III configuration of the given kind (defaults elsewhere). */
inline SystemConfig
makeConfig(SystemKind kind, unsigned pf = 8)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.eve_pf = pf;
    return cfg;
}

/**
 * The Figure 6 system list: scalar + vector baselines + EVE sweep.
 * One definition lives in exp::perf (the sim-speed benchmark runs
 * the identical grid); these are the bench-facing names.
 */
inline std::vector<SystemConfig>
fig6Systems()
{
    return exp::tableIIISystems();
}

/** The EVE-only sweep (Figures 7 and 8). */
inline std::vector<SystemConfig>
eveSystems()
{
    return exp::eveDesignSystems();
}

/**
 * The Figure 6 experiment grid as a sweep spec: every Table III
 * system crossed with the paper's workload list. Shared by the
 * performance figure (which runs it), Table III (which only
 * enumerates expandedSystems()), and the sim-speed benchmark.
 */
inline exp::SweepSpec
fig6Sweep(bool small)
{
    return exp::tableIIISweep(small);
}

/**
 * Optional result cache from EVE_EXP_CACHE_DIR (nullptr when unset).
 * Benches that run through the exp::Runner opt in by passing it to
 * makeRunner(); rerunning a harness then re-simulates only grid
 * points whose content key changed.
 */
inline std::unique_ptr<exp::ResultCache>
envCache()
{
    const std::string dir = exp::envCacheDir();
    if (dir.empty())
        return nullptr;
    auto cache = std::make_unique<exp::ResultCache>(dir);
    const std::size_t loaded = cache->load();
    std::fprintf(stderr, "cache: %zu entries in %s\n", loaded,
                 cache->filePath().c_str());
    return cache;
}

/** Standard bench runner: env-tunable threads, abort-free sweeps. */
inline exp::Runner
makeRunner(exp::ResultCache* cache = nullptr)
{
    exp::RunnerOptions opts;
    opts.threads = exp::envThreads();
    opts.cache = cache;
    return exp::Runner(opts);
}

/** Die if any job in @p results failed or mismatched. */
inline void
requireAllOk(const std::vector<exp::JobResult>& results)
{
    for (const auto& r : results) {
        if (r.status != exp::JobStatus::Ok &&
            r.status != exp::JobStatus::Cached)
            fatal("job '%s' %s%s%s", r.label.c_str(),
                  exp::jobStatusName(r.status),
                  r.error.empty() ? "" : ": ",
                  r.error.c_str());
    }
}

/** Write the JSONL artifact and tell the user where it went. */
inline void
writeArtifact(const std::vector<exp::JobResult>& results,
              const std::string& name)
{
    const std::string path = exp::artifactPath(name);
    exp::writeJsonLines(results, path);
    std::fprintf(stderr, "results: %s\n", path.c_str());
}

/**
 * The standard harness plumbing in one call, over an explicit job
 * list: reindex the jobs 0..N-1, wire up the optional
 * EVE_EXP_CACHE_DIR result cache, execute, die if any job failed,
 * write the JSONL artifact (skipped when @p artifact_name is empty),
 * and hand back the index-ordered results.
 *
 * When EVE_EXP_JOBS_DIR is set the jobs run over the distributed
 * job-file protocol (exp/dist.hh) under that directory — any
 * `eve_sweep --worker --jobs-dir DIR` processes sharing it take part
 * — otherwise on the in-process thread pool. Either way the results
 * (and the artifact) are byte-identical, so the env var is a pure
 * deployment decision.
 */
inline std::vector<exp::JobResult>
runSweepJobs(std::vector<exp::Job> jobs,
             const std::string& artifact_name)
{
    for (std::size_t i = 0; i < jobs.size(); ++i)
        jobs[i].index = i;
    const auto cache = envCache();
    std::vector<exp::JobResult> results;
    const std::string jobs_dir = exp::envJobsDir();
    if (!jobs_dir.empty()) {
        exp::DistOptions dist;
        dist.jobs_dir = jobs_dir;
        dist.lanes = exp::envThreads()
                         ? exp::envThreads()
                         : std::thread::hardware_concurrency();
        results = exp::runDistributed(jobs, dist, cache.get());
    } else {
        results = makeRunner(cache.get()).run(jobs);
    }
    requireAllOk(results);
    if (!artifact_name.empty())
        writeArtifact(results, artifact_name);
    return results;
}

/**
 * runSweepJobs() over a SweepSpec's expansion. Every table/figure
 * bench goes through here so cache, artifact, and distributed
 * behaviour stay uniform.
 */
inline std::vector<exp::JobResult>
runSweep(const exp::SweepSpec& spec, const std::string& artifact_name)
{
    return runSweepJobs(spec.jobs(), artifact_name);
}

} // namespace eve::bench

#endif // EVE_BENCH_BENCH_UTIL_HH
