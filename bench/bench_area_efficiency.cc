/**
 * @file
 * Section VII area-efficiency analysis: system area relative to the
 * O3 core, and area-normalized performance (geomean speed-up over IO
 * divided by relative area). The paper's headline: EVE-8 achieves
 * DV-class performance at IV-class area — over 2x the
 * area-normalized performance of O3+DV.
 */

#include <cmath>
#include <cstdio>

#include "analytic/circuits.hh"
#include "bench_util.hh"
#include "common/log.hh"
#include "driver/table.hh"
#include "workloads/workload.hh"

using namespace eve;

namespace
{

double
systemArea(const SystemConfig& cfg)
{
    switch (cfg.kind) {
      case SystemKind::IO:
      case SystemKind::O3:
        return SystemAreaModel::o3();
      case SystemKind::O3IV:
        return SystemAreaModel::o3iv();
      case SystemKind::O3DV:
        return SystemAreaModel::o3dv();
      case SystemKind::O3EVE:
        return SystemAreaModel::o3eve(cfg.eve_pf);
    }
    return 1.0;
}

} // namespace

int
main()
{
    setInformEnabled(false);
    const bool small = bench::smallRuns();

    const char* subset[] = {"k-means", "pathfinder", "jacobi-2d",
                            "backprop", "sw"};

    std::printf("Area efficiency (Section VII)\n\n");
    TextTable table({"system", "area vs O3", "geomean speedup vs IO",
                     "area-normalized"});

    double io_seconds[5] = {};
    std::vector<std::pair<std::string, double>> results;
    for (const auto& cfg : bench::fig6Systems()) {
        double acc = 0.0;
        for (std::size_t i = 0; i < 5; ++i) {
            auto w = makeWorkload(subset[i], small);
            const RunResult r = runWorkload(cfg, *w);
            if (r.mismatches)
                fatal("%s failed functionally on %s", subset[i],
                      r.system.c_str());
            if (cfg.kind == SystemKind::IO)
                io_seconds[i] = r.seconds;
            acc += std::log(io_seconds[i] / r.seconds);
        }
        const double geomean = std::exp(acc / 5.0);
        const double area = systemArea(cfg);
        table.addRow({systemName(cfg), TextTable::num(area, 2),
                      TextTable::num(geomean, 2),
                      TextTable::num(geomean / area, 2)});
        results.emplace_back(systemName(cfg), geomean / area);
    }
    std::printf("%s\n", table.render().c_str());

    double dv = 0, e8 = 0;
    for (const auto& [name, val] : results) {
        if (name == "O3+DV")
            dv = val;
        if (name == "O3+EVE-8")
            e8 = val;
    }
    std::printf("EVE-8 area-normalized performance = %.2fx O3+DV "
                "(paper: over 2x)\n", e8 / dv);
    return 0;
}
