/**
 * @file
 * Ablation: DTU count sweep (the transpose/detranspose bandwidth
 * study behind Figure 7's ld_dt/st_dt categories). pathfinder is the
 * paper's transpose-sensitive workload; EVE-32 needs no transpose
 * and should be insensitive.
 *
 * Each (workload, PF) case is its own mini sweep over the DTU axis;
 * the cases are concatenated into one job list and run through
 * runSweep() — thread-pool (or, with EVE_EXP_JOBS_DIR,
 * distributed) execution, the EVE_EXP_CACHE_DIR result cache, and a
 * JSONL artifact.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/log.hh"
#include "driver/table.hh"
#include "workloads/workload.hh"

using namespace eve;

int
main()
{
    setInformEnabled(false);
    const bool small = bench::smallRuns();

    std::printf("Ablation: DTU count vs. performance "
                "(speed-up over the 8-DTU baseline)\n\n");

    const std::vector<unsigned> sweeps = {1, 2, 4, 8, 16, 32};

    struct Case
    {
        const char* workload;
        unsigned pf;
    };
    const std::vector<Case> cases = {{"pathfinder", 8}, {"mmult", 4},
                                     {"vvadd", 8}, {"pathfinder", 32}};

    std::vector<exp::Job> jobs;
    for (const Case& c : cases) {
        exp::SweepSpec spec;
        spec.system(bench::makeConfig(SystemKind::O3EVE, c.pf))
            .axis<unsigned>("dtus", sweeps,
                            [](SystemConfig& cfg, unsigned d) {
                                cfg.dtus = d;
                            })
            .workloads({c.workload}, small);
        for (auto& job : spec.jobs())
            jobs.push_back(std::move(job));
    }
    bench::SweepOptions opts;
    opts.artifact = "ablation_dtu.jsonl";
    const auto results = bench::runSweep(std::move(jobs), opts);

    // Each case occupies sweeps.size() consecutive results, in DTU
    // order; the 8-DTU column is the speed-up baseline.
    std::vector<std::string> headers = {"config"};
    for (unsigned d : sweeps)
        headers.push_back(std::to_string(d) + " DTUs");
    TextTable table(headers);

    for (std::size_t ci = 0; ci < cases.size(); ++ci) {
        double base_seconds = 0.0;
        for (std::size_t di = 0; di < sweeps.size(); ++di)
            if (sweeps[di] == 8)
                base_seconds =
                    results[ci * sweeps.size() + di].result.seconds;
        std::vector<std::string> row = {
            std::string(cases[ci].workload) + " @ EVE-" +
            std::to_string(cases[ci].pf)};
        for (std::size_t di = 0; di < sweeps.size(); ++di)
            row.push_back(TextTable::num(
                base_seconds /
                    results[ci * sweeps.size() + di].result.seconds,
                2));
        table.addRow(row);
    }
    std::printf("%s", table.render().c_str());
    return 0;
}
