/**
 * @file
 * Ablation: DTU count sweep (the transpose/detranspose bandwidth
 * study behind Figure 7's ld_dt/st_dt categories). pathfinder is the
 * paper's transpose-sensitive workload; EVE-32 needs no transpose
 * and should be insensitive.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/log.hh"
#include "driver/table.hh"
#include "workloads/workload.hh"

using namespace eve;

int
main()
{
    setInformEnabled(false);
    const bool small = bench::smallRuns();

    std::printf("Ablation: DTU count vs. performance "
                "(speed-up over the 8-DTU baseline)\n\n");

    const unsigned sweeps[] = {1, 2, 4, 8, 16, 32};
    std::vector<std::string> headers = {"config"};
    for (unsigned d : sweeps)
        headers.push_back(std::to_string(d) + " DTUs");
    TextTable table(headers);

    struct Case
    {
        const char* workload;
        unsigned pf;
    };
    for (const Case c : {Case{"pathfinder", 8}, Case{"mmult", 4},
                         Case{"vvadd", 8}, Case{"pathfinder", 32}}) {
        double base_seconds = 0.0;
        std::vector<double> seconds;
        for (unsigned d : sweeps) {
            SystemConfig cfg;
            cfg.kind = SystemKind::O3EVE;
            cfg.eve_pf = c.pf;
            cfg.dtus = d;
            auto w = makeWorkload(c.workload, small);
            const RunResult r = runWorkload(cfg, *w);
            if (r.mismatches)
                fatal("%s failed functionally", c.workload);
            if (d == 8)
                base_seconds = r.seconds;
            seconds.push_back(r.seconds);
        }
        std::vector<std::string> row = {
            std::string(c.workload) + " @ EVE-" + std::to_string(c.pf)};
        for (double s : seconds)
            row.push_back(TextTable::num(base_seconds / s, 2));
        table.addRow(row);
    }
    std::printf("%s", table.render().c_str());
    return 0;
}
