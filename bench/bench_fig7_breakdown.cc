/**
 * @file
 * Figure 7: execution breakdown of every EVE design on every
 * workload, normalized to EVE-1's execution time — busy vs. the
 * stall categories (VRU, load/store memory, load/store transpose,
 * VMU structural, empty, dependency).
 *
 * The grid is a SweepSpec (EVE designs x paper workloads) executed
 * through the shared runSweep() plumbing: thread-pool execution,
 * optional EVE_EXP_CACHE_DIR result cache, and a JSONL artifact with
 * the full per-job stats.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/log.hh"
#include "driver/table.hh"

using namespace eve;

int
main()
{
    setInformEnabled(false);
    const bool small = bench::smallRuns();

    std::printf("Figure 7: EVE execution breakdown, normalized to "
                "EVE-1 execution time\n\n");

    exp::SweepSpec spec;
    spec.systems(bench::eveSystems());
    spec.workloads(exp::paperWorkloads(), small);

    bench::SweepOptions opts;
    opts.artifact = "fig7_breakdown.jsonl";
    const auto results = bench::runSweep(spec, opts);

    // jobs() order: systems outermost, workloads innermost.
    const std::size_t n_workloads = spec.workloadCount();
    const std::size_t n_systems = bench::eveSystems().size();
    auto at = [&](std::size_t sys, std::size_t wl) -> const RunResult& {
        return results[sys * n_workloads + wl].result;
    };

    for (std::size_t wl = 0; wl < n_workloads; ++wl) {
        const std::string& wname = results[wl].workload;
        TextTable table({"design", "total", "busy", "vru", "ld_mem",
                         "st_mem", "ld_dt", "st_dt", "vmu", "empty",
                         "dep"});
        const double eve1_ticks = at(0, wl).total_ticks; // EVE-1 first
        for (std::size_t sys = 0; sys < n_systems; ++sys) {
            const exp::JobResult& jr = results[sys * n_workloads + wl];
            const RunResult& r = jr.result;
            const auto& b = r.breakdown;
            auto norm = [&](double v) {
                return TextTable::num(v / eve1_ticks, 3);
            };
            table.addRow({"EVE-" + std::to_string(jr.config.eve_pf),
                          norm(r.total_ticks), norm(b.busy),
                          norm(b.vru_stall), norm(b.ld_mem_stall),
                          norm(b.st_mem_stall), norm(b.ld_dt_stall),
                          norm(b.st_dt_stall), norm(b.vmu_stall),
                          norm(b.empty_stall), norm(b.dep_stall)});
        }
        std::printf("%s\n%s\n", wname.c_str(), table.render().c_str());
    }
    return 0;
}
