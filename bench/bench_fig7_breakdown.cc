/**
 * @file
 * Figure 7: execution breakdown of every EVE design on every
 * workload, normalized to EVE-1's execution time — busy vs. the
 * stall categories (VRU, load/store memory, load/store transpose,
 * VMU structural, empty, dependency).
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/log.hh"
#include "driver/table.hh"
#include "workloads/workload.hh"

using namespace eve;

int
main()
{
    setInformEnabled(false);
    const bool small = bench::smallRuns();

    std::printf("Figure 7: EVE execution breakdown, normalized to "
                "EVE-1 execution time\n\n");

    for (const auto* wname :
         {"vvadd", "mmult", "k-means", "pathfinder", "jacobi-2d",
          "backprop", "sw"}) {
        TextTable table({"design", "total", "busy", "vru", "ld_mem",
                         "st_mem", "ld_dt", "st_dt", "vmu", "empty",
                         "dep"});
        double eve1_ticks = 0.0;
        for (const auto& cfg : bench::eveSystems()) {
            auto w = makeWorkload(wname, small);
            System sys(cfg);
            const RunResult r = sys.run(*w);
            if (r.mismatches)
                fatal("%s failed functionally on %s", wname,
                      r.system.c_str());
            if (cfg.eve_pf == 1)
                eve1_ticks = r.total_ticks;
            const auto& b = r.breakdown;
            auto norm = [&](double v) {
                return TextTable::num(v / eve1_ticks, 3);
            };
            table.addRow({"EVE-" + std::to_string(cfg.eve_pf),
                          norm(r.total_ticks), norm(b.busy),
                          norm(b.vru_stall), norm(b.ld_mem_stall),
                          norm(b.st_mem_stall), norm(b.ld_dt_stall),
                          norm(b.st_dt_stall), norm(b.vmu_stall),
                          norm(b.empty_stall), norm(b.dep_stall)});
        }
        std::printf("%s\n%s\n", wname, table.render().c_str());
    }
    return 0;
}
