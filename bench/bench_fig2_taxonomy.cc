/**
 * @file
 * Figure 2: latency and throughput of vector add/logic and multiply
 * versus the parallelization factor, for a 256x256 S-CIM SRAM with
 * 32 vector registers, normalized to pf = 1. Latencies come from the
 * real micro-program lengths of the macro-op library.
 */

#include <cstdio>

#include "analytic/taxonomy.hh"
#include "driver/table.hh"

using namespace eve;

int
main()
{
    std::printf("Figure 2: latency & throughput vs. parallelization "
                "factor\n(256x256 S-CIM SRAM, 32 vregs, normalized "
                "to pf=1)\n\n");

    TaxonomyParams params;
    const auto sweep = taxonomySweep(params);
    const auto& base = sweep.front();

    TextTable table({"pf (ALUs)", "add lat", "mul lat", "add thr",
                     "mul thr", "add cyc", "mul cyc"});
    for (const auto& p : sweep) {
        table.addRow({std::to_string(p.pf) + " (" +
                          std::to_string(p.alus) + ")",
                      TextTable::num(double(p.addLatency) /
                                     double(base.addLatency), 3),
                      TextTable::num(double(p.mulLatency) /
                                     double(base.mulLatency), 3),
                      TextTable::num(p.addThroughput /
                                     base.addThroughput, 2),
                      TextTable::num(p.mulThroughput /
                                     base.mulThroughput, 2),
                      std::to_string(p.addLatency),
                      std::to_string(p.mulLatency)});
    }
    std::printf("%s\n", table.render().c_str());

    // Locate the throughput peak (the paper's balanced-utilization
    // point is pf = 4).
    unsigned best_pf = 1;
    double best = 0;
    for (const auto& p : sweep)
        if (p.addThroughput > best) {
            best = p.addThroughput;
            best_pf = p.pf;
        }
    std::printf("add/logic throughput peaks at pf = %u "
                "(paper: pf = 4, balanced utilization)\n", best_pf);
    return 0;
}
