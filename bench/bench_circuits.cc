/**
 * @file
 * Section VI circuit results: area overhead per EVE design (array
 * level, banked, and engine level), cycle times, and energy — from
 * the circuits model parameterized by the paper's OpenRAM
 * measurements, with the per-stack decomposition.
 */

#include <cstdio>

#include "analytic/circuits.hh"
#include "driver/table.hh"

using namespace eve;

int
main()
{
    std::printf("Section VI: EVE circuits evaluation\n\n");

    std::printf("Measured baseline: vanilla 28nm SRAM cycle time "
                "%.3f ns;\nsimplified 256x128 EVE SRAM overhead "
                "%.1f%% (DRC/LVS clean)\n\n",
                CircuitModel::baselineCycleNs(),
                CircuitModel::simplifiedOverheadPct());

    TextTable table({"design", "array ovh", "banked ovh",
                     "engine ovh", "cycle (ns)", "cycle penalty"});
    for (unsigned pf : {1u, 2u, 4u, 8u, 16u, 32u}) {
        const double cyc = CircuitModel::cycleTimeNs(pf);
        const double pen =
            100.0 * (cyc / CircuitModel::baselineCycleNs() - 1.0);
        table.addRow({"EVE-" + std::to_string(pf),
                      TextTable::num(CircuitModel::arrayOverheadPct(pf),
                                     1) + "%",
                      TextTable::num(
                          CircuitModel::bankedOverheadPct(pf), 1) + "%",
                      TextTable::num(
                          CircuitModel::engineOverheadPct(pf), 1) + "%",
                      TextTable::num(cyc, 3),
                      TextTable::num(pen, 0) + "%"});
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("Per-stack area decomposition (%% of a vanilla "
                "sub-array):\n\n");
    for (unsigned pf : {1u, 8u, 32u}) {
        std::printf("EVE-%u:\n", pf);
        for (const auto& stack : CircuitModel::stacks(pf))
            std::printf("  %-24s %5.1f%%\n", stack.stack.c_str(),
                        stack.pct);
    }

    std::printf("\nEnergy: blc = %.2fx a vanilla read; peak array "
                "power +%.0f%%;\nother extra operations cost less "
                "than a read (no bit-line precharge).\n",
                CircuitModel::blcEnergyVsRead(),
                CircuitModel::peakPowerOverheadPct());
    return 0;
}
