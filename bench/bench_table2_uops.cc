/**
 * @file
 * Table II: the supported EVE micro-operations, demonstrated by
 * executing each on a functional EVE SRAM and by showing the Figure 4
 * macro-operations (add, mul) in both encodings: the looped VLIW
 * tuple form run on the sequencer and the unrolled form from the
 * macro-op library, which must agree.
 */

#include <cstdio>

#include "core/sram/eve_sram.hh"
#include "core/uprog/macro_lib.hh"
#include "core/uprog/sequencer.hh"
#include "driver/table.hh"

using namespace eve;

int
main()
{
    std::printf("Table II: supported EVE micro-operations\n\n");
    TextTable table({"uop", "syntax", "description"});
    table.addRow({"read", "rd a, src", "read row a into src"});
    table.addRow({"write", "wr d, src", "write src into row d"});
    table.addRow({"blc", "blc a, b", "bit-line compute of a and b"});
    table.addRow({"lshift", "lshft", "1-bit shift left"});
    table.addRow({"rshift", "rshft", "1-bit shift right"});
    table.addRow({"mask shift", "m_shft", "shift the XRegister right"});
    table.addRow({"cnt init", "init cnt, val", "initialize counter"});
    table.addRow({"cnt decr", "decr cnt", "decrement counter"});
    table.addRow({"bnz", "bnz cnt, l", "branch while cnt not zero"});
    table.addRow({"bnd", "bnd cnt, l", "branch on binary decade"});
    table.addRow({"ret", "ret", "conclude execution"});
    std::printf("%s\n", table.render().c_str());

    std::printf("Figure 4 cross-check: looped (sequencer) vs unrolled "
                "(macro library)\n\n");
    TextTable check({"pf", "add loop cyc", "add unrolled cyc",
                     "mul loop cyc", "mul unrolled cyc", "values"});
    for (unsigned pf : {1u, 4u, 8u, 32u}) {
        EveSramConfig cfg;
        cfg.lanes = 4;
        cfg.pf = pf;

        // Looped add via the sequencer.
        EveSram sram(cfg);
        for (unsigned lane = 0; lane < 4; ++lane) {
            sram.writeElement(lane, 2, 1000 + 77 * lane);
            sram.writeElement(lane, 3, 23 + lane);
        }
        Sequencer seq(sram);
        const Cycles add_loop =
            seq.run(romAdd(sram, 1, 2, 3));
        bool ok = true;
        for (unsigned lane = 0; lane < 4; ++lane)
            ok = ok && sram.readElement(lane, 1) ==
                           (1000 + 77 * lane) + (23 + lane);

        const Cycles mul_loop = seq.run(romMul(
            sram, 4, 2, 3, sram.scratchReg(0), sram.scratchReg(1)));
        for (unsigned lane = 0; lane < 4; ++lane)
            ok = ok && sram.readElement(lane, 4) ==
                           std::uint32_t(1000 + 77 * lane) *
                               std::uint32_t(23 + lane);

        // Unrolled lengths from the macro library.
        MacroLib lib(cfg);
        Instr add;
        add.op = Op::VAdd;
        add.dst = 1;
        add.src1 = 2;
        add.src2 = 3;
        Instr mul = add;
        mul.op = Op::VMul;
        mul.dst = 4;

        check.addRow({std::to_string(pf),
                      std::to_string(add_loop),
                      std::to_string(lib.cycles(add)),
                      std::to_string(mul_loop),
                      std::to_string(lib.cycles(mul)),
                      ok ? "match" : "MISMATCH"});
    }
    std::printf("%s", check.render().c_str());
    return 0;
}
