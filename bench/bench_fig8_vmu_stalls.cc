/**
 * @file
 * Figure 8: cache-induced stalls in the VMU — the fraction of the
 * VMU's request-issue time spent stalled on LLC admission (MSHR
 * back-pressure), per workload per EVE design. These stalls do not
 * necessarily bubble execution; they can be hidden by outstanding
 * compute.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/log.hh"
#include "driver/table.hh"
#include "workloads/workload.hh"

using namespace eve;

int
main()
{
    setInformEnabled(false);
    const bool small = bench::smallRuns();

    std::printf("Figure 8: VMU cache-induced stall fraction "
                "(%% of request-issue time)\n\n");

    std::vector<std::string> headers = {"workload"};
    for (const auto& cfg : bench::eveSystems())
        headers.push_back("EVE-" + std::to_string(cfg.eve_pf));
    TextTable table(headers);

    for (const auto* wname :
         {"vvadd", "mmult", "k-means", "pathfinder", "jacobi-2d",
          "backprop", "sw"}) {
        std::vector<std::string> row = {wname};
        for (const auto& cfg : bench::eveSystems()) {
            auto w = makeWorkload(wname, small);
            System sys(cfg);
            const RunResult r = sys.run(*w);
            if (r.mismatches)
                fatal("%s failed functionally on %s", wname,
                      r.system.c_str());
            row.push_back(TextTable::num(
                100.0 * sys.eveSystem()->vmuCacheStallFraction(), 1));
        }
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Expected shape: stalls fall as the parallelization "
                "factor grows (the hardware\nvector length halves "
                "from EVE-8 on, halving MSHR demand); backprop stays"
                "\nsaturated (large-stride accesses: one line per "
                "element).\n");
    return 0;
}
