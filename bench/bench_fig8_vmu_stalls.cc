/**
 * @file
 * Figure 8: cache-induced stalls in the VMU — the fraction of the
 * VMU's request-issue time spent stalled on LLC admission (MSHR
 * back-pressure), per workload per EVE design. These stalls do not
 * necessarily bubble execution; they can be hidden by outstanding
 * compute.
 *
 * The grid is a SweepSpec (EVE designs x paper workloads) executed
 * through the shared runSweep() plumbing; the stall fraction is
 * recomputed from the flattened engine stats
 * (eve.vmu_cache_stall_ticks / eve.vmu_issue_ticks) each job
 * carries, so cached results reproduce the table exactly.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/log.hh"
#include "driver/table.hh"

using namespace eve;

namespace
{

double
stallFraction(const RunResult& r)
{
    const double stall = r.stat("eve.vmu_cache_stall_ticks");
    const double issue = r.stat("eve.vmu_issue_ticks");
    return (stall + issue) > 0 ? stall / (stall + issue) : 0.0;
}

} // namespace

int
main()
{
    setInformEnabled(false);
    const bool small = bench::smallRuns();

    std::printf("Figure 8: VMU cache-induced stall fraction "
                "(%% of request-issue time)\n\n");

    exp::SweepSpec spec;
    spec.systems(bench::eveSystems());
    spec.workloads(exp::paperWorkloads(), small);

    bench::SweepOptions opts;
    opts.artifact = "fig8_vmu_stalls.jsonl";
    const auto results = bench::runSweep(spec, opts);

    const std::size_t n_workloads = spec.workloadCount();
    const std::size_t n_systems = bench::eveSystems().size();

    std::vector<std::string> headers = {"workload"};
    for (const auto& cfg : bench::eveSystems())
        headers.push_back("EVE-" + std::to_string(cfg.eve_pf));
    TextTable table(headers);

    // jobs() order: systems outermost, workloads innermost.
    for (std::size_t wl = 0; wl < n_workloads; ++wl) {
        std::vector<std::string> row = {results[wl].workload};
        for (std::size_t sys = 0; sys < n_systems; ++sys) {
            const RunResult& r = results[sys * n_workloads + wl].result;
            row.push_back(
                TextTable::num(100.0 * stallFraction(r), 1));
        }
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Expected shape: stalls fall as the parallelization "
                "factor grows (the hardware\nvector length halves "
                "from EVE-8 on, halving MSHR demand); backprop stays"
                "\nsaturated (large-stride accesses: one line per "
                "element).\n");
    return 0;
}
