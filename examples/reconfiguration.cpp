/**
 * @file
 * The "ephemeral" in EVE: spawning a vector engine out of a warm
 * private L2 and tearing it back down (Section V-E).
 *
 * The example warms the L2 with dirty and clean lines, spawns EVE
 * (invalidating the carved-out ways, writing dirty lines back),
 * reports the spawn cost, runs a kernel with the spawn latency
 * charged, and shows that teardown is free.
 */

#include <cstdio>

#include "core/engine/reconfig.hh"
#include "driver/system.hh"
#include "mem/hierarchy.hh"
#include "workloads/vvadd.hh"

using namespace eve;

int
main()
{
    // A hierarchy in normal (8-way L2) mode that has been running
    // scalar code: half the L2 holds dirty data.
    HierarchyParams hp;
    MemHierarchy mem(hp);
    const unsigned line = mem.l2().params().line_bytes;
    const std::uint64_t lines =
        mem.l2().params().size_bytes / line;
    for (std::uint64_t i = 0; i < lines; ++i)
        mem.l2().touch(Addr(i) * line, /*dirty=*/i % 2 == 0);

    // Spawn: invalidate the EVE ways; dirty lines drain to the LLC.
    const SpawnCost cost = spawnEve(mem.l2(), mem.llc(), 0);
    std::printf("spawn: %llu lines visited in the carved-out ways "
                "(%llu dirty)\n",
                (unsigned long long)cost.valid_lines,
                (unsigned long long)cost.dirty_lines);
    std::printf("spawn cost: %llu cycles (%.2f us at %.3f ns)\n",
                (unsigned long long)cost.cycles,
                double(cost.ready_tick) / ticksPerNs / 1e3,
                mem.l2().params().clock_ns);
    std::printf("L2 after spawn: %u of %u ways remain as cache\n\n",
                mem.l2().activeWays(), mem.l2().params().assoc);

    // Run a kernel with the spawn latency charged to the engine.
    for (std::size_t n : {std::size_t{1} << 14, std::size_t{1} << 18}) {
        SystemConfig cfg;
        cfg.kind = SystemKind::O3EVE;
        cfg.eve_pf = 8;
        cfg.spawn_ready = cost.ready_tick;
        VvaddWorkload w(n);
        const RunResult with_spawn = runWorkload(cfg, w);

        cfg.spawn_ready = 0;
        VvaddWorkload w2(n);
        const RunResult without = runWorkload(cfg, w2);
        std::printf("vvadd n=%-8zu spawn overhead: %5.2f%% of "
                    "execution time\n", n,
                    100.0 * (with_spawn.seconds - without.seconds) /
                        without.seconds);
    }

    // Teardown: free — associativity is simply restored.
    teardownEve(mem.l2());
    std::printf("\nteardown: L2 back to %u ways (returned ways "
                "invalid, zero cost)\n", mem.l2().activeWays());
    return 0;
}
