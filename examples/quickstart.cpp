/**
 * @file
 * Quickstart: build an O3+EVE-8 system, run the vvadd kernel, verify
 * it functionally, and compare against the scalar out-of-order core.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>

#include "driver/system.hh"
#include "workloads/vvadd.hh"

using namespace eve;

int
main()
{
    // 1. Pick a system from Table III: the out-of-order core with an
    //    ephemeral vector engine at parallelization factor 8.
    SystemConfig eve_cfg;
    eve_cfg.kind = SystemKind::O3EVE;
    eve_cfg.eve_pf = 8;

    // 2. Pick a workload. Workloads own their memory image, compute
    //    a reference result, and emit scalar or vector traces.
    VvaddWorkload workload(1 << 18);

    // 3. Run. The driver attaches the functional vector machine, so
    //    the run is verified end to end.
    System eve_system(eve_cfg);
    const RunResult eve = eve_system.run(workload);
    std::printf("%s: %.0f cycles (%.3f ms simulated), "
                "functional check: %s\n",
                eve.system.c_str(), eve.cycles, eve.seconds * 1e3,
                eve.mismatches == 0 ? "pass" : "FAIL");
    std::printf("  hardware vector length: %u elements\n",
                eve_system.hwVectorLength());

    // 4. Compare with the scalar baseline.
    SystemConfig o3_cfg;
    o3_cfg.kind = SystemKind::O3;
    VvaddWorkload scalar_load(1 << 18);
    const RunResult o3 = runWorkload(o3_cfg, scalar_load);
    std::printf("%s: %.0f cycles (%.3f ms simulated)\n",
                o3.system.c_str(), o3.cycles, o3.seconds * 1e3);

    std::printf("speed-up of O3+EVE-8 over O3: %.2fx\n",
                o3.seconds / eve.seconds);
    return eve.mismatches == 0 ? 0 : 1;
}
