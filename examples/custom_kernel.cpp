/**
 * @file
 * Authoring a custom vector kernel against the public API, and
 * looking under the hood of EVE's execution of it.
 *
 * The kernel is a fixed-point AXPY: y = (a*x + y) >> 4. The example
 * shows three layers of the stack:
 *  1. the retained Program builder + functional VecMachine,
 *  2. the micro-program the macro-op library generates for each
 *     instruction on a chosen EVE-n (printed as Table II micro-ops),
 *  3. bit-accurate execution of those micro-programs on the EVE SRAM
 *     functional model, cross-checked against the VecMachine.
 */

#include <cstdio>

#include "core/sram/eve_sram.hh"
#include "core/uprog/macro_lib.hh"
#include "isa/functional.hh"
#include "isa/program.hh"

using namespace eve;

int
main()
{
    constexpr unsigned kVl = 8;
    constexpr std::int32_t kA = 13;

    // ----- layer 1: the vector program ------------------------------
    ByteMem mem(4096);
    for (unsigned i = 0; i < kVl; ++i) {
        mem.store32(0x100 + i * 4, std::int32_t(i * 3 + 1));   // x
        mem.store32(0x200 + i * 4, std::int32_t(100 - i));     // y
    }

    Program prog;
    prog.setVl(kVl);
    prog.load(1, 0x100, kVl);             // v1 = x
    prog.load(2, 0x200, kVl);             // v2 = y
    prog.vx(Op::VMul, 3, 1, kA, kVl);     // v3 = a * x
    prog.vv(Op::VAdd, 3, 3, 2, kVl);      // v3 += y
    prog.vx(Op::VSra, 3, 3, 4, kVl);      // v3 >>= 4
    prog.store(3, 0x300, kVl);            // y' = v3

    std::printf("program:\n");
    for (const auto& instr : prog.instructions())
        std::printf("  %s\n", disassemble(instr).c_str());

    VecMachine machine(mem, kVl);
    prog.replay(machine);

    std::printf("\nresult:");
    for (unsigned i = 0; i < kVl; ++i)
        std::printf(" %d", mem.load32(0x300 + i * 4));
    std::printf("\n");

    // ----- layer 2: the micro-programs on EVE-8 ----------------------
    EveSramConfig cfg;
    cfg.lanes = kVl;
    cfg.pf = 8;
    MacroLib lib(cfg);

    const Instr& mul_instr = prog.instructions()[3];
    const MacroBuild mul_build = lib.build(mul_instr);
    std::printf("\n%s compiles to %zu micro-ops on EVE-8 "
                "(first 10):\n", disassemble(mul_instr).c_str(),
                mul_build.prog.size());
    for (std::size_t i = 0; i < 10 && i < mul_build.prog.size(); ++i)
        std::printf("  %2zu: %s\n", i,
                    uopToString(mul_build.prog[i]).c_str());

    std::printf("\ncompute latencies on EVE-8 (cycles):\n");
    for (std::size_t i = 3; i < prog.size() - 1; ++i)
        std::printf("  %-28s %5llu\n",
                    disassemble(prog.instructions()[i]).c_str(),
                    (unsigned long long)lib.cycles(
                        prog.instructions()[i]));

    // ----- layer 3: bit-accurate SRAM execution ----------------------
    EveSram sram(cfg);
    for (unsigned lane = 0; lane < kVl; ++lane) {
        sram.writeElement(lane, 1,
                          std::uint32_t(mem.load32(0x100 + lane * 4)));
        sram.writeElement(lane, 2,
                          std::uint32_t(mem.load32(0x200 + lane * 4)));
    }
    for (std::size_t i = 3; i < prog.size() - 1; ++i)
        sram.run(lib.build(prog.instructions()[i]).prog);

    bool ok = true;
    for (unsigned lane = 0; lane < kVl; ++lane)
        ok = ok && std::int32_t(sram.readElement(lane, 3)) ==
                       machine.elem(3, lane);
    std::printf("\nbit-accurate EVE SRAM execution matches the "
                "reference: %s\n", ok ? "yes" : "NO");
    return ok ? 0 : 1;
}
