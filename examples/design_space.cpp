/**
 * @file
 * Design-space exploration: sweep the EVE parallelization factor on
 * one workload and report performance, area, clock, and
 * area-normalized performance — the analysis a designer would run
 * before committing to a design point.
 */

#include <cstdio>
#include <string>

#include "analytic/circuits.hh"
#include "driver/system.hh"
#include "driver/table.hh"
#include "workloads/workload.hh"

using namespace eve;

int
main(int argc, char** argv)
{
    const std::string wname = argc > 1 ? argv[1] : "jacobi-2d";

    // The O3 scalar reference.
    SystemConfig o3_cfg;
    o3_cfg.kind = SystemKind::O3;
    auto o3_w = makeWorkload(wname, /*small=*/false);
    if (!o3_w) {
        std::fprintf(stderr, "unknown workload '%s'\n", wname.c_str());
        return 1;
    }
    const RunResult o3 = runWorkload(o3_cfg, *o3_w);

    std::printf("EVE design-space exploration on '%s'\n\n",
                wname.c_str());
    TextTable table({"design", "hw vl", "clock", "speedup vs O3",
                     "area vs O3", "perf/area", "busy frac"});
    for (unsigned pf : {1u, 2u, 4u, 8u, 16u, 32u}) {
        SystemConfig cfg;
        cfg.kind = SystemKind::O3EVE;
        cfg.eve_pf = pf;
        auto w = makeWorkload(wname, false);
        System sys(cfg);
        const RunResult r = sys.run(*w);
        const double speedup = o3.seconds / r.seconds;
        const double area = SystemAreaModel::o3eve(pf);
        table.addRow(
            {"EVE-" + std::to_string(pf),
             std::to_string(sys.hwVectorLength()),
             TextTable::num(CircuitModel::cycleTimeNs(pf), 3) + "ns",
             TextTable::num(speedup, 2),
             TextTable::num(area, 2),
             TextTable::num(speedup / area, 2),
             TextTable::num(r.breakdown.busy / r.total_ticks, 2)});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}
