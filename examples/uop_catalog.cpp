/**
 * @file
 * Micro-program catalog: the compute latency (micro-program length)
 * of every supported vector instruction on every EVE-n configuration
 * — the table a micro-architect would pin to the wall. Latencies are
 * taken from the same generated programs the functional model
 * executes, so this catalog is correct by construction.
 *
 *   $ ./examples/uop_catalog
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/uprog/macro_lib.hh"
#include "driver/table.hh"

using namespace eve;

namespace
{

struct CatalogEntry
{
    const char* label;
    Op op;
    bool uses_scalar;
    std::int64_t imm;
};

} // namespace

int
main()
{
    const CatalogEntry entries[] = {
        {"vadd.vv", Op::VAdd, false, 0},
        {"vsub.vv", Op::VSub, false, 0},
        {"vand.vv", Op::VAnd, false, 0},
        {"vxor.vv", Op::VXor, false, 0},
        {"vsll.vx (k=1)", Op::VSll, true, 1},
        {"vsll.vx (k=13)", Op::VSll, true, 13},
        {"vsrl.vx (k=13)", Op::VSrl, true, 13},
        {"vsra.vx (k=13)", Op::VSra, true, 13},
        {"vsll.vv", Op::VSll, false, 0},
        {"vmseq.vv", Op::VMseq, false, 0},
        {"vmslt.vv", Op::VMslt, false, 0},
        {"vmin.vv", Op::VMin, false, 0},
        {"vmaxu.vv", Op::VMaxu, false, 0},
        {"vmerge.vvm", Op::VMerge, false, 0},
        {"vmv.v.x", Op::VMvVX, true, 42},
        {"vmul.vv", Op::VMul, false, 0},
        {"vmacc.vv", Op::VMacc, false, 0},
        {"vdivu.vv", Op::VDivu, false, 0},
        {"vdiv.vv", Op::VDiv, false, 0},
        {"vrem.vv", Op::VRem, false, 0},
    };

    std::printf("EVE macro-op latency catalog (cycles, including the "
                "%llu-cycle control overhead)\n\n",
                (unsigned long long)MacroLib::controlOverhead);

    std::vector<std::string> headers = {"macro-op"};
    const unsigned pfs[] = {1, 2, 4, 8, 16, 32};
    for (unsigned pf : pfs)
        headers.push_back("EVE-" + std::to_string(pf));
    TextTable table(headers);

    std::vector<MacroLib> libs;
    libs.reserve(std::size(pfs));
    for (unsigned pf : pfs) {
        EveSramConfig cfg;
        cfg.lanes = 1;
        cfg.pf = pf;
        libs.emplace_back(cfg);
    }

    for (const CatalogEntry& entry : entries) {
        Instr instr;
        instr.op = entry.op;
        instr.dst = 1;
        instr.src1 = 2;
        instr.src2 = 3;
        instr.usesScalar = entry.uses_scalar;
        instr.imm = entry.imm;
        std::vector<std::string> row = {entry.label};
        for (auto& lib : libs)
            row.push_back(std::to_string(lib.cycles(instr)));
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("Reading the table: latency scales with the segment "
                "count 32/n; throughput is\nlatency divided into the "
                "hardware vector length (2048/2048/2048/1024/512/256"
                " elements\nfor EVE-1/2/4/8/16/32), which is why "
                "EVE-4..8 win on throughput (Figure 2).\n");
    return 0;
}
