/**
 * @file
 * Interval-sampling and checkpoint tests: schedule canonicalization,
 * warmup-filter bookkeeping, sampled-run determinism (across runs
 * and sim-thread counts), the extrapolation error bound, checkpoint
 * save/restore byte-identity, and salt-skew quarantine.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "exp/exp.hh"
#include "sim/checkpoint.hh"
#include "sim/sampling.hh"
#include "workloads/workload.hh"

using namespace eve;
using namespace eve::exp;

namespace
{

/** A fresh, empty scratch directory under the gtest temp dir. */
std::string
freshDir(const std::string& name)
{
    const std::string dir = ::testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** One O3+EVE-8 job over @p workload at small scale. */
Job
smallJob(const std::string& workload, const SamplingConfig& sampling)
{
    SweepSpec spec;
    SystemConfig cfg;
    cfg.kind = SystemKind::O3EVE;
    cfg.eve_pf = 8;
    spec.system(cfg);
    spec.workloads({workload}, std::string("small"));
    spec.sampling(sampling);
    return spec.jobs().front();
}

/**
 * A schedule whose 400-record period is shorter than the small-scale
 * streams (mmult: 796 records, k-means: 3034), so fast-forward
 * boundaries actually fire in unit tests.
 */
SamplingConfig
testSchedule()
{
    SamplingConfig cfg;
    cfg.interval = 100;
    cfg.warmup = 20;
    cfg.stride = 4;
    return cfg;
}

} // namespace

TEST(SamplingConfig, CanonicalRoundTrip)
{
    SamplingConfig cfg;
    EXPECT_FALSE(cfg.enabled());
    EXPECT_EQ(samplingCanonical(cfg), "");

    cfg = testSchedule();
    EXPECT_TRUE(cfg.enabled());
    EXPECT_EQ(cfg.period(), 400u);
    const std::string text = samplingCanonical(cfg);
    EXPECT_EQ(text, "interval=100;warmup=20;stride=4");

    SamplingConfig back;
    ASSERT_TRUE(parseSamplingCanonical(text, back));
    EXPECT_EQ(back.interval, cfg.interval);
    EXPECT_EQ(back.warmup, cfg.warmup);
    EXPECT_EQ(back.stride, cfg.stride);

    // "" is the canonical form of "disabled".
    SamplingConfig off;
    ASSERT_TRUE(parseSamplingCanonical("", off));
    EXPECT_FALSE(off.enabled());
}

TEST(SamplingConfig, CanonicalParseRejectsMalformedText)
{
    SamplingConfig out;
    // Wrong field order, missing fields, junk, and non-canonical
    // spellings (the canonical text is a cache-key component, so the
    // round trip must be exact).
    EXPECT_FALSE(parseSamplingCanonical("interval=100", out));
    EXPECT_FALSE(parseSamplingCanonical(
        "warmup=20;interval=100;stride=4", out));
    EXPECT_FALSE(parseSamplingCanonical(
        "interval=100;warmup=20;stride=4;", out));
    EXPECT_FALSE(parseSamplingCanonical(
        "interval=0100;warmup=20;stride=4", out));
    EXPECT_FALSE(parseSamplingCanonical(
        "interval=100;warmup=20;stride=bad", out));
    // Invalid schedule: warmup + interval exceed the period.
    EXPECT_FALSE(parseSamplingCanonical(
        "interval=100;warmup=20;stride=1", out));
}

TEST(SamplingConfig, FlagParsing)
{
    SamplingConfig out;
    ASSERT_TRUE(parseSamplingFlag("default", out));
    EXPECT_TRUE(out.enabled());
    EXPECT_EQ(samplingCanonical(out),
              samplingCanonical(defaultSampling()));

    ASSERT_TRUE(parseSamplingFlag("1000", out));
    EXPECT_EQ(out.interval, 1000u);
    EXPECT_EQ(out.warmup, 200u); // 1:5 of the interval
    EXPECT_EQ(out.stride, defaultSampling().stride);

    ASSERT_TRUE(parseSamplingFlag("1000,200,8", out));
    EXPECT_EQ(out.interval, 1000u);
    EXPECT_EQ(out.warmup, 200u);
    EXPECT_EQ(out.stride, 8u);

    ASSERT_TRUE(
        parseSamplingFlag("interval=100;warmup=20;stride=4", out));
    EXPECT_EQ(out.interval, 100u);

    EXPECT_FALSE(parseSamplingFlag("", out));
    EXPECT_FALSE(parseSamplingFlag("1000,200,8,9", out));
    EXPECT_FALSE(parseSamplingFlag("bogus", out));
    // Shorthand that violates the period invariant.
    EXPECT_FALSE(parseSamplingFlag("1000,200,1", out));
}

TEST(WarmupFilter, TracksDistinctLinesWithLruBound)
{
    WarmupFilter filter(/*line_bytes=*/64, /*max_lines=*/4);

    Instr load;
    load.op = Op::SLoad;
    for (std::uint64_t i = 0; i < 8; ++i) {
        load.addr = i * 64;
        filter.observe(load);
    }
    // Bounded: only the hottest 4 of the 8 lines survive.
    EXPECT_EQ(filter.lines(), 4u);

    // Re-touching a resident line must not grow the set.
    load.addr = 7 * 64;
    filter.observe(load);
    EXPECT_EQ(filter.lines(), 4u);

    // A contiguous vector load walks lines, not elements.
    WarmupFilter wide(64, 1024);
    Instr vload;
    vload.op = Op::VLoad;
    vload.addr = 0;
    vload.vl = 64; // 256 bytes = 4 lines
    wide.observe(vload);
    EXPECT_EQ(wide.lines(), 4u);

    // Non-memory records are ignored.
    Instr alu;
    alu.op = Op::VAdd;
    alu.vl = 64;
    wide.observe(alu);
    EXPECT_EQ(wide.lines(), 4u);
}

TEST(Sampling, SampledRunIsDeterministic)
{
    const Job job = smallJob("k-means", testSchedule());

    JobResult a, b;
    runJob(job, a);
    runJob(job, b);
    ASSERT_EQ(a.status, JobStatus::Ok);
    EXPECT_TRUE(a.result.sampled);
    EXPECT_GT(a.result.sample_windows, 1u);
    EXPECT_EQ(resultToJson(a, /*include_host_time=*/false),
              resultToJson(b, /*include_host_time=*/false));
}

TEST(Sampling, SimThreadCountDoesNotChangeSampledBytes)
{
    const Job job = smallJob("mmult", testSchedule());

    JobResult t1, t2, t8;
    runJob(job, t1, 1);
    runJob(job, t2, 2);
    runJob(job, t8, 8);
    ASSERT_EQ(t1.status, JobStatus::Ok);
    const std::string r1 = resultToJson(t1, false);
    EXPECT_EQ(r1, resultToJson(t2, false));
    EXPECT_EQ(r1, resultToJson(t8, false));
}

TEST(Sampling, ExtrapolatedCyclesWithinErrorBound)
{
    for (const char* name : {"mmult", "k-means"}) {
        Job exact_job = smallJob(name, SamplingConfig{});
        JobResult exact;
        runJob(exact_job, exact);
        ASSERT_EQ(exact.status, JobStatus::Ok);
        EXPECT_FALSE(exact.result.sampled);

        const Job sampled_job = smallJob(name, testSchedule());
        JobResult sampled;
        runJob(sampled_job, sampled);
        ASSERT_EQ(sampled.status, JobStatus::Ok);
        ASSERT_TRUE(sampled.result.sampled);
        EXPECT_LT(sampled.result.sampled_measured_instrs,
                  exact.result.instrs);

        const double err =
            std::fabs(sampled.result.cycles - exact.result.cycles) /
            exact.result.cycles;
        EXPECT_LT(err, 0.03) << name << ": sampled "
                             << sampled.result.cycles << " vs exact "
                             << exact.result.cycles;
    }
}

TEST(Sampling, ShortStreamIsFullyMeasured)
{
    // vvadd small (40 records) fits entirely inside window 0, so the
    // extrapolation factor is exactly 1 and sampled == exact.
    Job exact_job = smallJob("vvadd", SamplingConfig{});
    JobResult exact;
    runJob(exact_job, exact);

    const Job sampled_job = smallJob("vvadd", testSchedule());
    JobResult sampled;
    runJob(sampled_job, sampled);
    ASSERT_EQ(sampled.status, JobStatus::Ok);
    EXPECT_EQ(sampled.result.sampled_measured_instrs,
              exact.result.instrs);
    EXPECT_DOUBLE_EQ(sampled.result.cycles, exact.result.cycles);
}

TEST(Checkpoint, ColdRunSavesWarmRunRestoresByteIdentically)
{
    const std::string dir = freshDir("ckpt_roundtrip");
    const Job job = smallJob("k-means", testSchedule());

    JobResult cold;
    runJob(job, cold, 1, dir);
    ASSERT_EQ(cold.status, JobStatus::Ok);
    EXPECT_EQ(cold.result.checkpoint, "saved");

    // Exactly one checkpoint file appears.
    std::size_t files = 0;
    for (const auto& e : std::filesystem::directory_iterator(dir))
        files += e.path().extension() == ".ckpt";
    EXPECT_EQ(files, 1u);

    JobResult warm;
    runJob(job, warm, 1, dir);
    ASSERT_EQ(warm.status, JobStatus::Ok);
    EXPECT_EQ(warm.result.checkpoint, "restored");

    // The restored run replays the cold run exactly — including the
    // serialized record, because RunResult::checkpoint is never
    // serialized.
    EXPECT_EQ(resultToJson(cold, false), resultToJson(warm, false));
}

TEST(Checkpoint, ExactRunsIgnoreTheCheckpointDir)
{
    const std::string dir = freshDir("ckpt_exact");
    const Job job = smallJob("mmult", SamplingConfig{});
    JobResult r;
    runJob(job, r, 1, dir);
    ASSERT_EQ(r.status, JobStatus::Ok);
    EXPECT_EQ(r.result.checkpoint, "");
    EXPECT_TRUE(std::filesystem::is_empty(dir));
}

TEST(Checkpoint, SaltSkewQuarantinesTheFile)
{
    const std::string dir = freshDir("ckpt_salt");
    const std::string material = "workload=x|scale=small|vl=8|"
                                 "mem=64|interval=100;warmup=20;"
                                 "stride=4";

    Checkpoint ck;
    ck.position = 400;
    ck.machine.vlmax = 8;
    ck.machine.vl = 8;
    ck.machine.scalarResult = 7;
    ck.machine.vregs.assign(4, std::vector<std::int32_t>(8, 3));
    ck.mem.assign(64, 0xab);

    CheckpointStore old_store(dir, "salt-old");
    old_store.save(material, ck);

    Checkpoint out;
    CheckpointStore new_store(dir, "salt-new");
    EXPECT_FALSE(new_store.load(material, out));

    // The stale file was renamed aside, not deleted and not left to
    // be mistaken for a valid checkpoint again.
    std::size_t ckpt = 0, quarantined = 0;
    for (const auto& e : std::filesystem::directory_iterator(dir)) {
        ckpt += e.path().extension() == ".ckpt";
        quarantined += e.path().extension() == ".quarantine";
    }
    EXPECT_EQ(ckpt, 0u);
    EXPECT_EQ(quarantined, 1u);

    // Same-salt round trip still works.
    CheckpointStore store(dir, "salt-old");
    store.save(material, ck);
    Checkpoint back;
    ASSERT_TRUE(store.load(material, back));
    EXPECT_EQ(back.position, ck.position);
    EXPECT_EQ(back.machine.vl, ck.machine.vl);
    EXPECT_EQ(back.machine.scalarResult, ck.machine.scalarResult);
    EXPECT_EQ(back.machine.vregs, ck.machine.vregs);
    EXPECT_EQ(back.mem, ck.mem);
}

TEST(Checkpoint, TruncatedFileIsQuarantinedNotFatal)
{
    const std::string dir = freshDir("ckpt_trunc");
    const std::string material = "workload=y|scale=small|vl=8|"
                                 "mem=16|interval=100;warmup=20;"
                                 "stride=4";
    Checkpoint ck;
    ck.position = 10;
    ck.machine.vlmax = 8;
    ck.machine.vl = 4;
    ck.machine.vregs.assign(2, std::vector<std::int32_t>(8, 1));
    ck.mem.assign(16, 0x5a);

    CheckpointStore store(dir, "salt");
    store.save(material, ck);

    // Truncate the payload.
    const std::string path = store.pathFor(material);
    std::error_code ec;
    std::filesystem::resize_file(path,
                                 std::filesystem::file_size(path) - 8,
                                 ec);
    ASSERT_FALSE(ec);

    Checkpoint out;
    EXPECT_FALSE(store.load(material, out));
    EXPECT_TRUE(
        std::filesystem::exists(path + ".quarantine"));
}
