/**
 * @file
 * Distributed sweep protocol tests: job-file round trips, claim
 * races, lease-expiry reclaim, retry exhaustion and quarantine,
 * partial-result handling, and the byte-identity of merged
 * distributed results with a single-threaded run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>

#include "common/fs.hh"
#include "exp/exp.hh"
#include "workloads/workload.hh"

using namespace eve;
using namespace eve::exp;

namespace
{

/** A fresh, empty scratch directory under the gtest temp dir. */
std::string
freshDir(const std::string& name)
{
    const std::string dir = ::testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    return dir;
}

/** The same 4-job grid the runner tests use. */
SweepSpec
smallGrid()
{
    SweepSpec spec;
    SystemConfig io;
    io.kind = SystemKind::IO;
    SystemConfig o3eve;
    o3eve.kind = SystemKind::O3EVE;
    o3eve.eve_pf = 8;
    spec.system(io).system(o3eve);
    spec.axis<unsigned>("llc_mshrs", {16, 32},
                        [](SystemConfig& c, unsigned m) {
                            c.llc_mshrs = m;
                        });
    spec.workloads({"vvadd"}, /*small=*/true);
    return spec;
}

/** Worker/reclaim options tuned for test speed. */
DistOptions
fastOpts(const std::string& dir)
{
    DistOptions opts;
    opts.jobs_dir = dir;
    opts.lease_timeout_s = 0.1;
    opts.heartbeat_s = 0.02;
    opts.poll_s = 0.01;
    opts.join_timeout_s = 5;
    return opts;
}

} // namespace

TEST(DistJob, TextRoundTripAndRejection)
{
    DistJob job;
    job.index = 42;
    job.key = "0123456789abcdef";
    job.label = "O3+EVE-8/llc_mshrs=32/vvadd";
    job.workload = "vvadd";
    job.scale = "small";
    job.config = "kind=4;eve_pf=8;llc_mshrs=32;l2_mshrs=32;"
                 "llc_prefetch_lines=0;dtus=8;spawn_ready=0";
    job.attempts = 2;
    job.remote = true;

    DistJob back;
    ASSERT_TRUE(parseDistJob(distJobText(job), back));
    EXPECT_EQ(back.index, 42u);
    EXPECT_EQ(back.key, job.key);
    EXPECT_EQ(back.label, job.label);
    EXPECT_EQ(back.workload, "vvadd");
    EXPECT_EQ(back.scale, "small");
    EXPECT_EQ(back.config, job.config);
    EXPECT_EQ(back.attempts, 2u);
    EXPECT_TRUE(back.remote);

    EXPECT_FALSE(parseDistJob("", back));
    EXPECT_FALSE(parseDistJob("index=1\n", back));
    EXPECT_FALSE(parseDistJob(distJobText(job) + "extra=1\n", back));
    DistJob bad_key = job;
    bad_key.key = "short";
    EXPECT_FALSE(parseDistJob(distJobText(bad_key), back));
}

TEST(DistJob, SamplingRidesTheJobFile)
{
    DistJob job;
    job.index = 7;
    job.key = "0123456789abcdef";
    job.label = "O3+EVE-8/mmult";
    job.workload = "mmult";
    job.scale = "paper";
    job.config = "kind=4;eve_pf=8;llc_mshrs=32;l2_mshrs=32;"
                 "llc_prefetch_lines=0;dtus=8;spawn_ready=0";
    job.sampling = "interval=1000;warmup=200;stride=8";
    job.remote = true;

    // The v2 job file is exactly 9 lines, sampling included — even
    // for exact jobs, whose sampling value is empty.
    const std::string text = distJobText(job);
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 9);
    EXPECT_NE(text.find("sampling=interval=1000;warmup=200;stride=8"),
              std::string::npos);

    DistJob back;
    ASSERT_TRUE(parseDistJob(text, back));
    EXPECT_EQ(back.sampling, job.sampling);
    EXPECT_EQ(back.scale, "paper");

    DistJob exact = job;
    exact.sampling.clear();
    const std::string exact_text = distJobText(exact);
    EXPECT_EQ(std::count(exact_text.begin(), exact_text.end(), '\n'),
              9);
    ASSERT_TRUE(parseDistJob(exact_text, back));
    EXPECT_EQ(back.sampling, "");
}

TEST(DistJob, ConfigCanonicalRoundTrip)
{
    for (const Job& job : smallGrid().jobs()) {
        SystemConfig back;
        ASSERT_TRUE(
            parseConfigCanonical(configCanonical(job.config), back));
        EXPECT_EQ(configCanonical(back), configCanonical(job.config));
    }
    SystemConfig out;
    EXPECT_FALSE(parseConfigCanonical("", out));
    EXPECT_FALSE(parseConfigCanonical("kind=4;eve_pf=8", out));
    EXPECT_FALSE(parseConfigCanonical(
        "kind=99;eve_pf=8;llc_mshrs=32;l2_mshrs=32;"
        "llc_prefetch_lines=0;dtus=8;spawn_ready=0", out));
}

TEST(Dist, MaterializeStatusAndRebuild)
{
    const std::string dir = freshDir("eve_dist_materialize");
    const auto jobs = smallGrid().jobs();

    JobsDir jd(fastOpts(dir));
    jd.materialize(jobs);

    DistStatus s = jd.status();
    EXPECT_EQ(s.total, 4u);
    EXPECT_EQ(s.pending, 4u);
    EXPECT_EQ(s.done, 0u);
    EXPECT_FALSE(s.complete());

    // Materializing again over the same directory is a no-op.
    jd.materialize(jobs);
    EXPECT_EQ(jd.status().pending, 4u);

    // Every pending file parses and rebuilds into a Job whose
    // recomputed content key matches the recorded one.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        std::string text;
        ASSERT_TRUE(readFile(dir + "/pending/" + JobsDir::jobName(i) +
                                 ".job", text));
        DistJob dist;
        ASSERT_TRUE(parseDistJob(text, dist));
        EXPECT_TRUE(dist.remote);
        EXPECT_EQ(dist.key, jobKey(jobs[i]));
        Job rebuilt;
        ASSERT_TRUE(rebuildJob(dist, rebuilt));
        EXPECT_EQ(jobKey(rebuilt), jobKey(jobs[i]));
        EXPECT_EQ(configCanonical(rebuilt.config),
                  configCanonical(jobs[i].config));
    }

    EXPECT_FALSE(jd.stopRequested());
    jd.requestStop();
    EXPECT_TRUE(jd.stopRequested());
    jd.clearStop();
    EXPECT_FALSE(jd.stopRequested());
}

TEST(Dist, ClaimIsExclusiveAndSkipsTerminalJobs)
{
    const std::string dir = freshDir("eve_dist_claim");
    const auto jobs = smallGrid().jobs();
    JobsDir a(fastOpts(dir));
    JobsDir b(fastOpts(dir));
    a.materialize(jobs);

    // Four claims succeed across the two handles, the fifth fails.
    DistJob j;
    std::size_t claims = 0;
    while (a.claimNext(j))
        ++claims;
    while (b.claimNext(j))
        ++claims;
    EXPECT_EQ(claims, 4u);
    EXPECT_EQ(a.status().claimed, 4u);
    EXPECT_EQ(a.status().pending, 0u);
}

TEST(Dist, TwoWorkersRaceNoJobLostOrDuplicated)
{
    const std::string dir = freshDir("eve_dist_race");
    const auto jobs = smallGrid().jobs();
    JobsDir coordinator(fastOpts(dir));
    coordinator.materialize(jobs);

    WorkerReport r1, r2;
    std::thread t1([&] {
        DistOptions o = fastOpts(dir);
        o.worker_id = "w1";
        r1 = runDistWorker(o, &jobs);
    });
    std::thread t2([&] {
        DistOptions o = fastOpts(dir);
        o.worker_id = "w2";
        r2 = runDistWorker(o, &jobs);
    });
    t1.join();
    t2.join();

    // Every job executed exactly once across the pair.
    EXPECT_EQ(r1.executed + r2.executed, 4u);
    const DistStatus s = coordinator.status();
    EXPECT_TRUE(s.complete());
    EXPECT_EQ(s.done, 4u);
    EXPECT_EQ(s.failed, 0u);
    EXPECT_EQ(s.pending, 0u);
    EXPECT_EQ(s.claimed, 0u);

    const auto merged = coordinator.merge(jobs);
    for (const auto& r : merged)
        EXPECT_EQ(r.status, JobStatus::Ok) << r.label;
}

TEST(Dist, MergedTwoWorkerRunByteIdenticalToSingleThread)
{
    const std::string dir = freshDir("eve_dist_identical");
    const auto jobs = smallGrid().jobs();

    RunnerOptions serial;
    serial.threads = 1;
    const auto expected = Runner(serial).run(jobs);

    DistOptions opts = fastOpts(dir);
    opts.lanes = 2;
    const auto distributed = runDistributed(jobs, opts);

    ASSERT_EQ(distributed.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        // The timing-free payload must match byte for byte; wall
        // clock is host state and legitimately differs.
        EXPECT_EQ(
            resultToJson(distributed[i], /*include_host_time=*/false),
            resultToJson(expected[i], /*include_host_time=*/false));
    }
}

TEST(Dist, LeaseExpiryReclaimsFromDeadWorker)
{
    const std::string dir = freshDir("eve_dist_reclaim");
    const auto jobs = smallGrid().jobs();

    // A worker claims one job and dies without publishing: simulated
    // by destroying the JobsDir (stops its heartbeat; the claim and
    // lease files stay on disk).
    {
        JobsDir victim(fastOpts(dir));
        victim.materialize(jobs);
        DistJob j;
        ASSERT_TRUE(victim.claimNext(j));
    }

    JobsDir reaper(fastOpts(dir));
    EXPECT_EQ(reaper.status().claimed, 1u);
    // First pass only starts the staleness clock for the dead lease.
    EXPECT_EQ(reaper.reclaimExpired(), 0u);
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    EXPECT_EQ(reaper.reclaimExpired(), 1u);

    const DistStatus s = reaper.status();
    EXPECT_EQ(s.claimed, 0u);
    EXPECT_EQ(s.pending, 4u);

    // The reclaimed job carries the attempt bump.
    DistJob j;
    unsigned max_attempts_seen = 0;
    while (reaper.claimNext(j))
        max_attempts_seen = std::max(max_attempts_seen, j.attempts);
    EXPECT_EQ(max_attempts_seen, 1u);
}

TEST(Dist, RetryExhaustionQuarantinesAndMergeReportsIt)
{
    const std::string dir = freshDir("eve_dist_quarantine");
    const auto jobs = smallGrid().jobs();

    DistOptions opts = fastOpts(dir);
    opts.max_attempts = 1; // first expiry quarantines
    {
        JobsDir victim(opts);
        victim.materialize(jobs);
        DistJob j;
        ASSERT_TRUE(victim.claimNext(j));
    }

    JobsDir reaper(opts);
    EXPECT_EQ(reaper.reclaimExpired(), 0u);
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    EXPECT_EQ(reaper.reclaimExpired(), 1u);

    const DistStatus s = reaper.status();
    EXPECT_EQ(s.quarantined, 1u);
    EXPECT_EQ(s.claimed, 0u);
    EXPECT_EQ(s.pending, 3u);

    const auto merged = reaper.merge(jobs);
    std::size_t quarantined = 0;
    for (const auto& r : merged) {
        if (r.status == JobStatus::Failed) {
            ++quarantined;
            EXPECT_NE(r.error.find("quarantined"), std::string::npos)
                << r.error;
        }
    }
    EXPECT_EQ(quarantined, 1u);
}

TEST(Dist, PartialResultFilesAreQuarantined)
{
    const std::string dir = freshDir("eve_dist_partial");
    JobsDir jd(fastOpts(dir));
    jd.materialize(smallGrid().jobs());

    // A result writer died mid-write: its temp file sits in done/.
    const std::string partial =
        jd.doneDir() + "/job-000000.json.1234" + kTmpSuffix;
    {
        std::ofstream os(partial);
        os << "{\"index\":0,\"trunc";
    }
    // Temp files never count as results.
    EXPECT_EQ(jd.status().done, 0u);

    EXPECT_EQ(jd.quarantinePartials(), 0u); // starts the clock
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    EXPECT_EQ(jd.quarantinePartials(), 1u);
    EXPECT_FALSE(fileExists(partial));
    // Quarantined tmp files are debris, not failed jobs.
    EXPECT_EQ(jd.status().quarantined, 0u);
    EXPECT_EQ(jd.status().done, 0u);
}

TEST(Dist, KeyMismatchRefusedAndReturnedToPending)
{
    const std::string dir = freshDir("eve_dist_refuse");
    SweepSpec spec;
    SystemConfig io;
    io.kind = SystemKind::IO;
    spec.system(io).workloads({"vvadd"}, /*small=*/true);
    const auto jobs = spec.jobs();

    JobsDir jd(fastOpts(dir));
    jd.materialize(jobs);

    // Tamper with the recorded key: a worker from a diverged binary
    // would see exactly this (its recomputed key differs).
    const std::string path = dir + "/pending/job-000000.job";
    std::string text;
    ASSERT_TRUE(readFile(path, text));
    DistJob dist;
    ASSERT_TRUE(parseDistJob(text, dist));
    dist.key = "00000000deadbeef";
    atomicWriteFile(path, distJobText(dist));

    Job rebuilt;
    EXPECT_FALSE(rebuildJob(dist, rebuilt));

    // A spec-less worker claims it, refuses it, puts it back, and
    // exits instead of spinning.
    const WorkerReport report = runDistWorker(fastOpts(dir));
    EXPECT_EQ(report.executed, 0u);
    EXPECT_EQ(report.unrebuildable, 1u);
    EXPECT_EQ(jd.status().pending, 1u);
    EXPECT_EQ(jd.status().claimed, 0u);
}

TEST(Dist, SpeclessWorkerExecutesFromJobFilesAlone)
{
    const std::string dir = freshDir("eve_dist_specless");
    const auto jobs = smallGrid().jobs();
    JobsDir coordinator(fastOpts(dir));
    coordinator.materialize(jobs);

    // No local_jobs: everything is rebuilt from the claim files.
    const WorkerReport report = runDistWorker(fastOpts(dir));
    EXPECT_EQ(report.executed, 4u);
    EXPECT_TRUE(coordinator.status().complete());
    for (const auto& r : coordinator.merge(jobs))
        EXPECT_EQ(r.status, JobStatus::Ok) << r.label;
}

TEST(Dist, OrchestratorDegradesToSingleProcessAndFillsCache)
{
    const std::string jobs_dir = freshDir("eve_dist_degrade");
    const std::string cache_dir = freshDir("eve_dist_degrade_cache");
    const auto jobs = smallGrid().jobs();

    ResultCache cache(cache_dir);
    cache.load();

    DistOptions opts = fastOpts(jobs_dir);
    opts.lanes = 1;
    const auto results = runDistributed(jobs, opts, &cache);
    for (const auto& r : results)
        EXPECT_EQ(r.status, JobStatus::Ok) << r.label;
    EXPECT_EQ(cache.stores(), 4u);

    // A rerun is served entirely from the cache and never touches
    // the jobs directory (which still holds the completed state).
    ResultCache cache2(cache_dir);
    cache2.load();
    const auto again =
        runDistributed(jobs, fastOpts(jobs_dir), &cache2);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(again[i].status, JobStatus::Cached);
        EXPECT_EQ(resultToJson(again[i], /*include_host_time=*/false),
                  resultToJson(results[i],
                               /*include_host_time=*/false));
    }
}

TEST(Dist, ResumeOverCompletedDirectoryExecutesNothing)
{
    const std::string dir = freshDir("eve_dist_resume");
    const auto jobs = smallGrid().jobs();

    std::atomic<std::size_t> executed{0};
    DistOptions opts = fastOpts(dir);
    opts.lanes = 2;
    opts.progress = [&](const JobResult&, std::size_t, std::size_t) {
        ++executed;
    };
    runDistributed(jobs, opts);
    EXPECT_EQ(executed.load(), 4u);

    // Second orchestration over the same directory: materialize
    // skips every job (all terminal) and the lanes find nothing.
    executed = 0;
    const auto results = runDistributed(jobs, opts);
    EXPECT_EQ(executed.load(), 0u);
    for (const auto& r : results)
        EXPECT_EQ(r.status, JobStatus::Ok) << r.label;
}

TEST(Dist, MaterializeRefusesForeignGrid)
{
    const std::string dir = freshDir("eve_dist_foreign");
    JobsDir jd(fastOpts(dir));
    jd.materialize(smallGrid().jobs());

    SweepSpec other;
    SystemConfig o3;
    o3.kind = SystemKind::O3;
    other.system(o3).workloads({"vvadd"}, /*small=*/true);
    JobsDir jd2(fastOpts(dir));
    EXPECT_EXIT(jd2.materialize(other.jobs()),
                ::testing::ExitedWithCode(1), "different sweep");
}

TEST(Dist, VariantGivesCustomExecutorJobsDistinctKeys)
{
    const auto jobs = smallGrid().jobs();
    Job solo = jobs[0];
    Job variant = jobs[0];
    variant.exec = [](const SystemConfig&) { return RunResult{}; };
    variant.variant = "cmp:neighbour=O3+EVE-8/vvadd";
    EXPECT_NE(jobKey(solo), jobKey(variant));
    // Empty variant leaves the pre-variant key scheme untouched.
    Job empty_variant = jobs[0];
    empty_variant.variant = "";
    EXPECT_EQ(jobKey(solo), jobKey(empty_variant));
}

TEST(Dist, StopMarkerHaltsWorkerPromptly)
{
    const std::string dir = freshDir("eve_dist_stop");
    JobsDir jd(fastOpts(dir));
    jd.materialize(smallGrid().jobs());
    jd.requestStop();

    const WorkerReport report = runDistWorker(fastOpts(dir));
    EXPECT_TRUE(report.stopped);
    EXPECT_EQ(report.executed, 0u);
    EXPECT_EQ(jd.status().pending, 4u);
}
