/**
 * @file
 * Element-width generality: the EVE SRAM and macro-op library are
 * parameterized by element width (next-generation vector ISAs have
 * variable SEW — Table I). These property tests run the bit-accurate
 * micro-program path at 8- and 16-bit element widths against an
 * inline width-aware reference.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/sram/eve_sram.hh"
#include "core/layout/layout.hh"
#include "core/uprog/macro_lib.hh"

namespace eve
{
namespace
{

constexpr unsigned kLanes = 4;

/** Width-aware reference semantics on sign-extended values. */
std::uint32_t
refOp(Op op, std::uint32_t ua, std::uint32_t ub, unsigned width)
{
    const std::uint32_t mask =
        width >= 32 ? 0xffffffffu : ((std::uint32_t{1} << width) - 1);
    auto sext = [&](std::uint32_t v) {
        const std::uint32_t sign = std::uint32_t{1} << (width - 1);
        return std::int64_t(std::int32_t((v ^ sign) - sign));
    };
    const std::int64_t a = sext(ua & mask);
    const std::int64_t b = sext(ub & mask);
    const std::uint32_t shamt = ub & (width - 1);
    std::int64_t r;
    switch (op) {
      case Op::VAdd: r = a + b; break;
      case Op::VSub: r = a - b; break;
      case Op::VAnd: r = a & b; break;
      case Op::VOr: r = a | b; break;
      case Op::VXor: r = a ^ b; break;
      case Op::VMul: r = a * b; break;
      case Op::VMin: r = std::min(a, b); break;
      case Op::VMax: r = std::max(a, b); break;
      case Op::VMslt: r = a < b; break;
      case Op::VMseq: r = a == b; break;
      case Op::VSll: r = std::int64_t((ua & mask)) << shamt; break;
      case Op::VSrl: r = std::int64_t((ua & mask) >> shamt); break;
      case Op::VSra: r = a >> shamt; break;
      case Op::VDivu: {
        const std::uint32_t du = ua & mask, dv = ub & mask;
        r = dv == 0 ? std::int64_t(mask) : std::int64_t(du / dv);
        break;
      }
      case Op::VRemu: {
        const std::uint32_t du = ua & mask, dv = ub & mask;
        r = dv == 0 ? std::int64_t(du) : std::int64_t(du % dv);
        break;
      }
      default:
        ADD_FAILURE() << "unhandled reference op";
        r = 0;
    }
    return std::uint32_t(r) & mask;
}

class NarrowElements
    : public testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(NarrowElements, MacroOpsBitExactAtNarrowWidths)
{
    const auto& [width, pf] = GetParam();
    if (pf > width || width % pf != 0)
        GTEST_SKIP() << "pf must divide the element width";

    EveSramConfig cfg;
    cfg.lanes = kLanes;
    cfg.pf = pf;
    cfg.elem_bits = width;
    EveSram sram(cfg);
    MacroLib lib(cfg);
    Rng rng(width * 131 + pf);

    const Op ops[] = {Op::VAdd, Op::VSub, Op::VAnd, Op::VOr,
                      Op::VXor, Op::VMul, Op::VMin, Op::VMax,
                      Op::VMslt, Op::VMseq, Op::VSll, Op::VSrl,
                      Op::VSra, Op::VDivu, Op::VRemu};
    const std::uint32_t mask =
        (std::uint32_t{1} << width) - 1;

    for (const Op op : ops) {
        std::uint32_t a[kLanes], b[kLanes];
        for (unsigned lane = 0; lane < kLanes; ++lane) {
            a[lane] = std::uint32_t(rng.next()) & mask;
            b[lane] = std::uint32_t(rng.next()) & mask;
            sram.writeElement(lane, 2, a[lane]);
            sram.writeElement(lane, 3, b[lane]);
        }
        Instr instr;
        instr.op = op;
        instr.dst = 4;
        instr.src1 = 2;
        instr.src2 = 3;
        instr.vl = kLanes;
        const bool shift =
            op == Op::VSll || op == Op::VSrl || op == Op::VSra;
        if (shift) {
            instr.usesScalar = true;
            instr.imm = std::int64_t(b[0] & (width - 1));
            for (unsigned lane = 0; lane < kLanes; ++lane)
                b[lane] = b[0];
        }
        const MacroBuild build = lib.build(instr);
        ASSERT_TRUE(build.bit_exact) << opName(op);
        sram.run(build.prog);
        for (unsigned lane = 0; lane < kLanes; ++lane)
            EXPECT_EQ(sram.readElement(lane, 4),
                      refOp(op, a[lane], b[lane], width))
                << opName(op) << " width=" << width << " pf=" << pf
                << " lane=" << lane << " a=" << a[lane]
                << " b=" << b[lane];
    }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, NarrowElements,
    testing::Combine(testing::Values(8u, 16u),
                     testing::Values(1u, 2u, 4u, 8u, 16u)),
    [](const auto& info) {
        return "w" + std::to_string(std::get<0>(info.param)) + "_pf" +
               std::to_string(std::get<1>(info.param));
    });

TEST(NarrowElementsLayout, LaneLawScalesWithWidth)
{
    // Narrower elements pack more lanes per sub-array: with 16-bit
    // elements and 32 registers, a lane needs 512 bits of storage.
    LayoutParams p;
    p.rows = 256;
    p.cols = 256;
    p.num_vregs = 32;
    p.elem_bits = 16;
    p.pf = 2;
    const Layout l(p);
    EXPECT_EQ(l.laneCols(), 2u);       // 512 bits fit one 2-col group
    EXPECT_EQ(l.lanesPerArray(), 128u);
    EXPECT_EQ(l.segments(), 8u);
}

} // namespace
} // namespace eve
