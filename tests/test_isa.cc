/**
 * @file
 * Unit tests for the ISA layer: opcode classification, the program
 * builder, the disassembler, the Table IV characterizer, and the
 * reference vector machine's edge-case semantics.
 */

#include <gtest/gtest.h>

#include <limits>

#include "isa/functional.hh"
#include "isa/program.hh"

namespace eve
{
namespace
{

TEST(OpClassify, EveryOpcodeHasAClass)
{
    for (unsigned i = 0; i < unsigned(Op::NumOps); ++i) {
        const Op op = Op(i);
        EXPECT_NO_FATAL_FAILURE(opClass(op));
        EXPECT_NE(opName(op), "<bad-op>");
    }
}

TEST(OpClassify, VectorAndMemoryPredicates)
{
    EXPECT_FALSE(isVectorOp(Op::SAlu));
    EXPECT_TRUE(isVectorOp(Op::VAdd));
    EXPECT_TRUE(isVectorOp(Op::VSetVl));
    EXPECT_TRUE(isMemOp(Op::SLoad));
    EXPECT_TRUE(isMemOp(Op::VLoadIndexed));
    EXPECT_FALSE(isMemOp(Op::VAdd));
    EXPECT_TRUE(isVecLoad(Op::VLoadStrided));
    EXPECT_FALSE(isVecLoad(Op::VStore));
    EXPECT_TRUE(isVecStore(Op::VStoreIndexed));
}

TEST(Program, BuilderOwnsIndexStorage)
{
    Program prog;
    prog.loadIndexed(1, 0x100, {0, 4, 8, 12});
    prog.storeIndexed(2, 0x200, {12, 8, 4, 0});
    ASSERT_EQ(prog.size(), 2u);
    EXPECT_EQ(prog.instructions()[0].vl, 4u);
    ASSERT_NE(prog.instructions()[0].indices, nullptr);
    EXPECT_EQ(prog.instructions()[0].indices[2], 8u);
    EXPECT_EQ(prog.instructions()[1].indices[0], 12u);
}

TEST(Program, ReplayReachesSink)
{
    Program prog;
    prog.setVl(8);
    prog.vv(Op::VAdd, 1, 2, 3, 8);
    CountingSink sink;
    prog.replay(sink);
    EXPECT_EQ(sink.total, 2u);
}

TEST(Disassemble, RendersKeyForms)
{
    Program prog;
    prog.setVl(16);
    prog.vv(Op::VAdd, 1, 2, 3, 16);
    prog.vx(Op::VSll, 4, 1, 3, 16);
    prog.load(5, 0x1000, 16);
    prog.loadStrided(6, 0x2000, 128, 16);
    prog.vv(Op::VMin, 7, 5, 6, 16, /*masked=*/true);
    const auto& is = prog.instructions();
    EXPECT_EQ(disassemble(is[0]), "vsetvl vl=16");
    EXPECT_EQ(disassemble(is[1]), "vadd v1, v2, v3, vl=16");
    EXPECT_EQ(disassemble(is[2]), "vsll v4, v1, x(3), vl=16");
    EXPECT_NE(disassemble(is[3]).find("vle32 v5, 0x1000"),
              std::string::npos);
    EXPECT_NE(disassemble(is[4]).find("stride=128"),
              std::string::npos);
    EXPECT_NE(disassemble(is[5]).find("v0.t"), std::string::npos);
}

TEST(Characterizer, CountsClassesAndOps)
{
    Program prog;
    prog.setVl(64);                        // ctrl
    prog.load(1, 0, 64);                   // us
    prog.loadStrided(2, 0x400, 256, 64);   // st
    prog.vv(Op::VMul, 3, 1, 2, 64);        // imul
    prog.vv(Op::VAdd, 3, 3, 1, 64, true);  // ialu, predicated
    prog.vv(Op::VRedSum, 4, 3, 4, 64);     // xe bucket
    prog.store(3, 0x800, 64);              // us

    Characterizer c;
    prog.replay(c);
    Instr scalar;
    scalar.op = Op::SAlu;
    c.consume(scalar);

    EXPECT_EQ(c.dynInstrs, 8u);
    EXPECT_EQ(c.vecInstrs, 7u);
    EXPECT_EQ(c.ctrl, 1u);
    EXPECT_EQ(c.us, 2u);
    EXPECT_EQ(c.st, 1u);
    EXPECT_EQ(c.imul, 1u);
    EXPECT_EQ(c.ialu, 1u);
    EXPECT_EQ(c.xe, 1u);
    EXPECT_EQ(c.predInstrs, 1u);
    // ops: 6 x 64-element ops + 1-element ctrl + 1 scalar.
    EXPECT_EQ(c.totalOps, 6u * 64u + 1u + 1u);
    EXPECT_DOUBLE_EQ(c.arithIntensity(), 3.0 * 64 / (3.0 * 64));
    EXPECT_NEAR(c.vecInstrPct(), 100.0 * 7 / 8, 1e-9);
}

class VecMachineTest : public testing::Test
{
  protected:
    VecMachineTest() : mem(4096), machine(mem, 16) {}

    void
    fill(unsigned reg, std::initializer_list<std::int32_t> values)
    {
        unsigned i = 0;
        for (auto v : values)
            machine.setElem(reg, i++, v);
    }

    ByteMem mem;
    VecMachine machine;
};

TEST_F(VecMachineTest, MaskedOpPreservesInactive)
{
    fill(0, {1, 0, 1, 0});
    fill(1, {10, 20, 30, 40});
    fill(2, {1, 1, 1, 1});
    Program prog;
    prog.vv(Op::VAdd, 1, 1, 2, 4, /*masked=*/true);
    prog.replay(machine);
    EXPECT_EQ(machine.elem(1, 0), 11);
    EXPECT_EQ(machine.elem(1, 1), 20);
    EXPECT_EQ(machine.elem(1, 2), 31);
    EXPECT_EQ(machine.elem(1, 3), 40);
}

TEST_F(VecMachineTest, SlideUpInjectsScalar)
{
    fill(1, {5, 6, 7, 8});
    Program prog;
    prog.vx(Op::VSlide1Up, 2, 1, -9, 4);
    prog.replay(machine);
    EXPECT_EQ(machine.elem(2, 0), -9);
    EXPECT_EQ(machine.elem(2, 1), 5);
    EXPECT_EQ(machine.elem(2, 3), 7);
}

TEST_F(VecMachineTest, SlideDownShiftsAndFills)
{
    fill(1, {5, 6, 7, 8});
    Program prog;
    prog.vx(Op::VSlide1Down, 2, 1, 99, 4);
    prog.replay(machine);
    EXPECT_EQ(machine.elem(2, 0), 6);
    EXPECT_EQ(machine.elem(2, 2), 8);
    EXPECT_EQ(machine.elem(2, 3), 99);
}

TEST_F(VecMachineTest, SlideUpInPlaceIsSafe)
{
    fill(1, {5, 6, 7, 8});
    Program prog;
    prog.vx(Op::VSlide1Up, 1, 1, 0, 4);
    prog.replay(machine);
    EXPECT_EQ(machine.elem(1, 0), 0);
    EXPECT_EQ(machine.elem(1, 1), 5);
    EXPECT_EQ(machine.elem(1, 2), 6);
    EXPECT_EQ(machine.elem(1, 3), 7);
}

TEST_F(VecMachineTest, RgatherOutOfRangeYieldsZero)
{
    fill(1, {10, 20, 30, 40});
    fill(2, {3, 0, 100, 1});
    Program prog;
    prog.vv(Op::VRgather, 3, 1, 2, 4);
    prog.replay(machine);
    EXPECT_EQ(machine.elem(3, 0), 40);
    EXPECT_EQ(machine.elem(3, 1), 10);
    EXPECT_EQ(machine.elem(3, 2), 0);  // index 100 >= vl
    EXPECT_EQ(machine.elem(3, 3), 20);
}

TEST_F(VecMachineTest, ReductionSeedsFromSrc2)
{
    fill(1, {1, 2, 3, 4});
    fill(2, {100, 0, 0, 0});
    Program prog;
    prog.vv(Op::VRedSum, 3, 1, 2, 4);
    prog.replay(machine);
    EXPECT_EQ(machine.elem(3, 0), 110);
}

TEST_F(VecMachineTest, MaskedReductionSkipsInactive)
{
    fill(0, {1, 0, 0, 1});
    fill(1, {1, 2, 3, 4});
    fill(2, {0, 0, 0, 0});
    Program prog;
    prog.vv(Op::VRedMax, 3, 1, 2, 4, /*masked=*/true);
    prog.replay(machine);
    EXPECT_EQ(machine.elem(3, 0), 4);
}

TEST_F(VecMachineTest, DivisionEdgeCases)
{
    const std::int32_t min = std::numeric_limits<std::int32_t>::min();
    fill(1, {7, min, 5, min});
    fill(2, {0, -1, 0, 0});
    Program prog;
    prog.vv(Op::VDiv, 3, 1, 2, 4);
    prog.vv(Op::VRem, 4, 1, 2, 4);
    prog.replay(machine);
    EXPECT_EQ(machine.elem(3, 0), -1);    // div by zero
    EXPECT_EQ(machine.elem(3, 1), min);   // overflow
    EXPECT_EQ(machine.elem(4, 0), 7);     // rem by zero = dividend
    EXPECT_EQ(machine.elem(4, 1), 0);     // overflow rem = 0
    EXPECT_EQ(machine.elem(3, 3), -1);
}

TEST_F(VecMachineTest, StridedAndIndexedMemory)
{
    for (int i = 0; i < 8; ++i)
        mem.store32(Addr(i) * 4, 100 + i);
    Program prog;
    prog.loadStrided(1, 0, 8, 4);  // every other word
    prog.loadIndexed(2, 0, {28, 0, 4, 4});
    prog.replay(machine);
    EXPECT_EQ(machine.elem(1, 0), 100);
    EXPECT_EQ(machine.elem(1, 1), 102);
    EXPECT_EQ(machine.elem(1, 3), 106);
    EXPECT_EQ(machine.elem(2, 0), 107);
    EXPECT_EQ(machine.elem(2, 1), 100);
    EXPECT_EQ(machine.elem(2, 3), 101);
}

TEST_F(VecMachineTest, NegativeStrideLoad)
{
    for (int i = 0; i < 8; ++i)
        mem.store32(Addr(i) * 4, i);
    Program prog;
    prog.loadStrided(1, 7 * 4, -4, 4);
    prog.replay(machine);
    EXPECT_EQ(machine.elem(1, 0), 7);
    EXPECT_EQ(machine.elem(1, 3), 4);
}

TEST_F(VecMachineTest, VMvXSCapturesElementZero)
{
    fill(5, {1234, 0, 0, 0});
    Instr mv;
    mv.op = Op::VMvXS;
    mv.src1 = 5;
    mv.vl = 1;
    machine.consume(mv);
    EXPECT_EQ(machine.lastScalarResult(), 1234);
}

TEST_F(VecMachineTest, SetVlClampsToVlmax)
{
    Program prog;
    prog.setVl(1000);
    prog.replay(machine);
    EXPECT_EQ(machine.currentVl(), 16u);
}


TEST_F(VecMachineTest, IotaComputesExclusivePrefixCount)
{
    fill(1, {1, 0, 1, 1});
    Program prog;
    prog.vv(Op::VIota, 2, 1, 0, 4);
    prog.replay(machine);
    EXPECT_EQ(machine.elem(2, 0), 0);
    EXPECT_EQ(machine.elem(2, 1), 1);
    EXPECT_EQ(machine.elem(2, 2), 1);
    EXPECT_EQ(machine.elem(2, 3), 2);
}

TEST_F(VecMachineTest, PopcCountsSetMaskBits)
{
    fill(1, {1, 0, 3, 2});  // bit 0 set for elements 0 and 2
    Program prog;
    prog.vv(Op::VPopc, 2, 1, 0, 4);
    prog.replay(machine);
    EXPECT_EQ(machine.elem(2, 0), 2);
}

TEST_F(VecMachineTest, FirstFindsLowestSetBitOrMinusOne)
{
    fill(1, {0, 0, 1, 1});
    Program prog;
    prog.vv(Op::VFirst, 2, 1, 0, 4);
    prog.replay(machine);
    EXPECT_EQ(machine.elem(2, 0), 2);

    fill(1, {0, 0, 0, 0});
    Program none;
    none.vv(Op::VFirst, 3, 1, 0, 4);
    none.replay(machine);
    EXPECT_EQ(machine.elem(3, 0), -1);
}

TEST_F(VecMachineTest, MaskedIotaOnlyWritesActive)
{
    fill(0, {1, 0, 1, 1});
    fill(1, {1, 1, 1, 0});
    fill(2, {-5, -5, -5, -5});
    Program prog;
    prog.vv(Op::VIota, 2, 1, 0, 4, /*masked=*/true);
    prog.replay(machine);
    EXPECT_EQ(machine.elem(2, 0), 0);
    EXPECT_EQ(machine.elem(2, 1), -5);  // inactive
    EXPECT_EQ(machine.elem(2, 2), 2);
    EXPECT_EQ(machine.elem(2, 3), 3);
}

TEST(ByteMemTest, RoundTripAndBounds)
{
    ByteMem mem(64);
    mem.store32(0, -123);
    mem.store32(60, 456);
    EXPECT_EQ(mem.load32(0), -123);
    EXPECT_EQ(mem.load32(60), 456);
    EXPECT_DEATH(mem.load32(61), "beyond");
}

} // namespace
} // namespace eve
