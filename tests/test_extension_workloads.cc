/**
 * @file
 * Tests for the extension workloads (spmv, fir, scan): functional
 * verification at several hardware vector lengths, signature
 * instruction classes, and end-to-end runs on every vector system.
 */

#include <gtest/gtest.h>

#include "driver/system.hh"
#include "isa/functional.hh"
#include "isa/program.hh"
#include "workloads/workload.hh"

namespace eve
{
namespace
{

class ExtensionFunctional
    : public testing::TestWithParam<std::tuple<const char*, unsigned>>
{
};

TEST_P(ExtensionFunctional, VectorProgramMatchesReference)
{
    const auto& [name, hw_vl] = GetParam();
    auto w = makeWorkload(name, /*small=*/true);
    ASSERT_NE(w, nullptr);
    w->init();
    VecMachine machine(w->memory(), hw_vl);
    w->emitVector(machine, hw_vl);
    EXPECT_EQ(w->verify(), 0u) << name << " at hw_vl=" << hw_vl;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExtensionFunctional,
    testing::Combine(testing::Values("spmv", "fir", "scan"),
                     testing::Values(4u, 64u, 100u, 1024u)),
    [](const auto& info) {
        return std::string(std::get<0>(info.param)) + "_vl" +
               std::to_string(std::get<1>(info.param));
    });

TEST(ExtensionWorkloads, RunOnEverySystem)
{
    for (const char* name : {"spmv", "fir", "scan"}) {
        for (SystemKind kind :
             {SystemKind::O3IV, SystemKind::O3DV, SystemKind::O3EVE}) {
            SystemConfig cfg;
            cfg.kind = kind;
            auto w = makeWorkload(name, true);
            const RunResult r = runWorkload(cfg, *w);
            EXPECT_EQ(r.mismatches, 0u)
                << name << " on " << r.system;
        }
    }
}

TEST(ExtensionWorkloads, SignatureClasses)
{
    auto spmv = makeWorkload("spmv", true);
    spmv->init();
    Characterizer cs;
    spmv->emitVector(cs, 64);
    EXPECT_GT(cs.idx, 0u);  // gathers of x
    EXPECT_GT(cs.imul, 0u);
    EXPECT_GT(cs.xe, 0u);   // reductions

    auto fir = makeWorkload("fir", true);
    fir->init();
    Characterizer cf;
    fir->emitVector(cf, 64);
    EXPECT_GT(cf.imul, 0u);
    EXPECT_GT(cf.us, 0u);
    EXPECT_EQ(cf.idx, 0u);

    auto scan = makeWorkload("scan", true);
    scan->init();
    Characterizer cc;
    scan->emitVector(cc, 64);
    EXPECT_GT(cc.xe, 0u);   // slides + broadcast gather
    EXPECT_GT(cc.ialu, 0u);
}

TEST(ExtensionWorkloads, ScanCarriesAcrossStrips)
{
    // Force many strips so the cross-strip carry path is exercised.
    auto w = makeWorkload("scan", true);
    w->init();
    VecMachine machine(w->memory(), 16);
    w->emitVector(machine, 16);
    EXPECT_EQ(w->verify(), 0u);
}

} // namespace
} // namespace eve
