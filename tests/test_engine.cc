/**
 * @file
 * Unit tests for the EVE engine timing model and the L2
 * reconfiguration: breakdown accounting, spawn cost, structural
 * limits (DTUs, MSHRs), fences, and the cycle-time degradation of
 * high parallelization factors.
 */

#include <gtest/gtest.h>

#include "core/engine/reconfig.hh"
#include "driver/system.hh"
#include "workloads/backprop.hh"
#include "workloads/mmult.hh"
#include "workloads/vvadd.hh"
#include "workloads/workload.hh"

namespace eve
{
namespace
{

TEST(Reconfig, SpawnCountsAndCost)
{
    HierarchyParams hp;
    MemHierarchy mem(hp);
    const unsigned line = mem.l2().params().line_bytes;
    const std::uint64_t lines = mem.l2().params().size_bytes / line;
    for (std::uint64_t i = 0; i < lines; ++i)
        mem.l2().touch(Addr(i) * line, i % 4 == 0);

    const SpawnCost cost = spawnEve(mem.l2(), mem.llc(), 1000);
    // Half the ways hold half the lines; a quarter of those dirty.
    EXPECT_EQ(cost.valid_lines, lines / 2);
    EXPECT_EQ(cost.dirty_lines, lines / 8);
    // Linear in lines visited (constant cycles per line).
    EXPECT_GE(cost.cycles, lines / 2);
    EXPECT_LT(cost.cycles, 3 * lines);
    EXPECT_GT(cost.ready_tick, Tick{1000});
    EXPECT_EQ(mem.l2().activeWays(), 4u);

    teardownEve(mem.l2());
    EXPECT_EQ(mem.l2().activeWays(), 8u);
}

TEST(Reconfig, CleanSpawnIsCheaper)
{
    HierarchyParams hp;
    MemHierarchy clean_mem(hp);
    const SpawnCost clean = spawnEve(clean_mem.l2(), clean_mem.llc(), 0);

    MemHierarchy dirty_mem(hp);
    const unsigned line = dirty_mem.l2().params().line_bytes;
    const std::uint64_t lines =
        dirty_mem.l2().params().size_bytes / line;
    for (std::uint64_t i = 0; i < lines; ++i)
        dirty_mem.l2().touch(Addr(i) * line, true);
    const SpawnCost dirty = spawnEve(dirty_mem.l2(), dirty_mem.llc(), 0);

    EXPECT_LT(clean.cycles, dirty.cycles);
    EXPECT_EQ(clean.dirty_lines, 0u);
}

TEST(EveEngine, SpawnDelayChargesFirstInstructions)
{
    VvaddWorkload w1(4096), w2(4096);
    SystemConfig cfg;
    cfg.kind = SystemKind::O3EVE;
    cfg.eve_pf = 8;
    const RunResult base = runWorkload(cfg, w1);
    cfg.spawn_ready = 10'000'000;  // 10 us spawn
    const RunResult delayed = runWorkload(cfg, w2);
    EXPECT_GT(delayed.total_ticks, base.total_ticks + 5'000'000);
    EXPECT_EQ(delayed.mismatches, 0u);
}

TEST(EveEngine, BreakdownNeverExceedsTimeline)
{
    for (const char* name : {"vvadd", "mmult", "sw"}) {
        for (unsigned pf : {1u, 8u, 32u}) {
            SystemConfig cfg;
            cfg.kind = SystemKind::O3EVE;
            cfg.eve_pf = pf;
            auto w = makeWorkload(name, true);
            const RunResult r = runWorkload(cfg, *w);
            EXPECT_LE(r.breakdown.total(), r.total_ticks * 1.3)
                << name << " pf=" << pf;
            EXPECT_GT(r.breakdown.busy, 0.0);
        }
    }
}

TEST(EveEngine, FewerDtusHurtTransposeBoundKernels)
{
    SystemConfig cfg;
    cfg.kind = SystemKind::O3EVE;
    cfg.eve_pf = 8;
    cfg.dtus = 1;
    auto w1 = makeWorkload("pathfinder", true);
    const RunResult starved = runWorkload(cfg, *w1);
    cfg.dtus = 16;
    auto w2 = makeWorkload("pathfinder", true);
    const RunResult rich = runWorkload(cfg, *w2);
    EXPECT_GT(starved.seconds, rich.seconds);
}

TEST(EveEngine, Eve32IsTransposeInsensitive)
{
    SystemConfig cfg;
    cfg.kind = SystemKind::O3EVE;
    cfg.eve_pf = 32;
    cfg.dtus = 1;
    auto w1 = makeWorkload("vvadd", true);
    const RunResult starved = runWorkload(cfg, *w1);
    cfg.dtus = 16;
    auto w2 = makeWorkload("vvadd", true);
    const RunResult rich = runWorkload(cfg, *w2);
    // Bit-parallel layout needs no transpose: DTU count ~irrelevant.
    EXPECT_NEAR(starved.seconds / rich.seconds, 1.0, 0.1);
}

TEST(EveEngine, MoreLlcMshrsNeverHurt)
{
    for (unsigned pf : {1u, 8u}) {
        SystemConfig few;
        few.kind = SystemKind::O3EVE;
        few.eve_pf = pf;
        few.llc_mshrs = 4;
        auto w1 = makeWorkload("backprop", true);
        const RunResult r_few = runWorkload(few, *w1);

        SystemConfig many = few;
        many.llc_mshrs = 128;
        auto w2 = makeWorkload("backprop", true);
        const RunResult r_many = runWorkload(many, *w2);
        EXPECT_LE(r_many.seconds, r_few.seconds * 1.02) << "pf=" << pf;
    }
}

TEST(EveEngine, CycleTimePenaltySlowsScalarSide)
{
    // The same scalar-heavy work on the EVE-32 system (1.55 ns
    // clock) takes more wall time than on EVE-8 (1.025 ns) even
    // though both engines idle: the whole chip slows down.
    MmultWorkload w8(2, 16, 64), w32(2, 16, 64);
    SystemConfig cfg;
    cfg.kind = SystemKind::O3EVE;
    cfg.eve_pf = 8;
    const RunResult r8 = runWorkload(cfg, w8);
    cfg.eve_pf = 32;
    const RunResult r32 = runWorkload(cfg, w32);
    // Not asserting a strict factor (engines differ) — but EVE-32
    // cannot be faster than the pure clock ratio would ever allow
    // on its best day and must see *some* penalty pressure.
    EXPECT_GT(r32.total_ticks, 0.0);
    EXPECT_GT(r8.total_ticks, 0.0);
}

TEST(EveEngine, VmuStallFractionHighForLargeStrides)
{
    // Needs a footprint beyond the LLC so the strided walks actually
    // miss (the small smoke-test backprop is LLC-resident).
    SystemConfig cfg;
    cfg.kind = SystemKind::O3EVE;
    cfg.eve_pf = 8;
    BackpropWorkload w(8192, 128);  // 4 MB of weights, 512 B stride
    System sys(cfg);
    const RunResult r = sys.run(w);
    EXPECT_EQ(r.mismatches, 0u);
    EXPECT_GT(sys.eveSystem()->vmuCacheStallFraction(), 0.3);
}

TEST(EveEngine, StatsExposeUopCounts)
{
    SystemConfig cfg;
    cfg.kind = SystemKind::O3EVE;
    cfg.eve_pf = 8;
    auto w = makeWorkload("mmult", true);
    const RunResult r = runWorkload(cfg, *w);
    EXPECT_GT(r.stat("eve.vsu_uops"), 0.0);
    EXPECT_GT(r.stat("eve.vsu_array_uops"), r.stat("eve.vsu_uops"));
    EXPECT_GT(r.stat("eve.vmu_lines"), 0.0);
    EXPECT_GT(r.stat("dram.reads"), 0.0);
}


TEST(CmpPair, SharedUncoreCreatesInterference)
{
    // Observed core: EVE-8 running vvadd; neighbour: another EVE-8
    // streaming vvadd. Co-running through the shared LLC/DRAM must
    // not speed the observed core up, and a streaming neighbour
    // should measurably slow it down.
    SystemConfig cfg;
    cfg.kind = SystemKind::O3EVE;
    cfg.eve_pf = 8;
    VvaddWorkload solo_w(16384);
    const RunResult solo = runWorkload(cfg, solo_w);

    VvaddWorkload noise_w(16384), observed_w(16384);
    const auto [noise, observed] =
        runCmpPair(cfg, noise_w, cfg, observed_w);
    EXPECT_EQ(noise.mismatches, 0u);
    EXPECT_EQ(observed.mismatches, 0u);
    EXPECT_GE(observed.seconds, solo.seconds * 0.99);
    EXPECT_GT(observed.seconds, solo.seconds * 1.05);
}

TEST(CmpPair, ComputeBoundCoreIsInsulated)
{
    SystemConfig eve;
    eve.kind = SystemKind::O3EVE;
    eve.eve_pf = 8;
    MmultWorkload solo_w(2, 256, 512);
    const RunResult solo = runWorkload(eve, solo_w);

    VvaddWorkload noise_w(65536);
    MmultWorkload observed_w(2, 256, 512);
    const auto [noise, observed] =
        runCmpPair(eve, noise_w, eve, observed_w);
    (void)noise;
    // Compute-bound work barely notices the neighbour.
    EXPECT_LT(observed.seconds, solo.seconds * 1.30);
}

} // namespace
} // namespace eve
