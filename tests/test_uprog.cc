/**
 * @file
 * Unit tests for the micro-program layer: the counter file (zero and
 * binary-decade flags), and the looped VLIW sequencer against the
 * unrolled macro library on random values.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/sram/eve_sram.hh"
#include "core/uprog/counters.hh"
#include "core/uprog/macro_lib.hh"
#include "core/uprog/sequencer.hh"

namespace eve
{
namespace
{

TEST(Counters, DecrementWrapsAndFlags)
{
    CounterFile cf;
    cf.init(CounterId::Seg0, 3);
    EXPECT_EQ(cf.value(CounterId::Seg0), 3u);
    cf.decr(CounterId::Seg0);
    EXPECT_EQ(cf.iteration(CounterId::Seg0), 0u);
    EXPECT_FALSE(cf.zeroFlag(CounterId::Seg0));
    cf.decr(CounterId::Seg0);
    EXPECT_EQ(cf.iteration(CounterId::Seg0), 1u);
    cf.decr(CounterId::Seg0);
    // Wrapped: reset to init, zero flag raised.
    EXPECT_EQ(cf.value(CounterId::Seg0), 3u);
    EXPECT_TRUE(cf.zeroFlag(CounterId::Seg0));
    EXPECT_EQ(cf.iteration(CounterId::Seg0), 2u);
    cf.clearZeroFlag(CounterId::Seg0);
    EXPECT_FALSE(cf.zeroFlag(CounterId::Seg0));
    // Next pass restarts iteration indices.
    cf.decr(CounterId::Seg0);
    EXPECT_EQ(cf.iteration(CounterId::Seg0), 0u);
    EXPECT_TRUE(cf.firstIteration(CounterId::Seg0));
}

TEST(Counters, DecadeFlagOnPowersOfTwo)
{
    CounterFile cf;
    cf.init(CounterId::Bit0, 5);
    cf.decr(CounterId::Bit0);  // 4: a binary decade
    EXPECT_TRUE(cf.decadeFlag(CounterId::Bit0));
    cf.clearDecadeFlag(CounterId::Bit0);
    cf.decr(CounterId::Bit0);  // 3
    EXPECT_FALSE(cf.decadeFlag(CounterId::Bit0));
    cf.decr(CounterId::Bit0);  // 2
    EXPECT_TRUE(cf.decadeFlag(CounterId::Bit0));
}

TEST(Counters, IndependentCounters)
{
    CounterFile cf;
    cf.init(CounterId::Seg0, 2);
    cf.init(CounterId::Arr3, 7);
    cf.decr(CounterId::Seg0);
    EXPECT_EQ(cf.value(CounterId::Arr3), 7u);
    cf.incr(CounterId::Arr3);
    EXPECT_EQ(cf.value(CounterId::Arr3), 8u);
}

class SequencerVsUnrolled : public testing::TestWithParam<unsigned>
{
};

TEST_P(SequencerVsUnrolled, AddMatchesOnRandomValues)
{
    const unsigned pf = GetParam();
    EveSramConfig cfg;
    cfg.lanes = 6;
    cfg.pf = pf;
    EveSram sram(cfg);
    Rng rng(pf * 131);
    std::uint32_t a[6], b[6];
    for (unsigned lane = 0; lane < 6; ++lane) {
        a[lane] = std::uint32_t(rng.next());
        b[lane] = std::uint32_t(rng.next());
        sram.writeElement(lane, 2, a[lane]);
        sram.writeElement(lane, 3, b[lane]);
    }
    Sequencer seq(sram);
    const Cycles cycles = seq.run(romAdd(sram, 1, 2, 3));
    for (unsigned lane = 0; lane < 6; ++lane)
        EXPECT_EQ(sram.readElement(lane, 1), a[lane] + b[lane])
            << "pf=" << pf << " lane=" << lane;
    // Figure 4(a): init + 2 tuples per segment + ret.
    EXPECT_EQ(cycles, Cycles{2} * (32 / pf) + 2);
}

TEST_P(SequencerVsUnrolled, MulMatchesOnRandomValues)
{
    const unsigned pf = GetParam();
    EveSramConfig cfg;
    cfg.lanes = 5;
    cfg.pf = pf;
    EveSram sram(cfg);
    Rng rng(pf * 733);
    std::uint32_t a[5], b[5];
    for (unsigned lane = 0; lane < 5; ++lane) {
        a[lane] = std::uint32_t(rng.next());
        b[lane] = std::uint32_t(rng.next());
        sram.writeElement(lane, 2, a[lane]);
        sram.writeElement(lane, 3, b[lane]);
    }
    Sequencer seq(sram);
    seq.run(romMul(sram, 1, 2, 3, sram.scratchReg(0),
                   sram.scratchReg(1)));
    for (unsigned lane = 0; lane < 5; ++lane)
        EXPECT_EQ(sram.readElement(lane, 1), a[lane] * b[lane])
            << "pf=" << pf << " lane=" << lane;
}


TEST_P(SequencerVsUnrolled, SubAndLogicMatch)
{
    const unsigned pf = GetParam();
    EveSramConfig cfg;
    cfg.lanes = 4;
    cfg.pf = pf;
    EveSram sram(cfg);
    Rng rng(pf * 17 + 5);
    std::uint32_t a[4], b[4];
    for (unsigned lane = 0; lane < 4; ++lane) {
        a[lane] = std::uint32_t(rng.next());
        b[lane] = std::uint32_t(rng.next());
        sram.writeElement(lane, 2, a[lane]);
        sram.writeElement(lane, 3, b[lane]);
    }
    Sequencer seq(sram);
    seq.run(romSub(sram, 1, 2, 3, sram.scratchReg(0)));
    seq.run(romLogic(sram, USrc::Xor, 4, 2, 3));
    seq.run(romLogic(sram, USrc::Or, 5, 2, 3));
    seq.run(romCopy(sram, 6, 3));
    for (unsigned lane = 0; lane < 4; ++lane) {
        EXPECT_EQ(sram.readElement(lane, 1), a[lane] - b[lane]);
        EXPECT_EQ(sram.readElement(lane, 4), a[lane] ^ b[lane]);
        EXPECT_EQ(sram.readElement(lane, 5), a[lane] | b[lane]);
        EXPECT_EQ(sram.readElement(lane, 6), b[lane]);
    }
}

INSTANTIATE_TEST_SUITE_P(AllPf, SequencerVsUnrolled,
                         testing::Values(1u, 2u, 4u, 8u, 16u, 32u),
                         [](const auto& info) {
                             return "pf" + std::to_string(info.param);
                         });

TEST(Sequencer, RunawayProgramPanics)
{
    EveSramConfig cfg;
    cfg.lanes = 1;
    cfg.pf = 8;
    EveSram sram(cfg);
    Sequencer seq(sram);
    RomProgram prog;
    prog.name = "spin";
    Tuple t;
    t.ctl.kind = CtlOp::Kind::Jmp;
    t.ctl.target = 0;
    prog.tuples.push_back(t);
    EXPECT_DEATH(seq.run(prog), "exceeded");
}

TEST(MacroLib, LengthCacheIsConsistent)
{
    EveSramConfig cfg;
    cfg.lanes = 1;
    cfg.pf = 8;
    MacroLib lib(cfg);
    Instr i;
    i.op = Op::VSll;
    i.dst = 1;
    i.src1 = 2;
    i.usesScalar = true;
    i.imm = 7;
    const Cycles first = lib.cycles(i);
    EXPECT_EQ(lib.cycles(i), first);
    EXPECT_EQ(first, lib.build(i).prog.size() +
                         MacroLib::controlOverhead);
    // Different shift amounts have different lengths (and keys).
    i.imm = 1;
    EXPECT_NE(lib.cycles(i), first);
}

TEST(MacroLib, RejectsNonVsuOps)
{
    EveSramConfig cfg;
    cfg.lanes = 1;
    cfg.pf = 8;
    MacroLib lib(cfg);
    Instr load;
    load.op = Op::VLoad;
    EXPECT_DEATH(lib.build(load), "not a VSU macro-op");
}

TEST(UopToString, RendersForms)
{
    EXPECT_EQ(uopToString(uBlc(3, 4)), "blc r3, r4");
    EXPECT_EQ(uopToString(uBlc(3, 4, CarryIn::One)), "blc r3, r4, ci=1");
    EXPECT_EQ(uopToString(uWr(7, USrc::Add, true)), "wr r7, add, m");
    EXPECT_EQ(uopToString(uSimple(UKind::MaskShift)), "m_shft");
}

} // namespace
} // namespace eve
