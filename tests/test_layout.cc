/**
 * @file
 * Unit tests for the data-layout model: the lane law against the
 * paper's hardware vector lengths, utilization trends, and the
 * Figure 1 small-array points.
 */

#include <gtest/gtest.h>

#include "analytic/taxonomy.hh"
#include "core/layout/layout.hh"

namespace eve
{
namespace
{

Layout
paperLayout(unsigned pf)
{
    LayoutParams p;
    p.rows = 256;
    p.cols = 256;
    p.num_vregs = 32;
    p.elem_bits = 32;
    p.pf = pf;
    return Layout(p);
}

TEST(LayoutTest, HwVectorLengthsMatchTable3)
{
    // 32 active sub-arrays (half the 64-sub-array L2).
    EXPECT_EQ(paperLayout(1).hwVectorLength(32), 2048u);
    EXPECT_EQ(paperLayout(2).hwVectorLength(32), 2048u);
    EXPECT_EQ(paperLayout(4).hwVectorLength(32), 2048u);
    EXPECT_EQ(paperLayout(8).hwVectorLength(32), 1024u);
    EXPECT_EQ(paperLayout(16).hwVectorLength(32), 512u);
    EXPECT_EQ(paperLayout(32).hwVectorLength(32), 256u);
}

TEST(LayoutTest, SegmentsArePrecisionOverPf)
{
    EXPECT_EQ(paperLayout(1).segments(), 32u);
    EXPECT_EQ(paperLayout(8).segments(), 4u);
    EXPECT_EQ(paperLayout(32).segments(), 1u);
}

TEST(LayoutTest, LaneFoldingBelowBalance)
{
    // Below pf=4, the 1 KB register file of a lane exceeds one
    // 256-bit column group, widening lanes (column under-use).
    EXPECT_EQ(paperLayout(1).laneCols(), 4u);
    EXPECT_EQ(paperLayout(1).groupsPerLane(), 4u);
    EXPECT_EQ(paperLayout(2).laneCols(), 4u);
    EXPECT_EQ(paperLayout(4).laneCols(), 4u);
    EXPECT_EQ(paperLayout(4).groupsPerLane(), 1u);
    EXPECT_EQ(paperLayout(8).laneCols(), 8u);
}

TEST(LayoutTest, BalancedUtilizationAtPf4)
{
    // pf=4 is the paper's balanced point: full columns and full
    // storage.
    EXPECT_DOUBLE_EQ(paperLayout(4).columnUtilization(), 1.0);
    EXPECT_DOUBLE_EQ(paperLayout(4).storageUtilization(), 1.0);
    // Bit-serial wastes compute columns...
    EXPECT_LT(paperLayout(1).columnUtilization(), 0.5);
    // ...and bit-parallel wastes storage rows.
    EXPECT_LT(paperLayout(32).storageUtilization(), 0.5);
}

TEST(LayoutTest, VirtualRowMapping)
{
    const Layout l = paperLayout(8);
    EXPECT_EQ(l.virtualRow(0, 0), 0u);
    EXPECT_EQ(l.virtualRow(0, 3), 3u);
    EXPECT_EQ(l.virtualRow(1, 0), 4u);
    EXPECT_EQ(l.virtualRows(), 128u);
}

TEST(LayoutTest, Fig1PaperPoints)
{
    // "with parallelization factor of one ... half the SRAM is
    // occupied providing storage for 16 elements" (1 vreg, 16x16,
    // 8-bit elements).
    const Fig1Point one = fig1Point(16, 16, 8, 1, 1);
    EXPECT_EQ(one.elements, 16u);
    EXPECT_DOUBLE_EQ(one.storageUtilization, 0.5);

    // "the SRAM reaches balanced utilization with two vector
    // registers".
    const Fig1Point two = fig1Point(16, 16, 8, 2, 1);
    EXPECT_EQ(two.elements, 16u);
    EXPECT_DOUBLE_EQ(two.storageUtilization, 1.0);

    // "to support more vector registers, some of the columns are
    // repurposed ... reducing the number of in-situ ALUs".
    const Fig1Point four = fig1Point(16, 16, 8, 4, 1);
    EXPECT_EQ(four.alus, 8u);
}

TEST(LayoutTest, RejectsBadGeometry)
{
    LayoutParams p;
    p.pf = 3;  // does not divide 32
    EXPECT_DEATH(Layout{p}, "divide");
    LayoutParams q;
    q.rows = 4;
    q.cols = 4;
    q.pf = 4;
    q.num_vregs = 32;
    q.elem_bits = 32;
    EXPECT_DEATH(Layout{q}, "does not fit");
}

} // namespace
} // namespace eve
