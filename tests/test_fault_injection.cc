/**
 * @file
 * Failure-injection tests: the verification machinery must actually
 * detect wrong results, and invalid configurations must be rejected
 * loudly rather than mis-simulated. A checker that cannot fail is
 * not a checker.
 */

#include <gtest/gtest.h>

#include "analytic/circuits.hh"
#include "core/sram/eve_sram.hh"
#include "core/uprog/macro_lib.hh"
#include "cpu/io_core.hh"
#include "driver/system.hh"
#include "isa/functional.hh"
#include "workloads/workload.hh"

namespace eve
{
namespace
{

TEST(FaultInjection, WorkloadVerifyDetectsCorruption)
{
    for (const char* name : {"vvadd", "mmult", "sw", "scan"}) {
        auto w = makeWorkload(name, true);
        w->init();
        VecMachine machine(w->memory(), 64);
        w->emitVector(machine, 64);
        ASSERT_EQ(w->verify(), 0u) << name;
        // Flip one output word: the checker must notice.
        // (Outputs live in the upper region of each workload's
        // memory; scanning from the end finds one quickly.)
        ByteMem& mem = w->memory();
        bool corrupted = false;
        for (Addr a = mem.size() - 64; a >= 4 && !corrupted; a -= 4) {
            const std::int32_t v = mem.load32(a);
            mem.store32(a, v ^ 0x5a5a5a5a);
            if (w->verify() > 0) {
                corrupted = true;
            } else {
                mem.store32(a, v);  // not an output word; restore
            }
        }
        EXPECT_TRUE(corrupted)
            << name << ": no output word affected verify()";
    }
}

TEST(FaultInjection, MacroProgramCorruptionIsCaught)
{
    // Drop the final micro-op of an add program: the result must
    // differ from the reference (the property suite would catch it).
    EveSramConfig cfg;
    cfg.lanes = 2;
    cfg.pf = 8;
    EveSram sram(cfg);
    MacroLib lib(cfg);
    // Values whose sum has bits in the top segment, so losing the
    // final segment writeback is visible.
    sram.writeElement(0, 2, 0xf0000001u);
    sram.writeElement(0, 3, 1u);
    Instr add;
    add.op = Op::VAdd;
    add.dst = 4;
    add.src1 = 2;
    add.src2 = 3;
    add.vl = 2;
    MacroProgram prog = lib.build(add).prog;
    prog.pop_back();  // lose the last segment's writeback
    sram.run(prog);
    EXPECT_NE(sram.readElement(0, 4), 0xf0000002u);
}

TEST(FaultInjection, BadConfigurationsDie)
{
    // Unsupported parallelization factor.
    EXPECT_DEATH(CircuitModel::cycleTimeNs(64), "unsupported");
    // Vector length beyond the hardware.
    EveSramConfig cfg;
    cfg.lanes = 2;
    cfg.pf = 8;
    EveSram sram(cfg);
    EXPECT_DEATH(sram.writeElement(5, 0, 1), "col");
    EXPECT_DEATH(sram.rowOf(60, 0), "out of range");
}

TEST(FaultInjection, VlBeyondHardwarePanics)
{
    SystemConfig cfg;
    cfg.kind = SystemKind::O3EVE;
    cfg.eve_pf = 32;  // hw vl = 256
    System sys(cfg);
    Instr instr;
    instr.op = Op::VAdd;
    instr.vl = 1024;
    EXPECT_DEATH(sys.timing().consume(instr), "exceeds hardware vl");
}

TEST(FaultInjection, ScalarOpInVectorEngineOnlyCoreDies)
{
    HierarchyParams hp;
    MemHierarchy mem(hp);
    IOCoreParams p;
    IOCore core(p, mem);
    Instr v;
    v.op = Op::VAdd;
    v.vl = 4;
    EXPECT_DEATH(core.consume(v), "vector instruction");
}

} // namespace
} // namespace eve
