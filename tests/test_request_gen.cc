/**
 * @file
 * Unit tests for vector memory request planning (cacheline
 * generation for unit-stride, strided, and indexed accesses).
 */

#include <gtest/gtest.h>

#include "vector/request_gen.hh"

namespace eve
{
namespace
{

Instr
memInstr(Op op, Addr addr, std::uint32_t vl, std::int64_t stride = 0)
{
    Instr i;
    i.op = op;
    i.addr = addr;
    i.vl = vl;
    i.stride = stride;
    return i;
}

TEST(RequestGen, UnitStrideCoversRange)
{
    // 32 elements x 4B from 0x10: bytes [0x10, 0x90) -> lines 0,1,2.
    const auto lines = planRequests(memInstr(Op::VLoad, 0x10, 32), 64);
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0], 0x00u);
    EXPECT_EQ(lines[1], 0x40u);
    EXPECT_EQ(lines[2], 0x80u);
}

TEST(RequestGen, UnitStrideAlignedExact)
{
    const auto lines = planRequests(memInstr(Op::VStore, 0x40, 16), 64);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], 0x40u);
}

TEST(RequestGen, SmallStrideMergesWithinLines)
{
    // Stride 8B: 8 elements span 64B -> lines merge to 2 at most.
    const auto lines =
        planRequests(memInstr(Op::VLoadStrided, 0, 16, 8), 64);
    EXPECT_EQ(lines.size(), 2u);
}

TEST(RequestGen, LargeStrideOneLinePerElement)
{
    const auto lines =
        planRequests(memInstr(Op::VLoadStrided, 0, 16, 256), 64);
    EXPECT_EQ(lines.size(), 16u);
    EXPECT_EQ(lines[1], 256u);
}

TEST(RequestGen, NegativeStrideWalksBackwards)
{
    const auto lines =
        planRequests(memInstr(Op::VLoadStrided, 1024, 4, -64), 64);
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_EQ(lines[0], 1024u);
    EXPECT_EQ(lines[3], 1024u - 192u);
}

TEST(RequestGen, IndexedUsesOffsets)
{
    std::uint32_t offsets[] = {0, 4, 300, 301};
    Instr i = memInstr(Op::VLoadIndexed, 0x1000, 4);
    i.indices = offsets;
    const auto lines = planRequests(i, 64);
    // 0 and 4 share a line; 300 and 301 share another.
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], 0x1000u);
    EXPECT_EQ(lines[1], (0x1000u + 300u) & ~Addr{63});
}

TEST(RequestGen, IndexedWithoutIndicesPanics)
{
    EXPECT_DEATH(planRequests(memInstr(Op::VLoadIndexed, 0, 4), 64),
                 "indexed");
}

TEST(RequestGen, NonMemoryOpPanics)
{
    EXPECT_DEATH(planRequests(memInstr(Op::VAdd, 0, 4), 64),
                 "not a vector memory op");
}

} // namespace
} // namespace eve
