/**
 * @file
 * Unit tests for the analytical models: Section II taxonomy (the
 * throughput peak and latency trends of Figure 2), Section VI
 * circuits (area sums, cycle times), system area, and the energy
 * model's comparative properties.
 */

#include <gtest/gtest.h>

#include "analytic/circuits.hh"
#include "analytic/energy.hh"
#include "analytic/taxonomy.hh"

namespace eve
{
namespace
{

TEST(Taxonomy, AddThroughputPeaksAtPf4)
{
    TaxonomyParams params;
    const auto sweep = taxonomySweep(params);
    double best = 0;
    unsigned best_pf = 0;
    for (const auto& p : sweep)
        if (p.addThroughput > best) {
            best = p.addThroughput;
            best_pf = p.pf;
        }
    EXPECT_EQ(best_pf, 4u);
}

TEST(Taxonomy, AddLatencyMonotonicallyDecreases)
{
    TaxonomyParams params;
    const auto sweep = taxonomySweep(params);
    for (std::size_t i = 1; i < sweep.size(); ++i)
        EXPECT_LT(sweep[i].addLatency, sweep[i - 1].addLatency);
}

TEST(Taxonomy, LatencySublinearInSegments)
{
    // Halving segments does not halve latency: control overhead
    // (the Section II observation behind Figure 2).
    TaxonomyParams params;
    const auto p1 = taxonomyPoint(params, 1);
    const auto p32 = taxonomyPoint(params, 32);
    EXPECT_GT(double(p32.addLatency) / double(p1.addLatency),
              1.0 / 32.0);
}

TEST(Taxonomy, AluCountsFollowLaneLaw)
{
    TaxonomyParams params;
    EXPECT_EQ(taxonomyPoint(params, 1).alus, 64u);
    EXPECT_EQ(taxonomyPoint(params, 4).alus, 64u);
    EXPECT_EQ(taxonomyPoint(params, 8).alus, 32u);
    EXPECT_EQ(taxonomyPoint(params, 32).alus, 8u);
}

TEST(Circuits, CycleTimesMatchPaper)
{
    EXPECT_DOUBLE_EQ(CircuitModel::baselineCycleNs(), 1.025);
    EXPECT_DOUBLE_EQ(CircuitModel::cycleTimeNs(1), 1.025);
    EXPECT_DOUBLE_EQ(CircuitModel::cycleTimeNs(8), 1.025);
    EXPECT_DOUBLE_EQ(CircuitModel::cycleTimeNs(16), 1.175);
    EXPECT_DOUBLE_EQ(CircuitModel::cycleTimeNs(32), 1.55);
}

TEST(Circuits, ArrayOverheadsMatchPaper)
{
    EXPECT_NEAR(CircuitModel::arrayOverheadPct(1), 9.0, 1e-9);
    EXPECT_NEAR(CircuitModel::arrayOverheadPct(8), 15.6, 1e-9);
    EXPECT_NEAR(CircuitModel::arrayOverheadPct(16), 15.6, 1e-9);
    EXPECT_NEAR(CircuitModel::arrayOverheadPct(32), 12.6, 1e-9);
    // Banking halves the overhead (two sub-arrays per stack).
    EXPECT_NEAR(CircuitModel::bankedOverheadPct(8), 7.8, 1e-9);
    EXPECT_NEAR(CircuitModel::bankedOverheadPct(1), 4.5, 1e-9);
    EXPECT_NEAR(CircuitModel::bankedOverheadPct(32), 6.3, 1e-9);
}

TEST(Circuits, Eve8EngineOverheadNear11Pct)
{
    // Paper: EVE-8 total 11.7% (3.9% circuits + 7.8% DTUs/ROM).
    EXPECT_NEAR(CircuitModel::engineOverheadPct(8), 11.7, 0.3);
}

TEST(Circuits, StacksDifferByDesign)
{
    EXPECT_EQ(CircuitModel::stacks(1).size(), 5u);   // bit-serial
    EXPECT_EQ(CircuitModel::stacks(8).size(), 7u);   // bit-hybrid
    EXPECT_EQ(CircuitModel::stacks(32).size(), 6u);  // bit-parallel
}

TEST(SystemArea, MatchesPaper)
{
    EXPECT_DOUBLE_EQ(SystemAreaModel::o3(), 1.0);
    EXPECT_DOUBLE_EQ(SystemAreaModel::o3iv(), 1.10);
    EXPECT_DOUBLE_EQ(SystemAreaModel::o3dv(), 2.00);
    EXPECT_DOUBLE_EQ(SystemAreaModel::o3eve(1), 1.10);
    EXPECT_DOUBLE_EQ(SystemAreaModel::o3eve(8), 1.12);
    EXPECT_DOUBLE_EQ(SystemAreaModel::o3eve(32), 1.11);
}

TEST(Energy, BlcCostsTwentyPercentOverRead)
{
    const EnergyParams p;
    EXPECT_NEAR(p.blc_pj / p.sram_read_pj, 1.2, 1e-9);
    EXPECT_LT(p.uop_other_pj, p.sram_read_pj);
}

TEST(Energy, DramDominatesForMemoryTraffic)
{
    RunResult r;
    r.instrs = 1000;
    r.vecInstrs = 0;
    r.stats["dram.reads"] = 10000;
    r.stats["l1d.reads"] = 10000;
    SystemConfig cfg;
    cfg.kind = SystemKind::O3;
    const EnergyReport e = estimateEnergy(r, cfg);
    EXPECT_GT(e.dram_nj, e.cache_nj);
    EXPECT_GT(e.dram_nj, e.core_nj);
}

TEST(Energy, EveChargesActiveArrayUops)
{
    RunResult r;
    r.instrs = 0;
    r.stats["eve.vsu_array_uops"] = 1000;
    SystemConfig cfg;
    cfg.kind = SystemKind::O3EVE;
    const EnergyReport e = estimateEnergy(r, cfg);
    EXPECT_GT(e.engine_nj, 0.0);
    // Doubling the active-array micro-ops doubles engine energy.
    r.stats["eve.vsu_array_uops"] = 2000;
    EXPECT_NEAR(estimateEnergy(r, cfg).engine_nj, 2 * e.engine_nj,
                1e-9);
}

} // namespace
} // namespace eve
