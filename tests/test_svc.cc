/**
 * @file
 * Sweep-service tests: wire-protocol round trips, concurrent clients
 * sharing one pool (dedup + byte-identity of streamed records),
 * disconnect/resubmit idempotence, daemon restart recovering the pool
 * from the jobs directory, elastic worker scale-up and idle
 * retirement, dead-worker respawn, and salt/protocol/version-skew
 * refusal. Workers run as in-process threads via a test
 * WorkerLauncher — the production fork/exec launcher is exercised by
 * the CLI smoke job in CI.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>

#include "common/version.hh"
#include "exp/exp.hh"
#include "svc/client.hh"
#include "svc/net.hh"
#include "svc/proto.hh"
#include "svc/service.hh"
#include "workloads/workload.hh"

using namespace eve;
using namespace eve::exp;
using namespace eve::svc;

namespace
{

/** A fresh, empty scratch directory under the gtest temp dir. */
std::string
freshDir(const std::string& name)
{
    const std::string dir = ::testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    return dir;
}

/** Short socket paths: sun_path caps out around 100 characters. */
std::string
shortSocket(const std::string& name)
{
    const std::string path = "/tmp/eve-svc-test-" + name + ".sock";
    std::filesystem::remove(path);
    return path;
}

/** IO-system jobs over @p workloads, one per workload. */
std::vector<Job>
ioJobs(const std::vector<std::string>& workloads)
{
    SweepSpec spec;
    SystemConfig io;
    io.kind = SystemKind::IO;
    spec.system(io);
    spec.workloads(workloads, /*small=*/true);
    return spec.jobs();
}

/** Pool tunables tuned for test speed. */
DistOptions
fastDist(const std::string& dir)
{
    DistOptions d;
    d.jobs_dir = dir;
    d.lease_timeout_s = 1.0;
    d.heartbeat_s = 0.05;
    d.poll_s = 0.01;
    d.join_timeout_s = 10;
    return d;
}

/** Service options around @p dist with quick ticks. */
ServiceOptions
fastService(const std::string& socket, const DistOptions& dist)
{
    ServiceOptions so;
    so.socket_path = socket;
    so.dist = dist;
    so.tick_s = 0.02;
    so.quiet = true;
    return so;
}

/** Spawn bookkeeping shared between a test and its launcher. */
struct SpawnLog
{
    std::atomic<unsigned> spawned{0};
    std::atomic<bool> gate{true}; ///< workers wait until open
};

/**
 * Test launcher: each worker is a std::thread running the ordinary
 * claim loop. stop() is a no-op — the service's teardown stop marker
 * (and idle_exit_s for surge workers) ends the loop.
 */
WorkerLauncher
threadLauncher(std::shared_ptr<SpawnLog> log)
{
    return [log](const DistOptions& d) -> WorkerHandle {
        ++log->spawned;
        auto done = std::make_shared<std::atomic<bool>>(false);
        auto th = std::make_shared<std::thread>([log, d, done] {
            while (!log->gate.load())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
            runDistWorker(d);
            done->store(true);
        });
        WorkerHandle h;
        h.running = [done] { return !done->load(); };
        h.stop = [] {};
        h.join = [th] {
            if (th->joinable())
                th->join();
        };
        return h;
    };
}

/** A launcher whose workers are dead on arrival (never claim). */
WorkerLauncher
dudLauncher(std::shared_ptr<SpawnLog> log)
{
    return [log](const DistOptions&) -> WorkerHandle {
        ++log->spawned;
        WorkerHandle h;
        h.running = [] { return false; };
        h.stop = [] {};
        h.join = [] {};
        return h;
    };
}

/** Run service.run() on a thread; reports the return value. */
struct ServiceRun
{
    explicit ServiceRun(SweepService& svc)
        : thread([this, &svc] { ok.store(svc.run(&error)); })
    {
    }

    ~ServiceRun()
    {
        if (thread.joinable())
            thread.join();
    }

    void join() { thread.join(); }

    std::atomic<bool> ok{false};
    std::string error;
    std::thread thread;
};

/** Poll @p pred every few ms until true or @p timeout_s. */
bool
waitUntil(const std::function<bool()>& pred, double timeout_s = 10)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double>(timeout_s);
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
}

/** Wait until the daemon's socket answers hello. */
bool
waitForDaemon(const std::string& socket)
{
    return waitUntil([&] { return helloServer(socket, 0.2).ok; }, 10);
}

/** The submit request submitSweep would send for @p jobs. */
SubmitRequest
requestFor(const std::vector<Job>& jobs)
{
    SubmitRequest req;
    req.sweep = "test";
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        DistJob dj;
        dj.index = i;
        dj.key = jobKey(jobs[i]);
        dj.label = jobs[i].label;
        dj.workload = jobs[i].workload;
        dj.scale = jobs[i].scale;
        dj.config = configCanonical(jobs[i].config);
        dj.remote = true;
        req.jobs.push_back(std::move(dj));
    }
    return req;
}

/** One-shot raw exchange: send @p line, return the first reply. */
std::string
rawExchange(const std::string& socket, const std::string& line)
{
    Conn conn = connectTo(socket, 5);
    EXPECT_TRUE(conn.valid());
    EXPECT_TRUE(conn.writeLine(line));
    std::string reply;
    EXPECT_TRUE(conn.readLine(reply, 10));
    return reply;
}

} // namespace

// ---------------------------------------------------------------- proto

TEST(SvcProto, SubmitRoundTrip)
{
    const std::vector<Job> jobs = ioJobs({"vvadd", "fir"});
    const SubmitRequest req = requestFor(jobs);
    const std::string line = makeSubmit(req);

    JsonValue msg;
    std::string verb;
    ASSERT_TRUE(parseMessage(line, msg, verb));
    EXPECT_EQ(verb, "submit");

    SubmitRequest back;
    ASSERT_TRUE(parseSubmit(msg, back));
    EXPECT_EQ(back.sweep, "test");
    EXPECT_EQ(back.protocol, kSvcProtocolVersion);
    EXPECT_EQ(back.salt, kSimulatorSalt);
    EXPECT_EQ(back.version, kEveVersion);
    ASSERT_EQ(back.jobs.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(back.jobs[i].index, req.jobs[i].index);
        EXPECT_EQ(back.jobs[i].key, req.jobs[i].key);
        EXPECT_EQ(back.jobs[i].label, req.jobs[i].label);
        EXPECT_EQ(back.jobs[i].workload, req.jobs[i].workload);
        EXPECT_EQ(back.jobs[i].scale, req.jobs[i].scale);
        EXPECT_EQ(back.jobs[i].config, req.jobs[i].config);
        EXPECT_TRUE(back.jobs[i].remote);
    }
}

TEST(SvcProto, SubmitCarriesSamplingOnlyWhenSet)
{
    std::vector<Job> jobs = ioJobs({"vvadd"});
    SubmitRequest req = requestFor(jobs);
    // Exact jobs serialize without a sampling member at all, so the
    // submit line is byte-compatible with pre-sampling daemons.
    EXPECT_EQ(makeSubmit(req).find("\"sampling\""),
              std::string::npos);

    req.jobs[0].sampling = "interval=1000;warmup=200;stride=8";
    const std::string line = makeSubmit(req);
    EXPECT_NE(line.find("\"sampling\""), std::string::npos);

    JsonValue msg;
    std::string verb;
    ASSERT_TRUE(parseMessage(line, msg, verb));
    SubmitRequest back;
    ASSERT_TRUE(parseSubmit(msg, back));
    ASSERT_EQ(back.jobs.size(), 1u);
    EXPECT_EQ(back.jobs[0].sampling,
              "interval=1000;warmup=200;stride=8");
}

TEST(SvcService, WorkerArgsForwardExecutionOptions)
{
    // Satellite regression: the daemon's spawned workers used to
    // drop sim_threads (and would have dropped checkpoint_dir) on
    // the floor — DistOptions carried them, the exec argv did not.
    exp::DistOptions d;
    d.jobs_dir = "/pool";
    d.lease_timeout_s = 60;
    d.heartbeat_s = 2;
    d.poll_s = 0.25;
    d.join_timeout_s = 600;

    auto has_flag = [](const std::vector<std::string>& args,
                       const std::string& flag,
                       const std::string& value) {
        for (std::size_t i = 0; i + 1 < args.size(); ++i)
            if (args[i] == flag && args[i + 1] == value)
                return true;
        return false;
    };

    // Defaults: no sim-threads (inline) and no checkpoint flags.
    std::vector<std::string> args = workerArgs(d);
    ASSERT_FALSE(args.empty());
    EXPECT_EQ(args[1], "--worker");
    EXPECT_TRUE(has_flag(args, "--jobs-dir", "/pool"));
    for (const auto& a : args) {
        EXPECT_NE(a, "--sim-threads");
        EXPECT_NE(a, "--checkpoint-dir");
    }

    d.sim_threads = 4;
    d.checkpoint_dir = "/ckpt";
    d.worker_id = "floor-0";
    d.idle_exit_s = 5;
    args = workerArgs(d);
    EXPECT_TRUE(has_flag(args, "--sim-threads", "4"));
    EXPECT_TRUE(has_flag(args, "--checkpoint-dir", "/ckpt"));
    EXPECT_TRUE(has_flag(args, "--worker-id", "floor-0"));
    EXPECT_TRUE(has_flag(args, "--idle-exit", "5.000000"));
}

TEST(SvcProto, ParseMessageResetsReusedValue)
{
    // Regression: parseObject appends, so parsing a second message
    // into the same JsonValue used to leave the first message's
    // members shadowing the new ones — a streaming client would read
    // the stale verb and silently drop every result.
    JsonValue msg;
    std::string verb;
    ASSERT_TRUE(parseMessage(
        "{\"verb\":\"result\",\"index\":3,\"record\":{\"a\":1}}", msg,
        verb));
    EXPECT_EQ(verb, "result");
    EXPECT_EQ(jsonNumberField(msg, "index"), 3);

    ASSERT_TRUE(parseMessage(
        "{\"verb\":\"sweep-done\",\"ok\":2,\"total\":2}", msg, verb));
    EXPECT_EQ(verb, "sweep-done");
    EXPECT_EQ(jsonNumberField(msg, "ok"), 2);
    EXPECT_EQ(jsonNumberField(msg, "index", -1), -1);
}

TEST(SvcProto, ExtractRecordPreservesBytes)
{
    const std::string record =
        "{\"label\":\"a/b\",\"stats\":{\"x\":1.5},\"note\":\"}\"}";
    const std::string line = makeResult(7, 1, 4, record);
    std::string out;
    ASSERT_TRUE(extractRecord(line, out));
    EXPECT_EQ(out, record);

    EXPECT_FALSE(extractRecord("{\"verb\":\"result\"}", out));
}

// -------------------------------------------------------------- service

TEST(SvcService, HelloAndStatusIdentity)
{
    const std::string socket = shortSocket("hello");
    auto log = std::make_shared<SpawnLog>();
    ServiceOptions so =
        fastService(socket, fastDist(freshDir("svc_hello")));
    so.launcher = dudLauncher(log);
    SweepService svc(so);
    ServiceRun run(svc);
    ASSERT_TRUE(waitForDaemon(socket));

    const ServerHello hello = helloServer(socket);
    ASSERT_TRUE(hello.ok) << hello.error;
    EXPECT_EQ(hello.service, kSvcServiceName);
    EXPECT_EQ(hello.protocol, kSvcProtocolVersion);
    EXPECT_EQ(hello.salt, kSimulatorSalt);
    EXPECT_EQ(hello.version, kEveVersion);

    std::string status;
    ASSERT_TRUE(statusServer(socket, 5, status));
    JsonValue msg;
    std::string verb;
    ASSERT_TRUE(parseMessage(status, msg, verb));
    EXPECT_EQ(verb, "status");
    EXPECT_EQ(jsonStringField(msg, "salt"), kSimulatorSalt);
    EXPECT_EQ(jsonStringField(msg, "version"), kEveVersion);
    EXPECT_EQ(jsonNumberField(msg, "pool_total", -1), 0);
    EXPECT_EQ(jsonNumberField(msg, "workers", -1), 1);

    svc.requestShutdown();
    run.join();
    EXPECT_TRUE(run.ok.load()) << run.error;
}

TEST(SvcService, ConcurrentClientsShareThePool)
{
    const std::string socket = shortSocket("share");
    const std::string dir = freshDir("svc_share");
    auto log = std::make_shared<SpawnLog>();
    ServiceOptions so = fastService(socket, fastDist(dir));
    so.launcher = threadLauncher(log);
    so.min_workers = 2;
    SweepService svc(so);
    ServiceRun run(svc);
    ASSERT_TRUE(waitForDaemon(socket));

    // Overlapping sweeps from two concurrent clients: "fir" appears
    // in both and must execute exactly once.
    const std::vector<Job> sweep_a = ioJobs({"vvadd", "fir"});
    const std::vector<Job> sweep_b = ioJobs({"fir", "scan"});
    ClientOptions copts;
    copts.socket_path = socket;
    SweepOutcome a, b;
    std::thread ta([&] { a = submitSweep(sweep_a, copts); });
    std::thread tb([&] { b = submitSweep(sweep_b, copts); });
    ta.join();
    tb.join();

    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    ASSERT_EQ(a.results.size(), 2u);
    ASSERT_EQ(b.results.size(), 2u);
    for (const auto& r : a.results)
        EXPECT_EQ(r.status, JobStatus::Ok) << r.label;
    for (const auto& r : b.results)
        EXPECT_EQ(r.status, JobStatus::Ok) << r.label;

    // Three distinct jobs total; the overlap was deduplicated
    // whichever client reached the daemon first.
    const ServiceMetrics m = svc.metrics();
    EXPECT_EQ(m.pool_total, 3u);
    EXPECT_EQ(m.jobs_shared + m.jobs_cached, 1u);
    EXPECT_EQ(m.completed, 3u);
    EXPECT_EQ(m.sweeps, 2u);

    // Byte-identity: both clients' "fir" payloads re-serialize to
    // the identical record — the one stored in the shared cache.
    // Only the leading "index" differs (each client's own sweep
    // position; the cache stores the daemon's pool index).
    const auto payloadOf = [](const std::string& record) {
        const std::size_t at = record.find("\"label\"");
        EXPECT_NE(at, std::string::npos) << record;
        return record.substr(at);
    };
    const std::string fir_a =
        payloadOf(resultToJson(a.results[1], true));
    const std::string fir_b =
        payloadOf(resultToJson(b.results[0], true));
    EXPECT_EQ(fir_a, fir_b);
    ResultCache cache(dir + "/cache");
    cache.load();
    const std::string* stored = cache.recordText(jobKey(sweep_a[1]));
    ASSERT_NE(stored, nullptr);
    EXPECT_EQ(fir_a, payloadOf(*stored));

    svc.requestShutdown();
    run.join();
    EXPECT_TRUE(run.ok.load()) << run.error;
}

TEST(SvcService, DisconnectLosesNothingAndResubmitIsIdempotent)
{
    const std::string socket = shortSocket("resubmit");
    auto log = std::make_shared<SpawnLog>();
    ServiceOptions so =
        fastService(socket, fastDist(freshDir("svc_resubmit")));
    so.launcher = threadLauncher(log);
    SweepService svc(so);
    ServiceRun run(svc);
    ASSERT_TRUE(waitForDaemon(socket));

    // Submit, read only the acceptance, then drop the connection.
    const std::vector<Job> jobs = ioJobs({"vvadd", "fir"});
    {
        Conn conn = connectTo(socket, 5);
        ASSERT_TRUE(conn.valid());
        ASSERT_TRUE(conn.writeLine(makeSubmit(requestFor(jobs))));
        std::string reply;
        ASSERT_TRUE(conn.readLine(reply, 10));
        JsonValue msg;
        std::string verb;
        ASSERT_TRUE(parseMessage(reply, msg, verb));
        ASSERT_EQ(verb, "accepted");
    } // disconnect mid-sweep

    // The pooled jobs keep running to completion regardless.
    ASSERT_TRUE(waitUntil(
        [&] { return svc.metrics().completed == 2; }, 30));

    // Reconnecting resubmits the identical sweep: everything is
    // shared against the pool and replays instantly.
    ClientOptions copts;
    copts.socket_path = socket;
    const SweepOutcome again = submitSweep(jobs, copts);
    ASSERT_TRUE(again.ok) << again.error;
    EXPECT_EQ(again.shared + again.cached, 2u);
    EXPECT_EQ(again.fresh, 0u);
    for (const auto& r : again.results)
        EXPECT_EQ(r.status, JobStatus::Ok) << r.label;
    EXPECT_EQ(svc.metrics().pool_total, 2u);

    svc.requestShutdown();
    run.join();
    EXPECT_TRUE(run.ok.load()) << run.error;
}

TEST(SvcService, RestartRecoversPendingPool)
{
    // A dead daemon leaves pool/ copies and a pending/ queue behind;
    // materialize that state directly, then boot a daemon on top.
    const std::string dir = freshDir("svc_restart");
    const std::vector<Job> jobs = ioJobs({"vvadd", "fir"});
    {
        JobsDir pool(fastDist(dir));
        std::vector<DistJob> pooled;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            DistJob dj;
            dj.index = i;
            dj.key = jobKey(jobs[i]);
            dj.label = jobs[i].label;
            dj.workload = jobs[i].workload;
            dj.scale = jobs[i].scale;
            dj.config = configCanonical(jobs[i].config);
            dj.remote = true;
            pooled.push_back(std::move(dj));
        }
        pool.appendPoolJobs(pooled, pooled.size());
    }

    const std::string socket = shortSocket("restart");
    auto log = std::make_shared<SpawnLog>();
    ServiceOptions so = fastService(socket, fastDist(dir));
    so.launcher = threadLauncher(log);
    SweepService svc(so);
    ServiceRun run(svc);
    ASSERT_TRUE(waitForDaemon(socket));

    // Recovered, not resubmitted: the same sweep is entirely shared.
    EXPECT_EQ(svc.metrics().pool_total, 2u);
    ClientOptions copts;
    copts.socket_path = socket;
    const SweepOutcome out = submitSweep(jobs, copts);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.shared, 2u);
    EXPECT_EQ(out.fresh, 0u);
    for (const auto& r : out.results)
        EXPECT_EQ(r.status, JobStatus::Ok) << r.label;

    svc.requestShutdown();
    run.join();
    EXPECT_TRUE(run.ok.load()) << run.error;

    // Second restart over the *completed* directory, with a fresh
    // cache and workers that cannot run anything: results must come
    // from the recovered done/ records alone.
    const std::string socket2 = shortSocket("restart2");
    auto log2 = std::make_shared<SpawnLog>();
    ServiceOptions so2 = fastService(socket2, fastDist(dir));
    so2.cache_dir = freshDir("svc_restart_cache2");
    so2.launcher = dudLauncher(log2);
    SweepService svc2(so2);
    ServiceRun run2(svc2);
    ASSERT_TRUE(waitForDaemon(socket2));

    EXPECT_EQ(svc2.metrics().completed, 2u);
    copts.socket_path = socket2;
    const SweepOutcome replay = submitSweep(jobs, copts);
    ASSERT_TRUE(replay.ok) << replay.error;
    EXPECT_EQ(replay.shared, 2u);
    for (const auto& r : replay.results)
        EXPECT_EQ(r.status, JobStatus::Ok) << r.label;

    svc2.requestShutdown();
    run2.join();
    EXPECT_TRUE(run2.ok.load()) << run2.error;
}

TEST(SvcService, ElasticSurgeAndIdleRetirement)
{
    const std::string socket = shortSocket("elastic");
    auto log = std::make_shared<SpawnLog>();
    log->gate.store(false); // hold workers so queue depth persists
    ServiceOptions so =
        fastService(socket, fastDist(freshDir("svc_elastic")));
    so.launcher = threadLauncher(log);
    so.min_workers = 1;
    so.max_workers = 3;
    so.worker_idle_exit_s = 0.15;
    SweepService svc(so);
    ServiceRun run(svc);
    ASSERT_TRUE(waitForDaemon(socket));

    ClientOptions copts;
    copts.socket_path = socket;
    SweepOutcome out;
    std::thread client([&] {
        out = submitSweep(
            ioJobs({"vvadd", "fir", "scan", "spmv"}), copts);
    });

    // With four jobs queued and nobody executing, the fleet manager
    // surges to max_workers.
    EXPECT_TRUE(waitUntil([&] { return log->spawned >= 3; }, 10));
    log->gate.store(true);
    client.join();
    ASSERT_TRUE(out.ok) << out.error;

    // Queue empty again: surge workers self-retire on idleness,
    // leaving only the floor.
    EXPECT_TRUE(
        waitUntil([&] { return svc.metrics().workers == 1; }, 10));

    svc.requestShutdown();
    run.join();
    EXPECT_TRUE(run.ok.load()) << run.error;
}

TEST(SvcService, DeadWorkerIsRespawned)
{
    // The first spawned worker dies instantly (the thread-level
    // analogue of kill -9); the fleet manager must notice and
    // respawn, and the sweep must still complete.
    const std::string socket = shortSocket("respawn");
    auto log = std::make_shared<SpawnLog>();
    auto real = threadLauncher(log);
    auto first = std::make_shared<std::atomic<bool>>(true);
    ServiceOptions so =
        fastService(socket, fastDist(freshDir("svc_respawn")));
    so.launcher = [log, real,
                   first](const DistOptions& d) -> WorkerHandle {
        if (first->exchange(false)) {
            ++log->spawned;
            WorkerHandle h;
            h.running = [] { return false; };
            h.stop = [] {};
            h.join = [] {};
            return h;
        }
        return real(d);
    };
    SweepService svc(so);
    ServiceRun run(svc);
    ASSERT_TRUE(waitForDaemon(socket));

    ClientOptions copts;
    copts.socket_path = socket;
    const SweepOutcome out = submitSweep(ioJobs({"vvadd"}), copts);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.results[0].status, JobStatus::Ok);
    EXPECT_GE(log->spawned.load(), 2u);

    svc.requestShutdown();
    run.join();
    EXPECT_TRUE(run.ok.load()) << run.error;
}

TEST(SvcService, SkewedSubmissionsAreRefused)
{
    const std::string socket = shortSocket("skew");
    auto log = std::make_shared<SpawnLog>();
    ServiceOptions so =
        fastService(socket, fastDist(freshDir("svc_skew")));
    so.launcher = dudLauncher(log);
    SweepService svc(so);
    ServiceRun run(svc);
    ASSERT_TRUE(waitForDaemon(socket));

    const std::string good = makeSubmit(requestFor(ioJobs({"vvadd"})));
    const auto swapped = [&](const std::string& from,
                             const std::string& to) {
        std::string line = good;
        const std::size_t at = line.find(from);
        EXPECT_NE(at, std::string::npos);
        line.replace(at, from.size(), to);
        return line;
    };

    struct Case
    {
        std::string field;
        std::string bogus;
        std::string expect;
    };
    const std::vector<Case> cases = {
        {std::string(kSvcProtocolVersion), "eve-svc-v0",
         "protocol skew"},
        {std::string(kSimulatorSalt), "bogus-salt", "salt skew"},
        {std::string(kEveVersion), "eve-sim 0.0.0", "version skew"},
    };
    for (const auto& c : cases) {
        const std::string reply =
            rawExchange(socket, swapped(c.field, c.bogus));
        JsonValue msg;
        std::string verb;
        ASSERT_TRUE(parseMessage(reply, msg, verb)) << reply;
        EXPECT_EQ(verb, "error") << reply;
        const std::string message = jsonStringField(msg, "message");
        EXPECT_NE(message.find(c.expect), std::string::npos)
            << message;
        // Refusals must leave no partial pool state behind.
        EXPECT_EQ(svc.metrics().pool_total, 0u);
    }

    svc.requestShutdown();
    run.join();
    EXPECT_TRUE(run.ok.load()) << run.error;
}

TEST(SvcService, DrainRefusesSubmissionsThenFinishes)
{
    const std::string socket = shortSocket("drain");
    auto log = std::make_shared<SpawnLog>();
    log->gate.store(false); // keep the pooled job in flight
    ServiceOptions so =
        fastService(socket, fastDist(freshDir("svc_drain")));
    so.launcher = threadLauncher(log);
    SweepService svc(so);
    ServiceRun run(svc);
    ASSERT_TRUE(waitForDaemon(socket));

    // Pool one job fire-and-forget, then ask for a graceful drain
    // while it is still outstanding.
    const std::vector<Job> jobs = ioJobs({"vvadd"});
    {
        Conn conn = connectTo(socket, 5);
        ASSERT_TRUE(conn.valid());
        ASSERT_TRUE(conn.writeLine(makeSubmit(requestFor(jobs))));
        std::string reply;
        ASSERT_TRUE(conn.readLine(reply, 10));
    }
    ASSERT_TRUE(shutdownServer(socket));
    EXPECT_TRUE(svc.draining());

    // Draining daemons refuse new work with a deterministic error.
    ClientOptions copts;
    copts.socket_path = socket;
    const SweepOutcome refused = submitSweep(ioJobs({"fir"}), copts);
    EXPECT_FALSE(refused.ok);
    EXPECT_NE(refused.error.find("draining"), std::string::npos)
        << refused.error;

    // ... but accepted work still runs to completion before exit.
    log->gate.store(true);
    run.join();
    EXPECT_TRUE(run.ok.load()) << run.error;
    EXPECT_EQ(svc.metrics().completed, 1u);
}
