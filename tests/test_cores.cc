/**
 * @file
 * Unit tests for the scalar timing models: in-order serialization,
 * out-of-order overlap, ROB/LSQ limits, store buffering, and the
 * commit-side hooks vector systems rely on.
 */

#include <gtest/gtest.h>

#include "cpu/io_core.hh"
#include "cpu/o3_core.hh"
#include "mem/hierarchy.hh"

namespace eve
{
namespace
{

Instr
scalarAlu(unsigned dst = 1, unsigned s1 = 0, unsigned s2 = 0)
{
    Instr i;
    i.op = Op::SAlu;
    i.dst = std::uint8_t(dst);
    i.src1 = std::uint8_t(s1);
    i.src2 = std::uint8_t(s2);
    return i;
}

Instr
scalarLoad(Addr addr, unsigned dst = 1)
{
    Instr i;
    i.op = Op::SLoad;
    i.dst = std::uint8_t(dst);
    i.addr = addr;
    return i;
}

TEST(IOCoreTest, OneAluPerCycle)
{
    HierarchyParams hp;
    MemHierarchy mem(hp);
    IOCoreParams p;
    IOCore core(p, mem);
    for (int i = 0; i < 100; ++i)
        core.consume(scalarAlu());
    core.finish();
    EXPECT_NEAR(double(core.finalTick()) / 1025.0, 100.0, 1.0);
}

TEST(IOCoreTest, LoadsBlockOnMisses)
{
    HierarchyParams hp;
    MemHierarchy mem(hp);
    IOCoreParams p;
    IOCore core(p, mem);
    // Two independent misses to different lines: a blocking in-order
    // core serializes them (no memory-level parallelism).
    core.consume(scalarLoad(0));
    core.consume(scalarLoad(4096));
    core.finish();
    // Each miss ~ L1+L2+LLC+DRAM latency; two must be ~2x one.
    const double two = double(core.finalTick());

    MemHierarchy mem2(hp);
    IOCore core2(p, mem2);
    core2.consume(scalarLoad(0));
    core2.finish();
    const double one = double(core2.finalTick());
    EXPECT_GT(two, 1.8 * one);
}

TEST(IOCoreTest, StoresBufferWithoutBlocking)
{
    HierarchyParams hp;
    MemHierarchy mem(hp);
    IOCoreParams p;
    IOCore core(p, mem);
    Instr st;
    st.op = Op::SStore;
    st.addr = 0;
    // A handful of stores (fits the store buffer) should cost about
    // one cycle each, not a miss each.
    for (int i = 0; i < 4; ++i) {
        st.addr = Addr(i) * 4096;
        core.consume(st);
    }
    Tick before_finish = core.finalTick();
    EXPECT_LT(double(before_finish), 10 * 1025.0);
}

TEST(O3CoreTest, OverlapsIndependentLoads)
{
    HierarchyParams hp;
    MemHierarchy mem(hp);
    O3CoreParams p;
    O3Core core(p, mem);
    for (int i = 0; i < 8; ++i)
        core.consume(scalarLoad(Addr(i) * 4096, 1 + i));
    core.finish();
    const double o3_ticks = double(core.finalTick());

    MemHierarchy mem2(hp);
    IOCoreParams iop;
    IOCore io(iop, mem2);
    for (int i = 0; i < 8; ++i)
        io.consume(scalarLoad(Addr(i) * 4096));
    io.finish();
    // The OoO core must exploit MLP: several times faster.
    EXPECT_LT(o3_ticks * 3, double(io.finalTick()));
}

TEST(O3CoreTest, DependentChainSerializes)
{
    HierarchyParams hp;
    MemHierarchy mem(hp);
    O3CoreParams p;
    O3Core core(p, mem);
    // r1 <- r1 chain: one per cycle despite 8-wide dispatch.
    for (int i = 0; i < 200; ++i)
        core.consume(scalarAlu(1, 1, 0));
    core.finish();
    EXPECT_GE(double(core.finalTick()), 199 * 1025.0);
}

TEST(O3CoreTest, WideDispatchOfIndependents)
{
    HierarchyParams hp;
    MemHierarchy mem(hp);
    O3CoreParams p;
    O3Core core(p, mem);
    // Independent ops: ~width per cycle.
    for (int i = 0; i < 800; ++i)
        core.consume(scalarAlu(1 + (i % 32), 0, 0));
    core.finish();
    const double cycles = double(core.finalTick()) / 1025.0;
    EXPECT_LT(cycles, 800.0 / 4);  // at least 4 IPC
}

TEST(O3CoreTest, RobLimitsRunahead)
{
    HierarchyParams hp;
    MemHierarchy mem(hp);
    O3CoreParams p;
    p.rob = 8;
    O3Core core(p, mem);
    // A miss at the head with a long independent tail: the tiny ROB
    // stalls dispatch until the miss resolves.
    core.consume(scalarLoad(1 << 20, 1));
    for (int i = 0; i < 64; ++i)
        core.consume(scalarAlu(2, 0, 0));
    core.finish();
    EXPECT_GT(core.stats().get("rob_stall_ticks"), 0.0);
}

TEST(O3CoreTest, VectorDispatchCommitsInOrder)
{
    HierarchyParams hp;
    MemHierarchy mem(hp);
    O3CoreParams p;
    O3Core core(p, mem);
    core.consume(scalarLoad(1 << 20, 1));  // long miss
    Instr v;
    v.op = Op::VAdd;
    const Tick commit = core.dispatchVector(v);
    // The vector instruction cannot be handed to the engine before
    // the older load commits.
    EXPECT_GT(commit, Tick{50000});
}

TEST(O3CoreTest, StallCommitAdvancesTime)
{
    HierarchyParams hp;
    MemHierarchy mem(hp);
    O3CoreParams p;
    O3Core core(p, mem);
    core.consume(scalarAlu());
    core.stallCommit(1'000'000);
    core.finish();
    EXPECT_GE(core.finalTick(), Tick{1'000'000});
    EXPECT_GT(core.stats().get("commit_stall_ticks"), 0.0);
}

} // namespace
} // namespace eve
