/**
 * @file
 * Unit tests for the flat Addr -> Tick table backing the cache's
 * in-flight-fill (MSHR) tracking. The table must behave exactly like
 * a map — including under the deletion patterns the cache uses
 * (victim erase, bounded-size prune) — because simulated timing
 * depends on its contents.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>

#include "common/flat_map.hh"

namespace eve
{
namespace
{

TEST(FlatAddrMap, InsertFindErase)
{
    FlatAddrMap m(4);
    EXPECT_EQ(m.size(), 0u);
    EXPECT_FALSE(m.contains(7));

    m.insertOrAssign(7, 100);
    ASSERT_NE(m.find(7), nullptr);
    EXPECT_EQ(*m.find(7), Tick{100});

    m.insertOrAssign(7, 200);  // overwrite, not duplicate
    EXPECT_EQ(m.size(), 1u);
    EXPECT_EQ(*m.find(7), Tick{200});

    EXPECT_TRUE(m.erase(7));
    EXPECT_FALSE(m.erase(7));
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.find(7), nullptr);
}

TEST(FlatAddrMap, GrowsPastInitialCapacity)
{
    FlatAddrMap m(2);
    for (Addr a = 0; a < 1000; ++a)
        m.insertOrAssign(a, Tick(a * 3));
    EXPECT_EQ(m.size(), 1000u);
    for (Addr a = 0; a < 1000; ++a) {
        ASSERT_NE(m.find(a), nullptr) << "key " << a;
        EXPECT_EQ(*m.find(a), Tick(a * 3));
    }
}

TEST(FlatAddrMap, BackshiftKeepsProbeChainsIntact)
{
    // Unit-stride line numbers are the cache's common case; erase
    // from the middle of their probe chains and verify every
    // survivor is still reachable.
    FlatAddrMap m(8);
    for (Addr a = 0; a < 64; ++a)
        m.insertOrAssign(a, Tick(a));
    for (Addr a = 0; a < 64; a += 3)
        EXPECT_TRUE(m.erase(a));
    for (Addr a = 0; a < 64; ++a) {
        if (a % 3 == 0) {
            EXPECT_FALSE(m.contains(a)) << "key " << a;
        } else {
            ASSERT_NE(m.find(a), nullptr) << "key " << a;
            EXPECT_EQ(*m.find(a), Tick(a));
        }
    }
}

TEST(FlatAddrMap, EraseIfMatchesMapSemantics)
{
    // The cache's bounded-size prune: drop every fill at or before a
    // cutoff, keep the rest.
    FlatAddrMap m(16);
    for (Addr a = 0; a < 100; ++a)
        m.insertOrAssign(a, Tick(a * 10));
    m.eraseIf([](Addr, Tick fill) { return fill <= 500; });
    EXPECT_EQ(m.size(), 49u);  // fills 510..990
    for (Addr a = 0; a < 100; ++a)
        EXPECT_EQ(m.contains(a), a * 10 > 500) << "key " << a;
}

TEST(FlatAddrMap, MinValueBoundNeverExceedsTrueMinimum)
{
    // The cache skips a prune outright when the bound proves no entry
    // can match; the bound may lag low after erases but must never
    // sit above the true minimum.
    FlatAddrMap m(8);
    EXPECT_EQ(m.minValueBound(), ~Tick{0});

    m.insertOrAssign(1, 300);
    m.insertOrAssign(2, 100);
    m.insertOrAssign(3, 200);
    EXPECT_EQ(m.minValueBound(), Tick{100});

    // erase() leaves the bound untouched — still a valid lower bound.
    m.erase(2);
    EXPECT_LE(m.minValueBound(), Tick{200});

    // eraseIf() recomputes the exact minimum of the survivors.
    m.eraseIf([](Addr, Tick t) { return t <= 150; });
    EXPECT_EQ(m.minValueBound(), Tick{200});
    m.eraseIf([](Addr, Tick) { return true; });
    EXPECT_EQ(m.minValueBound(), ~Tick{0});

    m.clear();
    EXPECT_EQ(m.minValueBound(), ~Tick{0});
}

TEST(FlatAddrMap, ClearEmptiesButStaysUsable)
{
    FlatAddrMap m(4);
    m.insertOrAssign(1, 10);
    m.insertOrAssign(2, 20);
    m.clear();
    EXPECT_EQ(m.size(), 0u);
    EXPECT_FALSE(m.contains(1));
    m.insertOrAssign(3, 30);
    EXPECT_EQ(*m.find(3), Tick{30});
}

TEST(FlatAddrMap, RandomizedAgainstStdMap)
{
    // Drive both containers with the same operation stream (seeded,
    // so the test is deterministic) and require identical contents
    // throughout.
    std::mt19937_64 rng(12345);
    FlatAddrMap flat(8);
    std::map<Addr, Tick> ref;
    for (int step = 0; step < 20000; ++step) {
        const Addr key = rng() % 512;
        switch (rng() % 3) {
          case 0: {
            const Tick value = Tick(rng() % 100000);
            flat.insertOrAssign(key, value);
            ref[key] = value;
            break;
          }
          case 1:
            EXPECT_EQ(flat.erase(key), ref.erase(key) > 0);
            break;
          default: {
            const Tick* v = flat.find(key);
            const auto it = ref.find(key);
            ASSERT_EQ(v != nullptr, it != ref.end());
            if (v)
                EXPECT_EQ(*v, it->second);
            break;
          }
        }
        if (step % 4096 == 0) {
            const Tick cutoff = Tick(rng() % 100000);
            flat.eraseIf(
                [cutoff](Addr, Tick t) { return t <= cutoff; });
            for (auto it = ref.begin(); it != ref.end();) {
                if (it->second <= cutoff)
                    it = ref.erase(it);
                else
                    ++it;
            }
        }
        ASSERT_EQ(flat.size(), ref.size()) << "step " << step;
        if (!ref.empty()) {
            Tick true_min = ~Tick{0};
            for (const auto& [k, v] : ref)
                true_min = std::min(true_min, v);
            ASSERT_LE(flat.minValueBound(), true_min)
                << "step " << step;
        }
    }
    for (const auto& [key, value] : ref) {
        ASSERT_NE(flat.find(key), nullptr);
        EXPECT_EQ(*flat.find(key), value);
    }
}

} // namespace
} // namespace eve
