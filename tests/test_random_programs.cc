/**
 * @file
 * Whole-program property test: random sequences of vector
 * instructions executed two ways — plain reference semantics
 * (VecMachine) and bit-accurate micro-programs on the EVE SRAM —
 * must leave identical register files. This is stronger than the
 * per-op equivalence suite: it exercises op *composition*, scratch
 * reuse across macro-ops, and mask-register state carried between
 * instructions.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "core/sram/eve_sram.hh"
#include "core/uprog/macro_lib.hh"
#include "isa/functional.hh"

namespace eve
{
namespace
{

constexpr unsigned kLanes = 4;

/** Ops safe to chain arbitrarily (all bit-exact on the SRAM). */
const Op kOps[] = {
    Op::VAdd, Op::VSub, Op::VRsub, Op::VAnd, Op::VOr, Op::VXor,
    Op::VMin, Op::VMax, Op::VMinu, Op::VMaxu, Op::VMul, Op::VMacc,
    Op::VMseq, Op::VMsne, Op::VMslt, Op::VMsle, Op::VMsgt,
    Op::VMerge, Op::VMvVX, Op::VSll, Op::VSrl, Op::VSra,
    Op::VDivu, Op::VRemu, Op::VDiv, Op::VRem,
};

class RandomPrograms : public testing::TestWithParam<unsigned>
{
};

TEST_P(RandomPrograms, SramMatchesReferenceOverLongSequences)
{
    const unsigned pf = GetParam();
    EveSramConfig cfg;
    cfg.lanes = kLanes;
    cfg.pf = pf;
    EveSram sram(cfg);
    ByteMem mem(64);
    VecMachine ref(mem, kLanes);
    MacroLib lib(cfg);
    Rng rng(0xbeef + pf);

    // Identical random initial state.
    for (unsigned reg = 0; reg < 32; ++reg)
        for (unsigned lane = 0; lane < kLanes; ++lane) {
            std::int32_t v = rng.i32();
            if (reg == 0)
                v &= 1;
            ref.setElem(reg, lane, v);
            sram.writeElement(lane, reg, std::uint32_t(v));
        }

    const unsigned steps = pf >= 8 ? 60 : 25;
    for (unsigned step = 0; step < steps; ++step) {
        Instr instr;
        instr.op = kOps[rng.below(std::size(kOps))];
        instr.vl = kLanes;
        instr.dst = std::uint8_t(1 + rng.below(31));
        instr.src1 = std::uint8_t(rng.below(32));
        instr.src2 = std::uint8_t(rng.below(32));
        instr.masked = rng.below(4) == 0;
        if (instr.op == Op::VMvVX) {
            instr.usesScalar = true;
            instr.imm = rng.i32();
        } else if (instr.op == Op::VSll || instr.op == Op::VSrl ||
                   instr.op == Op::VSra) {
            // Both scalar-amount and register-amount forms.
            if (rng.below(2)) {
                instr.usesScalar = true;
                instr.imm = std::int64_t(rng.below(32));
            }
        } else if (rng.below(3) == 0) {
            instr.usesScalar = true;
            instr.imm = rng.i32();
        }

        const MacroBuild build = lib.build(instr);
        ASSERT_TRUE(build.bit_exact);
        ref.consume(instr);
        sram.run(build.prog);

        // Compare the full architectural register file each step so
        // a divergence is pinned to the instruction that caused it.
        for (unsigned reg = 0; reg < 32; ++reg)
            for (unsigned lane = 0; lane < kLanes; ++lane)
                ASSERT_EQ(sram.readElement(lane, reg),
                          std::uint32_t(ref.elem(reg, lane)))
                    << "pf=" << pf << " step=" << step << " op="
                    << opName(instr.op) << " reg=v" << reg
                    << " lane=" << lane
                    << (instr.masked ? " masked" : "")
                    << (instr.usesScalar
                            ? " imm=" + std::to_string(instr.imm)
                            : "");
    }
}

INSTANTIATE_TEST_SUITE_P(AllPf, RandomPrograms,
                         testing::Values(1u, 2u, 4u, 8u, 16u, 32u),
                         [](const auto& info) {
                             return "pf" + std::to_string(info.param);
                         });

} // namespace
} // namespace eve
