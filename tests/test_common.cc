/**
 * @file
 * Unit tests for the common substrate: bit utilities, the
 * deterministic RNG, statistics, logging helpers, and clock domains.
 */

#include <gtest/gtest.h>

#include <cstdarg>

#include "common/bits.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace eve
{
namespace
{

TEST(Bits, BitExtraction)
{
    EXPECT_TRUE(bit(0b1010, 1));
    EXPECT_FALSE(bit(0b1010, 0));
    EXPECT_TRUE(bit(std::uint64_t{1} << 63, 63));
}

TEST(Bits, FieldExtraction)
{
    EXPECT_EQ(bits(0xdeadbeef, 8, 8), 0xbeu);
    EXPECT_EQ(bits(0xdeadbeef, 0, 32), 0xdeadbeefu);
    EXPECT_EQ(bits(~std::uint64_t{0}, 0, 64), ~std::uint64_t{0});
}

TEST(Bits, InsertBit)
{
    EXPECT_EQ(insertBit(0, 5, true), 32u);
    EXPECT_EQ(insertBit(0xff, 0, false), 0xfeu);
}

TEST(Bits, Pow2AndLog)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(256));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(3));
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(32), 5u);
    EXPECT_EQ(log2i(1u << 31), 31u);
}

TEST(Bits, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(8, 4), 2u);
    EXPECT_EQ(divCeil(9, 4), 3u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Stats, AddAndGet)
{
    StatGroup g("grp");
    EXPECT_EQ(g.get("x"), 0.0);
    EXPECT_FALSE(g.has("x"));
    g.add("x", 2);
    g.add("x", 3);
    EXPECT_EQ(g.get("x"), 5.0);
    EXPECT_TRUE(g.has("x"));
    g.set("x", 1);
    EXPECT_EQ(g.get("x"), 1.0);
}

TEST(Stats, DumpContainsGroupPrefix)
{
    StatGroup g("cache");
    g.add("hits", 10);
    EXPECT_NE(g.dump().find("cache.hits = 10"), std::string::npos);
}

TEST(Stats, ClearResets)
{
    StatGroup g;
    g.add("a", 1);
    g.clear();
    EXPECT_FALSE(g.has("a"));
}

TEST(Stats, MergeAccumulates)
{
    StatGroup a("core");
    a.add("instrs", 10);
    a.add("cycles", 4);
    StatGroup b("core");
    b.add("instrs", 5);
    b.add("stalls", 2);
    a.merge(b);
    EXPECT_EQ(a.get("instrs"), 15.0);
    EXPECT_EQ(a.get("cycles"), 4.0);
    EXPECT_EQ(a.get("stalls"), 2.0);
    // merge() leaves the source untouched.
    EXPECT_EQ(b.get("instrs"), 5.0);
    EXPECT_FALSE(b.has("cycles"));
}

TEST(Stats, PreRegisteredIdsAreInvisibleUntilTouched)
{
    // The timing-parity requirement behind the Id fast path:
    // registering a handle in a constructor must not change what the
    // group reports — only actual updates may.
    StatGroup g("cache");
    const StatGroup::Id hits = g.id("hits");
    const StatGroup::Id misses = g.id("misses");
    EXPECT_FALSE(g.has("hits"));
    EXPECT_TRUE(g.sorted().empty());
    EXPECT_EQ(g.toJson(), "{}");

    g.add(hits, 3);
    EXPECT_TRUE(g.has("hits"));
    EXPECT_FALSE(g.has("misses"));
    EXPECT_EQ(g.toJson(), "{\"hits\":3}");

    // A zero delta still creates the counter, exactly like the
    // string path (and the map it replaced) always did.
    g.add(misses, 0);
    EXPECT_TRUE(g.has("misses"));
    EXPECT_EQ(g.toJson(), "{\"hits\":3,\"misses\":0}");
}

TEST(Stats, IdsStayValidAcrossClear)
{
    StatGroup g("core");
    const StatGroup::Id instrs = g.id("instrs");
    g.add(instrs, 10);
    g.clear();
    EXPECT_FALSE(g.has("instrs"));
    g.add(instrs, 2);
    EXPECT_EQ(g.get("instrs"), 2.0);
    // id() resolves to the same handle after clear().
    EXPECT_EQ(g.id("instrs"), instrs);
}

TEST(Stats, IdAndStringPathsAlias)
{
    StatGroup g;
    const StatGroup::Id x = g.id("x");
    g.add("x", 2);
    g.add(x, 3);
    EXPECT_EQ(g.get("x"), 5.0);
}

TEST(Stats, ToJsonSortedAndTyped)
{
    StatGroup g("llc");
    g.add("misses", 3);
    g.add("hit_rate", 0.5);
    EXPECT_EQ(g.toJson(), "{\"hit_rate\":0.5,\"misses\":3}");
    EXPECT_EQ(StatGroup("empty").toJson(), "{}");
}

TEST(Stats, JsonHelpers)
{
    EXPECT_EQ(jsonNumber(42.0), "42");
    EXPECT_EQ(jsonNumber(-7.0), "-7");
    EXPECT_EQ(jsonNumber(0.25), "0.25");
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(statsToJson({{"k", 1.0}}), "{\"k\":1}");
}

namespace
{
std::string
format(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}
} // namespace

TEST(Log, VformatFormats)
{
    EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(format("plain"), "plain");
}

TEST(ClockDomain, Conversions)
{
    ClockDomain clk(1.025);
    EXPECT_EQ(clk.period(), Tick{1025});
    EXPECT_EQ(clk.toTicks(10), Tick{10250});
    EXPECT_EQ(clk.toCycles(1025), Cycles{1});
    EXPECT_EQ(clk.toCycles(1026), Cycles{2});  // rounds up
    EXPECT_DOUBLE_EQ(clk.periodNs(), 1.025);
}

} // namespace
} // namespace eve
