/**
 * @file
 * Remaining coverage: reference-machine corners not hit elsewhere,
 * the Emit helper surface, and cross-checks between analytic models
 * and the simulator configuration.
 */

#include <gtest/gtest.h>

#include "analytic/circuits.hh"
#include "core/layout/layout.hh"
#include "driver/system.hh"
#include "isa/functional.hh"
#include "isa/program.hh"
#include "workloads/workload.hh"

namespace eve
{
namespace
{

TEST(VecMachineMore, UnsignedMinMax)
{
    ByteMem mem(64);
    VecMachine m(mem, 4);
    m.setElem(1, 0, -1);  // 0xffffffff: unsigned max
    m.setElem(2, 0, 5);
    Program prog;
    prog.vv(Op::VMinu, 3, 1, 2, 1);
    prog.vv(Op::VMaxu, 4, 1, 2, 1);
    prog.replay(m);
    EXPECT_EQ(m.elem(3, 0), 5);
    EXPECT_EQ(m.elem(4, 0), -1);
}

TEST(VecMachineMore, MulhComputesHighHalf)
{
    ByteMem mem(64);
    VecMachine m(mem, 2);
    m.setElem(1, 0, 0x40000000);
    m.setElem(2, 0, 4);
    m.setElem(1, 1, -1);
    m.setElem(2, 1, -1);
    Program prog;
    prog.vv(Op::VMulh, 3, 1, 2, 2);
    prog.replay(m);
    EXPECT_EQ(m.elem(3, 0), 1);   // 2^30 * 4 = 2^32
    EXPECT_EQ(m.elem(3, 1), 0);   // (-1)*(-1) = 1, high half 0
}

TEST(VecMachineMore, SlideUpOffsetPreservesLowElements)
{
    ByteMem mem(64);
    VecMachine m(mem, 8);
    for (int i = 0; i < 8; ++i) {
        m.setElem(1, unsigned(i), 100 + i);
        m.setElem(2, unsigned(i), -i);
    }
    Program prog;
    prog.vx(Op::VSlideUp, 2, 1, 3, 8);  // offset 3
    prog.replay(m);
    // Elements below the offset are untouched (RVV semantics).
    EXPECT_EQ(m.elem(2, 0), 0);
    EXPECT_EQ(m.elem(2, 2), -2);
    EXPECT_EQ(m.elem(2, 3), 100);
    EXPECT_EQ(m.elem(2, 7), 104);
}

TEST(VecMachineMore, VIdWritesIndices)
{
    ByteMem mem(64);
    VecMachine m(mem, 4);
    Program prog;
    prog.vv(Op::VId, 5, 0, 0, 4);
    prog.replay(m);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(m.elem(5, unsigned(i)), i);
}

TEST(EmitHelpers, ScalarFormsCarryOperands)
{
    class Capture : public InstrSink
    {
      public:
        void consume(const Instr& i) override { last = i; }
        Instr last;
    } cap;
    Emit e(cap);
    e.mul(7, 5, 6);
    EXPECT_EQ(cap.last.op, Op::SMul);
    EXPECT_EQ(cap.last.dst, 7);
    e.load(0x123, 4, 2);
    EXPECT_EQ(cap.last.op, Op::SLoad);
    EXPECT_EQ(cap.last.addr, 0x123u);
    e.vstoreStrided(3, 0x200, -8, 16);
    EXPECT_EQ(cap.last.op, Op::VStoreStrided);
    EXPECT_EQ(cap.last.stride, -8);
    e.stripOverhead(2);
    EXPECT_EQ(cap.last.op, Op::SBranch);
}

TEST(ModelConsistency, EngineOverheadTracksBankedCircuit)
{
    // The engine-level overhead must equal half the banked circuit
    // overhead (only half the L2 SRAMs are EVE SRAMs) plus the fixed
    // DTU+ROM sub-arrays, for every design point.
    for (unsigned pf : {1u, 2u, 4u, 8u, 16u, 32u}) {
        const double expect =
            CircuitModel::bankedOverheadPct(pf) / 2.0 +
            100.0 * 5.0 / 64.0;
        EXPECT_NEAR(CircuitModel::engineOverheadPct(pf), expect, 1e-9);
    }
}

TEST(ModelConsistency, SystemHwVlMatchesLayoutLaw)
{
    for (unsigned pf : {1u, 2u, 4u, 8u, 16u, 32u}) {
        SystemConfig cfg;
        cfg.kind = SystemKind::O3EVE;
        cfg.eve_pf = pf;
        System sys(cfg);
        LayoutParams lp;
        lp.pf = pf;
        EXPECT_EQ(sys.hwVectorLength(),
                  Layout(lp).hwVectorLength(32));
    }
}

TEST(ModelConsistency, EveClockMatchesCircuitModel)
{
    for (unsigned pf : {8u, 16u, 32u}) {
        SystemConfig cfg;
        cfg.kind = SystemKind::O3EVE;
        cfg.eve_pf = pf;
        System sys(cfg);
        EXPECT_DOUBLE_EQ(sys.timing().clockNs(),
                         CircuitModel::cycleTimeNs(pf));
    }
}

TEST(WorkloadScale, SmallAndFullDifferInFootprint)
{
    for (const char* name : {"vvadd", "pathfinder", "sw"}) {
        auto small = makeWorkload(name, true);
        auto full = makeWorkload(name, false);
        small->init();
        full->init();
        EXPECT_LT(small->memory().size(), full->memory().size())
            << name;
    }
}

} // namespace
} // namespace eve
