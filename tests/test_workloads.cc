/**
 * @file
 * Workload tests: every kernel's vector program must verify against
 * its reference at several hardware vector lengths (including odd
 * lengths that exercise partial strips), and each workload's
 * instruction mix must contain its signature classes.
 */

#include <gtest/gtest.h>

#include "isa/functional.hh"
#include "isa/program.hh"
#include "workloads/workload.hh"

namespace eve
{
namespace
{

class WorkloadFunctional
    : public testing::TestWithParam<std::tuple<const char*, unsigned>>
{
};

TEST_P(WorkloadFunctional, VectorProgramMatchesReference)
{
    const auto& [name, hw_vl] = GetParam();
    auto w = makeWorkload(name, /*small=*/true);
    ASSERT_NE(w, nullptr);
    w->init();
    VecMachine machine(w->memory(), hw_vl);
    w->emitVector(machine, hw_vl);
    EXPECT_EQ(w->verify(), 0u) << name << " at hw_vl=" << hw_vl;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WorkloadFunctional,
    testing::Combine(testing::Values("vvadd", "mmult", "k-means",
                                     "pathfinder", "jacobi-2d",
                                     "backprop", "sw"),
                     testing::Values(4u, 64u, 100u, 1024u)),
    [](const auto& info) {
        std::string n = std::get<0>(info.param);
        for (auto& c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n + "_vl" + std::to_string(std::get<1>(info.param));
    });

TEST(WorkloadMix, SignatureClassesPresent)
{
    struct Expect
    {
        const char* name;
        bool idx, st, xe, prd, imul;
    };
    const Expect expects[] = {
        // name        idx    st     xe     prd    imul
        {"vvadd",      false, false, false, false, false},
        {"mmult",      false, false, true,  false, true},
        {"k-means",    true,  true,  true,  true,  true},
        {"pathfinder", false, false, true,  true,  false},
        {"jacobi-2d",  false, false, true,  false, true},
        {"backprop",   false, true,  true,  false, true},
        {"sw",         false, true,  true,  false, false},
    };
    for (const auto& e : expects) {
        auto w = makeWorkload(e.name, true);
        w->init();
        Characterizer c;
        w->emitVector(c, 64);
        EXPECT_EQ(c.idx > 0, e.idx) << e.name << " idx";
        EXPECT_EQ(c.st > 0, e.st) << e.name << " st";
        EXPECT_EQ(c.xe > 0, e.xe) << e.name << " xe";
        EXPECT_EQ(c.predInstrs > 0, e.prd) << e.name << " prd";
        EXPECT_EQ(c.imul > 0, e.imul) << e.name << " imul";
        EXPECT_GT(c.us, 0u) << e.name << " us";
        EXPECT_GT(c.vecOpPct(), 50.0) << e.name;
    }
}

TEST(WorkloadMix, ScalarVersionsAreScalarOnly)
{
    for (auto& w : makeAllWorkloads(true)) {
        w->init();
        Characterizer c;
        w->emitScalar(c);
        EXPECT_EQ(c.vecInstrs, 0u) << w->name();
        EXPECT_GT(c.dynInstrs, 1000u) << w->name();
    }
}

TEST(WorkloadMix, VectorVersionsShrinkDynamicInstructions)
{
    for (auto& w : makeAllWorkloads(true)) {
        w->init();
        CountingSink scalar;
        w->emitScalar(scalar);
        w->init();
        CountingSink vec;
        w->emitVector(vec, 64);
        EXPECT_LT(vec.total, scalar.total) << w->name();
    }
}

TEST(WorkloadMix, LogicalParallelismScalesWithVl)
{
    auto w = makeWorkload("vvadd", true);
    w->init();
    Characterizer c64;
    w->emitVector(c64, 64);
    w->init();
    Characterizer c4;
    w->emitVector(c4, 4);
    EXPECT_GT(c64.logicalParallelism(),
              3.0 * c4.logicalParallelism());
}

TEST(WorkloadFactory, UnknownNameReturnsNull)
{
    EXPECT_EQ(makeWorkload("nope", true), nullptr);
}

TEST(WorkloadFactory, AllSevenPresent)
{
    EXPECT_EQ(makeAllWorkloads(true).size(), 7u);
}

TEST(WorkloadDeterminism, ReEmissionIsIdentical)
{
    auto a = makeWorkload("sw", true);
    a->init();
    Characterizer ca;
    a->emitVector(ca, 64);
    auto b = makeWorkload("sw", true);
    b->init();
    Characterizer cb;
    b->emitVector(cb, 64);
    EXPECT_EQ(ca.dynInstrs, cb.dynInstrs);
    EXPECT_EQ(ca.totalOps, cb.totalOps);
}

} // namespace
} // namespace eve
