/**
 * @file
 * Property tests: every bit-exact macro-op micro-program, executed on
 * the EveSram functional model, must agree with the plain-C++
 * VecMachine reference semantics — for every parallelization factor,
 * with random operands, with and without masking, and under operand
 * aliasing.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "core/sram/eve_sram.hh"
#include "core/uprog/macro_lib.hh"
#include "isa/functional.hh"

namespace eve
{
namespace
{

constexpr unsigned kLanes = 5;

struct MacroCase
{
    Op op;
    bool usesScalar;
    bool masked;
    std::int64_t imm;  ///< scalar operand / shift amount
};

std::string
caseName(const testing::TestParamInfo<std::tuple<unsigned, MacroCase>>&
             info)
{
    const auto& [pf, c] = info.param;
    std::string name = std::string(opName(c.op));
    for (auto& ch : name)
        if (!isalnum(static_cast<unsigned char>(ch)))
            ch = '_';
    name += c.usesScalar ? "_vx" : "_vv";
    if (c.masked)
        name += "_m";
    name += "_imm" + std::to_string(c.imm < 0 ? -c.imm : c.imm);
    name += "_pf" + std::to_string(pf);
    return name;
}

class MacroOpEquivalence
    : public testing::TestWithParam<std::tuple<unsigned, MacroCase>>
{
};

/**
 * Run one instruction through both machines with the same register
 * state and compare every lane of the destination.
 */
void
checkEquivalence(unsigned pf, const MacroCase& c, unsigned dst,
                 unsigned src1, unsigned src2, Rng& rng)
{
    EveSramConfig cfg;
    cfg.lanes = kLanes;
    cfg.pf = pf;
    EveSram sram(cfg);
    ByteMem mem(64);
    VecMachine ref(mem, kLanes);
    MacroLib lib(cfg);

    // Randomize every architectural register identically in both
    // machines, plus a v0 mask of alternating/random bits.
    for (unsigned reg = 0; reg < 32; ++reg) {
        for (unsigned lane = 0; lane < kLanes; ++lane) {
            std::int32_t v = std::int32_t(rng.next());
            // Bias some operands toward interesting edge values.
            switch (rng.below(8)) {
              case 0: v = 0; break;
              case 1: v = -1; break;
              case 2: v = std::int32_t(0x80000000u); break;
              case 3: v = 0x7fffffff; break;
              default: break;
            }
            if (reg == 0)
                v = std::int32_t(rng.next() & 1);
            ref.setElem(reg, lane, v);
            sram.writeElement(lane, reg, std::uint32_t(v));
        }
    }

    Instr instr;
    instr.op = c.op;
    instr.dst = std::uint8_t(dst);
    instr.src1 = std::uint8_t(src1);
    instr.src2 = std::uint8_t(src2);
    instr.usesScalar = c.usesScalar;
    instr.imm = c.imm;
    instr.masked = c.masked;
    instr.vl = kLanes;

    MacroBuild built = lib.build(instr);
    ASSERT_TRUE(built.bit_exact)
        << opName(c.op) << " expected to be bit-exact";

    ref.consume(instr);
    sram.run(built.prog);

    for (unsigned lane = 0; lane < kLanes; ++lane) {
        EXPECT_EQ(sram.readElement(lane, dst),
                  std::uint32_t(ref.elem(dst, lane)))
            << opName(c.op) << " pf=" << pf << " lane=" << lane
            << " dst=v" << dst << " a=v" << src1 << " b=v" << src2
            << (c.masked ? " masked" : "")
            << (c.usesScalar ? " imm=" + std::to_string(c.imm) : "");
    }
}

TEST_P(MacroOpEquivalence, DistinctRegisters)
{
    const auto& [pf, c] = GetParam();
    Rng rng(0x1234 + pf + unsigned(c.op) * 977);
    for (unsigned trial = 0; trial < 3; ++trial)
        checkEquivalence(pf, c, 3, 7, 11, rng);
}

TEST_P(MacroOpEquivalence, DstAliasesSrc1)
{
    const auto& [pf, c] = GetParam();
    Rng rng(0x9999 + pf + unsigned(c.op) * 31);
    checkEquivalence(pf, c, 7, 7, 11, rng);
}

TEST_P(MacroOpEquivalence, DstAliasesSrc2)
{
    const auto& [pf, c] = GetParam();
    if (c.usesScalar)
        GTEST_SKIP() << ".vx form has no src2 register";
    Rng rng(0x7777 + pf + unsigned(c.op) * 67);
    checkEquivalence(pf, c, 11, 7, 11, rng);
}

const MacroCase kCases[] = {
    {Op::VAdd, false, false, 0},
    {Op::VAdd, false, true, 0},
    {Op::VAdd, true, false, 12345},
    {Op::VSub, false, false, 0},
    {Op::VSub, false, true, 0},
    {Op::VSub, true, false, -7},
    {Op::VRsub, false, false, 0},
    {Op::VRsub, true, false, 100},
    {Op::VAnd, false, false, 0},
    {Op::VAnd, false, true, 0},
    {Op::VOr, false, false, 0},
    {Op::VXor, false, false, 0},
    {Op::VXor, true, false, 0x55aa},
    {Op::VMand, false, false, 0},
    {Op::VMor, false, false, 0},
    {Op::VMxor, false, false, 0},
    {Op::VMandn, false, false, 0},
    {Op::VMseq, false, false, 0},
    {Op::VMsne, false, false, 0},
    {Op::VMslt, false, false, 0},
    {Op::VMslt, false, true, 0},
    {Op::VMsle, false, false, 0},
    {Op::VMsgt, false, false, 0},
    {Op::VMin, false, false, 0},
    {Op::VMax, false, false, 0},
    {Op::VMinu, false, false, 0},
    {Op::VMaxu, false, false, 0},
    {Op::VMaxu, false, true, 0},
    {Op::VMerge, false, false, 0},
    {Op::VMvVX, true, false, -42},
    {Op::VMvVX, true, true, 99},
    {Op::VSll, true, false, 0},
    {Op::VSll, true, false, 1},
    {Op::VSll, true, false, 5},
    {Op::VSll, true, false, 17},
    {Op::VSll, true, true, 9},
    {Op::VSrl, true, false, 1},
    {Op::VSrl, true, false, 13},
    {Op::VSrl, true, false, 31},
    {Op::VSra, true, false, 0},
    {Op::VSra, true, false, 3},
    {Op::VSra, true, false, 21},
    {Op::VSra, true, true, 8},
    {Op::VMul, false, false, 0},
    {Op::VMul, false, true, 0},
    {Op::VMul, true, false, 3001},
    {Op::VMacc, false, false, 0},
    {Op::VMacc, true, false, -5},
    {Op::VDivu, false, false, 0},
    {Op::VRemu, false, false, 0},
    {Op::VDiv, false, false, 0},
    {Op::VDiv, false, true, 0},
    {Op::VRem, false, false, 0},
};

INSTANTIATE_TEST_SUITE_P(
    AllPf, MacroOpEquivalence,
    testing::Combine(testing::Values(1u, 2u, 4u, 8u, 16u, 32u),
                     testing::ValuesIn(kCases)),
    caseName);

// Variable (.vv) shifts get their own suite: shift amounts must be
// small and well-distributed, so the amount register is prepared
// explicitly.
class VariableShift : public testing::TestWithParam<std::tuple<unsigned, Op>>
{
};

TEST_P(VariableShift, MatchesReference)
{
    const auto& [pf, op] = GetParam();
    EveSramConfig cfg;
    cfg.lanes = kLanes;
    cfg.pf = pf;
    EveSram sram(cfg);
    ByteMem mem(64);
    VecMachine ref(mem, kLanes);
    MacroLib lib(cfg);
    Rng rng(55 + pf);

    for (unsigned lane = 0; lane < kLanes; ++lane) {
        const std::int32_t v = std::int32_t(rng.next());
        const std::int32_t amt = std::int32_t(rng.below(32));
        ref.setElem(4, lane, v);
        ref.setElem(5, lane, amt);
        sram.writeElement(lane, 4, std::uint32_t(v));
        sram.writeElement(lane, 5, std::uint32_t(amt));
    }

    Instr instr;
    instr.op = op;
    instr.dst = 6;
    instr.src1 = 4;
    instr.src2 = 5;
    instr.vl = kLanes;

    MacroBuild built = lib.build(instr);
    ASSERT_TRUE(built.bit_exact);
    ref.consume(instr);
    sram.run(built.prog);
    for (unsigned lane = 0; lane < kLanes; ++lane)
        EXPECT_EQ(sram.readElement(lane, 6),
                  std::uint32_t(ref.elem(6, lane)))
            << opName(op) << " pf=" << pf << " lane=" << lane;
}

INSTANTIATE_TEST_SUITE_P(
    AllPf, VariableShift,
    testing::Combine(testing::Values(1u, 2u, 4u, 8u, 16u, 32u),
                     testing::Values(Op::VSll, Op::VSrl, Op::VSra)),
    [](const auto& info) {
        std::string name(opName(std::get<1>(info.param)));
        return name + "_vv_pf" + std::to_string(std::get<0>(info.param));
    });

// Latency shape: program length must scale with the number of
// segments, and the control overhead makes it super-linear when
// normalized (Section II's key observation).
TEST(MacroLibTiming, AddLatencyScalesWithSegments)
{
    std::vector<Cycles> lat;
    for (unsigned pf : {1u, 2u, 4u, 8u, 16u, 32u}) {
        EveSramConfig cfg;
        cfg.lanes = 1;
        cfg.pf = pf;
        MacroLib lib(cfg);
        Instr add;
        add.op = Op::VAdd;
        add.dst = 1;
        add.src1 = 2;
        add.src2 = 3;
        lat.push_back(lib.cycles(add));
    }
    for (std::size_t i = 1; i < lat.size(); ++i)
        EXPECT_LT(lat[i], lat[i - 1]);
    // Halving segments does not halve latency (control overhead).
    EXPECT_GT(2 * lat[1], lat[0]);
    EXPECT_GT(double(lat[5]) / double(lat[0]), 1.0 / 64.0);
}

TEST(MacroLibTiming, MulIsThousandsOfCyclesBitSerial)
{
    EveSramConfig cfg;
    cfg.lanes = 1;
    cfg.pf = 1;
    MacroLib lib(cfg);
    Instr mul;
    mul.op = Op::VMul;
    mul.dst = 1;
    mul.src1 = 2;
    mul.src2 = 3;
    EXPECT_GT(lib.cycles(mul), 2000u);
    EXPECT_LT(lib.cycles(mul), 20000u);
}

} // namespace
} // namespace eve
