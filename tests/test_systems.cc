/**
 * @file
 * Integration tests: every Table III system runs every workload
 * (small inputs); vector runs must verify functionally, and the
 * performance ordering must match the paper's qualitative shape.
 */

#include <gtest/gtest.h>

#include "driver/system.hh"
#include "workloads/mmult.hh"
#include "workloads/workload.hh"

namespace eve
{
namespace
{

RunResult
runOne(SystemKind kind, const std::string& workload, unsigned pf = 8)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.eve_pf = pf;
    auto w = makeWorkload(workload, /*small=*/true);
    EXPECT_NE(w, nullptr) << workload;
    return runWorkload(cfg, *w);
}

class AllWorkloads : public testing::TestWithParam<const char*>
{
};

TEST_P(AllWorkloads, FunctionalOnEverySystem)
{
    const std::string name = GetParam();
    for (SystemKind kind :
         {SystemKind::O3IV, SystemKind::O3DV, SystemKind::O3EVE}) {
        const RunResult r = runOne(kind, name);
        EXPECT_EQ(r.mismatches, 0u)
            << name << " failed functionally on " << r.system;
        EXPECT_GT(r.cycles, 0.0);
    }
}

TEST_P(AllWorkloads, FunctionalOnEveryEveConfig)
{
    const std::string name = GetParam();
    for (unsigned pf : {1u, 2u, 4u, 8u, 16u, 32u}) {
        const RunResult r = runOne(SystemKind::O3EVE, name, pf);
        EXPECT_EQ(r.mismatches, 0u)
            << name << " failed functionally on " << r.system;
    }
}

TEST_P(AllWorkloads, ScalarSystemsProduceTime)
{
    const std::string name = GetParam();
    const RunResult io = runOne(SystemKind::IO, name);
    const RunResult o3 = runOne(SystemKind::O3, name);
    EXPECT_GT(io.seconds, 0.0);
    EXPECT_GT(o3.seconds, 0.0);
    // The out-of-order core is never slower than the in-order core.
    EXPECT_LT(o3.seconds, io.seconds) << name;
}

INSTANTIATE_TEST_SUITE_P(Kernels, AllWorkloads,
                         testing::Values("vvadd", "mmult", "k-means",
                                         "pathfinder", "jacobi-2d",
                                         "backprop", "sw"),
                         [](const auto& info) {
                             std::string n = info.param;
                             for (auto& c : n)
                                 if (!isalnum(static_cast<unsigned char>(c)))
                                     c = '_';
                             return n;
                         });

TEST(SystemShape, VectorSystemsBeatScalarOnVvadd)
{
    const RunResult io = runOne(SystemKind::IO, "vvadd");
    const RunResult iv = runOne(SystemKind::O3IV, "vvadd");
    const RunResult dv = runOne(SystemKind::O3DV, "vvadd");
    const RunResult ev = runOne(SystemKind::O3EVE, "vvadd");
    EXPECT_LT(iv.seconds, io.seconds);
    EXPECT_LT(dv.seconds, iv.seconds);
    EXPECT_LT(ev.seconds, iv.seconds);
}

TEST(SystemShape, EveHardwareVectorLengthsMatchTable3)
{
    const unsigned expect[][2] = {{1, 2048}, {2, 2048}, {4, 2048},
                                  {8, 1024}, {16, 512}, {32, 256}};
    for (const auto& [pf, vl] : expect) {
        SystemConfig cfg;
        cfg.kind = SystemKind::O3EVE;
        cfg.eve_pf = pf;
        System sys(cfg);
        EXPECT_EQ(sys.hwVectorLength(), vl) << "pf=" << pf;
    }
}

TEST(SystemShape, Eve8CompetitiveWithDvOnComputeKernel)
{
    // EVE needs long vectors to amortize micro-program latency, so
    // this check uses a medium rectangular mmult (n = 2048 keeps
    // EVE-8's hardware vector length fully utilized).
    SystemConfig dv_cfg;
    dv_cfg.kind = SystemKind::O3DV;
    MmultWorkload dv_w(4, 64, 2048);
    const RunResult dv = runWorkload(dv_cfg, dv_w);

    SystemConfig e8_cfg;
    e8_cfg.kind = SystemKind::O3EVE;
    e8_cfg.eve_pf = 8;
    MmultWorkload e8_w(4, 64, 2048);
    const RunResult e8 = runWorkload(e8_cfg, e8_w);

    // The paper's headline claim is "comparable". Our DV baseline is
    // deliberately idealized (perfect chaining, decoupled run-ahead),
    // so the band is generous on the slow side; see EXPERIMENTS.md.
    EXPECT_LT(e8.seconds, dv.seconds * 6.0);
    EXPECT_GT(e8.seconds, dv.seconds / 10.0);
}

TEST(SystemShape, BreakdownCoversEveTimeline)
{
    const RunResult r = runOne(SystemKind::O3EVE, "jacobi-2d");
    ASSERT_TRUE(r.has_breakdown);
    EXPECT_GT(r.breakdown.busy, 0.0);
    // Total attributed ticks cannot exceed the run length by more
    // than bookkeeping slack.
    EXPECT_LE(r.breakdown.total(), r.total_ticks * 1.25);
}

} // namespace
} // namespace eve
