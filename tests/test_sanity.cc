#include <gtest/gtest.h>
TEST(Sanity, True) { EXPECT_TRUE(true); }
