/**
 * @file
 * Tests for the clocked-component API and threaded simulation:
 * InstrFeed semantics, the driver's quiesced-skip contract, pipelined
 * single-sim parity, and the deterministic threaded CMP co-run at
 * several sim-thread counts.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "driver/cmp.hh"
#include "driver/system.hh"
#include "exp/perf.hh"
#include "exp/runner.hh"
#include "mem/hierarchy.hh"
#include "sim/clocked.hh"
#include "vector/dv_engine.hh"
#include "workloads/workload.hh"

namespace eve
{
namespace
{

TEST(InstrFeed, DeliversRecordsInOrderWithDeepCopiedIndices)
{
    InstrFeed feed(8);

    std::vector<std::uint32_t> idx = {0, 8, 16, 24};
    Instr gather;
    gather.op = Op::VLoadIndexed;
    gather.vl = 4;
    gather.addr = 0x1000;
    gather.indices = idx.data();
    feed.push(gather);

    Instr scalar;
    scalar.op = Op::SAlu;
    scalar.dst = 3;
    feed.push(scalar);

    // Clobber the producer's buffer: the feed must have deep-copied.
    idx.assign(idx.size(), 0xdead);
    feed.close();

    std::vector<Instr> seen;
    std::vector<std::uint32_t> seen_idx;
    feed.drain([&](const Instr& i) {
        seen.push_back(i);
        if (i.indices)
            seen_idx.assign(i.indices, i.indices + i.vl);
    });

    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0].op, Op::VLoadIndexed);
    EXPECT_EQ(seen_idx, (std::vector<std::uint32_t>{0, 8, 16, 24}));
    EXPECT_EQ(seen[1].op, Op::SAlu);
    EXPECT_EQ(seen[1].dst, 3);
    EXPECT_TRUE(feed.empty());
    EXPECT_TRUE(feed.closed());
}

TEST(ClockedApi, ModelWithoutFeedIsQuiesced)
{
    MemHierarchy mem(HierarchyParams{});
    DVSystem dv(DVParams{}, mem);
    EXPECT_TRUE(dv.quiesced());
    EXPECT_EQ(dv.nextEventTick(), kNoEventTick);
    EXPECT_EQ(dv.tickCount(), 0u);
}

TEST(ClockedApi, QuiescedDvEngineIsNeverTicked)
{
    // The regression the driver contract demands: a DV engine whose
    // feed stays empty must be *skipped*, not ticked — the pump
    // consults quiesced() first, so the tick count stays zero.
    MemHierarchy mem(HierarchyParams{});
    DVSystem dv(DVParams{}, mem);
    InstrFeed feed(8);
    dv.attachFeed(&feed);
    feed.close();

    for (;;) {
        if (!dv.quiesced())
            dv.tick(kTickHorizonInf);
        else if (feed.closed() && dv.quiesced())
            break;
    }
    EXPECT_EQ(dv.tickCount(), 0u);
    dv.attachFeed(nullptr);
}

TEST(ClockedApi, TickDrainsFeedAndCountsInvocations)
{
    MemHierarchy mem(HierarchyParams{});
    DVSystem dv(DVParams{}, mem);
    InstrFeed feed(8);
    dv.attachFeed(&feed);

    Instr scalar;
    scalar.op = Op::SAlu;
    feed.push(scalar);
    feed.push(scalar);

    EXPECT_FALSE(dv.quiesced());
    EXPECT_NE(dv.nextEventTick(), kNoEventTick);
    dv.tick(kTickHorizonInf);
    EXPECT_EQ(dv.tickCount(), 1u);
    EXPECT_TRUE(dv.quiesced());
    EXPECT_GT(dv.finalTick(), 0u);
    dv.attachFeed(nullptr);
}

std::uint64_t
fingerprintOf(RunResult r)
{
    exp::JobResult jr;
    jr.status = exp::JobStatus::Ok;
    jr.result = std::move(r);
    return exp::parityFingerprint(jr);
}

TEST(PipelinedSim, ByteIdenticalToInlineOnEverySystemKind)
{
    for (SystemKind kind :
         {SystemKind::IO, SystemKind::O3, SystemKind::O3IV,
          SystemKind::O3DV, SystemKind::O3EVE}) {
        SystemConfig cfg;
        cfg.kind = kind;
        std::uint64_t inline_fp = 0;
        for (unsigned sim_threads : {1u, 2u, 4u}) {
            auto w = makeWorkload("vvadd", /*small=*/true);
            ASSERT_NE(w, nullptr);
            const RunResult r = runWorkload(cfg, *w, sim_threads);
            EXPECT_EQ(r.mismatches, 0u);
            const std::uint64_t fp = fingerprintOf(r);
            if (sim_threads == 1)
                inline_fp = fp;
            else
                EXPECT_EQ(fp, inline_fp)
                    << systemKindName(kind) << " diverged at "
                    << sim_threads << " sim threads";
        }
    }
}

TEST(PipelinedSim, ByteIdenticalOnIndexedGather)
{
    // spmv exercises indexed accesses — the indices pointer is only
    // valid during consume(), so this covers the feed's deep copy on
    // the real producer/consumer path.
    SystemConfig cfg;
    cfg.kind = SystemKind::O3DV;
    auto w1 = makeWorkload("spmv", /*small=*/true);
    auto w2 = makeWorkload("spmv", /*small=*/true);
    ASSERT_NE(w1, nullptr);
    const RunResult a = runWorkload(cfg, *w1, 1);
    const RunResult b = runWorkload(cfg, *w2, 2);
    EXPECT_EQ(a.mismatches, 0u);
    EXPECT_EQ(b.mismatches, 0u);
    EXPECT_EQ(fingerprintOf(a), fingerprintOf(b));
}

std::vector<std::uint64_t>
cmpFingerprints(unsigned sim_threads)
{
    SystemConfig dv;
    dv.kind = SystemKind::O3DV;
    SystemConfig o3;
    o3.kind = SystemKind::O3;
    SystemConfig io;
    io.kind = SystemKind::IO;

    auto w0 = makeWorkload("vvadd", /*small=*/true);
    auto w1 = makeWorkload("pathfinder", /*small=*/true);
    auto w2 = makeWorkload("vvadd", /*small=*/true);
    EXPECT_NE(w0, nullptr);
    EXPECT_NE(w1, nullptr);
    EXPECT_NE(w2, nullptr);

    const std::vector<CmpCore> cores = {
        {dv, w0.get()}, {o3, w1.get()}, {io, w2.get()}};
    const std::vector<RunResult> results =
        runCmpParallel(cores, sim_threads);
    EXPECT_EQ(results.size(), cores.size());

    std::vector<std::uint64_t> fps;
    for (const RunResult& r : results) {
        EXPECT_EQ(r.mismatches, 0u);
        fps.push_back(fingerprintOf(r));
    }
    return fps;
}

TEST(ThreadedCmp, ByteIdenticalAtOneTwoAndEightSimThreads)
{
    const auto at1 = cmpFingerprints(1);
    const auto at2 = cmpFingerprints(2);
    const auto at8 = cmpFingerprints(8);
    EXPECT_EQ(at1, at2);
    EXPECT_EQ(at1, at8);
}

TEST(ThreadedCmp, SharedUncoreStatsIdenticalAcrossCores)
{
    SystemConfig dv;
    dv.kind = SystemKind::O3DV;
    SystemConfig o3;
    o3.kind = SystemKind::O3;
    auto w0 = makeWorkload("vvadd", /*small=*/true);
    auto w1 = makeWorkload("pathfinder", /*small=*/true);
    ASSERT_NE(w0, nullptr);
    ASSERT_NE(w1, nullptr);
    const auto results = runCmpParallel(
        {{dv, w0.get()}, {o3, w1.get()}}, 2);
    ASSERT_EQ(results.size(), 2u);

    // Both cores report the *final* shared LLC traffic, and the co-run
    // saw both cores' accesses.
    const double llc_a = results[0].stat("llc.reads") +
                         results[0].stat("llc.writes");
    const double llc_b = results[1].stat("llc.reads") +
                         results[1].stat("llc.writes");
    EXPECT_EQ(llc_a, llc_b);
    EXPECT_GT(llc_a, 0.0);
}

} // namespace
} // namespace eve
