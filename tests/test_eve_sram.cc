/**
 * @file
 * Unit tests for the bit array and the EVE SRAM peripheral stacks.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/sram/bit_array.hh"
#include "core/sram/eve_sram.hh"

namespace eve
{
namespace
{

TEST(BitArray, SetGetRoundTrip)
{
    BitArray array(16, 100);
    array.set(3, 77, true);
    EXPECT_TRUE(array.get(3, 77));
    EXPECT_FALSE(array.get(3, 76));
    array.set(3, 77, false);
    EXPECT_FALSE(array.get(3, 77));
}

TEST(BitArray, BitLineComputeMatchesLogic)
{
    BitArray array(4, 130);
    Rng rng(7);
    for (unsigned c = 0; c < 130; ++c) {
        array.set(0, c, rng.next() & 1);
        array.set(1, c, rng.next() & 1);
    }
    BlcSense sense = array.bitLineCompute(0, 1);
    for (unsigned c = 0; c < 130; ++c) {
        const bool a = array.get(0, c);
        const bool b = array.get(1, c);
        EXPECT_EQ((sense.andBits[c / 64] >> (c % 64)) & 1, a && b);
        EXPECT_EQ((sense.orBits[c / 64] >> (c % 64)) & 1, a || b);
    }
}

TEST(BitArray, MaskedWriteOnlyTouchesMaskedColumns)
{
    BitArray array(2, 64);
    RowBits ones(1, ~std::uint64_t{0});
    RowBits mask(1, 0x00ff00ffull);
    array.writeRow(0, ones, &mask);
    for (unsigned c = 0; c < 64; ++c)
        EXPECT_EQ(array.get(0, c), bool((0x00ff00ffull >> c) & 1));
}

TEST(EveSram, ElementRoundTripAllPf)
{
    for (unsigned pf : {1u, 2u, 4u, 8u, 16u, 32u}) {
        EveSramConfig cfg;
        cfg.lanes = 4;
        cfg.pf = pf;
        EveSram sram(cfg);
        Rng rng(pf);
        for (unsigned lane = 0; lane < cfg.lanes; ++lane) {
            for (unsigned reg : {0u, 5u, 31u}) {
                const std::uint32_t v = std::uint32_t(rng.next());
                sram.writeElement(lane, reg, v);
                EXPECT_EQ(sram.readElement(lane, reg), v)
                    << "pf=" << pf << " lane=" << lane;
            }
        }
    }
}

TEST(EveSram, BlcAndWritebackComputesLogic)
{
    EveSramConfig cfg;
    cfg.lanes = 2;
    cfg.pf = 8;
    EveSram sram(cfg);
    sram.writeElement(0, 1, 0x0f0f3355u);
    sram.writeElement(0, 2, 0x00ffaaaau);
    sram.writeElement(1, 1, 0xdeadbeefu);
    sram.writeElement(1, 2, 0x12345678u);

    MacroProgram prog;
    for (unsigned s = 0; s < sram.segments(); ++s) {
        prog.push_back(uBlc(sram.rowOf(1, s), sram.rowOf(2, s)));
        prog.push_back(uWr(sram.rowOf(3, s), USrc::Xor));
    }
    sram.run(prog);
    EXPECT_EQ(sram.readElement(0, 3), 0x0f0f3355u ^ 0x00ffaaaau);
    EXPECT_EQ(sram.readElement(1, 3), 0xdeadbeefu ^ 0x12345678u);
}

TEST(EveSram, AddChainPropagatesCarryAcrossSegments)
{
    for (unsigned pf : {1u, 4u, 8u, 32u}) {
        EveSramConfig cfg;
        cfg.lanes = 3;
        cfg.pf = pf;
        EveSram sram(cfg);
        const std::uint32_t a[3] = {0xffffffffu, 0x7fffffffu, 123u};
        const std::uint32_t b[3] = {1u, 1u, 456u};
        for (unsigned lane = 0; lane < 3; ++lane) {
            sram.writeElement(lane, 1, a[lane]);
            sram.writeElement(lane, 2, b[lane]);
        }
        MacroProgram prog;
        for (unsigned s = 0; s < sram.segments(); ++s) {
            prog.push_back(uBlc(sram.rowOf(1, s), sram.rowOf(2, s),
                                s == 0 ? CarryIn::Zero : CarryIn::Chain));
            prog.push_back(uWr(sram.rowOf(3, s), USrc::Add));
        }
        sram.run(prog);
        for (unsigned lane = 0; lane < 3; ++lane)
            EXPECT_EQ(sram.readElement(lane, 3), a[lane] + b[lane])
                << "pf=" << pf << " lane=" << lane;
    }
}

TEST(EveSram, MaskedWriteLeavesInactiveLanes)
{
    EveSramConfig cfg;
    cfg.lanes = 2;
    cfg.pf = 8;
    EveSram sram(cfg);
    sram.writeElement(0, 1, 0x11111111u);
    sram.writeElement(1, 1, 0x22222222u);
    sram.writeElement(0, 2, 0xaaaaaaaau);
    sram.writeElement(1, 2, 0xaaaaaaaau);

    // Mask on for lane 0 only: set v0 bit0 = 1 in lane 0.
    sram.writeElement(0, 0, 1);
    sram.writeElement(1, 0, 0);
    MacroProgram prog;
    prog.push_back(uRdXReg(sram.rowOf(0, 0)));
    prog.push_back(uSimple(UKind::MaskFromXRegLsb));
    for (unsigned s = 0; s < sram.segments(); ++s) {
        prog.push_back(uBlc(sram.rowOf(2, s), sram.rowOf(2, s)));
        prog.push_back(uWr(sram.rowOf(1, s), USrc::And, true));
    }
    sram.run(prog);
    EXPECT_EQ(sram.readElement(0, 1), 0xaaaaaaaau);
    EXPECT_EQ(sram.readElement(1, 1), 0x22222222u);
}

TEST(EveSram, ShiftPassMovesBitsAcrossSegments)
{
    EveSramConfig cfg;
    cfg.lanes = 2;
    cfg.pf = 4;
    EveSram sram(cfg);
    sram.writeElement(0, 1, 0x80000001u);
    sram.writeElement(1, 1, 0x00ff00ffu);

    // Left shift by one using the constant + spare shifters.
    MacroProgram prog;
    prog.push_back(uSimple(UKind::ClearLink));
    for (unsigned s = 0; s < sram.segments(); ++s) {
        prog.push_back(uRdCShift(sram.rowOf(1, s)));
        prog.push_back(uSimple(UKind::LShift));
        prog.push_back(uWr(sram.rowOf(1, s), USrc::Shift));
    }
    sram.run(prog);
    EXPECT_EQ(sram.readElement(0, 1), 0x80000001u << 1);
    EXPECT_EQ(sram.readElement(1, 1), 0x00ff00ffu << 1);
}

TEST(EveSram, MaskFromCarryReflectsUnsignedCompare)
{
    EveSramConfig cfg;
    cfg.lanes = 2;
    cfg.pf = 8;
    EveSram sram(cfg);
    // lane0: a=5 >= b=3 -> carry 1; lane1: a=2 < b=9 -> carry 0.
    sram.writeElement(0, 1, 5);
    sram.writeElement(1, 1, 2);
    sram.writeElement(0, 2, 3);
    sram.writeElement(1, 2, 9);

    MacroProgram prog;
    // t(scratch) = ~b; t = a + t + 1.
    const unsigned t = sram.scratchReg(0);
    for (unsigned s = 0; s < sram.segments(); ++s) {
        prog.push_back(uBlc(sram.rowOf(2, s), sram.rowOf(2, s)));
        prog.push_back(uWr(sram.rowOf(t, s), USrc::Nand));
    }
    for (unsigned s = 0; s < sram.segments(); ++s) {
        prog.push_back(uBlc(sram.rowOf(1, s), sram.rowOf(t, s),
                            s == 0 ? CarryIn::One : CarryIn::Chain));
        prog.push_back(uWr(sram.rowOf(t, s), USrc::Add));
    }
    prog.push_back(uSimple(UKind::MaskFromCarry));
    sram.run(prog);
    EXPECT_TRUE(sram.laneMask(0));
    EXPECT_FALSE(sram.laneMask(1));
}

} // namespace
} // namespace eve
