/**
 * @file
 * Tests for the RiVEC-style workload suite (axpy, blackscholes,
 * streamcluster, particlefilter): functional verification at several
 * hardware vector lengths, pinned golden memory checksums, signature
 * instruction classes, end-to-end runs on every vector system,
 * sampled-simulation runs, and result-cache key distinctness.
 */

#include <gtest/gtest.h>

#include <set>
#include <string_view>

#include "common/bits.hh"
#include "driver/system.hh"
#include "exp/cache.hh"
#include "exp/sweep.hh"
#include "isa/functional.hh"
#include "isa/program.hh"
#include "workloads/workload.hh"

namespace eve
{
namespace
{

const char* const kRivec[] = {"axpy", "blackscholes", "streamcluster",
                              "particlefilter"};

class RivecFunctional
    : public testing::TestWithParam<std::tuple<const char*, unsigned>>
{
};

TEST_P(RivecFunctional, VectorProgramMatchesReference)
{
    const auto& [name, hw_vl] = GetParam();
    auto w = makeWorkload(name, /*small=*/true);
    ASSERT_NE(w, nullptr);
    w->init();
    VecMachine machine(w->memory(), hw_vl);
    w->emitVector(machine, hw_vl);
    EXPECT_EQ(w->verify(), 0u) << name << " at hw_vl=" << hw_vl;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RivecFunctional,
    testing::Combine(testing::ValuesIn(kRivec),
                     testing::Values(4u, 64u, 100u, 1024u)),
    [](const auto& info) {
        std::string name = std::get<0>(info.param);
        for (char& c : name)
            if (c == '-')
                c = '_';
        return name + "_vl" + std::to_string(std::get<1>(info.param));
    });

/**
 * Golden end-state checksums at small scale, hw_vl=64. These pin the
 * exact functional behaviour (inputs are seeded deterministically, so
 * the full memory image after the vector run is reproducible); any
 * change to a kernel's math or data layout must consciously update
 * its golden value.
 */
TEST(RivecWorkloads, GoldenMemoryChecksums)
{
    const struct
    {
        const char* name;
        std::uint64_t golden;
    } cases[] = {
        {"axpy", 0x20a01f2912e60ef9ull},
        {"blackscholes", 0x8c1378350269bdfbull},
        {"streamcluster", 0x93efe30db143c59eull},
        {"particlefilter", 0x3d9f3ce75eddae23ull},
    };
    for (const auto& c : cases) {
        auto w = makeWorkload(c.name, /*small=*/true);
        ASSERT_NE(w, nullptr);
        w->init();
        VecMachine machine(w->memory(), 64);
        w->emitVector(machine, 64);
        ASSERT_EQ(w->verify(), 0u) << c.name;
        const auto& bytes = w->memory().data();
        const std::uint64_t fp = fnv1a64(std::string_view(
            reinterpret_cast<const char*>(bytes.data()), bytes.size()));
        EXPECT_EQ(fp, c.golden) << c.name;
    }
}

TEST(RivecWorkloads, RunOnEverySystem)
{
    for (const char* name : kRivec) {
        for (SystemKind kind :
             {SystemKind::O3IV, SystemKind::O3DV, SystemKind::O3EVE}) {
            SystemConfig cfg;
            cfg.kind = kind;
            auto w = makeWorkload(name, true);
            const RunResult r = runWorkload(cfg, *w);
            EXPECT_EQ(r.mismatches, 0u) << name << " on " << r.system;
        }
    }
}

TEST(RivecWorkloads, SampledRunsStayFunctional)
{
    SamplingConfig sampling;
    sampling.interval = 100;
    sampling.warmup = 20;
    sampling.stride = 4;
    SystemConfig cfg;
    cfg.kind = SystemKind::O3EVE;
    for (const char* name : kRivec) {
        auto w = makeWorkload(name, true);
        SimOptions opts;
        opts.sampling = sampling;
        const RunResult r = runWorkload(cfg, *w, opts);
        EXPECT_EQ(r.mismatches, 0u) << name;
        EXPECT_TRUE(r.sampled) << name;
    }
}

TEST(RivecWorkloads, SignatureClasses)
{
    // axpy: pure streaming MAC — no gathers, no masking.
    auto axpy = makeWorkload("axpy", true);
    axpy->init();
    Characterizer ca;
    axpy->emitVector(ca, 64);
    EXPECT_GT(ca.us, 0u);
    EXPECT_GT(ca.imul, 0u);
    EXPECT_EQ(ca.idx, 0u);
    EXPECT_EQ(ca.predInstrs, 0u);

    // blackscholes: mask/branch-heavy, broadcast, no gathers.
    auto bs = makeWorkload("blackscholes", true);
    bs->init();
    Characterizer cb;
    bs->emitVector(cb, 64);
    EXPECT_GT(cb.predInstrs, 0u);
    EXPECT_GT(cb.imul, 0u);
    EXPECT_GT(cb.xe, 0u);
    EXPECT_EQ(cb.idx, 0u);

    // streamcluster: gather-heavy with strided feature access.
    auto sc = makeWorkload("streamcluster", true);
    sc->init();
    Characterizer cc;
    sc->emitVector(cc, 64);
    EXPECT_GT(cc.idx, 0u);
    EXPECT_GT(cc.st, 0u);
    EXPECT_GT(cc.xe, 0u);
    EXPECT_GT(cc.predInstrs, 0u);
    EXPECT_GT(cc.imul, 0u);

    // particlefilter: masked scatter + reductions.
    auto pf = makeWorkload("particlefilter", true);
    pf->init();
    Characterizer cp;
    pf->emitVector(cp, 64);
    EXPECT_GT(cp.idx, 0u);
    EXPECT_GT(cp.predInstrs, 0u);
    EXPECT_GT(cp.xe, 0u);
}

TEST(RivecWorkloads, DistinctCacheKeys)
{
    // Every (workload, scale) cell of an EVE sweep over the suite
    // must land on its own result-cache key, so sweeps over the new
    // kernels never collide with each other or with cached paper
    // results.
    exp::SweepSpec spec;
    SystemConfig cfg;
    cfg.kind = SystemKind::O3EVE;
    spec.system(cfg);
    spec.workloads({"axpy", "blackscholes", "streamcluster",
                    "particlefilter", "vvadd"},
                   /*small=*/true);
    std::set<std::string> keys;
    for (const auto& job : spec.jobs())
        keys.insert(exp::jobKey(job));
    EXPECT_EQ(keys.size(), 5u);

    // Small and full scales key separately too.
    exp::SweepSpec full;
    full.system(cfg);
    full.workloads({"axpy"}, /*small=*/false);
    EXPECT_FALSE(keys.count(exp::jobKey(full.jobs().front())));
}

} // namespace
} // namespace eve
