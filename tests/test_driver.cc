/**
 * @file
 * Unit tests for the driver layer: system naming, text tables, run
 * results, stat collection, and configuration plumbing.
 */

#include <gtest/gtest.h>

#include "driver/system.hh"
#include "driver/table.hh"
#include "workloads/vvadd.hh"

namespace eve
{
namespace
{

TEST(SystemName, AllKinds)
{
    auto named = [](SystemKind kind, unsigned pf = 8) {
        SystemConfig cfg;
        cfg.kind = kind;
        cfg.eve_pf = pf;
        return systemName(cfg);
    };
    EXPECT_EQ(named(SystemKind::IO), "IO");
    EXPECT_EQ(named(SystemKind::O3), "O3");
    EXPECT_EQ(named(SystemKind::O3IV), "O3+IV");
    EXPECT_EQ(named(SystemKind::O3DV), "O3+DV");
    EXPECT_EQ(named(SystemKind::O3EVE, 16), "O3+EVE-16");
}

TEST(TextTableTest, RendersAlignedColumns)
{
    TextTable t({"a", "bb"});
    t.addRow({"xxx", "y"});
    const std::string out = t.render();
    EXPECT_NE(out.find("a    bb"), std::string::npos);
    EXPECT_NE(out.find("xxx  y"), std::string::npos);
    EXPECT_NE(out.find("-------"), std::string::npos);
}

TEST(TextTableTest, RejectsWrongArity)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row with 1 cells");
}

TEST(TextTableTest, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(RunResultTest, StatLookupDefaultsToZero)
{
    RunResult r;
    EXPECT_EQ(r.stat("nope.nothing"), 0.0);
    r.stats["x.y"] = 7;
    EXPECT_EQ(r.stat("x.y"), 7.0);
}

TEST(DriverRun, CollectsComponentStats)
{
    SystemConfig cfg;
    cfg.kind = SystemKind::O3EVE;
    cfg.eve_pf = 8;
    VvaddWorkload w(4096);
    const RunResult r = runWorkload(cfg, w);
    EXPECT_GT(r.stat("llc.reads"), 0.0);
    EXPECT_GT(r.stat("dram.reads"), 0.0);
    EXPECT_GT(r.stat("eve.vector_instrs"), 0.0);
    EXPECT_GT(r.vecElemOps, 4000u);
    EXPECT_GT(r.vecInstrs, 0u);
    EXPECT_EQ(r.workload, "vvadd");
}

TEST(DriverRun, ScalarAndVectorInstrCountsDiffer)
{
    SystemConfig io;
    io.kind = SystemKind::IO;
    VvaddWorkload sw(4096);
    const RunResult scalar = runWorkload(io, sw);

    SystemConfig ev;
    ev.kind = SystemKind::O3EVE;
    VvaddWorkload vw(4096);
    const RunResult vec = runWorkload(ev, vw);
    EXPECT_GT(scalar.instrs, 10 * vec.instrs);
}

TEST(DriverRun, PrefetchConfigReachesLlc)
{
    SystemConfig cfg;
    cfg.kind = SystemKind::O3EVE;
    cfg.llc_prefetch_lines = 4;
    VvaddWorkload w(65536);
    const RunResult r = runWorkload(cfg, w);
    EXPECT_GT(r.stat("llc.prefetches"), 0.0);
    EXPECT_EQ(r.mismatches, 0u);
}

TEST(DriverRun, AddressBiasDoesNotChangeFunctionality)
{
    SystemConfig cfg;
    cfg.kind = SystemKind::O3EVE;
    VvaddWorkload w(4096);
    System sys(cfg);
    sys.setAddressBias(Addr{1} << 33);
    const RunResult r = sys.run(w);
    EXPECT_EQ(r.mismatches, 0u);
    EXPECT_GT(r.cycles, 0.0);
}

} // namespace
} // namespace eve
