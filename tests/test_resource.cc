/**
 * @file
 * Unit tests for the reservation-timing primitives.
 */

#include <gtest/gtest.h>

#include "sim/resource.hh"

namespace eve
{
namespace
{

TEST(PipelinedUnits, SingleUnitSerializes)
{
    PipelinedUnits unit(1);
    EXPECT_EQ(unit.acquire(100, 10), Tick{100});
    EXPECT_EQ(unit.acquire(100, 10), Tick{110});
    EXPECT_EQ(unit.acquire(105, 10), Tick{120});
    // A late arrival is not delayed.
    EXPECT_EQ(unit.acquire(1000, 10), Tick{1000});
}

TEST(PipelinedUnits, MultipleUnitsOverlap)
{
    PipelinedUnits units(2);
    EXPECT_EQ(units.acquire(0, 100), Tick{0});
    EXPECT_EQ(units.acquire(0, 100), Tick{0});
    EXPECT_EQ(units.acquire(0, 100), Tick{100});
}

TEST(PipelinedUnits, EarliestStartDoesNotReserve)
{
    PipelinedUnits unit(1);
    unit.acquire(0, 50);
    EXPECT_EQ(unit.earliestStart(0), Tick{50});
    EXPECT_EQ(unit.earliestStart(60), Tick{60});
    // earliestStart must not have consumed capacity.
    EXPECT_EQ(unit.acquire(0, 1), Tick{50});
}

TEST(PipelinedUnits, ResetFrees)
{
    PipelinedUnits unit(1);
    unit.acquire(0, 1000);
    unit.reset();
    EXPECT_EQ(unit.acquire(0, 1), Tick{0});
}

TEST(TokenPool, GrantsImmediatelyWhenFree)
{
    TokenPool pool(2);
    EXPECT_EQ(pool.grantTime(42), Tick{42});
    const Tick g = pool.acquire(42, [](Tick t) { return t + 100; });
    EXPECT_EQ(g, Tick{42});
}

TEST(TokenPool, BlocksWhenExhausted)
{
    TokenPool pool(2);
    pool.acquire(0, [](Tick t) { return t + 100; });
    pool.acquire(0, [](Tick t) { return t + 200; });
    // Third acquisition waits for the earliest release (tick 100).
    const Tick g = pool.acquire(10, [](Tick t) { return t + 50; });
    EXPECT_EQ(g, Tick{100});
}

TEST(TokenPool, ReleasesFreeTokens)
{
    TokenPool pool(1);
    pool.acquire(0, [](Tick t) { return t + 10; });
    // Arrives after the release: no wait.
    EXPECT_EQ(pool.acquire(20, [](Tick t) { return t + 10; }),
              Tick{20});
}

TEST(TokenPool, InFlightCountsOutstanding)
{
    TokenPool pool(4);
    pool.acquire(0, [](Tick t) { return t + 100; });
    pool.acquire(0, [](Tick t) { return t + 200; });
    EXPECT_EQ(pool.inFlight(50), 2u);
    EXPECT_EQ(pool.inFlight(150), 1u);
    EXPECT_EQ(pool.inFlight(250), 0u);
}

TEST(PipelinedUnits, ZeroBusyReserveDoesNotBlock)
{
    // A zero-latency reservation (e.g. a bypassed pipeline stage)
    // must not delay anything: the slot is consumed and immediately
    // free again.
    PipelinedUnits unit(1);
    EXPECT_EQ(unit.acquire(10, 0), Tick{10});
    EXPECT_EQ(unit.acquire(10, 0), Tick{10});
    EXPECT_EQ(unit.acquire(10, 5), Tick{10});
    EXPECT_EQ(unit.acquire(10, 5), Tick{15});
}

TEST(PipelinedUnits, SortedOrderSurvivesMixedBusyTimes)
{
    // Short reservations after long ones must not starve: with two
    // units, free ticks {100, 3} after the first two acquires, the
    // third consumes the earliest (3), not the first-constructed.
    PipelinedUnits units(2);
    EXPECT_EQ(units.acquire(0, 100), Tick{0});
    EXPECT_EQ(units.acquire(3, 7), Tick{3});
    EXPECT_EQ(units.acquire(5, 1), Tick{10});   // unit freed at 10
    EXPECT_EQ(units.acquire(5, 1), Tick{11});   // same unit again
    EXPECT_EQ(units.acquire(120, 1), Tick{120});
}

TEST(TokenPool, ReleaseAndAcquireAtSameTick)
{
    // A token released exactly at the arrival tick is granted to
    // that arrival without delay (release <= t retires).
    TokenPool pool(1);
    pool.acquire(0, [](Tick t) { return t + 10; });
    EXPECT_EQ(pool.acquire(10, [](Tick t) { return t + 10; }),
              Tick{10});
    // And when the pool is full, the waiter is granted exactly at
    // the earliest release tick, not one tick later.
    EXPECT_EQ(pool.acquire(10, [](Tick t) { return t + 5; }),
              Tick{20});
}

TEST(TokenPool, ExhaustionBoundsInFlight)
{
    // However many acquires race in, the in-flight population can
    // never exceed the capacity: each grant beyond it must first
    // wait out an earlier release.
    TokenPool pool(3);
    for (int i = 0; i < 50; ++i) {
        pool.acquire(Tick(i), [](Tick t) { return t + 40; });
        EXPECT_LE(pool.inFlight(Tick(i)), 3u);
    }
}

TEST(TokenPool, SingleTokenFullySerializes)
{
    TokenPool pool(1);
    Tick g1 = pool.acquire(0, [](Tick t) { return t + 7; });
    Tick g2 = pool.acquire(0, [](Tick t) { return t + 7; });
    Tick g3 = pool.acquire(0, [](Tick t) { return t + 7; });
    EXPECT_EQ(g1, Tick{0});
    EXPECT_EQ(g2, Tick{7});
    EXPECT_EQ(g3, Tick{14});
}

TEST(TokenPool, ResetReleasesEverything)
{
    TokenPool pool(2);
    pool.acquire(0, [](Tick t) { return t + 1000; });
    pool.acquire(0, [](Tick t) { return t + 1000; });
    pool.reset();
    EXPECT_EQ(pool.inFlight(0), 0u);
    EXPECT_EQ(pool.acquire(5, [](Tick t) { return t + 1; }), Tick{5});
}

TEST(TokenPool, QueueBuildsUnderOversubscription)
{
    // Arrivals at rate 1/tick against service of 10 ticks and 2
    // tokens: sustained throughput must be 2 per 10 ticks.
    TokenPool pool(2);
    Tick last_grant = 0;
    for (int i = 0; i < 100; ++i)
        last_grant = pool.acquire(Tick(i), [](Tick t) {
            return t + 10;
        });
    // 100 requests, 2 in service per 10 ticks -> last grant ~ 490.
    EXPECT_NEAR(double(last_grant), 490.0, 15.0);
}

} // namespace
} // namespace eve
