/**
 * @file
 * Experiment-runner subsystem tests: sweep expansion, thread-pool
 * determinism, failure policies, progress reporting, and the
 * JSONL/CSV result sinks.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>

#include "exp/exp.hh"
#include "workloads/workload.hh"

using namespace eve;
using namespace eve::exp;

namespace
{

/** A workload whose init() always throws. */
class ThrowingWorkload : public Workload
{
  public:
    std::string name() const override { return "throwing"; }
    std::string suite() const override { return "test"; }
    void init() override
    {
        throw std::runtime_error("injected failure");
    }
    void emitScalar(InstrSink&) override {}
    void emitVector(InstrSink&, std::uint32_t) override {}
    std::uint64_t verify() const override { return 0; }
};

SweepSpec
smallGrid()
{
    SweepSpec spec;
    SystemConfig io;
    io.kind = SystemKind::IO;
    SystemConfig o3eve;
    o3eve.kind = SystemKind::O3EVE;
    o3eve.eve_pf = 8;
    spec.system(io).system(o3eve);
    spec.axis<unsigned>("llc_mshrs", {16, 32},
                        [](SystemConfig& c, unsigned m) {
                            c.llc_mshrs = m;
                        });
    spec.workloads({"vvadd"}, /*small=*/true);
    return spec;
}

} // namespace

TEST(SweepSpec, CartesianExpansionOrderAndLabels)
{
    const auto jobs = smallGrid().jobs();
    ASSERT_EQ(jobs.size(), 4u); // 2 systems x 2 axis points x 1 wl

    // Systems outermost, axis next, workloads innermost.
    EXPECT_EQ(jobs[0].label, "IO/llc_mshrs=16/vvadd");
    EXPECT_EQ(jobs[1].label, "IO/llc_mshrs=32/vvadd");
    EXPECT_EQ(jobs[2].label, "O3+EVE-8/llc_mshrs=16/vvadd");
    EXPECT_EQ(jobs[3].label, "O3+EVE-8/llc_mshrs=32/vvadd");
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(jobs[i].index, i);

    EXPECT_EQ(jobs[0].config.llc_mshrs, 16u);
    EXPECT_EQ(jobs[1].config.llc_mshrs, 32u);
    EXPECT_EQ(jobs[3].config.kind, SystemKind::O3EVE);
    ASSERT_EQ(jobs[2].axes.size(), 1u);
    EXPECT_EQ(jobs[2].axes[0].first, "llc_mshrs");
    EXPECT_EQ(jobs[2].axes[0].second, "16");
}

TEST(SweepSpec, ExpandedSystemsMatchesJobGrid)
{
    const auto spec = smallGrid();
    const auto systems = spec.expandedSystems();
    ASSERT_EQ(systems.size(), 4u);
    EXPECT_EQ(spec.systemCount(), 4u);
    EXPECT_EQ(systems[0].llc_mshrs, 16u);
    EXPECT_EQ(systems[3].kind, SystemKind::O3EVE);
    const auto labels = spec.expandedSystemLabels();
    ASSERT_EQ(labels.size(), 4u);
    EXPECT_EQ(labels[0], "IO/llc_mshrs=16");
}

TEST(SweepSpec, TwoAxesMultiply)
{
    SweepSpec spec;
    SystemConfig cfg;
    cfg.kind = SystemKind::O3EVE;
    spec.system(cfg);
    spec.axis<unsigned>("pf", {4, 8},
                        [](SystemConfig& c, unsigned v) {
                            c.eve_pf = v;
                        });
    spec.axis<unsigned>("dtus", {4, 8, 16},
                        [](SystemConfig& c, unsigned v) {
                            c.dtus = v;
                        });
    spec.workload("w", [] { return makeWorkload("vvadd", true); });
    const auto jobs = spec.jobs();
    ASSERT_EQ(jobs.size(), 6u);
    // Second axis varies fastest.
    EXPECT_EQ(jobs[0].config.eve_pf, 4u);
    EXPECT_EQ(jobs[0].config.dtus, 4u);
    EXPECT_EQ(jobs[1].config.dtus, 8u);
    EXPECT_EQ(jobs[3].config.eve_pf, 8u);
    EXPECT_EQ(jobs[3].config.dtus, 4u);
}

TEST(Runner, ParallelMatchesSerialByteIdentical)
{
    const auto spec = smallGrid();

    RunnerOptions serial_opts;
    serial_opts.threads = 1;
    const auto serial = Runner(serial_opts).run(spec);

    RunnerOptions par_opts;
    par_opts.threads = 8;
    const auto parallel = Runner(par_opts).run(spec);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].status, JobStatus::Ok) << serial[i].label;
        // Timing-free payloads must be byte-identical: results are
        // keyed by job index and the simulation has no shared state.
        EXPECT_EQ(resultToJson(serial[i], false),
                  resultToJson(parallel[i], false))
            << serial[i].label;
    }
}

TEST(Runner, RecordPolicyKeepsSweeping)
{
    SweepSpec spec;
    SystemConfig cfg;
    cfg.kind = SystemKind::O3;
    spec.system(cfg);
    spec.workload("throwing",
                  [] { return std::make_unique<ThrowingWorkload>(); });
    spec.workload("vvadd", [] { return makeWorkload("vvadd", true); });

    RunnerOptions opts;
    opts.threads = 2;
    const auto results = Runner(opts).run(spec);

    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].status, JobStatus::Failed);
    EXPECT_NE(results[0].error.find("injected failure"),
              std::string::npos);
    EXPECT_EQ(results[1].status, JobStatus::Ok);
    EXPECT_GT(results[1].result.cycles, 0.0);
}

TEST(Runner, NullFactoryIsRecordedFailure)
{
    SweepSpec spec;
    spec.workloads({"no-such-workload"}, true);
    RunnerOptions opts;
    opts.threads = 1;
    const auto results = Runner(opts).run(spec);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, JobStatus::Failed);
    EXPECT_NE(results[0].error.find("no-such-workload"),
              std::string::npos);
}

TEST(Runner, AbortPolicyStopsSchedulingNewJobs)
{
    SweepSpec spec;
    SystemConfig cfg;
    cfg.kind = SystemKind::O3;
    spec.system(cfg);
    spec.workload("throwing",
                  [] { return std::make_unique<ThrowingWorkload>(); });
    spec.workload("vvadd", [] { return makeWorkload("vvadd", true); });

    RunnerOptions opts;
    opts.threads = 1;
    opts.on_failure = FailurePolicy::Abort;
    const auto results = Runner(opts).run(spec);

    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].status, JobStatus::Failed);
    EXPECT_EQ(results[1].status, JobStatus::Skipped);
    // Skipped entries keep their identity for reporting.
    EXPECT_EQ(results[1].workload, "vvadd");
    EXPECT_EQ(countStatus(results, JobStatus::Skipped), 1u);
}

TEST(Runner, ProgressIsSerializedAndMonotonic)
{
    const auto spec = smallGrid();
    std::vector<std::size_t> seen_done;
    RunnerOptions opts;
    opts.threads = 4;
    opts.progress = [&](const JobResult&, std::size_t done,
                        std::size_t total) {
        EXPECT_EQ(total, 4u);
        seen_done.push_back(done); // safe: callback is serialized
    };
    const auto results = Runner(opts).run(spec);
    ASSERT_EQ(results.size(), 4u);
    ASSERT_EQ(seen_done.size(), 4u);
    for (std::size_t i = 0; i < seen_done.size(); ++i)
        EXPECT_EQ(seen_done[i], i + 1);
}

TEST(Sink, JsonLineHasSchemaFields)
{
    SweepSpec spec;
    SystemConfig cfg;
    cfg.kind = SystemKind::O3EVE;
    cfg.eve_pf = 8;
    spec.system(cfg).workloads({"vvadd"}, true);
    RunnerOptions opts;
    opts.threads = 1;
    const auto results = Runner(opts).run(spec);
    ASSERT_EQ(results.size(), 1u);

    const std::string json = resultToJson(results[0]);
    EXPECT_NE(json.find("\"system\":\"O3+EVE-8\""), std::string::npos);
    EXPECT_NE(json.find("\"workload\":\"vvadd\""), std::string::npos);
    EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos);
    EXPECT_NE(json.find("\"cycles\":"), std::string::npos);
    EXPECT_NE(json.find("\"seconds\":"), std::string::npos);
    EXPECT_NE(json.find("\"stats\":{"), std::string::npos);
    EXPECT_NE(json.find("\"wall_s\":"), std::string::npos);
    EXPECT_NE(json.find("\"breakdown\":{"), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');

    std::ostringstream os;
    JsonLinesSink sink(os);
    sink.write(results[0]);
    EXPECT_EQ(os.str(), json + "\n");
}

TEST(Sink, FailedJobJsonCarriesErrorNotStats)
{
    JobResult r;
    r.index = 7;
    r.label = "x";
    r.workload = "w";
    r.status = JobStatus::Failed;
    r.error = "boom \"quoted\"";
    const std::string json = resultToJson(r);
    EXPECT_NE(json.find("\"status\":\"failed\""), std::string::npos);
    EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
    EXPECT_EQ(json.find("\"stats\""), std::string::npos);
}

TEST(Sink, CsvUnionsStatColumns)
{
    JobResult a;
    a.index = 0;
    a.label = "a";
    a.workload = "w";
    a.status = JobStatus::Ok;
    a.result.cycles = 10;
    a.result.stats["core.instrs"] = 5;
    JobResult b;
    b.index = 1;
    b.label = "b,with comma";
    b.workload = "w";
    b.status = JobStatus::Ok;
    b.result.cycles = 20;
    b.result.stats["llc.misses"] = 3;

    CsvSink sink;
    sink.write(a);
    sink.write(b);
    const std::string csv = sink.render();

    std::istringstream is(csv);
    std::string header, row_a, row_b;
    std::getline(is, header);
    std::getline(is, row_a);
    std::getline(is, row_b);
    EXPECT_NE(header.find("core.instrs"), std::string::npos);
    EXPECT_NE(header.find("llc.misses"), std::string::npos);
    EXPECT_NE(row_b.find("\"b,with comma\""), std::string::npos);
    // Row a has no llc.misses value: empty trailing field.
    EXPECT_NE(row_a.find(",5,"), std::string::npos);
}
