/**
 * @file
 * Experiment-runner subsystem tests: sweep expansion, thread-pool
 * determinism, failure policies, progress reporting, and the
 * JSONL/CSV result sinks.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "exp/exp.hh"
#include "workloads/workload.hh"

using namespace eve;
using namespace eve::exp;

namespace
{

/** A fresh, empty scratch directory under the gtest temp dir. */
std::string
freshDir(const std::string& name)
{
    const std::string dir = ::testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    return dir;
}

/** A do-nothing workload (fast Runner jobs for scheduling tests). */
class NopWorkload : public Workload
{
  public:
    std::string name() const override { return "nop"; }
    std::string suite() const override { return "test"; }
    void init() override {}
    void emitScalar(InstrSink&) override {}
    void emitVector(InstrSink&, std::uint32_t) override {}
    std::uint64_t verify() const override { return 0; }
};

/** A workload whose init() always throws. */
class ThrowingWorkload : public Workload
{
  public:
    std::string name() const override { return "throwing"; }
    std::string suite() const override { return "test"; }
    void init() override
    {
        throw std::runtime_error("injected failure");
    }
    void emitScalar(InstrSink&) override {}
    void emitVector(InstrSink&, std::uint32_t) override {}
    std::uint64_t verify() const override { return 0; }
};

SweepSpec
smallGrid()
{
    SweepSpec spec;
    SystemConfig io;
    io.kind = SystemKind::IO;
    SystemConfig o3eve;
    o3eve.kind = SystemKind::O3EVE;
    o3eve.eve_pf = 8;
    spec.system(io).system(o3eve);
    spec.axis<unsigned>("llc_mshrs", {16, 32},
                        [](SystemConfig& c, unsigned m) {
                            c.llc_mshrs = m;
                        });
    spec.workloads({"vvadd"}, /*small=*/true);
    return spec;
}

} // namespace

TEST(SweepSpec, CartesianExpansionOrderAndLabels)
{
    const auto jobs = smallGrid().jobs();
    ASSERT_EQ(jobs.size(), 4u); // 2 systems x 2 axis points x 1 wl

    // Systems outermost, axis next, workloads innermost.
    EXPECT_EQ(jobs[0].label, "IO/llc_mshrs=16/vvadd");
    EXPECT_EQ(jobs[1].label, "IO/llc_mshrs=32/vvadd");
    EXPECT_EQ(jobs[2].label, "O3+EVE-8/llc_mshrs=16/vvadd");
    EXPECT_EQ(jobs[3].label, "O3+EVE-8/llc_mshrs=32/vvadd");
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(jobs[i].index, i);

    EXPECT_EQ(jobs[0].config.llc_mshrs, 16u);
    EXPECT_EQ(jobs[1].config.llc_mshrs, 32u);
    EXPECT_EQ(jobs[3].config.kind, SystemKind::O3EVE);
    ASSERT_EQ(jobs[2].axes.size(), 1u);
    EXPECT_EQ(jobs[2].axes[0].first, "llc_mshrs");
    EXPECT_EQ(jobs[2].axes[0].second, "16");
}

TEST(SweepSpec, ExpandedSystemsMatchesJobGrid)
{
    const auto spec = smallGrid();
    const auto systems = spec.expandedSystems();
    ASSERT_EQ(systems.size(), 4u);
    EXPECT_EQ(spec.systemCount(), 4u);
    EXPECT_EQ(systems[0].llc_mshrs, 16u);
    EXPECT_EQ(systems[3].kind, SystemKind::O3EVE);
    const auto labels = spec.expandedSystemLabels();
    ASSERT_EQ(labels.size(), 4u);
    EXPECT_EQ(labels[0], "IO/llc_mshrs=16");
}

TEST(SweepSpec, TwoAxesMultiply)
{
    SweepSpec spec;
    SystemConfig cfg;
    cfg.kind = SystemKind::O3EVE;
    spec.system(cfg);
    spec.axis<unsigned>("pf", {4, 8},
                        [](SystemConfig& c, unsigned v) {
                            c.eve_pf = v;
                        });
    spec.axis<unsigned>("dtus", {4, 8, 16},
                        [](SystemConfig& c, unsigned v) {
                            c.dtus = v;
                        });
    spec.workload("w", [] { return makeWorkload("vvadd", true); });
    const auto jobs = spec.jobs();
    ASSERT_EQ(jobs.size(), 6u);
    // Second axis varies fastest.
    EXPECT_EQ(jobs[0].config.eve_pf, 4u);
    EXPECT_EQ(jobs[0].config.dtus, 4u);
    EXPECT_EQ(jobs[1].config.dtus, 8u);
    EXPECT_EQ(jobs[3].config.eve_pf, 8u);
    EXPECT_EQ(jobs[3].config.dtus, 4u);
}

TEST(Runner, ParallelMatchesSerialByteIdentical)
{
    const auto spec = smallGrid();

    RunnerOptions serial_opts;
    serial_opts.threads = 1;
    const auto serial = Runner(serial_opts).run(spec);

    RunnerOptions par_opts;
    par_opts.threads = 8;
    const auto parallel = Runner(par_opts).run(spec);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].status, JobStatus::Ok) << serial[i].label;
        // Timing-free payloads must be byte-identical: results are
        // keyed by job index and the simulation has no shared state.
        EXPECT_EQ(resultToJson(serial[i], false),
                  resultToJson(parallel[i], false))
            << serial[i].label;
    }
}

TEST(Runner, RecordPolicyKeepsSweeping)
{
    SweepSpec spec;
    SystemConfig cfg;
    cfg.kind = SystemKind::O3;
    spec.system(cfg);
    spec.workload("throwing",
                  [] { return std::make_unique<ThrowingWorkload>(); });
    spec.workload("vvadd", [] { return makeWorkload("vvadd", true); });

    RunnerOptions opts;
    opts.threads = 2;
    const auto results = Runner(opts).run(spec);

    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].status, JobStatus::Failed);
    EXPECT_NE(results[0].error.find("injected failure"),
              std::string::npos);
    EXPECT_EQ(results[1].status, JobStatus::Ok);
    EXPECT_GT(results[1].result.cycles, 0.0);
}

TEST(Runner, NullFactoryIsRecordedFailure)
{
    SweepSpec spec;
    spec.workloads({"no-such-workload"}, true);
    RunnerOptions opts;
    opts.threads = 1;
    const auto results = Runner(opts).run(spec);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, JobStatus::Failed);
    EXPECT_NE(results[0].error.find("no-such-workload"),
              std::string::npos);
}

TEST(Runner, AbortPolicyStopsSchedulingNewJobs)
{
    SweepSpec spec;
    SystemConfig cfg;
    cfg.kind = SystemKind::O3;
    spec.system(cfg);
    spec.workload("throwing",
                  [] { return std::make_unique<ThrowingWorkload>(); });
    spec.workload("vvadd", [] { return makeWorkload("vvadd", true); });

    RunnerOptions opts;
    opts.threads = 1;
    opts.on_failure = FailurePolicy::Abort;
    const auto results = Runner(opts).run(spec);

    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].status, JobStatus::Failed);
    EXPECT_EQ(results[1].status, JobStatus::Skipped);
    // Skipped entries keep their identity for reporting.
    EXPECT_EQ(results[1].workload, "vvadd");
    EXPECT_EQ(countStatus(results, JobStatus::Skipped), 1u);
}

TEST(Runner, ProgressIsSerializedAndMonotonic)
{
    const auto spec = smallGrid();
    std::vector<std::size_t> seen_done;
    RunnerOptions opts;
    opts.threads = 4;
    opts.progress = [&](const JobResult&, std::size_t done,
                        std::size_t total) {
        EXPECT_EQ(total, 4u);
        seen_done.push_back(done); // safe: callback is serialized
    };
    const auto results = Runner(opts).run(spec);
    ASSERT_EQ(results.size(), 4u);
    ASSERT_EQ(seen_done.size(), 4u);
    for (std::size_t i = 0; i < seen_done.size(); ++i)
        EXPECT_EQ(seen_done[i], i + 1);
}

TEST(Runner, ProgressStaysMonotonicUnderContention)
{
    // Many near-instant jobs on many threads: if the completion
    // counter were bumped outside the progress lock, two workers
    // could swap between increment and callback and a caller would
    // observe e.g. 5 before 4.
    SweepSpec spec;
    SystemConfig cfg;
    cfg.kind = SystemKind::IO;
    spec.system(cfg);
    for (int i = 0; i < 32; ++i) {
        spec.workload("nop" + std::to_string(i),
                      [] { return std::make_unique<NopWorkload>(); });
    }
    std::vector<std::size_t> seen_done;
    RunnerOptions opts;
    opts.threads = 8;
    opts.progress = [&](const JobResult&, std::size_t done,
                        std::size_t) { seen_done.push_back(done); };
    const auto results = Runner(opts).run(spec);
    EXPECT_EQ(countStatus(results, JobStatus::Ok), 32u);
    ASSERT_EQ(seen_done.size(), 32u);
    for (std::size_t i = 0; i < seen_done.size(); ++i)
        ASSERT_EQ(seen_done[i], i + 1) << "non-monotonic progress";
}

TEST(Sink, JsonLineHasSchemaFields)
{
    SweepSpec spec;
    SystemConfig cfg;
    cfg.kind = SystemKind::O3EVE;
    cfg.eve_pf = 8;
    spec.system(cfg).workloads({"vvadd"}, true);
    RunnerOptions opts;
    opts.threads = 1;
    const auto results = Runner(opts).run(spec);
    ASSERT_EQ(results.size(), 1u);

    const std::string json = resultToJson(results[0]);
    EXPECT_NE(json.find("\"system\":\"O3+EVE-8\""), std::string::npos);
    EXPECT_NE(json.find("\"workload\":\"vvadd\""), std::string::npos);
    EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos);
    EXPECT_NE(json.find("\"cycles\":"), std::string::npos);
    EXPECT_NE(json.find("\"seconds\":"), std::string::npos);
    EXPECT_NE(json.find("\"stats\":{"), std::string::npos);
    EXPECT_NE(json.find("\"wall_s\":"), std::string::npos);
    EXPECT_NE(json.find("\"breakdown\":{"), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');

    std::ostringstream os;
    JsonLinesSink sink(os);
    sink.write(results[0]);
    EXPECT_EQ(os.str(), json + "\n");
}

TEST(Sink, FailedJobJsonCarriesErrorNotStats)
{
    JobResult r;
    r.index = 7;
    r.label = "x";
    r.workload = "w";
    r.status = JobStatus::Failed;
    r.error = "boom \"quoted\"";
    const std::string json = resultToJson(r);
    EXPECT_NE(json.find("\"status\":\"failed\""), std::string::npos);
    EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
    EXPECT_EQ(json.find("\"stats\""), std::string::npos);
}

TEST(Sink, CsvUnionsStatColumns)
{
    JobResult a;
    a.index = 0;
    a.label = "a";
    a.workload = "w";
    a.status = JobStatus::Ok;
    a.result.cycles = 10;
    a.result.stats["core.instrs"] = 5;
    JobResult b;
    b.index = 1;
    b.label = "b,with comma";
    b.workload = "w";
    b.status = JobStatus::Ok;
    b.result.cycles = 20;
    b.result.stats["llc.misses"] = 3;

    CsvSink sink;
    sink.write(a);
    sink.write(b);
    const std::string csv = sink.render();

    std::istringstream is(csv);
    std::string header, row_a, row_b;
    std::getline(is, header);
    std::getline(is, row_a);
    std::getline(is, row_b);
    EXPECT_NE(header.find("core.instrs"), std::string::npos);
    EXPECT_NE(header.find("llc.misses"), std::string::npos);
    EXPECT_NE(row_b.find("\"b,with comma\""), std::string::npos);
    // Row a has no llc.misses value: empty trailing field.
    EXPECT_NE(row_a.find(",5,"), std::string::npos);
}

TEST(Sink, CsvCarriesErrorColumn)
{
    JobResult ok;
    ok.index = 0;
    ok.label = "fine";
    ok.workload = "w";
    ok.status = JobStatus::Ok;
    JobResult bad;
    bad.index = 1;
    bad.label = "broken";
    bad.workload = "w";
    bad.status = JobStatus::Failed;
    bad.error = "spawn failed, tick 7";

    CsvSink sink;
    sink.write(ok);
    sink.write(bad);
    const std::string csv = sink.render();

    std::istringstream is(csv);
    std::string header, row_ok, row_bad;
    std::getline(is, header);
    std::getline(is, row_ok);
    std::getline(is, row_bad);
    // The error column sits right after status, so Failed/Mismatch
    // rows keep their diagnosis in spreadsheet form.
    EXPECT_NE(header.find("status,error,"), std::string::npos);
    EXPECT_NE(row_bad.find("failed,\"spawn failed, tick 7\""),
              std::string::npos);
    EXPECT_NE(row_ok.find("ok,,"), std::string::npos);
}

// ---------------------------------------------------------------------
// Content-hash result cache
// ---------------------------------------------------------------------

TEST(ResultCacheKey, TracksContentNotLabels)
{
    const auto jobs = smallGrid().jobs();
    ASSERT_EQ(jobs.size(), 4u);

    // Same content, same key — independent of index/label.
    Job relabelled = jobs[0];
    relabelled.index = 99;
    relabelled.label = "renamed/axis=point/vvadd";
    relabelled.axes.clear();
    EXPECT_EQ(jobKey(jobs[0]), jobKey(relabelled));

    // Any config field, the workload, the scale, or the salt changes
    // the key.
    Job other = jobs[0];
    other.config.llc_mshrs += 1;
    EXPECT_NE(jobKey(jobs[0]), jobKey(other));
    other = jobs[0];
    other.workload = "mmult";
    EXPECT_NE(jobKey(jobs[0]), jobKey(other));
    other = jobs[0];
    other.scale = "full";
    EXPECT_NE(jobKey(jobs[0]), jobKey(other));
    EXPECT_NE(jobKey(jobs[0], "eve-sim-v3"), jobKey(jobs[0]));

    // Keys are 16 hex digits and distinct across the grid.
    for (const auto& job : jobs) {
        EXPECT_EQ(jobKey(job).size(), 16u);
        EXPECT_EQ(jobKey(job).find_first_not_of("0123456789abcdef"),
                  std::string::npos);
    }
    EXPECT_NE(jobKey(jobs[0]), jobKey(jobs[1]));
    EXPECT_NE(jobKey(jobs[0]), jobKey(jobs[2]));
}

TEST(ResultCacheKey, ScaleComesFromSweepSpec)
{
    SweepSpec small_spec;
    small_spec.workloads({"vvadd"}, /*small=*/true);
    SweepSpec full_spec;
    full_spec.workloads({"vvadd"}, /*small=*/false);
    EXPECT_EQ(small_spec.jobs()[0].scale, "small");
    EXPECT_EQ(full_spec.jobs()[0].scale, "full");
}

TEST(ResultCacheKey, SamplingScheduleSeparatesKeys)
{
    const auto jobs = smallGrid().jobs();

    // A sampled job never shares a key with its exact twin, so a
    // sampled sweep can never serve (or poison) exact cached records.
    Job sampled = jobs[0];
    ASSERT_TRUE(parseSamplingFlag("1000,200,8", sampled.sampling));
    EXPECT_NE(jobKey(jobs[0]), jobKey(sampled));

    // Two different schedules are two different keys.
    Job other_schedule = jobs[0];
    ASSERT_TRUE(
        parseSamplingFlag("500,100,8", other_schedule.sampling));
    EXPECT_NE(jobKey(sampled), jobKey(other_schedule));

    // The key depends on the schedule's content, not on how the
    // flag spelled it.
    Job canonical_spelling = jobs[0];
    ASSERT_TRUE(parseSamplingCanonical(
        "interval=1000;warmup=200;stride=8",
        canonical_spelling.sampling));
    EXPECT_EQ(jobKey(sampled), jobKey(canonical_spelling));
}

TEST(ResultCache, JsonRoundTripIsByteExact)
{
    SweepSpec spec;
    SystemConfig cfg;
    cfg.kind = SystemKind::O3EVE;
    cfg.eve_pf = 8;
    spec.system(cfg).workloads({"vvadd"}, true);
    RunnerOptions opts;
    opts.threads = 1;
    const auto results = Runner(opts).run(spec);
    ASSERT_EQ(results.size(), 1u);
    ASSERT_EQ(results[0].status, JobStatus::Ok);

    const std::string json = resultToJson(results[0]);
    JobResult parsed;
    ASSERT_TRUE(parseResultJson(json, parsed));
    EXPECT_EQ(parsed.status, JobStatus::Ok);
    EXPECT_EQ(parsed.workload, "vvadd");
    EXPECT_TRUE(parsed.result.has_breakdown);
    EXPECT_EQ(resultToJson(parsed), json);
    EXPECT_EQ(resultToJson(parsed, false),
              resultToJson(results[0], false));
}

TEST(ResultCache, StoreLoadLookupRestoresByteIdentically)
{
    const std::string dir = freshDir("eve_cache_roundtrip");
    const auto jobs = smallGrid().jobs();
    RunnerOptions opts;
    opts.threads = 2;
    const auto results = Runner(opts).run(jobs);

    {
        ResultCache cache(dir);
        for (std::size_t i = 0; i < jobs.size(); ++i)
            cache.store(jobs[i], results[i]);
        EXPECT_EQ(cache.stores(), jobs.size());
        // Duplicate stores are refused.
        cache.store(jobs[0], results[0]);
        EXPECT_EQ(cache.stores(), jobs.size());
    }

    ResultCache cache(dir);
    EXPECT_EQ(cache.load(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        JobResult restored;
        ASSERT_TRUE(cache.lookup(jobs[i], restored))
            << jobs[i].label;
        EXPECT_EQ(restored.status, JobStatus::Cached);
        EXPECT_EQ(restored.index, jobs[i].index);
        EXPECT_EQ(restored.label, jobs[i].label);
        // Serialized bytes — including the original host wall time —
        // are exactly the cold run's.
        EXPECT_EQ(resultToJson(restored), resultToJson(results[i]));
    }
    // A job outside the stored grid misses.
    Job edited = jobs[0];
    edited.config.llc_mshrs = 999;
    JobResult miss;
    EXPECT_FALSE(cache.lookup(edited, miss));
}

TEST(ResultCache, ResumedRunExecutesNothingAndMatchesByteForByte)
{
    const std::string dir = freshDir("eve_cache_resume");
    const auto spec = smallGrid();

    ResultCache cold_cache(dir);
    EXPECT_EQ(cold_cache.load(), 0u);
    RunnerOptions cold_opts;
    cold_opts.threads = 2;
    cold_opts.cache = &cold_cache;
    const auto cold = Runner(cold_opts).run(spec);
    EXPECT_EQ(countStatus(cold, JobStatus::Ok), cold.size());
    EXPECT_EQ(cold_cache.stores(), cold.size());

    // Resume with a fresh cache object over the same directory, at a
    // different thread count: zero executions, byte-identical JSONL.
    ResultCache warm_cache(dir);
    EXPECT_EQ(warm_cache.load(), cold.size());
    RunnerOptions warm_opts;
    warm_opts.threads = 4;
    warm_opts.cache = &warm_cache;
    const auto warm = Runner(warm_opts).run(spec);
    ASSERT_EQ(warm.size(), cold.size());
    EXPECT_EQ(countStatus(warm, JobStatus::Cached), warm.size());
    EXPECT_EQ(warm_cache.stores(), 0u);
    for (std::size_t i = 0; i < cold.size(); ++i)
        EXPECT_EQ(resultToJson(warm[i]), resultToJson(cold[i]))
            << cold[i].label;
}

TEST(ResultCache, EditedAxisRerunsOnlyAffectedJobs)
{
    const std::string dir = freshDir("eve_cache_edit");
    auto makeSpec = [](std::vector<unsigned> mshrs) {
        SweepSpec spec;
        SystemConfig io;
        io.kind = SystemKind::IO;
        SystemConfig o3eve;
        o3eve.kind = SystemKind::O3EVE;
        o3eve.eve_pf = 8;
        spec.system(io).system(o3eve);
        spec.axis<unsigned>("llc_mshrs", mshrs,
                            [](SystemConfig& c, unsigned m) {
                                c.llc_mshrs = m;
                            });
        spec.workloads({"vvadd"}, /*small=*/true);
        return spec;
    };

    ResultCache cache(dir);
    cache.load();
    RunnerOptions opts;
    opts.threads = 2;
    opts.cache = &cache;
    Runner(opts).run(makeSpec({16, 32}));

    // Swap one axis point: only the two jobs touching the new value
    // simulate; the untouched half of the grid is served from cache.
    ResultCache cache2(dir);
    cache2.load();
    RunnerOptions opts2;
    opts2.threads = 2;
    opts2.cache = &cache2;
    const auto results = Runner(opts2).run(makeSpec({16, 48}));
    ASSERT_EQ(results.size(), 4u);
    EXPECT_EQ(countStatus(results, JobStatus::Cached), 2u);
    EXPECT_EQ(countStatus(results, JobStatus::Ok), 2u);
    EXPECT_EQ(cache2.stores(), 2u);
    for (const auto& r : results) {
        const bool new_point = r.config.llc_mshrs == 48;
        EXPECT_EQ(r.status, new_point ? JobStatus::Ok
                                      : JobStatus::Cached)
            << r.label;
    }
}

TEST(ResultCache, FailedJobsAreNeverCached)
{
    const std::string dir = freshDir("eve_cache_failed");
    SweepSpec spec;
    SystemConfig cfg;
    cfg.kind = SystemKind::O3;
    spec.system(cfg);
    spec.workload("throwing",
                  [] { return std::make_unique<ThrowingWorkload>(); });

    ResultCache cache(dir);
    cache.load();
    RunnerOptions opts;
    opts.threads = 1;
    opts.cache = &cache;
    const auto first = Runner(opts).run(spec);
    EXPECT_EQ(first[0].status, JobStatus::Failed);
    EXPECT_EQ(cache.stores(), 0u);

    // The rerun executes again (no poisoned cache entry).
    ResultCache cache2(dir);
    EXPECT_EQ(cache2.load(), 0u);
    RunnerOptions opts2 = opts;
    opts2.cache = &cache2;
    const auto second = Runner(opts2).run(spec);
    EXPECT_EQ(second[0].status, JobStatus::Failed);
}

TEST(ResultCache, SaltBumpInvalidatesEverything)
{
    const std::string dir = freshDir("eve_cache_salt");
    SweepSpec spec;
    SystemConfig cfg;
    cfg.kind = SystemKind::IO;
    spec.system(cfg).workloads({"vvadd"}, true);
    const auto jobs = spec.jobs();

    ResultCache cache(dir);
    cache.load();
    RunnerOptions opts;
    opts.threads = 1;
    opts.cache = &cache;
    Runner(opts).run(jobs);
    EXPECT_EQ(cache.stores(), 1u);

    // Same directory, bumped simulator salt: every key misses.
    ResultCache bumped(dir, "eve-sim-v999");
    EXPECT_EQ(bumped.load(), 1u);
    JobResult restored;
    EXPECT_FALSE(bumped.lookup(jobs[0], restored));
}

TEST(ResultCache, TruncatedEntriesAreSkippedNotFatal)
{
    const std::string dir = freshDir("eve_cache_corrupt");
    SweepSpec spec;
    SystemConfig cfg;
    cfg.kind = SystemKind::IO;
    spec.system(cfg).workloads({"vvadd"}, true);
    const auto jobs = spec.jobs();

    {
        ResultCache cache(dir);
        RunnerOptions opts;
        opts.threads = 1;
        opts.cache = &cache;
        Runner(opts).run(jobs);
        // Simulate a killed run: a half-written trailing line.
        std::ofstream out(cache.filePath(), std::ios::app);
        out << "{\"key\":\"0123456789abcdef\",\"record\":{\"ind";
    }

    ResultCache cache(dir);
    EXPECT_EQ(cache.load(), 1u); // good entry survives
    JobResult restored;
    EXPECT_TRUE(cache.lookup(jobs[0], restored));
}
