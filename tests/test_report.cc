/**
 * @file
 * Tests for the reporting subsystem (src/report): JSONL loading and
 * cell grouping over real resultToJson() bytes, figure math, delta /
 * gate math, and the artifact writers — all on synthetic records, no
 * simulation involved.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fs.hh"
#include "exp/runner.hh"
#include "exp/sink.hh"
#include "report/figures.hh"
#include "report/report.hh"

namespace eve::report
{
namespace
{

namespace fs = std::filesystem;

/** Fresh scratch directory under the test's temp root. */
std::string
scratchDir(const std::string& tag)
{
    const fs::path dir =
        fs::temp_directory_path() / ("eve_report_test_" + tag);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

exp::JobResult
makeResult(const std::string& system, const std::string& workload,
           double seconds, double cycles = 1000)
{
    exp::JobResult r;
    r.status = exp::JobStatus::Ok;
    r.workload = workload;
    r.result.system = system;
    r.result.workload = workload;
    r.result.seconds = seconds;
    r.result.cycles = cycles;
    r.result.total_ticks = cycles * 10;
    r.result.instrs = 5000;
    r.result.vecInstrs = 100;
    r.result.vecElemOps = 6400;
    r.label = system + "/" + workload;
    return r;
}

void
writeArtifact(const std::string& dir, const std::string& name,
              const std::vector<exp::JobResult>& results)
{
    exp::writeJsonLines(results, dir + "/" + name);
}

TEST(ReportLoad, RoundTripsSinkRecords)
{
    const std::string dir = scratchDir("load");
    writeArtifact(dir, "sweep.jsonl",
                  {makeResult("IO", "vvadd", 100.0),
                   makeResult("O3+EVE-8", "vvadd", 25.0)});

    LoadStats stats;
    const auto records = loadSweepDir(dir, &stats);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(stats.files, 1u);
    EXPECT_EQ(stats.records, 2u);
    EXPECT_EQ(stats.skipped_lines, 0u);
    EXPECT_EQ(records[0].system, "IO");
    EXPECT_EQ(records[0].workload, "vvadd");
    EXPECT_EQ(records[0].status, "ok");
    EXPECT_DOUBLE_EQ(records[0].seconds, 100.0);
    EXPECT_EQ(records[1].system, "O3+EVE-8");
    EXPECT_DOUBLE_EQ(records[1].seconds, 25.0);
    EXPECT_NE(records[0].key(), records[1].key());
}

TEST(ReportLoad, SkipsMalformedLinesAndCacheFile)
{
    const std::string dir = scratchDir("malformed");
    writeArtifact(dir, "sweep.jsonl", {makeResult("IO", "vvadd", 1.0)});
    {
        std::ofstream out(dir + "/sweep.jsonl", std::ios::app);
        out << "not json at all\n"
            << "{\"no\":\"record fields\"}\n";
    }
    // cache.jsonl holds key-prefixed cache lines, not sweep records.
    {
        std::ofstream out(dir + "/cache.jsonl");
        out << "deadbeef {\"system\":\"IO\"}\n";
    }

    LoadStats stats;
    const auto records = loadSweepDir(dir, &stats);
    EXPECT_EQ(records.size(), 1u);
    EXPECT_EQ(stats.files, 1u);
    EXPECT_EQ(stats.skipped_lines, 2u);
}

TEST(ReportLoad, DedupIsLastWinsPerCell)
{
    const std::string dir = scratchDir("dedup");
    writeArtifact(dir, "sweep.jsonl",
                  {makeResult("IO", "vvadd", 100.0),
                   makeResult("IO", "vvadd", 50.0)});
    const auto deduped = dedupCells(loadSweepDir(dir));
    ASSERT_EQ(deduped.size(), 1u);
    EXPECT_DOUBLE_EQ(deduped[0].seconds, 50.0);
}

TEST(ReportFigures, Fig6SpeedupOverIo)
{
    const std::string dir = scratchDir("fig6");
    writeArtifact(dir, "sweep.jsonl",
                  {makeResult("IO", "vvadd", 100.0),
                   makeResult("O3+EVE-8", "vvadd", 25.0),
                   makeResult("O3", "vvadd", 50.0)});
    const auto fig = fig6Performance(loadSweepDir(dir));
    ASSERT_FALSE(fig.empty());
    ASSERT_EQ(fig.rows.size(), 1u);
    EXPECT_EQ(fig.rows[0], "vvadd");
    // Columns are in canonical system order: IO, O3, then EVE.
    ASSERT_EQ(fig.columns.size(), 3u);
    EXPECT_EQ(fig.columns[0], "IO");
    EXPECT_EQ(fig.columns[1], "O3");
    EXPECT_EQ(fig.columns[2], "O3+EVE-8");
    EXPECT_DOUBLE_EQ(fig.at(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(fig.at(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(fig.at(0, 2), 4.0);
}

TEST(ReportFigures, Table4PicksMostCapableVectorSystem)
{
    const std::string dir = scratchDir("tab4");
    writeArtifact(dir, "sweep.jsonl",
                  {makeResult("O3+DV", "sw", 10.0),
                   makeResult("O3+EVE-8", "sw", 5.0)});
    const auto fig = table4Characterization(loadSweepDir(dir));
    ASSERT_FALSE(fig.empty());
    ASSERT_EQ(fig.rows.size(), 1u);
    // vec_elem_ops / vec_instrs = 6400 / 100.
    const auto it = std::find(fig.columns.begin(), fig.columns.end(),
                              "ops_per_vinstr");
    ASSERT_NE(it, fig.columns.end());
    EXPECT_DOUBLE_EQ(
        fig.at(0, std::size_t(it - fig.columns.begin())), 64.0);
}

TEST(ReportDeltas, IdenticalRunsHaveZeroDeltas)
{
    const std::string dir = scratchDir("zero");
    writeArtifact(dir, "sweep.jsonl",
                  {makeResult("IO", "vvadd", 100.0),
                   makeResult("O3+EVE-8", "vvadd", 25.0)});
    const auto current = loadSweepDir(dir);
    const auto report = compareRuns(current, current);
    EXPECT_EQ(report.cells, 2u);
    EXPECT_TRUE(report.deltas.empty());
    EXPECT_DOUBLE_EQ(report.worst_regress_pct, 0.0);
    EXPECT_TRUE(gatePassed(report, 0.0));
}

TEST(ReportDeltas, RegressionGateMath)
{
    const std::string base_dir = scratchDir("base");
    const std::string cur_dir = scratchDir("cur");
    writeArtifact(base_dir, "sweep.jsonl",
                  {makeResult("IO", "vvadd", 100.0, 1000)});
    writeArtifact(cur_dir, "sweep.jsonl",
                  {makeResult("IO", "vvadd", 110.0, 1100)});
    const auto report = compareRuns(loadSweepDir(cur_dir),
                                    loadSweepDir(base_dir));
    EXPECT_EQ(report.cells, 1u);
    EXPECT_FALSE(report.deltas.empty());
    EXPECT_NEAR(report.worst_regress_pct, 10.0, 1e-9);
    EXPECT_FALSE(gatePassed(report, 5.0));
    EXPECT_TRUE(gatePassed(report, 15.0));
    EXPECT_FALSE(renderDeltas(report).empty());
}

TEST(ReportDeltas, StatusDegradationFailsGate)
{
    const std::string base_dir = scratchDir("sbase");
    const std::string cur_dir = scratchDir("scur");
    writeArtifact(base_dir, "sweep.jsonl",
                  {makeResult("IO", "vvadd", 100.0)});
    auto bad = makeResult("IO", "vvadd", 100.0);
    bad.status = exp::JobStatus::Mismatch;
    bad.result.mismatches = 7;
    writeArtifact(cur_dir, "sweep.jsonl", {bad});
    const auto report = compareRuns(loadSweepDir(cur_dir),
                                    loadSweepDir(base_dir));
    EXPECT_EQ(report.status_degradations, 1u);
    EXPECT_FALSE(gatePassed(report, 100.0));
}

TEST(ReportDeltas, MissingCellFailsGateNewCellDoesNot)
{
    const std::string base_dir = scratchDir("mbase");
    const std::string cur_dir = scratchDir("mcur");
    writeArtifact(base_dir, "sweep.jsonl",
                  {makeResult("IO", "vvadd", 100.0),
                   makeResult("O3", "vvadd", 50.0)});
    writeArtifact(cur_dir, "sweep.jsonl",
                  {makeResult("IO", "vvadd", 100.0),
                   makeResult("O3+EVE-8", "vvadd", 25.0)});
    const auto report = compareRuns(loadSweepDir(cur_dir),
                                    loadSweepDir(base_dir));
    ASSERT_EQ(report.missing_in_current.size(), 1u);
    EXPECT_EQ(report.missing_in_baseline.size(), 1u);
    EXPECT_FALSE(gatePassed(report, 0.0));
}

TEST(ReportArtifacts, WritesCsvGnuplotSvgPerFigure)
{
    const std::string dir = scratchDir("art");
    writeArtifact(dir, "sweep.jsonl",
                  {makeResult("IO", "vvadd", 100.0),
                   makeResult("O3+EVE-8", "vvadd", 25.0)});
    const auto figures = buildAll(loadSweepDir(dir));
    ASSERT_FALSE(figures.empty());

    const std::string out = dir + "/report";
    const auto paths = writeFigureArtifacts(figures, out);
    ASSERT_FALSE(paths.empty());
    EXPECT_EQ(paths.size() % 3, 0u); // csv + gp + svg per figure
    for (const auto& p : paths) {
        EXPECT_TRUE(fileExists(p)) << p;
        std::string text;
        ASSERT_TRUE(readFile(p, text)) << p;
        EXPECT_FALSE(text.empty()) << p;
        if (p.size() > 4 && p.substr(p.size() - 4) == ".svg") {
            EXPECT_NE(text.find("<svg"), std::string::npos) << p;
        }
    }

    // The csv for fig6 carries the speedup value.
    std::string csv;
    ASSERT_TRUE(readFile(out + "/fig6_performance.csv", csv));
    EXPECT_NE(csv.find("vvadd"), std::string::npos);
}

} // namespace
} // namespace eve::report
