/**
 * @file
 * Unit tests for the memory system: cache hit/miss behaviour, LRU
 * replacement, writebacks, MSHR-limited miss parallelism and
 * secondary-miss merging, way masking (EVE reconfiguration), DRAM
 * latency/bandwidth, and the assembled Table III hierarchy.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/hierarchy.hh"

namespace eve
{
namespace
{

CacheParams
tinyCache(unsigned size_kb = 1, unsigned assoc = 2, unsigned mshrs = 2)
{
    CacheParams p;
    p.name = "tiny";
    p.size_bytes = size_kb * 1024;
    p.assoc = assoc;
    p.hit_latency = 2;
    p.mshrs = mshrs;
    p.clock_ns = 1.0;
    return p;
}

DramParams
fastDram()
{
    DramParams p;
    p.latency_ns = 50.0;
    return p;
}

TEST(Dram, ChargesLatency)
{
    Dram dram(fastDram());
    const Tick done = dram.access(0, false, 1000);
    // Channel occupancy starts at arrival; latency ~50ns.
    EXPECT_GE(done, Tick{1000 + 50000});
    EXPECT_LT(done, Tick{1000 + 60000});
}

TEST(Dram, ChannelBandwidthSerializes)
{
    Dram dram(fastDram());
    // 64B at 19.2 GB/s = ~3.33ns per line; 100 simultaneous lines
    // must spread over ~333ns of channel time.
    Tick last = 0;
    for (int i = 0; i < 100; ++i)
        last = std::max(last, dram.access(Addr(i) * 64, false, 0));
    EXPECT_GT(last, Tick{330000});
}

TEST(Dram, WritesCompleteAtAcceptance)
{
    Dram dram(fastDram());
    const Tick w = dram.access(0, true, 0);
    const Tick r = dram.access(64, false, 0);
    EXPECT_LT(w, r);  // writes don't pay the read latency
}

TEST(Cache, MissThenHit)
{
    Dram dram(fastDram());
    Cache cache(tinyCache(), &dram);
    const Tick miss = cache.access(0x40, false, 0);
    EXPECT_GT(miss, Tick{50000});
    EXPECT_TRUE(cache.isCached(0x40));
    // A later access to the same line hits at hit latency.
    const Tick hit = cache.access(0x44, false, miss);
    EXPECT_LE(hit, miss + 2 * 1000 + 1000);
    EXPECT_EQ(cache.stats().get("hits"), 1.0);
    EXPECT_EQ(cache.stats().get("misses"), 1.0);
}

TEST(Cache, SecondaryMissMergesIntoMshr)
{
    Dram dram(fastDram());
    Cache cache(tinyCache(), &dram);
    const Tick first = cache.access(0x40, false, 0);
    // Another access to the same line while in flight completes with
    // the fill, without a second DRAM trip.
    const Tick second = cache.access(0x48, false, 100);
    EXPECT_EQ(second, first);
    EXPECT_EQ(cache.stats().get("mshr_merges"), 1.0);
    EXPECT_EQ(dram.stats().get("reads"), 1.0);
}

TEST(Cache, LruEvictsOldest)
{
    Dram dram(fastDram());
    CacheParams p = tinyCache(1, 2);  // 8 sets x 2 ways of 64B
    Cache cache(p, &dram);
    const unsigned set_stride = 8 * 64;  // same set
    cache.access(0 * set_stride, false, 0);
    cache.access(1 * set_stride, false, 1'000'000);
    // Touch line 0 so line 1 is LRU.
    cache.access(0 * set_stride, false, 2'000'000);
    cache.access(2 * set_stride, false, 3'000'000);
    EXPECT_TRUE(cache.isCached(0));
    EXPECT_FALSE(cache.isCached(set_stride));
    EXPECT_TRUE(cache.isCached(2 * set_stride));
}

TEST(Cache, DirtyVictimWritesBack)
{
    Dram dram(fastDram());
    Cache cache(tinyCache(1, 1), &dram);  // direct mapped, 16 sets
    const unsigned set_stride = 16 * 64;
    cache.access(0, true, 0);                       // dirty
    cache.access(set_stride, false, 1'000'000);     // evicts it
    EXPECT_EQ(cache.stats().get("writebacks"), 1.0);
    EXPECT_EQ(dram.stats().get("writes"), 1.0);
}

TEST(Cache, MshrLimitThrottlesMissStream)
{
    Dram dram(fastDram());
    Cache small(tinyCache(64, 4, /*mshrs=*/2), &dram);
    Dram dram2(fastDram());
    Cache big(tinyCache(64, 4, /*mshrs=*/16), &dram2);

    Tick small_done = 0, big_done = 0;
    for (int i = 0; i < 32; ++i) {
        const Addr a = Addr(i) * 64;
        const Tick t = Tick(i) * 1000;
        small_done = std::max(small_done, small.access(a, false, t));
        big_done = std::max(big_done, big.access(a, false, t));
    }
    // With 2 MSHRs the stream serializes into waves of 2.
    EXPECT_GT(small_done, big_done * 3 / 2);
    EXPECT_GT(small.stats().get("mshr_wait_ticks"), 0.0);
}

TEST(Cache, WayMaskingRestrictsCapacity)
{
    Dram dram(fastDram());
    Cache cache(tinyCache(1, 4), &dram);  // 4 sets x 4 ways
    cache.setActiveWays(2);
    const unsigned set_stride = 4 * 64;
    // Three lines mapping to set 0 with only 2 live ways: one evicts.
    cache.access(0 * set_stride, false, 0);
    cache.access(4 * set_stride, false, 1'000'000);
    cache.access(8 * set_stride, false, 2'000'000);
    int resident = cache.isCached(0) + cache.isCached(4 * set_stride) +
                   cache.isCached(8 * set_stride);
    EXPECT_EQ(resident, 2);
}

TEST(Cache, InvalidateWaysCountsValidAndDirty)
{
    Dram dram(fastDram());
    Cache cache(tinyCache(1, 4), &dram);
    cache.touch(0, true);          // way 0, dirty
    cache.touch(4 * 4 * 64, false);
    const InvalidateResult all = cache.invalidateWays(0, 4);
    EXPECT_EQ(all.valid_lines, 2u);
    EXPECT_EQ(all.dirty_lines, 1u);
    EXPECT_FALSE(cache.isCached(0));
}

TEST(Cache, TouchWarmsWithoutTiming)
{
    Dram dram(fastDram());
    Cache cache(tinyCache(), &dram);
    cache.touch(0x1000);
    EXPECT_TRUE(cache.isCached(0x1000));
    EXPECT_EQ(dram.stats().get("reads"), 0.0);
}


TEST(Cache, PrefetcherConvertsStreamMissesToHits)
{
    Dram dram_a(fastDram()), dram_b(fastDram());
    CacheParams base = tinyCache(64, 4, 8);
    Cache plain(base, &dram_a);
    base.prefetch_lines = 4;
    Cache pf(base, &dram_b);

    // Stream 64 consecutive lines through both.
    for (int i = 0; i < 64; ++i) {
        const Addr a = Addr(i) * 64;
        const Tick t = Tick(i) * 4000;
        plain.access(a, false, t);
        pf.access(a, false, t);
    }
    EXPECT_EQ(plain.stats().get("misses"), 64.0);
    EXPECT_LT(pf.stats().get("misses"), 20.0);
    EXPECT_GT(pf.stats().get("prefetches"), 40.0);
    // Same total fetch traffic: prefetching does not duplicate.
    EXPECT_NEAR(dram_b.stats().get("reads"),
                dram_a.stats().get("reads"), 6.0);
}

TEST(Cache, PrefetchHitStillWaitsForInFlightFill)
{
    Dram dram(fastDram());
    CacheParams p = tinyCache(64, 4, 8);
    p.prefetch_lines = 2;
    Cache cache(p, &dram);
    const Tick miss_done = cache.access(0, false, 0);
    // The prefetched next line is present but its fill is in flight:
    // an immediate demand access completes with the fill, not at hit
    // latency.
    const Tick next_done = cache.access(64, false, 100);
    EXPECT_GT(next_done, Tick{40000});
    EXPECT_LE(next_done, miss_done + 10000);
}

TEST(Cache, EvictionClearsInFlightFillState)
{
    Dram dram(fastDram());
    Cache cache(tinyCache(1, 1), &dram);  // direct mapped, 16 sets
    const unsigned set_stride = 16 * 64;
    // Line A misses at t=0; its fill completes ~50k ticks out.
    cache.access(0, false, 0);
    // Line B maps to the same set and evicts A while A's fill is
    // still in flight. The eviction must drop A's outstanding entry.
    cache.access(set_stride, false, 100);
    // Warm A back in (functional warm-up) and touch it: the access
    // must complete at hit latency, not merge against the stale
    // pre-eviction fill tick.
    cache.touch(0);
    const Tick hit = cache.access(0, false, 200);
    EXPECT_LE(hit, Tick{200 + 10'000});
    EXPECT_EQ(cache.stats().get("mshr_merges"), 0.0);
}

TEST(Cache, InvalidateWaysClearsInFlightFillState)
{
    Dram dram(fastDram());
    CacheParams p = tinyCache(1, 4);  // 4 sets x 4 ways
    p.prefetch_lines = 2;
    Cache cache(p, &dram);
    // A demand miss on line 0 also streams lines 1 and 2; all three
    // fills are in flight.
    cache.access(0, false, 0);
    EXPECT_EQ(cache.stats().get("prefetches"), 2.0);
    // EVE spawn carve-out: every way is invalidated through the
    // way-range API (invalidateAll is not what reconfiguration uses).
    cache.invalidateWays(0, 4);
    // The same demand miss much later must re-prefetch lines 1-2
    // rather than being suppressed by stale outstanding entries.
    cache.access(0, false, 10'000'000);
    EXPECT_EQ(cache.stats().get("prefetches"), 4.0);
    EXPECT_TRUE(cache.isCached(1 * 64));
    EXPECT_TRUE(cache.isCached(2 * 64));
}

TEST(Cache, CarveOutHitDoesNotMergeStaleFill)
{
    Dram dram(fastDram());
    Cache cache(tinyCache(1, 4), &dram);
    // Line 0's fill is in flight when the ways are carved out.
    cache.access(0, false, 0);
    cache.invalidateWays(0, 4);
    // After the engine is freed the line is warmed back in; a demand
    // access must hit at hit latency, not wait for the pre-carve-out
    // fill tick.
    cache.touch(0);
    const Tick hit = cache.access(0, false, 500);
    EXPECT_LE(hit, Tick{500 + 10'000});
    EXPECT_EQ(cache.stats().get("mshr_merges"), 0.0);
}

TEST(Cache, WritebackLeavesAtMissIssue)
{
    // A dirty victim's writeback must not park a future reservation
    // on the DRAM channel (that would stall later demand reads).
    Dram dram(fastDram());
    Cache cache(tinyCache(1, 1), &dram);  // direct mapped, 16 sets
    const unsigned set_stride = 16 * 64;
    cache.access(0, true, 0);  // dirty line
    // Evict it with a read miss at t=1ms; the writeback and the
    // demand read both use the channel near t=1ms.
    const Tick done = cache.access(set_stride, false, 1'000'000);
    // A subsequent unrelated read arriving right after must not be
    // pushed behind a far-future writeback reservation.
    const Tick other = cache.access(2 * set_stride, false, 1'010'000);
    EXPECT_LT(other, done + 200'000);
}

TEST(Hierarchy, MissesPropagateThroughLevels)
{
    HierarchyParams hp;
    MemHierarchy mem(hp);
    mem.l1d().access(0x12340, false, 0);
    EXPECT_EQ(mem.l1d().stats().get("misses"), 1.0);
    EXPECT_EQ(mem.l2().stats().get("misses"), 1.0);
    EXPECT_EQ(mem.llc().stats().get("misses"), 1.0);
    EXPECT_EQ(mem.dram().stats().get("reads"), 1.0);

    // Second access: L1 hit, nothing deeper.
    mem.l1d().access(0x12344, false, 10'000'000);
    EXPECT_EQ(mem.l1d().stats().get("hits"), 1.0);
    EXPECT_EQ(mem.l2().stats().get("reads"), 1.0);
}

TEST(Hierarchy, VectorModeHalvesL2)
{
    HierarchyParams hp;
    hp.l2_vector_mode = true;
    MemHierarchy mem(hp);
    EXPECT_EQ(mem.l2().params().size_bytes, 256u * 1024u);
    EXPECT_EQ(mem.l2().params().assoc, 4u);
}

TEST(Hierarchy, L1HitFasterThanL2Hit)
{
    HierarchyParams hp;
    MemHierarchy mem(hp);
    mem.warmRange(0, 4096);
    const Tick l1 = mem.l1d().access(0, false, 0) - 0;
    // Evict nothing; access via L2 directly to compare.
    const Tick l2 = mem.l2().access(0, false, 0) - 0;
    EXPECT_LT(l1, l2);
}

} // namespace
} // namespace eve
