#include <algorithm>

#include "vector/dv_engine.hh"

#include "common/log.hh"
#include "vector/request_gen.hh"

namespace eve
{

DVSystem::DVSystem(const DVParams& params, MemHierarchy& mem)
    : params(params),
      mem(mem),
      core(params.core, mem),
      pipeSimple(1),
      pipeComplex(1),
      pipeIter(1),
      vmuGen(1),
      statGroup("dv")
{
    statVectorInstrs = statGroup.id("vector_instrs");
    statIssueWait = statGroup.id("issue_wait_ticks");
    statVmuLines = statGroup.id("vmu_lines");
}

void
DVSystem::consume(const Instr& instr)
{
    if (isVectorOp(instr.op))
        consumeVector(instr);
    else
        core.consume(instr);
}

void
DVSystem::consumeVector(const Instr& instr)
{
    if (instr.vl > params.hw_vl && opClass(instr.op) != OpClass::VecCtrl)
        panic("DVSystem: vl %u exceeds hardware vl %u", instr.vl,
              params.hw_vl);

    statGroup.add(statVectorInstrs, 1);
    const ClockDomain& clk = core.clockDomain();
    const Tick commit = core.dispatchVector(instr);

    // In-order issue once sources are ready; memory instructions use
    // their own queue so the VMU can run ahead of compute.
    const bool is_mem = isMemOp(instr.op);
    Tick ready = 0;
    if (isVecLoad(instr.op)) {
        if (opClass(instr.op) == OpClass::VecMemIndex)
            ready = vregReady[instr.src2];  // index register
    } else {
        ready = vregReady[instr.src1];
        if (!instr.usesScalar)
            ready = std::max(ready, vregReady[instr.src2]);
    }
    if (instr.masked || instr.op == Op::VMerge)
        ready = std::max(ready, vregReady[0]);
    Tick& queue = is_mem ? memIssueFree : issueFree;
    const Tick issue = std::max({queue, commit, ready});
    statGroup.add(statIssueWait, double(issue - commit));
    queue = issue + clk.period();
    Tick done = issue + clk.period();

    switch (opClass(instr.op)) {
      case OpClass::VecCtrl:
        if (instr.op == Op::VMfence) {
            done = std::max(done, memLast);
            core.stallCommit(done);
        } else if (instr.op == Op::VMvXS) {
            done = std::max(done, vregReady[instr.src1]) + clk.period();
            core.stallCommit(done);
        }
        break;

      case OpClass::VecAlu: {
        const Tick start =
            pipeSimple.acquire(issue, clk.toTicks(beats(instr.vl)));
        done = start + clk.toTicks(beats(instr.vl) + params.alu_latency);
        break;
      }

      case OpClass::VecMul: {
        const bool div = instr.op == Op::VDiv || instr.op == Op::VDivu ||
                         instr.op == Op::VRem || instr.op == Op::VRemu;
        if (div) {
            const Cycles occ = params.iter_cycles_per_elem * instr.vl /
                               params.lanes * 8;
            const Tick start = pipeIter.acquire(issue, clk.toTicks(occ));
            done = start + clk.toTicks(occ);
        } else {
            const Tick start =
                pipeComplex.acquire(issue, clk.toTicks(beats(instr.vl)));
            done = start +
                   clk.toTicks(beats(instr.vl) + params.mul_latency);
        }
        break;
      }

      case OpClass::VecXe:
      case OpClass::VecRed: {
        // Cross-element / reduction ops run on the iterative pipe.
        const Cycles occ =
            std::max<Cycles>(beats(instr.vl) * 2, 4);
        const Tick start = pipeIter.acquire(issue, clk.toTicks(occ));
        done = start + clk.toTicks(occ);
        break;
      }

      case OpClass::VecMemUnit:
      case OpClass::VecMemStride:
      case OpClass::VecMemIndex: {
        const bool is_load = isVecLoad(instr.op);
        Tick max_done = issue;
        Tick gen = issue;
        std::uint64_t nlines = 0;
        // Stream the request plan straight into the VMU — the plan is
        // consumed once in order, so the buffer round-trip is pure
        // overhead on the hottest loop in the engine.
        forEachRequestLine(
            instr, mem.l2().params().line_bytes, [&](Addr line) {
                // One request generated + translated per cycle.
                gen = vmuGen.acquire(gen, clk.period()) + clk.period();
                const Tick line_done =
                    mem.l2().access(line, !is_load, gen);
                max_done = std::max(max_done, line_done);
                ++nlines;
            });
        statGroup.add(statVmuLines, double(nlines));
        done = is_load ? max_done + clk.period() : gen;
        memLast = std::max(memLast, max_done);
        break;
      }

      default:
        panic("DVSystem: unexpected vector class");
    }

    if (!isVecStore(instr.op) && opClass(instr.op) != OpClass::VecCtrl)
        vregReady[instr.dst] = done;
    engineLast = std::max(engineLast, done);
}

void
DVSystem::finish()
{
    core.finish();
    statGroup.set("cycles",
                  double(finalTick()) / core.clockDomain().period());
}

Tick
DVSystem::finalTick() const
{
    return std::max({core.finalTick(), engineLast, memLast});
}

} // namespace eve
