/**
 * @file
 * O3+IV: an integrated vector unit in the out-of-order core
 * (Table III), loosely following the paper's description of
 * Samsung-M3/SVE-style short-vector units.
 *
 * Hardware vector length 4; vector arithmetic issues out of order on
 * two shared SIMD pipes; vector memory operations are cracked into
 * per-element scalar accesses through the core's LSQ and L1D — the
 * paper's "constant strides and indexed memory operations are
 * decomposed to micro-operations and handled as scalar loads/stores".
 */

#ifndef EVE_VECTOR_IV_ENGINE_HH
#define EVE_VECTOR_IV_ENGINE_HH

#include <array>

#include "cpu/o3_core.hh"
#include "cpu/timing_model.hh"
#include "mem/hierarchy.hh"
#include "sim/resource.hh"

namespace eve
{

/** Configuration of the integrated vector unit. */
struct IVParams
{
    O3CoreParams core;
    unsigned hw_vl = 4;
    unsigned simd_pipes = 2;
    Cycles alu_latency = 2;
    Cycles mul_latency = 4;
    Cycles div_latency_per_elem = 8;
};

/** The O3+IV system. */
class IVSystem : public TimingModel
{
  public:
    IVSystem(const IVParams& params, MemHierarchy& mem);

    void consume(const Instr& instr) override;
    void finish() override;
    Tick finalTick() const override;
    StatGroup& stats() override { return statGroup; }
    double clockNs() const override { return core.clockNs(); }

    unsigned hwVectorLength() const { return params.hw_vl; }

  private:
    void consumeVector(const Instr& instr);

    IVParams params;
    MemHierarchy& mem;
    O3Core core;
    PipelinedUnits simdPipes;
    PipelinedUnits memPipe;
    std::array<Tick, 32> vregReady{};
    Tick engineLast = 0;
    StatGroup statGroup;
    StatGroup::Id statVectorInstrs;
};

} // namespace eve

#endif // EVE_VECTOR_IV_ENGINE_HH
