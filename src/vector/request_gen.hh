/**
 * @file
 * Cacheline request planning for vector memory units.
 *
 * Both the decoupled engine's VMU and EVE's VMU guarantee cache-line
 * alignment of generated requests (Section V-C): a unit-stride access
 * touches contiguous lines, a strided/indexed access touches one line
 * per element unless neighbouring elements share a line. The plan is
 * the ordered list of line addresses the VMU issues.
 */

#ifndef EVE_VECTOR_REQUEST_GEN_HH
#define EVE_VECTOR_REQUEST_GEN_HH

#include <vector>

#include "common/types.hh"
#include "isa/instr.hh"

namespace eve
{

/** Ordered cacheline addresses one vector memory op generates. */
std::vector<Addr> planRequests(const Instr& instr, unsigned line_bytes);

} // namespace eve

#endif // EVE_VECTOR_REQUEST_GEN_HH
