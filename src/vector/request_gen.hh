/**
 * @file
 * Cacheline request planning for vector memory units.
 *
 * Both the decoupled engine's VMU and EVE's VMU guarantee cache-line
 * alignment of generated requests (Section V-C): a unit-stride access
 * touches contiguous lines, a strided/indexed access touches one line
 * per element unless neighbouring elements share a line. The plan is
 * the ordered list of line addresses the VMU issues.
 *
 * The planner comes in three forms, all producing the same sequence:
 * forEachRequestLine() streams each line address to a callback with
 * no intermediate storage; planRequestsInto() fills a caller-owned
 * buffer, which the engines reuse across instructions so the per-
 * instruction vector allocation disappears from the consume() hot
 * loop; planRequests() returns a fresh vector for tests and cold
 * callers.
 */

#ifndef EVE_VECTOR_REQUEST_GEN_HH
#define EVE_VECTOR_REQUEST_GEN_HH

#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "isa/instr.hh"

namespace eve
{

/** Invoke @p fn(Addr) for each cacheline the memory op touches. */
template <typename Fn>
void
forEachRequestLine(const Instr& instr, unsigned line_bytes, Fn&& fn)
{
    const Addr mask = ~Addr(line_bytes - 1);
    switch (opClass(instr.op)) {
      case OpClass::VecMemUnit: {
        const Addr first = instr.addr & mask;
        const Addr last = (instr.addr + Addr(instr.vl) * 4 - 1) & mask;
        for (Addr a = first; a <= last; a += line_bytes)
            fn(a);
        break;
      }
      case OpClass::VecMemStride: {
        Addr prev = ~Addr{0};
        for (std::uint32_t i = 0; i < instr.vl; ++i) {
            const Addr a =
                (instr.addr + Addr(std::int64_t(i) * instr.stride)) &
                mask;
            if (a != prev)
                fn(a);
            prev = a;
        }
        break;
      }
      case OpClass::VecMemIndex: {
        if (!instr.indices)
            panic("planRequests: indexed access without indices");
        Addr prev = ~Addr{0};
        for (std::uint32_t i = 0; i < instr.vl; ++i) {
            const Addr a = (instr.addr + instr.indices[i]) & mask;
            if (a != prev)
                fn(a);
            prev = a;
        }
        break;
      }
      default:
        panic("planRequests: %s is not a vector memory op",
              std::string(opName(instr.op)).c_str());
    }
}

/**
 * Plan into @p out, replacing its contents. The buffer's capacity
 * survives, so a caller reusing one buffer allocates only on the
 * largest plan seen.
 */
void planRequestsInto(const Instr& instr, unsigned line_bytes,
                      std::vector<Addr>& out);

/** Ordered cacheline addresses one vector memory op generates. */
std::vector<Addr> planRequests(const Instr& instr, unsigned line_bytes);

} // namespace eve

#endif // EVE_VECTOR_REQUEST_GEN_HH
