#include <algorithm>

#include "vector/iv_engine.hh"

#include "common/log.hh"

namespace eve
{

IVSystem::IVSystem(const IVParams& params, MemHierarchy& mem)
    : params(params),
      mem(mem),
      core(params.core, mem),
      simdPipes(params.simd_pipes),
      memPipe(1),
      statGroup("iv")
{
    statVectorInstrs = statGroup.id("vector_instrs");
}

void
IVSystem::consume(const Instr& instr)
{
    if (isVectorOp(instr.op))
        consumeVector(instr);
    else
        core.consume(instr);
}

void
IVSystem::consumeVector(const Instr& instr)
{
    if (instr.vl > params.hw_vl && opClass(instr.op) != OpClass::VecCtrl)
        panic("IVSystem: vl %u exceeds hardware vl %u", instr.vl,
              params.hw_vl);

    statGroup.add(statVectorInstrs, 1);
    const ClockDomain& clk = core.clockDomain();
    const Tick slot = core.takeSlot();
    Tick ready = 0;
    if (isVecLoad(instr.op)) {
        if (opClass(instr.op) == OpClass::VecMemIndex)
            ready = vregReady[instr.src2];  // index register
    } else {
        ready = vregReady[instr.src1];
        if (!instr.usesScalar)
            ready = std::max(ready, vregReady[instr.src2]);
    }
    if (instr.masked || instr.op == Op::VMerge)
        ready = std::max(ready, vregReady[0]);
    const Tick issue = std::max(slot, ready);
    Tick done = issue + clk.period();

    switch (opClass(instr.op)) {
      case OpClass::VecCtrl:
        // vsetvl/vmfence resolve in the pipeline.
        break;

      case OpClass::VecAlu:
      case OpClass::VecXe: {
        const Tick start = simdPipes.acquire(issue, clk.period());
        done = start + clk.toTicks(params.alu_latency);
        break;
      }

      case OpClass::VecRed: {
        // Short-VL reduction: serial combine over the elements.
        const Tick start = simdPipes.acquire(issue, clk.period());
        done = start + clk.toTicks(params.alu_latency + instr.vl);
        break;
      }

      case OpClass::VecMul: {
        const Tick start = simdPipes.acquire(issue, clk.period());
        const bool div = instr.op == Op::VDiv || instr.op == Op::VDivu ||
                         instr.op == Op::VRem || instr.op == Op::VRemu;
        done = start +
               clk.toTicks(div ? params.div_latency_per_elem * instr.vl
                               : params.mul_latency);
        break;
      }

      case OpClass::VecMemUnit:
      case OpClass::VecMemStride:
      case OpClass::VecMemIndex: {
        // Cracked into per-element scalar accesses through the LSQ.
        const bool is_load = isVecLoad(instr.op);
        Tick max_done = issue;
        for (std::uint32_t e = 0; e < instr.vl; ++e) {
            Addr addr = instr.addr;
            if (opClass(instr.op) == OpClass::VecMemStride)
                addr += Addr(std::int64_t(e) * instr.stride);
            else if (opClass(instr.op) == OpClass::VecMemIndex)
                addr += instr.indices[e];
            else
                addr += Addr(e) * 4;
            const Tick port = memPipe.acquire(
                issue + Tick(e) * clk.period() / 2, clk.period());
            const Tick elem_done =
                mem.l1d().access(addr, !is_load, port);
            max_done = std::max(max_done, elem_done);
        }
        done = is_load ? max_done : issue + clk.period();
        engineLast = std::max(engineLast, max_done);
        break;
      }

      default:
        panic("IVSystem: unexpected vector class for %s",
              std::string(opName(instr.op)).c_str());
    }

    if (isVectorOp(instr.op) && !isVecStore(instr.op))
        vregReady[instr.dst] = done;
    core.recordCompletion(done);
    engineLast = std::max(engineLast, done);
}

void
IVSystem::finish()
{
    core.finish();
    statGroup.set("cycles", double(finalTick()) / core.clockDomain().period());
}

Tick
IVSystem::finalTick() const
{
    return std::max(core.finalTick(), engineLast);
}

} // namespace eve
