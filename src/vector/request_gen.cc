#include "vector/request_gen.hh"

namespace eve
{

void
planRequestsInto(const Instr& instr, unsigned line_bytes,
                 std::vector<Addr>& out)
{
    out.clear();
    forEachRequestLine(instr, line_bytes,
                       [&out](Addr a) { out.push_back(a); });
}

std::vector<Addr>
planRequests(const Instr& instr, unsigned line_bytes)
{
    std::vector<Addr> lines;
    planRequestsInto(instr, line_bytes, lines);
    return lines;
}

} // namespace eve
