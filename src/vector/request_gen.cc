#include "vector/request_gen.hh"

#include "common/log.hh"

namespace eve
{

std::vector<Addr>
planRequests(const Instr& instr, unsigned line_bytes)
{
    std::vector<Addr> lines;
    const Addr mask = ~Addr(line_bytes - 1);
    switch (opClass(instr.op)) {
      case OpClass::VecMemUnit: {
        const Addr first = instr.addr & mask;
        const Addr last = (instr.addr + Addr(instr.vl) * 4 - 1) & mask;
        for (Addr a = first; a <= last; a += line_bytes)
            lines.push_back(a);
        break;
      }
      case OpClass::VecMemStride: {
        Addr prev = ~Addr{0};
        for (std::uint32_t i = 0; i < instr.vl; ++i) {
            const Addr a =
                (instr.addr + Addr(std::int64_t(i) * instr.stride)) &
                mask;
            if (a != prev)
                lines.push_back(a);
            prev = a;
        }
        break;
      }
      case OpClass::VecMemIndex: {
        if (!instr.indices)
            panic("planRequests: indexed access without indices");
        Addr prev = ~Addr{0};
        for (std::uint32_t i = 0; i < instr.vl; ++i) {
            const Addr a = (instr.addr + instr.indices[i]) & mask;
            if (a != prev)
                lines.push_back(a);
            prev = a;
        }
        break;
      }
      default:
        panic("planRequests: %s is not a vector memory op",
              std::string(opName(instr.op)).c_str());
    }
    return lines;
}

} // namespace eve
