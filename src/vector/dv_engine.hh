/**
 * @file
 * O3+DV: a decoupled vector engine loosely based on Tarantula
 * (Table III and Figure 5 of the paper).
 *
 * Vector instructions are handed to the engine when they commit in
 * the control processor; the engine issues them in order to four
 * execution pipes (simple integer, pipelined complex integer,
 * iterative complex/cross-element, memory). Sixteen lanes process a
 * 64-element vector in four beats. The VMU generates cacheline
 * requests (one per cycle, one-cycle translation that always hits,
 * per Section VII-A) against the private L2.
 */

#ifndef EVE_VECTOR_DV_ENGINE_HH
#define EVE_VECTOR_DV_ENGINE_HH

#include <array>
#include <vector>

#include "cpu/o3_core.hh"
#include "cpu/timing_model.hh"
#include "mem/hierarchy.hh"
#include "sim/resource.hh"

namespace eve
{

/** Configuration of the decoupled vector engine. */
struct DVParams
{
    O3CoreParams core;
    unsigned hw_vl = 64;
    unsigned lanes = 16;
    Cycles alu_latency = 2;
    Cycles mul_latency = 6;
    Cycles iter_cycles_per_elem = 4;  ///< div and cross-element ops
};

/** The O3+DV system. */
class DVSystem : public TimingModel
{
  public:
    DVSystem(const DVParams& params, MemHierarchy& mem);

    void consume(const Instr& instr) override;
    void finish() override;
    Tick finalTick() const override;
    StatGroup& stats() override { return statGroup; }
    double clockNs() const override { return core.clockNs(); }

    unsigned hwVectorLength() const { return params.hw_vl; }

  private:
    void consumeVector(const Instr& instr);
    Cycles beats(std::uint32_t vl) const
    {
        return (vl + params.lanes - 1) / params.lanes;
    }

    DVParams params;
    MemHierarchy& mem;
    O3Core core;

    // Decoupled access/execute: memory instructions issue through
    // their own in-order queue and run ahead of compute (the whole
    // point of a decoupled engine); dependencies are still honoured
    // through the vector-register ready times.
    Tick issueFree = 0;     ///< compute-side in-order issue point
    Tick memIssueFree = 0;  ///< memory-side in-order issue point
    PipelinedUnits pipeSimple;
    PipelinedUnits pipeComplex;
    PipelinedUnits pipeIter;
    PipelinedUnits vmuGen;  ///< request generation + translation
    std::array<Tick, 32> vregReady{};
    Tick memLast = 0;
    Tick engineLast = 0;
    StatGroup statGroup;
    StatGroup::Id statVectorInstrs, statIssueWait, statVmuLines;
};

} // namespace eve

#endif // EVE_VECTOR_DV_ENGINE_HH
