#include "workloads/streamcluster.hh"

#include <algorithm>
#include <cstdlib>

#include "common/rng.hh"

namespace eve
{

StreamclusterWorkload::StreamclusterWorkload(std::size_t npoints,
                                             std::size_t nfeat,
                                             std::size_t ncand)
    : npoints(npoints), nfeat(nfeat), ncand(ncand)
{
}

std::uint32_t
StreamclusterWorkload::distance(std::size_t p, std::size_t q) const
{
    std::uint32_t acc = 0;
    for (std::size_t f = 0; f < nfeat; ++f) {
        const std::int32_t diff =
            feat[p * nfeat + f] - feat[q * nfeat + f];
        if (f % 4 == 0)
            acc += std::uint32_t(diff) * std::uint32_t(diff);
        else
            acc += std::uint32_t(std::abs(diff));
    }
    return acc;
}

void
StreamclusterWorkload::init()
{
    mem.resize((npoints * nfeat + 3 * npoints + ncand) * 4 + 64);
    Rng rng(0x57c1);
    feat.resize(npoints * nfeat);
    for (std::size_t i = 0; i < feat.size(); ++i) {
        feat[i] = std::int32_t(rng.below(256));
        mem.store32(ptAddr(i), feat[i]);
    }
    centerPt.resize(kCenters);
    for (std::size_t c = 0; c < kCenters; ++c)
        centerPt[c] = rng.below(npoints);
    candPt.resize(ncand);
    for (std::size_t c = 0; c < ncand; ++c)
        candPt[c] = rng.below(npoints);
    assign.resize(npoints);
    for (std::size_t p = 0; p < npoints; ++p) {
        assign[p] = std::int32_t(rng.below(kCenters));
        mem.store32(assignAddr(p), assign[p]);
    }

    refCost.resize(npoints);
    refAssign.resize(npoints);
    refSavings.assign(ncand, 0);
    for (std::size_t p = 0; p < npoints; ++p) {
        std::uint32_t best =
            distance(p, centerPt[std::size_t(assign[p])]);
        std::int32_t best_id = assign[p];
        for (std::size_t c = 0; c < ncand; ++c) {
            const std::uint32_t dc = distance(p, candPt[c]);
            if (std::int32_t(dc) < std::int32_t(best)) {
                refSavings[c] = std::int32_t(
                    std::uint32_t(refSavings[c]) + (best - dc));
                best = dc;
                best_id = std::int32_t(kCenters + c);
            }
        }
        refCost[p] = std::int32_t(best);
        refAssign[p] = best_id;
    }
}

void
StreamclusterWorkload::emitScalar(InstrSink& sink)
{
    Emit e(sink);
    for (std::size_t p = 0; p < npoints; ++p) {
        const std::size_t home = centerPt[std::size_t(assign[p])];
        e.load(assignAddr(p), 5, 2);
        for (std::size_t f = 0; f < nfeat; ++f) {
            e.load(ptAddr(p * nfeat + f), 6, 2);
            e.load(ptAddr(home * nfeat + f), 7, 5);
            e.alu(8, 6, 7);  // diff
            if (f % 4 == 0)
                e.mul(8, 8, 8);
            e.alu(9, 9, 8);  // accumulate
            e.alu(1, 1, 0);
            e.branch(1);
        }
        for (std::size_t c = 0; c < ncand; ++c) {
            for (std::size_t f = 0; f < nfeat; ++f) {
                e.load(ptAddr(p * nfeat + f), 6, 2);
                e.load(ptAddr(candPt[c] * nfeat + f), 7, 3);
                e.alu(8, 6, 7);
                if (f % 4 == 0)
                    e.mul(8, 8, 8);
                e.alu(10, 10, 8);
                e.alu(1, 1, 0);
                e.branch(1);
            }
            e.branch(10);     // closer than the running best?
            e.alu(11, 9, 10); // saving
            e.alu(9, 10, 0);  // adopt candidate cost
        }
        e.store(costAddr(p), 9, 4);
        e.store(newAssignAddr(p), 11, 4);
        e.alu(2, 2, 0);
        e.alu(1, 1, 0);
        e.branch(1);
    }
    for (std::size_t c = 0; c < ncand; ++c)
        e.store(savingsAddr(c), 11, 4);
}

void
StreamclusterWorkload::emitVector(InstrSink& sink, std::uint32_t hw_vl)
{
    Emit e(sink);
    std::vector<std::uint32_t> offsets;
    // One savings accumulator register per candidate (v24..), summed
    // across strips via masked reductions.
    e.setVl(1);
    for (std::size_t c = 0; c < ncand; ++c)
        e.vx(Op::VMvVX, unsigned(24 + c), 0, 0, 1);
    for (std::size_t pb = 0; pb < npoints; pb += hw_vl) {
        const std::uint32_t vl =
            std::uint32_t(std::min<std::size_t>(hw_vl, npoints - pb));
        e.setVl(vl);
        e.vload(10, assignAddr(pb), vl);
        e.vx(Op::VMul, 11, 10, std::int64_t(nfeat) * 4, vl);
        e.vx(Op::VMvVX, 13, 0, 0, vl);  // assigned-center distance
        for (std::size_t f = 0; f < nfeat; ++f) {
            e.vloadStrided(12, ptAddr(pb * nfeat + f),
                           std::int64_t(nfeat) * 4, vl);
            offsets.resize(vl);
            for (std::uint32_t i = 0; i < vl; ++i) {
                const std::size_t home =
                    centerPt[std::size_t(assign[pb + i])];
                offsets[i] = std::uint32_t((home * nfeat + f) * 4);
            }
            e.vloadIndexed(14, ptAddr(0), offsets, 11);
            e.vv(Op::VSub, 15, 12, 14, vl);
            if (f % 4 == 0) {
                e.vv(Op::VMacc, 13, 15, 15, vl);
            } else {
                e.vx(Op::VRsub, 16, 15, 0, vl);
                e.vv(Op::VMax, 15, 15, 16, vl);  // |diff|
                e.vv(Op::VAdd, 13, 13, 15, vl);
            }
            e.alu(1, 1, 0);
            e.branch(1);
        }
        e.vx(Op::VAdd, 20, 13, 0, vl);  // running best distance
        e.vx(Op::VAdd, 21, 10, 0, vl);  // running best center id
        for (std::size_t c = 0; c < ncand; ++c) {
            e.vx(Op::VMvVX, 22, 0, 0, vl);  // candidate distance
            for (std::size_t f = 0; f < nfeat; ++f) {
                e.vloadStrided(12, ptAddr(pb * nfeat + f),
                               std::int64_t(nfeat) * 4, vl);
                e.vx(Op::VSub, 15, 12,
                     feat[candPt[c] * nfeat + f], vl);
                if (f % 4 == 0) {
                    e.vv(Op::VMacc, 22, 15, 15, vl);
                } else {
                    e.vx(Op::VRsub, 16, 15, 0, vl);
                    e.vv(Op::VMax, 15, 15, 16, vl);
                    e.vv(Op::VAdd, 22, 22, 15, vl);
                }
                e.alu(1, 1, 0);
                e.branch(1);
            }
            e.vv(Op::VMslt, 0, 22, 20, vl);  // closer mask
            e.vv(Op::VSub, 23, 20, 22, vl);  // saving where closer
            e.vv(Op::VRedSum, unsigned(24 + c), 23,
                 unsigned(24 + c), vl, true);
            e.vx(Op::VMvVX, 28, 0, std::int64_t(kCenters + c), vl);
            e.vv(Op::VMerge, 21, 28, 21, vl);
            e.vv(Op::VMerge, 20, 22, 20, vl);
            e.branch(9);
        }
        e.vstore(20, costAddr(pb), vl);
        e.vstore(21, newAssignAddr(pb), vl);
        e.stripOverhead(2);
    }
    e.setVl(1);
    for (std::size_t c = 0; c < ncand; ++c) {
        e.vstore(unsigned(24 + c), savingsAddr(c), 1);
        e.stripOverhead(1);
    }
}

std::uint64_t
StreamclusterWorkload::verify() const
{
    std::uint64_t bad = 0;
    for (std::size_t p = 0; p < npoints; ++p) {
        if (mem.load32(costAddr(p)) != refCost[p])
            ++bad;
        if (mem.load32(newAssignAddr(p)) != refAssign[p])
            ++bad;
    }
    for (std::size_t c = 0; c < ncand; ++c)
        if (mem.load32(savingsAddr(c)) != refSavings[c])
            ++bad;
    return bad;
}

} // namespace eve
