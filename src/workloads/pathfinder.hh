/**
 * @file
 * pathfinder (Rodinia): dynamic-programming grid traversal. Each row
 * update is dst[j] = wall[r][j] + min(src[j-1], src[j], src[j+1]);
 * the vector version uses slides for the strip boundaries and
 * predication, making it both memory-streaming and
 * transpose-sensitive on EVE (Section VII-B).
 */

#ifndef EVE_WORKLOADS_PATHFINDER_HH
#define EVE_WORKLOADS_PATHFINDER_HH

#include "workloads/workload.hh"

namespace eve
{

/** The pathfinder kernel. */
class PathfinderWorkload : public Workload
{
  public:
    explicit PathfinderWorkload(std::size_t cols = 262144,
                                std::size_t rows = 10);

    std::string name() const override { return "pathfinder"; }
    std::string suite() const override { return "rodinia"; }
    void init() override;
    void emitScalar(InstrSink& sink) override;
    void emitVector(InstrSink& sink, std::uint32_t hw_vl) override;
    std::uint64_t verify() const override;

  private:
    Addr wallAddr(std::size_t r, std::size_t j) const
    {
        return Addr(r * cols + j) * 4;
    }
    Addr bufAddr(unsigned which, std::size_t j) const
    {
        return Addr(rows * cols + which * cols + j) * 4;
    }

    std::size_t cols;
    std::size_t rows;
    std::vector<std::int32_t> wall;           ///< row-major costs
    std::vector<std::int32_t> refResult;      ///< final DP row
};

} // namespace eve

#endif // EVE_WORKLOADS_PATHFINDER_HH
