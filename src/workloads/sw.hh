/**
 * @file
 * sw: Smith-Waterman local alignment (the paper's genomics workload).
 * Anti-diagonal vectorization: cells of one anti-diagonal are
 * independent, with the two previous diagonals as inputs. Query
 * elements load unit-stride; the database sequence loads with a
 * negative stride (reversed along the diagonal); slides provide the
 * i-1 neighbours; the substitution score is a compare + predicated
 * merge.
 */

#ifndef EVE_WORKLOADS_SW_HH
#define EVE_WORKLOADS_SW_HH

#include "workloads/workload.hh"

namespace eve
{

/** The Smith-Waterman kernel. */
class SwWorkload : public Workload
{
  public:
    explicit SwWorkload(std::size_t len = 768);

    std::string name() const override { return "sw"; }
    std::string suite() const override { return "genomics"; }
    void init() override;
    void emitScalar(InstrSink& sink) override;
    void emitVector(InstrSink& sink, std::uint32_t hw_vl) override;
    std::uint64_t verify() const override;

  private:
    // Sequences (as int32 symbols), three rotating diagonal buffers
    // of len+2 entries, and a one-word best-score output.
    Addr aAddr(std::size_t i) const { return Addr(i) * 4; }
    Addr bAddr(std::size_t j) const { return Addr(len + j) * 4; }
    Addr diagAddr(unsigned which, std::size_t i) const
    {
        return Addr(2 * len + which * (len + 2) + i) * 4;
    }
    Addr scoreAddr() const { return Addr(2 * len + 3 * (len + 2)) * 4; }

    static constexpr std::int32_t kMatch = 2;
    static constexpr std::int32_t kMismatch = -1;
    static constexpr std::int32_t kGap = 1;

    std::size_t len;
    std::int32_t refScore = 0;
    std::vector<std::int32_t> refLastDiag;
};

} // namespace eve

#endif // EVE_WORKLOADS_SW_HH
