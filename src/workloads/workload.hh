/**
 * @file
 * Workload framework: each benchmark kernel owns a flat byte memory,
 * computes a plain-C++ reference, and emits two dynamic instruction
 * streams — the scalar version and the vector version (strip-mined
 * at the consuming system's hardware vector length).
 *
 * The emitted vector stream is also *executed* (by attaching a
 * VecMachine to the sink), so every timing run doubles as a
 * functional check: verify() compares the memory contents produced by
 * the vector program against the reference.
 *
 * Generators never depend on values computed by the vector program;
 * where data-dependent addresses are needed (k-means gathers), they
 * read the precomputed reference state, exactly like a trace-driven
 * simulator replaying a recorded execution.
 */

#ifndef EVE_WORKLOADS_WORKLOAD_HH
#define EVE_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/functional.hh"
#include "isa/instr.hh"

namespace eve
{

/** Emission helper bound to one sink. */
class Emit
{
  public:
    explicit Emit(InstrSink& sink) : sink(sink) {}

    // ----- scalar ------------------------------------------------------

    void
    alu(unsigned dst = 1, unsigned s1 = 1, unsigned s2 = 0)
    {
        Instr i;
        i.op = Op::SAlu;
        i.dst = std::uint8_t(dst);
        i.src1 = std::uint8_t(s1);
        i.src2 = std::uint8_t(s2);
        sink.consume(i);
    }

    void
    mul(unsigned dst, unsigned s1, unsigned s2)
    {
        Instr i;
        i.op = Op::SMul;
        i.dst = std::uint8_t(dst);
        i.src1 = std::uint8_t(s1);
        i.src2 = std::uint8_t(s2);
        sink.consume(i);
    }

    void
    load(Addr addr, unsigned dst, unsigned addr_reg = 2)
    {
        Instr i;
        i.op = Op::SLoad;
        i.dst = std::uint8_t(dst);
        i.src1 = std::uint8_t(addr_reg);
        i.addr = addr;
        sink.consume(i);
    }

    void
    store(Addr addr, unsigned src, unsigned addr_reg = 2)
    {
        Instr i;
        i.op = Op::SStore;
        i.src1 = std::uint8_t(addr_reg);
        i.src2 = std::uint8_t(src);
        i.addr = addr;
        sink.consume(i);
    }

    void
    branch(unsigned cond_reg = 1)
    {
        Instr i;
        i.op = Op::SBranch;
        i.src1 = std::uint8_t(cond_reg);
        sink.consume(i);
    }

    // ----- vector ------------------------------------------------------

    void
    setVl(std::uint32_t vl)
    {
        Instr i;
        i.op = Op::VSetVl;
        i.imm = vl;
        i.vl = vl;
        sink.consume(i);
    }

    void
    vv(Op op, unsigned dst, unsigned s1, unsigned s2, std::uint32_t vl,
       bool masked = false)
    {
        Instr i;
        i.op = op;
        i.dst = std::uint8_t(dst);
        i.src1 = std::uint8_t(s1);
        i.src2 = std::uint8_t(s2);
        i.vl = vl;
        i.masked = masked;
        sink.consume(i);
    }

    void
    vx(Op op, unsigned dst, unsigned s1, std::int64_t scalar,
       std::uint32_t vl, bool masked = false)
    {
        Instr i;
        i.op = op;
        i.dst = std::uint8_t(dst);
        i.src1 = std::uint8_t(s1);
        i.usesScalar = true;
        i.imm = scalar;
        i.vl = vl;
        i.masked = masked;
        sink.consume(i);
    }

    void
    vload(unsigned dst, Addr addr, std::uint32_t vl, bool masked = false)
    {
        Instr i;
        i.op = Op::VLoad;
        i.dst = std::uint8_t(dst);
        i.addr = addr;
        i.vl = vl;
        i.masked = masked;
        sink.consume(i);
    }

    void
    vstore(unsigned src, Addr addr, std::uint32_t vl, bool masked = false)
    {
        Instr i;
        i.op = Op::VStore;
        i.src1 = std::uint8_t(src);
        i.addr = addr;
        i.vl = vl;
        i.masked = masked;
        sink.consume(i);
    }

    void
    vloadStrided(unsigned dst, Addr addr, std::int64_t stride,
                 std::uint32_t vl)
    {
        Instr i;
        i.op = Op::VLoadStrided;
        i.dst = std::uint8_t(dst);
        i.addr = addr;
        i.stride = stride;
        i.vl = vl;
        sink.consume(i);
    }

    void
    vstoreStrided(unsigned src, Addr addr, std::int64_t stride,
                  std::uint32_t vl)
    {
        Instr i;
        i.op = Op::VStoreStrided;
        i.src1 = std::uint8_t(src);
        i.addr = addr;
        i.stride = stride;
        i.vl = vl;
        sink.consume(i);
    }

    /** Indexed load; @p offsets must outlive the call. */
    void
    vloadIndexed(unsigned dst, Addr addr,
                 const std::vector<std::uint32_t>& offsets,
                 unsigned idx_reg, bool masked = false)
    {
        Instr i;
        i.op = Op::VLoadIndexed;
        i.dst = std::uint8_t(dst);
        i.src2 = std::uint8_t(idx_reg);
        i.addr = addr;
        i.vl = std::uint32_t(offsets.size());
        i.indices = offsets.data();
        i.masked = masked;
        sink.consume(i);
    }

    void
    vstoreIndexed(unsigned src, Addr addr,
                  const std::vector<std::uint32_t>& offsets,
                  unsigned idx_reg, bool masked = false)
    {
        Instr i;
        i.op = Op::VStoreIndexed;
        i.src1 = std::uint8_t(src);
        i.src2 = std::uint8_t(idx_reg);
        i.addr = addr;
        i.vl = std::uint32_t(offsets.size());
        i.indices = offsets.data();
        i.masked = masked;
        sink.consume(i);
    }

    /** Typical strip bookkeeping: pointer bumps + loop branch. */
    void
    stripOverhead(unsigned pointer_bumps)
    {
        for (unsigned i = 0; i < pointer_bumps; ++i)
            alu(2 + i, 2 + i, 0);
        alu(1, 1, 0);  // counter
        branch(1);
    }

  private:
    InstrSink& sink;
};

/** One benchmark kernel. */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** Suite tag: kernel / rodinia / rivec / genomics (Table IV). */
    virtual std::string suite() const = 0;

    /** Allocate memory, fill deterministic inputs, compute reference. */
    virtual void init() = 0;

    /** Emit the scalar version of the region of interest. */
    virtual void emitScalar(InstrSink& sink) = 0;

    /** Emit the vector version strip-mined at @p hw_vl elements. */
    virtual void emitVector(InstrSink& sink, std::uint32_t hw_vl) = 0;

    /**
     * Compare vector-program output in memory with the reference.
     * @return number of mismatching words (0 = pass).
     */
    virtual std::uint64_t verify() const = 0;

    ByteMem& memory() { return mem; }
    const ByteMem& memory() const { return mem; }

  protected:
    ByteMem mem;
};

/** Instantiate every paper workload (optionally scaled down). */
std::vector<std::unique_ptr<Workload>> makeAllWorkloads(bool small);

/** Instantiate one workload by name (nullptr if unknown). */
std::unique_ptr<Workload> makeWorkload(const std::string& name,
                                       bool small);

/**
 * Instantiate one workload at a named reproducible scale: "small",
 * "full", or "paper" (the paper's input sizes — today that means
 * mmult at 1024 x 1024 x 1024; other workloads' full inputs already
 * match the paper's). nullptr on an unknown name *or* scale, so the
 * distributed protocol's rebuild path refuses scales this binary
 * cannot reproduce.
 */
std::unique_ptr<Workload> makeWorkloadScaled(const std::string& name,
                                             const std::string& scale);

} // namespace eve

#endif // EVE_WORKLOADS_WORKLOAD_HH
