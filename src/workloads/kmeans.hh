/**
 * @file
 * k-means (Rodinia, integer variant): assignment of points to the
 * nearest centroid plus a centroid update, iterated a fixed number
 * of times. Vectorized over points: feature columns load with a
 * constant stride (the points are row-major), the nearest-centroid
 * search is predicated compare/merge, a gather samples the assigned
 * centroid (indexed load), and the update phase uses masked
 * reductions through the VRU.
 */

#ifndef EVE_WORKLOADS_KMEANS_HH
#define EVE_WORKLOADS_KMEANS_HH

#include "workloads/workload.hh"

namespace eve
{

/** The k-means kernel. */
class KmeansWorkload : public Workload
{
  public:
    explicit KmeansWorkload(std::size_t npoints = 16384,
                            std::size_t nfeat = 34, unsigned k = 5,
                            unsigned iters = 3);

    std::string name() const override { return "k-means"; }
    std::string suite() const override { return "rodinia"; }
    void init() override;
    void emitScalar(InstrSink& sink) override;
    void emitVector(InstrSink& sink, std::uint32_t hw_vl) override;
    std::uint64_t verify() const override;

  private:
    Addr pointAddr(std::size_t p, std::size_t f) const
    {
        return Addr(p * nfeat + f) * 4;
    }
    Addr centroidAddr(unsigned c, std::size_t f) const
    {
        return Addr(npoints * nfeat + c * nfeat + f) * 4;
    }
    Addr assignAddr(std::size_t p) const
    {
        return Addr(npoints * nfeat + k * nfeat + p) * 4;
    }
    Addr distAddr(std::size_t p) const
    {
        return Addr(npoints * nfeat + k * nfeat + npoints + p) * 4;
    }

    /** Distance with the exact wrapping arithmetic of the program. */
    std::int32_t distance(std::size_t p, const std::int32_t* centroid)
        const;

    std::size_t npoints;
    std::size_t nfeat;
    unsigned k;
    unsigned iters;
    std::vector<std::int32_t> points;
    /** Centroid snapshot entering each iteration. */
    std::vector<std::vector<std::int32_t>> centroidIter;
    std::vector<std::int32_t> refAssign;
    std::vector<std::int32_t> refDist;
};

} // namespace eve

#endif // EVE_WORKLOADS_KMEANS_HH
