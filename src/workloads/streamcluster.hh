/**
 * @file
 * streamcluster (RiVEC): the gather-heavy distance kernel from the
 * streaming k-median clusterer. Every point evaluates its distance
 * to its currently-assigned center — whose coordinates live wherever
 * that center's point sits, so each feature is a vloadIndexed gather
 * keyed by the per-point assignment — then tests a handful of
 * candidate centers for a cheaper assignment, accumulating the
 * masked "cost saving" each candidate would realize (the quantity
 * streamcluster's gain() reduces) and tracking the running best via
 * VMslt/VMerge.
 *
 * The assignment gathers replay the precomputed reference state
 * (trace-driven idiom, exactly like k-means); candidate-center
 * coordinates are generation-time constants broadcast as vx scalars.
 */

#ifndef EVE_WORKLOADS_STREAMCLUSTER_HH
#define EVE_WORKLOADS_STREAMCLUSTER_HH

#include "workloads/workload.hh"

namespace eve
{

class StreamclusterWorkload : public Workload
{
  public:
    StreamclusterWorkload(std::size_t npoints = 32768,
                          std::size_t nfeat = 16,
                          std::size_t ncand = 4);

    std::string name() const override { return "streamcluster"; }
    std::string suite() const override { return "rivec"; }
    void init() override;
    void emitScalar(InstrSink& sink) override;
    void emitVector(InstrSink& sink, std::uint32_t hw_vl) override;
    std::uint64_t verify() const override;

  private:
    Addr ptAddr(std::size_t flat) const { return Addr(flat) * 4; }
    Addr assignAddr(std::size_t p) const
    {
        return Addr(npoints * nfeat + p) * 4;
    }
    Addr costAddr(std::size_t p) const
    {
        return Addr(npoints * nfeat + npoints + p) * 4;
    }
    Addr newAssignAddr(std::size_t p) const
    {
        return Addr(npoints * nfeat + 2 * npoints + p) * 4;
    }
    Addr savingsAddr(std::size_t c) const
    {
        return Addr(npoints * nfeat + 3 * npoints + c) * 4;
    }

    /** Mixed metric: squared diff every 4th feature, |diff| else. */
    std::uint32_t distance(std::size_t p, std::size_t q) const;

    static constexpr std::size_t kCenters = 4;

    std::size_t npoints;
    std::size_t nfeat;
    std::size_t ncand;
    std::vector<std::int32_t> feat;     ///< point features (row-major)
    std::vector<std::size_t> centerPt;  ///< center c -> its point index
    std::vector<std::size_t> candPt;    ///< candidate c -> point index
    std::vector<std::int32_t> assign;   ///< initial assignment (input)
    std::vector<std::int32_t> refCost;
    std::vector<std::int32_t> refAssign;
    std::vector<std::int32_t> refSavings;
};

} // namespace eve

#endif // EVE_WORKLOADS_STREAMCLUSTER_HH
