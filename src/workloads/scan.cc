#include "workloads/scan.hh"

#include "common/bits.hh"
#include "common/rng.hh"

namespace eve
{

ScanWorkload::ScanWorkload(std::size_t n) : n(n)
{
}

void
ScanWorkload::init()
{
    mem.resize(2 * n * 4 + 64);
    Rng rng(0x5ca9);
    ref.resize(n);
    std::uint32_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::int32_t v = std::int32_t(rng.range(-100, 100));
        mem.store32(inAddr(i), v);
        acc += std::uint32_t(v);
        ref[i] = std::int32_t(acc);
    }
}

void
ScanWorkload::emitScalar(InstrSink& sink)
{
    Emit e(sink);
    for (std::size_t i = 0; i < n; ++i) {
        e.load(inAddr(i), 5, 2);
        e.alu(6, 6, 5);  // running sum
        e.store(outAddr(i), 6, 3);
        e.alu(1, 1, 0);
        e.branch(1);
    }
}

void
ScanWorkload::emitVector(InstrSink& sink, std::uint32_t hw_vl)
{
    Emit e(sink);
    bool have_carry = false;
    for (std::size_t ib = 0; ib < n; ib += hw_vl) {
        const std::uint32_t vl =
            std::uint32_t(std::min<std::size_t>(hw_vl, n - ib));
        e.setVl(vl);
        e.vload(1, inAddr(ib), vl);
        // Hillis-Steele in-strip inclusive scan: log2(vl) rounds of
        // slide-up + add (the slid-in gap holds zeros, so the add is
        // unconditional).
        for (std::uint32_t d = 1; d < vl; d *= 2) {
            e.vx(Op::VMvVX, 2, 0, 0, vl);
            e.vx(Op::VSlideUp, 2, 1, std::int64_t(d), vl);
            e.vv(Op::VAdd, 1, 1, 2, vl);
        }
        // Carry the running total across strips.
        if (have_carry)
            e.vv(Op::VAdd, 1, 1, 20, vl);
        e.vstore(1, outAddr(ib), vl);
        // Broadcast the strip total into the carry register.
        e.vx(Op::VRgather, 20, 1, std::int64_t(vl - 1), vl);
        have_carry = true;
        e.stripOverhead(2);
    }
}

std::uint64_t
ScanWorkload::verify() const
{
    std::uint64_t bad = 0;
    for (std::size_t i = 0; i < n; ++i)
        if (mem.load32(outAddr(i)) != ref[i])
            ++bad;
    return bad;
}

} // namespace eve
