#include "workloads/sw.hh"

#include <algorithm>

#include "common/rng.hh"

namespace eve
{

SwWorkload::SwWorkload(std::size_t len) : len(len)
{
}

void
SwWorkload::init()
{
    mem.resize((2 * len + 3 * (len + 2) + 2) * 4 + 64);
    Rng rng(0x5a5a);
    std::vector<std::int32_t> a(len + 1), b(len + 1);
    for (std::size_t i = 1; i <= len; ++i) {
        a[i] = std::int32_t(rng.below(4));
        b[i] = std::int32_t(rng.below(4));
        mem.store32(aAddr(i - 1), a[i]);
        mem.store32(bAddr(i - 1), b[i]);
    }
    // Zero the diagonal buffers and score slot.
    for (unsigned w = 0; w < 3; ++w)
        for (std::size_t i = 0; i < len + 2; ++i)
            mem.store32(diagAddr(w, i), 0);
    mem.store32(scoreAddr(), 0);

    // Reference: full DP.
    std::vector<std::int32_t> prev(len + 1, 0), cur(len + 1, 0);
    refScore = 0;
    std::vector<std::int32_t> diag_n(len + 1, 0);
    for (std::size_t i = 1; i <= len; ++i) {
        std::int32_t diag_prev = 0;  // H(i-1, 0)
        for (std::size_t j = 1; j <= len; ++j) {
            const std::int32_t sub =
                a[i] == b[j] ? kMatch : kMismatch;
            std::int32_t h = std::max(
                {0, diag_prev + sub, prev[j] - kGap, cur[j - 1] - kGap});
            diag_prev = prev[j];
            cur[j] = h;
            refScore = std::max(refScore, h);
            if (i + j == 2 * len)
                diag_n[i] = h;  // only (len, len)
        }
        prev.swap(cur);
        cur[0] = 0;
    }
    refLastDiag = diag_n;
}

void
SwWorkload::emitScalar(InstrSink& sink)
{
    Emit e(sink);
    for (std::size_t i = 1; i <= len; ++i) {
        e.load(aAddr(i - 1), 5, 2);
        const unsigned prev_buf = (i - 1) & 1;
        const unsigned cur_buf = i & 1;
        for (std::size_t j = 1; j <= len; ++j) {
            e.load(bAddr(j - 1), 6, 3);
            e.alu(7, 5, 6);   // compare -> substitution score
            e.load(diagAddr(prev_buf, j - 1), 8, 2);
            e.load(diagAddr(prev_buf, j), 9, 2);
            e.alu(10, 8, 7);  // diag + sub
            e.alu(9, 9, 0);   // up - gap
            e.alu(11, 11, 0); // left - gap (kept in register)
            e.alu(10, 10, 9); // max
            e.alu(10, 10, 11);
            e.alu(10, 10, 0); // max with 0
            e.store(diagAddr(cur_buf, j), 10, 4);
            e.alu(1, 1, 0);
            e.branch(1);
        }
    }
}

void
SwWorkload::emitVector(InstrSink& sink, std::uint32_t hw_vl)
{
    Emit e(sink);
    const std::size_t n = len;
    const std::uint32_t init_vl =
        std::uint32_t(std::min<std::size_t>(hw_vl, n));
    // Persistent registers: v10 = match, v11 = mismatch, v12 = best.
    e.setVl(init_vl);
    e.vx(Op::VMvVX, 10, 0, kMatch, init_vl);
    e.vx(Op::VMvVX, 11, 0, kMismatch, init_vl);
    e.vx(Op::VMvVX, 12, 0, 0, init_vl);

    for (std::size_t d = 2; d <= 2 * n; ++d) {
        const std::size_t ilo = d > n ? d - n : 1;
        const std::size_t ihi = std::min(n, d - 1);
        const unsigned cur = unsigned(d % 3);
        const unsigned p1 = unsigned((d - 1) % 3);
        const unsigned p2 = unsigned((d - 2) % 3);
        for (std::size_t ib = ilo; ib <= ihi; ib += hw_vl) {
            const std::uint32_t vl = std::uint32_t(
                std::min<std::size_t>(hw_vl, ihi - ib + 1));
            e.setVl(vl);
            e.vload(1, diagAddr(p1, ib), vl);       // H(i-1, j)
            e.vload(2, diagAddr(p1, ib - 1), vl);   // H(i, j-1)
            e.vload(3, diagAddr(p2, ib - 1), vl);   // H(i-1, j-1)
            e.vload(4, aAddr(ib - 1), vl);          // a[i]
            // b[j] with j = d - i: reversed walk -> negative stride.
            e.vloadStrided(5, bAddr(d - ib - 1), -4, vl);
            e.vv(Op::VMseq, 0, 4, 5, vl);           // match mask
            e.vv(Op::VMerge, 6, 10, 11, vl);        // substitution
            e.vv(Op::VAdd, 6, 3, 6, vl);            // diag + sub
            e.vx(Op::VAdd, 7, 1, -kGap, vl);        // up - gap
            e.vx(Op::VAdd, 8, 2, -kGap, vl);        // left - gap
            e.vv(Op::VMax, 6, 6, 7, vl);
            e.vv(Op::VMax, 6, 6, 8, vl);
            e.vx(Op::VMax, 6, 6, 0, vl);            // clamp at 0
            e.vstore(6, diagAddr(cur, ib), vl);
            e.vv(Op::VMax, 12, 12, 6, vl);          // running best
            e.stripOverhead(3);
        }
    }

    // Reduce the running best and store the score.
    e.setVl(init_vl);
    e.vx(Op::VMvVX, 13, 0, 0, init_vl);
    e.vv(Op::VRedMax, 13, 12, 13, init_vl);
    e.setVl(1);
    e.vstore(13, scoreAddr(), 1);
}

std::uint64_t
SwWorkload::verify() const
{
    std::uint64_t bad = 0;
    if (mem.load32(scoreAddr()) != refScore)
        ++bad;
    // The (len, len) cell of the final diagonal.
    const unsigned final_buf = unsigned((2 * len) % 3);
    if (mem.load32(diagAddr(final_buf, len)) != refLastDiag[len])
        ++bad;
    return bad;
}

} // namespace eve
