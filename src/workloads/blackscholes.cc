#include "workloads/blackscholes.hh"

#include <algorithm>

#include "common/rng.hh"

namespace eve
{

BlackscholesWorkload::BlackscholesWorkload(std::size_t n) : n(n) {}

void
BlackscholesWorkload::init()
{
    mem.resize(5 * n * 4 + 64);
    Rng rng(0xb5c0);
    refPrice.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::int32_t spot = std::int32_t(rng.range(8, 4000));
        const std::int32_t strike = std::int32_t(rng.range(8, 4000));
        const std::int32_t expiry = std::int32_t(rng.range(1, 8));
        const std::int32_t type = std::int32_t(rng.below(2));
        mem.store32(spotAddr(i), spot);
        mem.store32(strikeAddr(i), strike);
        mem.store32(expiryAddr(i), expiry);
        mem.store32(typeAddr(i), type);

        const std::int32_t d =
            std::int32_t(std::uint32_t(spot) - std::uint32_t(strike));
        const std::int32_t call = std::max(d, 0);
        const std::int32_t put = std::max(-d, 0);
        const std::int32_t intrinsic = type == 1 ? put : call;
        std::int32_t tv = std::int32_t(std::uint32_t(spot >> 3) *
                                       std::uint32_t(expiry));
        if (intrinsic > 0)
            tv >>= 1;  // in-the-money options carry less time value
        std::int32_t price =
            std::int32_t(std::uint32_t(intrinsic) + std::uint32_t(tv));
        if (price > kPriceCap)
            price = kPriceCap;
        refPrice[i] = price;
    }
}

void
BlackscholesWorkload::emitScalar(InstrSink& sink)
{
    Emit e(sink);
    for (std::size_t i = 0; i < n; ++i) {
        e.load(spotAddr(i), 5, 2);
        e.load(strikeAddr(i), 6, 2);
        e.load(expiryAddr(i), 7, 3);
        e.load(typeAddr(i), 8, 3);
        e.alu(9, 5, 6);    // d = spot - strike
        e.branch(8);       // call or put?
        e.alu(10, 9, 0);   // intrinsic = selected payoff
        e.mul(11, 5, 7);   // time value
        e.branch(10);      // in the money?
        e.alu(11, 11, 0);  // halve time value
        e.alu(12, 10, 11); // price
        e.branch(12);      // above the cap?
        e.alu(12, 12, 0);  // clamp
        e.store(priceAddr(i), 12, 4);
        e.alu(2, 2, 0);
        e.alu(3, 3, 0);
        e.alu(1, 1, 0);
        e.branch(1);
    }
}

void
BlackscholesWorkload::emitVector(InstrSink& sink, std::uint32_t hw_vl)
{
    Emit e(sink);
    for (std::size_t ib = 0; ib < n; ib += hw_vl) {
        const std::uint32_t vl =
            std::uint32_t(std::min<std::size_t>(hw_vl, n - ib));
        e.setVl(vl);
        e.vload(1, spotAddr(ib), vl);
        e.vload(2, strikeAddr(ib), vl);
        e.vload(3, expiryAddr(ib), vl);
        e.vload(4, typeAddr(ib), vl);
        e.vv(Op::VSub, 5, 1, 2, vl);       // d = spot - strike
        e.vx(Op::VRsub, 6, 5, 0, vl);      // -d
        e.vx(Op::VMax, 5, 5, 0, vl);       // call payoff
        e.vx(Op::VMax, 6, 6, 0, vl);       // put payoff
        e.vx(Op::VMseq, 0, 4, 1, vl);      // v0 = is-put mask
        e.vv(Op::VMerge, 7, 6, 5, vl);     // intrinsic
        e.vx(Op::VSra, 8, 1, 3, vl);       // spot >> 3
        e.vv(Op::VMul, 8, 8, 3, vl);       // time value
        e.vx(Op::VMsgt, 0, 7, 0, vl);      // v0 = in-the-money mask
        e.vx(Op::VSra, 8, 8, 1, vl, true); // halve tv where ITM
        e.vv(Op::VAdd, 9, 7, 8, vl);       // price
        e.vx(Op::VMsgt, 0, 9, kPriceCap, vl);
        e.vx(Op::VMvVX, 10, 0, kPriceCap, vl);
        e.vv(Op::VMerge, 9, 10, 9, vl);    // clamp to the cap
        e.vstore(9, priceAddr(ib), vl);
        e.stripOverhead(2);
    }
}

std::uint64_t
BlackscholesWorkload::verify() const
{
    std::uint64_t bad = 0;
    for (std::size_t i = 0; i < n; ++i)
        if (mem.load32(priceAddr(i)) != refPrice[i])
            ++bad;
    return bad;
}

} // namespace eve
