/**
 * @file
 * particlefilter (RiVEC): the scatter + reduction mix from the
 * particle-filter tracker. Each iteration scores every particle
 * against an observation (abs-difference likelihood, clamped),
 * reduces the weight vector to its total and maximum (VRedSum /
 * VRedMax across strips), and then systematically resamples: every
 * surviving particle is replicated into a contiguous run of output
 * slots, emitted as rounds of *masked scatters* (VStoreIndexed under
 * a cnt > round mask) into the alternate position buffer, followed
 * by a broadcast drift update.
 *
 * The resampling plan (per-particle replication count and
 * destination start) is precomputed by the reference and stored in
 * memory as an input — the vector program loads it, builds the index
 * vector in-register, and scatters, replaying the recorded execution
 * exactly like the k-means/streamcluster gathers do.
 */

#ifndef EVE_WORKLOADS_PARTICLEFILTER_HH
#define EVE_WORKLOADS_PARTICLEFILTER_HH

#include "workloads/workload.hh"

namespace eve
{

class ParticlefilterWorkload : public Workload
{
  public:
    explicit ParticlefilterWorkload(std::size_t n = 65536,
                                    std::size_t iters = 4);

    std::string name() const override { return "particlefilter"; }
    std::string suite() const override { return "rivec"; }
    void init() override;
    void emitScalar(InstrSink& sink) override;
    void emitVector(InstrSink& sink, std::uint32_t hw_vl) override;
    std::uint64_t verify() const override;

  private:
    Addr bufAddr(std::size_t which, std::size_t p) const
    {
        return Addr(which * n + p) * 4;
    }
    Addr wAddr(std::size_t p) const { return Addr(2 * n + p) * 4; }
    Addr cntAddr(std::size_t t, std::size_t p) const
    {
        return Addr((3 + t) * n + p) * 4;
    }
    Addr dstartAddr(std::size_t t, std::size_t p) const
    {
        return Addr((3 + iters + t) * n + p) * 4;
    }
    Addr totAddr(std::size_t t, std::size_t k) const
    {
        return Addr((3 + 2 * iters) * n + 2 * t + k) * 4;
    }

    static std::int32_t observation(std::size_t t)
    {
        return std::int32_t((t * 977 + 501) % 4096);
    }
    static std::int32_t drift(std::size_t t)
    {
        return std::int32_t((t * 37 + 11) % 64);
    }

    std::size_t n;
    std::size_t iters;
    /** Per-iteration resampling plan (inputs written by init()). */
    std::vector<std::vector<std::int32_t>> cnt;
    std::vector<std::vector<std::int32_t>> dstart;
    std::vector<std::int32_t> maxCnt;        ///< scatter rounds per iter
    std::vector<std::vector<std::size_t>> srcOf; ///< dest -> source
    std::vector<std::int32_t> refTotal;
    std::vector<std::int32_t> refMax;
    std::vector<std::int32_t> refW;          ///< final-iteration weights
    std::vector<std::int32_t> refX;          ///< final positions
};

} // namespace eve

#endif // EVE_WORKLOADS_PARTICLEFILTER_HH
