#include "workloads/workload.hh"

#include "workloads/axpy.hh"
#include "workloads/backprop.hh"
#include "workloads/blackscholes.hh"
#include "workloads/fir.hh"
#include "workloads/jacobi2d.hh"
#include "workloads/kmeans.hh"
#include "workloads/mmult.hh"
#include "workloads/particlefilter.hh"
#include "workloads/pathfinder.hh"
#include "workloads/scan.hh"
#include "workloads/spmv.hh"
#include "workloads/streamcluster.hh"
#include "workloads/sw.hh"
#include "workloads/vvadd.hh"

namespace eve
{

std::unique_ptr<Workload>
makeWorkload(const std::string& name, bool small)
{
    if (name == "vvadd")
        return std::make_unique<VvaddWorkload>(small ? 4096 : 1 << 20);
    if (name == "mmult")
        return small ? std::make_unique<MmultWorkload>(4, 32, 64)
                     : std::make_unique<MmultWorkload>();
    if (name == "k-means" || name == "kmeans")
        return small ? std::make_unique<KmeansWorkload>(1024, 34, 5, 2)
                     : std::make_unique<KmeansWorkload>();
    if (name == "pathfinder")
        return small ? std::make_unique<PathfinderWorkload>(2048, 6)
                     : std::make_unique<PathfinderWorkload>();
    if (name == "jacobi-2d" || name == "jacobi2d")
        return small ? std::make_unique<Jacobi2dWorkload>(64, 2)
                     : std::make_unique<Jacobi2dWorkload>(2048, 1);
    if (name == "backprop")
        return small ? std::make_unique<BackpropWorkload>(512, 32)
                     : std::make_unique<BackpropWorkload>();
    if (name == "sw")
        return std::make_unique<SwWorkload>(small ? 128 : 2048);
    // Extension workloads (not part of the paper's Table IV).
    if (name == "spmv")
        return small ? std::make_unique<SpmvWorkload>(128, 16)
                     : std::make_unique<SpmvWorkload>();
    if (name == "fir")
        return small ? std::make_unique<FirWorkload>(2048, 8)
                     : std::make_unique<FirWorkload>();
    if (name == "scan")
        return small ? std::make_unique<ScanWorkload>(4096)
                     : std::make_unique<ScanWorkload>();
    // RiVEC-style suite (Ramirez et al.): streaming MAC, mask/branch,
    // gather, and scatter/reduction shapes.
    if (name == "axpy")
        return std::make_unique<AxpyWorkload>(small ? 4096 : 1 << 20);
    if (name == "blackscholes")
        return std::make_unique<BlackscholesWorkload>(small ? 4096
                                                            : 1 << 18);
    if (name == "streamcluster")
        return small
                   ? std::make_unique<StreamclusterWorkload>(512, 8, 3)
                   : std::make_unique<StreamclusterWorkload>();
    if (name == "particlefilter")
        return small ? std::make_unique<ParticlefilterWorkload>(1024, 2)
                     : std::make_unique<ParticlefilterWorkload>();
    return nullptr;
}

std::unique_ptr<Workload>
makeWorkloadScaled(const std::string& name, const std::string& scale)
{
    if (scale == "small")
        return makeWorkload(name, true);
    if (scale == "full")
        return makeWorkload(name, false);
    if (scale == "paper") {
        // The paper's input sizes where they exceed the default
        // "full" inputs; everything else already runs at them.
        if (name == "mmult")
            return std::make_unique<MmultWorkload>(1024, 1024, 1024);
        return makeWorkload(name, false);
    }
    return nullptr;
}

std::vector<std::unique_ptr<Workload>>
makeAllWorkloads(bool small)
{
    std::vector<std::unique_ptr<Workload>> all;
    for (const char* name : {"vvadd", "mmult", "k-means", "pathfinder",
                             "jacobi-2d", "backprop", "sw"})
        all.push_back(makeWorkload(name, small));
    return all;
}

} // namespace eve
