/**
 * @file
 * jacobi-2d (RiVEC): iterative 5-point stencil on an integer grid.
 * out = (c + l + r + u + d) * 6554 >> 15 (fixed-point divide by 5).
 * Left/right neighbours come from slides (cross-element ops), making
 * this the paper's compute-rich stencil with xe traffic.
 */

#ifndef EVE_WORKLOADS_JACOBI2D_HH
#define EVE_WORKLOADS_JACOBI2D_HH

#include "workloads/workload.hh"

namespace eve
{

/** The jacobi-2d kernel. */
class Jacobi2dWorkload : public Workload
{
  public:
    explicit Jacobi2dWorkload(std::size_t dim = 512,
                              unsigned iters = 4);

    std::string name() const override { return "jacobi-2d"; }
    std::string suite() const override { return "rivec"; }
    void init() override;
    void emitScalar(InstrSink& sink) override;
    void emitVector(InstrSink& sink, std::uint32_t hw_vl) override;
    std::uint64_t verify() const override;

  private:
    // Two ping-pong grids with a one-cell halo all around.
    std::size_t stride() const { return dim + 2; }
    Addr gridAddr(unsigned which, std::size_t i, std::size_t j) const
    {
        return Addr(which * stride() * stride() + i * stride() + j) * 4;
    }

    std::size_t dim;
    unsigned iters;
    std::vector<std::int32_t> ref;  ///< final interior snapshot
    /** Grid snapshot before each iteration (for slide-in values). */
    std::vector<std::vector<std::int32_t>> snapshots;
};

} // namespace eve

#endif // EVE_WORKLOADS_JACOBI2D_HH
