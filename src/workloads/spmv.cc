#include "workloads/spmv.hh"

#include "common/rng.hh"

namespace eve
{

SpmvWorkload::SpmvWorkload(std::size_t rows, std::size_t nnz_per_row)
    : rows(rows), nnzPerRow(nnz_per_row)
{
}

void
SpmvWorkload::init()
{
    mem.resize((2 * nnz() + 2 * rows) * 4 + 64);
    Rng rng(0x59e5);
    cols.resize(nnz());
    std::vector<std::int32_t> vals(nnz());
    std::vector<std::int32_t> x(rows);
    for (std::size_t i = 0; i < rows; ++i) {
        x[i] = std::int32_t(rng.range(-50, 50));
        mem.store32(xAddr(i), x[i]);
    }
    for (std::size_t i = 0; i < nnz(); ++i) {
        vals[i] = std::int32_t(rng.range(-20, 20));
        cols[i] = std::int32_t(rng.below(rows));
        mem.store32(valAddr(i), vals[i]);
        mem.store32(colAddr(i), cols[i]);
    }
    refY.assign(rows, 0);
    for (std::size_t r = 0; r < rows; ++r) {
        std::uint32_t acc = 0;
        for (std::size_t j = 0; j < nnzPerRow; ++j) {
            const std::size_t i = r * nnzPerRow + j;
            acc += std::uint32_t(vals[i]) *
                   std::uint32_t(x[std::size_t(cols[i])]);
        }
        refY[r] = std::int32_t(acc);
    }
}

void
SpmvWorkload::emitScalar(InstrSink& sink)
{
    Emit e(sink);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t j = 0; j < nnzPerRow; ++j) {
            const std::size_t i = r * nnzPerRow + j;
            e.load(valAddr(i), 5, 2);
            e.load(colAddr(i), 6, 2);
            e.alu(6, 6, 0);  // scale index
            e.load(xAddr(std::size_t(cols[i])), 7, 6);
            e.mul(8, 5, 7);
            e.alu(9, 9, 8);
            e.alu(1, 1, 0);
            e.branch(1);
        }
        e.store(yAddr(r), 9, 4);
    }
}

void
SpmvWorkload::emitVector(InstrSink& sink, std::uint32_t hw_vl)
{
    Emit e(sink);
    std::vector<std::uint32_t> offsets;
    for (std::size_t r = 0; r < rows; ++r) {
        const std::size_t base = r * nnzPerRow;
        e.setVl(std::uint32_t(std::min<std::size_t>(hw_vl,
                                                    nnzPerRow)));
        e.vx(Op::VMvVX, 8, 0, 0,
             std::uint32_t(std::min<std::size_t>(hw_vl, nnzPerRow)));
        for (std::size_t jb = 0; jb < nnzPerRow; jb += hw_vl) {
            const std::uint32_t vl = std::uint32_t(
                std::min<std::size_t>(hw_vl, nnzPerRow - jb));
            e.setVl(vl);
            e.vload(1, valAddr(base + jb), vl);
            e.vload(2, colAddr(base + jb), vl);
            e.vx(Op::VSll, 3, 2, 2, vl);  // byte offsets
            offsets.resize(vl);
            for (std::uint32_t i = 0; i < vl; ++i)
                offsets[i] =
                    std::uint32_t(cols[base + jb + i]) * 4;
            e.vloadIndexed(4, xAddr(0), offsets, 3);
            e.vv(Op::VMul, 5, 1, 4, vl);
            e.vv(Op::VRedSum, 8, 5, 8, vl);
            e.stripOverhead(2);
        }
        e.setVl(1);
        e.vstore(8, yAddr(r), 1);
        e.stripOverhead(1);
    }
}

std::uint64_t
SpmvWorkload::verify() const
{
    std::uint64_t bad = 0;
    for (std::size_t r = 0; r < rows; ++r)
        if (mem.load32(yAddr(r)) != refY[r])
            ++bad;
    return bad;
}

} // namespace eve
