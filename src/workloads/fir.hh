/**
 * @file
 * fir (extension workload): 1-D finite-impulse-response filter,
 * y[i] = sum_k c[k] * x[i+k]. Long unit-stride streams with one
 * multiply-accumulate per tap — a classic DSP shape that keeps every
 * long-vector machine at full hardware vector length.
 */

#ifndef EVE_WORKLOADS_FIR_HH
#define EVE_WORKLOADS_FIR_HH

#include "workloads/workload.hh"

namespace eve
{

/** The FIR kernel. */
class FirWorkload : public Workload
{
  public:
    FirWorkload(std::size_t n = 1 << 17, unsigned taps = 16);

    std::string name() const override { return "fir"; }
    std::string suite() const override { return "extension"; }
    void init() override;
    void emitScalar(InstrSink& sink) override;
    void emitVector(InstrSink& sink, std::uint32_t hw_vl) override;
    std::uint64_t verify() const override;

  private:
    Addr xAddr(std::size_t i) const { return Addr(i) * 4; }
    Addr yAddr(std::size_t i) const
    {
        return Addr(n + taps + i) * 4;
    }

    std::size_t n;
    unsigned taps;
    std::vector<std::int32_t> coeff;
    std::vector<std::int32_t> refY;
};

} // namespace eve

#endif // EVE_WORKLOADS_FIR_HH
