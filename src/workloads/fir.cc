#include "workloads/fir.hh"

#include "common/rng.hh"

namespace eve
{

FirWorkload::FirWorkload(std::size_t n, unsigned taps)
    : n(n), taps(taps)
{
}

void
FirWorkload::init()
{
    mem.resize((2 * n + 2 * taps) * 4 + 64);
    Rng rng(0xf14);
    coeff.resize(taps);
    std::vector<std::int32_t> x(n + taps);
    for (unsigned k = 0; k < taps; ++k)
        coeff[k] = std::int32_t(rng.range(-9, 9));
    for (std::size_t i = 0; i < n + taps; ++i) {
        x[i] = std::int32_t(rng.range(-1000, 1000));
        mem.store32(xAddr(i), x[i]);
    }
    refY.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t acc = 0;
        for (unsigned k = 0; k < taps; ++k)
            acc += std::uint32_t(coeff[k]) * std::uint32_t(x[i + k]);
        refY[i] = std::int32_t(acc);
    }
}

void
FirWorkload::emitScalar(InstrSink& sink)
{
    Emit e(sink);
    for (std::size_t i = 0; i < n; ++i) {
        for (unsigned k = 0; k < taps; ++k) {
            e.load(xAddr(i + k), 5, 2);
            e.mul(6, 5, 7);
            e.alu(8, 8, 6);
            e.branch(1);
        }
        e.store(yAddr(i), 8, 3);
        e.alu(1, 1, 0);
        e.branch(1);
    }
}

void
FirWorkload::emitVector(InstrSink& sink, std::uint32_t hw_vl)
{
    Emit e(sink);
    for (std::size_t ib = 0; ib < n; ib += hw_vl) {
        const std::uint32_t vl =
            std::uint32_t(std::min<std::size_t>(hw_vl, n - ib));
        e.setVl(vl);
        e.vx(Op::VMvVX, 8, 0, 0, vl);  // acc
        for (unsigned k = 0; k < taps; ++k) {
            // Overlapping unit-stride window starting at i+k.
            e.vload(9, xAddr(ib + k), vl);
            e.vx(Op::VMacc, 8, 9, coeff[k], vl);
            e.alu(1, 1, 0);
            e.branch(1);
        }
        e.vstore(8, yAddr(ib), vl);
        e.stripOverhead(2);
    }
}

std::uint64_t
FirWorkload::verify() const
{
    std::uint64_t bad = 0;
    for (std::size_t i = 0; i < n; ++i)
        if (mem.load32(yAddr(i)) != refY[i])
            ++bad;
    return bad;
}

} // namespace eve
