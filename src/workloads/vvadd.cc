#include "workloads/vvadd.hh"

#include "common/rng.hh"

namespace eve
{

VvaddWorkload::VvaddWorkload(std::size_t n) : n(n)
{
}

void
VvaddWorkload::init()
{
    mem.resize(n * 12 + 64);
    Rng rng(0xadd);
    refC.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::int32_t a = rng.i32();
        const std::int32_t b = rng.i32();
        mem.store32(aAddr() + i * 4, a);
        mem.store32(bAddr() + i * 4, b);
        refC[i] = std::int32_t(std::uint32_t(a) + std::uint32_t(b));
    }
}

void
VvaddWorkload::emitScalar(InstrSink& sink)
{
    Emit e(sink);
    for (std::size_t i = 0; i < n; ++i) {
        e.load(aAddr() + i * 4, 5, 2);
        e.load(bAddr() + i * 4, 6, 3);
        e.alu(7, 5, 6);
        e.store(cAddr() + i * 4, 7, 4);
        e.alu(2, 2, 0);  // pointer bumps
        e.alu(3, 3, 0);
        e.alu(4, 4, 0);
        e.alu(1, 1, 0);  // counter
        e.branch(1);
    }
}

void
VvaddWorkload::emitVector(InstrSink& sink, std::uint32_t hw_vl)
{
    Emit e(sink);
    for (std::size_t base = 0; base < n; base += hw_vl) {
        const std::uint32_t vl =
            std::uint32_t(std::min<std::size_t>(hw_vl, n - base));
        e.setVl(vl);
        e.vload(1, aAddr() + base * 4, vl);
        e.vload(2, bAddr() + base * 4, vl);
        e.vv(Op::VAdd, 3, 1, 2, vl);
        e.vstore(3, cAddr() + base * 4, vl);
        e.stripOverhead(3);
    }
}

std::uint64_t
VvaddWorkload::verify() const
{
    std::uint64_t bad = 0;
    for (std::size_t i = 0; i < n; ++i)
        if (mem.load32(cAddr() + i * 4) != refC[i])
            ++bad;
    return bad;
}

} // namespace eve
