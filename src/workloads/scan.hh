/**
 * @file
 * scan (extension workload): inclusive prefix sum via the
 * Hillis-Steele log-step algorithm within strips plus a carried
 * offset across strips. Every log step is a vslideup + masked add —
 * a cross-element stress test for the VRU path.
 */

#ifndef EVE_WORKLOADS_SCAN_HH
#define EVE_WORKLOADS_SCAN_HH

#include "workloads/workload.hh"

namespace eve
{

/** The prefix-sum kernel. */
class ScanWorkload : public Workload
{
  public:
    explicit ScanWorkload(std::size_t n = 1 << 18);

    std::string name() const override { return "scan"; }
    std::string suite() const override { return "extension"; }
    void init() override;
    void emitScalar(InstrSink& sink) override;
    void emitVector(InstrSink& sink, std::uint32_t hw_vl) override;
    std::uint64_t verify() const override;

  private:
    Addr inAddr(std::size_t i) const { return Addr(i) * 4; }
    Addr outAddr(std::size_t i) const { return Addr(n + i) * 4; }

    std::size_t n;
    std::vector<std::int32_t> ref;
};

} // namespace eve

#endif // EVE_WORKLOADS_SCAN_HH
