#include "workloads/jacobi2d.hh"

#include "common/rng.hh"

namespace eve
{

Jacobi2dWorkload::Jacobi2dWorkload(std::size_t dim, unsigned iters)
    : dim(dim), iters(iters)
{
}

void
Jacobi2dWorkload::init()
{
    const std::size_t s = stride();
    mem.resize(2 * s * s * 4 + 64);
    Rng rng(0x2d2d);
    std::vector<std::int32_t> grid(s * s, 0);
    for (std::size_t i = 1; i <= dim; ++i)
        for (std::size_t j = 1; j <= dim; ++j)
            grid[i * s + j] = std::int32_t(rng.range(0, 1000));
    for (std::size_t idx = 0; idx < s * s; ++idx) {
        mem.store32(gridAddr(0, 0, 0) + Addr(idx) * 4, grid[idx]);
        mem.store32(gridAddr(1, 0, 0) + Addr(idx) * 4, 0);
    }

    snapshots.clear();
    for (unsigned t = 0; t < iters; ++t) {
        snapshots.push_back(grid);
        std::vector<std::int32_t> next(s * s, 0);
        for (std::size_t i = 1; i <= dim; ++i) {
            for (std::size_t j = 1; j <= dim; ++j) {
                const std::int64_t sum =
                    std::int64_t(grid[i * s + j]) + grid[i * s + j - 1] +
                    grid[i * s + j + 1] + grid[(i - 1) * s + j] +
                    grid[(i + 1) * s + j];
                next[i * s + j] = std::int32_t(
                    (std::uint32_t(std::int32_t(sum)) * 6554u) >> 15);
            }
        }
        grid.swap(next);
    }
    ref = grid;
}

void
Jacobi2dWorkload::emitScalar(InstrSink& sink)
{
    Emit e(sink);
    for (unsigned t = 0; t < iters; ++t) {
        const unsigned src = t & 1;
        const unsigned dst = 1 - src;
        for (std::size_t i = 1; i <= dim; ++i) {
            for (std::size_t j = 1; j <= dim; ++j) {
                e.load(gridAddr(src, i, j), 5, 2);
                e.load(gridAddr(src, i, j - 1), 6, 2);
                e.load(gridAddr(src, i, j + 1), 7, 2);
                e.load(gridAddr(src, i - 1, j), 8, 2);
                e.load(gridAddr(src, i + 1, j), 9, 2);
                e.alu(10, 5, 6);
                e.alu(10, 10, 7);
                e.alu(10, 10, 8);
                e.alu(10, 10, 9);
                e.mul(10, 10, 0);  // fixed-point scale
                e.alu(10, 10, 0);  // shift
                e.store(gridAddr(dst, i, j), 10, 3);
                e.alu(1, 1, 0);
                e.branch(1);
            }
        }
    }
}

void
Jacobi2dWorkload::emitVector(InstrSink& sink, std::uint32_t hw_vl)
{
    Emit e(sink);
    const std::size_t s = stride();
    for (unsigned t = 0; t < iters; ++t) {
        const unsigned src = t & 1;
        const unsigned dst = 1 - src;
        const auto& snap = snapshots[t];
        for (std::size_t i = 1; i <= dim; ++i) {
            for (std::size_t jb = 1; jb <= dim; jb += hw_vl) {
                const std::uint32_t vl = std::uint32_t(
                    std::min<std::size_t>(hw_vl, dim - jb + 1));
                e.setVl(vl);
                e.vload(1, gridAddr(src, i, jb), vl);      // center
                // Left/right neighbours via slides with halo values.
                const std::int64_t left_in = snap[i * s + jb - 1];
                const std::int64_t right_in = snap[i * s + jb + vl];
                e.vx(Op::VSlide1Up, 2, 1, left_in, vl);
                e.vx(Op::VSlide1Down, 3, 1, right_in, vl);
                e.vload(4, gridAddr(src, i - 1, jb), vl);  // up
                e.vload(5, gridAddr(src, i + 1, jb), vl);  // down
                e.vv(Op::VAdd, 6, 1, 2, vl);
                e.vv(Op::VAdd, 6, 6, 3, vl);
                e.vv(Op::VAdd, 6, 6, 4, vl);
                e.vv(Op::VAdd, 6, 6, 5, vl);
                e.vx(Op::VMul, 6, 6, 6554, vl);
                e.vx(Op::VSrl, 6, 6, 15, vl);
                e.vstore(6, gridAddr(dst, i, jb), vl);
                e.stripOverhead(2);
            }
        }
    }
}

std::uint64_t
Jacobi2dWorkload::verify() const
{
    const unsigned final_grid = iters & 1;
    const std::size_t s = stride();
    std::uint64_t bad = 0;
    for (std::size_t i = 1; i <= dim; ++i)
        for (std::size_t j = 1; j <= dim; ++j)
            if (mem.load32(gridAddr(final_grid, i, j)) !=
                ref[i * s + j])
                ++bad;
    return bad;
}

} // namespace eve
