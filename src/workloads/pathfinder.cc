#include "workloads/pathfinder.hh"

#include <algorithm>
#include <limits>

#include "common/rng.hh"

namespace eve
{

namespace
{
constexpr std::int32_t kInf = std::numeric_limits<std::int32_t>::max() / 2;
} // namespace

PathfinderWorkload::PathfinderWorkload(std::size_t cols, std::size_t rows)
    : cols(cols), rows(rows)
{
}

void
PathfinderWorkload::init()
{
    mem.resize((rows + 2) * cols * 4 + 64);
    Rng rng(0xfade);
    wall.resize(rows * cols);
    for (std::size_t i = 0; i < rows * cols; ++i) {
        wall[i] = std::int32_t(rng.below(10));
        mem.store32(Addr(i) * 4, wall[i]);
    }
    // DP buffers: buffer 0 starts as wall row 0.
    std::vector<std::int32_t> cur(wall.begin(), wall.begin() + cols);
    for (std::size_t j = 0; j < cols; ++j)
        mem.store32(bufAddr(0, j), cur[j]);
    for (std::size_t r = 1; r < rows; ++r) {
        std::vector<std::int32_t> next(cols);
        for (std::size_t j = 0; j < cols; ++j) {
            const std::int32_t left = j > 0 ? cur[j - 1] : kInf;
            const std::int32_t right = j + 1 < cols ? cur[j + 1] : kInf;
            next[j] = wall[r * cols + j] +
                      std::min(cur[j], std::min(left, right));
        }
        cur.swap(next);
    }
    refResult = cur;
}

void
PathfinderWorkload::emitScalar(InstrSink& sink)
{
    Emit e(sink);
    for (std::size_t r = 1; r < rows; ++r) {
        const unsigned src = (r - 1) & 1;
        const unsigned dst = r & 1;
        for (std::size_t j = 0; j < cols; ++j) {
            if (j > 0)
                e.load(bufAddr(src, j - 1), 5, 2);
            e.load(bufAddr(src, j), 6, 2);
            if (j + 1 < cols)
                e.load(bufAddr(src, j + 1), 7, 2);
            e.alu(8, 5, 6);  // min
            e.alu(8, 8, 7);  // min
            e.load(wallAddr(r, j), 9, 3);
            e.alu(8, 8, 9);  // add
            e.store(bufAddr(dst, j), 8, 4);
            e.alu(1, 1, 0);
            e.branch(1);
        }
    }
}

void
PathfinderWorkload::emitVector(InstrSink& sink, std::uint32_t hw_vl)
{
    Emit e(sink);
    for (std::size_t r = 1; r < rows; ++r) {
        const unsigned src = (r - 1) & 1;
        const unsigned dst = r & 1;
        // v0 = all-active predicate for the masked min updates.
        e.setVl(std::uint32_t(std::min<std::size_t>(hw_vl, cols)));
        e.vx(Op::VMvVX, 0, 0, 1,
             std::uint32_t(std::min<std::size_t>(hw_vl, cols)));
        for (std::size_t jb = 0; jb < cols; jb += hw_vl) {
            const std::uint32_t vl =
                std::uint32_t(std::min<std::size_t>(hw_vl, cols - jb));
            e.setVl(vl);
            e.vload(1, bufAddr(src, jb), vl);  // center
            // Left neighbour: slide up, injecting the element before
            // the strip (or INF at the grid edge).
            const std::int64_t left_in =
                jb > 0 ? mem.load32(bufAddr(src, jb - 1)) : kInf;
            e.vx(Op::VSlide1Up, 2, 1, left_in, vl);
            // Right neighbour: slide down, injecting the element
            // after the strip (or INF at the grid edge).
            const std::int64_t right_in =
                jb + vl < cols ? mem.load32(bufAddr(src, jb + vl))
                               : kInf;
            e.vx(Op::VSlide1Down, 3, 1, right_in, vl);
            e.vv(Op::VMin, 4, 2, 3, vl, true);   // predicated min
            e.vv(Op::VMin, 4, 4, 1, vl, true);
            e.vload(5, wallAddr(r, jb), vl);
            e.vv(Op::VAdd, 6, 4, 5, vl);
            e.vstore(6, bufAddr(dst, jb), vl);
            e.stripOverhead(3);
        }
    }
}

std::uint64_t
PathfinderWorkload::verify() const
{
    const unsigned final_buf = (rows - 1) & 1;
    std::uint64_t bad = 0;
    for (std::size_t j = 0; j < cols; ++j)
        if (mem.load32(bufAddr(final_buf, j)) != refResult[j])
            ++bad;
    return bad;
}

} // namespace eve
