/**
 * @file
 * blackscholes (RiVEC): fixed-point option pricing, the suite's
 * mask/branch-heavy kernel. Each option carries a spot price, a
 * strike, a time-to-expiry bucket, and a call/put flag; the scalar
 * version branches per option on the option type, moneyness, and a
 * price cap, while the vector version turns every branch into a
 * v0 mask (VMseq/VMsgt) consumed by VMerge selects and a masked
 * shift — the predication pattern EVE's paper calls out as the hard
 * case for packed-SIMD baselines.
 *
 * The arithmetic is an integer surrogate of the Black-Scholes shape
 * (intrinsic value + a decaying time value), not a float port: the
 * ISA is integer-only, and what the timing model cares about is the
 * mask density and operation mix, not the option maths.
 */

#ifndef EVE_WORKLOADS_BLACKSCHOLES_HH
#define EVE_WORKLOADS_BLACKSCHOLES_HH

#include "workloads/workload.hh"

namespace eve
{

class BlackscholesWorkload : public Workload
{
  public:
    explicit BlackscholesWorkload(std::size_t n = std::size_t{1} << 18);

    std::string name() const override { return "blackscholes"; }
    std::string suite() const override { return "rivec"; }
    void init() override;
    void emitScalar(InstrSink& sink) override;
    void emitVector(InstrSink& sink, std::uint32_t hw_vl) override;
    std::uint64_t verify() const override;

  private:
    Addr spotAddr(std::size_t i) const { return Addr(i) * 4; }
    Addr strikeAddr(std::size_t i) const { return Addr(n + i) * 4; }
    Addr expiryAddr(std::size_t i) const { return Addr(2 * n + i) * 4; }
    Addr typeAddr(std::size_t i) const { return Addr(3 * n + i) * 4; }
    Addr priceAddr(std::size_t i) const { return Addr(4 * n + i) * 4; }

    static constexpr std::int32_t kPriceCap = 2500;

    std::size_t n;
    std::vector<std::int32_t> refPrice;
};

} // namespace eve

#endif // EVE_WORKLOADS_BLACKSCHOLES_HH
