/**
 * @file
 * axpy (RiVEC): y[i] += a * x[i] over int32 vectors — the canonical
 * streaming multiply-accumulate kernel, the simplest member of the
 * RiVEC-style extension suite. Unit-stride loads and stores only; no
 * masks, no gathers.
 */

#ifndef EVE_WORKLOADS_AXPY_HH
#define EVE_WORKLOADS_AXPY_HH

#include "workloads/workload.hh"

namespace eve
{

class AxpyWorkload : public Workload
{
  public:
    explicit AxpyWorkload(std::size_t n = std::size_t{1} << 20);

    std::string name() const override { return "axpy"; }
    std::string suite() const override { return "rivec"; }
    void init() override;
    void emitScalar(InstrSink& sink) override;
    void emitVector(InstrSink& sink, std::uint32_t hw_vl) override;
    std::uint64_t verify() const override;

  private:
    Addr xAddr(std::size_t i) const { return Addr(i) * 4; }
    Addr yAddr(std::size_t i) const { return Addr(n + i) * 4; }

    std::size_t n;
    std::int32_t a = 0;
    std::vector<std::int32_t> refY;
};

} // namespace eve

#endif // EVE_WORKLOADS_AXPY_HH
