/**
 * @file
 * vvadd: element-wise vector addition C = A + B (the paper's
 * memory-bound micro-kernel).
 */

#ifndef EVE_WORKLOADS_VVADD_HH
#define EVE_WORKLOADS_VVADD_HH

#include "workloads/workload.hh"

namespace eve
{

/** The vvadd kernel. */
class VvaddWorkload : public Workload
{
  public:
    explicit VvaddWorkload(std::size_t n = std::size_t{1} << 20);

    std::string name() const override { return "vvadd"; }
    std::string suite() const override { return "kernel"; }
    void init() override;
    void emitScalar(InstrSink& sink) override;
    void emitVector(InstrSink& sink, std::uint32_t hw_vl) override;
    std::uint64_t verify() const override;

  private:
    Addr aAddr() const { return 0; }
    Addr bAddr() const { return Addr(n) * 4; }
    Addr cAddr() const { return Addr(n) * 8; }

    std::size_t n;
    std::vector<std::int32_t> refC;
};

} // namespace eve

#endif // EVE_WORKLOADS_VVADD_HH
