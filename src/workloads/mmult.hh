/**
 * @file
 * mmult: dense integer matrix multiply C[m x n] = A[m x k] x B[k x n]
 * (the paper's compute-bound micro-kernel). Vectorized along C's
 * rows (the wide n dimension, so long-vector machines run at full
 * hardware vector length, like the paper's 1024-wide input) with a
 * broadcast of A's element at each k step.
 */

#ifndef EVE_WORKLOADS_MMULT_HH
#define EVE_WORKLOADS_MMULT_HH

#include "workloads/workload.hh"

namespace eve
{

/** The mmult kernel. */
class MmultWorkload : public Workload
{
  public:
    MmultWorkload(std::size_t m = 8, std::size_t k = 256,
                  std::size_t n = 4096);

    std::string name() const override { return "mmult"; }
    std::string suite() const override { return "kernel"; }
    void init() override;
    void emitScalar(InstrSink& sink) override;
    void emitVector(InstrSink& sink, std::uint32_t hw_vl) override;
    std::uint64_t verify() const override;

  private:
    Addr aAddr(std::size_t i, std::size_t kk) const
    {
        return Addr(i * kDim + kk) * 4;
    }
    Addr bAddr(std::size_t kk, std::size_t j) const
    {
        return Addr(mDim * kDim + kk * nDim + j) * 4;
    }
    Addr cAddr(std::size_t i, std::size_t j) const
    {
        return Addr(mDim * kDim + kDim * nDim + i * nDim + j) * 4;
    }

    std::size_t mDim;
    std::size_t kDim;
    std::size_t nDim;
    std::vector<std::int32_t> a;
    std::vector<std::int32_t> refC;
};

} // namespace eve

#endif // EVE_WORKLOADS_MMULT_HH
