#include "workloads/mmult.hh"

#include "common/rng.hh"

namespace eve
{

MmultWorkload::MmultWorkload(std::size_t m, std::size_t k, std::size_t n)
    : mDim(m), kDim(k), nDim(n)
{
}

void
MmultWorkload::init()
{
    mem.resize((mDim * kDim + kDim * nDim + mDim * nDim) * 4 + 64);
    Rng rng(0x3347);
    a.resize(mDim * kDim);
    std::vector<std::int32_t> b(kDim * nDim);
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = std::int32_t(rng.range(-100, 100));
        mem.store32(Addr(i) * 4, a[i]);
    }
    for (std::size_t i = 0; i < b.size(); ++i) {
        b[i] = std::int32_t(rng.range(-100, 100));
        mem.store32(Addr(mDim * kDim + i) * 4, b[i]);
    }
    refC.assign(mDim * nDim, 0);
    for (std::size_t i = 0; i < mDim; ++i)
        for (std::size_t kk = 0; kk < kDim; ++kk) {
            const std::uint32_t aik = std::uint32_t(a[i * kDim + kk]);
            for (std::size_t j = 0; j < nDim; ++j)
                refC[i * nDim + j] = std::int32_t(
                    std::uint32_t(refC[i * nDim + j]) +
                    aik * std::uint32_t(b[kk * nDim + j]));
        }
}

void
MmultWorkload::emitScalar(InstrSink& sink)
{
    Emit e(sink);
    for (std::size_t i = 0; i < mDim; ++i) {
        for (std::size_t j = 0; j < nDim; ++j) {
            for (std::size_t kk = 0; kk < kDim; ++kk) {
                e.load(aAddr(i, kk), 5, 2);
                e.load(bAddr(kk, j), 6, 3);
                e.mul(7, 5, 6);
                e.alu(8, 8, 7);  // accumulate
                e.alu(1, 1, 0);  // k counter
                e.branch(1);
            }
            e.store(cAddr(i, j), 8, 4);
            e.alu(4, 4, 0);
            e.branch(9);
        }
    }
}

void
MmultWorkload::emitVector(InstrSink& sink, std::uint32_t hw_vl)
{
    Emit e(sink);
    for (std::size_t i = 0; i < mDim; ++i) {
        for (std::size_t jb = 0; jb < nDim; jb += hw_vl) {
            const std::uint32_t vl =
                std::uint32_t(std::min<std::size_t>(hw_vl, nDim - jb));
            e.setVl(vl);
            e.vx(Op::VMvVX, 8, 0, 0, vl);  // acc = 0
            for (std::size_t kk = 0; kk < kDim; ++kk) {
                e.load(aAddr(i, kk), 5, 2);               // scalar a
                e.vx(Op::VMvVX, 9, 0, a[i * kDim + kk], vl);
                e.vload(10, bAddr(kk, jb), vl);           // row of B
                e.vv(Op::VMacc, 8, 9, 10, vl);            // acc += a*b
                e.alu(1, 1, 0);
                e.branch(1);
            }
            e.vstore(8, cAddr(i, jb), vl);
            e.stripOverhead(2);
        }
    }
}

std::uint64_t
MmultWorkload::verify() const
{
    std::uint64_t bad = 0;
    for (std::size_t i = 0; i < mDim * nDim; ++i)
        if (mem.load32(Addr(mDim * kDim + kDim * nDim + i) * 4) !=
            refC[i])
            ++bad;
    return bad;
}

} // namespace eve
