#include <algorithm>

#include "workloads/kmeans.hh"

#include <limits>

#include "common/rng.hh"

namespace eve
{

namespace
{
constexpr std::int32_t kMaxDist =
    std::numeric_limits<std::int32_t>::max();
} // namespace

KmeansWorkload::KmeansWorkload(std::size_t npoints, std::size_t nfeat,
                               unsigned k, unsigned iters)
    : npoints(npoints), nfeat(nfeat), k(k), iters(iters)
{
}

std::int32_t
KmeansWorkload::distance(std::size_t p, const std::int32_t* c) const
{
    // Mixed metric matching the vector program exactly: squared
    // difference every fourth feature, absolute difference otherwise,
    // all in wrapping 32-bit arithmetic.
    std::uint32_t acc = 0;
    for (std::size_t f = 0; f < nfeat; ++f) {
        const std::int32_t d = std::int32_t(
            std::uint32_t(points[p * nfeat + f]) - std::uint32_t(c[f]));
        if (f % 4 == 0) {
            acc += std::uint32_t(d) * std::uint32_t(d);
        } else {
            const std::int32_t neg = std::int32_t(0u - std::uint32_t(d));
            acc += std::uint32_t(std::max(d, neg));
        }
    }
    return std::int32_t(acc);
}

void
KmeansWorkload::init()
{
    mem.resize((npoints * nfeat + k * nfeat + 2 * npoints) * 4 + 64);
    Rng rng(0x6b6d);
    points.resize(npoints * nfeat);
    for (std::size_t i = 0; i < points.size(); ++i) {
        points[i] = std::int32_t(rng.below(256));
        mem.store32(Addr(i) * 4, points[i]);
    }

    // Initial centroids: the first k points.
    std::vector<std::int32_t> centroids(k * nfeat);
    for (unsigned c = 0; c < k; ++c)
        for (std::size_t f = 0; f < nfeat; ++f)
            centroids[c * nfeat + f] = points[c * nfeat + f];
    for (std::size_t i = 0; i < centroids.size(); ++i)
        mem.store32(Addr(npoints * nfeat + i) * 4, centroids[i]);

    // Reference: run the fixed-iteration algorithm.
    centroidIter.clear();
    refAssign.assign(npoints, 0);
    refDist.assign(npoints, 0);
    for (unsigned it = 0; it < iters; ++it) {
        centroidIter.push_back(centroids);
        for (std::size_t p = 0; p < npoints; ++p) {
            std::int32_t best = kMaxDist;
            std::int32_t best_c = 0;
            for (unsigned c = 0; c < k; ++c) {
                const std::int32_t d =
                    distance(p, &centroids[c * nfeat]);
                if (d < best) {
                    best = d;
                    best_c = std::int32_t(c);
                }
            }
            refAssign[p] = best_c;
            refDist[p] = best;
        }
        // Update: integer mean of the members.
        std::vector<std::int64_t> sums(k * nfeat, 0);
        std::vector<std::int64_t> counts(k, 0);
        for (std::size_t p = 0; p < npoints; ++p) {
            const unsigned c = unsigned(refAssign[p]);
            ++counts[c];
            for (std::size_t f = 0; f < nfeat; ++f)
                sums[c * nfeat + f] += points[p * nfeat + f];
        }
        for (unsigned c = 0; c < k; ++c)
            if (counts[c] > 0)
                for (std::size_t f = 0; f < nfeat; ++f)
                    centroids[c * nfeat + f] = std::int32_t(
                        sums[c * nfeat + f] / counts[c]);
    }
}

void
KmeansWorkload::emitScalar(InstrSink& sink)
{
    Emit e(sink);
    for (unsigned it = 0; it < iters; ++it) {
        // Assignment.
        for (std::size_t p = 0; p < npoints; ++p) {
            for (unsigned c = 0; c < k; ++c) {
                for (std::size_t f = 0; f < nfeat; ++f) {
                    e.load(pointAddr(p, f), 5, 2);
                    e.load(centroidAddr(c, f), 6, 3);
                    e.alu(7, 5, 6);  // diff
                    if (f % 4 == 0)
                        e.mul(7, 7, 7);
                    else
                        e.alu(7, 7, 0);  // abs
                    e.alu(8, 8, 7);      // accumulate
                    e.branch(1);
                }
                e.alu(9, 9, 8);  // best compare
                e.branch(9);
            }
            e.store(assignAddr(p), 9, 4);
            e.store(distAddr(p), 8, 4);
        }
        // Update.
        for (std::size_t p = 0; p < npoints; ++p) {
            e.load(assignAddr(p), 5, 2);
            for (std::size_t f = 0; f < nfeat; ++f) {
                e.load(pointAddr(p, f), 6, 3);
                e.alu(7, 7, 6);
                e.branch(1);
            }
        }
    }
}

void
KmeansWorkload::emitVector(InstrSink& sink, std::uint32_t hw_vl)
{
    Emit e(sink);
    const std::int64_t fstride = std::int64_t(nfeat) * 4;
    std::vector<std::uint32_t> offsets;
    for (unsigned it = 0; it < iters; ++it) {
        const auto& cent = centroidIter[it];
        // ----- assignment phase -------------------------------------
        for (std::size_t pb = 0; pb < npoints; pb += hw_vl) {
            const std::uint32_t vl = std::uint32_t(
                std::min<std::size_t>(hw_vl, npoints - pb));
            e.setVl(vl);
            e.vx(Op::VMvVX, 20, 0, kMaxDist, vl);  // best distance
            e.vx(Op::VMvVX, 21, 0, 0, vl);         // best cluster
            for (unsigned c = 0; c < k; ++c) {
                e.vx(Op::VMvVX, 22, 0, 0, vl);     // accumulator
                for (std::size_t f = 0; f < nfeat; ++f) {
                    e.vloadStrided(23, pointAddr(pb, f), fstride, vl);
                    e.vx(Op::VSub, 24, 23, cent[c * nfeat + f], vl);
                    if (f % 4 == 0) {
                        e.vv(Op::VMacc, 22, 24, 24, vl);
                    } else {
                        e.vx(Op::VRsub, 25, 24, 0, vl);
                        e.vv(Op::VMax, 24, 24, 25, vl);
                        e.vv(Op::VAdd, 22, 22, 24, vl);
                    }
                    e.alu(1, 1, 0);
                    e.branch(1);
                }
                e.vv(Op::VMslt, 0, 22, 20, vl);       // closer?
                e.vv(Op::VMerge, 20, 22, 20, vl);     // best distance
                e.vx(Op::VMvVX, 26, 0, c, vl);        // cluster id
                e.vv(Op::VMerge, 21, 26, 21, vl);     // best cluster
                e.branch(9);
            }
            e.vstore(21, assignAddr(pb), vl);
            e.vstore(20, distAddr(pb), vl);
            // Gather the assigned centroid's first feature (indexed
            // load; offsets replay the reference assignment).
            e.vx(Op::VMul, 27, 21, std::int64_t(nfeat) * 4, vl);
            offsets.resize(vl);
            for (std::uint32_t i = 0; i < vl; ++i)
                offsets[i] = std::uint32_t(refAssign[pb + i]) *
                             std::uint32_t(nfeat) * 4;
            e.vloadIndexed(28, centroidAddr(0, 0), offsets, 27);
            e.stripOverhead(3);
        }
        // ----- update phase (masked reductions through the VRU) -----
        for (unsigned c = 0; c < k; ++c) {
            // Member count: reduce the match mask itself.
            e.setVl(std::uint32_t(std::min<std::size_t>(hw_vl,
                                                        npoints)));
            e.vx(Op::VMvVX, 29, 0, 0,
                 std::uint32_t(std::min<std::size_t>(hw_vl, npoints)));
            for (std::size_t pb = 0; pb < npoints; pb += hw_vl) {
                const std::uint32_t vl = std::uint32_t(
                    std::min<std::size_t>(hw_vl, npoints - pb));
                e.setVl(vl);
                e.vload(30, assignAddr(pb), vl);
                e.vx(Op::VMseq, 31, 30, c, vl);
                e.vv(Op::VRedSum, 29, 31, 29, vl);
                e.stripOverhead(1);
            }
            Instr mv;
            mv.op = Op::VMvXS;
            mv.src1 = 29;
            mv.vl = 1;
            sink.consume(mv);
            // Feature sums: masked reductions, accumulated in the
            // destination's element 0 across strips.
            for (std::size_t f = 0; f < nfeat; f += 8) {
                e.setVl(std::uint32_t(std::min<std::size_t>(hw_vl,
                                                            npoints)));
                e.vx(Op::VMvVX, 29, 0, 0,
                     std::uint32_t(std::min<std::size_t>(hw_vl,
                                                         npoints)));
                for (std::size_t pb = 0; pb < npoints; pb += hw_vl) {
                    const std::uint32_t vl = std::uint32_t(
                        std::min<std::size_t>(hw_vl, npoints - pb));
                    e.setVl(vl);
                    e.vload(30, assignAddr(pb), vl);
                    e.vx(Op::VMseq, 0, 30, c, vl);
                    e.vloadStrided(23, pointAddr(pb, f), fstride, vl);
                    e.vv(Op::VRedSum, 29, 23, 29, vl, true);
                    e.stripOverhead(1);
                }
                sink.consume(mv);
                // New centroid: a handful of scalar ops.
                e.mul(7, 7, 5);
                e.alu(7, 7, 0);
            }
        }
    }
}

std::uint64_t
KmeansWorkload::verify() const
{
    std::uint64_t bad = 0;
    for (std::size_t p = 0; p < npoints; ++p) {
        if (mem.load32(assignAddr(p)) != refAssign[p])
            ++bad;
        if (mem.load32(distAddr(p)) != refDist[p])
            ++bad;
    }
    return bad;
}

} // namespace eve
