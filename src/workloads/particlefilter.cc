#include "workloads/particlefilter.hh"

#include <algorithm>
#include <cstdlib>

#include "common/rng.hh"

namespace eve
{

ParticlefilterWorkload::ParticlefilterWorkload(std::size_t n,
                                               std::size_t iters)
    : n(n), iters(iters)
{
}

void
ParticlefilterWorkload::init()
{
    mem.resize(((3 + 2 * iters) * n + 2 * iters) * 4 + 64);
    Rng rng(0x9f17);
    std::vector<std::int32_t> cur(n);
    for (std::size_t p = 0; p < n; ++p) {
        cur[p] = std::int32_t(rng.below(4096));
        mem.store32(bufAddr(0, p), cur[p]);
    }

    cnt.assign(iters, {});
    dstart.assign(iters, {});
    maxCnt.assign(iters, 0);
    srcOf.assign(iters, {});
    refTotal.resize(iters);
    refMax.resize(iters);
    std::vector<std::int32_t> w(n);
    std::vector<std::int32_t> next(n);
    std::vector<std::uint64_t> cum(n);
    for (std::size_t t = 0; t < iters; ++t) {
        const std::int32_t obs = observation(t);
        std::uint32_t total = 0;
        std::int32_t wmax = 0;
        for (std::size_t p = 0; p < n; ++p) {
            w[p] = 32 + std::min(std::abs(cur[p] - obs), 32);
            total += std::uint32_t(w[p]);
            wmax = std::max(wmax, w[p]);
        }
        refTotal[t] = std::int32_t(total);
        refMax[t] = wmax;
        std::uint64_t run = 0;
        for (std::size_t p = 0; p < n; ++p) {
            run += std::uint64_t(w[p]);
            cum[p] = run;
        }
        // Systematic resampling: n evenly-spaced positions in the
        // cumulative weight; cnt[i] replicas of particle i, packed
        // into slots [dstart[i], dstart[i] + cnt[i]).
        cnt[t].assign(n, 0);
        srcOf[t].resize(n);
        std::size_t i = 0;
        for (std::size_t j = 0; j < n; ++j) {
            const std::uint64_t u =
                (std::uint64_t(2 * j + 1) * total) / (2 * n);
            while (cum[i] <= u)
                ++i;
            ++cnt[t][i];
            srcOf[t][j] = i;
        }
        dstart[t].resize(n);
        std::int32_t acc = 0;
        for (std::size_t p = 0; p < n; ++p) {
            dstart[t][p] = acc;
            acc += cnt[t][p];
            maxCnt[t] = std::max(maxCnt[t], cnt[t][p]);
            mem.store32(cntAddr(t, p), cnt[t][p]);
            mem.store32(dstartAddr(t, p), dstart[t][p]);
        }
        const std::int32_t dr = drift(t);
        for (std::size_t j = 0; j < n; ++j)
            next[j] = std::int32_t(
                std::uint32_t(cur[srcOf[t][j]]) + std::uint32_t(dr));
        cur.swap(next);
    }
    refW = w;
    refX = cur;
}

void
ParticlefilterWorkload::emitScalar(InstrSink& sink)
{
    Emit e(sink);
    for (std::size_t t = 0; t < iters; ++t) {
        const std::size_t rd = t % 2;
        const std::size_t wr = 1 - rd;
        for (std::size_t p = 0; p < n; ++p) {
            e.load(bufAddr(rd, p), 5, 2);
            e.alu(6, 5, 0);   // x - obs
            e.branch(6);      // abs
            e.alu(6, 6, 0);
            e.branch(6);      // clamp at 32
            e.alu(6, 6, 0);   // + floor
            e.store(wAddr(p), 6, 3);
            e.alu(1, 1, 0);
            e.branch(1);
        }
        for (std::size_t p = 0; p < n; ++p) {
            e.load(wAddr(p), 5, 3);
            e.alu(7, 7, 5);   // total
            e.branch(5);      // max update
            e.alu(8, 8, 5);
            e.alu(1, 1, 0);
            e.branch(1);
        }
        e.store(totAddr(t, 0), 7, 4);
        e.store(totAddr(t, 1), 8, 4);
        for (std::size_t j = 0; j < n; ++j) {
            e.load(bufAddr(rd, srcOf[t][j]), 5, 6);
            e.alu(5, 5, 0);   // drift
            e.store(bufAddr(wr, j), 5, 2);
            e.alu(1, 1, 0);
            e.branch(1);
        }
    }
}

void
ParticlefilterWorkload::emitVector(InstrSink& sink, std::uint32_t hw_vl)
{
    Emit e(sink);
    std::vector<std::uint32_t> offsets;
    for (std::size_t t = 0; t < iters; ++t) {
        const std::size_t rd = t % 2;
        const std::size_t wr = 1 - rd;
        const std::int32_t obs = observation(t);
        // 1. Likelihood weights.
        for (std::size_t pb = 0; pb < n; pb += hw_vl) {
            const std::uint32_t vl =
                std::uint32_t(std::min<std::size_t>(hw_vl, n - pb));
            e.setVl(vl);
            e.vload(1, bufAddr(rd, pb), vl);
            e.vx(Op::VSub, 2, 1, obs, vl);
            e.vx(Op::VRsub, 3, 2, 0, vl);
            e.vv(Op::VMax, 2, 2, 3, vl);  // |x - obs|
            e.vx(Op::VMin, 2, 2, 32, vl);
            e.vx(Op::VAdd, 2, 2, 32, vl);
            e.vstore(2, wAddr(pb), vl);
            e.stripOverhead(1);
        }
        // 2. Total and peak weight.
        e.setVl(1);
        e.vx(Op::VMvVX, 4, 0, 0, 1);
        e.vx(Op::VMvVX, 5, 0, 0, 1);
        for (std::size_t pb = 0; pb < n; pb += hw_vl) {
            const std::uint32_t vl =
                std::uint32_t(std::min<std::size_t>(hw_vl, n - pb));
            e.setVl(vl);
            e.vload(2, wAddr(pb), vl);
            e.vv(Op::VRedSum, 4, 2, 4, vl);
            e.vv(Op::VRedMax, 5, 2, 5, vl);
            e.stripOverhead(1);
        }
        e.setVl(1);
        e.vstore(4, totAddr(t, 0), 1);
        e.vstore(5, totAddr(t, 1), 1);
        Instr mv;  // read the total back for the resampling step
        mv.op = Op::VMvXS;
        mv.src1 = 4;
        mv.vl = 1;
        sink.consume(mv);
        // 3. Systematic-resampling scatter rounds: round r copies
        // every particle with cnt > r into slot dstart + r.
        for (std::int32_t r = 0; r < maxCnt[t]; ++r) {
            for (std::size_t pb = 0; pb < n; pb += hw_vl) {
                const std::uint32_t vl = std::uint32_t(
                    std::min<std::size_t>(hw_vl, n - pb));
                e.setVl(vl);
                e.vload(6, cntAddr(t, pb), vl);
                e.vload(7, dstartAddr(t, pb), vl);
                e.vx(Op::VAdd, 7, 7, r, vl);
                e.vx(Op::VSll, 7, 7, 2, vl);  // byte offsets
                e.vx(Op::VMsgt, 0, 6, r, vl);
                e.vload(1, bufAddr(rd, pb), vl);
                offsets.resize(vl);
                for (std::uint32_t i = 0; i < vl; ++i) {
                    // Inactive lanes never store; keep their (unused)
                    // offsets in range for the timing model.
                    const std::int32_t slot = std::min<std::int32_t>(
                        dstart[t][pb + i] + r, std::int32_t(n) - 1);
                    offsets[i] = std::uint32_t(slot) * 4;
                }
                e.vstoreIndexed(1, bufAddr(wr, 0), offsets, 7, true);
                e.stripOverhead(2);
            }
        }
        // 4. Drift update on the resampled population.
        for (std::size_t pb = 0; pb < n; pb += hw_vl) {
            const std::uint32_t vl =
                std::uint32_t(std::min<std::size_t>(hw_vl, n - pb));
            e.setVl(vl);
            e.vload(1, bufAddr(wr, pb), vl);
            e.vx(Op::VAdd, 1, 1, drift(t), vl);
            e.vstore(1, bufAddr(wr, pb), vl);
            e.stripOverhead(1);
        }
    }
}

std::uint64_t
ParticlefilterWorkload::verify() const
{
    std::uint64_t bad = 0;
    const std::size_t fin = iters % 2;
    for (std::size_t p = 0; p < n; ++p) {
        if (mem.load32(bufAddr(fin, p)) != refX[p])
            ++bad;
        if (mem.load32(wAddr(p)) != refW[p])
            ++bad;
    }
    for (std::size_t t = 0; t < iters; ++t) {
        if (mem.load32(totAddr(t, 0)) != refTotal[t])
            ++bad;
        if (mem.load32(totAddr(t, 1)) != refMax[t])
            ++bad;
    }
    return bad;
}

} // namespace eve
