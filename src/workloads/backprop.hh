/**
 * @file
 * backprop (Rodinia, integer variant): one training step of a
 * two-layer perceptron. The forward pass is unit-stride (weight rows)
 * with multiply-accumulate; the weight-update pass walks weight
 * *columns* with a very large stride, so no two elements share a
 * cacheline — the paper's MSHR-limited worst case (Figure 8).
 */

#ifndef EVE_WORKLOADS_BACKPROP_HH
#define EVE_WORKLOADS_BACKPROP_HH

#include "workloads/workload.hh"

namespace eve
{

/** The backprop kernel. */
class BackpropWorkload : public Workload
{
  public:
    explicit BackpropWorkload(std::size_t inputs = 16384,
                              std::size_t hidden = 64);

    std::string name() const override { return "backprop"; }
    std::string suite() const override { return "rodinia"; }
    void init() override;
    void emitScalar(InstrSink& sink) override;
    void emitVector(InstrSink& sink, std::uint32_t hw_vl) override;
    std::uint64_t verify() const override;

  private:
    Addr inAddr(std::size_t i) const { return Addr(i) * 4; }
    Addr wAddr(std::size_t i, std::size_t j) const
    {
        return Addr(inputs + i * hidden + j) * 4;
    }
    Addr hidAddr(std::size_t j) const
    {
        return Addr(inputs + inputs * hidden + j) * 4;
    }
    Addr deltaAddr(std::size_t j) const
    {
        return Addr(inputs + inputs * hidden + hidden + j) * 4;
    }

    std::size_t inputs;
    std::size_t hidden;
    std::vector<std::int32_t> in;
    std::vector<std::int32_t> delta;
    std::vector<std::int32_t> refHidden;
    std::vector<std::int32_t> refW;  ///< weights after the update
};

} // namespace eve

#endif // EVE_WORKLOADS_BACKPROP_HH
