#include "workloads/axpy.hh"

#include "common/rng.hh"

namespace eve
{

AxpyWorkload::AxpyWorkload(std::size_t n) : n(n) {}

void
AxpyWorkload::init()
{
    mem.resize(2 * n * 4 + 64);
    Rng rng(0xa991);
    a = std::int32_t(rng.range(2, 9));
    refY.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::int32_t x = std::int32_t(rng.range(-1000, 1000));
        const std::int32_t y = std::int32_t(rng.range(-1000, 1000));
        mem.store32(xAddr(i), x);
        mem.store32(yAddr(i), y);
        refY[i] = std::int32_t(std::uint32_t(y) +
                               std::uint32_t(a) * std::uint32_t(x));
    }
}

void
AxpyWorkload::emitScalar(InstrSink& sink)
{
    Emit e(sink);
    for (std::size_t i = 0; i < n; ++i) {
        e.load(xAddr(i), 5, 2);
        e.load(yAddr(i), 6, 3);
        e.mul(7, 5, 4);  // a * x
        e.alu(6, 6, 7);  // y + a*x
        e.store(yAddr(i), 6, 3);
        e.alu(2, 2, 0);
        e.alu(3, 3, 0);
        e.alu(1, 1, 0);
        e.branch(1);
    }
}

void
AxpyWorkload::emitVector(InstrSink& sink, std::uint32_t hw_vl)
{
    Emit e(sink);
    for (std::size_t ib = 0; ib < n; ib += hw_vl) {
        const std::uint32_t vl =
            std::uint32_t(std::min<std::size_t>(hw_vl, n - ib));
        e.setVl(vl);
        e.vload(1, xAddr(ib), vl);
        e.vload(2, yAddr(ib), vl);
        e.vx(Op::VMacc, 2, 1, a, vl);  // y += a * x
        e.vstore(2, yAddr(ib), vl);
        e.stripOverhead(2);
    }
}

std::uint64_t
AxpyWorkload::verify() const
{
    std::uint64_t bad = 0;
    for (std::size_t i = 0; i < n; ++i)
        if (mem.load32(yAddr(i)) != refY[i])
            ++bad;
    return bad;
}

} // namespace eve
