/**
 * @file
 * spmv (extension workload): sparse matrix-vector product in CSR
 * form, y = A x. The gather of x through the column-index array is
 * the canonical indexed-load stress test; rows are processed as
 * strips of nonzeros ending in a masked reduction.
 */

#ifndef EVE_WORKLOADS_SPMV_HH
#define EVE_WORKLOADS_SPMV_HH

#include "workloads/workload.hh"

namespace eve
{

/** The spmv kernel. */
class SpmvWorkload : public Workload
{
  public:
    SpmvWorkload(std::size_t rows = 2048, std::size_t nnz_per_row = 32);

    std::string name() const override { return "spmv"; }
    std::string suite() const override { return "extension"; }
    void init() override;
    void emitScalar(InstrSink& sink) override;
    void emitVector(InstrSink& sink, std::uint32_t hw_vl) override;
    std::uint64_t verify() const override;

  private:
    std::size_t nnz() const { return rows * nnzPerRow; }
    Addr valAddr(std::size_t i) const { return Addr(i) * 4; }
    Addr colAddr(std::size_t i) const { return Addr(nnz() + i) * 4; }
    Addr xAddr(std::size_t i) const
    {
        return Addr(2 * nnz() + i) * 4;
    }
    Addr yAddr(std::size_t r) const
    {
        return Addr(2 * nnz() + rows + r) * 4;
    }

    std::size_t rows;
    std::size_t nnzPerRow;
    std::vector<std::int32_t> cols;
    std::vector<std::int32_t> refY;
};

} // namespace eve

#endif // EVE_WORKLOADS_SPMV_HH
