#include <algorithm>

#include "workloads/backprop.hh"

#include "common/rng.hh"

namespace eve
{

BackpropWorkload::BackpropWorkload(std::size_t inputs, std::size_t hidden)
    : inputs(inputs), hidden(hidden)
{
}

void
BackpropWorkload::init()
{
    mem.resize((inputs + inputs * hidden + 2 * hidden) * 4 + 64);
    Rng rng(0xb9);
    in.resize(inputs);
    delta.resize(hidden);
    std::vector<std::int32_t> w(inputs * hidden);
    for (std::size_t i = 0; i < inputs; ++i) {
        in[i] = std::int32_t(rng.range(-64, 64));
        mem.store32(inAddr(i), in[i]);
    }
    for (std::size_t j = 0; j < hidden; ++j) {
        delta[j] = std::int32_t(rng.range(-16, 16));
        mem.store32(deltaAddr(j), delta[j]);
    }
    for (std::size_t idx = 0; idx < inputs * hidden; ++idx) {
        w[idx] = std::int32_t(rng.range(-128, 128));
        mem.store32(Addr(inputs + idx) * 4, w[idx]);
    }

    // Forward pass: hidden[j] = (sum_i in[i] * w[i][j]) >> 8.
    refHidden.assign(hidden, 0);
    for (std::size_t i = 0; i < inputs; ++i)
        for (std::size_t j = 0; j < hidden; ++j)
            refHidden[j] = std::int32_t(
                std::uint32_t(refHidden[j]) +
                std::uint32_t(in[i]) * std::uint32_t(w[i * hidden + j]));
    for (auto& h : refHidden)
        h >>= 8;

    // Weight update: w[i][j] += (in[i] * delta[j]) >> 6.
    refW = w;
    for (std::size_t i = 0; i < inputs; ++i)
        for (std::size_t j = 0; j < hidden; ++j) {
            // Matches the vector program: 32-bit wrapping multiply,
            // then an arithmetic shift (vsra).
            const std::int32_t prod = std::int32_t(
                std::uint32_t(in[i]) * std::uint32_t(delta[j]));
            refW[i * hidden + j] = std::int32_t(
                std::uint32_t(refW[i * hidden + j]) +
                std::uint32_t(prod >> 6));
        }
}

void
BackpropWorkload::emitScalar(InstrSink& sink)
{
    Emit e(sink);
    // Forward pass.
    for (std::size_t i = 0; i < inputs; ++i) {
        e.load(inAddr(i), 5, 2);
        for (std::size_t j = 0; j < hidden; ++j) {
            e.load(wAddr(i, j), 6, 3);
            e.mul(7, 5, 6);
            e.alu(8, 8, 7);
            e.alu(1, 1, 0);
            e.branch(1);
        }
    }
    for (std::size_t j = 0; j < hidden; ++j)
        e.store(hidAddr(j), 8, 4);
    // Weight update (column walk).
    for (std::size_t j = 0; j < hidden; ++j) {
        e.load(deltaAddr(j), 5, 2);
        for (std::size_t i = 0; i < inputs; ++i) {
            e.load(inAddr(i), 6, 3);
            e.mul(7, 5, 6);
            e.alu(7, 7, 0);  // shift
            e.load(wAddr(i, j), 8, 4);
            e.alu(8, 8, 7);
            e.store(wAddr(i, j), 8, 4);
            e.alu(1, 1, 0);
            e.branch(1);
        }
    }
}

void
BackpropWorkload::emitVector(InstrSink& sink, std::uint32_t hw_vl)
{
    Emit e(sink);
    const std::int64_t col_stride_fw = std::int64_t(hidden) * 4;
    // Forward pass: vectorized over the (long) input dimension with
    // a dot-product per hidden unit — strided weight-column loads
    // and a reduction, keeping the vector length at hardware scale.
    for (std::size_t j = 0; j < hidden; ++j) {
        const std::uint32_t first_vl =
            std::uint32_t(std::min<std::size_t>(hw_vl, inputs));
        e.setVl(first_vl);
        e.vx(Op::VMvVX, 8, 0, 0, first_vl);  // reduction seed
        for (std::size_t ib = 0; ib < inputs; ib += hw_vl) {
            const std::uint32_t vl =
                std::uint32_t(std::min<std::size_t>(hw_vl, inputs - ib));
            e.setVl(vl);
            e.vload(9, inAddr(ib), vl);
            e.vloadStrided(10, wAddr(ib, j), col_stride_fw, vl);
            e.vv(Op::VMul, 11, 9, 10, vl);
            e.vv(Op::VRedSum, 8, 11, 8, vl);
            e.stripOverhead(2);
        }
        e.setVl(1);
        e.vx(Op::VSra, 8, 8, 8, 1);
        e.vstore(8, hidAddr(j), 1);
        e.stripOverhead(1);
    }
    // Weight update: vectorized over inputs — strided column access
    // with stride hidden*4 bytes (one cacheline per element).
    const std::int64_t col_stride = std::int64_t(hidden) * 4;
    for (std::size_t j = 0; j < hidden; ++j) {
        for (std::size_t ib = 0; ib < inputs; ib += hw_vl) {
            const std::uint32_t vl =
                std::uint32_t(std::min<std::size_t>(hw_vl, inputs - ib));
            e.setVl(vl);
            e.vload(1, inAddr(ib), vl);
            e.vx(Op::VMul, 2, 1, delta[j], vl);
            e.vx(Op::VSra, 2, 2, 6, vl);
            e.vloadStrided(3, wAddr(ib, j), col_stride, vl);
            e.vv(Op::VAdd, 3, 3, 2, vl);
            e.vstoreStrided(3, wAddr(ib, j), col_stride, vl);
            e.stripOverhead(2);
        }
    }
}

std::uint64_t
BackpropWorkload::verify() const
{
    std::uint64_t bad = 0;
    for (std::size_t j = 0; j < hidden; ++j)
        if (mem.load32(hidAddr(j)) != refHidden[j])
            ++bad;
    for (std::size_t idx = 0; idx < inputs * hidden; ++idx)
        if (mem.load32(Addr(inputs + idx) * 4) != refW[idx])
            ++bad;
    return bad;
}

} // namespace eve
