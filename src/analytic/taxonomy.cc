#include "analytic/taxonomy.hh"

#include "analytic/circuits.hh"
#include "core/uprog/macro_lib.hh"

namespace eve
{

TaxonomyPoint
taxonomyPoint(const TaxonomyParams& params, unsigned pf)
{
    LayoutParams lp;
    lp.rows = params.rows;
    lp.cols = params.cols;
    lp.num_vregs = params.num_vregs;
    lp.elem_bits = params.elem_bits;
    lp.pf = pf;
    Layout layout(lp);

    EveSramConfig cfg;
    cfg.lanes = 1;  // geometry irrelevant for program length
    cfg.pf = pf;
    cfg.elem_bits = params.elem_bits;
    cfg.num_vregs = params.num_vregs;
    cfg.scratch_regs = 16;
    MacroLib lib(cfg);

    Instr add;
    add.op = Op::VAdd;
    add.dst = 1;
    add.src1 = 2;
    add.src2 = 3;
    Instr mul = add;
    mul.op = Op::VMul;

    TaxonomyPoint point;
    point.pf = pf;
    point.alus = layout.lanesPerArray();
    point.addLatency = lib.cycles(add);
    point.mulLatency = lib.cycles(mul);
    point.columnUtilization = layout.columnUtilization();
    point.storageUtilization = layout.storageUtilization();

    double cycle_scale = 1.0;
    if (params.scale_cycle_time)
        cycle_scale = CircuitModel::baselineCycleNs() /
                      CircuitModel::cycleTimeNs(pf);

    point.addThroughput = cycle_scale * double(point.alus) /
                          double(point.addLatency);
    point.mulThroughput = cycle_scale * double(point.alus) /
                          double(point.mulLatency);
    return point;
}

std::vector<TaxonomyPoint>
taxonomySweep(const TaxonomyParams& params)
{
    std::vector<TaxonomyPoint> sweep;
    for (unsigned pf = 1; pf <= params.elem_bits; pf *= 2)
        sweep.push_back(taxonomyPoint(params, pf));
    return sweep;
}

Fig1Point
fig1Point(unsigned rows, unsigned cols, unsigned elem_bits,
          unsigned num_vregs, unsigned pf)
{
    LayoutParams lp;
    lp.rows = rows;
    lp.cols = cols;
    lp.num_vregs = num_vregs;
    lp.elem_bits = elem_bits;
    lp.pf = pf;
    Layout layout(lp);

    Fig1Point point;
    point.num_vregs = num_vregs;
    point.pf = pf;
    point.elements = layout.lanesPerArray();
    point.alus = layout.lanesPerArray();
    point.storageUtilization = layout.storageUtilization();
    return point;
}

} // namespace eve
