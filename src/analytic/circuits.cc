#include "analytic/circuits.hh"

#include "common/log.hh"

namespace eve
{

double
CircuitModel::cycleTimeNs(unsigned pf)
{
    if (pf <= 8)
        return baselineCycleNs();
    if (pf == 16)
        return 1.175;
    if (pf == 32)
        return 1.55;
    fatal("CircuitModel: unsupported parallelization factor %u", pf);
}

std::vector<StackArea>
CircuitModel::stacks(unsigned pf)
{
    // Per-stack estimates (percent of a vanilla sub-array) chosen to
    // sum to the paper's measured totals: 9.0% (EVE-1), 15.6%
    // (EVE-n, 2..16), 12.6% (EVE-32).
    if (pf == 1) {
        return {
            {"bus logic", 2.5},
            {"xor/xnor logic", 1.8},
            {"add logic (1-bit)", 1.0},
            {"xregister", 2.4},
            {"mask logic", 1.3},
        };
    }
    if (pf == 32) {
        return {
            {"bus logic", 2.5},
            {"xor/xnor logic", 1.8},
            {"add logic (32-bit mcc)", 3.2},
            {"xregister", 2.4},
            {"constant shifter", 1.4},
            {"mask logic", 1.3},
        };
    }
    return {
        {"bus logic", 2.5},
        {"xor/xnor logic", 1.8},
        {"add logic (n-bit mcc)", 3.2},
        {"xregister", 2.4},
        {"constant shifter", 2.6},
        {"spare shifter", 1.8},
        {"mask logic", 1.3},
    };
}

double
CircuitModel::arrayOverheadPct(unsigned pf)
{
    double total = 0.0;
    for (const auto& stack : stacks(pf))
        total += stack.pct;
    return total;
}

double
CircuitModel::bankedOverheadPct(unsigned pf)
{
    return arrayOverheadPct(pf) / 2.0;
}

double
CircuitModel::engineOverheadPct(unsigned pf)
{
    // Only half the L2's SRAMs are EVE SRAMs, so the circuit
    // overhead at the L2 level is half the banked figure; the DTUs
    // (8 x half a sub-array) and the macro-op ROM (one sub-array)
    // add 5 sub-arrays over the L2's 64: 7.8%.
    const double circuit = bankedOverheadPct(pf) / 2.0;
    const double units = 100.0 * 5.0 / 64.0;
    return circuit + units;
}

double
SystemAreaModel::o3eve(unsigned pf)
{
    if (pf == 1)
        return 1.10;
    if (pf == 32)
        return 1.11;
    if (pf >= 2 && pf <= 16)
        return 1.12;
    fatal("SystemAreaModel: unsupported parallelization factor %u", pf);
}

} // namespace eve
