#include "analytic/energy.hh"

namespace eve
{

namespace
{

double
cacheEnergyNj(const RunResult& r, const EnergyParams& p)
{
    auto level = [&](const char* name, double per_line_pj) {
        return (r.stat(std::string(name) + ".reads") +
                r.stat(std::string(name) + ".writes")) *
               per_line_pj;
    };
    return (level("l1i", p.l1_line_pj) + level("l1d", p.l1_line_pj) +
            level("l2", p.l2_line_pj) + level("llc", p.llc_line_pj)) /
           1e3;
}

} // namespace

EnergyReport
estimateEnergy(const RunResult& result, const SystemConfig& config,
               const EnergyParams& params)
{
    EnergyReport report;

    const double dram_lines =
        result.stat("dram.reads") + result.stat("dram.writes");
    report.dram_nj = dram_lines * params.dram_line_pj / 1e3;
    report.cache_nj = cacheEnergyNj(result, params);

    const double scalar_instrs =
        double(result.instrs) - double(result.vecInstrs);
    const double core_pj = config.kind == SystemKind::IO
                               ? params.io_instr_pj
                               : params.o3_instr_pj;
    report.core_nj = scalar_instrs * core_pj / 1e3;

    switch (config.kind) {
      case SystemKind::IO:
      case SystemKind::O3:
        break;
      case SystemKind::O3IV:
        report.engine_nj =
            double(result.vecElemOps) * params.iv_elem_pj / 1e3;
        break;
      case SystemKind::O3DV:
        report.engine_nj =
            double(result.vecElemOps) * params.dv_elem_pj / 1e3;
        break;
      case SystemKind::O3EVE: {
        // Charge a blended row-op energy (roughly one blc + one
        // write per two micro-ops plus cheap shifter ops) per
        // micro-op per *active* sub-array (VCU clock gating).
        const double array_uops = result.stat("eve.vsu_array_uops");
        const double blended_pj =
            0.4 * params.blc_pj + 0.4 * params.sram_write_pj +
            0.2 * params.uop_other_pj;
        report.engine_nj = array_uops * blended_pj / 1e3;
        break;
      }
    }
    return report;
}

} // namespace eve
