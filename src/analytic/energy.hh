/**
 * @file
 * First-order energy model (the paper's Energy/Power Analysis,
 * Section VII).
 *
 * The paper's claims are comparative: blc costs ~1.2x a vanilla SRAM
 * read, the remaining extra micro-ops are cheaper than reads (no
 * bit-line precharge), peak array power rises at most 20%, and EVE
 * avoids the two big energy sinks of conventional vector engines —
 * multi-ported vector register files and redundant data movement
 * from the L2 through the H-tree to remote functional units.
 *
 * This model turns those claims into numbers using documented
 * 28 nm-class per-event energies. Absolute joules are estimates; the
 * *relative* ordering across systems is the reproduced result.
 */

#ifndef EVE_ANALYTIC_ENERGY_HH
#define EVE_ANALYTIC_ENERGY_HH

#include "driver/system.hh"

namespace eve
{

/** Per-event energies in picojoules (28 nm-class estimates). */
struct EnergyParams
{
    // One 256-column row operation in a sub-array.
    double sram_read_pj = 20.0;
    double sram_write_pj = 18.0;
    double blc_pj = 24.0;        ///< 1.2x a read (Section VI)
    double uop_other_pj = 4.0;   ///< shifter/mask ops: no precharge

    // Per cacheline access at each level (array + H-tree).
    double l1_line_pj = 120.0;
    double l2_line_pj = 450.0;
    double llc_line_pj = 1400.0;
    double dram_line_pj = 10000.0;

    // Core energy per dynamic instruction.
    double io_instr_pj = 15.0;
    double o3_instr_pj = 45.0;

    // Conventional vector datapath energy per element operation,
    // including the (multi-ported) vector register file traffic EVE
    // eliminates.
    double iv_elem_pj = 10.0;
    double dv_elem_pj = 14.0;
};

/** Energy breakdown of one run, in nanojoules. */
struct EnergyReport
{
    double core_nj = 0;
    double engine_nj = 0;   ///< vector datapath / EVE SRAM micro-ops
    double cache_nj = 0;
    double dram_nj = 0;

    double total_nj() const
    {
        return core_nj + engine_nj + cache_nj + dram_nj;
    }
};

/** Estimate the energy of a finished run. */
EnergyReport estimateEnergy(const RunResult& result,
                            const SystemConfig& config,
                            const EnergyParams& params = {});

} // namespace eve

#endif // EVE_ANALYTIC_ENERGY_HH
