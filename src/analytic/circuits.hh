/**
 * @file
 * The Section VI circuits model: area overhead, cycle time, and
 * energy of EVE-n SRAMs, and system-level area of every simulated
 * configuration.
 *
 * The paper measures these with OpenRAM-generated 28 nm layouts; we
 * cannot run a PDK offline, so the model is parameterized by the
 * paper's measured constants and decomposed into per-stack
 * contributions (documented estimates that sum to the measured
 * totals) so that trends across EVE-n and hypothetical stack
 * ablations remain computable.
 */

#ifndef EVE_ANALYTIC_CIRCUITS_HH
#define EVE_ANALYTIC_CIRCUITS_HH

#include <string>
#include <vector>

namespace eve
{

/** Per-stack area contribution, percent of a vanilla sub-array. */
struct StackArea
{
    std::string stack;
    double pct;
};

/** Area/timing/energy model of EVE circuits. */
class CircuitModel
{
  public:
    /** Vanilla 28 nm SRAM cycle time (ns) from the OpenRAM baseline. */
    static double baselineCycleNs() { return 1.025; }

    /**
     * Cycle time of an EVE-n design (ns): no penalty up to n=8,
     * +15% at n=16, +51% at n=32 (carry-chain critical path).
     */
    static double cycleTimeNs(unsigned pf);

    /** Peripheral stacks present in an EVE-n design. */
    static std::vector<StackArea> stacks(unsigned pf);

    /**
     * Array-level area overhead (percent over a vanilla sub-array):
     * EVE-1 9.0%, EVE-n (2..16) 15.6%, EVE-32 12.6%.
     */
    static double arrayOverheadPct(unsigned pf);

    /**
     * Banked overhead: an EVE SRAM is two banked 256x128 sub-arrays
     * sharing one peripheral stack, halving the overhead.
     */
    static double bankedOverheadPct(unsigned pf);

    /**
     * Overhead of the measured simplified EVE SRAM (no constant
     * shifter), from the DRC/LVS-clean 256x128 layout.
     */
    static double simplifiedOverheadPct() { return 8.2; }

    /**
     * L2-level overhead of the whole engine: circuit overhead on the
     * EVE half of the ways, plus 8 DTUs (half a sub-array each) and
     * the macro-op ROM (one sub-array) over the L2's 64 sub-arrays.
     */
    static double engineOverheadPct(unsigned pf);

    /** Relative energy of a blc vs. a vanilla SRAM read. */
    static double blcEnergyVsRead() { return 1.20; }

    /** Peak power increase of the SRAM arrays. */
    static double peakPowerOverheadPct() { return 20.0; }
};

/** System-level area relative to the bare O3 core (Section VII). */
class SystemAreaModel
{
  public:
    static double o3() { return 1.0; }
    static double o3iv() { return 1.10; }
    static double o3dv() { return 2.00; }

    /** EVE-n system area: 1.10x (n=1), 1.12x (2..16), 1.11x (32). */
    static double o3eve(unsigned pf);
};

} // namespace eve

#endif // EVE_ANALYTIC_CIRCUITS_HH
