#include <algorithm>

#include "cpu/o3_core.hh"

#include "common/log.hh"

namespace eve
{

O3Core::O3Core(const O3CoreParams& params, MemHierarchy& mem)
    : params(params),
      mem(mem),
      clock(params.clock_ns),
      slotPeriod(std::max<Tick>(clock.period() / params.width, 1)),
      rob(std::size_t(params.rob) + 1),
      lsq(params.lsq),
      statGroup("o3")
{
    statInstrs = statGroup.id("instrs");
    statRobStall = statGroup.id("rob_stall_ticks");
    statLsqStall = statGroup.id("lsq_stall_ticks");
    statVectorDispatches = statGroup.id("vector_dispatches");
    statCommitStall = statGroup.id("commit_stall_ticks");
}

Tick
O3Core::dispatchSlot()
{
    Tick slot = lastSlot + slotPeriod;
    // A full reorder buffer stalls dispatch until the head retires
    // (in program order).
    if (robCount >= params.rob) {
        const Tick head = rob[robHead];
        if (++robHead == rob.size())
            robHead = 0;
        --robCount;
        if (head > slot) {
            statGroup.add(statRobStall, double(head - slot));
            slot = head;
        }
    }
    lastSlot = slot;
    return slot;
}

void
O3Core::consume(const Instr& instr)
{
    if (isVectorOp(instr.op))
        panic("O3Core: vector instruction %s reached the scalar core",
              std::string(opName(instr.op)).c_str());

    statGroup.add(statInstrs, 1);
    const Tick slot = dispatchSlot();
    Tick issue = std::max({slot, regReady[instr.src1],
                           regReady[instr.src2]});
    Tick done;

    switch (opClass(instr.op)) {
      case OpClass::ScalarAlu:
      case OpClass::ScalarBranch:
        done = issue + clock.period();
        break;
      case OpClass::ScalarMul:
        done = issue + clock.toTicks(params.mul_latency);
        break;
      case OpClass::ScalarLoad: {
        Tick completion = 0;
        const Tick grant = lsq.acquire(issue, [&](Tick g) {
            completion = mem.l1d().access(instr.addr, false, g);
            return completion;
        });
        statGroup.add(statLsqStall, double(grant - issue));
        done = completion;
        break;
      }
      case OpClass::ScalarStore:
        // Stores complete at issue from the window's perspective and
        // drain to the L1D afterwards.
        done = issue + clock.period();
        lastStoreDone = std::max(
            lastStoreDone, mem.l1d().access(instr.addr, true, done));
        break;
      default:
        panic("O3Core: unexpected op class");
    }

    if (instr.dst != 0)
        regReady[instr.dst] = done;
    robPush(done);
    inOrderDone = std::max(inOrderDone, done);
}

Tick
O3Core::dispatchVector(const Instr& instr)
{
    (void)instr;
    statGroup.add(statVectorDispatches, 1);
    const Tick slot = dispatchSlot();
    // The instruction is sent to the engine once it is the oldest and
    // ready to commit (EVE does not support precise exceptions).
    const Tick commit = std::max(slot, inOrderDone) + clock.period();
    robPush(commit);
    inOrderDone = std::max(inOrderDone, commit);
    return commit;
}

void
O3Core::stallCommit(Tick until)
{
    if (until > inOrderDone) {
        statGroup.add(statCommitStall, double(until - inOrderDone));
        inOrderDone = until;
    }
    lastSlot = std::max(lastSlot, until);
}

Tick
O3Core::takeSlot()
{
    return dispatchSlot();
}

void
O3Core::recordCompletion(Tick done)
{
    robPush(done);
    inOrderDone = std::max(inOrderDone, done);
}

void
O3Core::finish()
{
    statGroup.set("cycles", double(finalTick()) / clock.period());
}

Tick
O3Core::finalTick() const
{
    return std::max({inOrderDone, lastStoreDone, lastSlot});
}

} // namespace eve
