/**
 * @file
 * Interface of every end-to-end timing model (a "simulated system"
 * row of Table III). The API is two-level:
 *
 *  - InstrSink: workloads stream their dynamic trace into the model
 *    (push side, unchanged — a workload never sees the clock);
 *  - Clocked: the driver owns the clock and steps the model with
 *    tick(), feeding it through an attached InstrFeed. A model with
 *    no attached feed (the classic inline path) is permanently
 *    quiesced from the driver's point of view because every record
 *    was already folded in synchronously by consume().
 *
 * After finish() the model reports how long the run took.
 */

#ifndef EVE_CPU_TIMING_MODEL_HH
#define EVE_CPU_TIMING_MODEL_HH

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/instr.hh"
#include "sim/clocked.hh"

namespace eve
{

/** One simulated system consuming a dynamic instruction stream. */
class TimingModel : public InstrSink, public Clocked
{
  public:
    /** Drain all in-flight work (pipelines, queues, engines). */
    virtual void finish() = 0;

    /** End-of-run time; valid after finish(). */
    virtual Tick finalTick() const = 0;

    /** Model statistics. */
    virtual StatGroup& stats() = 0;

    /** Cycle time of the model's core clock, in nanoseconds. */
    virtual double clockNs() const = 0;

    /**
     * Attach (or detach, with nullptr) the channel tick() drains.
     * Records already biased/filtered by the producer side arrive
     * exactly as a direct consume() call would deliver them.
     */
    void attachFeed(InstrFeed* f) { feed = f; }

    /** Fold every record currently available in the feed. */
    void
    tick(Tick horizon) override
    {
        (void)horizon; // lazy models fold all arrived work at once
        ++tickInvocations;
        if (feed)
            feed->drain([this](const Instr& i) { consume(i); });
    }

    bool quiesced() const override { return !feed || feed->empty(); }

    Tick
    nextEventTick() const override
    {
        return quiesced() ? kNoEventTick : finalTick();
    }

  private:
    InstrFeed* feed = nullptr;
};

} // namespace eve

#endif // EVE_CPU_TIMING_MODEL_HH
