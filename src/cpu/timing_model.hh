/**
 * @file
 * Interface of every end-to-end timing model (a "simulated system"
 * row of Table III). A timing model is an instruction sink: workloads
 * stream their dynamic trace into it, and after finish() the model
 * reports how long the run took.
 */

#ifndef EVE_CPU_TIMING_MODEL_HH
#define EVE_CPU_TIMING_MODEL_HH

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/instr.hh"

namespace eve
{

/** One simulated system consuming a dynamic instruction stream. */
class TimingModel : public InstrSink
{
  public:
    /** Drain all in-flight work (pipelines, queues, engines). */
    virtual void finish() = 0;

    /** End-of-run time; valid after finish(). */
    virtual Tick finalTick() const = 0;

    /** Model statistics. */
    virtual StatGroup& stats() = 0;

    /** Cycle time of the model's core clock, in nanoseconds. */
    virtual double clockNs() const = 0;
};

} // namespace eve

#endif // EVE_CPU_TIMING_MODEL_HH
