/**
 * @file
 * Single-issue in-order core timing model (the "IO" baseline of
 * Table III).
 *
 * One instruction per cycle; loads block until the L1D returns
 * (classic in-order load-to-use serialization); stores drain through
 * a small store buffer; taken loop branches cost one redirect cycle.
 */

#ifndef EVE_CPU_IO_CORE_HH
#define EVE_CPU_IO_CORE_HH

#include "cpu/timing_model.hh"
#include "mem/hierarchy.hh"
#include "sim/resource.hh"

namespace eve
{

/** Configuration of the in-order core. */
struct IOCoreParams
{
    double clock_ns = 1.025;
    Cycles mul_latency = 3;      ///< serial multiply/divide cost
    Cycles branch_penalty = 1;   ///< taken-branch redirect bubble
    unsigned store_buffer = 8;
};

/** The in-order core. */
class IOCore : public TimingModel
{
  public:
    IOCore(const IOCoreParams& params, MemHierarchy& mem);

    void consume(const Instr& instr) override;
    void finish() override;
    Tick finalTick() const override { return now; }
    StatGroup& stats() override { return statGroup; }
    double clockNs() const override { return clock.periodNs(); }

  private:
    IOCoreParams params;
    MemHierarchy& mem;
    ClockDomain clock;
    Tick now = 0;
    Tick lastStoreDone = 0;
    TokenPool storeBuffer;
    StatGroup statGroup;
    StatGroup::Id statInstrs, statLoadStall, statStoreStall;
};

} // namespace eve

#endif // EVE_CPU_IO_CORE_HH
