#include <algorithm>

#include "cpu/io_core.hh"

#include "common/log.hh"

namespace eve
{

IOCore::IOCore(const IOCoreParams& params, MemHierarchy& mem)
    : params(params),
      mem(mem),
      clock(params.clock_ns),
      storeBuffer(params.store_buffer),
      statGroup("io")
{
    statInstrs = statGroup.id("instrs");
    statLoadStall = statGroup.id("load_stall_ticks");
    statStoreStall = statGroup.id("store_stall_ticks");
}

void
IOCore::consume(const Instr& instr)
{
    if (isVectorOp(instr.op))
        panic("IOCore: vector instruction %s in a scalar trace",
              std::string(opName(instr.op)).c_str());

    statGroup.add(statInstrs, 1);
    now += clock.period();

    switch (opClass(instr.op)) {
      case OpClass::ScalarAlu:
        break;
      case OpClass::ScalarMul:
        now += clock.toTicks(params.mul_latency - 1);
        break;
      case OpClass::ScalarBranch:
        now += clock.toTicks(params.branch_penalty);
        break;
      case OpClass::ScalarLoad: {
        const Tick done = mem.l1d().access(instr.addr, false, now);
        statGroup.add(statLoadStall, double(done - now));
        now = done;
        break;
      }
      case OpClass::ScalarStore: {
        // Stores retire through the store buffer; the core only
        // stalls when the buffer is full.
        Tick done = 0;
        const Tick grant = storeBuffer.acquire(now, [&](Tick g) {
            done = mem.l1d().access(instr.addr, true, g);
            return done;
        });
        statGroup.add(statStoreStall, double(grant - now));
        now = grant;
        lastStoreDone = std::max(lastStoreDone, done);
        break;
      }
      default:
        panic("IOCore: unexpected op class");
    }
}

void
IOCore::finish()
{
    now = std::max(now, lastStoreDone);
    statGroup.set("cycles", double(now) / clock.period());
}

} // namespace eve
