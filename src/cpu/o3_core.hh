/**
 * @file
 * Out-of-order core timing model (the "O3" baseline of Table III and
 * the control processor of every vector system).
 *
 * Finite-window dataflow approximation: instructions dispatch at a
 * fixed width, issue when their source registers are ready, and
 * retire in order through a reorder buffer whose occupancy stalls
 * dispatch. Loads go through an LSQ and the L1D model (which applies
 * MSHR-limited miss parallelism); stores drain after issue without
 * blocking. Branches are assumed predicted (the traced kernels are
 * loop-dominated).
 *
 * Vector systems use two hooks: dispatchVector() accounts a dispatch
 * slot + in-order commit for a vector instruction and returns the
 * tick at which it is handed to the engine (EVE and DV receive
 * vector instructions at commit; the paper's Section V-A), and
 * stallCommit() models instructions that block commit awaiting an
 * engine response (vmv.x.s, vmfence).
 */

#ifndef EVE_CPU_O3_CORE_HH
#define EVE_CPU_O3_CORE_HH

#include <array>
#include <vector>

#include "cpu/timing_model.hh"
#include "mem/hierarchy.hh"
#include "sim/resource.hh"

namespace eve
{

/** Configuration of the out-of-order core. */
struct O3CoreParams
{
    double clock_ns = 1.025;
    unsigned width = 8;        ///< dispatch/commit width
    unsigned rob = 192;
    unsigned lsq = 32;
    Cycles mul_latency = 4;
};

/** The out-of-order core. */
class O3Core : public TimingModel
{
  public:
    O3Core(const O3CoreParams& params, MemHierarchy& mem);

    void consume(const Instr& instr) override;
    void finish() override;
    Tick finalTick() const override;
    StatGroup& stats() override { return statGroup; }
    double clockNs() const override { return clock.periodNs(); }

    /**
     * Account a dispatch slot and in-order commit for one vector
     * instruction; returns its commit tick (when the engine may
     * receive it).
     */
    Tick dispatchVector(const Instr& instr);

    /** Block commit (and thus further progress) until @p until. */
    void stallCommit(Tick until);

    /**
     * Take a dispatch slot for an engine-side micro-op (IV-style
     * integrated execution); returns the slot tick.
     */
    Tick takeSlot();

    /** Record an out-of-band completion in the window. */
    void recordCompletion(Tick done);

    const ClockDomain& clockDomain() const { return clock; }

  private:
    Tick dispatchSlot();

    /** Append one retirement tick at the ROB tail. */
    void robPush(Tick done)
    {
        rob[robTail] = done;
        if (++robTail == rob.size())
            robTail = 0;
        ++robCount;
    }

    O3CoreParams params;
    MemHierarchy& mem;
    ClockDomain clock;
    Tick slotPeriod;

    Tick lastSlot = 0;
    Tick inOrderDone = 0;   ///< running max of completions (commit)
    Tick lastStoreDone = 0;
    std::array<Tick, 64> regReady{};

    /**
     * Reorder buffer as a fixed ring of retirement ticks. Every
     * instruction pushes exactly one entry and the head is popped
     * only when occupancy reaches the window size, so occupancy
     * never exceeds params.rob — capacity rob + 1 can never fill.
     */
    std::vector<Tick> rob;
    std::size_t robHead = 0;
    std::size_t robTail = 0;
    std::size_t robCount = 0;
    TokenPool lsq;
    StatGroup statGroup;
    StatGroup::Id statInstrs, statRobStall, statLsqStall;
    StatGroup::Id statVectorDispatches, statCommitStall;
};

} // namespace eve

#endif // EVE_CPU_O3_CORE_HH
