#include "core/sram/bit_array.hh"

#include "common/log.hh"

namespace eve
{

BitArray::BitArray(unsigned rows, unsigned cols)
    : numRows(rows),
      numCols(cols),
      rowWords((cols + 63) / 64),
      cells(rows, RowBits(rowWords, 0))
{
    if (rows == 0 || cols == 0)
        fatal("BitArray: degenerate geometry %ux%u", rows, cols);
}

void
BitArray::checkRow(unsigned row) const
{
    if (row >= numRows)
        panic("BitArray: row %u out of %u", row, numRows);
}

bool
BitArray::get(unsigned row, unsigned col) const
{
    checkRow(row);
    if (col >= numCols)
        panic("BitArray: col %u out of %u", col, numCols);
    return (cells[row][col / 64] >> (col % 64)) & 1;
}

void
BitArray::set(unsigned row, unsigned col, bool value)
{
    checkRow(row);
    if (col >= numCols)
        panic("BitArray: col %u out of %u", col, numCols);
    std::uint64_t& word = cells[row][col / 64];
    const std::uint64_t mask = std::uint64_t{1} << (col % 64);
    word = value ? (word | mask) : (word & ~mask);
}

const RowBits&
BitArray::readRow(unsigned row) const
{
    checkRow(row);
    return cells[row];
}

void
BitArray::writeRow(unsigned row, const RowBits& value,
                   const RowBits* col_mask)
{
    checkRow(row);
    RowBits& target = cells[row];
    for (unsigned w = 0; w < rowWords; ++w) {
        if (col_mask) {
            const std::uint64_t m = (*col_mask)[w];
            target[w] = (target[w] & ~m) | (value[w] & m);
        } else {
            target[w] = value[w];
        }
    }
}

BlcSense
BitArray::bitLineCompute(unsigned row_a, unsigned row_b) const
{
    checkRow(row_a);
    checkRow(row_b);
    BlcSense sense{RowBits(rowWords), RowBits(rowWords)};
    const RowBits& a = cells[row_a];
    const RowBits& b = cells[row_b];
    for (unsigned w = 0; w < rowWords; ++w) {
        sense.andBits[w] = a[w] & b[w];
        sense.orBits[w] = a[w] | b[w];
    }
    return sense;
}

void
BitArray::clear()
{
    for (auto& row : cells)
        for (auto& word : row)
            word = 0;
}

} // namespace eve
