#include "core/sram/eve_sram.hh"

#include "common/bits.hh"
#include "common/log.hh"

namespace eve
{

EveSram::EveSram(const EveSramConfig& config)
    : cfg(config),
      segs(config.elem_bits / config.pf),
      array((config.num_vregs + config.scratch_regs) *
                (config.elem_bits / config.pf),
            config.lanes * config.pf),
      senseAnd(array.zeroRow()),
      senseOr(array.zeroRow()),
      addOut(array.zeroRow()),
      maskBits(array.zeroRow()),
      xregBits(array.zeroRow()),
      cshiftBits(array.zeroRow()),
      carryNext(config.lanes, 0),
      carryFF(config.lanes, 0),
      linkFF(config.lanes, 0)
{
    if (cfg.pf == 0 || cfg.elem_bits % cfg.pf != 0)
        fatal("EveSram: pf %u must divide element width %u",
              cfg.pf, cfg.elem_bits);
}

unsigned
EveSram::rowOf(unsigned vreg, unsigned seg) const
{
    if (vreg >= cfg.num_vregs + cfg.scratch_regs || seg >= segs)
        panic("EveSram::rowOf: v%u seg %u out of range", vreg, seg);
    return vreg * segs + seg;
}

unsigned
EveSram::scratchReg(unsigned i) const
{
    if (i >= cfg.scratch_regs)
        panic("EveSram::scratchReg: only %u scratch registers",
              cfg.scratch_regs);
    return cfg.num_vregs + i;
}

bool
EveSram::rowBit(const RowBits& row, unsigned col)
{
    return (row[col / 64] >> (col % 64)) & 1;
}

void
EveSram::setRowBit(RowBits& row, unsigned col, bool value)
{
    std::uint64_t& word = row[col / 64];
    const std::uint64_t mask = std::uint64_t{1} << (col % 64);
    word = value ? (word | mask) : (word & ~mask);
}

void
EveSram::computeAdd(CarryIn carry)
{
    // n-bit Manchester carry chain per lane: propagate = xor,
    // generate = and, sum = propagate ^ carry.
    for (unsigned lane = 0; lane < cfg.lanes; ++lane) {
        bool c;
        switch (carry) {
          case CarryIn::Zero: c = false; break;
          case CarryIn::One: c = true; break;
          default: c = carryFF[lane]; break;
        }
        for (unsigned b = 0; b < cfg.pf; ++b) {
            const unsigned col = lane * cfg.pf + b;
            const bool g = rowBit(senseAnd, col);
            const bool o = rowBit(senseOr, col);
            const bool p = o && !g;  // xor
            setRowBit(addOut, col, p != c);
            c = g || (c && p);
        }
        carryNext[lane] = c;
    }
}

RowBits
EveSram::writeValue(const Uop& uop) const
{
    RowBits value = array.zeroRow();
    const unsigned words = array.wordsPerRow();
    switch (uop.src) {
      case USrc::And:
        return senseAnd;
      case USrc::Or:
        return senseOr;
      case USrc::Add:
        return addOut;
      case USrc::Shift:
        return cshiftBits;
      case USrc::Nand:
        for (unsigned w = 0; w < words; ++w)
            value[w] = ~senseAnd[w];
        return value;
      case USrc::Nor:
        for (unsigned w = 0; w < words; ++w)
            value[w] = ~senseOr[w];
        return value;
      case USrc::Xor:
        for (unsigned w = 0; w < words; ++w)
            value[w] = senseOr[w] & ~senseAnd[w];
        return value;
      case USrc::Xnor:
        for (unsigned w = 0; w < words; ++w)
            value[w] = ~(senseOr[w] & ~senseAnd[w]);
        return value;
      case USrc::DataIn:
        // Broadcast the same n-bit segment into every lane.
        for (unsigned lane = 0; lane < cfg.lanes; ++lane)
            for (unsigned b = 0; b < cfg.pf; ++b)
                if (bit(uop.data, b))
                    setRowBit(value, lane * cfg.pf + b, true);
        return value;
      case USrc::MaskLsb:
        // The lane's mask bit lands in its LSB column; other columns
        // get zero (used to materialize 0/1 compare results).
        for (unsigned lane = 0; lane < cfg.lanes; ++lane)
            if (rowBit(maskBits, laneLsbCol(lane)))
                setRowBit(value, laneLsbCol(lane), true);
        return value;
      default:
        panic("EveSram: unknown write source %d", int(uop.src));
    }
}

void
EveSram::exec(const Uop& uop)
{
    switch (uop.kind) {
      case UKind::Nop:
        return;

      case UKind::Blc: {
        BlcSense sense = array.bitLineCompute(uop.rowA, uop.rowB);
        senseAnd = std::move(sense.andBits);
        senseOr = std::move(sense.orBits);
        computeAdd(uop.carry);
        return;
      }

      case UKind::Wr: {
        RowBits value = writeValue(uop);
        array.writeRow(uop.rowA, value, uop.useMask ? &maskBits : nullptr);
        if (uop.src == USrc::Add) {
            // Writing back an add result latches the segment carry
            // into the spare-shifter flip-flop for chaining. Masked
            // lanes keep their carry (they are not participating).
            for (unsigned lane = 0; lane < cfg.lanes; ++lane)
                if (!uop.useMask || rowBit(maskBits, laneLsbCol(lane)))
                    carryFF[lane] = carryNext[lane];
        }
        return;
      }

      case UKind::RdCShift:
        cshiftBits = array.readRow(uop.rowA);
        return;

      case UKind::RdXReg:
        xregBits = array.readRow(uop.rowA);
        return;

      case UKind::LShift:
        for (unsigned lane = 0; lane < cfg.lanes; ++lane) {
            if (uop.useMask && !rowBit(maskBits, laneLsbCol(lane)))
                continue;
            const bool out = rowBit(cshiftBits, laneMsbCol(lane));
            for (unsigned b = cfg.pf; b-- > 1;)
                setRowBit(cshiftBits, lane * cfg.pf + b,
                          rowBit(cshiftBits, lane * cfg.pf + b - 1));
            setRowBit(cshiftBits, laneLsbCol(lane), linkFF[lane]);
            linkFF[lane] = out;
        }
        return;

      case UKind::RShift:
        for (unsigned lane = 0; lane < cfg.lanes; ++lane) {
            if (uop.useMask && !rowBit(maskBits, laneLsbCol(lane)))
                continue;
            const bool out = rowBit(cshiftBits, laneLsbCol(lane));
            for (unsigned b = 0; b + 1 < cfg.pf; ++b)
                setRowBit(cshiftBits, lane * cfg.pf + b,
                          rowBit(cshiftBits, lane * cfg.pf + b + 1));
            setRowBit(cshiftBits, laneMsbCol(lane), linkFF[lane]);
            linkFF[lane] = out;
        }
        return;

      case UKind::MaskShift:
        for (unsigned lane = 0; lane < cfg.lanes; ++lane) {
            for (unsigned b = 0; b + 1 < cfg.pf; ++b)
                setRowBit(xregBits, lane * cfg.pf + b,
                          rowBit(xregBits, lane * cfg.pf + b + 1));
            setRowBit(xregBits, laneMsbCol(lane), false);
        }
        return;

      case UKind::MaskFromXRegLsb:
      case UKind::MaskFromXRegMsb:
        for (unsigned lane = 0; lane < cfg.lanes; ++lane) {
            const unsigned col = uop.kind == UKind::MaskFromXRegLsb
                                     ? laneLsbCol(lane)
                                     : laneMsbCol(lane);
            const bool b = rowBit(xregBits, col);
            for (unsigned i = 0; i < cfg.pf; ++i)
                setRowBit(maskBits, lane * cfg.pf + i, b);
        }
        return;

      case UKind::MaskSetAll:
        for (auto& word : maskBits)
            word = ~std::uint64_t{0};
        return;

      case UKind::MaskInvert:
        for (auto& word : maskBits)
            word = ~word;
        return;

      case UKind::MaskFromCarry:
        for (unsigned lane = 0; lane < cfg.lanes; ++lane) {
            const bool b = carryFF[lane];
            for (unsigned i = 0; i < cfg.pf; ++i)
                setRowBit(maskBits, lane * cfg.pf + i, b);
        }
        return;

      case UKind::ClearLink:
        for (auto& link : linkFF)
            link = 0;
        return;
    }
    panic("EveSram: unknown micro-op kind %d", int(uop.kind));
}

void
EveSram::run(const MacroProgram& prog)
{
    for (const Uop& uop : prog)
        exec(uop);
}

void
EveSram::writeElement(unsigned lane, unsigned vreg, std::uint32_t value)
{
    for (unsigned b = 0; b < cfg.elem_bits; ++b) {
        const unsigned seg = b / cfg.pf;
        const unsigned col = lane * cfg.pf + (b % cfg.pf);
        array.set(rowOf(vreg, seg), col, bit(value, b));
    }
}

std::uint32_t
EveSram::readElement(unsigned lane, unsigned vreg) const
{
    std::uint32_t value = 0;
    for (unsigned b = 0; b < cfg.elem_bits; ++b) {
        const unsigned seg = b / cfg.pf;
        const unsigned col = lane * cfg.pf + (b % cfg.pf);
        if (array.get(rowOf(vreg, seg), col))
            value |= std::uint32_t{1} << b;
    }
    return value;
}

bool
EveSram::laneMask(unsigned lane) const
{
    return rowBit(maskBits, laneLsbCol(lane));
}

void
EveSram::setMaskAll(bool value)
{
    for (auto& word : maskBits)
        word = value ? ~std::uint64_t{0} : 0;
}

} // namespace eve
