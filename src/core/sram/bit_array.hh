/**
 * @file
 * A bit-line-compute-capable SRAM bit array.
 *
 * Models the storage half of an EVE SRAM: a rows x cols matrix of 6T
 * bit cells with (a) normal row read/write and (b) the dual-wordline
 * bit-line compute of Jeloka et al.: activating two wordlines with
 * the sense amplifiers in single-ended mode yields, per column, the
 * AND of the two stored bits on one bit line and (the complement of)
 * the NOR on the other — i.e. and/nand/or/nor of the two rows in a
 * single access.
 *
 * Rows are stored as packed 64-bit words; column 0 is bit 0 of word 0.
 */

#ifndef EVE_CORE_SRAM_BIT_ARRAY_HH
#define EVE_CORE_SRAM_BIT_ARRAY_HH

#include <cstdint>
#include <vector>

namespace eve
{

/** Packed row of column bits. */
using RowBits = std::vector<std::uint64_t>;

/** Result of a bit-line compute access. */
struct BlcSense
{
    RowBits andBits;  ///< per-column AND of the two rows
    RowBits orBits;   ///< per-column OR of the two rows
};

/** The bit matrix. */
class BitArray
{
  public:
    BitArray(unsigned rows, unsigned cols);

    unsigned rows() const { return numRows; }
    unsigned cols() const { return numCols; }

    bool get(unsigned row, unsigned col) const;
    void set(unsigned row, unsigned col, bool value);

    /** Normal read of one row. */
    const RowBits& readRow(unsigned row) const;

    /**
     * Normal write of one row. When @p col_mask is non-null only
     * columns whose mask bit is set are updated.
     */
    void writeRow(unsigned row, const RowBits& value,
                  const RowBits* col_mask = nullptr);

    /** Dual-wordline bit-line compute of two rows. */
    BlcSense bitLineCompute(unsigned row_a, unsigned row_b) const;

    /** Words per packed row. */
    unsigned wordsPerRow() const { return rowWords; }

    /** An all-zero packed row of the right width. */
    RowBits zeroRow() const { return RowBits(rowWords, 0); }

    /** Clear every bit. */
    void clear();

  private:
    void checkRow(unsigned row) const;

    unsigned numRows;
    unsigned numCols;
    unsigned rowWords;
    std::vector<RowBits> cells;
};

} // namespace eve

#endif // EVE_CORE_SRAM_BIT_ARRAY_HH
