/**
 * @file
 * Functional model of one EVE SRAM: the bit array of bit_array.hh plus
 * the peripheral circuit stacks of Section III of the paper (bus
 * logic, XOR/XNOR logic, add logic, XRegister, constant shifter,
 * spare shifter, mask logic), executing the micro-ops of
 * core/uprog/uop.hh one per cycle.
 *
 * Geometry follows the layout model: `lanes` lanes of `pf` columns
 * each; a register file of `num_vregs` architectural registers (plus
 * a small scratch window used by macro-ops whose destination aliases
 * a source) stacked vertically, one n-bit segment per row. See
 * DESIGN.md approximation A1: the physical fold of a lane into
 * multiple column groups for pf < 4 is modelled in timing (macro-op
 * lengths and the VL law) while the functional array uses the
 * unfolded virtual layout, which computes identical values.
 *
 * Circuit semantics implemented here (concretizing the paper's
 * description):
 *  - blc activates two wordlines; the single-ended sense amps yield
 *    per-column and/or (nand/nor by complement); the XOR/XNOR stack
 *    derives xor = or & ~and.
 *  - The add logic is an n-bit Manchester carry chain per lane fed by
 *    the and/xor senses; carry-in comes from 0, 1, or the carry
 *    flip-flop in the spare shifter (segment chaining), and the carry
 *    flip-flop is updated whenever an Add result is written back.
 *  - The constant shifter holds one n-bit segment per lane and does
 *    conditional 1-bit shifts; the spare shifter's link flip-flop
 *    carries the shifted-out bit across segments (and across
 *    iterations of a multi-segment shift).
 *  - The XRegister is a per-lane right-shift register used to examine
 *    multiplier/shift-amount bits serially; the mask latch can be
 *    loaded from the XRegister's LSB or MSB column broadcast across
 *    the lane.
 */

#ifndef EVE_CORE_SRAM_EVE_SRAM_HH
#define EVE_CORE_SRAM_EVE_SRAM_HH

#include <cstdint>
#include <vector>

#include "core/sram/bit_array.hh"
#include "core/uprog/uop.hh"

namespace eve
{

/** Geometry of one functional EVE SRAM. */
struct EveSramConfig
{
    unsigned lanes = 8;        ///< elements processed in parallel
    unsigned pf = 8;           ///< parallelization factor n
    unsigned elem_bits = 32;   ///< element precision
    unsigned num_vregs = 32;   ///< architectural vector registers
    unsigned scratch_regs = 16; ///< VSU-managed scratch window
};

/** One EVE SRAM with its peripheral stacks. */
class EveSram
{
  public:
    explicit EveSram(const EveSramConfig& config);

    const EveSramConfig& config() const { return cfg; }

    unsigned segments() const { return segs; }

    /** Row holding segment @p seg of register @p vreg. */
    unsigned rowOf(unsigned vreg, unsigned seg) const;

    /** First scratch register id. */
    unsigned scratchReg(unsigned i = 0) const;

    /** Execute one micro-op (one cycle). */
    void exec(const Uop& uop);

    /** Execute a whole unrolled micro-program. */
    void run(const MacroProgram& prog);

    // ----- Element access (test / DTU boundary) ----------------------

    /** Deposit an element in transposed layout. */
    void writeElement(unsigned lane, unsigned vreg, std::uint32_t value);

    /** Collect an element from transposed layout. */
    std::uint32_t readElement(unsigned lane, unsigned vreg) const;

    /** Current mask bit of a lane (its LSB column latch). */
    bool laneMask(unsigned lane) const;

    /** Force the mask latch of every column (tests). */
    void setMaskAll(bool value);

    /** Raw bit array (tests). */
    BitArray& bits() { return array; }
    const BitArray& bits() const { return array; }

  private:
    static bool rowBit(const RowBits& row, unsigned col);
    static void setRowBit(RowBits& row, unsigned col, bool value);
    unsigned laneLsbCol(unsigned lane) const { return lane * cfg.pf; }
    unsigned laneMsbCol(unsigned lane) const
    {
        return lane * cfg.pf + cfg.pf - 1;
    }

    /** Compute the add-logic outputs from fresh senses. */
    void computeAdd(CarryIn carry);

    /** Build the writeback value for a Wr micro-op. */
    RowBits writeValue(const Uop& uop) const;

    EveSramConfig cfg;
    unsigned segs;
    BitArray array;

    // Peripheral state.
    RowBits senseAnd;
    RowBits senseOr;
    RowBits addOut;
    RowBits maskBits;
    RowBits xregBits;
    RowBits cshiftBits;
    std::vector<std::uint8_t> carryNext;  ///< per lane, from last blc
    std::vector<std::uint8_t> carryFF;    ///< per lane, committed
    std::vector<std::uint8_t> linkFF;     ///< per lane, spare shifter
};

} // namespace eve

#endif // EVE_CORE_SRAM_EVE_SRAM_HH
