#include "core/uprog/sequencer.hh"

#include "common/log.hh"

namespace eve
{

Uop
Sequencer::resolve(const SeqArith& arith) const
{
    const unsigned segs = sram.segments();
    unsigned seg = arith.fixedSeg;
    CarryIn carry = arith.firstCarry;
    if (arith.stepped) {
        seg = counters.iteration(arith.stepCnt);
        if (arith.reversed)
            seg = segs - 1 - seg;
        if (!counters.firstIteration(arith.stepCnt))
            carry = CarryIn::Chain;
    }
    if (seg >= segs)
        panic("Sequencer: stepped segment %u out of %u", seg, segs);

    Uop u;
    u.kind = arith.kind;
    u.src = arith.src;
    u.useMask = arith.useMask;
    u.carry = carry;
    u.data = arith.data;
    u.rowA = arith.regA * segs + seg;
    u.rowB = arith.regB * segs + seg;
    return u;
}

Cycles
Sequencer::run(const RomProgram& prog)
{
    Cycles cycles = 0;
    std::size_t upc = 0;
    const std::size_t guard = 10'000'000;

    while (true) {
        if (upc >= prog.tuples.size())
            panic("Sequencer: upc %zu fell off program '%s'",
                  upc, prog.name.c_str());
        if (++cycles > guard)
            panic("Sequencer: program '%s' exceeded %zu cycles",
                  prog.name.c_str(), guard);

        const Tuple& tuple = prog.tuples[upc];

        // 1. Counter micro-op.
        switch (tuple.cnt.kind) {
          case CntOp::Kind::Init:
            counters.init(tuple.cnt.cnt, tuple.cnt.val);
            break;
          case CntOp::Kind::Decr:
            counters.decr(tuple.cnt.cnt);
            break;
          case CntOp::Kind::Incr:
            counters.incr(tuple.cnt.cnt);
            break;
          case CntOp::Kind::None:
            break;
        }

        // 2. Arithmetic micro-op.
        if (tuple.arith.kind != UKind::Nop)
            sram.exec(resolve(tuple.arith));

        // 3. Control micro-op.
        bool taken = false;
        switch (tuple.ctl.kind) {
          case CtlOp::Kind::None:
            break;
          case CtlOp::Kind::Jmp:
            taken = true;
            break;
          case CtlOp::Kind::Bnz:
            if (!counters.zeroFlag(tuple.ctl.cnt)) {
                taken = true;
            } else {
                counters.clearZeroFlag(tuple.ctl.cnt);
            }
            break;
          case CtlOp::Kind::Bnd:
            if (counters.decadeFlag(tuple.ctl.cnt)) {
                counters.clearDecadeFlag(tuple.ctl.cnt);
                taken = true;
            }
            break;
          case CtlOp::Kind::Ret:
            return cycles;
        }

        upc = taken ? std::size_t(tuple.ctl.target) : upc + 1;
    }
}

namespace
{

Tuple
tInit(CounterId cnt, std::uint32_t val)
{
    Tuple t;
    t.cnt.kind = CntOp::Kind::Init;
    t.cnt.cnt = cnt;
    t.cnt.val = val;
    return t;
}

SeqArith
stepArith(UKind kind, unsigned reg_a, unsigned reg_b, USrc src,
          CounterId step, bool use_mask = false,
          CarryIn first = CarryIn::Zero)
{
    SeqArith a;
    a.kind = kind;
    a.regA = std::uint8_t(reg_a);
    a.regB = std::uint8_t(reg_b);
    a.src = src;
    a.useMask = use_mask;
    a.firstCarry = first;
    a.stepped = true;
    a.stepCnt = step;
    return a;
}

Tuple
tDecrArith(CounterId cnt, const SeqArith& arith)
{
    Tuple t;
    t.cnt.kind = CntOp::Kind::Decr;
    t.cnt.cnt = cnt;
    t.arith = arith;
    return t;
}

Tuple
tArithBnz(const SeqArith& arith, CounterId cnt, std::int32_t target)
{
    Tuple t;
    t.arith = arith;
    t.ctl.kind = CtlOp::Kind::Bnz;
    t.ctl.cnt = cnt;
    t.ctl.target = target;
    return t;
}

Tuple
tBnz(CounterId cnt, std::int32_t target)
{
    Tuple t;
    t.ctl.kind = CtlOp::Kind::Bnz;
    t.ctl.cnt = cnt;
    t.ctl.target = target;
    return t;
}

Tuple
tRet()
{
    Tuple t;
    t.ctl.kind = CtlOp::Kind::Ret;
    return t;
}

SeqArith
plainArith(UKind kind)
{
    SeqArith a;
    a.kind = kind;
    return a;
}

} // namespace

RomProgram
romAdd(const EveSram& sram, unsigned dst, unsigned a, unsigned b)
{
    const unsigned segs = sram.segments();
    RomProgram prog;
    prog.name = "add";
    // Figure 4(a): a two-tuple count-down loop over segments with the
    // carry chained through the spare-shifter flip-flop.
    prog.tuples.push_back(tInit(CounterId::Seg0, segs));
    prog.tuples.push_back(tDecrArith(
        CounterId::Seg0,
        stepArith(UKind::Blc, a, b, USrc::And, CounterId::Seg0)));
    prog.tuples.push_back(tArithBnz(
        stepArith(UKind::Wr, dst, 0, USrc::Add, CounterId::Seg0),
        CounterId::Seg0, 1));
    prog.tuples.push_back(tRet());
    return prog;
}

RomProgram
romMul(const EveSram& sram, unsigned dst, unsigned a, unsigned b,
       unsigned scratch_m, unsigned scratch_acc)
{
    const unsigned segs = sram.segments();
    const unsigned n = sram.config().pf;
    RomProgram prog;
    prog.name = "mul";
    auto& t = prog.tuples;

    // Copy multiplicand a into the shifting scratch register M.
    t.push_back(tInit(CounterId::Seg0, segs));                      // 0
    t.push_back(tDecrArith(
        CounterId::Seg0,
        stepArith(UKind::Blc, a, a, USrc::And, CounterId::Seg0)));  // 1
    t.push_back(tArithBnz(
        stepArith(UKind::Wr, scratch_m, 0, USrc::And, CounterId::Seg0),
        CounterId::Seg0, 1));                                       // 2

    // Zero the accumulator in a single-tuple loop.
    t.push_back(tInit(CounterId::Seg0, segs));                      // 3
    {
        Tuple zt = tDecrArith(
            CounterId::Seg0,
            stepArith(UKind::Wr, scratch_acc, 0, USrc::DataIn,
                      CounterId::Seg0));
        zt.ctl.kind = CtlOp::Kind::Bnz;
        zt.ctl.cnt = CounterId::Seg0;
        zt.ctl.target = 4;
        t.push_back(zt);                                            // 4
    }

    // Outer loop over multiplier segments (Figure 4(b) "iter").
    t.push_back(tInit(CounterId::Seg1, segs));                      // 5
    const std::int32_t outer = 6;
    t.push_back(tDecrArith(
        CounterId::Seg1,
        stepArith(UKind::RdXReg, b, 0, USrc::And, CounterId::Seg1))); // 6
    t.push_back(tInit(CounterId::Bit0, n));                         // 7
    const std::int32_t inner = 8;
    t.push_back(tDecrArith(CounterId::Bit0,
                           plainArith(UKind::MaskFromXRegLsb)));    // 8

    // Predicated accumulation (inner add loop, "iter_add").
    t.push_back(tInit(CounterId::Seg2, segs));                      // 9
    const std::int32_t addl = 10;
    t.push_back(tDecrArith(
        CounterId::Seg2,
        stepArith(UKind::Blc, scratch_acc, scratch_m, USrc::And,
                  CounterId::Seg2)));                               // 10
    t.push_back(tArithBnz(
        stepArith(UKind::Wr, scratch_acc, 0, USrc::Add,
                  CounterId::Seg2, true),
        CounterId::Seg2, addl));                                    // 11

    // Advance to the next multiplier bit.
    {
        Tuple mt;
        mt.arith = plainArith(UKind::MaskShift);
        t.push_back(mt);                                            // 12
    }

    // Shift the multiplicand left one bit across all segments.
    {
        Tuple ct = tInit(CounterId::Seg3, segs);
        ct.arith = plainArith(UKind::ClearLink);
        t.push_back(ct);                                            // 13
    }
    const std::int32_t shl = 14;
    t.push_back(tDecrArith(
        CounterId::Seg3,
        stepArith(UKind::RdCShift, scratch_m, 0, USrc::And,
                  CounterId::Seg3)));                               // 14
    {
        Tuple st;
        st.arith = plainArith(UKind::LShift);
        t.push_back(st);                                            // 15
    }
    t.push_back(tArithBnz(
        stepArith(UKind::Wr, scratch_m, 0, USrc::Shift,
                  CounterId::Seg3),
        CounterId::Seg3, shl));                                     // 16

    t.push_back(tBnz(CounterId::Bit0, inner));                      // 17
    t.push_back(tBnz(CounterId::Seg1, outer));                      // 18

    // Copy the accumulator into the destination.
    t.push_back(tInit(CounterId::Seg0, segs));                      // 19
    t.push_back(tDecrArith(
        CounterId::Seg0,
        stepArith(UKind::Blc, scratch_acc, scratch_acc, USrc::And,
                  CounterId::Seg0)));                               // 20
    t.push_back(tArithBnz(
        stepArith(UKind::Wr, dst, 0, USrc::And, CounterId::Seg0),
        CounterId::Seg0, 20));                                      // 21
    t.push_back(tRet());                                            // 22
    return prog;
}

RomProgram
romSub(const EveSram& sram, unsigned dst, unsigned a, unsigned b,
       unsigned scratch)
{
    const unsigned segs = sram.segments();
    RomProgram prog;
    prog.name = "sub";
    auto& t = prog.tuples;
    // t = ~b (two-tuple loop), then dst = a + t + 1 (carry seeded 1).
    t.push_back(tInit(CounterId::Seg0, segs));                      // 0
    t.push_back(tDecrArith(
        CounterId::Seg0,
        stepArith(UKind::Blc, b, b, USrc::And, CounterId::Seg0)));  // 1
    t.push_back(tArithBnz(
        stepArith(UKind::Wr, scratch, 0, USrc::Nand, CounterId::Seg0),
        CounterId::Seg0, 1));                                       // 2
    t.push_back(tInit(CounterId::Seg0, segs));                      // 3
    t.push_back(tDecrArith(
        CounterId::Seg0,
        stepArith(UKind::Blc, a, scratch, USrc::And, CounterId::Seg0,
                  false, CarryIn::One)));                           // 4
    t.push_back(tArithBnz(
        stepArith(UKind::Wr, dst, 0, USrc::Add, CounterId::Seg0),
        CounterId::Seg0, 4));                                       // 5
    t.push_back(tRet());                                            // 6
    return prog;
}

RomProgram
romLogic(const EveSram& sram, USrc fn, unsigned dst, unsigned a,
         unsigned b)
{
    const unsigned segs = sram.segments();
    RomProgram prog;
    prog.name = "logic";
    prog.tuples.push_back(tInit(CounterId::Seg0, segs));
    prog.tuples.push_back(tDecrArith(
        CounterId::Seg0,
        stepArith(UKind::Blc, a, b, USrc::And, CounterId::Seg0)));
    prog.tuples.push_back(tArithBnz(
        stepArith(UKind::Wr, dst, 0, fn, CounterId::Seg0),
        CounterId::Seg0, 1));
    prog.tuples.push_back(tRet());
    return prog;
}

RomProgram
romCopy(const EveSram& sram, unsigned dst, unsigned src)
{
    return romLogic(sram, USrc::And, dst, src, src);
}

} // namespace eve
