/**
 * @file
 * The VLIW micro-sequencer: the looped, counter-driven encoding of
 * micro-programs used by the VSU ROM (Section IV-B and Figure 4).
 *
 * Each ROM entry is a sequence of tuples; a tuple packs one counter
 * micro-op, one arithmetic micro-op, and one control micro-op,
 * executed in that order, one tuple per cycle. Row addresses of
 * arithmetic micro-ops can be stepped by a counter's iteration index
 * so that a two-tuple loop implements a whole multi-segment add
 * (Figure 4a).
 *
 * This layer exists for fidelity to the paper's encoding: the engine
 * timing model uses the unrolled MacroLib programs, and tests verify
 * the two representations agree in both results and cycle counts.
 */

#ifndef EVE_CORE_UPROG_SEQUENCER_HH
#define EVE_CORE_UPROG_SEQUENCER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "core/sram/eve_sram.hh"
#include "core/uprog/counters.hh"
#include "core/uprog/uop.hh"

namespace eve
{

/** Counter micro-op slot of a tuple. */
struct CntOp
{
    enum class Kind : std::uint8_t { None, Init, Decr, Incr };

    Kind kind = Kind::None;
    CounterId cnt = CounterId::Seg0;
    std::uint32_t val = 0;  ///< for Init
};

/** Control micro-op slot of a tuple. */
struct CtlOp
{
    enum class Kind : std::uint8_t { None, Bnz, Bnd, Jmp, Ret };

    Kind kind = Kind::None;
    CounterId cnt = CounterId::Seg0;
    std::int32_t target = 0;  ///< tuple index to branch to
};

/**
 * Arithmetic micro-op slot with counter-stepped row addressing.
 *
 * The row of operand X is rowOf(regX, seg) where seg is either fixed
 * or derived from a counter's iteration index (optionally reversed,
 * for MSB-first walks). The carry of a Blc is CarryIn::Chain except
 * on the first iteration of the stepping counter, where it is
 * firstCarry — this reproduces carry seeding without an extra tuple.
 */
struct SeqArith
{
    UKind kind = UKind::Nop;
    std::uint8_t regA = 0;
    std::uint8_t regB = 0;
    USrc src = USrc::And;
    bool useMask = false;
    CarryIn firstCarry = CarryIn::Zero;
    bool stepped = false;      ///< row stepped by a counter
    CounterId stepCnt = CounterId::Seg0;
    bool reversed = false;     ///< walk segments MSB-first
    std::uint32_t fixedSeg = 0;
    std::uint32_t data = 0;
};

/** One VLIW tuple. */
struct Tuple
{
    CntOp cnt;
    SeqArith arith;
    CtlOp ctl;
};

/** A ROM entry. */
struct RomProgram
{
    std::string name;
    std::vector<Tuple> tuples;
};

/** Executes ROM programs against an EveSram, counting cycles. */
class Sequencer
{
  public:
    explicit Sequencer(EveSram& sram) : sram(sram) {}

    /**
     * Run @p prog to its ret micro-op.
     * @return cycles consumed (tuples executed).
     */
    Cycles run(const RomProgram& prog);

    CounterFile& counterFile() { return counters; }

  private:
    Uop resolve(const SeqArith& arith) const;

    EveSram& sram;
    CounterFile counters;
};

/**
 * ROM programs reproducing Figure 4 for a given configuration.
 * @{
 */
RomProgram romAdd(const EveSram& sram, unsigned dst, unsigned a,
                  unsigned b);
RomProgram romMul(const EveSram& sram, unsigned dst, unsigned a,
                  unsigned b, unsigned scratch_m, unsigned scratch_acc);
RomProgram romSub(const EveSram& sram, unsigned dst, unsigned a,
                  unsigned b, unsigned scratch);
RomProgram romLogic(const EveSram& sram, USrc fn, unsigned dst,
                    unsigned a, unsigned b);
RomProgram romCopy(const EveSram& sram, unsigned dst, unsigned src);
/** @} */

} // namespace eve

#endif // EVE_CORE_UPROG_SEQUENCER_HH
