/**
 * @file
 * The 12 shared EVE counters (Section IV-A).
 *
 * Three groups of four: segment counters, bit counters, and array
 * counters. A counter decremented to zero resets to its init value
 * and raises its zero flag; a counter whose value lands on a power
 * of two raises its binary-decade flag. Conditional control
 * micro-ops (bnz/bnd) inspect and consume these flags.
 */

#ifndef EVE_CORE_UPROG_COUNTERS_HH
#define EVE_CORE_UPROG_COUNTERS_HH

#include <array>
#include <cstdint>

namespace eve
{

/** Identifiers of the 12 counters. */
enum class CounterId : std::uint8_t
{
    Seg0, Seg1, Seg2, Seg3,
    Bit0, Bit1, Bit2, Bit3,
    Arr0, Arr1, Arr2, Arr3,
};

constexpr unsigned numCounters = 12;

/** The counter file. */
class CounterFile
{
  public:
    /** Initialize counter @p id to @p value (also its reset value). */
    void init(CounterId id, std::uint32_t value);

    /** Decrement; wraps to the init value and raises the zero flag. */
    void decr(CounterId id);

    /** Increment (no flag side effects besides decade tracking). */
    void incr(CounterId id);

    std::uint32_t value(CounterId id) const;

    /**
     * Zero-based index of the loop iteration the most recent decr
     * belongs to (used by the sequencer to step row addresses).
     */
    std::uint32_t iteration(CounterId id) const;

    /** True while the counter has not wrapped since its last init. */
    bool zeroFlag(CounterId id) const;

    /** True if the counter value landed on a power of two. */
    bool decadeFlag(CounterId id) const;

    /** Consume (clear) the zero flag. */
    void clearZeroFlag(CounterId id);

    /** Consume (clear) the decade flag. */
    void clearDecadeFlag(CounterId id);

    /** True only for the first iteration after init (carry seeding). */
    bool firstIteration(CounterId id) const;

  private:
    struct Counter
    {
        std::uint32_t initVal = 0;
        std::uint32_t val = 0;
        std::uint32_t nextIdx = 0; ///< decrements since init/wrap
        std::uint32_t lastIdx = 0; ///< index of the latest decr
        bool zero = false;
        bool decade = false;
    };

    Counter& at(CounterId id) { return counters[unsigned(id)]; }
    const Counter& at(CounterId id) const
    {
        return counters[unsigned(id)];
    }

    std::array<Counter, numCounters> counters;
};

} // namespace eve

#endif // EVE_CORE_UPROG_COUNTERS_HH
