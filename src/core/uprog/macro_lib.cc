#include "core/uprog/macro_lib.hh"

#include "common/bits.hh"
#include "common/log.hh"

namespace eve
{

namespace
{

/**
 * Scratch-register slots above the 32 architectural registers.
 *
 * The VSU manages this window: macro-ops use it for intermediates,
 * staged constants, and alias resolution. All micro-ops touching it
 * are part of the generated programs, so its cost is fully charged.
 */
enum ScratchSlot : unsigned
{
    SC_A = 0,      ///< shifting dividend / multiplicand copy
    SC_R = 1,      ///< division remainder / generic temp
    SC_T = 2,      ///< subtraction/compare temp
    SC_Q = 3,      ///< division quotient / mul accumulator
    SC_U = 4,      ///< |a| for signed division
    SC_V = 5,      ///< |b| for signed division
    SC_SA = 6,     ///< staged sign bit of a / OR-reduce accumulator
    SC_SB = 7,     ///< staged sign bit of b
    SC_KONES = 8,  ///< constant row: all ones segment
    SC_K1 = 9,     ///< constant row: segment value 1
    SC_K0 = 10,    ///< constant row: segment value 0
    SC_KSIGN = 11, ///< constant row: segment with top bit set
    SC_XOP = 12,   ///< broadcast scalar operand (.vx forms)
    SC_WRAP = 13,  ///< result staging for masked complex ops
    SC_BZ = 14,    ///< staged divisor-nonzero bit (signed division)
};

/**
 * Emits micro-programs for one instruction. Stateless between
 * instructions; all methods append to @ref prog.
 */
class MacroAsm
{
  public:
    explicit MacroAsm(const EveSramConfig& cfg)
        : cfg(cfg), S(cfg.elem_bits / cfg.pf), n(cfg.pf)
    {
    }

    MacroProgram prog;
    bool bitExact = true;

    unsigned
    rowOf(unsigned reg, unsigned seg) const
    {
        return reg * S + seg;
    }

    unsigned scratch(unsigned slot) const { return cfg.num_vregs + slot; }

    void emit(const Uop& u) { prog.push_back(u); }

    // ----- primitive building blocks ---------------------------------

    /** dst <- src, optionally under the current mask. 2S uops. */
    void
    copy(unsigned dst, unsigned src, bool masked = false)
    {
        for (unsigned s = 0; s < S; ++s) {
            emit(uBlc(rowOf(src, s), rowOf(src, s)));
            emit(uWr(rowOf(dst, s), USrc::And, masked));
        }
    }

    /** dst <- 0. S uops. */
    void
    zero(unsigned dst, bool masked = false)
    {
        for (unsigned s = 0; s < S; ++s)
            emit(uWr(rowOf(dst, s), USrc::DataIn, masked, 0));
    }

    /** dst <- ~src. 2S uops. */
    void
    notInto(unsigned dst, unsigned src)
    {
        for (unsigned s = 0; s < S; ++s) {
            emit(uBlc(rowOf(src, s), rowOf(src, s)));
            emit(uWr(rowOf(dst, s), USrc::Nand));
        }
    }

    /** dst <- a + b (+1 when first==One). 2S uops; in-place safe. */
    void
    addInto(unsigned dst, unsigned a, unsigned b, bool masked = false,
            CarryIn first = CarryIn::Zero)
    {
        for (unsigned s = 0; s < S; ++s) {
            emit(uBlc(rowOf(a, s), rowOf(b, s),
                      s == 0 ? first : CarryIn::Chain));
            emit(uWr(rowOf(dst, s), USrc::Add, masked));
        }
    }

    /** dst <- fn(a, b) bitwise. 2S uops. */
    void
    logicInto(unsigned dst, unsigned a, unsigned b, USrc fn,
              bool masked = false)
    {
        for (unsigned s = 0; s < S; ++s) {
            emit(uBlc(rowOf(a, s), rowOf(b, s)));
            emit(uWr(rowOf(dst, s), fn, masked));
        }
    }

    /** Segment value of bit-window s of a 32-bit constant. */
    std::uint32_t
    segBits(std::uint32_t value, unsigned s) const
    {
        const std::uint32_t shifted = value >> (s * n);
        return n >= 32 ? shifted
                       : shifted & ((std::uint32_t{1} << n) - 1);
    }

    /** dst <- broadcast 32-bit constant. S uops. */
    void
    broadcast(unsigned dst, std::uint32_t value, bool masked = false)
    {
        for (unsigned s = 0; s < S; ++s)
            emit(uWr(rowOf(dst, s), USrc::DataIn, masked,
                     segBits(value, s)));
    }

    /** Stage an n-bit constant into row 0 of a scratch slot. 1 uop. */
    unsigned
    constRow(unsigned slot, std::uint32_t seg_value)
    {
        const unsigned row = rowOf(scratch(slot), 0);
        emit(uWr(row, USrc::DataIn, false, seg_value));
        return row;
    }

    /** mask <- bit 0 of each element of @p reg. 2 uops. */
    void
    maskFromBit0(unsigned reg)
    {
        emit(uRdXReg(rowOf(reg, 0)));
        emit(uSimple(UKind::MaskFromXRegLsb));
    }

    /** mask <- sign bit of each element of @p reg. 2 uops. */
    void
    maskFromSign(unsigned reg)
    {
        emit(uRdXReg(rowOf(reg, S - 1)));
        emit(uSimple(UKind::MaskFromXRegMsb));
    }

    /** One full-element 1-bit shift pass. 1 + 3S uops. */
    void
    shiftPass(unsigned reg, bool left, bool masked = false)
    {
        emit(uSimple(UKind::ClearLink));
        if (left) {
            for (unsigned s = 0; s < S; ++s) {
                emit(uRdCShift(rowOf(reg, s)));
                emit(uSimple(UKind::LShift, masked));
                emit(uWr(rowOf(reg, s), USrc::Shift, masked));
            }
        } else {
            for (unsigned s = S; s-- > 0;) {
                emit(uRdCShift(rowOf(reg, s)));
                emit(uSimple(UKind::RShift, masked));
                emit(uWr(rowOf(reg, s), USrc::Shift, masked));
            }
        }
    }

    /** Shift @p reg by @p m whole segments (row moves + zero fill). */
    void
    segMove(unsigned reg, unsigned m, bool left, bool masked = false)
    {
        if (m == 0 || m >= S) {
            if (m >= S)
                zero(reg, masked);
            return;
        }
        if (left) {
            for (unsigned s = S; s-- > m;) {
                emit(uBlc(rowOf(reg, s - m), rowOf(reg, s - m)));
                emit(uWr(rowOf(reg, s), USrc::And, masked));
            }
            for (unsigned s = 0; s < m; ++s)
                emit(uWr(rowOf(reg, s), USrc::DataIn, masked, 0));
        } else {
            for (unsigned s = 0; s + m < S; ++s) {
                emit(uBlc(rowOf(reg, s + m), rowOf(reg, s + m)));
                emit(uWr(rowOf(reg, s), USrc::And, masked));
            }
            for (unsigned s = S - m; s < S; ++s)
                emit(uWr(rowOf(reg, s), USrc::DataIn, masked, 0));
        }
    }

    /** Logical shift of @p reg by constant @p k (in place). */
    void
    shiftConst(unsigned reg, unsigned k, bool left)
    {
        k &= cfg.elem_bits - 1;
        const unsigned q = k / n;
        const unsigned r = k % n;
        segMove(reg, q, left);
        for (unsigned i = 0; i < r; ++i)
            shiftPass(reg, left);
    }

    /** mask <- (a < b) unsigned, via the subtract carry. 4S + 2. */
    void
    ltuMask(unsigned a, unsigned b)
    {
        const unsigned t = scratch(SC_T);
        notInto(t, b);
        addInto(t, a, t, false, CarryIn::One);
        emit(uSimple(UKind::MaskFromCarry));
        emit(uSimple(UKind::MaskInvert));
    }

    /** mask <- (a < b) signed, via sign-bias + unsigned compare. */
    void
    ltMask(unsigned a, unsigned b)
    {
        const unsigned ksign =
            constRow(SC_KSIGN, std::uint32_t{1} << (n - 1));
        const unsigned t = scratch(SC_T);
        // t = ~(b ^ signbit)
        for (unsigned s = 0; s + 1 < S; ++s) {
            emit(uBlc(rowOf(b, s), rowOf(b, s)));
            emit(uWr(rowOf(t, s), USrc::Nand));
        }
        emit(uBlc(rowOf(b, S - 1), ksign));
        emit(uWr(rowOf(t, S - 1), USrc::Xnor));
        // stage a's biased top segment
        const unsigned axm = rowOf(scratch(SC_SA), 0);
        emit(uBlc(rowOf(a, S - 1), ksign));
        emit(uWr(axm, USrc::Xor));
        // t = (a ^ signbit) + t + 1; carry == (a >= b signed)
        for (unsigned s = 0; s + 1 < S; ++s) {
            emit(uBlc(rowOf(a, s), rowOf(t, s),
                      s == 0 ? CarryIn::One : CarryIn::Chain));
            emit(uWr(rowOf(t, s), USrc::Add));
        }
        emit(uBlc(axm, rowOf(t, S - 1),
                  S == 1 ? CarryIn::One : CarryIn::Chain));
        emit(uWr(rowOf(t, S - 1), USrc::Add));
        emit(uSimple(UKind::MaskFromCarry));
        emit(uSimple(UKind::MaskInvert));
    }

    /** mask <- (a != b), via xor + OR-reduction + carry trick. */
    void
    neMask(unsigned a, unsigned b)
    {
        const unsigned t = scratch(SC_T);
        logicInto(t, a, b, USrc::Xor);
        // OR all segments into one row.
        const unsigned acc = rowOf(scratch(SC_SA), 0);
        emit(uBlc(rowOf(t, 0), rowOf(t, 0)));
        emit(uWr(acc, USrc::And));
        for (unsigned s = 1; s < S; ++s) {
            emit(uBlc(acc, rowOf(t, s)));
            emit(uWr(acc, USrc::Or));
        }
        // acc + (2^n - 1) carries out iff acc != 0.
        const std::uint32_t ones =
            n >= 32 ? 0xffffffffu : ((std::uint32_t{1} << n) - 1);
        const unsigned kones = constRow(SC_KONES, ones);
        emit(uBlc(acc, kones, CarryIn::Zero));
        emit(uWr(kones, USrc::Add));
        emit(uSimple(UKind::MaskFromCarry));
    }

    /** Write the current mask as a 0/1 element into @p dst. S+1. */
    void
    maskToReg(unsigned dst)
    {
        // Zeroing must not use the mask latch; plain writes.
        for (unsigned s = 1; s < S; ++s)
            emit(uWr(rowOf(dst, s), USrc::DataIn, false, 0));
        emit(uWr(rowOf(dst, 0), USrc::MaskLsb));
    }

    /** Conditionally negate @p reg in lanes where mask=1. ~4S + 3. */
    void
    condNegate(unsigned reg)
    {
        const std::uint32_t ones =
            n >= 32 ? 0xffffffffu : ((std::uint32_t{1} << n) - 1);
        const unsigned kones = constRow(SC_KONES, ones);
        for (unsigned s = 0; s < S; ++s) {
            emit(uBlc(rowOf(reg, s), kones));
            emit(uWr(rowOf(reg, s), USrc::Xor, true));
        }
        const unsigned k1 = constRow(SC_K1, 1);
        const unsigned k0 = constRow(SC_K0, 0);
        for (unsigned s = 0; s < S; ++s) {
            emit(uBlc(rowOf(reg, s), s == 0 ? k1 : k0,
                      s == 0 ? CarryIn::Zero : CarryIn::Chain));
            emit(uWr(rowOf(reg, s), USrc::Add, true));
        }
    }

    const EveSramConfig& cfg;
    const unsigned S;
    const unsigned n;
};

} // namespace

MacroLib::MacroLib(const EveSramConfig& config)
    : cfg(config), segs(config.elem_bits / config.pf)
{
    if (cfg.scratch_regs < 16)
        fatal("MacroLib: needs a 16-slot scratch window, got %u",
              cfg.scratch_regs);
}

namespace
{

/** Dispatch table body: generate the program for one instruction. */
void
buildOne(MacroAsm& as, const Instr& instr)
{
    const unsigned S = as.S;
    const unsigned n = as.n;
    const bool wrap = instr.masked;  // complex ops stage via SC_WRAP

    unsigned dst = instr.dst;
    unsigned a = instr.src1;
    unsigned b = instr.src2;

    // Resolve .vx forms by broadcasting the scalar operand.
    if (instr.usesScalar &&
        opClass(instr.op) != OpClass::VecCtrl &&
        instr.op != Op::VMvVX && instr.op != Op::VSll &&
        instr.op != Op::VSrl && instr.op != Op::VSra &&
        instr.op != Op::VSlideUp && instr.op != Op::VSlideDown) {
        b = as.scratch(SC_XOP);
        as.broadcast(b, std::uint32_t(instr.imm));
    }

    // Helper: run a complex op into `target`, then merge under v0.
    const unsigned target = wrap ? as.scratch(SC_WRAP) : dst;
    auto mergeWrapped = [&]() {
        if (!wrap)
            return;
        as.maskFromBit0(0);
        as.copy(dst, as.scratch(SC_WRAP), true);
    };
    // Helper for simple ops that support native masking: set mask
    // from v0 before the op.
    auto nativeMask = [&]() {
        if (instr.masked)
            as.maskFromBit0(0);
        return instr.masked;
    };

    switch (instr.op) {
      case Op::VAdd: {
        const bool m = nativeMask();
        as.addInto(dst, a, b, m);
        return;
      }
      case Op::VSub:
      case Op::VRsub: {
        if (instr.op == Op::VRsub)
            std::swap(a, b);
        // dst = a + ~b + 1; ~b may be staged in dst only when dst
        // does not alias a source and the op is unmasked (a masked op
        // must not disturb inactive lanes of dst).
        unsigned t = (dst != a && dst != b && !instr.masked)
                         ? dst
                         : as.scratch(SC_T);
        as.notInto(t, b);
        const bool m = nativeMask();
        as.addInto(dst, a, t, m, CarryIn::One);
        return;
      }
      case Op::VAnd:
      case Op::VOr:
      case Op::VXor: {
        const USrc fn = instr.op == Op::VAnd  ? USrc::And
                        : instr.op == Op::VOr ? USrc::Or
                                              : USrc::Xor;
        const bool m = nativeMask();
        as.logicInto(dst, a, b, fn, m);
        return;
      }

      case Op::VMand:
      case Op::VMor:
      case Op::VMxor:
      case Op::VMandn: {
        // Mask registers hold 0/1 elements: segment 0 carries the
        // value, upper segments are zeroed.
        unsigned t = b;
        if (instr.op == Op::VMandn) {
            t = as.scratch(SC_T);
            as.emit(uBlc(as.rowOf(b, 0), as.rowOf(b, 0)));
            as.emit(uWr(as.rowOf(t, 0), USrc::Nand));
        }
        const USrc fn = instr.op == Op::VMor    ? USrc::Or
                        : instr.op == Op::VMxor ? USrc::Xor
                                                : USrc::And;
        as.emit(uBlc(as.rowOf(a, 0), as.rowOf(t, 0)));
        as.emit(uWr(as.rowOf(dst, 0), fn));
        // Constrain the result to the mask bit (bit 0) so arbitrary
        // register contents behave like RVV mask registers.
        const unsigned k1 = as.constRow(SC_K1, 1);
        as.emit(uBlc(as.rowOf(dst, 0), k1));
        as.emit(uWr(as.rowOf(dst, 0), USrc::And));
        for (unsigned s = 1; s < S; ++s)
            as.emit(uWr(as.rowOf(dst, s), USrc::DataIn, false, 0));
        return;
      }

      case Op::VMseq:
      case Op::VMsne:
        as.neMask(a, b);
        if (instr.op == Op::VMseq)
            as.emit(uSimple(UKind::MaskInvert));
        as.maskToReg(target);
        mergeWrapped();
        return;

      case Op::VMslt:
      case Op::VMsle:
      case Op::VMsgt:
        if (instr.op == Op::VMslt) {
            as.ltMask(a, b);
        } else {
            as.ltMask(b, a);
            if (instr.op == Op::VMsle)
                as.emit(uSimple(UKind::MaskInvert));
        }
        as.maskToReg(target);
        mergeWrapped();
        return;

      case Op::VMin:
      case Op::VMax:
      case Op::VMinu:
      case Op::VMaxu: {
        const bool lt_sel =
            instr.op == Op::VMin || instr.op == Op::VMinu;
        if (instr.op == Op::VMin || instr.op == Op::VMax)
            as.ltMask(a, b);
        else
            as.ltuMask(a, b);
        if (!lt_sel)
            as.emit(uSimple(UKind::MaskInvert));
        // target = mask ? a : b
        unsigned out = target;
        if (!wrap && (dst == a || dst == b))
            out = as.scratch(SC_WRAP);
        as.copy(out, a, true);
        as.emit(uSimple(UKind::MaskInvert));
        as.copy(out, b, true);
        if (out != target)
            as.copy(dst, out);
        mergeWrapped();
        return;
      }

      case Op::VMerge: {
        // Selector is always v0 (vmerge.vvm). Alias-aware copies.
        as.maskFromBit0(0);
        if (dst == a && dst == b)
            return;
        if (dst == a) {
            as.emit(uSimple(UKind::MaskInvert));
            as.copy(dst, b, true);
        } else if (dst == b) {
            as.copy(dst, a, true);
        } else {
            as.copy(dst, a, true);
            as.emit(uSimple(UKind::MaskInvert));
            as.copy(dst, b, true);
        }
        return;
      }

      case Op::VMvVX: {
        const bool m = nativeMask();
        as.broadcast(dst, std::uint32_t(instr.imm), m);
        return;
      }

      case Op::VId:
        // Per-lane distinct values enter through the DTU data port;
        // timing is one row write per segment plus setup.
        as.bitExact = false;
        for (unsigned s = 0; s < S; ++s)
            as.emit(uSimple(UKind::Nop));
        as.emit(uSimple(UKind::Nop));
        return;

      case Op::VSll:
      case Op::VSrl:
      case Op::VSra: {
        const bool left = instr.op == Op::VSll;
        const unsigned width = as.cfg.elem_bits;
        if (instr.usesScalar) {
            const unsigned k = unsigned(instr.imm) & (width - 1);
            if (target != a)
                as.copy(target, a);
            if (instr.op == Op::VSra) {
                as.maskFromSign(a == target ? target : a);
                as.shiftConst(target, k, false);
                if (k > 0) {
                    // OR the sign extension into the shifted value.
                    const std::uint32_t ext = k >= width
                        ? 0xffffffffu
                        : ~((std::uint32_t{1} << (width - k)) - 1);
                    const unsigned sc = as.scratch(SC_T);
                    as.zero(sc);
                    as.broadcast(sc, ext, true);
                    as.logicInto(target, target, sc, USrc::Or);
                }
            } else {
                as.shiftConst(target, k, left);
            }
            mergeWrapped();
            return;
        }
        // Variable per-element shifts: binary decomposition with
        // conditional passes / segment moves, predicated by each bit
        // of the amount register.
        unsigned amt = b;
        if (target == b) {
            amt = as.scratch(SC_T);
            as.copy(amt, b);
        }
        if (target != a)
            as.copy(target, a);
        unsigned sign_src = 0;
        if (instr.op == Op::VSra) {
            // Stage the sign as a 0/1 element for later extension.
            sign_src = as.scratch(SC_SB);
            as.maskFromSign(a == target ? target : a);
            as.maskToReg(sign_src);
        }
        for (unsigned i = 0; i < log2i(as.cfg.elem_bits); ++i) {
            // mask <- bit i of the amount register.
            as.emit(uRdXReg(as.rowOf(amt, i / n)));
            for (unsigned j = 0; j < i % n; ++j)
                as.emit(uSimple(UKind::MaskShift));
            as.emit(uSimple(UKind::MaskFromXRegLsb));
            const unsigned dist = 1u << i;
            if (dist >= n) {
                as.segMove(target, dist / n, left, true);
            } else {
                for (unsigned r = 0; r < dist; ++r)
                    as.shiftPass(target, left, true);
            }
        }
        if (instr.op == Op::VSra) {
            // Arithmetic fill: negative lanes OR in ~(~0u >> amt).
            // Compute ext = ~(ones >> amt) via a second variable
            // shift of a staged all-ones value, predicated on sign.
            const unsigned ones_reg = as.scratch(SC_U);
            as.broadcast(ones_reg, 0xffffffffu);
            for (unsigned i = 0; i < log2i(as.cfg.elem_bits); ++i) {
                as.emit(uRdXReg(as.rowOf(amt, i / n)));
                for (unsigned j = 0; j < i % n; ++j)
                    as.emit(uSimple(UKind::MaskShift));
                as.emit(uSimple(UKind::MaskFromXRegLsb));
                const unsigned dist = 1u << i;
                if (dist >= n) {
                    as.segMove(ones_reg, dist / n, false, true);
                } else {
                    for (unsigned r = 0; r < dist; ++r)
                        as.shiftPass(ones_reg, false, true);
                }
            }
            const unsigned ext = as.scratch(SC_V);
            as.notInto(ext, ones_reg);
            // Apply only in negative lanes.
            as.maskFromBit0(sign_src);
            for (unsigned s = 0; s < S; ++s) {
                as.emit(uBlc(as.rowOf(target, s), as.rowOf(ext, s)));
                as.emit(uWr(as.rowOf(target, s), USrc::Or, true));
            }
        }
        mergeWrapped();
        return;
      }

      case Op::VMul:
      case Op::VMacc: {
        // Shift-and-add with the S-CIM row-offset optimization:
        // (a << j) decomposes into q = j/n whole segments — free, by
        // reading the multiplicand's rows at a segment offset — and
        // r = j%n in-segment bits, kept in a progressively shifted
        // copy M' (reset from a at every segment boundary). The
        // multiplier's bits stream through the XRegister, gating the
        // predicated accumulation.
        const unsigned mp = as.scratch(SC_A);   // a << (j % n)
        const unsigned acc = as.scratch(SC_Q);  // accumulator
        const unsigned zrow = as.constRow(SC_K0, 0);
        if (instr.op == Op::VMacc)
            as.copy(acc, dst);
        else
            as.zero(acc);
        for (unsigned j = 0; j < as.cfg.elem_bits; ++j) {
            const unsigned q = j / n;
            const unsigned r = j % n;
            if (r == 0) {
                as.emit(uRdXReg(as.rowOf(b, q)));
                if (n > 1)
                    as.copy(mp, a);  // reset M' for this window
            } else {
                as.shiftPass(mp, true);
            }
            as.emit(uSimple(UKind::MaskFromXRegLsb));
            const unsigned src = (r == 0) ? a : mp;
            for (unsigned s = 0; s < S; ++s) {
                const unsigned src_row =
                    s >= q ? as.rowOf(src, s - q) : zrow;
                as.emit(uBlc(as.rowOf(acc, s), src_row,
                             s == 0 ? CarryIn::Zero : CarryIn::Chain));
                as.emit(uWr(as.rowOf(acc, s), USrc::Add, true));
            }
            as.emit(uSimple(UKind::MaskShift));
        }
        if (wrap) {
            as.maskFromBit0(0);
            as.copy(dst, acc, true);
        } else {
            as.copy(dst, acc);
        }
        return;
      }

      case Op::VMulh: {
        // High-half multiply: double-width accumulation; modelled
        // with representative timing (~2x vmul) but not bit-exact
        // through the micro-op path.
        as.bitExact = false;
        const std::size_t len =
            2 * (32 * (2 * S + 2) + 31 * (3 * S + 1) + 5 * S);
        for (std::size_t i = 0; i < len; ++i)
            as.emit(uSimple(UKind::Nop));
        return;
      }

      case Op::VDivu:
      case Op::VRemu:
      case Op::VDiv:
      case Op::VRem: {
        const bool is_signed =
            instr.op == Op::VDiv || instr.op == Op::VRem;
        const bool want_rem =
            instr.op == Op::VRemu || instr.op == Op::VRem;

        unsigned num = a;
        unsigned den = b;
        if (is_signed) {
            // Stage "b != 0" for the RVV divide-by-zero rule (the
            // quotient must stay -1, i.e. skip the sign fix-up).
            if (!want_rem) {
                as.zero(as.scratch(SC_A));
                as.neMask(b, as.scratch(SC_A));
                as.emit(uWr(as.rowOf(as.scratch(SC_BZ), 0),
                            USrc::MaskLsb));
            }
            // |a|, |b| with staged sign bits.
            as.copy(as.scratch(SC_U), a);
            as.maskFromSign(a);
            as.maskToReg(as.scratch(SC_SA));
            as.condNegate(as.scratch(SC_U));
            as.copy(as.scratch(SC_V), b);
            as.maskFromSign(b);
            as.maskToReg(as.scratch(SC_SB));
            as.condNegate(as.scratch(SC_V));
            num = as.scratch(SC_U);
            den = as.scratch(SC_V);
        }

        const unsigned A = as.scratch(SC_A);
        const unsigned R = as.scratch(SC_R);
        const unsigned T = as.scratch(SC_T);
        const unsigned Q = as.scratch(SC_Q);
        as.copy(A, num);
        as.zero(R);
        as.zero(Q);
        for (unsigned it = 0; it < as.cfg.elem_bits; ++it) {
            // R:A <<= 1 (A's msb flows into R via the link FF).
            as.emit(uSimple(UKind::ClearLink));
            for (unsigned s = 0; s < S; ++s) {
                as.emit(uRdCShift(as.rowOf(A, s)));
                as.emit(uSimple(UKind::LShift));
                as.emit(uWr(as.rowOf(A, s), USrc::Shift));
            }
            for (unsigned s = 0; s < S; ++s) {
                as.emit(uRdCShift(as.rowOf(R, s)));
                as.emit(uSimple(UKind::LShift));
                as.emit(uWr(as.rowOf(R, s), USrc::Shift));
            }
            // Q <<= 1 (independent link).
            as.emit(uSimple(UKind::ClearLink));
            for (unsigned s = 0; s < S; ++s) {
                as.emit(uRdCShift(as.rowOf(Q, s)));
                as.emit(uSimple(UKind::LShift));
                as.emit(uWr(as.rowOf(Q, s), USrc::Shift));
            }
            // T = R - den; carry==1 iff R >= den.
            as.notInto(T, den);
            as.addInto(T, R, T, false, CarryIn::One);
            as.emit(uSimple(UKind::MaskFromCarry));
            // Commit the subtraction and the quotient bit where it
            // succeeded.
            as.copy(R, T, true);
            as.emit(uWr(as.rowOf(T, 0), USrc::MaskLsb));
            as.emit(uBlc(as.rowOf(Q, 0), as.rowOf(T, 0)));
            as.emit(uWr(as.rowOf(Q, 0), USrc::Or));
        }

        unsigned result = want_rem ? R : Q;
        if (is_signed) {
            if (want_rem) {
                // Remainder takes the dividend's sign.
                as.maskFromBit0(as.scratch(SC_SA));
                as.condNegate(R);
            } else {
                // Quotient negative iff signs differ and b != 0 (a
                // zero divisor leaves the all-ones quotient alone).
                const unsigned sa = as.rowOf(as.scratch(SC_SA), 0);
                const unsigned sb = as.rowOf(as.scratch(SC_SB), 0);
                const unsigned bz = as.rowOf(as.scratch(SC_BZ), 0);
                as.emit(uBlc(sa, sb));
                as.emit(uWr(sa, USrc::Xor));
                as.emit(uBlc(sa, bz));
                as.emit(uWr(sa, USrc::And));
                as.emit(uRdXReg(sa));
                as.emit(uSimple(UKind::MaskFromXRegLsb));
                as.condNegate(Q);
            }
        }
        if (wrap) {
            as.maskFromBit0(0);
            as.copy(dst, result, true);
        } else {
            as.copy(dst, result);
        }
        return;
      }

      default:
        panic("MacroLib: %s is not a VSU macro-op (handled by "
              "VMU/VRU or the control path)",
              std::string(opName(instr.op)).c_str());
    }
}

} // namespace

MacroBuild
MacroLib::build(const Instr& instr) const
{
    MacroAsm as(cfg);
    buildOne(as, instr);
    return MacroBuild{std::move(as.prog), as.bitExact};
}

std::uint64_t
MacroLib::cacheKey(const Instr& instr) const
{
    // Program length depends on opcode, masking, scalar form, the
    // shift amount for immediate shifts, and operand aliasing.
    std::uint64_t key = std::uint64_t(instr.op);
    key = key * 2 + (instr.masked ? 1 : 0);
    key = key * 2 + (instr.usesScalar ? 1 : 0);
    key = key * 64 + (std::uint64_t(instr.imm) & 63);
    const bool alias_a = instr.dst == instr.src1;
    const bool alias_b = !instr.usesScalar && instr.dst == instr.src2;
    key = key * 4 + (alias_a ? 2 : 0) + (alias_b ? 1 : 0);
    return key;
}

Cycles
MacroLib::cycles(const Instr& instr) const
{
    const std::uint64_t key = cacheKey(instr);
    auto it = lengthCache.find(key);
    if (it != lengthCache.end())
        return it->second;
    const Cycles len = build(instr).prog.size() + controlOverhead;
    lengthCache.emplace(key, len);
    return len;
}

} // namespace eve
