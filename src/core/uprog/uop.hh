/**
 * @file
 * Micro-operations executed by EVE SRAMs (Table II of the paper).
 *
 * Two representations exist in this code base:
 *
 *  1. The *unrolled* MacroProgram: a linear list of concrete Uops with
 *     resolved row addresses. The macro-op library (macro_lib.hh)
 *     generates one per (vector instruction, EVE-n); its length is the
 *     instruction's compute latency in EVE cycles and it executes
 *     bit-accurately on an EveSram.
 *
 *  2. The *looped* VLIW tuple form with counters and control microops
 *     (sequencer.hh), reproducing the paper's Figure 4 encoding. The
 *     two forms are cross-checked in tests.
 *
 * Every Uop takes exactly one EVE cycle.
 */

#ifndef EVE_CORE_UPROG_UOP_HH
#define EVE_CORE_UPROG_UOP_HH

#include <cstdint>
#include <string>
#include <vector>

namespace eve
{

/** Writeback sources: outputs of the peripheral circuit stacks. */
enum class USrc : std::uint8_t
{
    And,      ///< sense-amp and
    Nand,     ///< sense-amp nand
    Or,       ///< sense-amp or
    Nor,      ///< sense-amp nor
    Xor,      ///< XOR/XNOR logic
    Xnor,     ///< XOR/XNOR logic
    Add,      ///< add logic (Manchester carry chain)
    Shift,    ///< constant shifter contents
    DataIn,   ///< external data port (broadcast per-lane segment)
    MaskLsb,  ///< mask bit into the lane's LSB column (compares)
};

/** Micro-operation kinds. */
enum class UKind : std::uint8_t
{
    Nop,
    Blc,             ///< dual-wordline bit-line compute of rowA, rowB
    Wr,              ///< write a source into rowA (optionally masked)
    RdCShift,        ///< read rowA into the constant shifter
    RdXReg,          ///< read rowA into the XRegister
    LShift,          ///< constant shifter << 1 (link via spare shifter)
    RShift,          ///< constant shifter >> 1 (link via spare shifter)
    MaskShift,       ///< XRegister >> 1 within each lane
    MaskFromXRegLsb, ///< mask <- broadcast of XRegister LSB column
    MaskFromXRegMsb, ///< mask <- broadcast of XRegister MSB column
    MaskSetAll,      ///< mask <- 1 everywhere
    MaskInvert,      ///< mask <- ~mask
    MaskFromCarry,   ///< mask <- broadcast of the lane's carry FF
    ClearLink,       ///< clear the spare-shifter link flip-flops
};

/** Carry-in selection for Blc (add logic). */
enum class CarryIn : std::uint8_t
{
    Zero,  ///< start a new chain with carry-in 0
    One,   ///< start a new chain with carry-in 1 (subtraction)
    Chain, ///< use the carry saved by the previous Add writeback
};

/** One micro-operation. */
struct Uop
{
    UKind kind = UKind::Nop;
    std::uint32_t rowA = 0;
    std::uint32_t rowB = 0;
    USrc src = USrc::And;
    bool useMask = false;       ///< predicate writes/shifts on mask
    CarryIn carry = CarryIn::Zero;
    std::uint32_t data = 0;     ///< segment value for USrc::DataIn
};

/** A fully unrolled micro-program. */
using MacroProgram = std::vector<Uop>;

/** Render a micro-op for debugging. */
std::string uopToString(const Uop& uop);

// ----- Convenience constructors -------------------------------------

inline Uop
uBlc(std::uint32_t row_a, std::uint32_t row_b,
     CarryIn carry = CarryIn::Zero)
{
    Uop u;
    u.kind = UKind::Blc;
    u.rowA = row_a;
    u.rowB = row_b;
    u.carry = carry;
    return u;
}

inline Uop
uWr(std::uint32_t row, USrc src, bool use_mask = false,
    std::uint32_t data = 0)
{
    Uop u;
    u.kind = UKind::Wr;
    u.rowA = row;
    u.src = src;
    u.useMask = use_mask;
    u.data = data;
    return u;
}

inline Uop
uRdCShift(std::uint32_t row)
{
    Uop u;
    u.kind = UKind::RdCShift;
    u.rowA = row;
    return u;
}

inline Uop
uRdXReg(std::uint32_t row)
{
    Uop u;
    u.kind = UKind::RdXReg;
    u.rowA = row;
    return u;
}

inline Uop
uSimple(UKind kind, bool use_mask = false)
{
    Uop u;
    u.kind = kind;
    u.useMask = use_mask;
    return u;
}

} // namespace eve

#endif // EVE_CORE_UPROG_UOP_HH
