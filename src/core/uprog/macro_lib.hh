/**
 * @file
 * The macro-operation library: micro-program generation for every
 * supported vector instruction on an EVE-n SRAM (Section IV-B).
 *
 * Every vector instruction executed on EVE SRAMs is implemented as a
 * micro-program over the Table II micro-ops. This library generates
 * the fully unrolled program for a given instruction and EVE
 * configuration; the program serves two purposes:
 *
 *  - its *length* is the instruction's compute latency in EVE cycles
 *    (the VSU issues one micro-op tuple per cycle), and
 *  - it *executes bit-accurately* on the EveSram functional model,
 *    which the property tests cross-check against the plain-C++
 *    VecMachine semantics.
 *
 * A few operations (vmulh, vid) are generated with representative
 * timing but are not bit-exact through the micro-op path; they are
 * flagged so tests and the SRAM-backed machine can treat them
 * accordingly (see DESIGN.md).
 *
 * Scratch registers: macro-ops whose destination aliases a source, or
 * that need intermediates (compares, min/max, mul, div), use a small
 * scratch window above the 32 architectural registers. This models
 * VSU-managed temporary rows; the timing impact is the extra
 * micro-ops, which the generated programs include.
 */

#ifndef EVE_CORE_UPROG_MACRO_LIB_HH
#define EVE_CORE_UPROG_MACRO_LIB_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"
#include "core/sram/eve_sram.hh"
#include "isa/instr.hh"

namespace eve
{

/** A generated micro-program plus its fidelity class. */
struct MacroBuild
{
    MacroProgram prog;
    bool bit_exact = true;  ///< executes exactly on EveSram
};

/** Generates and caches micro-programs per EVE-n configuration. */
class MacroLib
{
  public:
    explicit MacroLib(const EveSramConfig& config);

    /** Build the full micro-program for @p instr. */
    MacroBuild build(const Instr& instr) const;

    /**
     * Compute latency in EVE cycles of @p instr, including the fixed
     * VSU sequencing overhead (micro-program fetch/setup). Cached.
     */
    Cycles cycles(const Instr& instr) const;

    /** Segments per element for this configuration. */
    unsigned segments() const { return segs; }

    const EveSramConfig& config() const { return cfg; }

    /**
     * Fixed per-macro-op control overhead in cycles (counter
     * initialization and micro-program dispatch; Section II notes
     * latency is super-linear in 1/segments because of this).
     */
    static constexpr Cycles controlOverhead = 4;

  private:
    std::uint64_t cacheKey(const Instr& instr) const;

    EveSramConfig cfg;
    unsigned segs;
    mutable std::unordered_map<std::uint64_t, Cycles> lengthCache;
};

} // namespace eve

#endif // EVE_CORE_UPROG_MACRO_LIB_HH
