#include "core/uprog/uop.hh"

#include <sstream>

namespace eve
{

namespace
{

const char*
srcName(USrc src)
{
    switch (src) {
      case USrc::And: return "and";
      case USrc::Nand: return "nand";
      case USrc::Or: return "or";
      case USrc::Nor: return "nor";
      case USrc::Xor: return "xor";
      case USrc::Xnor: return "xnor";
      case USrc::Add: return "add";
      case USrc::Shift: return "shift";
      case USrc::DataIn: return "data_in";
      case USrc::MaskLsb: return "mask_lsb";
      default: return "?";
    }
}

} // namespace

std::string
uopToString(const Uop& uop)
{
    std::ostringstream os;
    switch (uop.kind) {
      case UKind::Nop:
        os << "nop";
        break;
      case UKind::Blc:
        os << "blc r" << uop.rowA << ", r" << uop.rowB;
        if (uop.carry == CarryIn::One)
            os << ", ci=1";
        else if (uop.carry == CarryIn::Chain)
            os << ", ci=chain";
        break;
      case UKind::Wr:
        os << "wr r" << uop.rowA << ", " << srcName(uop.src);
        if (uop.src == USrc::DataIn)
            os << "(0x" << std::hex << uop.data << std::dec << ")";
        if (uop.useMask)
            os << ", m";
        break;
      case UKind::RdCShift:
        os << "rd r" << uop.rowA << ", cshift";
        break;
      case UKind::RdXReg:
        os << "rd r" << uop.rowA << ", xreg";
        break;
      case UKind::LShift:
        os << (uop.useMask ? "lshft, m" : "lshft");
        break;
      case UKind::RShift:
        os << (uop.useMask ? "rshft, m" : "rshft");
        break;
      case UKind::MaskShift:
        os << "m_shft";
        break;
      case UKind::MaskFromXRegLsb:
        os << "mask <- xreg.lsb";
        break;
      case UKind::MaskFromXRegMsb:
        os << "mask <- xreg.msb";
        break;
      case UKind::MaskSetAll:
        os << "mask <- 1";
        break;
      case UKind::MaskInvert:
        os << "mask <- ~mask";
        break;
      case UKind::MaskFromCarry:
        os << "mask <- carry";
        break;
      case UKind::ClearLink:
        os << "link <- 0";
        break;
    }
    return os.str();
}

} // namespace eve
