#include "core/uprog/counters.hh"

#include "common/bits.hh"
#include "common/log.hh"

namespace eve
{

void
CounterFile::init(CounterId id, std::uint32_t value)
{
    Counter& c = at(id);
    c.initVal = value;
    c.val = value;
    c.nextIdx = 0;
    c.lastIdx = 0;
    c.zero = false;
    c.decade = false;
}

void
CounterFile::decr(CounterId id)
{
    Counter& c = at(id);
    if (c.val == 0)
        panic("CounterFile: decrement of un-initialized counter %u",
              unsigned(id));
    --c.val;
    c.lastIdx = c.nextIdx++;
    if (c.val == 0) {
        c.val = c.initVal;
        c.zero = true;
        c.nextIdx = 0;
    }
    if (isPow2(c.val))
        c.decade = true;
}

void
CounterFile::incr(CounterId id)
{
    Counter& c = at(id);
    ++c.val;
    if (isPow2(c.val))
        c.decade = true;
}

std::uint32_t
CounterFile::value(CounterId id) const
{
    return at(id).val;
}

std::uint32_t
CounterFile::iteration(CounterId id) const
{
    return at(id).lastIdx;
}

bool
CounterFile::zeroFlag(CounterId id) const
{
    return at(id).zero;
}

bool
CounterFile::decadeFlag(CounterId id) const
{
    return at(id).decade;
}

void
CounterFile::clearZeroFlag(CounterId id)
{
    at(id).zero = false;
}

void
CounterFile::clearDecadeFlag(CounterId id)
{
    at(id).decade = false;
}

bool
CounterFile::firstIteration(CounterId id) const
{
    return at(id).lastIdx == 0;
}

} // namespace eve
