/**
 * @file
 * Transposed vector-register data layout for S-CIM execution
 * (Section II and Figure 1 of the paper).
 *
 * An element of width E bits under parallelization factor n is broken
 * into S = E/n segments of n bits. Each segment occupies one row
 * across the n columns of its lane; the S segments of an element (and
 * the corresponding segments of every vector register) stack
 * vertically. A *lane* is the column group holding one element of
 * every architectural vector register, and one in-situ ALU serves one
 * lane.
 *
 * When the register file of one lane does not fit in the array height
 * (n < 4 with 32 registers of 32 bits in 256 rows), the lane widens
 * to multiple n-column groups, reducing the number of lanes — the
 * paper's "column under-utilization". When n is large, the lane count
 * is bounded by cols/n instead — "row under-utilization". The lane
 * law is
 *
 *     lane_cols(n) = n * max(1, ceil(V*E / (rows*n)))
 *     lanes(n)     = cols / lane_cols(n)
 *
 * which reproduces the paper's hardware vector lengths exactly
 * (EVE-{1,2,4} = 2048, EVE-8 = 1024, EVE-16 = 512, EVE-32 = 256 for
 * 32 sub-arrays of 256x256).
 */

#ifndef EVE_CORE_LAYOUT_LAYOUT_HH
#define EVE_CORE_LAYOUT_LAYOUT_HH

#include <cstdint>

namespace eve
{

/** Geometry of an S-CIM register-file layout. */
struct LayoutParams
{
    unsigned rows = 256;       ///< bit rows per (logical) sub-array
    unsigned cols = 256;       ///< bit columns per (logical) sub-array
    unsigned num_vregs = 32;   ///< architectural vector registers
    unsigned elem_bits = 32;   ///< element precision
    unsigned pf = 8;           ///< parallelization factor n
};

/** Derived layout quantities. */
class Layout
{
  public:
    explicit Layout(const LayoutParams& params);

    const LayoutParams& params() const { return layoutParams; }

    /** Segments per element: elem_bits / pf. */
    unsigned segments() const { return segs; }

    /** Columns one lane occupies. */
    unsigned laneCols() const { return laneWidth; }

    /** Column groups per lane (folding factor for n < balanced). */
    unsigned groupsPerLane() const { return laneWidth / layoutParams.pf; }

    /** Lanes (in-situ ALUs) per sub-array. */
    unsigned lanesPerArray() const { return lanes; }

    /** Hardware vector length for @p num_arrays sub-arrays. */
    unsigned hwVectorLength(unsigned num_arrays) const
    {
        return lanes * num_arrays;
    }

    /** Fraction of columns participating in compute. */
    double columnUtilization() const;

    /** Fraction of bit cells used for register storage. */
    double storageUtilization() const;

    /**
     * Row of register @p vreg, segment @p seg in the *virtual* lane
     * column (see DESIGN.md approximation A1: the functional model
     * treats the lane as one column group of V*S virtual rows).
     */
    unsigned
    virtualRow(unsigned vreg, unsigned seg) const
    {
        return vreg * segs + seg;
    }

    /** Virtual rows per lane (register file height). */
    unsigned virtualRows() const { return layoutParams.num_vregs * segs; }

  private:
    LayoutParams layoutParams;
    unsigned segs;
    unsigned laneWidth;
    unsigned lanes;
};

} // namespace eve

#endif // EVE_CORE_LAYOUT_LAYOUT_HH
