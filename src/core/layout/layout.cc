#include "core/layout/layout.hh"

#include "common/bits.hh"
#include "common/log.hh"

namespace eve
{

Layout::Layout(const LayoutParams& params) : layoutParams(params)
{
    const unsigned n = params.pf;
    if (n == 0 || params.elem_bits % n != 0)
        fatal("layout: parallelization factor %u must divide element "
              "width %u", n, params.elem_bits);
    if (params.cols % n != 0)
        fatal("layout: %u columns not divisible by pf %u",
              params.cols, n);

    segs = params.elem_bits / n;

    // Register storage one lane needs, in bits.
    const std::uint64_t lane_bits =
        std::uint64_t(params.num_vregs) * params.elem_bits;
    // Column groups needed to hold that storage at n columns per
    // group and `rows` bits per column.
    const std::uint64_t groups = divCeil(
        lane_bits, std::uint64_t(params.rows) * n);
    laneWidth = n * unsigned(groups);

    lanes = laneWidth <= params.cols ? params.cols / laneWidth : 0;
    if (lanes == 0)
        fatal("layout: lane of %u columns does not fit %u-column array",
              laneWidth, params.cols);
}

double
Layout::columnUtilization() const
{
    // Columns actively computing: n per lane out of laneCols per lane
    // (the folded groups hold registers but do not add ALU width),
    // and any columns beyond lanes*laneCols are entirely idle.
    const double active = double(lanes) * layoutParams.pf;
    return active / double(layoutParams.cols);
}

double
Layout::storageUtilization() const
{
    const double used = double(lanes) * layoutParams.num_vregs *
                        layoutParams.elem_bits;
    return used / (double(layoutParams.rows) * layoutParams.cols);
}

} // namespace eve
