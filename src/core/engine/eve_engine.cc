#include <algorithm>

#include "core/engine/eve_engine.hh"

#include "analytic/circuits.hh"
#include "common/bits.hh"
#include "common/log.hh"
#include "vector/request_gen.hh"

namespace eve
{

namespace
{

O3CoreParams
coreAtEveClock(O3CoreParams base, unsigned pf)
{
    base.clock_ns = CircuitModel::cycleTimeNs(pf);
    return base;
}

LayoutParams
layoutFor(unsigned pf)
{
    LayoutParams lp;
    lp.rows = 256;
    lp.cols = 256;
    lp.num_vregs = 32;
    lp.elem_bits = 32;
    lp.pf = pf;
    return lp;
}

EveSramConfig
sramConfigFor(unsigned pf)
{
    EveSramConfig cfg;
    cfg.lanes = 1;  // program lengths are lane-independent
    cfg.pf = pf;
    return cfg;
}

} // namespace

EveSystem::EveSystem(const EveParams& params, MemHierarchy& mem)
    : params(params),
      mem(mem),
      core(coreAtEveClock(params.core, params.pf), mem),
      clock(CircuitModel::cycleTimeNs(params.pf)),
      dataLayout(layoutFor(params.pf)),
      macroLib(sramConfigFor(params.pf)),
      segs(32 / params.pf),
      hwVl(dataLayout.hwVectorLength(params.arrays)),
      dtuUnits(params.dtus),
      vmuQueue(params.vmu_queue),
      vmuCredits(params.vmu_line_credits),
      statGroup("eve")
{
    vsuFree = params.spawn_ready;
    if (params.pf == 32)
        this->params.dtu_line_cycles = 1;  // no transpose needed

    statVectorInstrs = statGroup.id("vector_instrs");
    statVsuUops = statGroup.id("vsu_uops");
    statVsuArrayUops = statGroup.id("vsu_array_uops");
    statVmuLines = statGroup.id("vmu_lines");
    statVmuCacheStall = statGroup.id("vmu_cache_stall_ticks");
    statVmuIssue = statGroup.id("vmu_issue_ticks");
    statVruOps = statGroup.id("vru_ops");
}

Tick
EveSystem::srcReady(const Instr& instr) const
{
    Tick ready = vregReady[instr.src1];
    if (!instr.usesScalar &&
        opClass(instr.op) != OpClass::VecMemUnit &&
        opClass(instr.op) != OpClass::VecMemStride)
        ready = std::max(ready, vregReady[instr.src2]);
    if (instr.masked || instr.op == Op::VMerge)
        ready = std::max(ready, vregReady[0]);
    return ready;
}

void
EveSystem::attributeGap(Tick from, Tick start, Tick commit,
                        const Instr& instr)
{
    if (start <= from)
        return;
    Tick t = from;
    // 1. No instruction available yet: empty.
    const Tick empty_until = std::min(start, std::max(commit, t));
    if (empty_until > t) {
        bdown.empty_stall += double(empty_until - t);
        t = empty_until;
    }
    if (t >= start)
        return;
    // 2. Waiting on an operand: split by what produced it.
    // Find the binding source register.
    Tick best = 0;
    const Producer* prod = nullptr;
    auto consider = [&](unsigned reg) {
        if (vregReady[reg] > best) {
            best = vregReady[reg];
            prod = &producer[reg];
        }
    };
    consider(instr.src1);
    if (!instr.usesScalar)
        consider(instr.src2);
    if (instr.masked || instr.op == Op::VMerge)
        consider(0);

    if (!prod || best <= t) {
        bdown.dep_stall += double(start - t);
        return;
    }
    switch (prod->kind) {
      case Producer::Kind::Load: {
        const Tick mem_until =
            std::min(start, std::max(prod->memDone, t));
        if (mem_until > t) {
            bdown.ld_mem_stall += double(mem_until - t);
            t = mem_until;
        }
        if (start > t)
            bdown.ld_dt_stall += double(start - t);
        break;
      }
      case Producer::Kind::Vru:
        bdown.vru_stall += double(start - t);
        break;
      default:
        bdown.dep_stall += double(start - t);
        break;
    }
}

void
EveSystem::consume(const Instr& instr)
{
    if (isVectorOp(instr.op))
        consumeVector(instr);
    else
        core.consume(instr);
}

void
EveSystem::consumeVector(const Instr& instr)
{
    if (instr.vl > hwVl && opClass(instr.op) != OpClass::VecCtrl)
        panic("EveSystem: vl %u exceeds hardware vl %u (pf %u)",
              instr.vl, hwVl, params.pf);

    statGroup.add(statVectorInstrs, 1);
    Tick commit = core.dispatchVector(instr);
    commit = std::max(commit, params.spawn_ready);

    switch (opClass(instr.op)) {
      case OpClass::VecCtrl: {
        if (instr.op == Op::VSetVl) {
            const Tick start = std::max(vsuFree, commit);
            attributeGap(vsuFree, start, commit, instr);
            vsuFree = start + clock.period();
            bdown.busy += double(clock.period());
        } else if (instr.op == Op::VMfence) {
            const Tick done = std::max({vsuFree, memLast, commit});
            core.stallCommit(done);
            engineLast = std::max(engineLast, done);
        } else {  // VMvXS
            const Tick start =
                std::max({vsuFree, commit, vregReady[instr.src1]});
            attributeGap(vsuFree, start, commit, instr);
            const Tick done = start + clock.toTicks(segs + 2);
            bdown.busy += double(done - start);
            vsuFree = done;
            core.stallCommit(done);
            engineLast = std::max(engineLast, done);
        }
        return;
      }

      case OpClass::VecAlu:
      case OpClass::VecMul:
        execCompute(instr, commit);
        return;

      case OpClass::VecXe:
        if (instr.op == Op::VMvVX || instr.op == Op::VId) {
            execCompute(instr, commit);
        } else {
            execVru(instr, commit);
        }
        return;

      case OpClass::VecRed:
        execVru(instr, commit);
        return;

      case OpClass::VecMemUnit:
      case OpClass::VecMemStride:
      case OpClass::VecMemIndex:
        if (isVecLoad(instr.op))
            execLoad(instr, commit);
        else
            execStore(instr, commit);
        return;

      default:
        panic("EveSystem: unexpected vector class");
    }
}

void
EveSystem::execCompute(const Instr& instr, Tick commit)
{
    const Tick start = std::max({vsuFree, commit, srcReady(instr)});
    attributeGap(vsuFree, start, commit, instr);
    const Cycles cycles = macroLib.cycles(instr);
    const Tick done = start + clock.toTicks(cycles);
    bdown.busy += double(done - start);
    vsuFree = done;
    vregReady[instr.dst] = done;
    producer[instr.dst] = Producer{Producer::Kind::Compute, 0, 0};
    engineLast = std::max(engineLast, done);
    statGroup.add(statVsuUops, double(cycles));
    // Only the sub-arrays holding active elements burn row-operation
    // energy (clock gating by the VCU).
    const unsigned active_arrays = unsigned(divCeil(
        std::max<std::uint32_t>(instr.vl, 1),
        dataLayout.lanesPerArray()));
    statGroup.add(statVsuArrayUops,
                  double(cycles) *
                      std::min(active_arrays, params.arrays));
}

void
EveSystem::execLoad(const Instr& instr, Tick commit)
{
    // Indexed loads first stream the index register to the VMU.
    Tick mem_start = std::max(commit, vmuGenFree);
    if (opClass(instr.op) == OpClass::VecMemIndex) {
        const Tick idx_start =
            std::max({vsuFree, commit, vregReady[instr.src2]});
        attributeGap(vsuFree, idx_start, commit, instr);
        const Tick idx_done = idx_start + clock.toTicks(segs);
        bdown.busy += double(idx_done - idx_start);
        vsuFree = idx_done;
        mem_start = std::max(mem_start, idx_done);
    }

    Tick gen = mem_start;
    Tick mem_done = mem_start;
    Tick dt_done = mem_start;
    std::uint64_t nlines = 0;
    // Loads stream the request plan straight into the VMU (the plan
    // is consumed once, in order); stores still buffer it because the
    // store path needs the line count mid-loop.
    forEachRequestLine(
        instr, mem.llc().params().line_bytes, [&](Addr line) {
            // One request generated + translated per cycle, with
            // back-pressure from the outstanding-line credit pool (the
            // LLC's MSHR occupancy propagates into the grant times).
            const Tick want = gen + clock.period();
            Tick line_done = 0;
            const Tick grant = vmuCredits.acquire(want, [&](Tick g) {
                line_done = mem.llcPort().access(line, false, g);
                return line_done;
            });
            statGroup.add(statVmuCacheStall, double(grant - want));
            statGroup.add(statVmuIssue, double(clock.period()));
            gen = grant;
            mem_done = std::max(mem_done, line_done);
            const Tick dt_busy = clock.toTicks(params.dtu_line_cycles);
            const Tick dt_start = dtuUnits.acquire(line_done, dt_busy);
            dt_done = std::max(dt_done, dt_start + dt_busy);
            ++nlines;
        });
    statGroup.add(statVmuLines, double(nlines));
    vmuGenFree = gen;
    memLast = std::max(memLast, mem_done);

    // The VSU writes the transposed rows into the arrays once the
    // data is out of the DTUs. The in-order VSU has nothing else to
    // run meanwhile, so its wait is charged here: up to the last
    // line's arrival it is a load-memory stall, and from there to
    // the end of transposing it is a load-transpose stall.
    const Tick fill_start = std::max(vsuFree, dt_done);
    {
        Tick t = vsuFree;
        const Tick empty_until =
            std::min(fill_start, std::max(commit, t));
        if (empty_until > t) {
            bdown.empty_stall += double(empty_until - t);
            t = empty_until;
        }
        const Tick mem_until =
            std::min(fill_start, std::max(mem_done, t));
        if (mem_until > t) {
            bdown.ld_mem_stall += double(mem_until - t);
            t = mem_until;
        }
        if (fill_start > t)
            bdown.ld_dt_stall += double(fill_start - t);
    }
    const Tick fill_done = fill_start + clock.toTicks(segs);
    bdown.busy += double(fill_done - fill_start);
    vsuFree = std::max(vsuFree, fill_done);

    vregReady[instr.dst] = fill_done;
    producer[instr.dst] =
        Producer{Producer::Kind::Load, mem_done, dt_done};
    engineLast = std::max(engineLast, fill_done);
}

void
EveSystem::execStore(const Instr& instr, Tick commit)
{
    // The VSU reads the source rows and hands them to a free store
    // slot in the VMU; a full queue stalls the VSU.
    const Tick ready =
        std::max({vsuFree, commit, vregReady[instr.src1],
                  instr.masked ? vregReady[0] : Tick{0}});
    attributeGap(vsuFree, ready, commit, instr);

    Tick store_done = 0;
    planRequestsInto(instr, mem.llc().params().line_bytes, lineBuf);
    const auto& lines = lineBuf;
    const Tick grant = vmuQueue.acquire(ready, [&](Tick g) {
        const Tick read_done = g + clock.toTicks(segs);
        Tick gen = std::max(read_done, vmuGenFree);
        Tick dt_ready = read_done;
        for (const Addr line : lines) {
            // De-transpose, then generate the write with the same
            // credit back-pressure as loads.
            const Tick dt_busy = clock.toTicks(params.dtu_line_cycles);
            const Tick dt_start = dtuUnits.acquire(dt_ready, dt_busy);
            const Tick dt_out = dt_start + dt_busy;
            bdown.st_dt_stall += double(dt_start - dt_ready) /
                                 std::max<std::size_t>(lines.size(), 1);
            const Tick want = std::max(gen + clock.period(), dt_out);
            Tick line_done = 0;
            const Tick w_grant = vmuCredits.acquire(want, [&](Tick t) {
                line_done = mem.llcPort().access(line, true, t);
                return line_done;
            });
            statGroup.add(statVmuCacheStall,
                          double(w_grant - want));
            statGroup.add(statVmuIssue, double(clock.period()));
            gen = w_grant;
            store_done = std::max(store_done, line_done);
        }
        vmuGenFree = gen;
        return store_done;
    });
    if (grant > ready)
        bdown.vmu_stall += double(grant - ready);
    statGroup.add(statVmuLines, double(lines.size()));

    const Tick read_done = grant + clock.toTicks(segs);
    bdown.busy += double(read_done - grant);
    vsuFree = read_done;
    memLast = std::max(memLast, store_done);
    engineLast = std::max(engineLast, read_done);
}

void
EveSystem::execVru(const Instr& instr, Tick commit)
{
    // The VSU streams E = B/n elements per beat into the VRU; the
    // VRU then runs its dot + linear phases. Cross-element producers
    // (slides, gathers) also stream the result back.
    const Tick ready = std::max({vsuFree, commit, srcReady(instr)});
    Tick start = ready;
    if (vruFree > start) {
        bdown.vru_stall += double(vruFree - start);
        start = vruFree;
    }
    attributeGap(vsuFree, ready, commit, instr);

    const unsigned eports =
        std::max(1u, params.vru_bandwidth_bits / 32);
    const Cycles stream = divCeil(instr.vl, eports) + segs;
    const Cycles reduce_lat = eports + log2i(eports) + 8;

    const bool writes_back = opClass(instr.op) == OpClass::VecXe;
    const Cycles vsu_cycles = writes_back ? 2 * stream : stream;
    const Tick vsu_done = start + clock.toTicks(vsu_cycles);
    const Tick done = vsu_done + clock.toTicks(reduce_lat);

    bdown.busy += double(vsu_done - start);
    vsuFree = vsu_done;
    vruFree = done;
    vregReady[instr.dst] = done;
    producer[instr.dst] = Producer{Producer::Kind::Vru, 0, 0};
    engineLast = std::max(engineLast, done);
    statGroup.add(statVruOps, 1);
}

void
EveSystem::finish()
{
    core.finish();
    const Tick end = finalTick();
    // The drain tail — the engine waiting for its last stores to be
    // accepted by the memory system — is a store-memory stall.
    if (end > vsuFree && memLast > vsuFree)
        bdown.st_mem_stall += double(std::min(end, memLast) - vsuFree);
    statGroup.set("cycles", double(end) / clock.period());
    statGroup.set("busy_ticks", bdown.busy);
    statGroup.set("empty_stall_ticks", bdown.empty_stall);
    statGroup.set("dep_stall_ticks", bdown.dep_stall);
    statGroup.set("ld_mem_stall_ticks", bdown.ld_mem_stall);
    statGroup.set("ld_dt_stall_ticks", bdown.ld_dt_stall);
    statGroup.set("st_mem_stall_ticks", bdown.st_mem_stall);
    statGroup.set("st_dt_stall_ticks", bdown.st_dt_stall);
    statGroup.set("vmu_stall_ticks", bdown.vmu_stall);
    statGroup.set("vru_stall_ticks", bdown.vru_stall);
}

Tick
EveSystem::finalTick() const
{
    return std::max({core.finalTick(), engineLast, memLast});
}

double
EveSystem::vmuCacheStallTicks() const
{
    return statGroup.get("vmu_cache_stall_ticks");
}

double
EveSystem::vmuCacheStallFraction() const
{
    const double stall = statGroup.get("vmu_cache_stall_ticks");
    const double issue = statGroup.get("vmu_issue_ticks");
    return (stall + issue) > 0 ? stall / (stall + issue) : 0.0;
}

} // namespace eve
