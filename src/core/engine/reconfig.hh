/**
 * @file
 * L2 way-partition reconfiguration (Section V-E): spawning an EVE
 * engine carves out half the private L2's ways, invalidating the
 * lines living there (a simple FSM walks the ways, one line per
 * cycle; dirty lines write back to the LLC). Tearing the engine down
 * is free — associativity is restored with the returned ways invalid.
 */

#ifndef EVE_CORE_ENGINE_RECONFIG_HH
#define EVE_CORE_ENGINE_RECONFIG_HH

#include "common/types.hh"
#include "mem/cache.hh"

namespace eve
{

/** Result of spawning EVE out of a private L2. */
struct SpawnCost
{
    std::uint64_t valid_lines = 0;
    std::uint64_t dirty_lines = 0;
    Cycles cycles = 0;      ///< FSM walk + writeback drain
    Tick ready_tick = 0;    ///< tick the engine becomes usable
};

/**
 * Spawn EVE: invalidate the upper half of @p l2's ways (writing dirty
 * lines back through @p llc), then halve the live associativity.
 *
 * @param now  tick the spawn request is made
 */
SpawnCost spawnEve(Cache& l2, Cache& llc, Tick now);

/** Tear EVE down: restore full associativity (returned ways invalid). */
void teardownEve(Cache& l2);

} // namespace eve

#endif // EVE_CORE_ENGINE_RECONFIG_HH
