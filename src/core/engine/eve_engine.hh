/**
 * @file
 * O3+EVE: the ephemeral vector engine system (Section V).
 *
 * The control processor (O3Core) sends vector instructions to EVE at
 * commit. Inside the engine:
 *
 *  - the VCU routes each instruction to the VSU (compute), VMU
 *    (memory), and/or VRU (reductions and cross-element ops);
 *  - the VSU issues one micro-op tuple per cycle; an instruction's
 *    compute latency is the length of its real micro-program from the
 *    macro-op library, identical across all SRAM arrays (they run in
 *    lock step);
 *  - the VMU generates cache-line requests against the LLC (one per
 *    cycle, one-cycle translation), with the LLC's MSHR pool limiting
 *    miss parallelism — the mechanism behind Figure 8;
 *  - eight DTUs transpose loaded lines into the bit-sliced layout
 *    (and de-transpose stores); EVE-32 needs no transpose;
 *  - the VRU consumes streamed elements for reductions/cross-element
 *    ops (E = B/n elements per beat, Section V-D).
 *
 * Every cycle of the engine's critical path is attributed to one of
 * the Figure 7 execution-breakdown categories.
 *
 * The whole system — core, caches, engine — runs at the EVE-n cycle
 * time from the circuits model, which is how the EVE-16/EVE-32
 * cycle-time penalty degrades scalar performance exactly as the
 * paper describes.
 */

#ifndef EVE_CORE_ENGINE_EVE_ENGINE_HH
#define EVE_CORE_ENGINE_EVE_ENGINE_HH

#include <array>
#include <memory>
#include <vector>

#include "core/layout/layout.hh"
#include "core/uprog/macro_lib.hh"
#include "cpu/o3_core.hh"
#include "cpu/timing_model.hh"
#include "mem/hierarchy.hh"
#include "sim/resource.hh"

namespace eve
{

/** Configuration of the EVE engine. */
struct EveParams
{
    O3CoreParams core;           ///< clock_ns overridden by pf
    unsigned pf = 8;             ///< parallelization factor n
    unsigned arrays = 32;        ///< active EVE sub-arrays (half the L2)
    unsigned dtus = 8;           ///< data transpose units
    Cycles dtu_line_cycles = 8;  ///< per-cacheline transpose time
    unsigned vmu_queue = 4;      ///< outstanding memory macro-ops
    unsigned vmu_line_credits = 64;  ///< outstanding line requests
    unsigned vru_bandwidth_bits = 512;  ///< stream bits per cycle
    Tick spawn_ready = 0;        ///< tick the engine becomes usable
};

/** Execution-breakdown categories of Figure 7. */
struct EveBreakdown
{
    double busy = 0;
    double vru_stall = 0;
    double ld_mem_stall = 0;
    double st_mem_stall = 0;
    double ld_dt_stall = 0;
    double st_dt_stall = 0;
    double vmu_stall = 0;
    double empty_stall = 0;
    double dep_stall = 0;

    double total() const
    {
        return busy + vru_stall + ld_mem_stall + st_mem_stall +
               ld_dt_stall + st_dt_stall + vmu_stall + empty_stall +
               dep_stall;
    }
};

/** The O3+EVE system. */
class EveSystem : public TimingModel
{
  public:
    EveSystem(const EveParams& params, MemHierarchy& mem);

    void consume(const Instr& instr) override;
    void finish() override;
    Tick finalTick() const override;
    StatGroup& stats() override { return statGroup; }
    double clockNs() const override { return core.clockNs(); }

    unsigned hwVectorLength() const { return hwVl; }

    const EveBreakdown& breakdown() const { return bdown; }

    /**
     * Fraction of the VMU's request-issue time spent stalled on the
     * cache (LLC admission / MSHR back-pressure) — the Figure 8
     * metric.
     */
    double vmuCacheStallFraction() const;

    /** Absolute LLC admission stall time observed by the VMU. */
    double vmuCacheStallTicks() const;

    const Layout& layout() const { return dataLayout; }

  private:
    /** How a vector register was last produced (stall attribution). */
    struct Producer
    {
        enum class Kind : std::uint8_t { None, Compute, Load, Vru };

        Kind kind = Kind::None;
        Tick memDone = 0;  ///< load: last line from the LLC
        Tick dtDone = 0;   ///< load: last line out of the DTUs
    };

    void consumeVector(const Instr& instr);
    void execCompute(const Instr& instr, Tick commit);
    void execLoad(const Instr& instr, Tick commit);
    void execStore(const Instr& instr, Tick commit);
    void execVru(const Instr& instr, Tick commit);

    /** Attribute the VSU idle gap [from, start) to its causes. */
    void attributeGap(Tick from, Tick start, Tick commit,
                      const Instr& instr);

    Tick srcReady(const Instr& instr) const;

    EveParams params;
    MemHierarchy& mem;
    O3Core core;
    ClockDomain clock;
    Layout dataLayout;
    MacroLib macroLib;
    unsigned segs;
    unsigned hwVl;

    Tick vsuFree = 0;
    Tick vruFree = 0;
    Tick vmuGenFree = 0;
    std::vector<Addr> lineBuf;  ///< reused per-instruction request plan
    PipelinedUnits dtuUnits;
    TokenPool vmuQueue;
    TokenPool vmuCredits;  ///< outstanding-line back-pressure
    std::array<Tick, 32> vregReady{};
    std::array<Producer, 32> producer{};
    Tick memLast = 0;
    Tick engineLast = 0;

    EveBreakdown bdown;
    StatGroup statGroup;
    StatGroup::Id statVectorInstrs, statVsuUops, statVsuArrayUops;
    StatGroup::Id statVmuLines, statVmuCacheStall, statVmuIssue;
    StatGroup::Id statVruOps;
};

} // namespace eve

#endif // EVE_CORE_ENGINE_EVE_ENGINE_HH
