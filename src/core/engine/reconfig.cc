#include "core/engine/reconfig.hh"

#include "common/bits.hh"

namespace eve
{

SpawnCost
spawnEve(Cache& l2, Cache& llc, Tick now)
{
    const unsigned assoc = l2.params().assoc;
    const unsigned half = assoc / 2;
    const ClockDomain clock(l2.params().clock_ns);

    const InvalidateResult inv = l2.invalidateWays(half, assoc);
    l2.setActiveWays(half);

    SpawnCost cost;
    cost.valid_lines = inv.valid_lines;
    cost.dirty_lines = inv.dirty_lines;

    // The FSM visits each line in the reconfigured ways in constant
    // time (the paper's "each cache line should incur a constant
    // number of cycles to invalidate"); dirty lines additionally
    // drain to the LLC at its banked write bandwidth.
    const std::uint64_t sets = l2.numSets();
    const std::uint64_t visited = sets * (assoc - half);
    const unsigned llc_banks = llc.params().banks;
    const std::uint64_t drain = divCeil(inv.dirty_lines, llc_banks) +
                                (inv.dirty_lines ? llc.params().hit_latency
                                                 : 0);
    cost.cycles = visited + drain;
    cost.ready_tick = now + clock.toTicks(cost.cycles);
    return cost;
}

void
teardownEve(Cache& l2)
{
    // Returned ways are already invalid; restoring associativity is
    // free (Section V-E).
    l2.setActiveWays(l2.params().assoc);
}

} // namespace eve
