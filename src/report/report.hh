/**
 * @file
 * Sweep-result reporting: load the JSONL records a sweep directory
 * holds (the artifacts eve_sweep / the benches / the daemon write),
 * group them into comparable cells, and diff two runs.
 *
 * A "cell" is one grid point of one artifact: source file + system +
 * workload + axes + sampled-or-exact. Within a file, a later record
 * for the same cell wins (re-runs append). Diffing compares only the
 * *simulated* metrics (cycles, simulated seconds, instruction and
 * element counts, mismatch counts, status) — these are byte-
 * deterministic across hosts and runs, so an identical re-run
 * produces exactly zero deltas and the --max-regress CI gate can be
 * as tight as 0%. Host wall time never participates.
 */

#ifndef EVE_REPORT_REPORT_HH
#define EVE_REPORT_REPORT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace eve::report
{

/** One sweep-result record, parsed back from resultToJson() bytes. */
struct Record
{
    std::string source;   ///< basename of the .jsonl it came from
    std::uint64_t index = 0;
    std::string label;
    std::string system;
    std::string workload;
    std::string status;   ///< "ok" / "mismatch" / "failed" / "skipped"
    std::string error;
    std::map<std::string, std::string> axes;
    bool sampled = false;
    bool has_wall = false;
    double wall_s = 0;
    double cycles = 0;
    double seconds = 0;
    double total_ticks = 0;
    double instrs = 0;
    double mismatches = 0;
    double vec_instrs = 0;
    double vec_elem_ops = 0;
    std::map<std::string, double> stats;
    bool has_breakdown = false;
    std::map<std::string, double> breakdown;
    double vmu_cache_stall_ticks = 0;

    /** Cell identity: source|system|workload|axes|sampling. */
    std::string key() const;

    bool ok() const { return status == "ok"; }
};

/** Bookkeeping from a load pass. */
struct LoadStats
{
    std::size_t files = 0;
    std::size_t records = 0;
    std::size_t skipped_lines = 0; ///< malformed / non-record lines
};

/** Parse one JSONL line; false on malformed or non-record input. */
bool parseRecordLine(const std::string& line, Record& out);

/**
 * Load every record of one JSONL artifact. @p source names the
 * records' source (defaults to the path's basename).
 */
std::vector<Record> loadSweepFile(const std::string& path,
                                  LoadStats* stats = nullptr,
                                  const std::string& source = "");

/**
 * Load every *.jsonl artifact directly under @p dir (sorted by name,
 * so record order is stable across hosts). cache.jsonl is skipped:
 * the result cache stores its own key-prefixed lines, not sweep
 * output. Returns an empty vector if the directory has no artifacts.
 */
std::vector<Record> loadSweepDir(const std::string& dir,
                                 LoadStats* stats = nullptr);

/** Last-wins dedup of @p records by cell key, input order kept. */
std::vector<Record> dedupCells(const std::vector<Record>& records);

/** One changed metric of one cell. */
struct Delta
{
    std::string key;
    std::string metric;
    double base = 0;
    double current = 0;
    double pct = 0;  ///< 100 * (current - base) / base (0 if base==0)
    bool status_change = false;
};

/** Result of compareRuns(). */
struct DeltaReport
{
    std::size_t cells = 0;  ///< cells present in both runs
    std::vector<Delta> deltas;
    std::vector<std::string> missing_in_baseline;
    std::vector<std::string> missing_in_current;
    /** Worst positive cycles/seconds regression (percent). */
    double worst_regress_pct = 0;
    /** Cells whose status degraded from ok. */
    std::size_t status_degradations = 0;
};

/**
 * Diff @p current against @p baseline cell by cell over the
 * simulated metrics. Cells are matched by Record::key(); both sides
 * are deduped last-wins first.
 */
DeltaReport compareRuns(const std::vector<Record>& current,
                        const std::vector<Record>& baseline);

/**
 * The CI gate: passes iff no status degraded, no baseline cell is
 * missing from the current run, and the worst cycles/seconds
 * regression is <= @p max_regress_pct. Improvements and new cells
 * never fail the gate.
 */
bool gatePassed(const DeltaReport& report, double max_regress_pct);

/** Human-readable one-line-per-delta rendering of @p report. */
std::vector<std::string> renderDeltas(const DeltaReport& report);

} // namespace eve::report

#endif // EVE_REPORT_REPORT_HH
