#include "report/report.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <unordered_map>

#include "common/fs.hh"
#include "common/json.hh"

namespace eve::report
{

std::string
Record::key() const
{
    std::ostringstream os;
    os << source << '|' << system << '|' << workload;
    for (const auto& [name, value] : axes)
        os << '|' << name << '=' << value;
    os << '|' << (sampled ? "sampled" : "exact");
    return os.str();
}

bool
parseRecordLine(const std::string& line, Record& out)
{
    JsonValue v;
    if (!parseJson(line, v) || !v.isObject())
        return false;
    const JsonValue* system = v.find("system");
    const JsonValue* workload = v.find("workload");
    const JsonValue* status = v.find("status");
    if (!system || !system->isString() || !workload ||
        !workload->isString() || !status || !status->isString())
        return false;
    Record r;
    r.index = std::uint64_t(jsonNumberField(v, "index"));
    r.label = jsonStringField(v, "label");
    r.system = system->text;
    r.workload = workload->text;
    r.status = status->text;
    r.error = jsonStringField(v, "error");
    if (const JsonValue* axes = v.find("axes");
        axes && axes->isObject()) {
        for (const auto& [name, value] : axes->members)
            r.axes[name] = value.isString()
                               ? value.text
                               : std::to_string(value.number);
    }
    if (const JsonValue* wall = v.find("wall_s");
        wall && wall->isNumber()) {
        r.has_wall = true;
        r.wall_s = wall->number;
    }
    if (const JsonValue* sampled = v.find("sampled"))
        r.sampled = sampled->boolean;
    r.cycles = jsonNumberField(v, "cycles");
    r.seconds = jsonNumberField(v, "seconds");
    r.total_ticks = jsonNumberField(v, "total_ticks");
    r.instrs = jsonNumberField(v, "instrs");
    r.mismatches = jsonNumberField(v, "mismatches");
    r.vec_instrs = jsonNumberField(v, "vec_instrs");
    r.vec_elem_ops = jsonNumberField(v, "vec_elem_ops");
    if (const JsonValue* stats = v.find("stats");
        stats && stats->isObject()) {
        for (const auto& [key, value] : stats->members)
            if (value.isNumber())
                r.stats[key] = value.number;
    }
    if (const JsonValue* b = v.find("breakdown"); b && b->isObject()) {
        r.has_breakdown = true;
        for (const auto& [key, value] : b->members)
            if (value.isNumber())
                r.breakdown[key] = value.number;
        r.vmu_cache_stall_ticks =
            jsonNumberField(v, "vmu_cache_stall_ticks");
    }
    out = std::move(r);
    return true;
}

std::vector<Record>
loadSweepFile(const std::string& path, LoadStats* stats,
              const std::string& source)
{
    std::vector<Record> records;
    std::string content;
    if (!readFile(path, content))
        return records;
    const std::string name =
        source.empty()
            ? std::filesystem::path(path).filename().string()
            : source;
    if (stats)
        ++stats->files;
    std::istringstream is(content);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        Record r;
        if (!parseRecordLine(line, r)) {
            if (stats)
                ++stats->skipped_lines;
            continue;
        }
        r.source = name;
        records.push_back(std::move(r));
        if (stats)
            ++stats->records;
    }
    return records;
}

std::vector<Record>
loadSweepDir(const std::string& dir, LoadStats* stats)
{
    std::vector<Record> records;
    std::error_code ec;
    std::vector<std::string> paths;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file())
            continue;
        const std::string name = entry.path().filename().string();
        if (name.size() < 6 ||
            name.compare(name.size() - 6, 6, ".jsonl") != 0)
            continue;
        if (name == "cache.jsonl")
            continue;
        paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
    for (const auto& path : paths) {
        auto file = loadSweepFile(path, stats);
        records.insert(records.end(),
                       std::make_move_iterator(file.begin()),
                       std::make_move_iterator(file.end()));
    }
    return records;
}

std::vector<Record>
dedupCells(const std::vector<Record>& records)
{
    std::vector<Record> out;
    std::unordered_map<std::string, std::size_t> index;
    for (const auto& r : records) {
        const std::string key = r.key();
        auto [it, inserted] = index.emplace(key, out.size());
        if (inserted)
            out.push_back(r);
        else
            out[it->second] = r;
    }
    return out;
}

namespace
{

double
pctChange(double base, double current)
{
    if (base == 0)
        return 0;
    return 100.0 * (current - base) / base;
}

} // namespace

DeltaReport
compareRuns(const std::vector<Record>& current,
            const std::vector<Record>& baseline)
{
    DeltaReport report;
    const auto cur = dedupCells(current);
    const auto base = dedupCells(baseline);
    std::unordered_map<std::string, const Record*> base_by_key;
    for (const auto& r : base)
        base_by_key[r.key()] = &r;
    std::unordered_map<std::string, const Record*> cur_by_key;
    for (const auto& r : cur)
        cur_by_key[r.key()] = &r;

    for (const auto& b : base)
        if (!cur_by_key.count(b.key()))
            report.missing_in_current.push_back(b.key());
    for (const auto& c : cur) {
        const auto it = base_by_key.find(c.key());
        if (it == base_by_key.end()) {
            report.missing_in_baseline.push_back(c.key());
            continue;
        }
        const Record& b = *it->second;
        ++report.cells;
        if (c.status != b.status) {
            Delta d;
            d.key = c.key();
            d.metric = "status";
            d.status_change = true;
            report.deltas.push_back(d);
            if (b.ok() && !c.ok())
                ++report.status_degradations;
            continue;  // metric deltas are noise across a status flip
        }
        const std::pair<const char*, double Record::*> metrics[] = {
            {"cycles", &Record::cycles},
            {"seconds", &Record::seconds},
            {"total_ticks", &Record::total_ticks},
            {"instrs", &Record::instrs},
            {"mismatches", &Record::mismatches},
            {"vec_instrs", &Record::vec_instrs},
            {"vec_elem_ops", &Record::vec_elem_ops},
        };
        for (const auto& [name, member] : metrics) {
            const double bv = b.*member;
            const double cv = c.*member;
            if (bv == cv)
                continue;
            Delta d;
            d.key = c.key();
            d.metric = name;
            d.base = bv;
            d.current = cv;
            d.pct = pctChange(bv, cv);
            report.deltas.push_back(d);
            // More cycles / more simulated time is the regression
            // direction the gate cares about.
            if ((d.metric == std::string("cycles") ||
                 d.metric == std::string("seconds")) &&
                d.pct > report.worst_regress_pct)
                report.worst_regress_pct = d.pct;
        }
    }
    return report;
}

bool
gatePassed(const DeltaReport& report, double max_regress_pct)
{
    if (report.status_degradations > 0)
        return false;
    if (!report.missing_in_current.empty())
        return false;
    return report.worst_regress_pct <= max_regress_pct;
}

std::vector<std::string>
renderDeltas(const DeltaReport& report)
{
    std::vector<std::string> lines;
    char buf[512];
    for (const auto& d : report.deltas) {
        if (d.status_change) {
            std::snprintf(buf, sizeof(buf), "STATUS  %s",
                          d.key.c_str());
        } else {
            std::snprintf(buf, sizeof(buf),
                          "%+8.3f%%  %-13s %s (%.6g -> %.6g)", d.pct,
                          d.metric.c_str(), d.key.c_str(), d.base,
                          d.current);
        }
        lines.push_back(buf);
    }
    for (const auto& key : report.missing_in_current)
        lines.push_back("MISSING (was in baseline)  " + key);
    for (const auto& key : report.missing_in_baseline)
        lines.push_back("NEW (not in baseline)      " + key);
    return lines;
}

} // namespace eve::report
