/**
 * @file
 * Figure/table builders over parsed sweep records, plus the artifact
 * writers. Each builder reduces a record set to one FigureTable —
 * the shape of one of the paper's figures — and the writers render a
 * FigureTable as CSV, as a gnuplot script over that CSV, and as a
 * self-contained SVG bar chart (no external tooling needed to get a
 * picture out of a sweep directory).
 *
 * Builders are total: they produce whatever subset of the figure the
 * records can support (missing cells stay NaN and render empty), so
 * a report over a partial sweep is a partial figure, not an error.
 */

#ifndef EVE_REPORT_FIGURES_HH
#define EVE_REPORT_FIGURES_HH

#include <string>
#include <vector>

#include "report/report.hh"

namespace eve::report
{

/** One figure/table: row labels x column labels -> value. */
struct FigureTable
{
    std::string name;   ///< artifact stem, e.g. "fig6_performance"
    std::string title;
    std::string row_header = "workload";
    std::vector<std::string> columns;
    std::vector<std::string> rows;
    /** rows x columns; NaN = missing cell. */
    std::vector<std::vector<double>> cells;
    std::string note;

    double at(std::size_t row, std::size_t col) const
    {
        return cells[row][col];
    }
    bool empty() const { return rows.empty() || columns.empty(); }
};

/**
 * Figure 6: per-workload speed-up of every system over IO
 * (io.seconds / sys.seconds), plus a geomean row over the paper's
 * subset when every member is present.
 */
FigureTable fig6Performance(const std::vector<Record>& records);

/**
 * Figure 7: EVE execution breakdown — one row per workload/design,
 * each component normalized to that workload's EVE-1 total ticks
 * (falling back to the row's own total when EVE-1 is absent).
 */
FigureTable fig7Breakdown(const std::vector<Record>& records);

/**
 * Figure 8: VMU cache-induced stall percentage per workload per EVE
 * design (eve.vmu_cache_stall_ticks / (stall + issue) * 100).
 */
FigureTable fig8VmuStalls(const std::vector<Record>& records);

/**
 * Table III companion: per-system job inventory — jobs seen, ok /
 * mismatch / failed counts, distinct workloads covered.
 */
FigureTable table3Systems(const std::vector<Record>& records);

/**
 * Table IV companion: per-workload characterization — dynamic
 * instructions, vector instructions, vector fraction, element ops
 * per vector instruction (avg vector length utilization proxy).
 */
FigureTable table4Characterization(const std::vector<Record>& records);

/** Every figure the records can support, in catalog order. */
std::vector<FigureTable> buildAll(const std::vector<Record>& records);

/** Render @p fig as CSV (header row + one line per row label). */
std::string figureCsv(const FigureTable& fig);

/** Render a gnuplot script plotting @p fig's CSV as grouped bars. */
std::string figureGnuplot(const FigureTable& fig,
                          const std::string& csv_name);

/** Render @p fig as a self-contained grouped-bar SVG. */
std::string figureSvg(const FigureTable& fig);

/**
 * Write <out_dir>/<name>.csv, .gp, and .svg for every non-empty
 * figure. Returns the paths written.
 */
std::vector<std::string>
writeFigureArtifacts(const std::vector<FigureTable>& figures,
                     const std::string& out_dir);

} // namespace eve::report

#endif // EVE_REPORT_FIGURES_HH
