#include "report/figures.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "common/fs.hh"

namespace eve::report
{

namespace
{

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/** Canonical Table III system ordering; unknowns go last, by name. */
int
systemRank(const std::string& system)
{
    if (system == "IO")
        return 0;
    if (system == "O3")
        return 1;
    if (system == "O3+IV")
        return 2;
    if (system == "O3+DV")
        return 3;
    if (system.rfind("O3+EVE-", 0) == 0) {
        const int pf = std::atoi(system.c_str() + 7);
        return 4 + pf;  // EVE-1..EVE-32 in pf order
    }
    return 1000;
}

bool
isEve(const std::string& system)
{
    return system.rfind("O3+EVE-", 0) == 0;
}

/**
 * Pick one record per (system, workload): exact axis-free records
 * are preferred over sampled/axis points (those belong to ablation
 * sweeps, not the headline figures); within the same preference
 * class the last record wins (re-runs append).
 */
std::map<std::pair<std::string, std::string>, Record>
selectCells(const std::vector<Record>& records)
{
    std::map<std::pair<std::string, std::string>, Record> cells;
    std::map<std::pair<std::string, std::string>, int> pref;
    for (const auto& r : records) {
        if (!r.ok())
            continue;
        const auto key = std::make_pair(r.system, r.workload);
        const int p = (r.axes.empty() && !r.sampled) ? 1 : 0;
        const auto it = pref.find(key);
        if (it != pref.end() && it->second > p)
            continue;
        pref[key] = p;
        cells[key] = r;
    }
    return cells;
}

/** Workloads in first-appearance order, systems in canonical order. */
void
collectAxes(
    const std::map<std::pair<std::string, std::string>, Record>& cells,
    std::vector<std::string>& systems,
    std::vector<std::string>& workloads,
    const std::vector<Record>& records)
{
    std::set<std::string> seen_w;
    for (const auto& r : records) {
        if (!cells.count(std::make_pair(r.system, r.workload)))
            continue;
        if (seen_w.insert(r.workload).second)
            workloads.push_back(r.workload);
    }
    std::set<std::string> seen_s;
    for (const auto& [key, r] : cells)
        if (seen_s.insert(key.first).second)
            systems.push_back(key.first);
    std::sort(systems.begin(), systems.end(),
              [](const std::string& a, const std::string& b) {
                  const int ra = systemRank(a), rb = systemRank(b);
                  return ra != rb ? ra < rb : a < b;
              });
}

} // namespace

FigureTable
fig6Performance(const std::vector<Record>& records)
{
    FigureTable fig;
    fig.name = "fig6_performance";
    fig.title = "Speed-up over the in-order core (IO)";
    const auto cells = selectCells(records);
    std::vector<std::string> systems, workloads;
    collectAxes(cells, systems, workloads, records);
    if (!std::count(systems.begin(), systems.end(), "IO"))
        return fig;  // no baseline, no speedups
    fig.columns = systems;
    for (const auto& w : workloads) {
        const auto io = cells.find(std::make_pair(std::string("IO"), w));
        if (io == cells.end() || io->second.seconds <= 0)
            continue;
        std::vector<double> row;
        for (const auto& s : systems) {
            const auto it = cells.find(std::make_pair(s, w));
            row.push_back(it != cells.end() && it->second.seconds > 0
                              ? io->second.seconds / it->second.seconds
                              : kNaN);
        }
        fig.rows.push_back(w);
        fig.cells.push_back(std::move(row));
    }
    // The paper's geomean subset, when fully present.
    const std::vector<std::string> subset = {
        "k-means", "pathfinder", "jacobi-2d", "backprop", "sw"};
    std::vector<std::size_t> rows;
    for (const auto& w : subset) {
        const auto it = std::find(fig.rows.begin(), fig.rows.end(), w);
        if (it == fig.rows.end())
            break;
        rows.push_back(std::size_t(it - fig.rows.begin()));
    }
    if (rows.size() == subset.size()) {
        std::vector<double> geo;
        for (std::size_t c = 0; c < fig.columns.size(); ++c) {
            double acc = 0;
            bool complete = true;
            for (const std::size_t r : rows) {
                const double v = fig.cells[r][c];
                if (!(v > 0)) {
                    complete = false;
                    break;
                }
                acc += std::log(v);
            }
            geo.push_back(complete ? std::exp(acc / double(rows.size()))
                                   : kNaN);
        }
        fig.rows.push_back("geomean*");
        fig.cells.push_back(std::move(geo));
        fig.note = "geomean* over {k-means, pathfinder, jacobi-2d, "
                   "backprop, sw} (the paper's subset)";
    }
    return fig;
}

FigureTable
fig7Breakdown(const std::vector<Record>& records)
{
    FigureTable fig;
    fig.name = "fig7_breakdown";
    fig.title = "EVE execution breakdown (normalized to EVE-1 total)";
    fig.row_header = "workload/design";
    const std::vector<std::string> components = {
        "busy",        "vru_stall",   "ld_mem_stall",
        "st_mem_stall", "ld_dt_stall", "st_dt_stall",
        "vmu_stall",   "empty_stall", "dep_stall"};
    fig.columns = {"total"};
    fig.columns.insert(fig.columns.end(), components.begin(),
                       components.end());
    const auto cells = selectCells(records);
    std::vector<std::string> systems, workloads;
    collectAxes(cells, systems, workloads, records);
    for (const auto& w : workloads) {
        const auto eve1 =
            cells.find(std::make_pair(std::string("O3+EVE-1"), w));
        const double eve1_ticks =
            eve1 != cells.end() ? eve1->second.total_ticks : 0;
        for (const auto& s : systems) {
            if (!isEve(s))
                continue;
            const auto it = cells.find(std::make_pair(s, w));
            if (it == cells.end() || !it->second.has_breakdown)
                continue;
            const Record& r = it->second;
            const double denom =
                eve1_ticks > 0 ? eve1_ticks : r.total_ticks;
            std::vector<double> row;
            row.push_back(denom > 0 ? r.total_ticks / denom : kNaN);
            for (const auto& c : components) {
                const auto b = r.breakdown.find(c);
                row.push_back(b != r.breakdown.end() && denom > 0
                                  ? b->second / denom
                                  : kNaN);
            }
            fig.rows.push_back(w + "/" + s);
            fig.cells.push_back(std::move(row));
        }
    }
    fig.note = "each value is a fraction of the workload's EVE-1 "
               "total execution time";
    return fig;
}

FigureTable
fig8VmuStalls(const std::vector<Record>& records)
{
    FigureTable fig;
    fig.name = "fig8_vmu_stalls";
    fig.title = "VMU cache-induced stall % of request-issue time";
    const auto cells = selectCells(records);
    std::vector<std::string> systems, workloads;
    collectAxes(cells, systems, workloads, records);
    for (const auto& s : systems)
        if (isEve(s))
            fig.columns.push_back(s);
    if (fig.columns.empty())
        return fig;
    for (const auto& w : workloads) {
        std::vector<double> row;
        bool any = false;
        for (const auto& s : fig.columns) {
            const auto it = cells.find(std::make_pair(s, w));
            double v = kNaN;
            if (it != cells.end()) {
                const auto& stats = it->second.stats;
                const auto stall =
                    stats.find("eve.vmu_cache_stall_ticks");
                const auto issue = stats.find("eve.vmu_issue_ticks");
                if (stall != stats.end() && issue != stats.end()) {
                    const double denom =
                        stall->second + issue->second;
                    v = denom > 0 ? 100.0 * stall->second / denom
                                  : 0.0;
                    any = true;
                }
            }
            row.push_back(v);
        }
        if (any) {
            fig.rows.push_back(w);
            fig.cells.push_back(std::move(row));
        }
    }
    return fig;
}

FigureTable
table3Systems(const std::vector<Record>& records)
{
    FigureTable fig;
    fig.name = "table3_systems";
    fig.title = "System inventory over the sweep records";
    fig.row_header = "system";
    fig.columns = {"records", "ok", "mismatch", "failed", "workloads"};
    struct Tally
    {
        double records = 0, ok = 0, mismatch = 0, failed = 0;
        std::set<std::string> workloads;
    };
    std::map<std::string, Tally> tallies;
    for (const auto& r : records) {
        Tally& t = tallies[r.system];
        t.records += 1;
        if (r.status == "ok")
            t.ok += 1;
        else if (r.status == "mismatch")
            t.mismatch += 1;
        else if (r.status == "failed")
            t.failed += 1;
        t.workloads.insert(r.workload);
    }
    std::vector<std::string> systems;
    for (const auto& [s, t] : tallies)
        systems.push_back(s);
    std::sort(systems.begin(), systems.end(),
              [](const std::string& a, const std::string& b) {
                  const int ra = systemRank(a), rb = systemRank(b);
                  return ra != rb ? ra < rb : a < b;
              });
    for (const auto& s : systems) {
        const Tally& t = tallies[s];
        fig.rows.push_back(s);
        fig.cells.push_back({t.records, t.ok, t.mismatch, t.failed,
                             double(t.workloads.size())});
    }
    return fig;
}

FigureTable
table4Characterization(const std::vector<Record>& records)
{
    FigureTable fig;
    fig.name = "table4_characterization";
    fig.title = "Workload characterization (vector version)";
    fig.columns = {"instrs", "vec_instrs", "vec_frac",
                   "vec_elem_ops", "ops_per_vinstr"};
    const auto cells = selectCells(records);
    std::vector<std::string> systems, workloads;
    collectAxes(cells, systems, workloads, records);
    // Characterize on the widest vector system present (EVE first,
    // then DV/IV): scalar systems carry no vector stream.
    std::string chosen;
    for (const auto& s : systems)
        if (isEve(s) && (chosen.empty() ||
                         systemRank(s) > systemRank(chosen)))
            chosen = s;
    if (chosen.empty())
        for (const auto& s : {"O3+DV", "O3+IV"})
            if (std::count(systems.begin(), systems.end(), s)) {
                chosen = s;
                break;
            }
    if (chosen.empty())
        return fig;
    for (const auto& w : workloads) {
        const auto it = cells.find(std::make_pair(chosen, w));
        if (it == cells.end())
            continue;
        const Record& r = it->second;
        fig.rows.push_back(w);
        fig.cells.push_back(
            {r.instrs, r.vec_instrs,
             r.instrs > 0 ? r.vec_instrs / r.instrs : kNaN,
             r.vec_elem_ops,
             r.vec_instrs > 0 ? r.vec_elem_ops / r.vec_instrs : kNaN});
    }
    fig.note = "characterized on " + chosen;
    return fig;
}

std::vector<FigureTable>
buildAll(const std::vector<Record>& records)
{
    std::vector<FigureTable> figures;
    for (auto&& fig :
         {fig6Performance(records), fig7Breakdown(records),
          fig8VmuStalls(records), table3Systems(records),
          table4Characterization(records)})
        figures.push_back(fig);
    return figures;
}

namespace
{

std::string
csvField(const std::string& s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += "\"";
    return out;
}

std::string
cellText(double v, int precision = 6)
{
    if (std::isnan(v))
        return "";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    return buf;
}

} // namespace

std::string
figureCsv(const FigureTable& fig)
{
    std::ostringstream os;
    os << csvField(fig.row_header);
    for (const auto& c : fig.columns)
        os << ',' << csvField(c);
    os << '\n';
    for (std::size_t r = 0; r < fig.rows.size(); ++r) {
        os << csvField(fig.rows[r]);
        for (std::size_t c = 0; c < fig.columns.size(); ++c)
            os << ',' << cellText(fig.cells[r][c]);
        os << '\n';
    }
    return os.str();
}

std::string
figureGnuplot(const FigureTable& fig, const std::string& csv_name)
{
    std::ostringstream os;
    os << "# gnuplot script for " << fig.name << "\n"
       << "set datafile separator ','\n"
       << "set terminal svg size 960,540 dynamic\n"
       << "set output '" << fig.name << ".gnuplot.svg'\n"
       << "set title '" << fig.title << "'\n"
       << "set style data histograms\n"
       << "set style histogram clustered gap 1\n"
       << "set style fill solid 0.8 border -1\n"
       << "set boxwidth 0.9\n"
       << "set xtics rotate by -35 scale 0\n"
       << "set key outside right top\n"
       << "set grid ytics\n"
       << "plot for [col=2:" << fig.columns.size() + 1 << "] '"
       << csv_name << "' using col:xtic(1) title columnheader(col)\n";
    return os.str();
}

std::string
figureSvg(const FigureTable& fig)
{
    // A deliberately simple grouped-bar rendering: fixed canvas,
    // linear y from 0 to the max cell, one color per column cycled
    // from a small palette. Not a plotting library — just enough to
    // eyeball a sweep without leaving the terminal's file manager.
    static const char* palette[] = {"#4878d0", "#ee854a", "#6acc64",
                                    "#d65f5f", "#956cb4", "#8c613c",
                                    "#dc7ec0", "#797979", "#d5bb67",
                                    "#82c6e2"};
    const std::size_t ncolors = sizeof(palette) / sizeof(palette[0]);
    const double width = 960, height = 540;
    const double left = 70, right = 180, top = 50, bottom = 110;
    const double plot_w = width - left - right;
    const double plot_h = height - top - bottom;
    double vmax = 0;
    for (const auto& row : fig.cells)
        for (const double v : row)
            if (!std::isnan(v))
                vmax = std::max(vmax, v);
    if (vmax <= 0)
        vmax = 1;
    std::ostringstream os;
    os << "<svg xmlns='http://www.w3.org/2000/svg' width='" << width
       << "' height='" << height << "' viewBox='0 0 " << width << " "
       << height << "'>\n"
       << "<rect width='100%' height='100%' fill='white'/>\n"
       << "<text x='" << width / 2 << "' y='28' text-anchor='middle' "
       << "font-family='sans-serif' font-size='16'>" << fig.title
       << "</text>\n";
    // y axis + gridlines
    for (int g = 0; g <= 4; ++g) {
        const double frac = double(g) / 4;
        const double y = top + plot_h * (1 - frac);
        os << "<line x1='" << left << "' y1='" << y << "' x2='"
           << left + plot_w << "' y2='" << y
           << "' stroke='#dddddd'/>\n"
           << "<text x='" << left - 8 << "' y='" << y + 4
           << "' text-anchor='end' font-family='sans-serif' "
           << "font-size='11'>" << cellText(vmax * frac, 4)
           << "</text>\n";
    }
    const std::size_t nrows = fig.rows.size();
    const std::size_t ncols = fig.columns.size();
    const double group_w = plot_w / std::max<std::size_t>(nrows, 1);
    const double bar_w =
        group_w * 0.85 / std::max<std::size_t>(ncols, 1);
    for (std::size_t r = 0; r < nrows; ++r) {
        const double gx = left + group_w * double(r) + group_w * 0.075;
        for (std::size_t c = 0; c < ncols; ++c) {
            const double v = fig.cells[r][c];
            if (std::isnan(v))
                continue;
            const double h =
                plot_h * std::max(0.0, std::min(v / vmax, 1.0));
            os << "<rect x='" << gx + bar_w * double(c) << "' y='"
               << top + plot_h - h << "' width='" << bar_w * 0.92
               << "' height='" << h << "' fill='"
               << palette[c % ncolors] << "'/>\n";
        }
        const double lx = left + group_w * (double(r) + 0.5);
        os << "<text x='" << lx << "' y='" << top + plot_h + 14
           << "' text-anchor='end' font-family='sans-serif' "
           << "font-size='11' transform='rotate(-35 " << lx << " "
           << top + plot_h + 14 << ")'>" << fig.rows[r]
           << "</text>\n";
    }
    // legend
    for (std::size_t c = 0; c < ncols; ++c) {
        const double ly = top + 16.0 * double(c);
        os << "<rect x='" << left + plot_w + 16 << "' y='" << ly
           << "' width='12' height='12' fill='"
           << palette[c % ncolors] << "'/>\n"
           << "<text x='" << left + plot_w + 32 << "' y='" << ly + 10
           << "' font-family='sans-serif' font-size='11'>"
           << fig.columns[c] << "</text>\n";
    }
    if (!fig.note.empty())
        os << "<text x='" << left << "' y='" << height - 12
           << "' font-family='sans-serif' font-size='11' "
           << "fill='#555555'>" << fig.note << "</text>\n";
    os << "</svg>\n";
    return os.str();
}

std::vector<std::string>
writeFigureArtifacts(const std::vector<FigureTable>& figures,
                     const std::string& out_dir)
{
    std::vector<std::string> written;
    makeDirs(out_dir);
    for (const auto& fig : figures) {
        if (fig.empty())
            continue;
        const std::string base = out_dir + "/" + fig.name;
        atomicWriteFile(base + ".csv", figureCsv(fig));
        atomicWriteFile(base + ".gp",
                        figureGnuplot(fig, fig.name + ".csv"));
        atomicWriteFile(base + ".svg", figureSvg(fig));
        written.push_back(base + ".csv");
        written.push_back(base + ".gp");
        written.push_back(base + ".svg");
    }
    return written;
}

} // namespace eve::report
