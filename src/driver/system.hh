/**
 * @file
 * Top-level driver: assemble any Table III system configuration, run
 * a workload through it (with the functional vector machine attached,
 * so every timing run is also verified), and collect results.
 */

#ifndef EVE_DRIVER_SYSTEM_HH
#define EVE_DRIVER_SYSTEM_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/engine/eve_engine.hh"
#include "cpu/timing_model.hh"
#include "mem/hierarchy.hh"
#include "sim/sampling.hh"
#include "workloads/workload.hh"

namespace eve
{

/** Which Table III system to simulate. */
enum class SystemKind
{
    IO,    ///< in-order scalar
    O3,    ///< out-of-order scalar
    O3IV,  ///< O3 + integrated vector unit
    O3DV,  ///< O3 + decoupled vector engine
    O3EVE, ///< O3 + EVE-n
};

/** Full system configuration. */
struct SystemConfig
{
    SystemKind kind = SystemKind::O3;
    unsigned eve_pf = 8;       ///< EVE parallelization factor
    unsigned llc_mshrs = 32;
    unsigned l2_mshrs = 32;
    unsigned llc_prefetch_lines = 0;  ///< LLC stream prefetcher depth
    unsigned dtus = 8;
    Tick spawn_ready = 0;      ///< EVE spawn completion tick
};

/** Human-readable system name ("O3+EVE-8"). */
std::string systemName(const SystemConfig& config);

/** Symbolic kind name ("O3EVE"); stable even if systemName changes. */
const char* systemKindName(SystemKind kind);

/**
 * Canonical serialization of *every* SystemConfig field, in
 * declaration order ("kind=O3EVE;eve_pf=8;..."). This is the
 * content-addressing identity of a configuration: the result cache
 * hashes it into job keys, so adding a field to SystemConfig
 * automatically invalidates all previously cached results.
 */
std::string configCanonical(const SystemConfig& config);

/** 64-bit FNV-1a fingerprint of configCanonical(). */
std::uint64_t configFingerprint(const SystemConfig& config);

/**
 * Strict inverse of configCanonical(): parses "kind=O3EVE;eve_pf=8;
 * ..." back into a SystemConfig. Every field must appear, in
 * declaration order, with nothing extra — so text produced by a
 * binary whose SystemConfig gained or lost a field is rejected
 * rather than half-applied. Returns false (leaving @p out untouched)
 * on any deviation. The distributed sweep protocol uses this to let
 * worker processes rebuild jobs from job files alone.
 */
bool parseConfigCanonical(const std::string& text, SystemConfig& out);

/**
 * How to run one simulation: threading, the sampling schedule, and
 * (for sampled runs) where functional checkpoints live. The plain
 * default — exact inline simulation — is what the historical
 * run(workload, sim_threads) entry points forward to.
 */
struct SimOptions
{
    /** Threads pipelining one simulation; <= 1 runs inline. Sampled
     * runs always consume inline (the controller is a single-
     * consumer sink), so this only affects exact runs. */
    unsigned sim_threads = 1;

    /** Disabled (exact) by default. */
    SamplingConfig sampling;

    /**
     * Directory for functional checkpoints ("" = none). Only used by
     * sampled vector runs whose scale_tag names a reproducible
     * workload scale (small/full/paper) — "custom" workloads have no
     * stable identity to key a snapshot by.
     */
    std::string checkpoint_dir;

    /** Workload scale for checkpoint identity (small/full/paper). */
    std::string scale_tag;

    /** Simulator salt stamped into checkpoint files (the caller
     * passes exp::kSimulatorSalt; sim/ cannot depend on exp/). */
    std::string salt;
};

/** Result of one (system, workload) simulation. */
struct RunResult
{
    std::string system;
    std::string workload;
    double cycles = 0;        ///< core clock cycles
    double seconds = 0;       ///< wall-clock simulated time
    std::uint64_t instrs = 0; ///< dynamic instructions consumed
    std::uint64_t mismatches = 0;  ///< functional check (0 = pass)
    bool has_breakdown = false;
    EveBreakdown breakdown;   ///< EVE execution categories (ticks)
    double vmu_cache_stall_ticks = 0;
    double total_ticks = 0;

    std::uint64_t vecInstrs = 0;   ///< dynamic vector instructions
    std::uint64_t vecElemOps = 0;  ///< vector element operations

    /**
     * Sampled-run provenance. When @ref sampled is set, cycles /
     * seconds / total_ticks are extrapolated from the measured
     * windows and @ref stats covers only the detailed intervals
     * (raw, unscaled — documented in EXPERIMENTS.md). Exact runs
     * leave all of this at defaults and serialize without it, so
     * their records stay byte-identical to historical ones.
     */
    bool sampled = false;
    std::uint64_t sample_windows = 0;
    std::uint64_t sampled_measured_instrs = 0;
    std::uint64_t sampled_measured_ticks = 0;

    /**
     * Checkpoint action this run took: "", "saved", or "restored".
     * Diagnostic only — never serialized, so cold and restored runs
     * produce byte-identical records.
     */
    std::string checkpoint;

    /** Flattened "<group>.<stat>" counters from every component. */
    std::map<std::string, double> stats;

    double stat(const std::string& key) const
    {
        auto it = stats.find(key);
        return it == stats.end() ? 0.0 : it->second;
    }
};

/** One assembled system. */
class System
{
  public:
    explicit System(const SystemConfig& config);

    /**
     * CMP form: a core whose private hierarchy sits on a shared
     * uncore (LLC + DRAM). Several systems built this way contend
     * for the shared resources. @p llc_gate, when non-null, is
     * interposed on every timing path into the shared LLC (the
     * threaded CMP driver's BarrierClock port).
     */
    System(const SystemConfig& config, SharedUncore& uncore,
           MemObject* llc_gate = nullptr);

    ~System();

    /** Hardware vector length (0 for scalar systems). */
    std::uint32_t hwVectorLength() const;

    /**
     * Run @p workload: init, emit the matching stream (scalar or
     * vector) through the timing model with a VecMachine attached,
     * finish, verify, and collect the result.
     *
     * @p sim_threads <= 1 runs inline (emission calls straight into
     * the model). >= 2 splits one simulation into a pipeline: a
     * producer thread emits the trace (and runs the functional
     * machine and characterization) into a bounded InstrFeed, while
     * this thread pumps the timing model through its Clocked
     * interface. The model consumes the identical record sequence in
     * the identical order, so the simulated timing is byte-identical
     * to the inline path — guarded by the parity tests.
     */
    RunResult run(Workload& workload, unsigned sim_threads = 1);

    /**
     * Full-options form. With opts.sampling disabled this is exactly
     * run(workload, opts.sim_threads); with it enabled the run is
     * sampled: the stream fast-forwards between detailed intervals,
     * cycles/seconds/total_ticks are extrapolated from the measured
     * windows, and (when opts.checkpoint_dir is set and the workload
     * scale is reproducible) the functional state at the last
     * detailed-window entry is checkpointed / restored through a
     * CheckpointStore. Restored runs are byte-identical to cold
     * ones.
     */
    RunResult run(Workload& workload, const SimOptions& opts);

    TimingModel& timing() { return *model; }
    MemHierarchy& memory() { return *hierarchy; }

    /** The EVE engine view (nullptr for other systems). */
    EveSystem* eveSystem() { return eve; }

    /**
     * Bias all physical addresses seen by the *timing* model (not
     * the functional machine). CMP cores use disjoint biases so
     * their footprints do not alias in the shared LLC.
     */
    void setAddressBias(Addr bias) { addrBias = bias; }

    const SystemConfig& config() const { return cfg; }

    /** Hierarchy parameters implied by a system configuration. */
    static HierarchyParams hierarchyParams(const SystemConfig& config);

    /**
     * CMP driver hook: skip the shared llc/dram stat groups when
     * collecting this core's result (they are patched in after every
     * core joined, so concurrent cores never read stats another core
     * is still updating).
     */
    void deferSharedStats() { sharedStatsDeferred = true; }

  private:
    void buildModel();

    /**
     * Emit the workload's trace into the tee (counter +
     * characterizer + functional machine + @p model_leg), recording
     * the stream counters into @p result. In pipelined runs this is
     * the producer thread's body.
     */
    void emitTrace(Workload& workload, InstrSink& model_leg,
                   std::uint32_t hw_vl, RunResult& result);

    /** The sampled-simulation body of run(workload, opts). */
    RunResult runSampled(Workload& workload, const SimOptions& opts);

    SystemConfig cfg;
    std::unique_ptr<MemHierarchy> hierarchy;
    std::unique_ptr<TimingModel> model;
    EveSystem* eve = nullptr;
    Addr addrBias = 0;
    bool sharedStatsDeferred = false;
};

/** Convenience: build a fresh system and run one workload. */
RunResult runWorkload(const SystemConfig& config, Workload& workload,
                      unsigned sim_threads = 1);

/** Full-options convenience form (see System::run(.., SimOptions)). */
RunResult runWorkload(const SystemConfig& config, Workload& workload,
                      const SimOptions& opts);

/**
 * Run two workloads on two cores that share the LLC and the DRAM
 * channel. The second core's run observes the first core's uncore
 * traffic (reservation-model approximation of co-execution), so
 * `second` minus its solo time is the interference cost.
 */
std::pair<RunResult, RunResult> runCmpPair(const SystemConfig& cfg_a,
                                           Workload& workload_a,
                                           const SystemConfig& cfg_b,
                                           Workload& workload_b);

} // namespace eve

#endif // EVE_DRIVER_SYSTEM_HH
