#include "driver/table.hh"

#include <iomanip>
#include <sstream>

#include "common/log.hh"

namespace eve
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != headers.size())
        panic("TextTable: row with %zu cells, expected %zu",
              row.size(), headers.size());
    rows.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto& row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(int(widths[c])) << row[c];
            if (c + 1 < row.size())
                os << "  ";
        }
        os << '\n';
    };
    emit_row(headers);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows)
        emit_row(row);
    return os.str();
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

} // namespace eve
