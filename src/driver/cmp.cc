#include "driver/cmp.hh"

#include <exception>
#include <memory>
#include <thread>

#include "common/log.hh"
#include "sim/barrier_clock.hh"

namespace eve
{

std::vector<RunResult>
runCmpParallel(const std::vector<CmpCore>& cores, unsigned sim_threads)
{
    if (cores.empty())
        return {};
    const unsigned n = unsigned(cores.size());
    if (sim_threads == 0 || sim_threads > n)
        sim_threads = n;

    // The uncore runs at the baseline clock whatever the cores'
    // design points (same convention as runCmpPair).
    HierarchyParams shared = System::hierarchyParams(cores[0].config);
    shared.clock_ns = 1.025;
    SharedUncore uncore(shared);

    RunPermits permits(sim_threads);
    BarrierClock clock(n, &permits);

    // Build every system up front (single-threaded): construction
    // touches only private state plus the uncore's structural config.
    std::vector<std::unique_ptr<GatedUncorePort>> gates;
    std::vector<std::unique_ptr<System>> systems;
    gates.reserve(n);
    systems.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        gates.push_back(std::make_unique<GatedUncorePort>(
            uncore.llc(), clock, i));
        auto sys = std::make_unique<System>(cores[i].config, uncore,
                                            gates.back().get());
        // Disjoint physical footprints in the shared LLC.
        sys->setAddressBias(Addr{i} << 32);
        sys->deferSharedStats();
        systems.push_back(std::move(sys));
    }

    std::vector<RunResult> results(n);
    std::vector<std::exception_ptr> errors(n);
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        threads.emplace_back([&, i] {
            permits.acquire();
            try {
                results[i] = systems[i]->run(*cores[i].workload);
            } catch (...) {
                errors[i] = std::current_exception();
            }
            // Even a failed core must retire from the clock, or the
            // others would wait on its frontier forever.
            clock.finish(i);
            permits.release();
        });
    }
    for (auto& t : threads)
        t.join();
    for (auto& e : errors)
        if (e)
            std::rethrow_exception(e);

    // Patch the shared-uncore statistics in after the join: final
    // values, identical in every core's result, deterministic.
    for (RunResult& r : results) {
        for (StatGroup* group :
             {&uncore.llc().stats(), &uncore.dram().stats()}) {
            for (const auto& [stat, value] : group->sorted())
                r.stats[group->name() + "." + stat] = value;
        }
    }
    return results;
}

} // namespace eve
