#include "driver/system.hh"

#include <cstdlib>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "analytic/circuits.hh"
#include "common/bits.hh"
#include "common/log.hh"
#include "cpu/io_core.hh"
#include "isa/program.hh"
#include "cpu/o3_core.hh"
#include "sim/checkpoint.hh"
#include "vector/dv_engine.hh"
#include "vector/iv_engine.hh"

namespace eve
{

std::string
systemName(const SystemConfig& config)
{
    switch (config.kind) {
      case SystemKind::IO: return "IO";
      case SystemKind::O3: return "O3";
      case SystemKind::O3IV: return "O3+IV";
      case SystemKind::O3DV: return "O3+DV";
      case SystemKind::O3EVE:
        return "O3+EVE-" + std::to_string(config.eve_pf);
    }
    return "?";
}

const char*
systemKindName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::IO: return "IO";
      case SystemKind::O3: return "O3";
      case SystemKind::O3IV: return "O3IV";
      case SystemKind::O3DV: return "O3DV";
      case SystemKind::O3EVE: return "O3EVE";
    }
    return "?";
}

std::string
configCanonical(const SystemConfig& config)
{
    std::string out;
    out += "kind=";
    out += systemKindName(config.kind);
    out += ";eve_pf=" + std::to_string(config.eve_pf);
    out += ";llc_mshrs=" + std::to_string(config.llc_mshrs);
    out += ";l2_mshrs=" + std::to_string(config.l2_mshrs);
    out += ";llc_prefetch_lines=" +
           std::to_string(config.llc_prefetch_lines);
    out += ";dtus=" + std::to_string(config.dtus);
    out += ";spawn_ready=" + std::to_string(config.spawn_ready);
    return out;
}

std::uint64_t
configFingerprint(const SystemConfig& config)
{
    return fnv1a64(configCanonical(config));
}

namespace
{

/** "name=1234" -> value; false on malformed key or number. */
template <typename T>
bool
parseField(const std::string& tok, const char* name, T& out)
{
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos || tok.substr(0, eq) != name)
        return false;
    const std::string value = tok.substr(eq + 1);
    if (value.empty())
        return false;
    char* end = nullptr;
    const unsigned long long v =
        std::strtoull(value.c_str(), &end, 10);
    if (!end || *end != '\0')
        return false;
    out = static_cast<T>(v);
    return static_cast<unsigned long long>(out) == v;
}

} // namespace

bool
parseConfigCanonical(const std::string& text, SystemConfig& out)
{
    std::vector<std::string> toks;
    std::string cur;
    for (const char c : text) {
        if (c == ';') {
            toks.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    toks.push_back(cur);
    if (toks.size() != 7)
        return false;

    SystemConfig cfg;
    static const std::string kKindPrefix = "kind=";
    if (toks[0].rfind(kKindPrefix, 0) != 0)
        return false;
    const std::string kind = toks[0].substr(kKindPrefix.size());
    if (kind == "IO") cfg.kind = SystemKind::IO;
    else if (kind == "O3") cfg.kind = SystemKind::O3;
    else if (kind == "O3IV") cfg.kind = SystemKind::O3IV;
    else if (kind == "O3DV") cfg.kind = SystemKind::O3DV;
    else if (kind == "O3EVE") cfg.kind = SystemKind::O3EVE;
    else return false;

    if (!parseField(toks[1], "eve_pf", cfg.eve_pf) ||
        !parseField(toks[2], "llc_mshrs", cfg.llc_mshrs) ||
        !parseField(toks[3], "l2_mshrs", cfg.l2_mshrs) ||
        !parseField(toks[4], "llc_prefetch_lines",
                    cfg.llc_prefetch_lines) ||
        !parseField(toks[5], "dtus", cfg.dtus) ||
        !parseField(toks[6], "spawn_ready", cfg.spawn_ready))
        return false;
    // The round trip must be exact: the canonical string is the
    // configuration's content-addressing identity.
    if (configCanonical(cfg) != text)
        return false;
    out = cfg;
    return true;
}

HierarchyParams
System::hierarchyParams(const SystemConfig& config)
{
    HierarchyParams hp;
    hp.llc_mshrs = config.llc_mshrs;
    hp.l2_mshrs = config.l2_mshrs;
    hp.llc_prefetch_lines = config.llc_prefetch_lines;
    if (config.kind == SystemKind::O3EVE) {
        hp.clock_ns = CircuitModel::cycleTimeNs(config.eve_pf);
        hp.l2_vector_mode = true;
    }
    return hp;
}

System::System(const SystemConfig& config) : cfg(config)
{
    hierarchy = std::make_unique<MemHierarchy>(hierarchyParams(config));
    buildModel();
}

System::System(const SystemConfig& config, SharedUncore& uncore,
               MemObject* llc_gate)
    : cfg(config)
{
    hierarchy = std::make_unique<MemHierarchy>(
        hierarchyParams(config), uncore.llc(), uncore.dram(),
        llc_gate);
    buildModel();
}

void
System::buildModel()
{
    const SystemConfig& config = cfg;
    switch (config.kind) {
      case SystemKind::IO: {
        IOCoreParams p;
        model = std::make_unique<IOCore>(p, *hierarchy);
        break;
      }
      case SystemKind::O3: {
        O3CoreParams p;
        model = std::make_unique<O3Core>(p, *hierarchy);
        break;
      }
      case SystemKind::O3IV: {
        IVParams p;
        model = std::make_unique<IVSystem>(p, *hierarchy);
        break;
      }
      case SystemKind::O3DV: {
        DVParams p;
        model = std::make_unique<DVSystem>(p, *hierarchy);
        break;
      }
      case SystemKind::O3EVE: {
        EveParams p;
        p.pf = config.eve_pf;
        p.dtus = config.dtus;
        p.spawn_ready = config.spawn_ready;
        auto sys = std::make_unique<EveSystem>(p, *hierarchy);
        eve = sys.get();
        model = std::move(sys);
        break;
      }
    }
}

System::~System() = default;

std::uint32_t
System::hwVectorLength() const
{
    switch (cfg.kind) {
      case SystemKind::IO:
      case SystemKind::O3:
        return 0;
      case SystemKind::O3IV:
        return 4;
      case SystemKind::O3DV:
        return 64;
      case SystemKind::O3EVE:
        return eve->hwVectorLength();
    }
    return 0;
}

namespace
{

/** Rebases memory addresses before they reach a timing model. */
class AddrBiasSink : public InstrSink
{
  public:
    AddrBiasSink(InstrSink& inner, Addr bias)
        : inner(inner), bias(bias)
    {
    }

    void
    consume(const Instr& instr) override
    {
        if (isMemOp(instr.op)) {
            Instr biased = instr;
            biased.addr += bias;
            inner.consume(biased);
        } else {
            inner.consume(instr);
        }
    }

  private:
    InstrSink& inner;
    Addr bias;
};

} // namespace

void
System::emitTrace(Workload& workload, InstrSink& model_leg,
                  std::uint32_t hw_vl, RunResult& result)
{
    CountingSink counter;
    Characterizer characterizer;
    TeeSink tee;
    tee.attach(&counter);
    tee.attach(&characterizer);
    std::unique_ptr<VecMachine> machine;
    if (hw_vl != 0) {
        machine =
            std::make_unique<VecMachine>(workload.memory(), hw_vl);
        tee.attach(machine.get());  // functional execution first
    }
    tee.attach(&model_leg);
    if (hw_vl == 0)
        workload.emitScalar(tee);
    else
        workload.emitVector(tee, hw_vl);
    result.instrs = counter.total;
    result.vecInstrs = characterizer.vecInstrs;
    result.vecElemOps = characterizer.vecOps;
}

RunResult
System::run(Workload& workload, unsigned sim_threads)
{
    workload.init();

    RunResult result;
    result.system = systemName(cfg);
    result.workload = workload.name();

    const std::uint32_t hw_vl = hwVectorLength();
    if (sim_threads <= 1) {
        // Inline: emission calls straight into the model.
        AddrBiasSink biased_model(*model, addrBias);
        emitTrace(workload, biased_model, hw_vl, result);
    } else {
        // Pipelined: a producer thread emits the trace (running the
        // functional machine and characterization), pushing already-
        // biased records into a bounded feed; this thread pumps the
        // model through its Clocked interface. Order is preserved,
        // so the simulated timing is byte-identical to inline.
        InstrFeed feed;
        FeedWriter writer(feed);
        AddrBiasSink biased_writer(writer, addrBias);
        model->attachFeed(&feed);
        std::exception_ptr producer_error;
        std::thread producer([&] {
            try {
                emitTrace(workload, biased_writer, hw_vl, result);
            } catch (...) {
                producer_error = std::current_exception();
            }
            feed.close();
        });
        for (;;) {
            if (!model->quiesced())
                model->tick(kTickHorizonInf);
            else if (feed.closed() && model->quiesced())
                break;
            else
                std::this_thread::yield();
        }
        producer.join();
        model->attachFeed(nullptr);
        if (producer_error)
            std::rethrow_exception(producer_error);
    }
    // The scalar path is timing-only; vector runs verify against the
    // functional machine's memory image.
    result.mismatches = hw_vl == 0 ? 0 : workload.verify();
    model->finish();

    auto collect = [&](StatGroup& group) {
        for (const auto& [stat, value] : group.sorted())
            result.stats[group.name() + "." + stat] = value;
    };
    collect(model->stats());
    collect(hierarchy->l1i().stats());
    collect(hierarchy->l1d().stats());
    collect(hierarchy->l2().stats());
    if (!sharedStatsDeferred) {
        collect(hierarchy->llc().stats());
        collect(hierarchy->dram().stats());
    }
    result.total_ticks = double(model->finalTick());
    result.cycles = result.total_ticks /
                    (model->clockNs() * ticksPerNs);
    result.seconds = result.total_ticks / (ticksPerNs * 1e9);
    if (eve) {
        result.has_breakdown = true;
        result.breakdown = eve->breakdown();
        result.vmu_cache_stall_ticks = eve->vmuCacheStallTicks();
    }
    if (result.mismatches)
        warn("%s on %s: %llu functional mismatches",
             result.workload.c_str(), result.system.c_str(),
             (unsigned long long)result.mismatches);
    return result;
}

namespace
{

/** Forwards records from position @p from on (checkpoint skip). */
class SkipUntilSink : public InstrSink
{
  public:
    SkipUntilSink(InstrSink& inner, std::uint64_t from)
        : inner(inner), from(from)
    {
    }

    void
    consume(const Instr& instr) override
    {
        if (pos++ >= from)
            inner.consume(instr);
    }

  private:
    InstrSink& inner;
    std::uint64_t from;
    std::uint64_t pos = 0;
};

/** Adapts a WarmupFilter to the emission tee. */
class FilterSink : public InstrSink
{
  public:
    explicit FilterSink(WarmupFilter& filter) : filter(filter) {}

    void consume(const Instr& instr) override
    {
        filter.observe(instr);
    }

  private:
    WarmupFilter& filter;
};

} // namespace

RunResult
System::runSampled(Workload& workload, const SimOptions& opts)
{
    workload.init();

    RunResult result;
    result.system = systemName(cfg);
    result.workload = workload.name();
    result.sampled = true;

    const std::uint32_t hw_vl = hwVectorLength();

    // Checkpoint identity: everything the functional state at a
    // record position depends on — the workload and its inputs, the
    // hardware vector length (it shapes the emitted stream), the
    // sampling schedule (it decides the capture position), and the
    // memory-image size (a workload-generator change shows up here
    // even when the simulator salt did not move). Scalar systems
    // have no machine to snapshot, and "custom"-scale workloads have
    // no reproducible identity, so neither uses checkpoints.
    std::unique_ptr<CheckpointStore> store;
    std::string material;
    const bool reproducible_scale = opts.scale_tag == "small" ||
                                    opts.scale_tag == "full" ||
                                    opts.scale_tag == "paper";
    if (!opts.checkpoint_dir.empty() && hw_vl != 0 &&
        reproducible_scale) {
        material = "workload=" + workload.name() +
                   "|scale=" + opts.scale_tag +
                   "|vl=" + std::to_string(hw_vl) +
                   "|mem=" + std::to_string(workload.memory().size()) +
                   "|" + samplingCanonical(opts.sampling);
        store = std::make_unique<CheckpointStore>(opts.checkpoint_dir,
                                                  opts.salt);
    }

    Checkpoint restored;
    bool have_restored = false;
    if (store && store->load(material, restored)) {
        if (restored.mem.size() == workload.memory().size()) {
            have_restored = true;
        } else {
            warn("checkpoint for %s: memory image %zu bytes != "
                 "workload's %zu; ignoring",
                 workload.name().c_str(), restored.mem.size(),
                 std::size_t(workload.memory().size()));
        }
    }

    CountingSink counter;
    Characterizer characterizer;
    WarmupFilter filter(hierarchy->l1d().params().line_bytes);
    FilterSink filter_sink(filter);
    AddrBiasSink biased_model(*model, addrBias);
    SamplingController controller(opts.sampling, *model,
                                  biased_model);

    std::unique_ptr<VecMachine> machine;
    std::unique_ptr<SkipUntilSink> machine_gate;
    if (hw_vl != 0) {
        machine =
            std::make_unique<VecMachine>(workload.memory(), hw_vl);
        if (have_restored) {
            // The machine is memory's only mutator, and its leg is
            // skipped below for every record before the snapshot
            // position — so installing the snapshot right after
            // init() reproduces the cold run's state exactly.
            workload.memory().data() = restored.mem;
            machine->restoreState(restored.machine);
            result.checkpoint = "restored";
        }
        machine_gate = std::make_unique<SkipUntilSink>(
            *machine, have_restored ? restored.position : 0);
    }

    // Capture (overwriting) at every fast-forward -> detailed
    // boundary past what a restored snapshot already covers; the
    // final capture — the last boundary of the stream — is what gets
    // saved, maximizing the machine work the next run skips.
    Checkpoint capture;
    bool captured = false;
    controller.on_detail_entry = [&](std::uint64_t pos) {
        filter.applyTo(hierarchy->llc());
        filter.applyTo(hierarchy->l2());
        filter.applyTo(hierarchy->l1d());
        if (store && machine &&
            (!have_restored || pos > restored.position)) {
            capture.position = pos;
            capture.machine = machine->saveState();
            capture.mem = workload.memory().data();
            captured = true;
        }
    };

    // The sampled tee. Order matters: the controller's boundary hook
    // must observe the functional state produced by records [0, pos)
    // only, so the machine's (gated) leg runs *after* the
    // controller; the timing models are pure consumers of generator-
    // produced records, so they never miss the machine's results.
    TeeSink tee;
    tee.attach(&counter);
    tee.attach(&characterizer);
    tee.attach(&controller);
    tee.attach(&filter_sink);
    if (machine_gate)
        tee.attach(machine_gate.get());
    if (hw_vl == 0)
        workload.emitScalar(tee);
    else
        workload.emitVector(tee, hw_vl);
    result.instrs = counter.total;
    result.vecInstrs = characterizer.vecInstrs;
    result.vecElemOps = characterizer.vecOps;

    result.mismatches = hw_vl == 0 ? 0 : workload.verify();
    model->finish();
    controller.finalize(model->finalTick());

    const SampleStats& sampled = controller.stats();
    result.sample_windows = sampled.windows;
    result.sampled_measured_instrs = sampled.measured_instrs;
    result.sampled_measured_ticks = sampled.measured_ticks;
    if (sampled.measured_instrs == 0)
        warn("%s on %s: stream too short to measure a sampling "
             "window; reporting the detailed-path frontier",
             result.workload.c_str(), result.system.c_str());

    auto collect = [&](StatGroup& group) {
        for (const auto& [stat, value] : group.sorted())
            result.stats[group.name() + "." + stat] = value;
    };
    collect(model->stats());
    collect(hierarchy->l1i().stats());
    collect(hierarchy->l1d().stats());
    collect(hierarchy->l2().stats());
    if (!sharedStatsDeferred) {
        collect(hierarchy->llc().stats());
        collect(hierarchy->dram().stats());
    }
    result.total_ticks =
        extrapolatedTicks(sampled, double(model->finalTick()));
    result.cycles = result.total_ticks /
                    (model->clockNs() * ticksPerNs);
    result.seconds = result.total_ticks / (ticksPerNs * 1e9);
    if (eve) {
        result.has_breakdown = true;
        result.breakdown = eve->breakdown();
        result.vmu_cache_stall_ticks = eve->vmuCacheStallTicks();
    }
    if (result.mismatches)
        warn("%s on %s: %llu functional mismatches",
             result.workload.c_str(), result.system.c_str(),
             (unsigned long long)result.mismatches);

    // Persist the snapshot only from a clean run: a mismatching
    // functional state must never seed future runs.
    if (captured && result.mismatches == 0) {
        store->save(material, capture);
        if (result.checkpoint.empty())
            result.checkpoint = "saved";
    }
    return result;
}

RunResult
System::run(Workload& workload, const SimOptions& opts)
{
    if (!opts.sampling.enabled())
        return run(workload, opts.sim_threads);
    // Sampled runs always consume inline: the controller is a
    // single-consumer sink and the schedule depends only on record
    // position, so the result is byte-identical at any requested
    // sim-thread count.
    return runSampled(workload, opts);
}

RunResult
runWorkload(const SystemConfig& config, Workload& workload,
            unsigned sim_threads)
{
    System system(config);
    return system.run(workload, sim_threads);
}

RunResult
runWorkload(const SystemConfig& config, Workload& workload,
            const SimOptions& opts)
{
    System system(config);
    return system.run(workload, opts);
}

std::pair<RunResult, RunResult>
runCmpPair(const SystemConfig& cfg_a, Workload& workload_a,
           const SystemConfig& cfg_b, Workload& workload_b)
{
    HierarchyParams shared = System::hierarchyParams(cfg_a);
    shared.clock_ns = 1.025;  // the uncore runs at the baseline clock
    SharedUncore uncore(shared);
    System core_a(cfg_a, uncore);
    System core_b(cfg_b, uncore);
    // Disjoint physical footprints in the shared LLC.
    core_b.setAddressBias(Addr{1} << 32);
    RunResult a = core_a.run(workload_a);
    RunResult b = core_b.run(workload_b);
    return {std::move(a), std::move(b)};
}

} // namespace eve
