/**
 * @file
 * Fixed-width text tables for the bench harnesses (the paper's
 * tables and figure series are printed as aligned text).
 */

#ifndef EVE_DRIVER_TABLE_HH
#define EVE_DRIVER_TABLE_HH

#include <string>
#include <vector>

namespace eve
{

/** A simple left-aligned text table. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must match the header count. */
    void addRow(std::vector<std::string> row);

    /** Render with aligned columns and a header rule. */
    std::string render() const;

    /** Format a double with @p precision digits. */
    static std::string num(double value, int precision = 2);

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

} // namespace eve

#endif // EVE_DRIVER_TABLE_HH
