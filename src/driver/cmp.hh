/**
 * @file
 * Threaded CMP co-execution: every core of a chip multiprocessor
 * simulation runs on its own thread, sharing the uncore (LLC + DRAM
 * channel) behind a deterministic barrier-synchronized clock.
 *
 * This is a *co-execution* model, distinct from the sequential
 * runCmpPair() reservation approximation (driver/system.hh), which
 * runs core A to completion and then core B on the warmed uncore.
 * Here the cores' uncore accesses interleave, merged into one global
 * order by lexicographic (simulated tick, core id) — see
 * sim/barrier_clock.hh for the protocol and the determinism
 * argument. The simulated timing of a co-run is a pure function of
 * the configs and workloads: byte-identical at any sim-thread count
 * (asserted at 1, 2, and 8 threads by the parity tests).
 */

#ifndef EVE_DRIVER_CMP_HH
#define EVE_DRIVER_CMP_HH

#include <vector>

#include "driver/system.hh"

namespace eve
{

/** One core of a CMP co-run. */
struct CmpCore
{
    SystemConfig config;
    Workload* workload = nullptr;  ///< not owned; init() is called
};

/**
 * Co-execute @p cores on a shared uncore, each core's simulation on
 * its own thread, with at most @p sim_threads of them computing
 * concurrently (0 = one thread per core). Core i's physical
 * footprint is biased by i << 32 so footprints stay disjoint in the
 * shared LLC. Returns per-core results in core order; every result
 * carries the *final* shared llc/dram statistics (identical across
 * cores, collected after all cores finished).
 */
std::vector<RunResult> runCmpParallel(const std::vector<CmpCore>& cores,
                                      unsigned sim_threads = 0);

} // namespace eve

#endif // EVE_DRIVER_CMP_HH
