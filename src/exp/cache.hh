/**
 * @file
 * Content-hash result cache for resumable sweeps.
 *
 * Every Job has a stable content key: a 64-bit FNV-1a hash over the
 * canonicalized SystemConfig (configCanonical — every field, in
 * declaration order), the workload name, the input-scale tag, a
 * simulator-version salt, and — only for custom-executor jobs — a
 * variant tag (Job::variant). The ResultCache maps keys to previously
 * recorded JSONL result records; the Runner consults it before
 * executing a job and stores fresh Ok results after the run, so a
 * resumed or incrementally edited sweep re-runs only the grid points
 * whose content actually changed.
 *
 * Invalidation is purely key-based — there is no mutable metadata:
 *  - editing any SystemConfig field changes configCanonical and
 *    therefore the key (adding a *new* field to SystemConfig changes
 *    every key, wholesale invalidation by construction);
 *  - bumping kSimulatorSalt orphans every existing entry (bump it
 *    whenever a timing-model change shifts simulated numbers);
 *  - Mismatch/Failed/Skipped results are never stored, so a cache
 *    can only ever replay verified-Ok simulations.
 *
 * Determinism guarantee: a cold run and a fully-cached rerun emit
 * byte-identical JSONL. The cache stores the full resultToJson record
 * (including the original host wall-clock time); lookup parses it
 * back with parseResultJson, and because jsonNumber's rendering
 * round-trips exactly through strtod, re-serializing the restored
 * JobResult reproduces the original bytes.
 *
 * On-disk format: one line per entry in <dir>/cache.jsonl,
 *
 *   {"key":"<16 hex digits>","record":{<resultToJson output>}}
 *
 * The file is append-only; on load, later entries win. Unparseable
 * lines are skipped with a warning (a truncated final line from a
 * killed run must not poison the rest of the cache). Appends are
 * serialized across processes by an flock(2) on <dir>/cache.lock, so
 * several processes may safely share one cache directory.
 */

#ifndef EVE_EXP_CACHE_HH
#define EVE_EXP_CACHE_HH

#include <cstddef>
#include <string>
#include <unordered_map>

#include "exp/runner.hh"
#include "exp/sweep.hh"

namespace eve::exp
{

/**
 * Simulator-version salt mixed into every job key. Bump the suffix
 * whenever a change to the timing model alters simulated results
 * (e.g. the v2 bump: stale in-flight-fill state fixes in mem/cache).
 */
inline constexpr const char* kSimulatorSalt = "eve-sim-v2";

/** The exact byte string hashed into a job's key (for diagnostics). */
std::string jobKeyMaterial(const Job& job, const std::string& salt);

/** 16-hex-digit content key of @p job under @p salt. */
std::string jobKey(const Job& job,
                   const std::string& salt = kSimulatorSalt);

/**
 * Parse one resultToJson() record back into a JobResult (the inverse
 * of the serializer, field for field; the config itself is not part
 * of the record, so @p out.config is left untouched). Returns false
 * on malformed input without modifying @p out.
 */
bool parseResultJson(const std::string& json, JobResult& out);

/**
 * Durable key -> record store under one directory. Not thread-safe;
 * the Runner loads before and stores after its parallel section.
 */
class ResultCache
{
  public:
    /** Binds to @p dir (created on first store) under @p salt. */
    explicit ResultCache(std::string dir,
                         std::string salt = kSimulatorSalt);

    /**
     * Read <dir>/cache.jsonl into memory; a missing file is an empty
     * cache, not an error. Returns the number of entries loaded.
     */
    std::size_t load();

    /**
     * If @p job's key has a stored record, restore it into @p out:
     * payload fields from the record, identity (index, label, config,
     * axes) from @p job, status JobStatus::Cached. Returns true on a
     * hit; on a miss or an unparseable record, @p out keeps only the
     * job identity and false is returned.
     */
    bool lookup(const Job& job, JobResult& out) const;

    /**
     * Persist @p r under @p job's key if it is cache-eligible and the
     * key is not already stored (appends to cache.jsonl).
     */
    void store(const Job& job, const JobResult& r);

    /**
     * The raw stored record text for @p key, or nullptr on a miss.
     * Used by replay paths (e.g. the sweep service) that stream the
     * original resultToJson bytes instead of re-serializing, so the
     * byte-identity guarantee needs no round trip at all.
     */
    const std::string* recordText(const std::string& key) const;

    /**
     * Persist an already-serialized record under @p key (the sweep
     * service ingesting a worker's published result file). The record
     * must parse as a verified-Ok resultToJson record and the key must
     * be new; returns true when the entry was stored.
     */
    bool storeRecord(const std::string& key, const std::string& record);

    /** Only verified-Ok runs may enter the cache. */
    static bool eligible(const JobResult& r)
    {
        return r.status == JobStatus::Ok;
    }

    /** Entries currently in memory. */
    std::size_t size() const { return entries.size(); }

    /** Entries appended by store() since construction. */
    std::size_t stores() const { return stored_count; }

    /** "<dir>/cache.jsonl". */
    std::string filePath() const;

    const std::string& directory() const { return dir; }
    const std::string& saltString() const { return salt; }

  private:
    /** flock-serialized journal append shared by the store paths. */
    void append(const std::string& key, std::string record);

    std::string dir;
    std::string salt;
    std::size_t stored_count = 0;
    std::unordered_map<std::string, std::string> entries;
};

} // namespace eve::exp

#endif // EVE_EXP_CACHE_HH
