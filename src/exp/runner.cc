#include "exp/runner.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace eve::exp
{

const char*
jobStatusName(JobStatus status)
{
    switch (status) {
      case JobStatus::Ok: return "ok";
      case JobStatus::Mismatch: return "mismatch";
      case JobStatus::Failed: return "failed";
      case JobStatus::Skipped: return "skipped";
    }
    return "unknown";
}

Runner::Runner(RunnerOptions options) : opts(std::move(options)) {}

unsigned
Runner::effectiveThreads(std::size_t job_count) const
{
    unsigned n = opts.threads;
    if (n == 0)
        n = std::thread::hardware_concurrency();
    if (n == 0)
        n = 1;
    if (job_count > 0 && n > job_count)
        n = static_cast<unsigned>(job_count);
    return n;
}

std::vector<JobResult>
Runner::run(const SweepSpec& spec) const
{
    return run(spec.jobs());
}

namespace
{

/** Execute one job, converting every failure mode into the status. */
void
executeJob(const Job& job, JobResult& out)
{
    out.index = job.index;
    out.label = job.label;
    out.workload = job.workload;
    out.config = job.config;
    out.axes = job.axes;

    const auto start = std::chrono::steady_clock::now();
    try {
        std::unique_ptr<Workload> workload = job.make();
        if (!workload)
            throw std::runtime_error("unknown workload '" +
                                     job.workload + "'");
        out.result = runWorkload(job.config, *workload);
        out.status = out.result.mismatches ? JobStatus::Mismatch
                                           : JobStatus::Ok;
    } catch (const std::exception& e) {
        out.status = JobStatus::Failed;
        out.error = e.what();
    } catch (...) {
        out.status = JobStatus::Failed;
        out.error = "unknown exception";
    }
    out.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
}

} // namespace

std::vector<JobResult>
Runner::run(const std::vector<Job>& jobs) const
{
    std::vector<JobResult> results(jobs.size());
    // Pre-fill identity fields so Skipped entries are still labelled.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        results[i].index = jobs[i].index;
        results[i].label = jobs[i].label;
        results[i].workload = jobs[i].workload;
        results[i].config = jobs[i].config;
        results[i].axes = jobs[i].axes;
    }
    if (jobs.empty())
        return results;

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> stop{false};
    std::mutex progress_mutex;

    auto worker = [&]() {
        while (true) {
            if (stop.load(std::memory_order_acquire))
                return;
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            executeJob(jobs[i], results[i]);
            if (results[i].status == JobStatus::Failed &&
                opts.on_failure == FailurePolicy::Abort) {
                stop.store(true, std::memory_order_release);
            }
            const std::size_t n_done =
                done.fetch_add(1, std::memory_order_acq_rel) + 1;
            if (opts.progress) {
                std::lock_guard<std::mutex> lock(progress_mutex);
                opts.progress(results[i], n_done, jobs.size());
            }
        }
    };

    const unsigned n_threads = effectiveThreads(jobs.size());
    if (n_threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n_threads);
        for (unsigned t = 0; t < n_threads; ++t)
            pool.emplace_back(worker);
        for (auto& t : pool)
            t.join();
    }
    return results;
}

std::size_t
countStatus(const std::vector<JobResult>& results, JobStatus status)
{
    std::size_t n = 0;
    for (const auto& r : results)
        n += r.status == status;
    return n;
}

} // namespace eve::exp
