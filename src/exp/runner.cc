#include "exp/runner.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "exp/cache.hh"

namespace eve::exp
{

const char*
jobStatusName(JobStatus status)
{
    switch (status) {
      case JobStatus::Ok: return "ok";
      case JobStatus::Mismatch: return "mismatch";
      case JobStatus::Failed: return "failed";
      case JobStatus::Skipped: return "skipped";
      case JobStatus::Cached: return "cached";
    }
    return "unknown";
}

Runner::Runner(RunnerOptions options) : opts(std::move(options)) {}

unsigned
Runner::effectiveThreads(std::size_t job_count) const
{
    unsigned n = opts.threads;
    if (n == 0)
        n = std::thread::hardware_concurrency();
    if (n == 0)
        n = 1;
    if (job_count > 0 && n > job_count)
        n = static_cast<unsigned>(job_count);
    return n;
}

std::vector<JobResult>
Runner::run(const SweepSpec& spec) const
{
    return run(spec.jobs());
}

void
runJob(const Job& job, JobResult& out, unsigned sim_threads,
       const std::string& checkpoint_dir)
{
    out.index = job.index;
    out.label = job.label;
    out.workload = job.workload;
    out.config = job.config;
    out.axes = job.axes;

    const auto start = std::chrono::steady_clock::now();
    try {
        if (job.exec) {
            out.result = job.exec(job.config);
        } else {
            std::unique_ptr<Workload> workload = job.make();
            if (!workload)
                throw std::runtime_error("unknown workload '" +
                                         job.workload + "'");
            SimOptions sopts;
            sopts.sim_threads = sim_threads;
            sopts.sampling = job.sampling;
            sopts.checkpoint_dir = checkpoint_dir;
            sopts.scale_tag = job.scale;
            sopts.salt = kSimulatorSalt;
            out.result = runWorkload(job.config, *workload, sopts);
        }
        out.status = out.result.mismatches ? JobStatus::Mismatch
                                           : JobStatus::Ok;
    } catch (const std::exception& e) {
        out.status = JobStatus::Failed;
        out.error = e.what();
    } catch (...) {
        out.status = JobStatus::Failed;
        out.error = "unknown exception";
    }
    out.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
}

std::vector<JobResult>
Runner::run(const std::vector<Job>& jobs) const
{
    std::vector<JobResult> results(jobs.size());
    // Pre-fill identity fields so Skipped entries are still labelled.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        results[i].index = jobs[i].index;
        results[i].label = jobs[i].label;
        results[i].workload = jobs[i].workload;
        results[i].config = jobs[i].config;
        results[i].axes = jobs[i].axes;
    }
    if (jobs.empty())
        return results;

    // Progress state. The completion counter is incremented under the
    // same mutex that serializes the callback: bumping it outside the
    // lock lets two workers swap between increment and callback, so
    // observers would see done-counts out of order.
    std::mutex progress_mutex;
    std::size_t done = 0;  // guarded by progress_mutex
    auto report = [&](const JobResult& r) {
        std::lock_guard<std::mutex> lock(progress_mutex);
        const std::size_t n_done = ++done;
        if (opts.progress)
            opts.progress(r, n_done, jobs.size());
    };

    // Cache pass: satisfy every job whose content key has a stored
    // result, and execute only the remainder.
    std::vector<std::size_t> pending;
    pending.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (opts.cache && opts.cache->lookup(jobs[i], results[i]))
            report(results[i]);
        else
            pending.push_back(i);
    }

    if (!pending.empty()) {
        std::atomic<std::size_t> next{0};
        std::atomic<bool> stop{false};

        auto worker = [&]() {
            while (true) {
                if (stop.load(std::memory_order_acquire))
                    return;
                const std::size_t p =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (p >= pending.size())
                    return;
                const std::size_t i = pending[p];
                runJob(jobs[i], results[i], opts.sim_threads,
                       opts.checkpoint_dir);
                if (results[i].status == JobStatus::Failed &&
                    opts.on_failure == FailurePolicy::Abort) {
                    stop.store(true, std::memory_order_release);
                }
                report(results[i]);
            }
        };

        const unsigned n_threads = effectiveThreads(pending.size());
        if (n_threads <= 1) {
            worker();
        } else {
            std::vector<std::thread> pool;
            pool.reserve(n_threads);
            for (unsigned t = 0; t < n_threads; ++t)
                pool.emplace_back(worker);
            for (auto& t : pool)
                t.join();
        }
    }

    // Persist fresh, cache-eligible results in index order so the
    // cache file's contents do not depend on completion order.
    if (opts.cache) {
        for (const std::size_t i : pending)
            opts.cache->store(jobs[i], results[i]);
    }
    return results;
}

void
adoptPayload(JobResult& out, JobResult&& record)
{
    out.status = record.status;
    out.error = std::move(record.error);
    out.wall_seconds = record.wall_seconds;
    out.result = std::move(record.result);
}

std::size_t
countStatus(const std::vector<JobResult>& results, JobStatus status)
{
    std::size_t n = 0;
    for (const auto& r : results)
        n += r.status == status;
    return n;
}

} // namespace eve::exp
