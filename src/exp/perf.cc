#include "exp/perf.hh"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/bits.hh"
#include "common/log.hh"
#include "common/stats.hh"
#include "exp/cache.hh"
#include "exp/sink.hh"

namespace eve::exp
{

namespace
{

SystemConfig
kindConfig(SystemKind kind, unsigned pf = 8)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.eve_pf = pf;
    return cfg;
}

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

std::vector<SystemConfig>
tableIIISystems()
{
    std::vector<SystemConfig> systems;
    systems.push_back(kindConfig(SystemKind::IO));
    systems.push_back(kindConfig(SystemKind::O3));
    systems.push_back(kindConfig(SystemKind::O3IV));
    systems.push_back(kindConfig(SystemKind::O3DV));
    for (unsigned pf : {1u, 2u, 4u, 8u, 16u, 32u})
        systems.push_back(kindConfig(SystemKind::O3EVE, pf));
    return systems;
}

std::vector<SystemConfig>
eveDesignSystems()
{
    std::vector<SystemConfig> systems;
    for (unsigned pf : {1u, 2u, 4u, 8u, 16u, 32u})
        systems.push_back(kindConfig(SystemKind::O3EVE, pf));
    return systems;
}

const std::vector<std::string>&
paperWorkloads()
{
    static const std::vector<std::string> names = {
        "vvadd", "mmult", "k-means", "pathfinder",
        "jacobi-2d", "backprop", "sw"};
    return names;
}

const std::vector<std::string>&
rivecWorkloads()
{
    static const std::vector<std::string> names = {
        "axpy", "blackscholes", "streamcluster", "particlefilter"};
    return names;
}

SweepSpec
tableIIISweep(bool small, bool include_rivec)
{
    SweepSpec spec;
    spec.systems(tableIIISystems());
    std::vector<std::string> names = paperWorkloads();
    if (include_rivec)
        names.insert(names.end(), rivecWorkloads().begin(),
                     rivecWorkloads().end());
    spec.workloads(names, small);
    return spec;
}

std::string
parityPayload(const JobResult& r)
{
    // Position-independent: the parity key already identifies the
    // grid point, so the payload must not depend on where in a sweep
    // the job sat (index, label) or which axes a particular spec
    // spelled out — otherwise a slice of the grid, or another tool's
    // sweep over the same points, would spuriously diverge.
    JobResult norm = r;
    norm.index = 0;
    norm.label.clear();
    norm.axes.clear();
    return resultToJson(norm, /*include_host_time=*/false);
}

std::uint64_t
parityFingerprint(const JobResult& r)
{
    return fnv1a64(parityPayload(r));
}

std::string
parityKey(const SystemConfig& config, const std::string& workload,
          const std::string& scale)
{
    return systemName(config) + "|" + workload + "|" + scale +
           "|cfg=" + hex16(configFingerprint(config));
}

std::string
parityKey(const JobResult& r, const std::string& scale)
{
    return parityKey(r.config, r.workload, scale);
}

ParityFile
ParityFile::fromResults(const std::vector<JobResult>& results,
                        const std::string& scale)
{
    ParityFile file;
    for (const auto& r : results) {
        if (r.status != JobStatus::Ok)
            continue;
        file.entries[parityKey(r, scale)] = parityFingerprint(r);
    }
    return file;
}

ParityFile
ParityFile::load(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        fatal("parity: cannot open golden file '%s'", path.c_str());
    ParityFile file;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t space = line.find(' ');
        if (space != 16 || line.size() < 18)
            fatal("parity: %s:%zu: malformed line '%s'", path.c_str(),
                  lineno, line.c_str());
        const std::uint64_t fp =
            std::stoull(line.substr(0, 16), nullptr, 16);
        file.entries[line.substr(17)] = fp;
    }
    return file;
}

void
ParityFile::save(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("parity: cannot open '%s' for writing", path.c_str());
    out << "# eve timing-parity fingerprints (fnv1a64 of the\n"
           "# deterministic result payload; see src/exp/perf.hh)\n";
    for (const auto& [key, fp] : entries)
        out << hex16(fp) << ' ' << key << '\n';
    if (!out)
        fatal("parity: write to '%s' failed", path.c_str());
}

std::vector<std::string>
ParityFile::check(const std::vector<JobResult>& results,
                  const std::string& scale) const
{
    std::vector<std::string> diffs;
    for (const auto& r : results) {
        const std::string key = parityKey(r, scale);
        if (r.status != JobStatus::Ok) {
            diffs.push_back(key + ": job status '" +
                            jobStatusName(r.status) +
                            "' (parity needs a fresh Ok run)");
            continue;
        }
        auto it = entries.find(key);
        if (it == entries.end()) {
            diffs.push_back(key + ": no golden fingerprint");
            continue;
        }
        const std::uint64_t fp = parityFingerprint(r);
        if (fp != it->second)
            diffs.push_back(key + ": fingerprint " + hex16(fp) +
                            " != golden " + hex16(it->second));
    }
    return diffs;
}

SpeedReport
measureSimSpeed(const std::vector<Job>& jobs, unsigned iters,
                unsigned sim_threads,
                const std::string& checkpoint_dir)
{
    if (iters == 0)
        iters = 1;
    SpeedReport report;
    std::map<std::string, SystemSpeed> per_system;

    for (unsigned iter = 0; iter < iters; ++iter) {
        for (const Job& job : jobs) {
            JobResult r;
            r.index = job.index;
            r.label = job.label;
            r.workload = job.workload;
            r.config = job.config;
            r.axes = job.axes;

            std::unique_ptr<Workload> workload = job.make();
            if (!workload)
                fatal("simspeed: unknown workload '%s'",
                      job.workload.c_str());
            SimOptions sopts;
            sopts.sim_threads = sim_threads;
            sopts.sampling = job.sampling;
            sopts.checkpoint_dir = checkpoint_dir;
            sopts.scale_tag = job.scale;
            sopts.salt = kSimulatorSalt;
            const auto start = std::chrono::steady_clock::now();
            r.result = runWorkload(job.config, *workload, sopts);
            const double wall =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            if (r.result.mismatches)
                fatal("simspeed: job '%s' failed functionally",
                      job.label.c_str());
            r.status = JobStatus::Ok;
            r.wall_seconds = wall;

            const double cycles = r.result.cycles;
            SystemSpeed& ss = per_system[r.result.system];
            ss.system = r.result.system;
            ss.jobs += 1;
            ss.wall_seconds += wall;
            ss.sim_cycles += cycles;
            report.jobs += 1;
            report.wall_seconds += wall;
            report.sim_cycles += cycles;

            if (iter == 0)
                report.results.push_back(std::move(r));
        }
    }

    auto finalize = [](double jobs, double wall, double cycles,
                       double& jps, double& nspc) {
        jps = wall > 0 ? jobs / wall : 0;
        nspc = cycles > 0 ? wall * 1e9 / cycles : 0;
    };
    finalize(double(report.jobs), report.wall_seconds,
             report.sim_cycles, report.jobs_per_sec,
             report.ns_per_sim_cycle);
    for (auto& [name, ss] : per_system) {
        finalize(double(ss.jobs), ss.wall_seconds, ss.sim_cycles,
                 ss.jobs_per_sec, ss.ns_per_sim_cycle);
        report.per_system.push_back(ss);
    }
    return report;
}

std::string
speedReportJson(const SpeedReport& report,
                const std::string& grid_label,
                double baseline_jobs_per_sec)
{
    std::ostringstream os;
    os << "{\"grid\":\"" << jsonEscape(grid_label) << "\""
       << ",\"jobs\":" << report.jobs
       << ",\"wall_seconds\":" << jsonNumber(report.wall_seconds)
       << ",\"jobs_per_sec\":" << jsonNumber(report.jobs_per_sec)
       << ",\"sim_cycles\":" << jsonNumber(report.sim_cycles)
       << ",\"ns_per_sim_cycle\":"
       << jsonNumber(report.ns_per_sim_cycle);
    if (baseline_jobs_per_sec > 0) {
        os << ",\"baseline_jobs_per_sec\":"
           << jsonNumber(baseline_jobs_per_sec)
           << ",\"speedup_vs_baseline\":"
           << jsonNumber(report.jobs_per_sec / baseline_jobs_per_sec);
    }
    os << ",\"per_system\":[";
    bool first = true;
    for (const auto& ss : report.per_system) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"system\":\"" << jsonEscape(ss.system) << "\""
           << ",\"jobs\":" << ss.jobs
           << ",\"wall_seconds\":" << jsonNumber(ss.wall_seconds)
           << ",\"jobs_per_sec\":" << jsonNumber(ss.jobs_per_sec)
           << ",\"sim_cycles\":" << jsonNumber(ss.sim_cycles)
           << ",\"ns_per_sim_cycle\":"
           << jsonNumber(ss.ns_per_sim_cycle) << "}";
    }
    os << "]}";
    return os.str();
}

} // namespace eve::exp
