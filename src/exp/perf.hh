/**
 * @file
 * Simulator-speed measurement and the timing-parity guard.
 *
 * Hot-path work on the timing core is only admissible if it does not
 * change a single simulated cycle. The parity guard makes that
 * mechanical: every run has a *parity fingerprint* — a 64-bit FNV-1a
 * hash of its deterministic result payload (resultToJson without host
 * time: cycles, seconds, instrs, the full stats map, the EVE
 * breakdown) — keyed by the configuration fingerprint, workload, and
 * input scale. A ParityFile stores golden fingerprints; a check run
 * re-simulates the same grid and compares byte-for-byte. If the guard
 * passes, kSimulatorSalt does not need a bump and every cached sweep
 * result stays valid.
 *
 * The speed side answers "how fast is the simulator itself": serial
 * jobs/sec and host-ns per simulated cycle over a job list, overall
 * and per simulated system. Serial execution (not the Runner pool)
 * keeps the numbers comparable across hosts with different core
 * counts and keeps per-job attribution exact.
 */

#ifndef EVE_EXP_PERF_HH
#define EVE_EXP_PERF_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exp/runner.hh"
#include "exp/sweep.hh"

namespace eve::exp
{

/** The Table III system list (IO, O3, O3+IV, O3+DV, EVE-1..32). */
std::vector<SystemConfig> tableIIISystems();

/** The EVE-only design sweep (EVE-1..32), as used by Figures 7/8. */
std::vector<SystemConfig> eveDesignSystems();

/** The paper's Figure 6 workload list. */
const std::vector<std::string>& paperWorkloads();

/**
 * The RiVEC-style extension kernels (axpy, blackscholes,
 * streamcluster, particlefilter): streaming MAC, mask/branch,
 * gather, and scatter/reduction shapes beyond the paper's suite.
 */
const std::vector<std::string>& rivecWorkloads();

/**
 * The canonical Table III grid: every Table III system crossed with
 * the paper's workloads. This is the reference sweep for both the
 * performance figures and the simulator-speed benchmark.
 * @p include_rivec appends the RiVEC extension kernels to the
 * workload axis — off by default so BENCH_* trajectories (sim-speed,
 * parity goldens) stay comparable across PRs; the benches opt in via
 * EVE_BENCH_RIVEC=1.
 */
SweepSpec tableIIISweep(bool small, bool include_rivec = false);

/**
 * Deterministic result payload the parity fingerprint hashes.
 * Sweep bookkeeping (index, label, axes) is normalized out so the
 * fingerprint of a grid point is identical whether it ran in the
 * full Table III grid, a sliced eve_perf run, or an eve_sweep
 * invocation covering the same point.
 */
std::string parityPayload(const JobResult& r);

/** 64-bit FNV-1a fingerprint of parityPayload(). */
std::uint64_t parityFingerprint(const JobResult& r);

/**
 * Stable identity of one grid point:
 * "<system>|<workload>|<scale>|cfg=<16-hex configFingerprint>".
 * Deliberately salt-free: the whole point of the guard is to compare
 * across simulator versions under the *same* salt.
 */
std::string parityKey(const SystemConfig& config,
                      const std::string& workload,
                      const std::string& scale);

/** Key of the grid point a JobResult came from. */
std::string parityKey(const JobResult& r, const std::string& scale);

/**
 * A keyed set of golden parity fingerprints with a line-oriented
 * on-disk form: "<16-hex fingerprint> <key>" per line, '#' comments.
 */
class ParityFile
{
  public:
    /** Fingerprint every Ok result of @p results. */
    static ParityFile fromResults(const std::vector<JobResult>& results,
                                  const std::string& scale);

    /** Load a golden file; fatal on I/O or parse errors. */
    static ParityFile load(const std::string& path);

    /** Write the golden file (sorted by key); fatal on I/O errors. */
    void save(const std::string& path) const;

    /**
     * Compare @p results against the goldens. Returns one
     * human-readable line per divergence: fingerprint mismatches,
     * grid points missing from the goldens, and non-Ok jobs. Empty
     * means byte-identical timing.
     */
    std::vector<std::string>
    check(const std::vector<JobResult>& results,
          const std::string& scale) const;

    std::size_t size() const { return entries.size(); }

  private:
    std::map<std::string, std::uint64_t> entries;
};

/** Speed of one simulated system within a measurement pass. */
struct SystemSpeed
{
    std::string system;
    std::size_t jobs = 0;          ///< jobs measured (all iterations)
    double wall_seconds = 0;       ///< host time spent simulating
    double jobs_per_sec = 0;
    double sim_cycles = 0;         ///< simulated core cycles (all iters)
    double ns_per_sim_cycle = 0;   ///< host-ns per simulated cycle
};

/** Result of measureSimSpeed(). */
struct SpeedReport
{
    std::size_t jobs = 0;          ///< job executions (all iterations)
    double wall_seconds = 0;
    double jobs_per_sec = 0;
    double sim_cycles = 0;
    double ns_per_sim_cycle = 0;
    std::vector<SystemSpeed> per_system;

    /** First-iteration results (for parity checks / artifacts). */
    std::vector<JobResult> results;
};

/**
 * Run every job serially @p iters times, timing each execution.
 * Failures are fatal — a speed number over failed jobs is
 * meaningless. @p iters > 1 amortizes host timer noise.
 * @p sim_threads > 1 pipelines each simulation (System::run) — jobs
 * still execute one at a time, so attribution stays exact while the
 * intra-sim speedup shows up directly in jobs/s.
 * Jobs with a sampling schedule run sampled (this is how the
 * sampling speedup itself is measured); @p checkpoint_dir, when
 * non-empty, lets those jobs save/restore functional checkpoints.
 */
SpeedReport measureSimSpeed(const std::vector<Job>& jobs,
                            unsigned iters = 1,
                            unsigned sim_threads = 1,
                            const std::string& checkpoint_dir = "");

/**
 * Render @p report as a JSON object. @p baseline_jobs_per_sec > 0
 * adds "baseline_jobs_per_sec" and "speedup_vs_baseline".
 */
std::string speedReportJson(const SpeedReport& report,
                            const std::string& grid_label,
                            double baseline_jobs_per_sec = 0);

} // namespace eve::exp

#endif // EVE_EXP_PERF_HH
