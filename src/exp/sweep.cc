#include "exp/sweep.hh"

#include "common/log.hh"

namespace eve::exp
{

SweepSpec&
SweepSpec::system(const SystemConfig& config)
{
    base_systems.push_back(config);
    return *this;
}

SweepSpec&
SweepSpec::systems(const std::vector<SystemConfig>& configs)
{
    base_systems.insert(base_systems.end(), configs.begin(),
                        configs.end());
    return *this;
}

SweepSpec&
SweepSpec::axis(Axis ax)
{
    if (ax.points.empty())
        fatal("sweep axis '%s' has no points", ax.name.c_str());
    axis_list.push_back(std::move(ax));
    return *this;
}

SweepSpec&
SweepSpec::workload(const std::string& name, WorkloadFactory make,
                    std::string scale)
{
    workload_list.push_back({name, std::move(scale), std::move(make)});
    return *this;
}

SweepSpec&
SweepSpec::workloads(const std::vector<std::string>& names, bool small)
{
    for (const auto& name : names) {
        workload_list.push_back(
            {name, small ? "small" : "full",
             [name, small]() { return makeWorkload(name, small); }});
    }
    return *this;
}

SweepSpec&
SweepSpec::workloads(const std::vector<std::string>& names,
                     const std::string& scale)
{
    for (const auto& name : names) {
        workload_list.push_back(
            {name, scale,
             [name, scale]() {
                 return makeWorkloadScaled(name, scale);
             }});
    }
    return *this;
}

SweepSpec&
SweepSpec::sampling(const SamplingConfig& cfg)
{
    sampling_cfg = cfg;
    return *this;
}

void
SweepSpec::expand(
    const std::function<void(
        const SystemConfig&, const std::string&,
        const std::vector<std::pair<std::string, std::string>>&)>& visit)
    const
{
    // One default config when none was given, so axis-only sweeps work.
    std::vector<SystemConfig> bases = base_systems;
    if (bases.empty())
        bases.emplace_back();

    // Odometer over the axis points; base config outermost.
    std::vector<std::size_t> idx(axis_list.size(), 0);
    for (const auto& base : bases) {
        std::fill(idx.begin(), idx.end(), 0);
        bool done = false;
        while (!done) {
            SystemConfig cfg = base;
            std::vector<std::pair<std::string, std::string>> axes;
            std::string axis_suffix;
            for (std::size_t a = 0; a < axis_list.size(); ++a) {
                const AxisPoint& pt = axis_list[a].points[idx[a]];
                pt.apply(cfg);
                axes.emplace_back(axis_list[a].name, pt.label);
                axis_suffix += "/" + axis_list[a].name + "=" + pt.label;
            }
            // Name the *overridden* config, so an axis that changes
            // e.g. eve_pf shows up in the system part of the label.
            visit(cfg, systemName(cfg) + axis_suffix, axes);

            // Increment the odometer, last axis fastest.
            done = true;
            for (std::size_t a = axis_list.size(); a-- > 0;) {
                if (++idx[a] < axis_list[a].points.size()) {
                    done = false;
                    break;
                }
                idx[a] = 0;
            }
        }
    }
}

std::vector<SystemConfig>
SweepSpec::expandedSystems() const
{
    std::vector<SystemConfig> out;
    expand([&](const SystemConfig& cfg, const std::string&,
               const auto&) { out.push_back(cfg); });
    return out;
}

std::vector<std::string>
SweepSpec::expandedSystemLabels() const
{
    std::vector<std::string> out;
    expand([&](const SystemConfig&, const std::string& label,
               const auto&) { out.push_back(label); });
    return out;
}

std::size_t
SweepSpec::systemCount() const
{
    std::size_t n = base_systems.empty() ? 1 : base_systems.size();
    for (const auto& ax : axis_list)
        n *= ax.points.size();
    return n;
}

std::vector<Job>
SweepSpec::jobs() const
{
    if (workload_list.empty())
        fatal("sweep has no workloads; add workload() axes before "
              "expanding jobs");
    for (const auto& w : workload_list) {
        if (!w.make)
            fatal("workload '%s' has a null factory", w.name.c_str());
    }

    std::vector<Job> out;
    out.reserve(systemCount() * workload_list.size());
    expand([&](const SystemConfig& cfg, const std::string& label,
               const std::vector<std::pair<std::string, std::string>>&
                   axes) {
        for (const auto& w : workload_list) {
            Job job;
            job.index = out.size();
            job.label = label + "/" + w.name;
            job.config = cfg;
            job.workload = w.name;
            job.scale = w.scale;
            job.make = w.make;
            job.axes = axes;
            job.sampling = sampling_cfg;
            out.push_back(std::move(job));
        }
    });
    return out;
}

} // namespace eve::exp
