#include "exp/sink.hh"

#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "common/fs.hh"
#include "common/log.hh"
#include "common/stats.hh"

namespace eve::exp
{

namespace
{

std::string
quoted(const std::string& s)
{
    return "\"" + jsonEscape(s) + "\"";
}

} // namespace

std::string
resultToJson(const JobResult& r, bool include_host_time)
{
    // A Cached result *is* the earlier Ok run, restored verbatim;
    // serializing it as "ok" is what makes a fully-cached rerun emit
    // JSONL byte-identical to the cold run that populated the cache.
    const bool cached = r.status == JobStatus::Cached;
    std::ostringstream os;
    os << "{\"index\":" << r.index
       << ",\"label\":" << quoted(r.label)
       << ",\"system\":"
       << quoted(r.result.system.empty() ? systemName(r.config)
                                         : r.result.system)
       << ",\"workload\":" << quoted(r.workload)
       << ",\"status\":"
       << quoted(cached ? "ok" : jobStatusName(r.status));
    if (!r.axes.empty()) {
        os << ",\"axes\":{";
        bool first = true;
        for (const auto& [name, value] : r.axes) {
            if (!first)
                os << ",";
            first = false;
            os << quoted(name) << ":" << quoted(value);
        }
        os << "}";
    }
    if (r.status == JobStatus::Failed)
        os << ",\"error\":" << quoted(r.error);
    if (include_host_time)
        os << ",\"wall_s\":" << jsonNumber(r.wall_seconds);
    if (r.status == JobStatus::Ok || r.status == JobStatus::Mismatch ||
        cached) {
        const RunResult& res = r.result;
        os << ",\"cycles\":" << jsonNumber(res.cycles)
           << ",\"seconds\":" << jsonNumber(res.seconds)
           << ",\"total_ticks\":" << jsonNumber(res.total_ticks)
           << ",\"instrs\":" << res.instrs
           << ",\"mismatches\":" << res.mismatches
           << ",\"vec_instrs\":" << res.vecInstrs
           << ",\"vec_elem_ops\":" << res.vecElemOps;
        // Sampled provenance is only present on sampled runs, so
        // exact records keep their historical bytes.
        if (res.sampled) {
            os << ",\"sampled\":true"
               << ",\"sample_windows\":" << res.sample_windows
               << ",\"sampled_measured_instrs\":"
               << res.sampled_measured_instrs
               << ",\"sampled_measured_ticks\":"
               << res.sampled_measured_ticks;
        }
        os << ",\"stats\":" << statsToJson(res.stats);
        if (res.has_breakdown) {
            const EveBreakdown& b = res.breakdown;
            os << ",\"breakdown\":{"
               << "\"busy\":" << jsonNumber(b.busy)
               << ",\"vru_stall\":" << jsonNumber(b.vru_stall)
               << ",\"ld_mem_stall\":" << jsonNumber(b.ld_mem_stall)
               << ",\"st_mem_stall\":" << jsonNumber(b.st_mem_stall)
               << ",\"ld_dt_stall\":" << jsonNumber(b.ld_dt_stall)
               << ",\"st_dt_stall\":" << jsonNumber(b.st_dt_stall)
               << ",\"vmu_stall\":" << jsonNumber(b.vmu_stall)
               << ",\"empty_stall\":" << jsonNumber(b.empty_stall)
               << ",\"dep_stall\":" << jsonNumber(b.dep_stall)
               << "},\"vmu_cache_stall_ticks\":"
               << jsonNumber(res.vmu_cache_stall_ticks);
        }
    }
    os << "}";
    return os.str();
}

void
JsonLinesSink::write(const JobResult& r)
{
    os << resultToJson(r) << '\n';
}

void
CsvSink::write(const JobResult& r)
{
    rows.push_back(r);
}

namespace
{

std::string
csvField(const std::string& s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += "\"";
    return out;
}

} // namespace

std::string
CsvSink::render() const
{
    // Axis and stat columns are the sorted union over all rows, so
    // heterogeneous sweeps (e.g. EVE + scalar systems) line up.
    std::set<std::string> axis_names;
    std::set<std::string> stat_keys;
    for (const auto& r : rows) {
        for (const auto& [name, value] : r.axes)
            axis_names.insert(name);
        for (const auto& [key, value] : r.result.stats)
            stat_keys.insert(key);
    }

    std::ostringstream os;
    os << "index,label,system,workload,status,error,wall_s,cycles,"
          "seconds,instrs,mismatches";
    for (const auto& name : axis_names)
        os << ',' << csvField(name);
    for (const auto& key : stat_keys)
        os << ',' << csvField(key);
    os << '\n';

    for (const auto& r : rows) {
        os << r.index << ',' << csvField(r.label) << ','
           << csvField(systemName(r.config)) << ','
           << csvField(r.workload) << ',' << jobStatusName(r.status)
           << ',' << csvField(r.error) << ','
           << jsonNumber(r.wall_seconds) << ','
           << jsonNumber(r.result.cycles) << ','
           << jsonNumber(r.result.seconds) << ',' << r.result.instrs
           << ',' << r.result.mismatches;
        const std::map<std::string, std::string> axis_values(
            r.axes.begin(), r.axes.end());
        for (const auto& name : axis_names) {
            os << ',';
            auto it = axis_values.find(name);
            if (it != axis_values.end())
                os << csvField(it->second);
        }
        for (const auto& key : stat_keys) {
            os << ',';
            auto it = r.result.stats.find(key);
            if (it != r.result.stats.end())
                os << jsonNumber(it->second);
        }
        os << '\n';
    }
    return os.str();
}

void
writeJsonLines(const std::vector<JobResult>& results,
               const std::string& path, bool include_host_time)
{
    std::string content;
    for (const auto& r : results) {
        content += resultToJson(r, include_host_time);
        content += '\n';
    }
    atomicWriteFile(path, content);
}

void
writeCsv(const std::vector<JobResult>& results, const std::string& path)
{
    CsvSink sink;
    for (const auto& r : results)
        sink.write(r);
    atomicWriteFile(path, sink.render());
}

} // namespace eve::exp
