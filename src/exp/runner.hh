/**
 * @file
 * Thread-pool sweep execution.
 *
 * The Runner executes the independent (config, workload) jobs of a
 * SweepSpec on a pool of worker threads. Each job builds a private
 * System and Workload, so jobs share no mutable state and the
 * simulated results are identical whatever the thread count.
 *
 * Guarantees:
 *  - results are keyed by job index (deterministic ordering, never
 *    completion order);
 *  - a throwing or functionally mismatching job is recorded with a
 *    non-Ok status instead of aborting the sweep (policy Record);
 *    policy Abort stops scheduling new jobs after the first failure
 *    but still returns every result produced so far;
 *  - the progress callback is serialized (called under a mutex) and
 *    observes monotonically increasing completion counts.
 */

#ifndef EVE_EXP_RUNNER_HH
#define EVE_EXP_RUNNER_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "driver/system.hh"
#include "exp/sweep.hh"

namespace eve::exp
{

/** Outcome of one job. */
enum class JobStatus
{
    Ok,       ///< simulation ran and the functional check passed
    Mismatch, ///< simulation ran but verify() found mismatches
    Failed,   ///< the job threw; RunResult is not meaningful
    Skipped,  ///< not executed (Abort policy stopped the sweep)
    Cached,   ///< restored from a ResultCache; payload was an Ok run
};

/**
 * Printable status name ("ok", "mismatch", "failed", "skipped",
 * "cached").
 */
const char* jobStatusName(JobStatus status);

/** One job together with its outcome. */
struct JobResult
{
    std::size_t index = 0;    ///< job index within the sweep
    std::string label;        ///< from Job::label
    std::string workload;     ///< from Job::workload
    SystemConfig config;      ///< from Job::config
    std::vector<std::pair<std::string, std::string>> axes;

    JobStatus status = JobStatus::Skipped;
    std::string error;        ///< exception text when Failed
    double wall_seconds = 0;  ///< host wall-clock time of the job
    RunResult result;         ///< valid when status != Failed/Skipped
};

/** What to do when a job fails. */
enum class FailurePolicy
{
    Record, ///< mark the job failed, keep sweeping (default)
    Abort,  ///< stop handing out new jobs after the first failure
};

/** Called after each job completes; serialized across workers. */
using ProgressFn = std::function<void(
    const JobResult& r, std::size_t done, std::size_t total)>;

class ResultCache;

struct RunnerOptions
{
    /** Worker count; 0 means std::thread::hardware_concurrency(). */
    unsigned threads = 0;

    /**
     * Threads *inside* each simulation (System::run pipelining);
     * <= 1 runs inline. Simulated timing is byte-identical either
     * way (parity-guarded), so cache keys are unaffected.
     */
    unsigned sim_threads = 1;
    FailurePolicy on_failure = FailurePolicy::Record;
    ProgressFn progress;

    /**
     * Optional content-hash result cache (not owned). Jobs whose key
     * is present are marked Cached and not executed; fresh Ok results
     * are stored back after the run. See exp/cache.hh.
     */
    ResultCache* cache = nullptr;

    /**
     * Directory for functional-state checkpoints ("" = none); only
     * sampled jobs use it. Sweep jobs sharing a (workload, scale,
     * vector-length, schedule) prefix restore one snapshot instead
     * of each re-running the functional fast-forward. See
     * sim/checkpoint.hh.
     */
    std::string checkpoint_dir;
};

/** Executes sweep jobs on a thread pool. */
class Runner
{
  public:
    explicit Runner(RunnerOptions options = {});

    /** Expand @p spec and run every job; results ordered by index. */
    std::vector<JobResult> run(const SweepSpec& spec) const;

    /** Run an explicit job list; results ordered by index. */
    std::vector<JobResult> run(const std::vector<Job>& jobs) const;

    /** The worker count a run() call will use. */
    unsigned effectiveThreads(std::size_t job_count) const;

  private:
    RunnerOptions opts;
};

/** Count results with the given status. */
std::size_t countStatus(const std::vector<JobResult>& results,
                        JobStatus status);

/**
 * The job-execution core shared by the thread-pool Runner and the
 * distributed worker loop (exp/dist.hh): copy the job's identity
 * into @p out, build and run its workload (or its custom executor),
 * and fold every failure mode into JobStatus — a throwing job
 * becomes Failed with the exception text, never a crash.
 * @p sim_threads threads pipeline each simulation (<= 1 inline);
 * @p checkpoint_dir, when non-empty, lets sampled jobs save/restore
 * functional checkpoints (exact jobs ignore it).
 */
void runJob(const Job& job, JobResult& out, unsigned sim_threads = 1,
            const std::string& checkpoint_dir = "");

/**
 * Copy the *payload* half of @p record — status, error text, host
 * wall clock, and the RunResult — into @p out, leaving the identity
 * half (index, label, workload, config, axes) untouched. This is the
 * one splice point shared by every result-replay path (cache lookup,
 * distributed merge, service streaming): payload from the stored
 * record, identity from the live job, so replayed results re-serialize
 * byte-identically while following any relabelling of the sweep.
 */
void adoptPayload(JobResult& out, JobResult&& record);

} // namespace eve::exp

#endif // EVE_EXP_RUNNER_HH
