#include "exp/dist.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>

#include <unistd.h>

#include "common/bits.hh"
#include "common/fs.hh"
#include "common/log.hh"
#include "driver/system.hh"
#include "exp/cache.hh"
#include "exp/sink.hh"
#include "workloads/workload.hh"

namespace eve::exp
{

namespace
{

/** Sorted regular-file names in @p dir (missing dir = empty). */
std::vector<std::string>
listDir(const std::string& dir)
{
    std::vector<std::string> names;
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec)
        return names;
    for (const auto& entry : it) {
        std::error_code type_ec;
        if (entry.is_regular_file(type_ec))
            names.push_back(entry.path().filename().string());
    }
    std::sort(names.begin(), names.end());
    return names;
}

bool
isTmpName(const std::string& name)
{
    const std::string suffix = kTmpSuffix;
    return name.size() > suffix.size() &&
           name.compare(name.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

/** Count non-tmp files (tmp files are in-flight writes, not state). */
std::size_t
countFinal(const std::string& dir)
{
    std::size_t n = 0;
    for (const auto& name : listDir(dir))
        n += !isTmpName(name);
    return n;
}

std::string
hostName()
{
    char buf[256] = {0};
    if (::gethostname(buf, sizeof(buf) - 1) != 0)
        return "host";
    return buf;
}

void
sleepFor(double seconds)
{
    std::this_thread::sleep_for(
        std::chrono::duration<double>(seconds));
}

/**
 * Order-independent fingerprint of the grid's job keys: workers use
 * it to refuse a directory built for a different sweep or by a
 * diverged binary.
 */
std::string
gridFingerprint(const std::vector<Job>& jobs)
{
    std::uint64_t acc = 0;
    for (const auto& job : jobs)
        acc ^= fnv1a64(jobKey(job) + "@" + std::to_string(job.index));
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(acc));
    return buf;
}

/** One "key=value" line; value may contain anything but newlines. */
bool
lineValue(const std::string& line, const char* key, std::string& out)
{
    const std::string prefix = std::string(key) + "=";
    if (line.rfind(prefix, 0) != 0)
        return false;
    out = line.substr(prefix.size());
    return true;
}

/** Process-wide cooperative stop flag (set from signal handlers). */
std::atomic<bool> worker_stop{false};

} // namespace

void
requestWorkerStop()
{
    worker_stop.store(true, std::memory_order_relaxed);
}

bool
workerStopRequested()
{
    return worker_stop.load(std::memory_order_relaxed);
}

void
clearWorkerStop()
{
    worker_stop.store(false, std::memory_order_relaxed);
}

std::string
distJobText(const DistJob& job)
{
    std::string out;
    out += "index=" + std::to_string(job.index) + "\n";
    out += "key=" + job.key + "\n";
    out += "label=" + job.label + "\n";
    out += "workload=" + job.workload + "\n";
    out += "scale=" + job.scale + "\n";
    out += "config=" + job.config + "\n";
    out += "sampling=" + job.sampling + "\n";
    out += "attempts=" + std::to_string(job.attempts) + "\n";
    out += "remote=" + std::string(job.remote ? "1" : "0") + "\n";
    return out;
}

bool
parseDistJob(const std::string& text, DistJob& out)
{
    std::istringstream is(text);
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(is, line))
        lines.push_back(line);
    if (lines.size() != 9)
        return false;

    DistJob job;
    std::string index_s, attempts_s, remote_s;
    if (!lineValue(lines[0], "index", index_s) ||
        !lineValue(lines[1], "key", job.key) ||
        !lineValue(lines[2], "label", job.label) ||
        !lineValue(lines[3], "workload", job.workload) ||
        !lineValue(lines[4], "scale", job.scale) ||
        !lineValue(lines[5], "config", job.config) ||
        !lineValue(lines[6], "sampling", job.sampling) ||
        !lineValue(lines[7], "attempts", attempts_s) ||
        !lineValue(lines[8], "remote", remote_s))
        return false;
    char* end = nullptr;
    job.index = std::strtoull(index_s.c_str(), &end, 10);
    if (!end || *end != '\0' || index_s.empty())
        return false;
    job.attempts =
        static_cast<unsigned>(std::strtoul(attempts_s.c_str(), &end, 10));
    if (!end || *end != '\0' || attempts_s.empty())
        return false;
    if (remote_s != "0" && remote_s != "1")
        return false;
    job.remote = remote_s == "1";
    if (job.key.size() != 16)
        return false;
    out = std::move(job);
    return true;
}

bool
rebuildJob(const DistJob& dist, Job& out)
{
    if (!dist.remote)
        return false;
    Job job;
    job.index = dist.index;
    job.label = dist.label;
    job.workload = dist.workload;
    job.scale = dist.scale;
    if (!parseConfigCanonical(dist.config, job.config))
        return false;
    // The strict inverse parse applies to the sampling schedule too:
    // text this binary cannot reproduce canonically is refused, not
    // half-applied.
    if (!parseSamplingCanonical(dist.sampling, job.sampling))
        return false;
    const std::string name = dist.workload;
    const std::string scale = dist.scale;
    if (!makeWorkloadScaled(name, scale))
        return false;
    job.make = [name, scale] {
        return makeWorkloadScaled(name, scale);
    };
    // The recomputed content key must equal the orchestrator's: a
    // mismatch means this binary's salt, SystemConfig layout, or key
    // scheme diverged, and running the job would publish
    // wrong-version numbers under a stale key.
    if (jobKey(job) != dist.key)
        return false;
    out = std::move(job);
    return true;
}

std::string
formatDistStatus(const DistStatus& s)
{
    std::ostringstream os;
    os << "total " << s.total << ": " << s.pending << " pending, "
       << s.claimed << " claimed, " << s.done << " done, " << s.failed
       << " failed, " << s.quarantined << " quarantined"
       << (s.complete() ? " [complete]" : "");
    return os.str();
}

// ---------------------------------------------------------------------
// JobsDir
// ---------------------------------------------------------------------

JobsDir::JobsDir(DistOptions options) : opts(std::move(options))
{
    if (opts.jobs_dir.empty())
        fatal("jobs dir: empty directory path");
    while (opts.jobs_dir.size() > 1 && opts.jobs_dir.back() == '/')
        opts.jobs_dir.pop_back();
    if (opts.max_attempts == 0)
        opts.max_attempts = 1;
    worker_id = opts.worker_id.empty()
                    ? hostName() + "-" + std::to_string(::getpid())
                    : opts.worker_id;
}

JobsDir::~JobsDir()
{
    {
        std::lock_guard<std::mutex> lock(hb_mutex);
        hb_stop = true;
    }
    hb_cv.notify_all();
    if (hb_thread.joinable())
        hb_thread.join();
}

std::string
JobsDir::jobName(std::size_t index)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "job-%06zu", index);
    return buf;
}

void
JobsDir::materialize(const std::vector<Job>& jobs)
{
    makeDirs(pendingDir());
    makeDirs(claimedDir());
    makeDirs(leaseDir());
    makeDirs(doneDir());
    makeDirs(failedDir());
    makeDirs(quarantineDir());

    const std::string grid = gridFingerprint(jobs);
    const DistStatus existing = manifest();
    if (existing.total > 0) {
        std::string text;
        readFile(manifestPath(), text);
        if (text.find("grid=" + grid + "\n") == std::string::npos)
            fatal("jobs dir '%s' holds a different sweep (manifest "
                  "grid mismatch); use a fresh directory per grid",
                  opts.jobs_dir.c_str());
    }

    std::size_t created = 0;
    for (const auto& job : jobs) {
        const std::string name = jobName(job.index);
        const std::string file = name + ".job";
        // Resume-safe: a job already in any state is left alone.
        if (fileExists(pendingDir() + "/" + file) ||
            fileExists(claimedDir() + "/" + file) ||
            fileExists(doneDir() + "/" + name + ".json") ||
            fileExists(failedDir() + "/" + name + ".json") ||
            fileExists(quarantineDir() + "/" + file))
            continue;
        DistJob dist;
        dist.index = job.index;
        dist.key = jobKey(job);
        dist.label = job.label;
        dist.workload = job.workload;
        dist.scale = job.scale;
        dist.config = configCanonical(job.config);
        dist.sampling = samplingCanonical(job.sampling);
        dist.attempts = 0;
        // Spec-less workers can only run jobs they can rebuild from
        // the file: standard-scale library workloads with no custom
        // executor. Everything else stays local to processes holding
        // the in-memory Job.
        dist.remote = !job.exec &&
                      makeWorkloadScaled(job.workload,
                                         job.scale) != nullptr;
        atomicWriteFile(pendingDir() + "/" + file, distJobText(dist));
        ++created;
    }

    // The manifest is written last: its presence tells workers the
    // pending/ population is complete and names the grid they must
    // match.
    std::string text;
    text += "version=" + std::string(kDistProtocolVersion) + "\n";
    text += "salt=" + std::string(kSimulatorSalt) + "\n";
    text += "total=" + std::to_string(jobs.size()) + "\n";
    text += "grid=" + grid + "\n";
    atomicWriteFile(manifestPath(), text);
    if (created > 0)
        inform("jobs dir %s: materialized %zu of %zu jobs",
               opts.jobs_dir.c_str(), created, jobs.size());
}

void
JobsDir::appendPoolJobs(const std::vector<DistJob>& jobs,
                        std::size_t pool_total)
{
    makeDirs(pendingDir());
    makeDirs(claimedDir());
    makeDirs(leaseDir());
    makeDirs(doneDir());
    makeDirs(failedDir());
    makeDirs(quarantineDir());
    makeDirs(poolDir());

    for (const auto& dist : jobs) {
        const std::string name = jobName(dist.index);
        const std::string file = name + ".job";
        // Authoritative pool copy first: result files carry no job
        // key, so pool/ is the durable index -> key map a restarted
        // daemon rebuilds its in-memory pool from.
        if (!fileExists(poolDir() + "/" + file))
            atomicWriteFile(poolDir() + "/" + file,
                            distJobText(dist));
        // Resume-safe exactly like materialize(): a job already in
        // any protocol state is left alone.
        if (fileExists(pendingDir() + "/" + file) ||
            fileExists(claimedDir() + "/" + file) ||
            fileExists(doneDir() + "/" + name + ".json") ||
            fileExists(failedDir() + "/" + name + ".json") ||
            fileExists(quarantineDir() + "/" + file))
            continue;
        atomicWriteFile(pendingDir() + "/" + file, distJobText(dist));
    }

    // A pool manifest carries the running pool size and the sentinel
    // grid "pool": workers join on version+salt alone, while a batch
    // orchestrator's materialize() refuses the directory (no batch
    // grid ever fingerprints to "pool").
    std::string text;
    text += "version=" + std::string(kDistProtocolVersion) + "\n";
    text += "salt=" + std::string(kSimulatorSalt) + "\n";
    text += "total=" + std::to_string(pool_total) + "\n";
    text += "grid=pool\n";
    text += "mode=pool\n";
    atomicWriteFile(manifestPath(), text);
}

bool
JobsDir::readManifestInfo(ManifestInfo& out) const
{
    std::string text;
    if (!readFile(manifestPath(), text))
        return false;
    ManifestInfo info;
    info.mode = "sweep"; // pre-pool manifests carry no mode line
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        std::string v;
        if (lineValue(line, "version", v)) info.version = v;
        else if (lineValue(line, "salt", v)) info.salt = v;
        else if (lineValue(line, "total", v))
            info.total = std::strtoull(v.c_str(), nullptr, 10);
        else if (lineValue(line, "grid", v)) info.grid = v;
        else if (lineValue(line, "mode", v)) info.mode = v;
    }
    out = std::move(info);
    return true;
}

DistStatus
JobsDir::manifest() const
{
    DistStatus s;
    ManifestInfo info;
    if (!readManifestInfo(info))
        return s;
    if (info.version != kDistProtocolVersion) {
        if (!info.version.empty())
            warn("jobs dir %s: protocol '%s' != '%s'; ignoring "
                 "manifest", opts.jobs_dir.c_str(),
                 info.version.c_str(), kDistProtocolVersion);
        return s;
    }
    if (info.salt != kSimulatorSalt) {
        warn("jobs dir %s: simulator salt '%s' != this binary's "
             "'%s'; ignoring manifest", opts.jobs_dir.c_str(),
             info.salt.c_str(), kSimulatorSalt);
        return s;
    }
    s.total = info.total;
    return s;
}

DistStatus
JobsDir::status() const
{
    DistStatus s = manifest();
    s.pending = countFinal(pendingDir());
    s.claimed = countFinal(claimedDir());
    s.done = countFinal(doneDir());
    s.failed = countFinal(failedDir());
    s.quarantined = 0;
    for (const auto& name : listDir(quarantineDir()))
        s.quarantined += !isTmpName(name);
    return s;
}

bool
JobsDir::stopRequested() const
{
    return fileExists(stopPath());
}

void
JobsDir::requestStop()
{
    makeDirs(opts.jobs_dir);
    atomicWriteFile(stopPath(), "stop\n");
}

void
JobsDir::clearStop()
{
    removeFile(stopPath());
}

void
JobsDir::writeLease(const std::string& name)
{
    std::uint64_t seq = 0;
    {
        std::lock_guard<std::mutex> lock(hb_mutex);
        seq = held[name];
    }
    // A plain overwrite: lease readers only watch for *change*, so a
    // torn read at worst resets their staleness timer.
    std::ofstream out(leaseDir() + "/" + name + ".lease",
                      std::ios::trunc);
    out << worker_id << " " << seq << "\n";
}

void
JobsDir::startHeartbeat()
{
    if (hb_thread.joinable())
        return;
    hb_thread = std::thread([this] { heartbeatLoop(); });
}

void
JobsDir::heartbeatLoop()
{
    std::unique_lock<std::mutex> lock(hb_mutex);
    while (!hb_stop) {
        hb_cv.wait_for(
            lock, std::chrono::duration<double>(opts.heartbeat_s));
        if (hb_stop)
            return;
        std::vector<std::string> names;
        for (auto& [name, seq] : held) {
            ++seq;
            names.push_back(name);
        }
        lock.unlock();
        for (const auto& name : names)
            writeLease(name);
        lock.lock();
    }
}

bool
JobsDir::claimNext(DistJob& out, const std::vector<std::string>& skip)
{
    std::vector<std::string> names = listDir(pendingDir());
    // Start the scan at a per-worker offset so a fleet does not
    // stampede the same claim file.
    if (names.size() > 1) {
        const std::size_t offset =
            fnv1a64(worker_id) % names.size();
        std::rotate(names.begin(), names.begin() + offset,
                    names.end());
    }
    for (const auto& file : names) {
        if (isTmpName(file))
            continue;
        if (std::find(skip.begin(), skip.end(), file) != skip.end())
            continue;
        const std::string from = pendingDir() + "/" + file;
        const std::string to = claimedDir() + "/" + file;
        if (!renameFile(from, to))
            continue; // lost the race; try the next one
        std::string text;
        DistJob dist;
        if (!readFile(to, text) || !parseDistJob(text, dist)) {
            // Unreadable claim file: quarantine it rather than loop.
            warn("jobs dir: quarantining unparseable job file '%s'",
                 file.c_str());
            renameFile(to, quarantineDir() + "/" + file);
            continue;
        }
        const std::string name = jobName(dist.index);
        if (fileExists(doneDir() + "/" + name + ".json") ||
            fileExists(failedDir() + "/" + name + ".json")) {
            // A slow twin already published this job (reclaim race);
            // drop the duplicate claim.
            removeFile(to);
            continue;
        }
        {
            std::lock_guard<std::mutex> lock(hb_mutex);
            held[name] = 0;
        }
        writeLease(name);
        startHeartbeat();
        out = std::move(dist);
        return true;
    }
    return false;
}

void
JobsDir::releaseClaim(const std::string& name)
{
    {
        std::lock_guard<std::mutex> lock(hb_mutex);
        held.erase(name);
    }
    removeFile(leaseDir() + "/" + name + ".lease");
}

void
JobsDir::publishResult(const DistJob& job, const JobResult& r)
{
    const std::string name = jobName(job.index);
    const std::string dir =
        r.status == JobStatus::Ok ? doneDir() : failedDir();
    // Result first, release after: a crash in between leaves a
    // published result plus a stale claim, which reclaim recognizes
    // and cleans up without re-running the job.
    atomicWriteFile(dir + "/" + name + ".json",
                    resultToJson(r, /*include_host_time=*/true) + "\n");
    removeFile(claimedDir() + "/" + name + ".job");
    releaseClaim(name);
}

void
JobsDir::abandonClaim(const DistJob& job)
{
    const std::string name = jobName(job.index);
    renameFile(claimedDir() + "/" + name + ".job",
               pendingDir() + "/" + name + ".job");
    releaseClaim(name);
}

bool
JobsDir::observeStale(const std::string& path,
                      const std::string& content)
{
    const auto now = std::chrono::steady_clock::now();
    auto [it, inserted] = observed.try_emplace(
        path, Observation{content, now});
    if (inserted)
        return false; // first sighting starts the timer
    if (it->second.content != content) {
        it->second.content = content;
        it->second.first_seen = now;
        return false;
    }
    return std::chrono::duration<double>(now - it->second.first_seen)
               .count() >= opts.lease_timeout_s;
}

std::size_t
JobsDir::reclaimExpired()
{
    std::size_t transitions = 0;
    for (const auto& file : listDir(claimedDir())) {
        if (isTmpName(file))
            continue;
        const std::string claimed = claimedDir() + "/" + file;
        const std::string name =
            file.substr(0, file.find_last_of('.'));

        // A claim whose result is already on disk is just debris
        // from a worker that died after publishing.
        if (fileExists(doneDir() + "/" + name + ".json") ||
            fileExists(failedDir() + "/" + name + ".json")) {
            removeFile(claimed);
            removeFile(leaseDir() + "/" + name + ".lease");
            ++transitions;
            continue;
        }

        const std::string lease_path =
            leaseDir() + "/" + name + ".lease";
        std::string lease;
        readFile(lease_path, lease); // missing lease = "" content
        if (!observeStale(claimed, lease))
            continue;

        std::string text;
        DistJob dist;
        if (!readFile(claimed, text) || !parseDistJob(text, dist)) {
            warn("jobs dir: quarantining unparseable claimed job "
                 "'%s'", file.c_str());
            renameFile(claimed, quarantineDir() + "/" + file);
            removeFile(lease_path);
            observed.erase(claimed);
            ++transitions;
            continue;
        }
        dist.attempts += 1;
        // Rewrite-then-rename: if we die between the two, the bumped
        // claim file is still claimed and simply expires again.
        atomicWriteFile(claimed, distJobText(dist));
        if (dist.attempts >= opts.max_attempts) {
            if (renameFile(claimed, quarantineDir() + "/" + file)) {
                warn("jobs dir: quarantined %s after %u attempts "
                     "(last lease: %s)", name.c_str(), dist.attempts,
                     lease.empty() ? "<none>" : lease.c_str());
                ++transitions;
            }
        } else {
            if (renameFile(claimed, pendingDir() + "/" + file)) {
                inform("jobs dir: reclaimed %s (attempt %u, stale "
                       "lease: %s)", name.c_str(), dist.attempts,
                       lease.empty() ? "<none>" : lease.c_str());
                ++transitions;
            }
        }
        removeFile(lease_path);
        observed.erase(claimed);
    }
    return transitions;
}

std::size_t
JobsDir::quarantinePartials()
{
    std::size_t moved = 0;
    for (const std::string& dir : {doneDir(), failedDir()}) {
        for (const auto& file : listDir(dir)) {
            if (!isTmpName(file))
                continue;
            const std::string path = dir + "/" + file;
            std::error_code ec;
            const auto size = std::filesystem::file_size(path, ec);
            if (ec)
                continue; // completed (renamed away) under us
            if (!observeStale(path, "size=" + std::to_string(size)))
                continue;
            if (renameFile(path, quarantineDir() + "/" + file)) {
                warn("jobs dir: quarantined partial result file %s",
                     file.c_str());
                ++moved;
            }
            observed.erase(path);
        }
    }
    return moved;
}

std::vector<JobResult>
JobsDir::merge(const std::vector<Job>& jobs) const
{
    std::vector<JobResult> results(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const Job& job = jobs[i];
        JobResult& out = results[i];
        out.index = job.index;
        out.label = job.label;
        out.workload = job.workload;
        out.config = job.config;
        out.axes = job.axes;

        const std::string name = jobName(job.index);
        std::string text;
        if (readFile(doneDir() + "/" + name + ".json", text) ||
            readFile(failedDir() + "/" + name + ".json", text)) {
            JobResult parsed;
            if (parseResultJson(text, parsed)) {
                // Payload from the record, identity from the job —
                // the same split the result cache uses.
                adoptPayload(out, std::move(parsed));
                continue;
            }
            out.status = JobStatus::Failed;
            out.error = "unparseable result record for " + name;
            continue;
        }
        std::string quarantined;
        if (readFile(quarantineDir() + "/" + name + ".job",
                     quarantined)) {
            DistJob dist;
            const unsigned attempts =
                parseDistJob(quarantined, dist) ? dist.attempts : 0;
            out.status = JobStatus::Failed;
            out.error = "quarantined after " +
                        std::to_string(attempts) +
                        " attempts (crashed or hung workers)";
            continue;
        }
        // No terminal file: stays Skipped (identity only).
    }
    return results;
}

// ---------------------------------------------------------------------
// Worker loop
// ---------------------------------------------------------------------

WorkerReport
runDistWorker(const DistOptions& opts,
              const std::vector<Job>* local_jobs)
{
    JobsDir dir(opts);
    WorkerReport report;

    // Wait for the orchestrator's manifest (workers may be started
    // first, e.g. across a fleet of hosts).
    const auto join_start = std::chrono::steady_clock::now();
    while (dir.manifest().total == 0) {
        if (dir.stopRequested() || workerStopRequested()) {
            report.stopped = true;
            return report;
        }
        if (std::chrono::duration<double>(
                std::chrono::steady_clock::now() - join_start)
                .count() > dir.options().join_timeout_s) {
            warn("worker %s: no manifest in %s after %.0fs; giving "
                 "up", dir.workerId().c_str(),
                 dir.options().jobs_dir.c_str(),
                 dir.options().join_timeout_s);
            report.joined = false;
            return report;
        }
        sleepFor(dir.options().poll_s);
    }

    std::vector<std::string> unrebuildable;
    std::mutex progress_mutex;
    std::size_t local_done = 0;
    auto last_claim = std::chrono::steady_clock::now();

    while (true) {
        if (dir.stopRequested() || workerStopRequested()) {
            report.stopped = true;
            return report;
        }
        report.reclaimed += dir.reclaimExpired();
        report.quarantined += dir.quarantinePartials();

        DistJob dist;
        if (!dir.claimNext(dist, unrebuildable)) {
            if (!opts.persistent) {
                const DistStatus s = dir.status();
                if (s.complete())
                    return report;
                if (s.claimed == 0 && !unrebuildable.empty() &&
                    s.pending <= unrebuildable.size()) {
                    // Everything left is refused by this worker;
                    // leave it for a compatible one.
                    warn("worker %s: %zu job(s) not rebuildable by "
                         "this binary; exiting",
                         dir.workerId().c_str(),
                         unrebuildable.size());
                    return report;
                }
            }
            if (opts.idle_exit_s > 0 &&
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - last_claim)
                        .count() >= opts.idle_exit_s) {
                report.idled = true;
                return report;
            }
            sleepFor(dir.options().poll_s);
            continue;
        }
        last_claim = std::chrono::steady_clock::now();

        // Resolve the claim to a runnable Job: in-memory first
        // (orchestrator lanes and bench harnesses hold the real
        // factories), file-rebuilt otherwise.
        Job job;
        bool runnable = false;
        if (local_jobs && dist.index < local_jobs->size() &&
            jobKey((*local_jobs)[dist.index]) == dist.key) {
            job = (*local_jobs)[dist.index];
            runnable = true;
        } else if (rebuildJob(dist, job)) {
            runnable = true;
        }
        if (!runnable) {
            ++report.unrebuildable;
            unrebuildable.push_back(JobsDir::jobName(dist.index) +
                                    ".job");
            dir.abandonClaim(dist);
            continue;
        }

        JobResult r;
        runJob(job, r, dir.options().sim_threads,
               dir.options().checkpoint_dir);
        ++report.executed;
        dir.publishResult(dist, r);
        if (dir.options().progress) {
            std::lock_guard<std::mutex> lock(progress_mutex);
            dir.options().progress(r, ++local_done, 0);
        }
    }
}

// ---------------------------------------------------------------------
// Orchestrator
// ---------------------------------------------------------------------

std::vector<JobResult>
runDistributed(const std::vector<Job>& jobs, const DistOptions& opts,
               ResultCache* cache)
{
    std::vector<JobResult> results(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        results[i].index = jobs[i].index;
        results[i].label = jobs[i].label;
        results[i].workload = jobs[i].workload;
        results[i].config = jobs[i].config;
        results[i].axes = jobs[i].axes;
    }
    if (jobs.empty())
        return results;

    // Cache pass first, exactly like the thread-pool Runner: only
    // misses are materialized into claim files.
    std::vector<std::size_t> pending;
    pending.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (cache && cache->lookup(jobs[i], results[i]))
            continue;
        pending.push_back(i);
    }
    if (pending.empty())
        return results; // fully cached: never touch the jobs dir
    std::vector<Job> work;
    work.reserve(pending.size());
    for (const std::size_t i : pending) {
        work.push_back(jobs[i]);
        work.back().index = work.size() - 1;
    }
    // Job files carry the *work-list* index so a resumed orchestrator
    // with the same cache state maps names identically.

    JobsDir coordinator(opts);
    coordinator.clearStop();
    coordinator.materialize(work);

    // In-process lanes: the orchestrator is itself a worker fleet of
    // size opts.lanes, so a run with no external workers degrades to
    // a plain multi-threaded sweep over the same protocol.
    std::vector<std::thread> lanes;
    for (unsigned lane = 0; lane < opts.lanes; ++lane) {
        DistOptions lane_opts = opts;
        lane_opts.worker_id = coordinator.workerId() + "-lane" +
                              std::to_string(lane);
        lanes.emplace_back([lane_opts, &work] {
            runDistWorker(lane_opts, &work);
        });
    }

    // Coordinator wait loop: reclaim expired leases and quarantine
    // partial files until every job is terminal. The lanes do the
    // same from inside their claim loops; this loop matters when
    // lanes == 0 or when external workers crash after the local
    // lanes have finished their share.
    while (!coordinator.status().complete()) {
        coordinator.reclaimExpired();
        coordinator.quarantinePartials();
        sleepFor(opts.poll_s);
    }
    coordinator.requestStop(); // let external workers exit promptly
    for (auto& lane : lanes)
        lane.join();

    // Merge the terminal records back into sweep order and persist
    // fresh verified-Ok results, so a later single-host run replays
    // the distributed results byte for byte from the cache.
    const std::vector<JobResult> merged = coordinator.merge(work);
    for (std::size_t w = 0; w < pending.size(); ++w) {
        const std::size_t i = pending[w];
        results[i] = merged[w];
        results[i].index = jobs[i].index;
        if (cache)
            cache->store(jobs[i], results[i]);
    }
    return results;
}

} // namespace eve::exp
