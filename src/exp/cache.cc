#include "exp/cache.hh"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "common/bits.hh"
#include "common/fs.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "driver/system.hh"
#include "exp/sink.hh"

namespace eve::exp
{

std::string
jobKeyMaterial(const Job& job, const std::string& salt)
{
    std::string material = configCanonical(job.config) +
                           "|workload=" + job.workload +
                           "|scale=" + job.scale + "|salt=" + salt;
    // Non-standard executions (Job::exec) append their variant tag;
    // the default empty variant leaves the material — and therefore
    // every previously stored key — unchanged.
    if (!job.variant.empty())
        material += "|variant=" + job.variant;
    // Sampled jobs likewise append their schedule: a sampled result
    // must never be served for an exact job (or vice versa, or for a
    // differently-sampled one), while exact jobs keep their
    // historical keys.
    if (job.sampling.enabled())
        material += "|sampling=" + samplingCanonical(job.sampling);
    return material;
}

std::string
jobKey(const Job& job, const std::string& salt)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(
                      fnv1a64(jobKeyMaterial(job, salt))));
    return buf;
}

namespace
{

bool
statusFromName(const std::string& name, JobStatus& out)
{
    if (name == "ok") out = JobStatus::Ok;
    else if (name == "mismatch") out = JobStatus::Mismatch;
    else if (name == "failed") out = JobStatus::Failed;
    else if (name == "skipped") out = JobStatus::Skipped;
    else if (name == "cached") out = JobStatus::Cached;
    else return false;
    return true;
}

double
numberField(const JsonValue& obj, const char* key, double fallback = 0)
{
    return jsonNumberField(obj, key, fallback);
}

} // namespace

bool
parseResultJson(const std::string& json, JobResult& out)
{
    JsonValue root;
    if (!parseJson(json, root) || !root.isObject())
        return false;
    const JsonValue* status = root.find("status");
    if (!status || status->type != JsonValue::Type::String)
        return false;

    JobResult r;
    if (!statusFromName(status->text, r.status))
        return false;
    r.index = std::size_t(numberField(root, "index"));
    if (const JsonValue* v = root.find("label");
        v && v->type == JsonValue::Type::String)
        r.label = v->text;
    if (const JsonValue* v = root.find("system");
        v && v->type == JsonValue::Type::String)
        r.result.system = v->text;
    if (const JsonValue* v = root.find("workload");
        v && v->type == JsonValue::Type::String) {
        r.workload = v->text;
        r.result.workload = v->text;
    }
    if (const JsonValue* v = root.find("axes");
        v && v->type == JsonValue::Type::Object) {
        for (const auto& [name, value] : v->members) {
            if (value.type != JsonValue::Type::String)
                return false;
            r.axes.emplace_back(name, value.text);
        }
    }
    if (const JsonValue* v = root.find("error");
        v && v->type == JsonValue::Type::String)
        r.error = v->text;
    r.wall_seconds = numberField(root, "wall_s");

    RunResult& res = r.result;
    res.cycles = numberField(root, "cycles");
    res.seconds = numberField(root, "seconds");
    res.total_ticks = numberField(root, "total_ticks");
    res.instrs = std::uint64_t(numberField(root, "instrs"));
    res.mismatches = std::uint64_t(numberField(root, "mismatches"));
    res.vecInstrs = std::uint64_t(numberField(root, "vec_instrs"));
    res.vecElemOps =
        std::uint64_t(numberField(root, "vec_elem_ops"));
    if (const JsonValue* v = root.find("sampled");
        v && v->type == JsonValue::Type::Bool && v->boolean) {
        res.sampled = true;
        res.sample_windows =
            std::uint64_t(numberField(root, "sample_windows"));
        res.sampled_measured_instrs = std::uint64_t(
            numberField(root, "sampled_measured_instrs"));
        res.sampled_measured_ticks = std::uint64_t(
            numberField(root, "sampled_measured_ticks"));
    }
    if (const JsonValue* v = root.find("stats");
        v && v->type == JsonValue::Type::Object) {
        for (const auto& [name, value] : v->members) {
            if (value.type != JsonValue::Type::Number)
                return false;
            res.stats[name] = value.number;
        }
    }
    if (const JsonValue* v = root.find("breakdown");
        v && v->type == JsonValue::Type::Object) {
        res.has_breakdown = true;
        EveBreakdown& b = res.breakdown;
        b.busy = numberField(*v, "busy");
        b.vru_stall = numberField(*v, "vru_stall");
        b.ld_mem_stall = numberField(*v, "ld_mem_stall");
        b.st_mem_stall = numberField(*v, "st_mem_stall");
        b.ld_dt_stall = numberField(*v, "ld_dt_stall");
        b.st_dt_stall = numberField(*v, "st_dt_stall");
        b.vmu_stall = numberField(*v, "vmu_stall");
        b.empty_stall = numberField(*v, "empty_stall");
        b.dep_stall = numberField(*v, "dep_stall");
        res.vmu_cache_stall_ticks =
            numberField(root, "vmu_cache_stall_ticks");
    }
    out = std::move(r);
    return true;
}

ResultCache::ResultCache(std::string dir_path, std::string salt_tag)
    : dir(std::move(dir_path)), salt(std::move(salt_tag))
{
    if (dir.empty())
        fatal("result cache: empty directory path");
    while (dir.size() > 1 && dir.back() == '/')
        dir.pop_back();
}

std::string
ResultCache::filePath() const
{
    return dir + "/cache.jsonl";
}

std::size_t
ResultCache::load()
{
    std::ifstream in(filePath());
    if (!in)
        return 0; // no artifact yet: an empty cache
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        // {"key":"<16 hex>","record":{...}}
        static const std::string kKeyPrefix = "{\"key\":\"";
        static const std::string kRecordPrefix = "\",\"record\":";
        bool ok = line.rfind(kKeyPrefix, 0) == 0 && line.back() == '}';
        std::string key, record;
        if (ok) {
            const std::size_t key_end =
                line.find('"', kKeyPrefix.size());
            ok = key_end != std::string::npos &&
                 line.compare(key_end, kRecordPrefix.size(),
                              kRecordPrefix) == 0;
            if (ok) {
                key = line.substr(kKeyPrefix.size(),
                                  key_end - kKeyPrefix.size());
                const std::size_t rec_begin =
                    key_end + kRecordPrefix.size();
                record = line.substr(rec_begin,
                                     line.size() - rec_begin - 1);
                JobResult parsed;
                ok = key.size() == 16 &&
                     parseResultJson(record, parsed) &&
                     parsed.status == JobStatus::Ok;
            }
        }
        if (!ok) {
            warn("result cache %s:%zu: skipping unparseable entry",
                 filePath().c_str(), line_no);
            continue;
        }
        entries[key] = std::move(record); // later entries win
    }
    return entries.size();
}

bool
ResultCache::lookup(const Job& job, JobResult& out) const
{
    out.index = job.index;
    out.label = job.label;
    out.workload = job.workload;
    out.config = job.config;
    out.axes = job.axes;

    const auto it = entries.find(jobKey(job, salt));
    if (it == entries.end())
        return false;
    JobResult restored;
    if (!parseResultJson(it->second, restored) ||
        restored.status != JobStatus::Ok)
        return false; // treat a corrupt record as a miss
    // Payload from the record, identity from the live job (an edited
    // sweep may have shifted indices or renamed axis labels).
    adoptPayload(out, std::move(restored));
    out.status = JobStatus::Cached;
    out.error.clear();
    return true;
}

const std::string*
ResultCache::recordText(const std::string& key) const
{
    const auto it = entries.find(key);
    return it == entries.end() ? nullptr : &it->second;
}

void
ResultCache::store(const Job& job, const JobResult& r)
{
    if (!eligible(r))
        return;
    const std::string key = jobKey(job, salt);
    if (entries.count(key))
        return;
    append(key, resultToJson(r, /*include_host_time=*/true));
}

bool
ResultCache::storeRecord(const std::string& key,
                         const std::string& record)
{
    JobResult parsed;
    if (key.size() != 16 || !parseResultJson(record, parsed) ||
        parsed.status != JobStatus::Ok)
        return false; // only verified-Ok records may enter the cache
    if (entries.count(key))
        return false;
    append(key, record);
    return true;
}

void
ResultCache::append(const std::string& key, std::string record)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        fatal("result cache: cannot create '%s': %s", dir.c_str(),
              ec.message().c_str());
    const std::string line =
        "{\"key\":\"" + key + "\",\"record\":" + record + "}\n";
    {
        // Serialize appends across processes (an orchestrator and a
        // bench sharing EVE_EXP_CACHE_DIR): one flock'd single write
        // per entry, so lines never interleave.
        FileLock lock(dir + "/cache.lock");
        std::ofstream out(filePath(), std::ios::app);
        if (!out)
            fatal("result cache: cannot open '%s' for append",
                  filePath().c_str());
        out << line;
        out.flush();
        if (!out)
            fatal("result cache: write to '%s' failed",
                  filePath().c_str());
    }
    entries[key] = std::move(record);
    ++stored_count;
}

} // namespace eve::exp
