/**
 * @file
 * Distributed sweep execution over a shared-directory job-file
 * protocol.
 *
 * An orchestrator materializes a sweep's jobs into one *claim file*
 * each under a jobs directory (local disk for multi-process runs, a
 * shared NFS export for multi-host runs). Worker processes — the
 * same `eve_sweep` binary started with `--worker --jobs-dir DIR` —
 * claim jobs by atomically rename(2)-ing the claim file, renew a
 * lease file while simulating, and publish results through
 * fsync-and-rename, so every protocol transition is a single atomic
 * filesystem operation and a reader can never observe a torn state.
 *
 * Directory layout (all under the jobs dir):
 *
 *   manifest.txt        protocol version, salt, job count, grid hash;
 *                       written last, so its presence means the
 *                       materialization is complete
 *   pending/job-N.job   unclaimed jobs (key=value lines)
 *   claimed/job-N.job   claimed jobs (renamed from pending/)
 *   leases/job-N.lease  heartbeat: "<worker-id> <seq>", rewritten
 *                       every heartbeat period while the job runs
 *   done/job-N.json     verified-Ok result records (resultToJson)
 *   failed/job-N.json   deterministic failures (threw / mismatched)
 *   quarantine/         jobs that exhausted their retry budget, and
 *                       partial `*.tmp` result files left by writers
 *                       that died mid-write
 *   stop                drop this file to make every worker exit
 *
 * Job state machine:
 *
 *   pending --claim (rename)--> claimed --lease renewed--> leased
 *   leased --Ok/Mismatch/Failed result--> done | failed   (terminal)
 *   leased --lease expires--> pending (attempts+1)
 *   leased --lease expires, attempts >= max--> quarantined (terminal)
 *
 * Crash safety and liveness:
 *
 *  - Claims are exclusive because rename(2) of one source succeeds in
 *    exactly one racing process (the loser sees ENOENT).
 *  - Lease freshness is judged *content-locally*: every observer
 *    tracks each lease's content and its own monotonic clock, and
 *    declares expiry only after the content has not changed for the
 *    lease timeout. No cross-host clock comparison is involved, so
 *    clock skew between NFS clients cannot cause false reclaims.
 *  - A worker that dies between publishing its result and releasing
 *    its claim is detected by reclaim (result file already present)
 *    and merely cleaned up, not re-run.
 *  - A hung worker whose job was reclaimed and re-run elsewhere may
 *    eventually publish a duplicate result; both records carry the
 *    identical deterministic payload and the terminal rename just
 *    replaces one with the other. Execution is at-least-once; the
 *    merged result set is exactly-once (one record per job index).
 *  - Every job file carries the job's content key (exp/cache.hh). A
 *    worker rebuilds the job from the file alone and recomputes the
 *    key; a mismatch (diverged binary, different simulator salt)
 *    makes the worker leave the job for someone else rather than
 *    publish wrong-version numbers.
 *
 * The orchestrator degrades gracefully to a single-process run: by
 * default it executes jobs through its own in-process lanes (thread
 * count = --threads), so external workers are an accelerant, never a
 * requirement.
 */

#ifndef EVE_EXP_DIST_HH
#define EVE_EXP_DIST_HH

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exp/runner.hh"
#include "exp/sweep.hh"

namespace eve::exp
{

/**
 * Bumped whenever the on-disk protocol changes incompatibly.
 * v2: job files carry a sampling= line (interval-sampled sweeps) and
 * scale may be "paper" — v1 binaries would quarantine the job files
 * one by one, so the manifest version stops them up front instead.
 */
inline constexpr const char* kDistProtocolVersion = "eve-dist-v2";

class ResultCache;

/** Tunables shared by the orchestrator and worker entry points. */
struct DistOptions
{
    std::string jobs_dir;

    /** Stable identity written into leases ("" = "<host>-<pid>"). */
    std::string worker_id;

    /** Seconds a lease may stay unrenewed before reclaim. */
    double lease_timeout_s = 60;

    /** Lease renewal period while a job runs. */
    double heartbeat_s = 2;

    /** Idle rescan period (claim loop and orchestrator wait). */
    double poll_s = 0.25;

    /** Worker: seconds to wait for the manifest to appear. */
    double join_timeout_s = 600;

    /** Claims per job before it is quarantined (>= 1). */
    unsigned max_attempts = 3;

    /**
     * Persistent (service-pool) worker: never exit because the
     * directory looks complete — a pool grows as new sweeps are
     * submitted, so "complete" is a momentary state, not the end.
     * Such a worker exits only on the stop marker, the cooperative
     * stop flag (requestWorkerStop), or @ref idle_exit_s.
     */
    bool persistent = false;

    /**
     * Self-retirement: exit after this long without a successful
     * claim (0 = never). The sweep service's elastic scale-down is
     * exactly this — idle workers retire themselves, and the daemon
     * spawns replacements when queue depth grows again.
     */
    double idle_exit_s = 0;

    /**
     * Orchestrator-side in-process execution lanes. 0 = coordinate
     * only (reclaim, wait, merge) and execute nothing locally.
     */
    unsigned lanes = 1;

    /**
     * Threads pipelining each locally-executed simulation; <= 1 runs
     * inline. Timing-parity guarded, so a pure wall-clock knob.
     */
    unsigned sim_threads = 1;

    /**
     * Directory for functional-state checkpoints ("" = none),
     * used by locally-executed sampled jobs (see RunnerOptions).
     */
    std::string checkpoint_dir;

    /** Per locally-executed job; serialized. done/total are counts
     *  of *locally* executed jobs, not sweep-wide state. */
    ProgressFn progress;
};

/** One job-file record (the on-disk form of a claimable job). */
struct DistJob
{
    std::size_t index = 0;
    std::string key;      ///< jobKey under kSimulatorSalt
    std::string label;
    std::string workload; ///< workload name (makeWorkload)
    std::string scale;    ///< "small" / "full" / custom tag
    std::string config;   ///< configCanonical text

    /** samplingCanonical text; "" = exact simulation. */
    std::string sampling;

    unsigned attempts = 0;
    bool remote = false;  ///< rebuildable by spec-less workers
};

/** Serialize @p job as key=value lines. */
std::string distJobText(const DistJob& job);

/** Parse distJobText() output; false on malformed input. */
bool parseDistJob(const std::string& text, DistJob& out);

/**
 * Rebuild a runnable Job from a job file alone: parse the canonical
 * config, recreate the workload factory via makeWorkload, and verify
 * that the rebuilt job's content key equals the recorded one (which
 * fails when the binary's simulator salt, SystemConfig layout, or
 * key scheme diverged from the orchestrator's). Returns false for
 * local-only jobs (@ref DistJob::remote unset) and on any mismatch.
 */
bool rebuildJob(const DistJob& dist, Job& out);

/** Aggregate state of a jobs directory. */
struct DistStatus
{
    std::size_t total = 0;       ///< manifest job count (0 = none yet)
    std::size_t pending = 0;
    std::size_t claimed = 0;
    std::size_t done = 0;
    std::size_t failed = 0;
    std::size_t quarantined = 0; ///< quarantined jobs (not tmp files)

    bool
    complete() const
    {
        return total > 0 && done + failed + quarantined >= total;
    }
};

/** One-line human-readable rendering of @p s. */
std::string formatDistStatus(const DistStatus& s);

/** The manifest's raw identification fields, for skew diagnosis. */
struct ManifestInfo
{
    std::string version; ///< protocol version the dir was built under
    std::string salt;    ///< simulator salt the dir was built under
    std::string grid;    ///< grid fingerprint, or "pool"
    std::string mode;    ///< "sweep" (batch) or "pool" (service)
    std::size_t total = 0;
};

/**
 * Cooperative process-wide stop for worker loops, settable from a
 * signal handler (a relaxed atomic store, async-signal-safe). A
 * worker that observes it finishes and publishes its in-flight job,
 * releases nothing mid-protocol, and returns with stopped=true —
 * Ctrl-C costs nothing instead of a lease timeout.
 */
void requestWorkerStop();
bool workerStopRequested();
void clearWorkerStop();

/**
 * Protocol handle over one jobs directory. Each concurrent actor
 * (worker process, orchestrator lane) uses its own JobsDir; a single
 * instance may hold several claims at once, and one background
 * heartbeat thread renews all of its leases.
 */
class JobsDir
{
  public:
    explicit JobsDir(DistOptions options);
    ~JobsDir();

    JobsDir(const JobsDir&) = delete;
    JobsDir& operator=(const JobsDir&) = delete;

    const DistOptions& options() const { return opts; }
    const std::string& workerId() const { return worker_id; }

    /**
     * Orchestrator: create the directory tree, write one pending
     * claim file per job not already present in any state (so a
     * re-run over a partially completed directory resumes instead of
     * duplicating), then write the manifest. Fatal if the directory
     * holds a different grid (mismatched manifest).
     */
    void materialize(const std::vector<Job>& jobs);

    /**
     * Service-pool materialization: append @p jobs (daemon-assigned
     * pool indices) to a *growing* multi-sweep pool. Each job gets an
     * authoritative copy under pool/ — the durable index -> key map a
     * restarted daemon recovers from — plus a pending/ claim file
     * unless it is already in some protocol state. The manifest is
     * rewritten with mode=pool and the running pool total; workers
     * join it exactly like a batch directory, but a batch
     * orchestrator's materialize() refuses it (grid mismatch).
     */
    void appendPoolJobs(const std::vector<DistJob>& jobs,
                        std::size_t pool_total);

    /** The manifest, parsed; total == 0 when absent/unreadable. */
    DistStatus manifest() const;

    /** Raw manifest fields; false when absent/unreadable. */
    bool readManifestInfo(ManifestInfo& out) const;

    /** Scan every state directory and count. */
    DistStatus status() const;

    /** True when the stop marker exists. */
    bool stopRequested() const;

    /** Drop / remove the stop marker telling workers to exit. */
    void requestStop();
    void clearStop();

    /**
     * Try to claim one pending job: atomically rename its claim file
     * into claimed/, write the first lease, and start heartbeating
     * it. Jobs named in @p skip are not attempted (a worker's own
     * unrebuildable set). Returns false when nothing was claimable.
     */
    bool claimNext(DistJob& out,
                   const std::vector<std::string>& skip = {});

    /**
     * Publish the result of a claimed job — done/ for verified-Ok,
     * failed/ for deterministic Mismatch/Failed — then release the
     * claim and stop its heartbeat.
     */
    void publishResult(const DistJob& job, const JobResult& r);

    /**
     * Give a claim back (rename claimed -> pending, without an
     * attempt bump) and stop its heartbeat. Used when a worker
     * cannot run a job it claimed (rebuild refused).
     */
    void abandonClaim(const DistJob& job);

    /**
     * Reclaim pass, callable from any process, any number of times:
     * claimed jobs whose lease content has not changed for the lease
     * timeout (on this observer's monotonic clock) go back to
     * pending with attempts+1, or to quarantine/ once attempts
     * reaches max_attempts; claims whose result was already
     * published are cleaned up. Returns the number of transitions.
     */
    std::size_t reclaimExpired();

    /**
     * Quarantine `*.tmp` result files that have not grown or changed
     * for the lease timeout — the leftovers of a result writer that
     * died mid-write. Returns the number quarantined.
     */
    std::size_t quarantinePartials();

    /**
     * Assemble index-ordered results for @p jobs from the terminal
     * directories: done/failed records are parsed back (payload from
     * the record, identity from the in-memory job), quarantined jobs
     * become Failed with a descriptive error, and jobs with no
     * terminal file stay Skipped.
     */
    std::vector<JobResult> merge(const std::vector<Job>& jobs) const;

    std::string pendingDir() const { return opts.jobs_dir + "/pending"; }
    std::string claimedDir() const { return opts.jobs_dir + "/claimed"; }
    std::string leaseDir() const { return opts.jobs_dir + "/leases"; }
    std::string doneDir() const { return opts.jobs_dir + "/done"; }
    std::string failedDir() const { return opts.jobs_dir + "/failed"; }
    std::string quarantineDir() const
    {
        return opts.jobs_dir + "/quarantine";
    }
    std::string poolDir() const { return opts.jobs_dir + "/pool"; }
    std::string manifestPath() const
    {
        return opts.jobs_dir + "/manifest.txt";
    }
    std::string stopPath() const { return opts.jobs_dir + "/stop"; }

    /** "job-000042" for index 42 (stable sort order to 10^6 jobs). */
    static std::string jobName(std::size_t index);

  private:
    struct Observation
    {
        std::string content;
        std::chrono::steady_clock::time_point first_seen;
    };

    void writeLease(const std::string& name);
    void releaseClaim(const std::string& name);
    void startHeartbeat();
    void heartbeatLoop();

    /** Stale-for-timeout check against this observer's clock. */
    bool observeStale(const std::string& path,
                      const std::string& content);

    DistOptions opts;
    std::string worker_id;

    std::mutex hb_mutex;
    std::condition_variable hb_cv;
    std::map<std::string, std::uint64_t> held; ///< lease name -> seq
    std::thread hb_thread;
    bool hb_stop = false;

    /** Lease/tmp-file content observations for staleness tracking. */
    std::map<std::string, Observation> observed;
};

/** What a worker loop did before returning. */
struct WorkerReport
{
    std::size_t executed = 0;     ///< jobs simulated locally
    std::size_t reclaimed = 0;    ///< lease-expiry transitions
    std::size_t quarantined = 0;  ///< partial files quarantined
    std::size_t unrebuildable = 0;///< claims refused (key mismatch…)
    bool stopped = false;         ///< exited on stop marker/flag
    bool idled = false;           ///< self-retired after idle_exit_s
    bool joined = true;           ///< manifest appeared in time
};

/**
 * The worker claim loop: wait for the manifest, then claim and
 * execute jobs until the sweep is complete (every job terminal) or
 * stop is requested, reclaiming expired leases and quarantining
 * partial files along the way. @p local_jobs, when given, maps job
 * indices to in-memory Jobs (orchestrator lanes; required for
 * local-only jobs) — otherwise jobs are rebuilt from their files.
 */
WorkerReport runDistWorker(const DistOptions& opts,
                           const std::vector<Job>* local_jobs = nullptr);

/**
 * Orchestrate @p jobs through @p opts.jobs_dir: serve cache hits
 * first (exactly like the thread-pool Runner), materialize the
 * misses, execute through opts.lanes in-process lanes alongside any
 * external workers, wait for completion (reclaiming as needed),
 * merge, and store fresh verified-Ok results into @p cache. Results
 * are index-ordered and — by the determinism of the simulator and
 * the byte-exact record round trip — carry payloads byte-identical
 * to a single-host run of the same sweep.
 */
std::vector<JobResult> runDistributed(const std::vector<Job>& jobs,
                                      const DistOptions& opts,
                                      ResultCache* cache = nullptr);

} // namespace eve::exp

#endif // EVE_EXP_DIST_HH
