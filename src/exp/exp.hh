/**
 * @file
 * Umbrella header for the experiment-runner subsystem, plus the
 * environment conventions shared by the bench harnesses and the
 * eve_sweep CLI:
 *
 *   EVE_EXP_THREADS    worker count (default: hardware concurrency)
 *   EVE_EXP_OUT_DIR    directory for JSONL/CSV artifacts (default ".")
 *   EVE_EXP_CACHE_DIR  result-cache directory (unset = caching off)
 *   EVE_EXP_JOBS_DIR   distributed-sweep jobs directory (unset =
 *                      in-process execution; see exp/dist.hh)
 *   EVE_EXP_SAMPLE     interval-sampling schedule for bench sweeps:
 *                      "default" or a --sample spec (unset = exact;
 *                      see sim/sampling.hh)
 *   EVE_EXP_CKPT_DIR   functional-checkpoint directory for sampled
 *                      runs (unset = no checkpoints)
 */

#ifndef EVE_EXP_EXP_HH
#define EVE_EXP_EXP_HH

#include <cstdlib>
#include <string>

#include "exp/cache.hh"
#include "exp/dist.hh"
#include "exp/runner.hh"
#include "exp/sink.hh"
#include "exp/sweep.hh"

namespace eve::exp
{

/** Worker count from EVE_EXP_THREADS (0 = hardware concurrency). */
inline unsigned
envThreads()
{
    const char* env = std::getenv("EVE_EXP_THREADS");
    if (!env || !env[0])
        return 0;
    const long n = std::strtol(env, nullptr, 10);
    return n > 0 ? static_cast<unsigned>(n) : 0;
}

/** Result-cache directory from EVE_EXP_CACHE_DIR ("" = off). */
inline std::string
envCacheDir()
{
    const char* env = std::getenv("EVE_EXP_CACHE_DIR");
    return (env && env[0]) ? env : "";
}

/** Distributed jobs directory from EVE_EXP_JOBS_DIR ("" = off). */
inline std::string
envJobsDir()
{
    const char* env = std::getenv("EVE_EXP_JOBS_DIR");
    return (env && env[0]) ? env : "";
}

/** Sampling spec text from EVE_EXP_SAMPLE ("" = exact). */
inline std::string
envSampling()
{
    const char* env = std::getenv("EVE_EXP_SAMPLE");
    return (env && env[0]) ? env : "";
}

/** Checkpoint directory from EVE_EXP_CKPT_DIR ("" = off). */
inline std::string
envCheckpointDir()
{
    const char* env = std::getenv("EVE_EXP_CKPT_DIR");
    return (env && env[0]) ? env : "";
}

/** "<EVE_EXP_OUT_DIR>/<name>" ("./<name>" by default). */
inline std::string
artifactPath(const std::string& name)
{
    const char* env = std::getenv("EVE_EXP_OUT_DIR");
    std::string dir = (env && env[0]) ? env : ".";
    if (dir.back() != '/')
        dir += '/';
    return dir + name;
}

} // namespace eve::exp

#endif // EVE_EXP_EXP_HH
