/**
 * @file
 * Result sinks: machine-readable serialization of sweep results.
 *
 * Two formats are provided:
 *  - JSON lines (one self-describing object per job) for downstream
 *    tooling; includes the flattened stats map and the EVE execution
 *    breakdown;
 *  - CSV with one column per core field, axis, and stat key (the
 *    union over all rows), for spreadsheet-style analysis.
 *
 * resultToJson() is deliberately split into the full record and a
 * timing-free payload: the payload contains only simulated
 * quantities, so two runs of the same sweep — at any thread count —
 * must produce byte-identical payloads (the determinism tests rely
 * on this).
 */

#ifndef EVE_EXP_SINK_HH
#define EVE_EXP_SINK_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/runner.hh"

namespace eve::exp
{

/**
 * One JSON object for @p r: system, workload, label, axes, status,
 * cycles, seconds, instrs, mismatches, the stats map, and the EVE
 * breakdown when present. @p include_host_time adds the host
 * wall-clock field ("wall_s"), which is *not* deterministic.
 */
std::string resultToJson(const JobResult& r,
                         bool include_host_time = true);

/** Streaming sink interface. */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;
    virtual void write(const JobResult& r) = 0;
};

/** Writes one JSON object per line to a stream. */
class JsonLinesSink : public ResultSink
{
  public:
    explicit JsonLinesSink(std::ostream& os) : os(os) {}
    void write(const JobResult& r) override;

  private:
    std::ostream& os;
};

/**
 * Buffers rows and renders a CSV whose stat columns are the union of
 * every row's stat keys (sorted). Call render() once at the end.
 */
class CsvSink : public ResultSink
{
  public:
    void write(const JobResult& r) override;

    /** Header + one line per written result. */
    std::string render() const;

  private:
    std::vector<JobResult> rows;
};

/**
 * Serialize @p results as JSON lines to @p path (fatal on I/O
 * error). The file is written whole via fsync-and-rename
 * (common/fs.hh), so a writer killed mid-flush leaves either the
 * previous artifact or the complete new one — never a torn final
 * line that could poison a resumed sweep. @p include_host_time=false
 * drops the nondeterministic "wall_s" field, making the artifact
 * byte-comparable across runs, thread counts, and hosts.
 */
void writeJsonLines(const std::vector<JobResult>& results,
                    const std::string& path,
                    bool include_host_time = true);

/**
 * Serialize @p results as CSV to @p path (fatal on I/O error).
 * Atomic like writeJsonLines().
 */
void writeCsv(const std::vector<JobResult>& results,
              const std::string& path);

} // namespace eve::exp

#endif // EVE_EXP_SINK_HH
