/**
 * @file
 * Declarative sweep specifications.
 *
 * A SweepSpec names the axes of an experiment grid — a list of base
 * system configurations, any number of named override axes (each a
 * list of labelled SystemConfig mutations), and a list of named
 * workload factories — and expands their cartesian product into a
 * deterministic, index-ordered list of Jobs for the Runner.
 *
 * Expansion order (fixed, so callers can index results directly):
 * base systems outermost, then each axis in the order it was added,
 * then workloads innermost (fastest varying).
 *
 * Existing ablations become one-liners via the override axes, e.g.
 *
 *     SweepSpec spec;
 *     spec.system(bench::makeConfig(SystemKind::O3EVE, 8))
 *         .axis<unsigned>("llc_mshrs", {8, 16, 32, 64, 128, 256},
 *                         [](SystemConfig& c, unsigned m) {
 *                             c.llc_mshrs = m;
 *                         })
 *         .workloads({"backprop", "k-means", "vvadd"}, small);
 */

#ifndef EVE_EXP_SWEEP_HH
#define EVE_EXP_SWEEP_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "driver/system.hh"
#include "workloads/workload.hh"

namespace eve::exp
{

/** Builds a fresh Workload instance for one job. */
using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

/** One labelled point on an override axis. */
struct AxisPoint
{
    std::string label;                        ///< e.g. "64"
    std::function<void(SystemConfig&)> apply; ///< config mutation
};

/** One named override axis (cartesian with every other axis). */
struct Axis
{
    std::string name;              ///< e.g. "llc_mshrs"
    std::vector<AxisPoint> points;
};

/** One (config, workload) cell of the expanded grid. */
struct Job
{
    std::size_t index = 0;    ///< position in the expansion order
    std::string label;        ///< "system/axis=point/.../workload"
    SystemConfig config;      ///< fully overridden configuration
    std::string workload;     ///< workload name
    std::string scale;        ///< input scale ("small"/"full"/custom)
    WorkloadFactory make;     ///< builds the job's workload

    /** (axis name, point label) in axis-declaration order. */
    std::vector<std::pair<std::string, std::string>> axes;

    /**
     * Optional custom executor replacing the standard
     * runWorkload(config, *make()) path — for jobs whose measurement
     * is not a single solo run (e.g. the CMP co-execution pairs).
     * Jobs with an executor are only ever run by a process holding
     * the in-memory Job (never rebuilt by spec-less remote workers),
     * and @ref variant must name the measurement so result-cache
     * keys stay distinct from the solo run of the same config.
     */
    std::function<RunResult(const SystemConfig&)> exec;

    /**
     * Extra content-key material for non-standard executions; empty
     * (the default, and mandatory when @ref exec is unset) leaves
     * the key identical to the pre-variant scheme, so existing
     * caches stay valid.
     */
    std::string variant;

    /**
     * Interval-sampling schedule for this job; disabled (exact
     * simulation) by default. An enabled schedule is folded into the
     * job's content key — sampled and exact results never share a
     * cache entry — and rides the distributed protocol, so remote
     * workers reproduce the identical sampled run.
     */
    SamplingConfig sampling;
};

/** Declarative cartesian sweep over configs, axes, and workloads. */
class SweepSpec
{
  public:
    /** Append one base system configuration. */
    SweepSpec& system(const SystemConfig& config);

    /** Append several base system configurations. */
    SweepSpec& systems(const std::vector<SystemConfig>& configs);

    /** Append a pre-labelled override axis. */
    SweepSpec& axis(Axis ax);

    /**
     * Numeric-axis convenience: one point per value, labelled with
     * std::to_string(value), applied through @p apply.
     */
    template <typename T>
    SweepSpec&
    axis(const std::string& name, const std::vector<T>& values,
         std::function<void(SystemConfig&, T)> apply)
    {
        Axis ax;
        ax.name = name;
        for (const T& value : values) {
            ax.points.push_back(
                {std::to_string(value),
                 [apply, value](SystemConfig& c) { apply(c, value); }});
        }
        return axis(std::move(ax));
    }

    /**
     * Append one named workload factory. @p scale is the input-scale
     * tag hashed into result-cache keys; factories with different
     * input sizes must use distinct tags.
     */
    SweepSpec& workload(const std::string& name, WorkloadFactory make,
                        std::string scale = "custom");

    /**
     * Append the named paper workloads via eve::makeWorkload.
     * Unknown names surface as failed jobs at run time.
     */
    SweepSpec& workloads(const std::vector<std::string>& names,
                         bool small);

    /**
     * Append the named workloads at a named reproducible scale
     * ("small", "full", or "paper") via eve::makeWorkloadScaled.
     */
    SweepSpec& workloads(const std::vector<std::string>& names,
                         const std::string& scale);

    /**
     * Sampling schedule stamped onto every expanded job (exact runs
     * when disabled, the default).
     */
    SweepSpec& sampling(const SamplingConfig& cfg);

    /**
     * Every base configuration with every axis override applied, in
     * expansion order (no workload dimension). Used by harnesses
     * that only need the configuration grid (e.g. Table III).
     */
    std::vector<SystemConfig> expandedSystems() const;

    /** Labels parallel to expandedSystems(). */
    std::vector<std::string> expandedSystemLabels() const;

    /** Expand the full cartesian product, indexed 0..N-1. */
    std::vector<Job> jobs() const;

    std::size_t systemCount() const;
    std::size_t workloadCount() const { return workload_list.size(); }

    /** Workload-axis names, in append order. */
    std::vector<std::string>
    workloadNames() const
    {
        std::vector<std::string> names;
        names.reserve(workload_list.size());
        for (const auto& w : workload_list)
            names.push_back(w.name);
        return names;
    }

  private:
    struct NamedWorkload
    {
        std::string name;
        std::string scale;
        WorkloadFactory make;
    };

    /** Walk the config × axis product, calling @p visit per point. */
    void expand(const std::function<void(
                    const SystemConfig&, const std::string& label,
                    const std::vector<std::pair<std::string, std::string>>&
                        axes)>& visit) const;

    std::vector<SystemConfig> base_systems;
    std::vector<Axis> axis_list;
    std::vector<NamedWorkload> workload_list;
    SamplingConfig sampling_cfg;
};

} // namespace eve::exp

#endif // EVE_EXP_SWEEP_HH
