/**
 * @file
 * Sweep-as-a-service: a persistent daemon multiplexing many clients'
 * sweeps onto one shared job pool.
 *
 * The SweepService listens on a local socket (svc/net.hh) for
 * newline-delimited JSON requests (svc/proto.hh). Each accepted
 * submission is folded into a single multi-tenant job pool layered on
 * the distributed job-file protocol (exp/dist.hh):
 *
 *  - every job is identified by its content key (exp/cache.hh), so
 *    identical jobs submitted by different tenants collapse to ONE
 *    pool entry and execute once;
 *  - jobs already in the result cache are served instantly without
 *    touching the pool at all;
 *  - fresh jobs get daemon-assigned pool indices and are appended to
 *    the jobs directory via JobsDir::appendPoolJobs; an authoritative
 *    copy under pool/ makes the pool recoverable across daemon
 *    restarts (results carry no keys — pool/ is the index -> key map).
 *
 * Results stream back to each client as the *original* record bytes
 * published by workers (or stored in the cache) — the daemon never
 * re-serializes a payload, so every client's merged output is
 * byte-identical to a single-host batch run of the same sweep.
 *
 * Workers are ordinary `eve_sweep --worker` processes in persistent
 * pool mode. The daemon runs an elastic fleet: a floor of min_workers
 * long-lived workers, plus surge workers spawned as pending depth
 * grows, which retire themselves after DistOptions::idle_exit_s of
 * idleness. A worker lost to kill -9 is recovered by the protocol's
 * ordinary lease reclaim, and the fleet manager respawns capacity.
 *
 * Lifecycle: requestShutdown() (the SIGTERM path) drains — new
 * submissions are refused, accepted sweeps run to completion and
 * finish streaming, then workers are stopped via the protocol's stop
 * marker and run() returns. A client that disconnects mid-sweep loses
 * nothing: its jobs stay pooled, and resubmitting the same sweep
 * after reconnecting is idempotent (completed jobs replay instantly).
 */

#ifndef EVE_SVC_SERVICE_HH
#define EVE_SVC_SERVICE_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "exp/cache.hh"
#include "exp/dist.hh"
#include "svc/net.hh"
#include "svc/proto.hh"

namespace eve::svc
{

/**
 * Handle on one spawned worker, whatever its execution vehicle
 * (forked process in production, thread in tests).
 */
struct WorkerHandle
{
    std::function<bool()> running; ///< still alive?
    std::function<void()> stop;    ///< request graceful stop (idempotent)
    std::function<void()> join;    ///< reap; called once, after stop
};

/** Spawns one pool worker configured by the given DistOptions. */
using WorkerLauncher =
    std::function<WorkerHandle(const exp::DistOptions&)>;

/**
 * The default launcher: fork/exec this binary (/proc/self/exe) as
 * `eve_sweep --worker` in persistent pool mode. stop() sends SIGTERM
 * (the worker finishes and publishes its in-flight job first).
 */
WorkerLauncher processLauncher();

/**
 * The argv (argv[0] included, no trailing nullptr) processLauncher()
 * spawns a worker with. Exposed so tests can assert that every
 * execution-relevant DistOptions field — notably sim_threads and
 * checkpoint_dir — actually reaches the child process.
 */
std::vector<std::string> workerArgs(const exp::DistOptions& d);

struct ServiceOptions
{
    /** Unix-domain socket path the daemon listens on. */
    std::string socket_path;

    /**
     * Pool protocol tunables; jobs_dir names the pool directory.
     * persistent/idle_exit_s are per-worker and set by the fleet
     * manager — values here are ignored.
     */
    exp::DistOptions dist;

    /** Result-cache directory ("" = <jobs_dir>/cache). */
    std::string cache_dir;

    /** Long-lived worker floor (never self-retire). */
    unsigned min_workers = 1;

    /** Fleet ceiling; 0 = hardware_concurrency(). */
    unsigned max_workers = 0;

    /** Surge workers retire after this long without a claim. */
    double worker_idle_exit_s = 5;

    /** Manager/accept tick (also the drain/stream poll period). */
    double tick_s = 0.05;

    /** Suppress inform() chatter (tests). */
    bool quiet = false;

    /** Worker spawner; nullptr = processLauncher(). */
    WorkerLauncher launcher;
};

/** Point-in-time service metrics (the status/watch verbs). */
struct ServiceMetrics
{
    std::size_t pool_total = 0;   ///< pool entries ever created
    std::size_t pending = 0;      ///< jobs awaiting a claim
    std::size_t claimed = 0;      ///< jobs being executed
    std::size_t completed = 0;    ///< pool entries with a result
    std::size_t quarantined = 0;
    std::size_t workers = 0;      ///< live worker count
    std::size_t sweeps = 0;       ///< submissions accepted
    std::size_t clients = 0;      ///< connections currently open
    std::size_t jobs_shared = 0;  ///< submitted jobs deduplicated
    std::size_t jobs_cached = 0;  ///< submitted jobs served from cache
    std::size_t cache_entries = 0;
    double jobs_per_s = 0;        ///< completions over the last 30 s
    double uptime_s = 0;
    bool draining = false;
};

class SweepService
{
  public:
    explicit SweepService(ServiceOptions options);
    ~SweepService();

    SweepService(const SweepService&) = delete;
    SweepService& operator=(const SweepService&) = delete;

    /**
     * Serve until shutdown: bind the socket, recover the pool from a
     * previous daemon's jobs directory, start the fleet manager, and
     * accept clients. Blocks; returns true after a clean drain, false
     * when the socket could not be bound (@p err set).
     */
    bool run(std::string* err = nullptr);

    /**
     * Begin a graceful drain from any thread or a signal-adjacent
     * context: refuse new submissions, let accepted sweeps finish and
     * stream out, stop the workers, make run() return.
     */
    void requestShutdown();

    /** True once requestShutdown() was called. */
    bool draining() const { return drain.load(); }

    /** Current metrics snapshot (also what the status verb reports). */
    ServiceMetrics metrics();

  private:
    struct Worker
    {
        WorkerHandle handle;
        bool surge = false; ///< retires on idleness (not floor)
    };

    /** One client connection being served on its own thread. */
    struct Session
    {
        std::thread thread;
        std::atomic<bool> done{false};
    };

    void managerLoop();
    void serveClient(Conn conn);
    void handleSubmit(Conn& conn, const JsonValue& msg);
    std::string statusJson();

    /** Rebuild pool state from pool/, done/, failed/ after restart. */
    void recoverPool();

    /** Ingest newly published done/failed/quarantined results. */
    void ingestResults();

    /** Reap dead workers, spawn toward the demand-driven target. */
    void manageFleet();
    void spawnWorker(bool surge);

    /** Record a completed pool entry and wake streaming sessions. */
    void recordResult(std::size_t index, std::string record,
                      bool verified_ok);

    ServiceOptions opts;
    exp::JobsDir pool;
    exp::ResultCache cache;
    ListenSocket listener;

    std::mutex mutex;             ///< guards everything below
    std::condition_variable cv;   ///< result arrivals + shutdown
    std::unordered_map<std::string, std::size_t> key_to_index;
    std::map<std::size_t, exp::DistJob> pool_jobs;
    std::map<std::size_t, std::string> results; ///< index -> record
    std::size_t next_index = 0;
    std::size_t sweeps_accepted = 0;
    std::size_t shared_total = 0;
    std::size_t cached_total = 0;
    std::deque<std::chrono::steady_clock::time_point> completions;
    std::vector<Worker> fleet;
    std::size_t worker_seq = 0;
    std::list<Session> sessions;
    std::size_t open_clients = 0;

    std::atomic<bool> drain{false};
    std::atomic<bool> stopping{false};
    std::thread manager;
    std::chrono::steady_clock::time_point started;
};

} // namespace eve::svc

#endif // EVE_SVC_SERVICE_HH
