/**
 * @file
 * Local-socket primitives for the sweep service.
 *
 * The service speaks newline-delimited JSON over a Unix-domain
 * stream socket, so everything here is a thin RAII layer over
 * socket(2)/bind/listen/accept/connect plus a buffered line reader.
 * Writes use MSG_NOSIGNAL: a client that disappears mid-stream
 * surfaces as a false return, never a SIGPIPE.
 */

#ifndef EVE_SVC_NET_HH
#define EVE_SVC_NET_HH

#include <string>

namespace eve::svc
{

/** Outcome of one timed line read. */
enum class ReadResult
{
    Line,    ///< a complete line was returned
    Timeout, ///< no complete line within the timeout; peer still up
    Closed,  ///< EOF or a socket error; the connection is dead
};

/** One connected stream socket (client side or accepted side). */
class Conn
{
  public:
    Conn() = default;
    explicit Conn(int fd) : fd_(fd) {}
    ~Conn() { close(); }

    Conn(Conn&& other) noexcept : fd_(other.fd_), buf(std::move(other.buf))
    {
        other.fd_ = -1;
    }
    Conn& operator=(Conn&& other) noexcept;
    Conn(const Conn&) = delete;
    Conn& operator=(const Conn&) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }
    void close();

    /**
     * Write all of @p line plus a trailing newline. Returns false on
     * any error (peer gone, EPIPE suppressed via MSG_NOSIGNAL).
     */
    bool writeLine(const std::string& line);

    /**
     * Read one newline-terminated line (newline stripped) into
     * @p out. Blocks up to @p timeout_s (<= 0 = forever). Returns
     * false on EOF, error, or timeout.
     */
    bool readLine(std::string& out, double timeout_s = 0);

    /**
     * As readLine(), but distinguishes a quiet peer (Timeout — the
     * caller's poll loop goes round again) from a dead one (Closed).
     * Server session loops need the distinction; simple clients
     * don't.
     */
    ReadResult readLineEx(std::string& out, double timeout_s = 0);

  private:
    int fd_ = -1;
    std::string buf; ///< bytes read past the last returned line
};

/** Bound + listening Unix-domain socket. */
class ListenSocket
{
  public:
    ListenSocket() = default;
    ~ListenSocket() { close(); }

    ListenSocket(const ListenSocket&) = delete;
    ListenSocket& operator=(const ListenSocket&) = delete;

    /**
     * Bind to @p path (an existing socket file is unlinked first —
     * daemons own their socket path) and listen. Returns false with
     * @p err set on failure.
     */
    bool bind(const std::string& path, std::string* err);

    /**
     * Accept one connection, waiting up to @p timeout_s. Returns an
     * invalid Conn on timeout or error (the caller's poll loop just
     * goes round again).
     */
    Conn accept(double timeout_s);

    bool valid() const { return fd_ >= 0; }
    const std::string& path() const { return path_; }

    /** Close and unlink the socket path. */
    void close();

  private:
    int fd_ = -1;
    std::string path_;
};

/**
 * Connect to the Unix socket at @p path, retrying every ~50 ms until
 * @p timeout_s elapses (a daemon may still be binding, or may be
 * restarting). Returns an invalid Conn on timeout.
 */
Conn connectTo(const std::string& path, double timeout_s);

} // namespace eve::svc

#endif // EVE_SVC_NET_HH
