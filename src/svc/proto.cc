#include "svc/proto.hh"

#include "common/stats.hh"
#include "common/version.hh"
#include "exp/cache.hh"

namespace eve::svc
{

namespace
{

std::string
quoted(const std::string& s)
{
    return "\"" + jsonEscape(s) + "\"";
}

} // namespace

std::string
makeVerb(const std::string& verb)
{
    return "{\"verb\":" + quoted(verb) + "}";
}

std::string
makeError(const std::string& message)
{
    return "{\"verb\":\"error\",\"message\":" + quoted(message) + "}";
}

std::string
makeHello()
{
    return std::string("{\"verb\":\"hello\",\"service\":") +
           quoted(kSvcServiceName) +
           ",\"protocol\":" + quoted(kSvcProtocolVersion) +
           ",\"salt\":" + quoted(exp::kSimulatorSalt) +
           ",\"version\":" + quoted(kEveVersion) + "}";
}

std::string
makeSubmit(const SubmitRequest& req)
{
    std::string out = "{\"verb\":\"submit\",\"sweep\":" +
                      quoted(req.sweep) +
                      ",\"protocol\":" + quoted(kSvcProtocolVersion) +
                      ",\"salt\":" + quoted(exp::kSimulatorSalt) +
                      ",\"version\":" + quoted(kEveVersion) +
                      ",\"jobs\":[";
    bool first = true;
    for (const auto& job : req.jobs) {
        if (!first)
            out += ",";
        first = false;
        out += "{\"index\":" + std::to_string(job.index) +
               ",\"key\":" + quoted(job.key) +
               ",\"label\":" + quoted(job.label) +
               ",\"workload\":" + quoted(job.workload) +
               ",\"scale\":" + quoted(job.scale) +
               ",\"config\":" + quoted(job.config);
        // Only sampled jobs carry a schedule, so exact submissions
        // keep their historical bytes (and work against daemons that
        // simply ignore the extra member).
        if (!job.sampling.empty())
            out += ",\"sampling\":" + quoted(job.sampling);
        out += "}";
    }
    out += "]}";
    return out;
}

std::string
makeResult(std::size_t index, std::size_t done, std::size_t total,
           const std::string& record)
{
    return "{\"verb\":\"result\",\"index\":" + std::to_string(index) +
           ",\"done\":" + std::to_string(done) +
           ",\"total\":" + std::to_string(total) +
           ",\"record\":" + record + "}";
}

bool
parseMessage(const std::string& line, JsonValue& out, std::string& verb)
{
    if (!parseJson(line, out) || !out.isObject())
        return false;
    verb = jsonStringField(out, "verb");
    return !verb.empty();
}

bool
parseSubmit(const JsonValue& msg, SubmitRequest& out)
{
    SubmitRequest req;
    req.sweep = jsonStringField(msg, "sweep");
    req.protocol = jsonStringField(msg, "protocol");
    req.salt = jsonStringField(msg, "salt");
    req.version = jsonStringField(msg, "version");
    const JsonValue* jobs = msg.find("jobs");
    if (!jobs || !jobs->isArray())
        return false;
    req.jobs.reserve(jobs->elements.size());
    for (const auto& j : jobs->elements) {
        if (!j.isObject())
            return false;
        exp::DistJob job;
        job.index = std::size_t(jsonNumberField(j, "index"));
        job.key = jsonStringField(j, "key");
        job.label = jsonStringField(j, "label");
        job.workload = jsonStringField(j, "workload");
        job.scale = jsonStringField(j, "scale");
        job.config = jsonStringField(j, "config");
        job.sampling = jsonStringField(j, "sampling");
        // Pool jobs are always rebuilt from files by spec-less
        // workers; the daemon verifies rebuildability at accept time.
        job.remote = true;
        if (job.key.size() != 16 || job.workload.empty() ||
            job.config.empty())
            return false;
        req.jobs.push_back(std::move(job));
    }
    out = std::move(req);
    return true;
}

bool
extractRecord(const std::string& line, std::string& record)
{
    // The record is always the last member of a "result" message, so
    // its raw bytes run from after `"record":` to the closing brace.
    static const std::string kMarker = "\"record\":";
    const std::size_t begin = line.find(kMarker);
    if (begin == std::string::npos || line.empty() ||
        line.back() != '}')
        return false;
    const std::size_t from = begin + kMarker.size();
    if (from >= line.size() - 1)
        return false;
    record = line.substr(from, line.size() - 1 - from);
    return true;
}

} // namespace eve::svc
