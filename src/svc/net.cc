#include "svc/net.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace eve::svc
{

namespace
{

/** Fill a sockaddr_un; false when @p path exceeds sun_path. */
bool
makeAddr(const std::string& path, sockaddr_un& addr)
{
    if (path.empty() || path.size() >= sizeof(addr.sun_path))
        return false;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

Conn&
Conn::operator=(Conn&& other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        buf = std::move(other.buf);
        other.fd_ = -1;
    }
    return *this;
}

void
Conn::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buf.clear();
}

bool
Conn::writeLine(const std::string& line)
{
    if (fd_ < 0)
        return false;
    std::string out = line;
    out += '\n';
    std::size_t sent = 0;
    while (sent < out.size()) {
        const ssize_t n = ::send(fd_, out.data() + sent,
                                 out.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += std::size_t(n);
    }
    return true;
}

bool
Conn::readLine(std::string& out, double timeout_s)
{
    return readLineEx(out, timeout_s) == ReadResult::Line;
}

ReadResult
Conn::readLineEx(std::string& out, double timeout_s)
{
    if (fd_ < 0)
        return ReadResult::Closed;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_s);
    while (true) {
        const std::size_t nl = buf.find('\n');
        if (nl != std::string::npos) {
            out = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            return ReadResult::Line;
        }
        if (timeout_s > 0) {
            const double left =
                std::chrono::duration<double>(
                    deadline - std::chrono::steady_clock::now())
                    .count();
            if (left <= 0)
                return ReadResult::Timeout;
            pollfd pfd = {fd_, POLLIN, 0};
            const int pr = ::poll(&pfd, 1, int(left * 1000) + 1);
            if (pr < 0 && errno != EINTR)
                return ReadResult::Closed;
            if (pr <= 0)
                continue;
        }
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return ReadResult::Closed;
        }
        if (n == 0)
            return ReadResult::Closed; // EOF, no complete line left
        buf.append(chunk, std::size_t(n));
    }
}

bool
ListenSocket::bind(const std::string& path, std::string* err)
{
    close();
    sockaddr_un addr;
    if (!makeAddr(path, addr)) {
        if (err)
            *err = "socket path empty or too long (max ~100 chars): " +
                   path;
        return false;
    }
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        if (err)
            *err = std::strerror(errno);
        return false;
    }
    ::unlink(path.c_str()); // daemons own their socket path
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd_, 64) != 0) {
        if (err)
            *err = std::strerror(errno);
        ::close(fd_);
        fd_ = -1;
        return false;
    }
    path_ = path;
    return true;
}

Conn
ListenSocket::accept(double timeout_s)
{
    if (fd_ < 0)
        return Conn();
    pollfd pfd = {fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, int(timeout_s * 1000) + 1);
    if (pr <= 0)
        return Conn();
    const int cfd = ::accept(fd_, nullptr, nullptr);
    return Conn(cfd);
}

void
ListenSocket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    if (!path_.empty()) {
        ::unlink(path_.c_str());
        path_.clear();
    }
}

Conn
connectTo(const std::string& path, double timeout_s)
{
    sockaddr_un addr;
    if (!makeAddr(path, addr))
        return Conn();
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout_s);
    while (true) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd >= 0 &&
            ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0)
            return Conn(fd);
        if (fd >= 0)
            ::close(fd);
        if (std::chrono::steady_clock::now() >= deadline)
            return Conn();
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
}

} // namespace eve::svc
