#include "svc/client.hh"

#include "common/json.hh"
#include "common/log.hh"
#include "driver/system.hh"
#include "exp/cache.hh"
#include "exp/dist.hh"
#include "svc/net.hh"
#include "svc/proto.hh"
#include "workloads/workload.hh"

namespace eve::svc
{

namespace
{

/** Identity half of a result, copied from the in-memory job. */
exp::JobResult
identityOf(const exp::Job& job)
{
    exp::JobResult r;
    r.index = job.index;
    r.label = job.label;
    r.workload = job.workload;
    r.config = job.config;
    r.axes = job.axes;
    return r;
}

} // namespace

SweepOutcome
submitSweep(const std::vector<exp::Job>& jobs,
            const ClientOptions& opts)
{
    SweepOutcome outcome;
    outcome.results.reserve(jobs.size());

    SubmitRequest req;
    req.sweep = opts.sweep;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const exp::Job& job = jobs[i];
        // Same eligibility rule remote workers enforce: the daemon
        // can only run jobs rebuildable from their serialized form.
        const bool eligible =
            !job.exec &&
            makeWorkloadScaled(job.workload, job.scale) != nullptr;
        if (!eligible) {
            outcome.error = "job \"" + job.label +
                            "\" is not service-eligible (custom "
                            "executor or nonstandard scale); run it "
                            "with a local sweep instead";
            return outcome;
        }
        exp::DistJob dj;
        dj.index = i; // sweep-local position, the streaming index
        dj.key = exp::jobKey(job);
        dj.label = job.label;
        dj.workload = job.workload;
        dj.scale = job.scale;
        dj.config = configCanonical(job.config);
        dj.sampling = samplingCanonical(job.sampling);
        dj.remote = true;
        req.jobs.push_back(std::move(dj));
        outcome.results.push_back(identityOf(job));
    }
    const std::string submit_line = makeSubmit(req);
    const std::size_t total = jobs.size();
    std::vector<bool> received(total, false);
    std::size_t done = 0;

    for (unsigned attempt = 0; attempt < opts.max_attempts;
         ++attempt) {
        Conn conn = connectTo(opts.socket_path,
                              opts.connect_timeout_s);
        if (!conn.valid()) {
            outcome.error = "cannot connect to sweep daemon at " +
                            opts.socket_path;
            return outcome;
        }
        if (!conn.writeLine(submit_line))
            continue; // daemon vanished between connect and write

        std::string line;
        if (!conn.readLine(line, opts.result_timeout_s))
            continue;
        JsonValue msg;
        std::string verb;
        if (!parseMessage(line, msg, verb)) {
            outcome.error = "malformed daemon reply: " + line;
            return outcome;
        }
        if (verb == "error") {
            // Refusals (salt/version skew, draining, ineligible
            // jobs) are deterministic; retrying would not help.
            outcome.error = jsonStringField(msg, "message",
                                            "submission refused");
            return outcome;
        }
        if (verb != "accepted") {
            outcome.error = "unexpected daemon reply: " + line;
            return outcome;
        }
        outcome.cached = std::size_t(jsonNumberField(msg, "cached"));
        outcome.shared = std::size_t(jsonNumberField(msg, "shared"));
        outcome.fresh = std::size_t(jsonNumberField(msg, "fresh"));

        // Stream until sweep-done; a dropped line or connection
        // reconnects and resubmits (idempotent on the daemon side).
        bool lost = false;
        while (!lost) {
            if (!conn.readLine(line, opts.result_timeout_s)) {
                lost = true;
                break;
            }
            if (!parseMessage(line, msg, verb)) {
                outcome.error = "malformed daemon reply: " + line;
                return outcome;
            }
            if (verb == "result") {
                const std::size_t index =
                    std::size_t(jsonNumberField(msg, "index"));
                std::string record;
                if (index >= total ||
                    !extractRecord(line, record)) {
                    outcome.error =
                        "malformed result message: " + line;
                    return outcome;
                }
                exp::JobResult payload;
                if (!exp::parseResultJson(record, payload)) {
                    outcome.error =
                        "unparseable result record: " + record;
                    return outcome;
                }
                // Duplicates are expected across resubmits; the
                // record bytes are identical either way.
                exp::adoptPayload(outcome.results[index],
                                  std::move(payload));
                if (!received[index]) {
                    received[index] = true;
                    ++done;
                    if (opts.progress)
                        opts.progress(outcome.results[index], done,
                                      total);
                }
            } else if (verb == "sweep-done") {
                outcome.ok = true;
                return outcome;
            } else if (verb == "error") {
                outcome.error = jsonStringField(msg, "message",
                                                "daemon error");
                return outcome;
            }
            // Other verbs (stray status lines) are ignored.
        }
        if (lost && attempt + 1 < opts.max_attempts)
            warn("sweep client: connection lost (%zu/%zu results); "
                 "reconnecting",
                 done, total);
    }
    outcome.error = "connection to " + opts.socket_path +
                    " lost repeatedly; received " +
                    std::to_string(done) + "/" +
                    std::to_string(total) + " results";
    return outcome;
}

ServerHello
helloServer(const std::string& socket_path, double timeout_s)
{
    ServerHello hello;
    Conn conn = connectTo(socket_path, timeout_s);
    if (!conn.valid()) {
        hello.error = "cannot connect to " + socket_path;
        return hello;
    }
    std::string line;
    if (!conn.writeLine(makeVerb("hello")) ||
        !conn.readLine(line, timeout_s)) {
        hello.error = "no hello reply from " + socket_path;
        return hello;
    }
    JsonValue msg;
    std::string verb;
    if (!parseMessage(line, msg, verb) || verb != "hello") {
        hello.error = "unexpected hello reply: " + line;
        return hello;
    }
    hello.ok = true;
    hello.service = jsonStringField(msg, "service");
    hello.protocol = jsonStringField(msg, "protocol");
    hello.salt = jsonStringField(msg, "salt");
    hello.version = jsonStringField(msg, "version");
    return hello;
}

bool
statusServer(const std::string& socket_path, double timeout_s,
             std::string& out_json)
{
    Conn conn = connectTo(socket_path, timeout_s);
    if (!conn.valid())
        return false;
    return conn.writeLine(makeVerb("status")) &&
           conn.readLine(out_json, timeout_s);
}

bool
shutdownServer(const std::string& socket_path, double timeout_s)
{
    Conn conn = connectTo(socket_path, timeout_s);
    if (!conn.valid())
        return false;
    std::string line;
    if (!conn.writeLine(makeVerb("shutdown")) ||
        !conn.readLine(line, timeout_s))
        return false;
    JsonValue msg;
    std::string verb;
    return parseMessage(line, msg, verb) && verb == "ok";
}

bool
watchServer(const std::string& socket_path, double interval_s,
            const std::function<bool(const std::string&)>& sink,
            double timeout_s)
{
    Conn conn = connectTo(socket_path, timeout_s);
    if (!conn.valid())
        return false;
    if (!conn.writeLine("{\"verb\":\"watch\",\"interval_s\":" +
                        std::to_string(interval_s) + "}"))
        return false;
    std::string line;
    // Poll in short slices so a false-returning sink (e.g. a signal
    // flag) stops the watch promptly even when the daemon is quiet.
    while (true) {
        const ReadResult rr = conn.readLineEx(line, 0.2);
        if (rr == ReadResult::Closed)
            return true;
        if (rr == ReadResult::Line && !sink(line))
            return true;
        if (rr == ReadResult::Timeout && !sink(""))
            return true;
    }
}

} // namespace eve::svc
