/**
 * @file
 * Client side of the sweep service.
 *
 * submitSweep() turns a vector of in-memory Jobs into a service
 * submission, streams results back as they complete, and splices each
 * record's payload onto the local job identity (adoptPayload) — the
 * same byte-exact round trip the batch orchestrator's merge uses, so
 * writing the returned results through writeJsonLines produces output
 * byte-identical to a single-host run.
 *
 * The connection is disposable: if it drops mid-stream, the client
 * reconnects and resubmits the identical sweep. Submission is
 * idempotent on the daemon side (jobs are keyed by content), so a
 * resubmit costs nothing — already-completed jobs replay instantly
 * and in-flight ones keep running across the gap.
 */

#ifndef EVE_SVC_CLIENT_HH
#define EVE_SVC_CLIENT_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "exp/runner.hh"
#include "exp/sweep.hh"

namespace eve::svc
{

struct ClientOptions
{
    /** Daemon socket path. */
    std::string socket_path;

    /** Sweep name sent with the submission (diagnostics only). */
    std::string sweep = "sweep";

    /** Seconds to keep retrying the initial/re-connect. */
    double connect_timeout_s = 10;

    /** Max silence while awaiting a result before reconnecting. */
    double result_timeout_s = 600;

    /** Reconnect-and-resubmit attempts before giving up. */
    unsigned max_attempts = 5;

    /** Per received result; done/total are sweep-local counts. */
    exp::ProgressFn progress;
};

/** What a submission produced. */
struct SweepOutcome
{
    bool ok = false;      ///< sweep-done received
    std::string error;    ///< refusal / connectivity diagnosis
    std::size_t cached = 0; ///< jobs served from the daemon's cache
    std::size_t shared = 0; ///< jobs deduplicated against the pool
    std::size_t fresh = 0;  ///< jobs newly pooled by this submission
    std::vector<exp::JobResult> results; ///< sweep order
};

/**
 * Submit @p jobs to the daemon at @p opts.socket_path and collect
 * every result. Jobs must be service-eligible (standard-scale library
 * workloads without custom executors — the same rebuildability rule
 * remote workers enforce); an ineligible job fails the call before
 * anything is sent.
 */
SweepOutcome submitSweep(const std::vector<exp::Job>& jobs,
                         const ClientOptions& opts);

/** A daemon's hello reply, parsed. */
struct ServerHello
{
    bool ok = false;
    std::string error;
    std::string service;
    std::string protocol;
    std::string salt;
    std::string version;
};

/** Ask the daemon to identify itself. */
ServerHello helloServer(const std::string& socket_path,
                        double timeout_s = 5);

/** One status snapshot (raw JSON line); false on any failure. */
bool statusServer(const std::string& socket_path, double timeout_s,
                  std::string& out_json);

/** Request a graceful drain; true when the daemon acknowledged. */
bool shutdownServer(const std::string& socket_path,
                    double timeout_s = 5);

/**
 * Stream status snapshots every @p interval_s, invoking @p sink per
 * line until it returns false or the daemon goes away. While the
 * daemon is quiet, @p sink is also called with an empty string a few
 * times a second so it can poll a stop condition (e.g. a SIGINT
 * flag). Returns false only when the initial connection failed.
 */
bool watchServer(const std::string& socket_path, double interval_s,
                 const std::function<bool(const std::string&)>& sink,
                 double timeout_s = 5);

} // namespace eve::svc

#endif // EVE_SVC_CLIENT_HH
