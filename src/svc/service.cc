#include "svc/service.hh"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/fs.hh"
#include "common/log.hh"
#include "common/stats.hh"
#include "common/version.hh"
#include "exp/sink.hh"

namespace eve::svc
{

namespace
{

/** Sorted file names in @p dir; empty when it does not exist. */
std::vector<std::string>
listDir(const std::string& dir)
{
    std::vector<std::string> names;
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec)
        return names;
    for (const auto& entry : it)
        names.push_back(entry.path().filename().string());
    std::sort(names.begin(), names.end());
    return names;
}

/** Parse the N of "job-N.json" / "job-N.job"; false otherwise. */
bool
parseJobIndex(const std::string& name, std::size_t& out)
{
    if (name.rfind("job-", 0) != 0)
        return false;
    const std::size_t dot = name.rfind('.');
    if (dot == std::string::npos || dot <= 4)
        return false;
    const std::string digits = name.substr(4, dot - 4);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
        return false;
    out = std::strtoull(digits.c_str(), nullptr, 10);
    return true;
}

/** True when @p record is a verified-Ok resultToJson record. */
bool
recordIsOk(const std::string& record)
{
    JsonValue root;
    if (!parseJson(record, root) || !root.isObject())
        return false;
    return jsonStringField(root, "status") == "ok";
}

} // namespace

std::vector<std::string>
workerArgs(const exp::DistOptions& d)
{
    std::vector<std::string> args = {
        "/proc/self/exe",
        "--worker",
        "--jobs-dir", d.jobs_dir,
        "--persistent",
        "--lease-timeout", std::to_string(d.lease_timeout_s),
        "--heartbeat", std::to_string(d.heartbeat_s),
        "--poll", std::to_string(d.poll_s),
        "--join-timeout", std::to_string(d.join_timeout_s),
        "--quiet",
    };
    if (d.idle_exit_s > 0) {
        args.push_back("--idle-exit");
        args.push_back(std::to_string(d.idle_exit_s));
    }
    if (!d.worker_id.empty()) {
        args.push_back("--worker-id");
        args.push_back(d.worker_id);
    }
    if (d.sim_threads > 1) {
        args.push_back("--sim-threads");
        args.push_back(std::to_string(d.sim_threads));
    }
    if (!d.checkpoint_dir.empty()) {
        args.push_back("--checkpoint-dir");
        args.push_back(d.checkpoint_dir);
    }
    return args;
}

WorkerLauncher
processLauncher()
{
    return [](const exp::DistOptions& d) -> WorkerHandle {
        std::vector<std::string> args = workerArgs(d);

        // Built before fork(): the child of a multithreaded parent
        // may only call async-signal-safe functions, so no
        // allocation between fork() and execv().
        std::vector<char*> argv;
        for (auto& a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);

        const pid_t pid = ::fork();
        if (pid == 0) {
            ::execv(argv[0], argv.data());
            ::_exit(127);
        }

        WorkerHandle h;
        if (pid < 0) {
            warn("sweep service: fork failed; worker not spawned");
            h.running = [] { return false; };
            h.stop = [] {};
            h.join = [] {};
            return h;
        }
        // reaped-flag shared by the three closures: waitpid must run
        // exactly once per exit, and running() must stay false after.
        auto reaped = std::make_shared<bool>(false);
        h.running = [pid, reaped] {
            if (*reaped)
                return false;
            int status = 0;
            const pid_t r = ::waitpid(pid, &status, WNOHANG);
            if (r == pid) {
                *reaped = true;
                return false;
            }
            return r == 0;
        };
        h.stop = [pid, reaped] {
            if (!*reaped)
                ::kill(pid, SIGTERM);
        };
        h.join = [pid, reaped] {
            if (!*reaped) {
                int status = 0;
                ::waitpid(pid, &status, 0);
                *reaped = true;
            }
        };
        return h;
    };
}

SweepService::SweepService(ServiceOptions options)
    : opts(std::move(options)),
      pool(opts.dist),
      cache(opts.cache_dir.empty() ? opts.dist.jobs_dir + "/cache"
                                   : opts.cache_dir)
{
    if (!opts.launcher)
        opts.launcher = processLauncher();
    if (opts.max_workers == 0)
        opts.max_workers =
            std::max(1u, std::thread::hardware_concurrency());
    opts.min_workers = std::min(opts.min_workers, opts.max_workers);
}

SweepService::~SweepService()
{
    // run() joins everything on the normal path; this is the safety
    // net for a service destroyed without ever running.
    stopping.store(true);
    cv.notify_all();
    for (auto& s : sessions)
        if (s.thread.joinable())
            s.thread.join();
    if (manager.joinable())
        manager.join();
}

bool
SweepService::run(std::string* err)
{
    // The default socket lives inside the jobs directory, and a
    // fresh deployment starts with neither: the pool layout is
    // otherwise only created on the first submission.
    makeDirs(opts.dist.jobs_dir);
    if (!listener.bind(opts.socket_path, err))
        return false;

    cache.load();
    recoverPool();
    pool.clearStop();
    exp::clearWorkerStop();
    started = std::chrono::steady_clock::now();

    if (!opts.quiet)
        inform("sweep service: listening on %s (pool %s, %zu jobs "
               "recovered, %zu cached records)",
               opts.socket_path.c_str(), opts.dist.jobs_dir.c_str(),
               pool_jobs.size(), cache.size());

    manager = std::thread([this] { managerLoop(); });

    while (!stopping.load()) {
        Conn conn = listener.accept(opts.tick_s);
        if (conn.valid() && !stopping.load()) {
            std::lock_guard<std::mutex> lock(mutex);
            // Reap finished session threads so the list stays small.
            for (auto it = sessions.begin(); it != sessions.end();) {
                if (it->done.load()) {
                    it->thread.join();
                    it = sessions.erase(it);
                } else {
                    ++it;
                }
            }
            sessions.emplace_back();
            Session& s = sessions.back();
            s.thread = std::thread(
                [this, &s, c = std::move(conn)]() mutable {
                    serveClient(std::move(c));
                    s.done.store(true);
                });
        }

        if (drain.load()) {
            std::lock_guard<std::mutex> lock(mutex);
            if (results.size() >= pool_jobs.size()) {
                // Every accepted job is terminal; streaming sessions
                // can finish from the results map without blocking.
                stopping.store(true);
                cv.notify_all();
            }
        }
    }

    // Teardown: stop the fleet via the protocol's stop marker (and a
    // polite per-worker stop), then join everything.
    pool.requestStop();
    {
        std::lock_guard<std::mutex> lock(mutex);
        for (auto& w : fleet)
            w.handle.stop();
        for (auto& w : fleet)
            w.handle.join();
        fleet.clear();
    }
    cv.notify_all();
    for (auto& s : sessions)
        if (s.thread.joinable())
            s.thread.join();
    sessions.clear();
    if (manager.joinable())
        manager.join();
    listener.close();
    pool.clearStop();
    if (!opts.quiet)
        inform("sweep service: drained (%zu pool jobs, %zu sweeps "
               "served)",
               pool_jobs.size(), sweeps_accepted);
    return true;
}

void
SweepService::requestShutdown()
{
    drain.store(true);
    cv.notify_all();
}

void
SweepService::recoverPool()
{
    std::lock_guard<std::mutex> lock(mutex);
    for (const auto& name : listDir(pool.poolDir())) {
        std::size_t index = 0;
        if (!parseJobIndex(name, index))
            continue;
        std::string text;
        if (!readFile(pool.poolDir() + "/" + name, text))
            continue;
        exp::DistJob job;
        if (!parseDistJob(text, job))
            continue;
        key_to_index[job.key] = job.index;
        pool_jobs[job.index] = std::move(job);
        next_index = std::max(next_index, index + 1);
    }
    ingestResults();
}

void
SweepService::ingestResults()
{
    // Caller holds the mutex. The directory scans race only with
    // workers' atomic renames, so a record is either absent or
    // complete — never torn.
    for (const bool ok_dir : {true, false}) {
        const std::string dir =
            ok_dir ? pool.doneDir() : pool.failedDir();
        for (const auto& name : listDir(dir)) {
            std::size_t index = 0;
            if (!parseJobIndex(name, index) || results.count(index))
                continue;
            std::string record;
            if (!readFile(dir + "/" + name, record))
                continue;
            while (!record.empty() &&
                   (record.back() == '\n' || record.back() == '\r'))
                record.pop_back();
            recordResult(index, std::move(record), ok_dir);
        }
    }

    // Quarantined jobs never publish a record; synthesize a Failed
    // one so waiting clients get a terminal answer, exactly as the
    // batch orchestrator's merge() does.
    for (const auto& name : listDir(pool.quarantineDir())) {
        std::size_t index = 0;
        if (!parseJobIndex(name, index) || results.count(index))
            continue;
        auto it = pool_jobs.find(index);
        if (it == pool_jobs.end())
            continue;
        exp::JobResult r;
        r.index = index;
        r.label = it->second.label;
        r.workload = it->second.workload;
        r.status = exp::JobStatus::Failed;
        r.error = "quarantined after exhausting the retry budget";
        recordResult(index, exp::resultToJson(r, true), false);
    }
}

void
SweepService::recordResult(std::size_t index, std::string record,
                           bool verified_ok)
{
    if (verified_ok) {
        auto it = pool_jobs.find(index);
        if (it != pool_jobs.end())
            cache.storeRecord(it->second.key, record);
    }
    results[index] = std::move(record);
    completions.push_back(std::chrono::steady_clock::now());
    cv.notify_all();
}

void
SweepService::managerLoop()
{
    while (!stopping.load()) {
        pool.reclaimExpired();
        pool.quarantinePartials();
        {
            std::lock_guard<std::mutex> lock(mutex);
            ingestResults();
        }
        manageFleet();
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait_for(lock,
                    std::chrono::duration<double>(opts.tick_s),
                    [this] { return stopping.load(); });
    }
}

void
SweepService::manageFleet()
{
    const exp::DistStatus s = pool.status();
    const std::size_t depth = s.pending + s.claimed;

    std::lock_guard<std::mutex> lock(mutex);
    for (auto it = fleet.begin(); it != fleet.end();) {
        if (!it->handle.running()) {
            it->handle.join();
            it = fleet.erase(it);
        } else {
            ++it;
        }
    }
    // Floor workers are long-lived; surge workers are spawned up to
    // queue depth (capped at max_workers) and retire themselves via
    // idle_exit_s — scale-down is worker-driven, not daemon-driven.
    while (fleet.size() < opts.min_workers)
        spawnWorker(false);
    const std::size_t target =
        std::min<std::size_t>(opts.max_workers, depth);
    while (fleet.size() < target)
        spawnWorker(true);
}

void
SweepService::spawnWorker(bool surge)
{
    exp::DistOptions w = opts.dist;
    w.persistent = true;
    w.idle_exit_s = surge ? opts.worker_idle_exit_s : 0;
    w.lanes = 0;
    w.progress = nullptr;
    if (w.worker_id.empty())
        w.worker_id = "svc-worker-" + std::to_string(worker_seq);
    else
        w.worker_id += "-" + std::to_string(worker_seq);
    ++worker_seq;

    Worker worker;
    worker.handle = opts.launcher(w);
    worker.surge = surge;
    fleet.push_back(std::move(worker));
    if (!opts.quiet)
        inform("sweep service: spawned %s worker %s (fleet %zu)",
               surge ? "surge" : "floor", w.worker_id.c_str(),
               fleet.size());
}

std::string
SweepService::statusJson()
{
    const ServiceMetrics m = metrics();
    std::ostringstream os;
    os << "{\"verb\":\"status\""
       << ",\"service\":\"" << jsonEscape(kSvcServiceName) << "\""
       << ",\"protocol\":\"" << jsonEscape(kSvcProtocolVersion) << "\""
       << ",\"salt\":\"" << jsonEscape(exp::kSimulatorSalt) << "\""
       << ",\"version\":\"" << jsonEscape(kEveVersion) << "\""
       << ",\"draining\":" << (m.draining ? "true" : "false")
       << ",\"uptime_s\":" << jsonNumber(m.uptime_s)
       << ",\"pool_total\":" << m.pool_total
       << ",\"pending\":" << m.pending
       << ",\"claimed\":" << m.claimed
       << ",\"completed\":" << m.completed
       << ",\"quarantined\":" << m.quarantined
       << ",\"workers\":" << m.workers
       << ",\"clients\":" << m.clients
       << ",\"sweeps\":" << m.sweeps
       << ",\"jobs_shared\":" << m.jobs_shared
       << ",\"jobs_cached\":" << m.jobs_cached
       << ",\"cache_entries\":" << m.cache_entries
       << ",\"jobs_per_s\":" << jsonNumber(m.jobs_per_s) << "}";
    return os.str();
}

ServiceMetrics
SweepService::metrics()
{
    const exp::DistStatus s = pool.status();
    const auto now = std::chrono::steady_clock::now();

    std::lock_guard<std::mutex> lock(mutex);
    while (!completions.empty() &&
           std::chrono::duration<double>(now - completions.front())
                   .count() > 30.0)
        completions.pop_front();

    ServiceMetrics m;
    m.pool_total = next_index;
    m.pending = s.pending;
    m.claimed = s.claimed;
    m.completed = results.size();
    m.quarantined = s.quarantined;
    m.workers = fleet.size();
    m.sweeps = sweeps_accepted;
    m.clients = open_clients;
    m.jobs_shared = shared_total;
    m.jobs_cached = cached_total;
    m.cache_entries = cache.size();
    m.uptime_s =
        std::chrono::duration<double>(now - started).count();
    const double window = std::min(30.0, std::max(1.0, m.uptime_s));
    m.jobs_per_s = double(completions.size()) / window;
    m.draining = drain.load();
    return m;
}

void
SweepService::serveClient(Conn conn)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        ++open_clients;
    }

    std::string line;
    while (!stopping.load()) {
        const ReadResult rr = conn.readLineEx(line, opts.tick_s);
        if (rr == ReadResult::Closed)
            break;
        if (rr == ReadResult::Timeout)
            continue;

        JsonValue msg;
        std::string verb;
        if (!parseMessage(line, msg, verb)) {
            if (!conn.writeLine(makeError("malformed request")))
                break;
            continue;
        }

        if (verb == "hello") {
            if (!conn.writeLine(makeHello()))
                break;
        } else if (verb == "status") {
            if (!conn.writeLine(statusJson()))
                break;
        } else if (verb == "watch") {
            const double interval = std::max(
                opts.tick_s, jsonNumberField(msg, "interval_s", 1));
            // Stream snapshots until the peer hangs up or the daemon
            // stops; inbound lines during a watch are ignored.
            while (!stopping.load()) {
                if (!conn.writeLine(statusJson()))
                    break;
                const ReadResult wr = conn.readLineEx(line, interval);
                if (wr == ReadResult::Closed)
                    break;
            }
            break;
        } else if (verb == "shutdown") {
            // Drain before acking: a client acting on the ok (e.g. a
            // test probing refusal) must already see drain in force.
            requestShutdown();
            if (!opts.quiet)
                inform("sweep service: shutdown requested; draining");
            conn.writeLine(makeVerb("ok"));
        } else if (verb == "submit") {
            handleSubmit(conn, msg);
        } else {
            if (!conn.writeLine(makeError("unknown verb: " + verb)))
                break;
        }
    }

    std::lock_guard<std::mutex> lock(mutex);
    --open_clients;
}

void
SweepService::handleSubmit(Conn& conn, const JsonValue& msg)
{
    if (drain.load()) {
        conn.writeLine(
            makeError("daemon is draining; submission refused"));
        return;
    }

    SubmitRequest req;
    if (!parseSubmit(msg, req)) {
        conn.writeLine(makeError("malformed submit request"));
        return;
    }
    if (req.protocol != kSvcProtocolVersion) {
        conn.writeLine(makeError(
            "protocol skew: daemon speaks " +
            std::string(kSvcProtocolVersion) + ", client sent " +
            req.protocol + " — upgrade the older side"));
        return;
    }
    if (req.salt != exp::kSimulatorSalt) {
        conn.writeLine(makeError(
            "simulator salt skew: daemon is " +
            std::string(exp::kSimulatorSalt) + ", client is " +
            req.salt + " — results would not be comparable; refuse"));
        return;
    }
    if (req.version != kEveVersion) {
        conn.writeLine(makeError(
            "version skew: daemon is " + std::string(kEveVersion) +
            ", client is " + req.version +
            " — restart the daemon from the same binary"));
        return;
    }
    if (req.jobs.empty()) {
        conn.writeLine(makeError("empty submission"));
        return;
    }

    // Streamed per sweep-local job: either a record that is already
    // in hand (cache hit / completed pool entry) or a pool index to
    // await. Classified under one lock so dedup is race-free across
    // concurrent submissions.
    struct Await
    {
        std::size_t client_index;
        std::size_t pool_index;
    };
    std::vector<std::pair<std::size_t, std::string>> ready;
    std::vector<Await> waiting;
    std::size_t n_cached = 0, n_shared = 0, n_fresh = 0;

    {
        std::lock_guard<std::mutex> lock(mutex);

        // Verify first, commit second: a refused submission must not
        // leave half a sweep in the pool.
        for (const auto& dj : req.jobs) {
            if (key_to_index.count(dj.key) || cache.recordText(dj.key))
                continue;
            exp::Job rebuilt;
            if (!rebuildJob(dj, rebuilt)) {
                conn.writeLine(makeError(
                    "job \"" + dj.label +
                    "\" (key " + dj.key + ") is not rebuildable "
                    "under this daemon — content-key mismatch; the "
                    "client binary likely differs from the daemon's"));
                return;
            }
        }

        std::vector<exp::DistJob> fresh;
        for (std::size_t ci = 0; ci < req.jobs.size(); ++ci) {
            const exp::DistJob& dj = req.jobs[ci];
            auto it = key_to_index.find(dj.key);
            if (it != key_to_index.end()) {
                ++n_shared;
                ++shared_total;
                auto done = results.find(it->second);
                if (done != results.end())
                    ready.emplace_back(ci, done->second);
                else
                    waiting.push_back({ci, it->second});
                continue;
            }
            if (const std::string* rec = cache.recordText(dj.key)) {
                ++n_cached;
                ++cached_total;
                ready.emplace_back(ci, *rec);
                continue;
            }
            ++n_fresh;
            exp::DistJob pooled = dj;
            pooled.index = next_index++;
            key_to_index[pooled.key] = pooled.index;
            pool_jobs[pooled.index] = pooled;
            waiting.push_back({ci, pooled.index});
            fresh.push_back(std::move(pooled));
        }
        ++sweeps_accepted;
        if (!fresh.empty())
            pool.appendPoolJobs(fresh, next_index);
    }
    cv.notify_all();

    const std::size_t total = req.jobs.size();
    if (!opts.quiet)
        inform("sweep service: accepted \"%s\" (%zu jobs: %zu "
               "cached, %zu shared, %zu fresh)",
               req.sweep.c_str(), total, n_cached, n_shared, n_fresh);
    if (!conn.writeLine("{\"verb\":\"accepted\",\"sweep\":\"" +
                        jsonEscape(req.sweep) +
                        "\",\"total\":" + std::to_string(total) +
                        ",\"cached\":" + std::to_string(n_cached) +
                        ",\"shared\":" + std::to_string(n_shared) +
                        ",\"fresh\":" + std::to_string(n_fresh) + "}"))
        return;

    // Stream phase. In-hand records first (sweep-local order), then
    // pool completions as they land. A failed write means the client
    // disconnected: return silently — the pooled jobs keep running,
    // and an idempotent resubmit replays everything.
    std::size_t done = 0, ok = 0;
    auto send = [&](std::size_t ci, const std::string& rec) {
        ++done;
        if (recordIsOk(rec))
            ++ok;
        return conn.writeLine(makeResult(ci, done, total, rec));
    };

    for (const auto& [ci, rec] : ready)
        if (!send(ci, rec))
            return;

    while (!waiting.empty() && !stopping.load()) {
        std::vector<std::pair<std::size_t, std::string>> arrived;
        {
            std::unique_lock<std::mutex> lock(mutex);
            cv.wait_for(
                lock, std::chrono::duration<double>(opts.tick_s));
            for (auto it = waiting.begin(); it != waiting.end();) {
                auto r = results.find(it->pool_index);
                if (r != results.end()) {
                    arrived.emplace_back(it->client_index, r->second);
                    it = waiting.erase(it);
                } else {
                    ++it;
                }
            }
        }
        for (const auto& [ci, rec] : arrived)
            if (!send(ci, rec))
                return;
    }
    if (!waiting.empty())
        return; // stopping without drain; client will resubmit

    conn.writeLine("{\"verb\":\"sweep-done\",\"ok\":" +
                   std::to_string(ok) +
                   ",\"failed\":" + std::to_string(total - ok) +
                   ",\"total\":" + std::to_string(total) + "}");
}

} // namespace eve::svc
