/**
 * @file
 * Wire protocol of the sweep service.
 *
 * Newline-delimited JSON over a local stream socket: every message
 * is one JSON object on one line with a "verb" member, so the
 * framing is HTTP-friendly (a gateway can lift verbs onto routes)
 * and `nc -U` is a usable debugging client.
 *
 * Client -> daemon requests:
 *
 *   {"verb":"hello"}
 *   {"verb":"status"}                       one metrics snapshot
 *   {"verb":"watch","interval_s":1}         metrics stream until EOF
 *   {"verb":"shutdown"}                     begin graceful drain
 *   {"verb":"submit","sweep":"<name>",
 *    "protocol":"eve-svc-v1","salt":"<kSimulatorSalt>",
 *    "version":"<kEveVersion>",
 *    "jobs":[{"index":0,"key":"<16 hex>","label":"...",
 *             "workload":"vvadd","scale":"small",
 *             "config":"<configCanonical>"}, ...]}
 *
 * Daemon -> client replies:
 *
 *   {"verb":"hello","service":"eve-sweep-svc","protocol":...,
 *    "salt":...,"version":...}
 *   {"verb":"error","message":"..."}        request refused
 *   {"verb":"accepted","sweep":...,"total":N,"cached":C,"shared":S,
 *    "fresh":F}                             submit acknowledged
 *   {"verb":"result","index":I,"done":D,"total":N,"record":{...}}
 *   {"verb":"sweep-done","ok":K,"failed":F,"total":N}
 *   {"verb":"status", ...metrics fields... }
 *   {"verb":"ok"}                           shutdown acknowledged
 *
 * "result" messages carry the *original* resultToJson record bytes
 * (from the worker's published file or the result cache), embedded
 * raw — the daemon never re-serializes payloads, so the client's
 * merged output is byte-identical to a single-host batch run by
 * construction. A submission whose protocol or salt differs from
 * the daemon's is refused before any job is pooled; the refusal
 * message names both sides, and the hello verb exposes the daemon's
 * identity so skew is diagnosable without submitting at all.
 */

#ifndef EVE_SVC_PROTO_HH
#define EVE_SVC_PROTO_HH

#include <string>
#include <vector>

#include "common/json.hh"
#include "exp/dist.hh"

namespace eve::svc
{

/** Bumped whenever the wire protocol changes incompatibly. */
inline constexpr const char* kSvcProtocolVersion = "eve-svc-v1";

/** Service name stamped into hello replies. */
inline constexpr const char* kSvcServiceName = "eve-sweep-svc";

/** A parsed submit request. */
struct SubmitRequest
{
    std::string sweep;    ///< client-chosen sweep name (diagnostics)
    std::string protocol; ///< client's kSvcProtocolVersion
    std::string salt;     ///< client's kSimulatorSalt
    std::string version;  ///< client's kEveVersion
    std::vector<exp::DistJob> jobs; ///< sweep-local indices
};

/** {"verb":"<verb>"} with no other members. */
std::string makeVerb(const std::string& verb);

/** {"verb":"error","message":...}. */
std::string makeError(const std::string& message);

/** {"verb":"hello",...} with this binary's identity. */
std::string makeHello();

/** Serialize a submit request (jobs keep their sweep-local index). */
std::string makeSubmit(const SubmitRequest& req);

/** {"verb":"result",...} embedding @p record raw. */
std::string makeResult(std::size_t index, std::size_t done,
                       std::size_t total, const std::string& record);

/**
 * Parse one wire line. Returns false on malformed JSON or a missing
 * verb; otherwise @p out holds the object and @p verb its verb.
 */
bool parseMessage(const std::string& line, JsonValue& out,
                  std::string& verb);

/** Parse the members of a "submit" message; false when malformed. */
bool parseSubmit(const JsonValue& msg, SubmitRequest& out);

/**
 * Extract the raw record bytes embedded in a "result" message —
 * everything between `"record":` and the message's closing brace,
 * verbatim, so the byte-identity of stored records survives the
 * trip. Returns false when the member is absent.
 */
bool extractRecord(const std::string& line, std::string& record);

} // namespace eve::svc

#endif // EVE_SVC_PROTO_HH
