/**
 * @file
 * The dynamic instruction record and the streaming trace interface.
 *
 * Workload generators *emit* instruction records one at a time into an
 * InstrSink; timing models, the functional vector machine, and the
 * Table IV characterizer are all sinks. This mirrors the paper's
 * methodology of separating execution from timing while keeping
 * memory bounded for multi-million-instruction traces.
 */

#ifndef EVE_ISA_INSTR_HH
#define EVE_ISA_INSTR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/op.hh"

namespace eve
{

/**
 * One dynamic instruction.
 *
 * Register numbers refer to the architectural vector registers v0-v31
 * for vector opcodes, or to an abstract scalar register namespace for
 * scalar trace instructions (the scalar timing models only need the
 * dependence structure, not values).
 *
 * For .vx opcode forms, usesScalar is set and the already-resolved
 * scalar operand value is carried in @ref imm — the generator knows
 * the value because it executes the scalar side of the program.
 */
struct Instr
{
    Op op = Op::SAlu;

    std::uint8_t dst = 0;   ///< destination register
    std::uint8_t src1 = 0;  ///< first source register
    std::uint8_t src2 = 0;  ///< second source register

    bool masked = false;     ///< executes under mask register v0
    bool usesScalar = false; ///< .vx form: src2 replaced by imm value

    std::uint32_t vl = 0;    ///< active vector length (elements)

    Addr addr = 0;           ///< base byte address for memory ops
    std::int64_t stride = 0; ///< byte stride for strided memory ops

    /**
     * Per-element byte offsets for indexed memory ops (gather/
     * scatter), valid only during the consume() call; length = vl.
     */
    const std::uint32_t* indices = nullptr;

    std::int64_t imm = 0;    ///< scalar operand / setvl request
};

/** Consumer of a dynamic instruction stream. */
class InstrSink
{
  public:
    virtual ~InstrSink() = default;

    /** Process one instruction; records are only valid for the call. */
    virtual void consume(const Instr& instr) = 0;
};

/** Fans a stream out to several sinks in order. */
class TeeSink : public InstrSink
{
  public:
    /** Add a downstream sink (not owned). */
    void attach(InstrSink* sink) { sinks.push_back(sink); }

    void
    consume(const Instr& instr) override
    {
        for (auto* sink : sinks)
            sink->consume(instr);
    }

  private:
    std::vector<InstrSink*> sinks;
};

/** Sink that counts instructions and nothing else. */
class CountingSink : public InstrSink
{
  public:
    void consume(const Instr&) override { ++total; }

    std::uint64_t total = 0;
};

} // namespace eve

#endif // EVE_ISA_INSTR_HH
