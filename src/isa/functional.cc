#include "isa/functional.hh"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/log.hh"

namespace eve
{

std::int32_t
ByteMem::load32(Addr addr) const
{
    check(addr);
    std::int32_t v;
    std::memcpy(&v, bytes.data() + addr, 4);
    return v;
}

void
ByteMem::store32(Addr addr, std::int32_t value)
{
    check(addr);
    std::memcpy(bytes.data() + addr, &value, 4);
}

std::int32_t*
ByteMem::wordPtr(Addr addr)
{
    check(addr);
    return reinterpret_cast<std::int32_t*>(bytes.data() + addr);
}

const std::int32_t*
ByteMem::wordPtr(Addr addr) const
{
    check(addr);
    return reinterpret_cast<const std::int32_t*>(bytes.data() + addr);
}

void
ByteMem::check(Addr addr) const
{
    if (addr + 4 > bytes.size())
        panic("ByteMem: access at 0x%llx beyond size 0x%llx",
              (unsigned long long)addr, (unsigned long long)bytes.size());
}

VecMachine::VecMachine(ByteMem& mem, std::uint32_t vlmax)
    : mem(mem), hwVl(vlmax),
      vregs(32, std::vector<std::int32_t>(vlmax, 0))
{
}

std::int32_t
VecMachine::elem(unsigned reg, std::uint32_t idx) const
{
    if (reg >= 32 || idx >= hwVl)
        panic("VecMachine::elem: v%u[%u] out of range", reg, idx);
    return vregs[reg][idx];
}

void
VecMachine::setElem(unsigned reg, std::uint32_t idx, std::int32_t value)
{
    if (reg >= 32 || idx >= hwVl)
        panic("VecMachine::setElem: v%u[%u] out of range", reg, idx);
    vregs[reg][idx] = value;
}

VecMachineState
VecMachine::saveState() const
{
    VecMachineState state;
    state.vlmax = hwVl;
    state.vl = vl;
    state.scalarResult = scalarResult;
    state.vregs = vregs;
    return state;
}

void
VecMachine::restoreState(const VecMachineState& state)
{
    if (state.vlmax != hwVl || state.vregs.size() != vregs.size())
        panic("VecMachine::restoreState: snapshot shape (vlmax %u, "
              "%zu regs) does not match machine (vlmax %u, %zu regs)",
              state.vlmax, state.vregs.size(), hwVl, vregs.size());
    for (const auto& reg : state.vregs)
        if (reg.size() != hwVl)
            panic("VecMachine::restoreState: register width %zu != "
                  "vlmax %u",
                  reg.size(), hwVl);
    vl = state.vl;
    scalarResult = state.scalarResult;
    vregs = state.vregs;
}

bool
VecMachine::active(const Instr& instr, std::uint32_t i) const
{
    // vmerge is inherently governed by v0 (its selector); the masked
    // flag adds nothing (RVV has no separately-masked vmerge form).
    if (instr.op == Op::VMerge)
        return true;
    return !instr.masked || (vregs[0][i] & 1);
}

namespace
{

std::int32_t
divide(std::int32_t a, std::int32_t b)
{
    if (b == 0)
        return -1;
    if (a == std::numeric_limits<std::int32_t>::min() && b == -1)
        return a;
    return a / b;
}

std::int32_t
remainder(std::int32_t a, std::int32_t b)
{
    if (b == 0)
        return a;
    if (a == std::numeric_limits<std::int32_t>::min() && b == -1)
        return 0;
    return a % b;
}

std::uint32_t
asU(std::int32_t v)
{
    return static_cast<std::uint32_t>(v);
}

std::int32_t
asS(std::uint32_t v)
{
    return static_cast<std::int32_t>(v);
}

} // namespace

void
VecMachine::consume(const Instr& instr)
{
    if (!isVectorOp(instr.op))
        return;

    const std::uint32_t n =
        opClass(instr.op) == OpClass::VecCtrl
            ? std::min<std::uint32_t>(instr.vl, hwVl)
            : instr.vl;
    if (n > hwVl)
        panic("VecMachine: vl %u exceeds vlmax %u for %s", n, hwVl,
              std::string(opName(instr.op)).c_str());

    auto& dst = vregs[instr.dst];
    const auto& s1 = vregs[instr.src1];
    const auto& s2 = vregs[instr.src2];
    const std::int32_t sx = static_cast<std::int32_t>(instr.imm);
    auto rhs = [&](std::uint32_t i) {
        return instr.usesScalar ? sx : s2[i];
    };

    switch (instr.op) {
      case Op::VSetVl:
        vl = std::min<std::uint32_t>(std::uint32_t(instr.imm), hwVl);
        return;
      case Op::VMfence:
        return;
      case Op::VMvXS:
        scalarResult = s1[0];
        return;

      case Op::VMvVX:
        for (std::uint32_t i = 0; i < n; ++i)
            if (active(instr, i))
                dst[i] = sx;
        return;
      case Op::VId:
        for (std::uint32_t i = 0; i < n; ++i)
            if (active(instr, i))
                dst[i] = asS(i);
        return;

      case Op::VLoad:
        for (std::uint32_t i = 0; i < n; ++i)
            if (active(instr, i))
                dst[i] = mem.load32(instr.addr + Addr(i) * 4);
        return;
      case Op::VLoadStrided:
        for (std::uint32_t i = 0; i < n; ++i)
            if (active(instr, i))
                dst[i] = mem.load32(instr.addr +
                                    Addr(std::int64_t(i) * instr.stride));
        return;
      case Op::VLoadIndexed:
        if (!instr.indices)
            panic("VecMachine: indexed load without indices");
        for (std::uint32_t i = 0; i < n; ++i)
            if (active(instr, i))
                dst[i] = mem.load32(instr.addr + instr.indices[i]);
        return;
      case Op::VStore:
        for (std::uint32_t i = 0; i < n; ++i)
            if (active(instr, i))
                mem.store32(instr.addr + Addr(i) * 4, s1[i]);
        return;
      case Op::VStoreStrided:
        for (std::uint32_t i = 0; i < n; ++i)
            if (active(instr, i))
                mem.store32(instr.addr + Addr(std::int64_t(i) * instr.stride),
                            s1[i]);
        return;
      case Op::VStoreIndexed:
        if (!instr.indices)
            panic("VecMachine: indexed store without indices");
        for (std::uint32_t i = 0; i < n; ++i)
            if (active(instr, i))
                mem.store32(instr.addr + instr.indices[i], s1[i]);
        return;

      case Op::VSlide1Up: {
        // Process downward so in-place src==dst behaves like hardware.
        for (std::uint32_t i = n; i-- > 1;)
            if (active(instr, i))
                dst[i] = s1[i - 1];
        if (active(instr, 0))
            dst[0] = sx;
        return;
      }
      case Op::VSlide1Down: {
        for (std::uint32_t i = 0; i + 1 < n; ++i)
            if (active(instr, i))
                dst[i] = s1[i + 1];
        if (n > 0 && active(instr, n - 1))
            dst[n - 1] = sx;
        return;
      }
      case Op::VSlideUp: {
        const std::uint32_t off = std::uint32_t(instr.imm);
        for (std::uint32_t i = n; i-- > 0;) {
            if (i < off)
                break;
            if (active(instr, i))
                dst[i] = s1[i - off];
        }
        return;
      }
      case Op::VSlideDown: {
        const std::uint32_t off = std::uint32_t(instr.imm);
        for (std::uint32_t i = 0; i < n; ++i)
            if (active(instr, i))
                dst[i] = (i + off < n) ? s1[i + off] : 0;
        return;
      }
      case Op::VRgather: {
        std::vector<std::int32_t> tmp(n);
        for (std::uint32_t i = 0; i < n; ++i) {
            std::uint32_t sel = instr.usesScalar ? asU(sx) : asU(s2[i]);
            tmp[i] = (sel < n) ? s1[sel] : 0;
        }
        for (std::uint32_t i = 0; i < n; ++i)
            if (active(instr, i))
                dst[i] = tmp[i];
        return;
      }

      case Op::VIota: {
        // Prefix count of set bits in src1's mask (exclusive scan),
        // written to active destination elements.
        std::int32_t running = 0;
        for (std::uint32_t i = 0; i < n; ++i) {
            if (active(instr, i))
                dst[i] = running;
            if (s1[i] & 1)
                ++running;
        }
        return;
      }

      case Op::VPopc: {
        std::int32_t count = 0;
        for (std::uint32_t i = 0; i < n; ++i)
            if (active(instr, i) && (s1[i] & 1))
                ++count;
        dst[0] = count;
        return;
      }

      case Op::VFirst: {
        std::int32_t first = -1;
        for (std::uint32_t i = 0; i < n; ++i)
            if (active(instr, i) && (s1[i] & 1)) {
                first = asS(i);
                break;
            }
        dst[0] = first;
        return;
      }

      case Op::VRedSum:
      case Op::VRedMin:
      case Op::VRedMax: {
        std::int32_t acc = s2[0];
        for (std::uint32_t i = 0; i < n; ++i) {
            if (!active(instr, i))
                continue;
            switch (instr.op) {
              case Op::VRedSum:
                acc = asS(asU(acc) + asU(s1[i]));
                break;
              case Op::VRedMin:
                acc = std::min(acc, s1[i]);
                break;
              default:
                acc = std::max(acc, s1[i]);
                break;
            }
        }
        dst[0] = acc;
        return;
      }

      default:
        break;
    }

    // Element-wise binary forms.
    for (std::uint32_t i = 0; i < n; ++i) {
        if (!active(instr, i))
            continue;
        const std::int32_t a = s1[i];
        const std::int32_t b = rhs(i);
        std::int32_t r;
        switch (instr.op) {
          case Op::VAdd:   r = asS(asU(a) + asU(b)); break;
          case Op::VSub:   r = asS(asU(a) - asU(b)); break;
          case Op::VRsub:  r = asS(asU(b) - asU(a)); break;
          case Op::VAnd:   r = a & b; break;
          case Op::VOr:    r = a | b; break;
          case Op::VXor:   r = a ^ b; break;
          case Op::VSll:   r = asS(asU(a) << (asU(b) & 31)); break;
          case Op::VSrl:   r = asS(asU(a) >> (asU(b) & 31)); break;
          case Op::VSra:   r = a >> (asU(b) & 31); break;
          case Op::VMin:   r = std::min(a, b); break;
          case Op::VMax:   r = std::max(a, b); break;
          case Op::VMinu:  r = asS(std::min(asU(a), asU(b))); break;
          case Op::VMaxu:  r = asS(std::max(asU(a), asU(b))); break;
          case Op::VMul:   r = asS(asU(a) * asU(b)); break;
          case Op::VMulh:
            r = asS(std::uint32_t(
                (std::int64_t(a) * std::int64_t(b)) >> 32));
            break;
          case Op::VMacc:  r = asS(asU(dst[i]) + asU(a) * asU(b)); break;
          case Op::VDiv:   r = divide(a, b); break;
          case Op::VDivu:
            r = asS(asU(b) == 0 ? 0xffffffffu : asU(a) / asU(b));
            break;
          case Op::VRem:   r = remainder(a, b); break;
          case Op::VRemu:  r = asS(asU(b) == 0 ? asU(a) : asU(a) % asU(b));
            break;
          case Op::VMseq:  r = (a == b); break;
          case Op::VMsne:  r = (a != b); break;
          case Op::VMslt:  r = (a < b); break;
          case Op::VMsle:  r = (a <= b); break;
          case Op::VMsgt:  r = (a > b); break;
          case Op::VMand:  r = (a & b) & 1; break;
          case Op::VMor:   r = (a | b) & 1; break;
          case Op::VMxor:  r = (a ^ b) & 1; break;
          case Op::VMandn: r = (a & ~b) & 1; break;
          case Op::VMerge:
            // vmerge.vvm: dst = v0.mask[i] ? src1 : src2 (always uses
            // v0 as the selector; the masked flag is implied).
            r = (vregs[0][i] & 1) ? a : b;
            break;
          default:
            panic("VecMachine: unhandled opcode %s",
                  std::string(opName(instr.op)).c_str());
        }
        dst[i] = r;
    }
}

} // namespace eve
