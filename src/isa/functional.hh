/**
 * @file
 * Reference functional semantics for the vector ISA.
 *
 * VecMachine executes the vector instruction stream with plain C++
 * semantics against a flat byte memory. It is the golden model the
 * bit-accurate EVE SRAM executor is cross-checked against, and it is
 * also what the workload self-checks run on.
 */

#ifndef EVE_ISA_FUNCTIONAL_HH
#define EVE_ISA_FUNCTIONAL_HH

#include <cstdint>
#include <vector>

#include "isa/instr.hh"

namespace eve
{

/** Flat little-endian byte memory with bounds checking. */
class ByteMem
{
  public:
    explicit ByteMem(std::size_t size_bytes = 0) : bytes(size_bytes) {}

    void resize(std::size_t size_bytes) { bytes.resize(size_bytes); }

    std::size_t size() const { return bytes.size(); }

    std::int32_t load32(Addr addr) const;
    void store32(Addr addr, std::int32_t value);

    /** Typed view helpers for workload setup. */
    std::int32_t* wordPtr(Addr addr);
    const std::int32_t* wordPtr(Addr addr) const;

    /** Whole-image access (checkpoint serialization). */
    std::vector<std::uint8_t>& data() { return bytes; }
    const std::vector<std::uint8_t>& data() const { return bytes; }

  private:
    void check(Addr addr) const;

    std::vector<std::uint8_t> bytes;
};

/** Snapshot of a VecMachine's architectural state (checkpoints). */
struct VecMachineState
{
    std::uint32_t vlmax = 0;
    std::uint32_t vl = 0;
    std::int32_t scalarResult = 0;
    std::vector<std::vector<std::int32_t>> vregs;
};

/**
 * Functional vector machine: 32 vector registers of 32-bit elements.
 *
 * Mask semantics follow RVV with v0 as the mask register: element i is
 * active iff bit 0 of v0[i] is set. Compares write 0/1 per element.
 * Reductions write their result into element 0 of the destination,
 * seeded with element 0 of src2.
 */
class VecMachine : public InstrSink
{
  public:
    /**
     * @param mem     memory the machine loads from / stores to
     * @param vlmax   hardware vector length (register capacity)
     */
    VecMachine(ByteMem& mem, std::uint32_t vlmax);

    void consume(const Instr& instr) override;

    /** Read element @p idx of vector register @p reg. */
    std::int32_t elem(unsigned reg, std::uint32_t idx) const;

    /** Write element @p idx of vector register @p reg (tests only). */
    void setElem(unsigned reg, std::uint32_t idx, std::int32_t value);

    std::uint32_t vlmax() const { return hwVl; }

    /** Granted vl of the last VSetVl. */
    std::uint32_t currentVl() const { return vl; }

    /** Value captured by the last VMvXS. */
    std::int32_t lastScalarResult() const { return scalarResult; }

    /** Snapshot the architectural state (checkpoint capture). */
    VecMachineState saveState() const;

    /**
     * Install a snapshot; panics on a vlmax or register-shape
     * mismatch (a checkpoint from a differently-configured machine).
     */
    void restoreState(const VecMachineState& state);

  private:
    bool active(const Instr& instr, std::uint32_t i) const;

    ByteMem& mem;
    std::uint32_t hwVl;
    std::uint32_t vl = 0;
    std::int32_t scalarResult = 0;
    std::vector<std::vector<std::int32_t>> vregs;
};

} // namespace eve

#endif // EVE_ISA_FUNCTIONAL_HH
