/**
 * @file
 * Opcodes of the simulated instruction stream.
 *
 * The trace format carries both scalar bookkeeping instructions and
 * vector instructions from a next-generation vector ISA modelled on
 * the 32-bit integer subset of RISC-V RVV. Every opcode is classified
 * into one of the OpClass categories, which drive both the timing
 * models and the Table IV instruction-mix characterization.
 */

#ifndef EVE_ISA_OP_HH
#define EVE_ISA_OP_HH

#include <cstdint>
#include <string_view>

namespace eve
{

/** All opcodes understood by the timing and functional models. */
enum class Op : std::uint8_t
{
    // Scalar trace instructions.
    SAlu,       ///< scalar integer ALU (address arithmetic, compares)
    SMul,       ///< scalar integer multiply/divide
    SLoad,      ///< scalar load
    SStore,     ///< scalar store
    SBranch,    ///< scalar conditional branch (loop back-edges)

    // Vector configuration / control.
    VSetVl,     ///< set vector length (returns granted vl)
    VMfence,    ///< vector memory fence (scalar-vector ordering)
    VMvXS,      ///< move element 0 to the scalar core (writeback)

    // Vector integer ALU.
    VAdd, VSub, VRsub,
    VAnd, VOr, VXor,
    VSll, VSrl, VSra,
    VMin, VMax, VMinu, VMaxu,

    // Vector integer multiply / divide.
    VMul, VMulh, VMacc,
    VDiv, VDivu, VRem, VRemu,

    // Vector compares (write a 0/1 mask into the destination).
    VMseq, VMsne, VMslt, VMsle, VMsgt,

    // Mask-register logical operations.
    VMand, VMor, VMxor, VMandn,

    // Predicated select.
    VMerge,

    // Cross-element operations.
    VMvVX,      ///< broadcast a scalar into all elements
    VId,        ///< write element indices 0..vl-1
    VIota,      ///< prefix count of set mask bits (viota.m)
    VSlide1Up, VSlide1Down,
    VSlideUp, VSlideDown,
    VRgather,

    // Reductions.
    VRedSum, VRedMin, VRedMax,
    VPopc,      ///< population count of a mask (vpopc.m)
    VFirst,     ///< index of the first set mask bit, -1 if none

    // Vector memory.
    VLoad,          ///< unit-stride load
    VLoadStrided,   ///< constant-stride load
    VLoadIndexed,   ///< indexed (gather) load
    VStore,         ///< unit-stride store
    VStoreStrided,  ///< constant-stride store
    VStoreIndexed,  ///< indexed (scatter) store

    NumOps
};

/** Coarse classification used by timing models and characterization. */
enum class OpClass : std::uint8_t
{
    ScalarAlu,
    ScalarMul,
    ScalarLoad,
    ScalarStore,
    ScalarBranch,
    VecCtrl,        ///< vsetvl, vmfence, vmv.x.s
    VecAlu,         ///< integer alu, compares, mask logic, merges
    VecMul,         ///< multiply / divide / macc (iterative in EVE)
    VecXe,          ///< cross-element: slides, gathers, broadcasts
    VecRed,         ///< reductions (handled by the VRU)
    VecMemUnit,     ///< unit-stride loads/stores
    VecMemStride,   ///< constant-stride loads/stores
    VecMemIndex,    ///< indexed loads/stores
};

/** Classify an opcode. */
OpClass opClass(Op op);

/** True iff the opcode is a vector instruction. */
bool isVectorOp(Op op);

/** True iff the opcode reads or writes memory. */
bool isMemOp(Op op);

/** True iff the opcode is a vector load (any addressing mode). */
bool isVecLoad(Op op);

/** True iff the opcode is a vector store (any addressing mode). */
bool isVecStore(Op op);

/** Human-readable mnemonic. */
std::string_view opName(Op op);

} // namespace eve

#endif // EVE_ISA_OP_HH
