/**
 * @file
 * Retained vector programs, a builder API, the Table IV
 * characterizer, and a disassembler.
 *
 * Workload generators usually stream instructions straight into
 * sinks, but tests and examples want a small retained program they
 * can build once and replay against several machines; Program
 * provides that, owning any index buffers referenced by its
 * instructions.
 */

#ifndef EVE_ISA_PROGRAM_HH
#define EVE_ISA_PROGRAM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/instr.hh"

namespace eve
{

/**
 * A retained sequence of instructions with owned index storage.
 *
 * The builder methods cover the opcode forms used throughout the
 * test-suite and the examples; anything can also be appended as a raw
 * Instr via push().
 */
class Program
{
  public:
    /** Append a raw instruction record. */
    void push(const Instr& instr) { instrs.push_back(instr); }

    /** vsetvl: request @p requested elements. */
    void setVl(std::uint32_t requested);

    /** Vector-vector binary op: dst = op(src1, src2). */
    void vv(Op op, unsigned dst, unsigned src1, unsigned src2,
            std::uint32_t vl, bool masked = false);

    /** Vector-scalar binary op: dst = op(src1, scalar). */
    void vx(Op op, unsigned dst, unsigned src1, std::int64_t scalar,
            std::uint32_t vl, bool masked = false);

    /** Unit-stride load into @p dst from @p addr. */
    void load(unsigned dst, Addr addr, std::uint32_t vl,
              bool masked = false);

    /** Unit-stride store of @p src to @p addr. */
    void store(unsigned src, Addr addr, std::uint32_t vl,
               bool masked = false);

    /** Constant-stride load. */
    void loadStrided(unsigned dst, Addr addr, std::int64_t stride,
                     std::uint32_t vl, bool masked = false);

    /** Constant-stride store. */
    void storeStrided(unsigned src, Addr addr, std::int64_t stride,
                      std::uint32_t vl, bool masked = false);

    /** Indexed (gather) load; @p offsets are byte offsets from addr. */
    void loadIndexed(unsigned dst, Addr addr,
                     std::vector<std::uint32_t> offsets,
                     bool masked = false);

    /** Indexed (scatter) store. */
    void storeIndexed(unsigned src, Addr addr,
                      std::vector<std::uint32_t> offsets,
                      bool masked = false);

    /** Replay the program into a sink. */
    void replay(InstrSink& sink) const;

    const std::vector<Instr>& instructions() const { return instrs; }

    std::size_t size() const { return instrs.size(); }

  private:
    std::vector<Instr> instrs;
    // Owned storage backing Instr::indices pointers. deque-like
    // stability is required, hence unique_ptr per buffer.
    std::vector<std::unique_ptr<std::vector<std::uint32_t>>> indexBufs;
};

/**
 * Instruction-mix characterizer producing the Table IV columns.
 *
 * Counts dynamic instructions, vector-instruction fraction, the
 * per-category mix of the *vector* instructions, total operations
 * (scalar instructions + vector instructions x active vl), and
 * arithmetic intensity of the vector unit.
 */
class Characterizer : public InstrSink
{
  public:
    void consume(const Instr& instr) override;

    std::uint64_t dynInstrs = 0;     ///< all dynamic instructions
    std::uint64_t vecInstrs = 0;     ///< vector instructions
    std::uint64_t predInstrs = 0;    ///< masked vector instructions

    std::uint64_t ctrl = 0;   ///< vector control instructions
    std::uint64_t ialu = 0;   ///< vector integer alu
    std::uint64_t imul = 0;   ///< vector integer mul/div
    std::uint64_t xe = 0;     ///< cross-element + reductions
    std::uint64_t us = 0;     ///< unit-stride memory
    std::uint64_t st = 0;     ///< strided memory
    std::uint64_t idx = 0;    ///< indexed memory

    std::uint64_t totalOps = 0;   ///< scalar instrs + vec instrs * vl
    std::uint64_t vecOps = 0;     ///< vec instrs * vl
    std::uint64_t vecMathOps = 0; ///< arithmetic element operations
    std::uint64_t vecMemOps = 0;  ///< memory element operations

    /** Percentage of dynamic instructions that are vector. */
    double vecInstrPct() const;

    /** Percentage of operations performed by the vector unit. */
    double vecOpPct() const;

    /** Logical parallelism: total ops / dynamic instructions. */
    double logicalParallelism() const;

    /** Arithmetic intensity: math element ops / memory element ops. */
    double arithIntensity() const;
};

/** Render one instruction as assembly-like text. */
std::string disassemble(const Instr& instr);

} // namespace eve

#endif // EVE_ISA_PROGRAM_HH
