#include "isa/program.hh"

#include <sstream>

#include "common/log.hh"

namespace eve
{

void
Program::setVl(std::uint32_t requested)
{
    Instr i;
    i.op = Op::VSetVl;
    i.imm = requested;
    i.vl = requested;
    instrs.push_back(i);
}

void
Program::vv(Op op, unsigned dst, unsigned src1, unsigned src2,
            std::uint32_t vl, bool masked)
{
    Instr i;
    i.op = op;
    i.dst = std::uint8_t(dst);
    i.src1 = std::uint8_t(src1);
    i.src2 = std::uint8_t(src2);
    i.vl = vl;
    i.masked = masked;
    instrs.push_back(i);
}

void
Program::vx(Op op, unsigned dst, unsigned src1, std::int64_t scalar,
            std::uint32_t vl, bool masked)
{
    Instr i;
    i.op = op;
    i.dst = std::uint8_t(dst);
    i.src1 = std::uint8_t(src1);
    i.usesScalar = true;
    i.imm = scalar;
    i.vl = vl;
    i.masked = masked;
    instrs.push_back(i);
}

void
Program::load(unsigned dst, Addr addr, std::uint32_t vl, bool masked)
{
    Instr i;
    i.op = Op::VLoad;
    i.dst = std::uint8_t(dst);
    i.addr = addr;
    i.vl = vl;
    i.masked = masked;
    instrs.push_back(i);
}

void
Program::store(unsigned src, Addr addr, std::uint32_t vl, bool masked)
{
    Instr i;
    i.op = Op::VStore;
    i.src1 = std::uint8_t(src);
    i.addr = addr;
    i.vl = vl;
    i.masked = masked;
    instrs.push_back(i);
}

void
Program::loadStrided(unsigned dst, Addr addr, std::int64_t stride,
                     std::uint32_t vl, bool masked)
{
    Instr i;
    i.op = Op::VLoadStrided;
    i.dst = std::uint8_t(dst);
    i.addr = addr;
    i.stride = stride;
    i.vl = vl;
    i.masked = masked;
    instrs.push_back(i);
}

void
Program::storeStrided(unsigned src, Addr addr, std::int64_t stride,
                      std::uint32_t vl, bool masked)
{
    Instr i;
    i.op = Op::VStoreStrided;
    i.src1 = std::uint8_t(src);
    i.addr = addr;
    i.stride = stride;
    i.vl = vl;
    i.masked = masked;
    instrs.push_back(i);
}

void
Program::loadIndexed(unsigned dst, Addr addr,
                     std::vector<std::uint32_t> offsets, bool masked)
{
    indexBufs.push_back(std::make_unique<std::vector<std::uint32_t>>(
        std::move(offsets)));
    Instr i;
    i.op = Op::VLoadIndexed;
    i.dst = std::uint8_t(dst);
    i.addr = addr;
    i.vl = std::uint32_t(indexBufs.back()->size());
    i.indices = indexBufs.back()->data();
    i.masked = masked;
    instrs.push_back(i);
}

void
Program::storeIndexed(unsigned src, Addr addr,
                      std::vector<std::uint32_t> offsets, bool masked)
{
    indexBufs.push_back(std::make_unique<std::vector<std::uint32_t>>(
        std::move(offsets)));
    Instr i;
    i.op = Op::VStoreIndexed;
    i.src1 = std::uint8_t(src);
    i.addr = addr;
    i.vl = std::uint32_t(indexBufs.back()->size());
    i.indices = indexBufs.back()->data();
    i.masked = masked;
    instrs.push_back(i);
}

void
Program::replay(InstrSink& sink) const
{
    for (const auto& i : instrs)
        sink.consume(i);
}

void
Characterizer::consume(const Instr& instr)
{
    ++dynInstrs;
    if (!isVectorOp(instr.op)) {
        ++totalOps;
        return;
    }

    ++vecInstrs;
    if (instr.masked)
        ++predInstrs;

    std::uint64_t elems = instr.vl;
    switch (opClass(instr.op)) {
      case OpClass::VecCtrl:
        ++ctrl;
        elems = 1;
        break;
      case OpClass::VecAlu:
        ++ialu;
        vecMathOps += elems;
        break;
      case OpClass::VecMul:
        ++imul;
        vecMathOps += elems;
        break;
      case OpClass::VecXe:
      case OpClass::VecRed:
        ++xe;
        vecMathOps += elems;
        break;
      case OpClass::VecMemUnit:
        ++us;
        vecMemOps += elems;
        break;
      case OpClass::VecMemStride:
        ++st;
        vecMemOps += elems;
        break;
      case OpClass::VecMemIndex:
        ++idx;
        vecMemOps += elems;
        break;
      default:
        panic("Characterizer: unexpected class for %s",
              std::string(opName(instr.op)).c_str());
    }

    totalOps += elems;
    vecOps += elems;
}

double
Characterizer::vecInstrPct() const
{
    return dynInstrs ? 100.0 * double(vecInstrs) / double(dynInstrs) : 0.0;
}

double
Characterizer::vecOpPct() const
{
    return totalOps ? 100.0 * double(vecOps) / double(totalOps) : 0.0;
}

double
Characterizer::logicalParallelism() const
{
    return dynInstrs ? double(totalOps) / double(dynInstrs) : 0.0;
}

double
Characterizer::arithIntensity() const
{
    return vecMemOps ? double(vecMathOps) / double(vecMemOps) : 0.0;
}

std::string
disassemble(const Instr& instr)
{
    std::ostringstream os;
    os << opName(instr.op);
    if (!isVectorOp(instr.op)) {
        if (isMemOp(instr.op))
            os << " 0x" << std::hex << instr.addr << std::dec;
        return os.str();
    }
    switch (opClass(instr.op)) {
      case OpClass::VecCtrl:
        if (instr.op == Op::VSetVl)
            os << " vl=" << instr.vl;
        else if (instr.op == Op::VMvXS)
            os << " x, v" << int(instr.src1);
        break;
      case OpClass::VecMemUnit:
      case OpClass::VecMemStride:
      case OpClass::VecMemIndex:
        os << (isVecLoad(instr.op) ? " v" : " v")
           << int(isVecLoad(instr.op) ? instr.dst : instr.src1)
           << ", 0x" << std::hex << instr.addr << std::dec;
        if (opClass(instr.op) == OpClass::VecMemStride)
            os << ", stride=" << instr.stride;
        os << ", vl=" << instr.vl;
        break;
      default:
        os << " v" << int(instr.dst) << ", v" << int(instr.src1);
        if (instr.usesScalar)
            os << ", x(" << instr.imm << ")";
        else
            os << ", v" << int(instr.src2);
        os << ", vl=" << instr.vl;
        break;
    }
    if (instr.masked)
        os << ", v0.t";
    return os.str();
}

} // namespace eve
