#include "isa/op.hh"

#include "common/log.hh"

namespace eve
{

OpClass
opClass(Op op)
{
    switch (op) {
      case Op::SAlu:
        return OpClass::ScalarAlu;
      case Op::SMul:
        return OpClass::ScalarMul;
      case Op::SLoad:
        return OpClass::ScalarLoad;
      case Op::SStore:
        return OpClass::ScalarStore;
      case Op::SBranch:
        return OpClass::ScalarBranch;
      case Op::VSetVl:
      case Op::VMfence:
      case Op::VMvXS:
        return OpClass::VecCtrl;
      case Op::VAdd:
      case Op::VSub:
      case Op::VRsub:
      case Op::VAnd:
      case Op::VOr:
      case Op::VXor:
      case Op::VSll:
      case Op::VSrl:
      case Op::VSra:
      case Op::VMin:
      case Op::VMax:
      case Op::VMinu:
      case Op::VMaxu:
      case Op::VMseq:
      case Op::VMsne:
      case Op::VMslt:
      case Op::VMsle:
      case Op::VMsgt:
      case Op::VMand:
      case Op::VMor:
      case Op::VMxor:
      case Op::VMandn:
      case Op::VMerge:
        return OpClass::VecAlu;
      case Op::VMul:
      case Op::VMulh:
      case Op::VMacc:
      case Op::VDiv:
      case Op::VDivu:
      case Op::VRem:
      case Op::VRemu:
        return OpClass::VecMul;
      case Op::VMvVX:
      case Op::VId:
      case Op::VIota:
      case Op::VSlide1Up:
      case Op::VSlide1Down:
      case Op::VSlideUp:
      case Op::VSlideDown:
      case Op::VRgather:
        return OpClass::VecXe;
      case Op::VRedSum:
      case Op::VRedMin:
      case Op::VRedMax:
      case Op::VPopc:
      case Op::VFirst:
        return OpClass::VecRed;
      case Op::VLoad:
      case Op::VStore:
        return OpClass::VecMemUnit;
      case Op::VLoadStrided:
      case Op::VStoreStrided:
        return OpClass::VecMemStride;
      case Op::VLoadIndexed:
      case Op::VStoreIndexed:
        return OpClass::VecMemIndex;
      default:
        panic("opClass: unknown opcode %d", int(op));
    }
}

bool
isVectorOp(Op op)
{
    switch (opClass(op)) {
      case OpClass::ScalarAlu:
      case OpClass::ScalarMul:
      case OpClass::ScalarLoad:
      case OpClass::ScalarStore:
      case OpClass::ScalarBranch:
        return false;
      default:
        return true;
    }
}

bool
isMemOp(Op op)
{
    switch (opClass(op)) {
      case OpClass::ScalarLoad:
      case OpClass::ScalarStore:
      case OpClass::VecMemUnit:
      case OpClass::VecMemStride:
      case OpClass::VecMemIndex:
        return true;
      default:
        return false;
    }
}

bool
isVecLoad(Op op)
{
    return op == Op::VLoad || op == Op::VLoadStrided ||
           op == Op::VLoadIndexed;
}

bool
isVecStore(Op op)
{
    return op == Op::VStore || op == Op::VStoreStrided ||
           op == Op::VStoreIndexed;
}

std::string_view
opName(Op op)
{
    switch (op) {
      case Op::SAlu: return "s.alu";
      case Op::SMul: return "s.mul";
      case Op::SLoad: return "s.load";
      case Op::SStore: return "s.store";
      case Op::SBranch: return "s.branch";
      case Op::VSetVl: return "vsetvl";
      case Op::VMfence: return "vmfence";
      case Op::VMvXS: return "vmv.x.s";
      case Op::VAdd: return "vadd";
      case Op::VSub: return "vsub";
      case Op::VRsub: return "vrsub";
      case Op::VAnd: return "vand";
      case Op::VOr: return "vor";
      case Op::VXor: return "vxor";
      case Op::VSll: return "vsll";
      case Op::VSrl: return "vsrl";
      case Op::VSra: return "vsra";
      case Op::VMin: return "vmin";
      case Op::VMax: return "vmax";
      case Op::VMinu: return "vminu";
      case Op::VMaxu: return "vmaxu";
      case Op::VMul: return "vmul";
      case Op::VMulh: return "vmulh";
      case Op::VMacc: return "vmacc";
      case Op::VDiv: return "vdiv";
      case Op::VDivu: return "vdivu";
      case Op::VRem: return "vrem";
      case Op::VRemu: return "vremu";
      case Op::VMseq: return "vmseq";
      case Op::VMsne: return "vmsne";
      case Op::VMslt: return "vmslt";
      case Op::VMsle: return "vmsle";
      case Op::VMsgt: return "vmsgt";
      case Op::VMand: return "vmand";
      case Op::VMor: return "vmor";
      case Op::VMxor: return "vmxor";
      case Op::VMandn: return "vmandn";
      case Op::VMerge: return "vmerge";
      case Op::VMvVX: return "vmv.v.x";
      case Op::VId: return "vid";
      case Op::VIota: return "viota";
      case Op::VSlide1Up: return "vslide1up";
      case Op::VSlide1Down: return "vslide1down";
      case Op::VSlideUp: return "vslideup";
      case Op::VSlideDown: return "vslidedown";
      case Op::VRgather: return "vrgather";
      case Op::VRedSum: return "vredsum";
      case Op::VRedMin: return "vredmin";
      case Op::VRedMax: return "vredmax";
      case Op::VPopc: return "vpopc";
      case Op::VFirst: return "vfirst";
      case Op::VLoad: return "vle32";
      case Op::VLoadStrided: return "vlse32";
      case Op::VLoadIndexed: return "vluxei32";
      case Op::VStore: return "vse32";
      case Op::VStoreStrided: return "vsse32";
      case Op::VStoreIndexed: return "vsuxei32";
      default: return "<bad-op>";
    }
}

} // namespace eve
