#include "sim/checkpoint.hh"

#include <cstdio>
#include <cstring>
#include <utility>

#include "common/bits.hh"
#include "common/fs.hh"
#include "common/log.hh"

namespace eve
{

namespace
{

constexpr const char* kCkptMagic = "eve-ckpt-v1";

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  (unsigned long long)v);
    return buf;
}

void
appendU32(std::string& out, std::uint32_t v)
{
    char raw[4];
    std::memcpy(raw, &v, 4);
    out.append(raw, 4);
}

/**
 * Parse "name=1234\n" at @p at; advances @p at past the newline.
 * False on any deviation.
 */
bool
takeField(const std::string& text, std::size_t& at,
          const std::string& name, std::uint64_t& out)
{
    const std::string prefix = name + "=";
    if (text.compare(at, prefix.size(), prefix) != 0)
        return false;
    at += prefix.size();
    const std::size_t nl = text.find('\n', at);
    if (nl == std::string::npos || nl == at)
        return false;
    char* end = nullptr;
    out = std::strtoull(text.c_str() + at, &end, 10);
    if (!end || end != text.c_str() + nl)
        return false;
    at = nl + 1;
    return true;
}

bool
takeLine(const std::string& text, std::size_t& at, std::string& out)
{
    const std::size_t nl = text.find('\n', at);
    if (nl == std::string::npos)
        return false;
    out = text.substr(at, nl - at);
    at = nl + 1;
    return true;
}

} // namespace

CheckpointStore::CheckpointStore(std::string dir, std::string salt)
    : dir(std::move(dir)), salt(std::move(salt))
{
}

std::string
CheckpointStore::pathFor(const std::string& material) const
{
    return dir + "/ck-" + hex16(fnv1a64(material)) + ".ckpt";
}

bool
CheckpointStore::load(const std::string& material,
                      Checkpoint& out) const
{
    const std::string path = pathFor(material);
    std::string text;
    if (!readFile(path, text))
        return false;

    // Parse the header; any deviation quarantines the file.
    auto reject = [&](const char* why) {
        const std::string to = path + ".quarantine";
        renameFile(path, to);
        warn("checkpoint %s: %s; quarantined to %s", path.c_str(),
             why, to.c_str());
        return false;
    };

    std::size_t at = 0;
    std::string line;
    if (!takeLine(text, at, line) || line != kCkptMagic)
        return reject("unrecognized format (bad magic)");
    if (!takeLine(text, at, line) || line.rfind("salt=", 0) != 0)
        return reject("malformed salt line");
    if (line.substr(5) != salt)
        return reject("simulator salt skew (written by a binary "
                      "with different simulated timing)");
    if (!takeLine(text, at, line) || line.rfind("material=", 0) != 0)
        return reject("malformed material line");
    if (line.substr(9) != material)
        return reject("identity-material mismatch (hash collision "
                      "or corrupted header)");

    Checkpoint ck;
    std::uint64_t vl = 0, scalar = 0, vlmax = 0, nregs = 0,
                  mem_bytes = 0;
    if (!takeField(text, at, "position", ck.position) ||
        !takeField(text, at, "vl", vl) ||
        !takeField(text, at, "scalar", scalar) ||
        !takeField(text, at, "vlmax", vlmax) ||
        !takeField(text, at, "vregs", nregs) ||
        !takeField(text, at, "mem_bytes", mem_bytes))
        return reject("malformed header field");
    if (!takeLine(text, at, line) || line != "data")
        return reject("missing data marker");

    const std::size_t reg_bytes = std::size_t(nregs) * vlmax * 4;
    if (text.size() - at != reg_bytes + mem_bytes)
        return reject("payload size mismatch (truncated or torn "
                      "write)");

    ck.machine.vlmax = std::uint32_t(vlmax);
    ck.machine.vl = std::uint32_t(vl);
    ck.machine.scalarResult =
        std::int32_t(std::uint32_t(scalar));
    ck.machine.vregs.assign(
        std::size_t(nregs),
        std::vector<std::int32_t>(std::size_t(vlmax)));
    for (auto& reg : ck.machine.vregs) {
        if (vlmax)
            std::memcpy(reg.data(), text.data() + at, vlmax * 4);
        at += vlmax * 4;
    }
    ck.mem.resize(mem_bytes);
    if (mem_bytes)
        std::memcpy(ck.mem.data(), text.data() + at, mem_bytes);
    out = std::move(ck);
    return true;
}

void
CheckpointStore::save(const std::string& material,
                      const Checkpoint& ck) const
{
    makeDirs(dir);
    std::string out;
    out.reserve(256 +
                ck.machine.vregs.size() * ck.machine.vlmax * 4 +
                ck.mem.size());
    out += kCkptMagic;
    out += "\nsalt=" + salt;
    out += "\nmaterial=" + material;
    out += "\nposition=" + std::to_string(ck.position);
    out += "\nvl=" + std::to_string(ck.machine.vl);
    out += "\nscalar=" +
           std::to_string(std::uint32_t(ck.machine.scalarResult));
    out += "\nvlmax=" + std::to_string(ck.machine.vlmax);
    out += "\nvregs=" + std::to_string(ck.machine.vregs.size());
    out += "\nmem_bytes=" + std::to_string(ck.mem.size());
    out += "\ndata\n";
    for (const auto& reg : ck.machine.vregs)
        for (const std::int32_t v : reg)
            appendU32(out, std::uint32_t(v));
    out.append(reinterpret_cast<const char*>(ck.mem.data()),
               ck.mem.size());
    atomicWriteFile(pathFor(material), out);
}

} // namespace eve
