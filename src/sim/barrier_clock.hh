/**
 * @file
 * Deterministic barrier-synchronized clock for threaded CMP
 * simulation.
 *
 * Each core of a CMP simulation runs on its own thread; the only
 * state they share is the uncore (LLC + DRAM channel). The
 * BarrierClock serializes every uncore access into one global order
 * that depends on nothing but the simulated ticks themselves —
 * lexicographic (tick, core id) — so the simulated timing is
 * byte-identical at any thread count and under any OS scheduling.
 *
 * Protocol: before touching the uncore at simulated tick t, core i
 * calls enter(i, t). The clock clamps the tick monotone per core
 * (t' = max(t, the core's previous grant) — each core's uncore port
 * is in order), publishes t' as core i's clock frontier, and blocks
 * until every other live core j has either finished or published a
 * frontier strictly ahead of t' (ties broken by core id). Frontiers
 * only move forward and every future access of core j is granted at
 * or after frontier[j], so when enter() returns, no access with a
 * smaller (tick, id) can ever be granted — the caller holds the
 * global grant token and may touch the uncore without any further
 * locking. The token is implicitly returned by the core's next
 * enter() (which raises its frontier) or by finish().
 *
 * Deadlock-freedom: among cores blocked in enter(), the one with the
 * least (tick, id) waits only on cores that are still *computing*
 * (their stale frontiers are behind its tick). A computing core
 * eventually calls enter() — publishing a frontier at or above its
 * stale one — or finish(); either resolves the wait. Induction on
 * the least blocked (tick, id) gives global progress.
 *
 * A RunPermits semaphore caps how many core threads actually compute
 * concurrently (--sim-threads). A core blocked in enter() returns its
 * permit so a computing core can use the slot, and re-acquires it
 * once granted; the grant *order* never depends on permits, so the
 * permit count affects wall time only, never simulated timing.
 */

#ifndef EVE_SIM_BARRIER_CLOCK_HH
#define EVE_SIM_BARRIER_CLOCK_HH

#include <condition_variable>
#include <mutex>
#include <vector>

#include "common/types.hh"
#include "mem/mem_object.hh"

namespace eve
{

/** Counting semaphore bounding concurrently computing core threads. */
class RunPermits
{
  public:
    explicit RunPermits(unsigned count) : avail(count) {}

    void
    acquire()
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [this] { return avail > 0; });
        --avail;
    }

    void
    release()
    {
        {
            std::lock_guard<std::mutex> lock(m);
            ++avail;
        }
        cv.notify_one();
    }

  private:
    std::mutex m;
    std::condition_variable cv;
    unsigned avail;
};

/** The deterministic CMP clock (see file comment for the protocol). */
class BarrierClock
{
  public:
    /**
     * @p cores participating cores; @p permits optional semaphore a
     * blocked core releases while waiting (may be null).
     */
    explicit BarrierClock(unsigned cores, RunPermits* permits = nullptr)
        : frontier(cores, 0), done(cores, false), permits(permits)
    {
    }

    /**
     * Block until core @p id holds the global grant token for its
     * next uncore access at simulated tick @p t; returns the granted
     * tick (clamped monotone per core).
     */
    Tick
    enter(unsigned id, Tick t)
    {
        std::unique_lock<std::mutex> lock(m);
        const Tick granted = t > frontier[id] ? t : frontier[id];
        frontier[id] = granted;
        cv.notify_all();
        if (!isLeast(id, granted)) {
            // Return the compute slot while blocked so a running
            // core can make the progress this wait depends on.
            if (permits) {
                lock.unlock();
                permits->release();
                lock.lock();
            }
            cv.wait(lock,
                    [this, id, granted] { return isLeast(id, granted); });
            if (permits) {
                lock.unlock();
                permits->acquire();
            }
        }
        return granted;
    }

    /** Core @p id will make no further uncore accesses. */
    void
    finish(unsigned id)
    {
        {
            std::lock_guard<std::mutex> lock(m);
            done[id] = true;
        }
        cv.notify_all();
    }

  private:
    /** True when (t, id) is least among live frontiers (m held). */
    bool
    isLeast(unsigned id, Tick t) const
    {
        for (unsigned j = 0; j < frontier.size(); ++j) {
            if (j == id || done[j])
                continue;
            if (frontier[j] < t || (frontier[j] == t && j < id))
                return false;
        }
        return true;
    }

    mutable std::mutex m;
    std::condition_variable cv;
    std::vector<Tick> frontier;
    std::vector<bool> done;
    RunPermits* permits;
};

/**
 * A core's private port onto the shared uncore: every access first
 * wins the BarrierClock grant for its (clamped) tick, so the wrapped
 * object sees one globally ordered, deterministic access sequence.
 */
class GatedUncorePort : public MemObject
{
  public:
    GatedUncorePort(MemObject& inner, BarrierClock& clock, unsigned id)
        : inner(inner), clock(clock), id(id)
    {
    }

    Tick
    access(Addr addr, bool is_write, Tick t) override
    {
        const Tick granted = clock.enter(id, t);
        return inner.access(addr, is_write, granted);
    }

    StatGroup& stats() override { return inner.stats(); }

    void resetTiming() override { inner.resetTiming(); }

  private:
    MemObject& inner;
    BarrierClock& clock;
    unsigned id;
};

} // namespace eve

#endif // EVE_SIM_BARRIER_CLOCK_HH
