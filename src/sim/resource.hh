/**
 * @file
 * Resource-reservation timing primitives.
 *
 * The memory system and engine models use reservation-style timing:
 * instead of an event-driven port protocol, each contended hardware
 * resource (cache bank, MSHR, DRAM channel, transpose unit) is
 * modelled by an object that answers "if a request arrives at tick T,
 * when can this resource actually serve it?" and records the
 * occupancy. This is the classic interval-simulation technique and it
 * preserves the two behaviours the paper's results hinge on: finite
 * bandwidth and finite miss-level parallelism.
 *
 * Both primitives keep their occupancy in small flat arrays that
 * never reallocate after construction: PipelinedUnits holds its
 * per-unit free ticks sorted ascending (the earliest-free unit is
 * always the front, and the common single-unit case — every cache
 * bank — is a single compare), and TokenPool keeps in-flight release
 * ticks in a binary min-heap laid out in a pre-reserved vector, so a
 * grant inspects the front and each retire is one sift-down. Grant
 * ticks are identical to the originals — see DESIGN.md "Hot-path
 * invariants & timing parity".
 */

#ifndef EVE_SIM_RESOURCE_HH
#define EVE_SIM_RESOURCE_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"

namespace eve
{

/**
 * A pipelined resource with @p count identical units.
 *
 * Each acquisition occupies one unit for a caller-specified busy time.
 * Requests pick the earliest-free unit; if all units are busy past the
 * arrival tick the request is delayed. This models cache banks, issue
 * ports, DTUs, and the DRAM channel.
 */
class PipelinedUnits
{
  public:
    explicit PipelinedUnits(unsigned count = 1);

    /**
     * Reserve a unit for @p busy ticks starting no earlier than @p t.
     * @return the tick at which the unit actually starts serving.
     *
     * The units are interchangeable, so only the multiset of free
     * ticks matters: consume the front (minimum) slot and re-insert
     * its new free tick at the sorted position.
     */
    Tick
    acquire(Tick t, Tick busy)
    {
        const Tick start = std::max(t, freeAt.front());
        const Tick done = start + busy;
        std::size_t i = 0;
        const std::size_t last = freeAt.size() - 1;
        while (i < last && freeAt[i + 1] < done) {
            freeAt[i] = freeAt[i + 1];
            ++i;
        }
        freeAt[i] = done;
        return start;
    }

    /** Earliest tick at which some unit is free, given arrival @p t. */
    Tick earliestStart(Tick t) const { return std::max(t, freeAt.front()); }

    /** Reset all units to free-at-zero. */
    void reset();

    unsigned count() const { return unsigned(freeAt.size()); }

  private:
    std::vector<Tick> freeAt; ///< sorted ascending; front = earliest
};

/**
 * A pool of tokens held for caller-specified intervals (MSHRs, LSQ
 * entries, outstanding-request credits).
 *
 * Unlike PipelinedUnits, the caller does not know the busy time up
 * front relative to acquisition: it acquires at tick T and declares
 * the release tick explicitly (e.g. when the miss fills).
 */
class TokenPool
{
  public:
    explicit TokenPool(unsigned count = 1);

    /**
     * Acquire a token at or after @p t, releasing it at @p release_fn's
     * result. The functional form lets the caller compute the release
     * time from the actual grant time (e.g. miss latency starts when
     * the MSHR is granted, not when the request arrived).
     *
     * @return the tick at which the token was granted.
     */
    template <typename ReleaseFn>
    Tick
    acquire(Tick t, ReleaseFn release_fn)
    {
        const Tick grant = grantTime(t);
        retire(grant);
        const Tick release = release_fn(grant);
        busy.push_back(release);
        std::push_heap(busy.begin(), busy.end(), std::greater<Tick>{});
        return grant;
    }

    /** Tick at which a token would be granted to an arrival at @p t. */
    Tick
    grantTime(Tick t) const
    {
        if (busy.size() < capacity)
            return t;
        // All tokens busy: the request waits for the earliest release.
        return std::max(t, busy.front());
    }

    /** Number of tokens in flight at tick @p t. */
    unsigned
    inFlight(Tick t)
    {
        retire(t);
        return unsigned(busy.size());
    }

    /** Reset the pool to fully free. */
    void reset() { busy.clear(); }

    unsigned count() const { return capacity; }

  private:
    /** Drop all releases at or before @p t. */
    void
    retire(Tick t)
    {
        while (!busy.empty() && busy.front() <= t) {
            std::pop_heap(busy.begin(), busy.end(), std::greater<Tick>{});
            busy.pop_back();
        }
    }

    unsigned capacity;
    /**
     * Release ticks of in-flight tokens, kept as a binary min-heap
     * (front = earliest release). Every acquire retires all releases
     * at or before its grant — when the pool is full the grant is at
     * least the minimum release, so at least one entry drops — which
     * bounds the size by the capacity. The vector is reserved to
     * capacity+1 at construction and never reallocates afterwards.
     */
    std::vector<Tick> busy;
};

} // namespace eve

#endif // EVE_SIM_RESOURCE_HH
