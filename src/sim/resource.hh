/**
 * @file
 * Resource-reservation timing primitives.
 *
 * The memory system and engine models use reservation-style timing:
 * instead of an event-driven port protocol, each contended hardware
 * resource (cache bank, MSHR, DRAM channel, transpose unit) is
 * modelled by an object that answers "if a request arrives at tick T,
 * when can this resource actually serve it?" and records the
 * occupancy. This is the classic interval-simulation technique and it
 * preserves the two behaviours the paper's results hinge on: finite
 * bandwidth and finite miss-level parallelism.
 */

#ifndef EVE_SIM_RESOURCE_HH
#define EVE_SIM_RESOURCE_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace eve
{

/**
 * A pipelined resource with @p count identical units.
 *
 * Each acquisition occupies one unit for a caller-specified busy time.
 * Requests pick the earliest-free unit; if all units are busy past the
 * arrival tick the request is delayed. This models cache banks, issue
 * ports, DTUs, and the DRAM channel.
 */
class PipelinedUnits
{
  public:
    explicit PipelinedUnits(unsigned count = 1);

    /**
     * Reserve a unit for @p busy ticks starting no earlier than @p t.
     * @return the tick at which the unit actually starts serving.
     */
    Tick acquire(Tick t, Tick busy);

    /** Earliest tick at which some unit is free, given arrival @p t. */
    Tick earliestStart(Tick t) const;

    /** Reset all units to free-at-zero. */
    void reset();

    unsigned count() const { return unsigned(freeAt.size()); }

  private:
    std::vector<Tick> freeAt;
};

/**
 * A pool of tokens held for caller-specified intervals (MSHRs, LSQ
 * entries, outstanding-request credits).
 *
 * Unlike PipelinedUnits, the caller does not know the busy time up
 * front relative to acquisition: it acquires at tick T and declares
 * the release tick explicitly (e.g. when the miss fills).
 */
class TokenPool
{
  public:
    explicit TokenPool(unsigned count = 1);

    /**
     * Acquire a token at or after @p t, releasing it at @p release_fn's
     * result. The functional form lets the caller compute the release
     * time from the actual grant time (e.g. miss latency starts when
     * the MSHR is granted, not when the request arrived).
     *
     * @return the tick at which the token was granted.
     */
    template <typename ReleaseFn>
    Tick
    acquire(Tick t, ReleaseFn release_fn)
    {
        Tick grant = grantTime(t);
        retire(grant);
        Tick release = release_fn(grant);
        busy.push(release);
        return grant;
    }

    /** Tick at which a token would be granted to an arrival at @p t. */
    Tick grantTime(Tick t) const;

    /** Number of tokens in flight at tick @p t. */
    unsigned inFlight(Tick t);

    /** Reset the pool to fully free. */
    void reset();

    unsigned count() const { return capacity; }

  private:
    /** Drop all releases at or before @p t. */
    void retire(Tick t);

    unsigned capacity;
    // Min-heap of release ticks of in-flight tokens.
    std::priority_queue<Tick, std::vector<Tick>, std::greater<Tick>> busy;
};

} // namespace eve

#endif // EVE_SIM_RESOURCE_HH
