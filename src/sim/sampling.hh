/**
 * @file
 * Interval sampling over the two-level simulation API.
 *
 * Paper-scale inputs (mmult 1024^3, ~8.6 G dynamic instructions) are
 * too slow to push through the detailed timing model record by
 * record. The classic remedy (SMARTS / SimPoint-style systematic
 * sampling) fits the InstrSink/Clocked split exactly: the workload
 * generator keeps emitting its full dynamic trace, but only a
 * strided subset of *intervals* reaches the timing model, with a
 * short detailed warmup ahead of every measured interval. The rest
 * of the stream is fast-forwarded: it still drives the functional
 * VecMachine (architectural state must stay exact) and a lightweight
 * WarmupFilter that tracks the recently-touched cache lines, but
 * skips the timing model entirely — near-memcpy speed.
 *
 * Stream layout per period (period = interval * stride records):
 *
 *     [ measured ][ fast-forward (period - warmup - interval) ][ warmup ]
 *
 * Each period's tail warmup primes the *next* period's measured
 * window, and the first window measures from simulation start — so a
 * stream shorter than one period is simply simulated in full detail
 * and the "extrapolation" is exact. At each fast-forward -> detailed
 * boundary the WarmupFilter's recency image is installed into the
 * cache hierarchy (coldest line first, so the final LRU order
 * matches recency), then the warmup records run through the timing
 * model un-measured, then the measured interval's cycles are taken
 * as the delta of the model's finalTick() frontier. Total time
 * extrapolates as
 *
 *     est_ticks = measured_ticks * (total_records / measured_records)
 *
 * Everything here is deterministic: the phase schedule depends only
 * on the record position, the filter is a plain recency list, and
 * sampled runs always consume the stream inline (single-consumer),
 * so the same SamplingConfig reproduces byte-identical results at
 * any sim-thread count.
 */

#ifndef EVE_SIM_SAMPLING_HH
#define EVE_SIM_SAMPLING_HH

#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/instr.hh"

namespace eve
{

class Cache;
class TimingModel;

/**
 * Sampling schedule. Disabled (exact simulation) when interval == 0;
 * an enabled config always satisfies stride >= 1 and
 * warmup + interval <= interval * stride (the period must fit its
 * warmup and measured windows).
 */
struct SamplingConfig
{
    std::uint64_t interval = 0; ///< measured records per period (0 = off)
    std::uint64_t warmup = 0;   ///< detailed-warmup records per period
    std::uint64_t stride = 1;   ///< period = interval * stride

    bool enabled() const { return interval != 0; }
    std::uint64_t period() const { return interval * stride; }
};

/** The defaults the --sample flag's "default" spelling selects. */
SamplingConfig defaultSampling();

/**
 * Canonical serialization ("interval=N;warmup=N;stride=N"), the
 * content-addressing identity of a sampling schedule: job keys,
 * checkpoint identities, and the distributed protocol all embed it.
 * A disabled config canonicalizes to "" so exact jobs keep their
 * historical keys.
 */
std::string samplingCanonical(const SamplingConfig& cfg);

/**
 * Strict inverse of samplingCanonical(): "" parses as disabled, and
 * any other text must round-trip exactly. Returns false (leaving
 * @p out untouched) on any deviation or on an invalid schedule.
 */
bool parseSamplingCanonical(const std::string& text,
                            SamplingConfig& out);

/**
 * Parse a user-facing --sample argument: "default", a canonical
 * "interval=N;warmup=N;stride=N" string, or the shorthand
 * "INTERVAL[,WARMUP[,STRIDE]]" (an omitted warmup is INTERVAL/5, an
 * omitted stride is the default schedule's; see parseSamplingFlag's
 * definition). Returns false on malformed or invalid input.
 */
bool parseSamplingFlag(const std::string& text, SamplingConfig& out);

/**
 * Recency image of the cache-line working set, maintained across
 * fast-forwarded regions so detailed intervals start from warm
 * caches instead of cold ones (the warmup fidelity lever the
 * sampling literature calls functional warming).
 *
 * A bounded LRU list of (line address, dirty) entries: observe()
 * folds one record's memory footprint in, applyTo() installs the
 * image into a cache level via Cache::touch(), coldest line first so
 * the cache's own recency order ends up matching the filter's.
 */
class WarmupFilter
{
  public:
    explicit WarmupFilter(unsigned line_bytes = 64,
                          std::size_t max_lines = 65536);

    /** Fold @p instr's memory footprint into the recency image. */
    void observe(const Instr& instr);

    /**
     * Install the hottest lines that fit @p cache (capacity =
     * sets * assoc), coldest first. Lines beyond the capacity are
     * skipped — they would only evict hotter ones.
     */
    void applyTo(Cache& cache) const;

    std::size_t lines() const { return map.size(); }

  private:
    void touchLine(Addr line, bool dirty);

    struct Entry
    {
        Addr line;
        bool dirty;
    };

    unsigned lineBytes;
    std::size_t maxLines;
    std::list<Entry> lru; ///< front = hottest
    std::unordered_map<Addr, std::list<Entry>::iterator> map;
};

/** What a sampled run measured; extrapolation inputs. */
struct SampleStats
{
    std::uint64_t windows = 0;         ///< measured intervals closed
    std::uint64_t measured_instrs = 0; ///< records in measured windows
    std::uint64_t measured_ticks = 0;  ///< finalTick deltas over them
    std::uint64_t total_instrs = 0;    ///< full stream length
};

/**
 * est_total_ticks = measured_ticks * total / measured. Falls back to
 * @p exact_final_tick (the model's frontier after finish()) when
 * nothing was measured — a stream shorter than one period.
 */
double extrapolatedTicks(const SampleStats& stats,
                         double exact_final_tick);

/**
 * The sampling InstrSink: sits where the timing model's leg of the
 * emission tee would be, forwards only warmup + measured records to
 * the model, and accounts measured intervals by finalTick() deltas.
 *
 * The caller owns the phase side effects via on_detail_entry, fired
 * at every fast-forward -> detailed boundary *before* the boundary
 * record is consumed by any downstream sink: System::runSampled uses
 * it to install the WarmupFilter image and to capture functional
 * checkpoints (so it must observe the state produced by records
 * [0, pos), exactly).
 */
class SamplingController : public InstrSink
{
  public:
    /**
     * @param cfg      enabled sampling schedule
     * @param model    the timing model; consume() forwards detailed
     *                 records to @p model_leg (the address-biased
     *                 view of the same model) and reads
     *                 model.finalTick() at window boundaries
     */
    SamplingController(const SamplingConfig& cfg, TimingModel& model,
                       InstrSink& model_leg);

    /** Fired at each fast-forward -> detailed boundary (pos > 0). */
    std::function<void(std::uint64_t pos)> on_detail_entry;

    void consume(const Instr& instr) override;

    /**
     * Close the stream: @p final_tick is the model frontier after
     * finish(), closing a measured window the stream ended inside.
     */
    void finalize(Tick final_tick);

    const SampleStats& stats() const { return sampleStats; }

  private:
    void closeWindow(Tick tick_now);

    SamplingConfig cfg;
    TimingModel& model;
    InstrSink& modelLeg;

    std::uint64_t pos = 0;       ///< records consumed so far
    bool inDetail = false;
    bool inMeasure = false;
    Tick windowTick0 = 0;
    std::uint64_t windowInstr0 = 0;
    SampleStats sampleStats;
};

} // namespace eve

#endif // EVE_SIM_SAMPLING_HH
