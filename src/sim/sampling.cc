#include "sim/sampling.hh"

#include <algorithm>
#include <cstdlib>

#include "cpu/timing_model.hh"
#include "mem/cache.hh"

namespace eve
{

SamplingConfig
defaultSampling()
{
    // A 2M-record period: 10% measured, 2.5% warmup. Chosen against
    // the full/paper inputs (EXPERIMENTS.md "Sampled simulation") so
    // that (a) the measured cycle error stays well under the 3%
    // acceptance bound and (b) the period is shorter than the
    // paper-scale streams (~6M records), so fast-forward boundaries
    // actually fire and checkpoints get captured.
    SamplingConfig cfg;
    cfg.interval = 200000;
    cfg.warmup = 50000;
    cfg.stride = 10;
    return cfg;
}

namespace
{

/** Valid schedule: see SamplingConfig invariants. */
bool
validSampling(const SamplingConfig& cfg)
{
    if (!cfg.enabled())
        return true;
    if (cfg.stride == 0)
        return false;
    // The warmup and measured windows must fit one period.
    return cfg.warmup + cfg.interval <= cfg.period();
}

/** "name=1234" -> value; false on malformed key or number. */
bool
parseU64Field(const std::string& tok, const char* name,
              std::uint64_t& out)
{
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos || tok.substr(0, eq) != name)
        return false;
    const std::string value = tok.substr(eq + 1);
    if (value.empty())
        return false;
    char* end = nullptr;
    out = std::strtoull(value.c_str(), &end, 10);
    return end && *end == '\0';
}

std::vector<std::string>
splitOn(const std::string& text, char sep)
{
    std::vector<std::string> toks;
    std::string cur;
    for (const char c : text) {
        if (c == sep) {
            toks.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    toks.push_back(cur);
    return toks;
}

} // namespace

std::string
samplingCanonical(const SamplingConfig& cfg)
{
    if (!cfg.enabled())
        return "";
    return "interval=" + std::to_string(cfg.interval) +
           ";warmup=" + std::to_string(cfg.warmup) +
           ";stride=" + std::to_string(cfg.stride);
}

bool
parseSamplingCanonical(const std::string& text, SamplingConfig& out)
{
    if (text.empty()) {
        out = SamplingConfig{};
        return true;
    }
    const std::vector<std::string> toks = splitOn(text, ';');
    if (toks.size() != 3)
        return false;
    SamplingConfig cfg;
    if (!parseU64Field(toks[0], "interval", cfg.interval) ||
        !parseU64Field(toks[1], "warmup", cfg.warmup) ||
        !parseU64Field(toks[2], "stride", cfg.stride))
        return false;
    // The round trip must be exact: the canonical string is the
    // schedule's content-addressing identity.
    if (!cfg.enabled() || !validSampling(cfg) ||
        samplingCanonical(cfg) != text)
        return false;
    out = cfg;
    return true;
}

bool
parseSamplingFlag(const std::string& text, SamplingConfig& out)
{
    if (text == "default") {
        out = defaultSampling();
        return true;
    }
    if (text.find('=') != std::string::npos)
        return parseSamplingCanonical(text, out);

    // Shorthand: "INTERVAL[,WARMUP[,STRIDE]]". An omitted warmup
    // keeps the default schedule's warmup:interval proportion (1:5)
    // instead of its absolute value, so "1000" is a valid schedule
    // rather than one whose inherited warmup dwarfs its period.
    const std::vector<std::string> toks = splitOn(text, ',');
    if (toks.empty() || toks.size() > 3)
        return false;
    SamplingConfig cfg = defaultSampling();
    auto number = [](const std::string& tok, std::uint64_t& v) {
        if (tok.empty())
            return false;
        char* end = nullptr;
        v = std::strtoull(tok.c_str(), &end, 10);
        return end && *end == '\0';
    };
    if (!number(toks[0], cfg.interval))
        return false;
    cfg.warmup = cfg.interval / 5;
    if (toks.size() > 1 && !number(toks[1], cfg.warmup))
        return false;
    if (toks.size() > 2 && !number(toks[2], cfg.stride))
        return false;
    if (!cfg.enabled() || !validSampling(cfg))
        return false;
    out = cfg;
    return true;
}

WarmupFilter::WarmupFilter(unsigned line_bytes, std::size_t max_lines)
    : lineBytes(line_bytes ? line_bytes : 64), maxLines(max_lines)
{
}

void
WarmupFilter::touchLine(Addr line, bool dirty)
{
    auto it = map.find(line);
    if (it != map.end()) {
        it->second->dirty |= dirty;
        lru.splice(lru.begin(), lru, it->second);
        return;
    }
    lru.push_front({line, dirty});
    map[line] = lru.begin();
    if (map.size() > maxLines) {
        map.erase(lru.back().line);
        lru.pop_back();
    }
}

void
WarmupFilter::observe(const Instr& instr)
{
    if (!isMemOp(instr.op))
        return;
    const bool store =
        instr.op == Op::SStore || isVecStore(instr.op);
    switch (instr.op) {
      case Op::SLoad:
      case Op::SStore:
        touchLine(instr.addr / lineBytes, store);
        return;
      case Op::VLoad:
      case Op::VStore: {
        // Contiguous: walk lines, not elements.
        const Addr first = instr.addr / lineBytes;
        const Addr last = instr.vl
                              ? (instr.addr + Addr(instr.vl) * 4 - 1) /
                                    lineBytes
                              : first;
        for (Addr line = first; line <= last; ++line)
            touchLine(line, store);
        return;
      }
      case Op::VLoadStrided:
      case Op::VStoreStrided:
        for (std::uint32_t i = 0; i < instr.vl; ++i)
            touchLine((instr.addr +
                       Addr(std::int64_t(i) * instr.stride)) /
                          lineBytes,
                      store);
        return;
      case Op::VLoadIndexed:
      case Op::VStoreIndexed:
        if (!instr.indices)
            return;
        for (std::uint32_t i = 0; i < instr.vl; ++i)
            touchLine((instr.addr + instr.indices[i]) / lineBytes,
                      store);
        return;
      default:
        return;
    }
}

void
WarmupFilter::applyTo(Cache& cache) const
{
    const std::size_t capacity =
        std::size_t(cache.numSets()) * cache.params().assoc;
    const std::size_t n = std::min(capacity, lru.size());
    if (n == 0)
        return;
    // The hottest n entries are the list's first n; install them
    // coldest first so the cache's LRU order matches the filter's.
    std::vector<const Entry*> hot;
    hot.reserve(n);
    std::size_t taken = 0;
    for (const Entry& e : lru) {
        if (taken++ == n)
            break;
        hot.push_back(&e);
    }
    const unsigned cache_line = cache.params().line_bytes;
    for (auto it = hot.rbegin(); it != hot.rend(); ++it) {
        const Addr byte_addr = (*it)->line * Addr(lineBytes);
        // Re-line for the target level in case its line size differs
        // from the filter's granule.
        cache.touch((byte_addr / cache_line) * cache_line,
                    (*it)->dirty);
    }
}

double
extrapolatedTicks(const SampleStats& stats, double exact_final_tick)
{
    if (stats.measured_instrs == 0 || stats.measured_ticks == 0)
        return exact_final_tick;
    return double(stats.measured_ticks) *
           (double(stats.total_instrs) /
            double(stats.measured_instrs));
}

SamplingController::SamplingController(const SamplingConfig& cfg,
                                       TimingModel& model,
                                       InstrSink& model_leg)
    : cfg(cfg), model(model), modelLeg(model_leg)
{
}

void
SamplingController::closeWindow(Tick tick_now)
{
    sampleStats.measured_ticks += tick_now - windowTick0;
    sampleStats.measured_instrs += pos - windowInstr0;
    ++sampleStats.windows;
    inMeasure = false;
}

void
SamplingController::consume(const Instr& instr)
{
    const std::uint64_t off = pos % cfg.period();
    const bool measure = off < cfg.interval;
    const bool warm = off >= cfg.period() - cfg.warmup;

    if (measure && !inMeasure) {
        inMeasure = true;
        windowTick0 = model.finalTick();
        windowInstr0 = pos;
    } else if (!measure && inMeasure) {
        closeWindow(model.finalTick());
    }

    if (measure || warm) {
        if (!inDetail) {
            inDetail = true;
            // pos == 0 starts inside window 0 — there is no state to
            // install or capture at simulation start.
            if (pos != 0 && on_detail_entry)
                on_detail_entry(pos);
        }
        modelLeg.consume(instr);
    } else {
        inDetail = false;
    }
    ++pos;
}

void
SamplingController::finalize(Tick final_tick)
{
    if (inMeasure)
        closeWindow(final_tick);
    sampleStats.total_instrs = pos;
}

} // namespace eve
