/**
 * @file
 * The clocked-component half of the two-level timing API.
 *
 * Workloads keep pushing their dynamic trace through InstrSink, but
 * the *driver* — not each model — owns the clock: every core and
 * engine is a Clocked component the driver steps with tick(), skips
 * while quiesced(), and paces by nextEventTick(). This is what lets
 * one simulation span threads: a producer thread emits the trace into
 * a bounded InstrFeed while the driver pumps the model on another
 * thread, and the CMP driver runs each core's component on its own
 * thread under a barrier-synchronized clock (sim/barrier_clock.hh).
 *
 * The timing models are trace-driven and lazy — they compute event
 * ticks instead of looping over cycles — so tick(horizon) does not
 * mean "advance one cycle": it means "consume the work that has
 * arrived, folding it into your event times; the caller guarantees
 * no input earlier than @p horizon will appear afterwards". A model
 * with no pending work reports quiesced() and the driver never ticks
 * it (asserted by the quiesced-skip regression test).
 */

#ifndef EVE_SIM_CLOCKED_HH
#define EVE_SIM_CLOCKED_HH

#include <atomic>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "common/types.hh"
#include "isa/instr.hh"

namespace eve
{

/** "No pending event" sentinel for Clocked::nextEventTick(). */
inline constexpr Tick kNoEventTick = std::numeric_limits<Tick>::max();

/** "Consume everything available" horizon for Clocked::tick(). */
inline constexpr Tick kTickHorizonInf = std::numeric_limits<Tick>::max();

/**
 * A component the driver steps under its clock. Implementations are
 * single-consumer: tick()/quiesced()/nextEventTick() are called from
 * one driver thread at a time (work may *arrive* from another thread
 * through a thread-safe channel such as InstrFeed).
 */
class Clocked
{
  public:
    virtual ~Clocked() = default;

    /**
     * Fold pending work into the component's event times. The caller
     * promises that no input with an earlier arrival than @p horizon
     * will be delivered after this call returns.
     */
    virtual void tick(Tick horizon) = 0;

    /** True when the component has no pending work to tick. */
    virtual bool quiesced() const = 0;

    /**
     * The component's current event frontier: the tick where newly
     * arriving work would land, or kNoEventTick when quiesced.
     */
    virtual Tick nextEventTick() const = 0;

    /** How many times the driver actually stepped this component. */
    std::uint64_t tickCount() const { return tickInvocations; }

  protected:
    std::uint64_t tickInvocations = 0;
};

/**
 * Bounded single-producer single-consumer instruction channel.
 *
 * The producer (trace emission) pushes records; the consumer (the
 * driver pumping a Clocked model) drains them in order. Records are
 * deep-copied on push — including the indexed-access offset array,
 * which in the InstrSink protocol is only valid for the duration of
 * the consume() call — so a record stays valid until the consumer
 * finishes with it.
 *
 * Memory ordering: the producer writes a slot, then publishes it with
 * a release store of tail; the consumer acquires tail before reading
 * the slot and releases head after; the producer acquires head before
 * reusing a slot. close() is a release store made after the final
 * push, so a consumer that observes closed() and then sees the feed
 * empty has observed every record.
 */
class InstrFeed
{
  public:
    /** @p capacity_pow2 slots must be a power of two. */
    explicit InstrFeed(std::size_t capacity_pow2 = 1024)
        : ring(capacity_pow2), mask(capacity_pow2 - 1)
    {
    }

    /** Producer: enqueue a deep copy of @p instr (blocks while full). */
    void
    push(const Instr& instr)
    {
        const std::size_t t = tail.load(std::memory_order_relaxed);
        while (t - head.load(std::memory_order_acquire) > mask)
            std::this_thread::yield();
        Slot& slot = ring[t & mask];
        slot.instr = instr;
        if (instr.indices) {
            slot.idx.assign(instr.indices, instr.indices + instr.vl);
            slot.instr.indices = slot.idx.data();
        }
        tail.store(t + 1, std::memory_order_release);
    }

    /** Producer: no more records will be pushed. */
    void close() { closed_.store(true, std::memory_order_release); }

    /** Consumer: true when no record is currently available. */
    bool
    empty() const
    {
        return head.load(std::memory_order_relaxed) ==
               tail.load(std::memory_order_acquire);
    }

    /**
     * Consumer: true once the producer has closed the feed. Check
     * closed() *before* empty() when deciding to stop draining — the
     * close is published after the final push, so closed-then-empty
     * means every record has been consumed.
     */
    bool closed() const { return closed_.load(std::memory_order_acquire); }

    /**
     * Consumer: invoke @p fn on up to @p max available records, in
     * order. Returns how many were consumed.
     */
    template <typename Fn>
    std::size_t
    drain(Fn&& fn, std::size_t max = std::size_t(-1))
    {
        std::size_t h = head.load(std::memory_order_relaxed);
        const std::size_t t = tail.load(std::memory_order_acquire);
        std::size_t n = 0;
        while (h != t && n < max) {
            fn(ring[h & mask].instr);
            ++h;
            ++n;
            // Publish per record so the producer can reuse slots
            // while a large batch is still draining.
            head.store(h, std::memory_order_release);
        }
        return n;
    }

  private:
    struct Slot
    {
        Instr instr;
        std::vector<std::uint32_t> idx;
    };

    std::vector<Slot> ring;
    std::size_t mask;
    std::atomic<std::size_t> head{0};
    std::atomic<std::size_t> tail{0};
    std::atomic<bool> closed_{false};
};

/** InstrSink leg that forwards a stream into an InstrFeed. */
class FeedWriter : public InstrSink
{
  public:
    explicit FeedWriter(InstrFeed& feed) : feed(feed) {}

    void consume(const Instr& instr) override { feed.push(instr); }

  private:
    InstrFeed& feed;
};

} // namespace eve

#endif // EVE_SIM_CLOCKED_HH
