/**
 * @file
 * Functional-state checkpoints for sampled simulation.
 *
 * A sampled run's dominant cost is the functional fast-forward: the
 * VecMachine must execute the whole dynamic stream to keep memory
 * and register state exact even though the timing model only sees
 * the detailed intervals. That state depends solely on (workload,
 * scale, hardware vector length) — the timing models are pure
 * consumers of generator-produced records — so every sweep point
 * sharing those can reuse one snapshot: a checkpoint captures the
 * functional state (memory image + vector machine) at the *last*
 * detailed-window entry, and a restored run installs it up front
 * and skips the machine's leg for every record before that
 * position. The warmup filter, the timing model, and the interval
 * measurements all still run record by record, so a restored run is
 * byte-identical to a cold one — guarded by the checkpoint parity
 * test.
 *
 * On-disk format (`ck-<16 hex>.ckpt`, named by the FNV-1a hash of
 * the identity material): a line-oriented text header —
 *
 *     eve-ckpt-v1
 *     salt=<kSimulatorSalt of the writer>
 *     material=<identity material>
 *     position=<record index of the snapshot>
 *     vl=<granted vl>  scalar=<last scalar result>
 *     vlmax=<register width>  vregs=<register count>
 *     mem_bytes=<memory image size>
 *     data
 *
 * — followed by the raw little-endian register file and memory
 * image. Files are written atomically (common/fs.hh), and a file
 * whose magic, salt, material, or payload size disagrees with the
 * reader is *quarantined* (renamed to `<file>.quarantine`) rather
 * than trusted — the same salt-skew refusal the distributed sweep
 * protocol applies to its manifests.
 */

#ifndef EVE_SIM_CHECKPOINT_HH
#define EVE_SIM_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/functional.hh"

namespace eve
{

/** One functional snapshot. */
struct Checkpoint
{
    std::uint64_t position = 0; ///< records executed before capture
    VecMachineState machine;
    std::vector<std::uint8_t> mem;
};

/**
 * Directory of checkpoints keyed by an identity-material string
 * (workload, scale, hardware vl, sampling schedule — the caller
 * builds it; see System::runSampled).
 */
class CheckpointStore
{
  public:
    /**
     * @param dir   checkpoint directory (created on first save)
     * @param salt  the writer's simulator salt; a loaded file whose
     *              salt differs is quarantined
     */
    CheckpointStore(std::string dir, std::string salt);

    /** The file a given identity material maps to. */
    std::string pathFor(const std::string& material) const;

    /**
     * Load the checkpoint for @p material. Returns false when the
     * file does not exist, and also (after quarantining the file and
     * warning) when it exists but is malformed or salt-skewed.
     */
    bool load(const std::string& material, Checkpoint& out) const;

    /** Atomically write the checkpoint for @p material. */
    void save(const std::string& material,
              const Checkpoint& ck) const;

  private:
    std::string dir;
    std::string salt;
};

} // namespace eve

#endif // EVE_SIM_CHECKPOINT_HH
