#include "sim/resource.hh"

#include "common/log.hh"

namespace eve
{

PipelinedUnits::PipelinedUnits(unsigned count)
    : freeAt(std::max(count, 1u), 0)
{
}

void
PipelinedUnits::reset()
{
    std::fill(freeAt.begin(), freeAt.end(), 0);
}

TokenPool::TokenPool(unsigned count) : capacity(std::max(count, 1u))
{
    busy.reserve(capacity + 1);
}

} // namespace eve
