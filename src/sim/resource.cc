#include "sim/resource.hh"

#include <algorithm>

#include "common/log.hh"

namespace eve
{

PipelinedUnits::PipelinedUnits(unsigned count)
    : freeAt(std::max(count, 1u), 0)
{
}

Tick
PipelinedUnits::acquire(Tick t, Tick busy)
{
    auto it = std::min_element(freeAt.begin(), freeAt.end());
    Tick start = std::max(t, *it);
    *it = start + busy;
    return start;
}

Tick
PipelinedUnits::earliestStart(Tick t) const
{
    Tick min_free = *std::min_element(freeAt.begin(), freeAt.end());
    return std::max(t, min_free);
}

void
PipelinedUnits::reset()
{
    std::fill(freeAt.begin(), freeAt.end(), 0);
}

TokenPool::TokenPool(unsigned count) : capacity(std::max(count, 1u))
{
}

Tick
TokenPool::grantTime(Tick t) const
{
    if (busy.size() < capacity)
        return t;
    // All tokens busy: the request waits for the earliest release.
    return std::max(t, busy.top());
}

unsigned
TokenPool::inFlight(Tick t)
{
    retire(t);
    return unsigned(busy.size());
}

void
TokenPool::reset()
{
    busy = {};
}

void
TokenPool::retire(Tick t)
{
    while (!busy.empty() && busy.top() <= t)
        busy.pop();
}

} // namespace eve
