#include "mem/dram.hh"

#include <cmath>

namespace eve
{

Dram::Dram(const DramParams& params)
    : params(params),
      latencyTicks(Tick(params.latency_ns * ticksPerNs)),
      lineOccupancyTicks(Tick(std::ceil(
          params.line_bytes / params.bandwidth_gbps * ticksPerNs))),
      channel(1),
      statGroup("dram")
{
    statReads = statGroup.id("reads");
    statWrites = statGroup.id("writes");
    statQueueTicks = statGroup.id("queue_ticks");
}

Tick
Dram::access(Addr addr, bool is_write, Tick t)
{
    (void)addr;
    Tick start = channel.acquire(t, lineOccupancyTicks);
    statGroup.add(is_write ? statWrites : statReads, 1);
    statGroup.add(statQueueTicks, double(start - t));
    // Stores complete when the channel accepts them; loads pay the
    // full access latency.
    return is_write ? start + lineOccupancyTicks : start + latencyTicks;
}

void
Dram::resetTiming()
{
    channel.reset();
    statGroup.clear();
}

} // namespace eve
