/**
 * @file
 * Single-channel DRAM model in the spirit of DDR4-2400.
 *
 * The model charges a fixed access latency plus finite channel
 * bandwidth (one cacheline transfer occupies the channel for
 * line_bytes / bytes_per_ns). That is deliberately simpler than a
 * bank/row model but preserves the two effects the paper's results
 * depend on: a long memory latency that engines must hide with MLP,
 * and a hard bandwidth ceiling that memory-bound kernels saturate.
 */

#ifndef EVE_MEM_DRAM_HH
#define EVE_MEM_DRAM_HH

#include "mem/mem_object.hh"
#include "sim/resource.hh"

namespace eve
{

/** Configuration of the DRAM model. */
struct DramParams
{
    double latency_ns = 60.0;      ///< closed-page access latency
    double bandwidth_gbps = 19.2;  ///< DDR4-2400 x64 peak
    unsigned line_bytes = 64;
};

/** The DRAM channel. */
class Dram : public MemObject
{
  public:
    explicit Dram(const DramParams& params);

    Tick access(Addr addr, bool is_write, Tick t) override;

    StatGroup& stats() override { return statGroup; }

    void resetTiming() override;

  private:
    DramParams params;
    Tick latencyTicks;
    Tick lineOccupancyTicks;
    PipelinedUnits channel;
    StatGroup statGroup;
    StatGroup::Id statReads, statWrites, statQueueTicks;
};

} // namespace eve

#endif // EVE_MEM_DRAM_HH
