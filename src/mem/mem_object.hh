/**
 * @file
 * Interface of every level of the memory system.
 *
 * The memory system uses reservation-style timing (see
 * sim/resource.hh): an access is a single call that returns the tick
 * at which the requested cacheline is available (loads) or accepted
 * (stores). All contention — banks, MSHRs, the DRAM channel — is
 * captured by the per-level resources.
 */

#ifndef EVE_MEM_MEM_OBJECT_HH
#define EVE_MEM_MEM_OBJECT_HH

#include "common/stats.hh"
#include "common/types.hh"

namespace eve
{

/** One level of the memory hierarchy. */
class MemObject
{
  public:
    virtual ~MemObject() = default;

    /**
     * Access one cacheline.
     *
     * @param addr      any byte address within the target line
     * @param is_write  store (true) or load (false)
     * @param t         tick the request arrives at this level
     * @return          tick the access completes at this level
     */
    virtual Tick access(Addr addr, bool is_write, Tick t) = 0;

    /** Statistics for this level. */
    virtual StatGroup& stats() = 0;

    /** Reset timing state and statistics (not tag contents). */
    virtual void resetTiming() = 0;
};

} // namespace eve

#endif // EVE_MEM_MEM_OBJECT_HH
