/**
 * @file
 * The Table III memory hierarchy: L1I/L1D, private L2, shared LLC,
 * and a single DDR4-2400 channel.
 *
 * All levels share one clock (the paper's EVE-16/EVE-32 design points
 * degrade the whole chip's cycle time because the L2 SRAM sets it).
 * The L2 can be built in "vector mode" — 4-way, 256 KB — which is the
 * configuration left to the core after half the ways are carved out
 * as an EVE engine.
 */

#ifndef EVE_MEM_HIERARCHY_HH
#define EVE_MEM_HIERARCHY_HH

#include <memory>

#include "mem/cache.hh"
#include "mem/dram.hh"

namespace eve
{

/** Configuration of the full hierarchy. */
struct HierarchyParams
{
    double clock_ns = 1.025;  ///< baseline SRAM cycle time (Section VI)
    bool l2_vector_mode = false;
    unsigned l2_mshrs = 32;
    unsigned llc_mshrs = 32;
    unsigned llc_prefetch_lines = 0;  ///< LLC stream prefetcher depth
    DramParams dram;
};

/** The assembled hierarchy. */
class MemHierarchy
{
  public:
    explicit MemHierarchy(const HierarchyParams& params);

    /**
     * CMP form: build only the private levels (L1I/L1D/L2) on top of
     * an externally owned shared LLC (Section V's chip
     * multiprocessor setting: one private hierarchy per core).
     * @p llc_gate, when non-null, is interposed on every *timing*
     * path into the shared LLC (the L2's next level and the vector
     * engines' direct LLC port) — the threaded CMP driver passes its
     * BarrierClock gate here so one core's accesses serialize
     * deterministically against the other cores'.
     */
    MemHierarchy(const HierarchyParams& params, Cache& shared_llc,
                 Dram& shared_dram, MemObject* llc_gate = nullptr);

    Cache& l1i() { return *l1iCache; }
    Cache& l1d() { return *l1dCache; }
    Cache& l2() { return *l2Cache; }
    Cache& llc() { return *llcView; }
    Dram& dram() { return *dramView; }

    /**
     * The timing port engines use for direct LLC accesses: the LLC
     * itself, unless a CMP gate is interposed. Structural queries
     * (params, stats, touch) still go through llc().
     */
    MemObject& llcPort() { return *llcTimingPort; }

    const HierarchyParams& params() const { return hierParams; }

    /** Reset timing state of every level. */
    void resetTiming();

    /** Pre-fill every level with the address range (tests/warmup). */
    void warmRange(Addr begin, Addr end);

  private:
    void buildPrivateLevels();

    HierarchyParams hierParams;
    std::unique_ptr<Dram> dramChannel;  ///< null in CMP form
    std::unique_ptr<Cache> llcCache;    ///< null in CMP form
    Dram* dramView = nullptr;
    Cache* llcView = nullptr;
    MemObject* llcTimingPort = nullptr;  ///< llcView or the CMP gate
    std::unique_ptr<Cache> l2Cache;
    std::unique_ptr<Cache> l1dCache;
    std::unique_ptr<Cache> l1iCache;
};

/** The shared half of a CMP memory system: LLC + DRAM channel. */
class SharedUncore
{
  public:
    explicit SharedUncore(const HierarchyParams& params);

    Cache& llc() { return *llcCache; }
    Dram& dram() { return *dramChannel; }

  private:
    std::unique_ptr<Dram> dramChannel;
    std::unique_ptr<Cache> llcCache;
};

} // namespace eve

#endif // EVE_MEM_HIERARCHY_HH
