/**
 * @file
 * Set-associative write-back, write-allocate cache with banked access
 * and MSHR-limited miss parallelism.
 *
 * The tag array is functional (real tags, LRU replacement), while
 * timing comes from reservation resources: per-bank pipelined ports
 * and an MSHR token pool. Misses to a line that is already
 * outstanding merge into the in-flight MSHR (secondary misses),
 * which matters for unit-stride vector streams.
 *
 * Way masking supports the EVE reconfiguration story: the L2 can be
 * restricted to its "cache ways" while the "EVE ways" are carved out
 * as an ephemeral vector engine (Section V-E of the paper).
 *
 * Hot-path layout (see DESIGN.md "Hot-path invariants & timing
 * parity"): the tag array is one flat vector indexed [set * assoc +
 * way]; recency is order-encoded per set (a packed nibble list,
 * LRU -> MRU) next to a valid-way bitmask, so victim selection reads
 * two words instead of scanning per-line 64-bit timestamps; and the
 * in-flight-fill (MSHR) state lives *in the line itself* — each tag
 * entry carries the tick its fill completes. A fill tick is only
 * meaningful while it is in the future of the line's bank clock, a
 * line's bank never changes, and the line's eviction overwrites the
 * state, so the side table the fill ticks used to live in (and the
 * bounded-size prune that kept it from growing without bound on
 * decoupled-engine streams — the O3/DV per-miss pathology) is gone
 * entirely. None of this changes a simulated cycle — the structures
 * are behaviourally identical to what they replaced.
 */

#ifndef EVE_MEM_CACHE_HH
#define EVE_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "mem/mem_object.hh"
#include "sim/resource.hh"

namespace eve
{

/** Configuration of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t size_bytes = 32 * 1024;
    unsigned assoc = 4;
    unsigned line_bytes = 64;
    unsigned banks = 1;
    Cycles hit_latency = 1;   ///< in cycles of @ref clock
    unsigned mshrs = 16;
    double clock_ns = 1.0;    ///< cycle time of this level

    /**
     * Next-N-line stream prefetcher (0 = off). On a demand miss the
     * cache also fetches the following lines without holding the
     * requester — the paper's future-work lever for making better
     * use of memory bandwidth under limited MSHRs.
     */
    unsigned prefetch_lines = 0;
};

/** Result of invalidating a range of ways (EVE spawn cost input). */
struct InvalidateResult
{
    std::uint64_t valid_lines = 0;
    std::uint64_t dirty_lines = 0;
};

/** One cache level. */
class Cache : public MemObject
{
  public:
    Cache(const CacheParams& params, MemObject* next_level);

    Tick access(Addr addr, bool is_write, Tick t) override;

    StatGroup& stats() override { return statGroup; }

    void resetTiming() override;

    /**
     * Restrict lookups and fills to ways [0, active_ways). Lines in
     * the masked-off ways become unreachable; callers wanting the
     * paper's spawn semantics invalidate them first.
     */
    void setActiveWays(unsigned active_ways);

    unsigned activeWays() const { return liveWays; }

    /**
     * Invalidate all lines in ways [way_begin, way_end), returning
     * how many lines were valid and dirty — the inputs to the spawn
     * cost model (each dirty line incurs a writeback to the LLC).
     */
    InvalidateResult invalidateWays(unsigned way_begin, unsigned way_end);

    /** Invalidate the entire cache. */
    void invalidateAll();

    /** Warm a line into the cache without timing side effects. */
    void touch(Addr addr, bool dirty = false);

    const CacheParams& params() const { return cacheParams; }

    /** Number of sets. */
    unsigned numSets() const { return sets; }

    /** True iff the line containing @p addr is present (tests). */
    bool isCached(Addr addr) const;

    /** Ticks spent waiting for a free MSHR (Figure 8 numerator). */
    double mshrWaitTicks() const { return statGroup.get("mshr_wait_ticks"); }

  private:
    struct Line
    {
        Addr tag = 0;
        /**
         * Tick the line's most recent fill completes. An access that
         * hits while this is still ahead of its own completion tick
         * waits for the fill (a secondary miss merging into the
         * in-flight MSHR). A line's accesses all go through one bank
         * whose start ticks never decrease, so once the fill tick
         * falls behind an access it can never affect a later one —
         * a stale value is exactly equivalent to the erased side-
         * table entry it replaces.
         */
        Tick fill = 0;
        bool valid = false;
        bool dirty = false;
    };

    Addr lineAddr(Addr addr) const { return addr / cacheParams.line_bytes; }
    unsigned setIndex(Addr line) const { return unsigned(line % sets); }
    Addr tagOf(Addr line) const { return line / sets; }

    Line* setBase(unsigned set) { return &tagArray[std::size_t(set) * cacheParams.assoc]; }
    const Line* setBase(unsigned set) const { return &tagArray[std::size_t(set) * cacheParams.assoc]; }

    /** Find the way holding @p line in its set, or -1. */
    int findWay(unsigned set, Addr tag) const;

    /** Pick a victim way among active ways (invalid first, then LRU). */
    unsigned victimWay(unsigned set) const;

    /** Mark @p way most-recently used in its set's recency list. */
    void touchLru(unsigned set, unsigned way);

    /** Issue one stream-prefetch fill for @p line at tick @p t. */
    void prefetchLine(Addr line, Tick t);

    CacheParams cacheParams;
    MemObject* next;
    ClockDomain clock;

    unsigned sets;
    unsigned liveWays;
    std::vector<Line> tagArray;          ///< flat, [set * assoc + way]

    /**
     * Per-set recency order, one nibble per position: nibble p holds
     * the way index at recency position p (0 = LRU end, assoc-1 =
     * MRU end). Exactly the order the per-line timestamps used to
     * encode, without per-line 64-bit state.
     */
    std::vector<std::uint64_t> lruOrder;
    std::vector<std::uint16_t> validMask; ///< per-set valid-way bits

    std::vector<PipelinedUnits> bankPorts;
    TokenPool mshrPool;

    StatGroup statGroup;
    StatGroup::Id statReads, statWrites, statHits, statMisses;
    StatGroup::Id statMshrWait, statMshrMerges, statWritebacks;
    StatGroup::Id statPrefetches;
};

} // namespace eve

#endif // EVE_MEM_CACHE_HH
