#include "mem/cache.hh"

#include <algorithm>
#include <bit>

#include "common/bits.hh"
#include "common/log.hh"

namespace eve
{

Cache::Cache(const CacheParams& params, MemObject* next_level)
    : cacheParams(params),
      next(next_level),
      clock(params.clock_ns),
      sets(unsigned(params.size_bytes /
                    (std::uint64_t(params.line_bytes) * params.assoc))),
      liveWays(params.assoc),
      tagArray(std::size_t(sets) * params.assoc),
      validMask(sets, 0),
      mshrPool(params.mshrs),
      statGroup(params.name)
{
    if (!next)
        panic("cache %s: next level is null", params.name.c_str());
    if (sets == 0 || !isPow2(sets))
        fatal("cache %s: set count %u must be a nonzero power of two",
              params.name.c_str(), sets);
    if (params.assoc == 0 || params.assoc > 16)
        fatal("cache %s: assoc %u outside [1, 16] supported by the "
              "order-encoded recency list",
              params.name.c_str(), params.assoc);
    // Recency starts as way order: nibble p holds way p.
    std::uint64_t order = 0;
    for (unsigned w = 0; w < params.assoc; ++w)
        order |= std::uint64_t(w) << (4 * w);
    lruOrder.assign(sets, order);
    bankPorts.reserve(params.banks);
    for (unsigned i = 0; i < params.banks; ++i)
        bankPorts.emplace_back(1);

    statReads = statGroup.id("reads");
    statWrites = statGroup.id("writes");
    statHits = statGroup.id("hits");
    statMisses = statGroup.id("misses");
    statMshrWait = statGroup.id("mshr_wait_ticks");
    statMshrMerges = statGroup.id("mshr_merges");
    statWritebacks = statGroup.id("writebacks");
    statPrefetches = statGroup.id("prefetches");
}

int
Cache::findWay(unsigned set, Addr tag) const
{
    const Line* base = setBase(set);
    for (unsigned w = 0; w < liveWays; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return int(w);
    }
    return -1;
}

unsigned
Cache::victimWay(unsigned set) const
{
    // Invalid ways first, lowest index — exactly the order the old
    // per-line scan returned them in.
    const auto active = std::uint16_t((1u << liveWays) - 1);
    const auto invalid = std::uint16_t(~validMask[set] & active);
    if (invalid)
        return unsigned(std::countr_zero(invalid));
    // All active ways valid: the least recently used active way is
    // the first nibble from the LRU end that names an active way
    // (masked-off ways keep their frozen positions in the list).
    const std::uint64_t order = lruOrder[set];
    for (unsigned p = 0; p < cacheParams.assoc; ++p) {
        const auto way = unsigned((order >> (4 * p)) & 0xF);
        if (way < liveWays)
            return way;
    }
    return 0; // unreachable: liveWays >= 1
}

void
Cache::touchLru(unsigned set, unsigned way)
{
    const unsigned assoc = cacheParams.assoc;
    std::uint64_t order = lruOrder[set];
    unsigned p = 0;
    while (((order >> (4 * p)) & 0xF) != way)
        ++p;
    if (p == assoc - 1)
        return; // already MRU
    // Splice the nibble out and append it at the MRU end.
    const std::uint64_t below =
        p ? order & ((std::uint64_t{1} << (4 * p)) - 1) : 0;
    const std::uint64_t shifted = (order >> (4 * (p + 1))) << (4 * p);
    lruOrder[set] =
        below | shifted | (std::uint64_t(way) << (4 * (assoc - 1)));
}

Tick
Cache::access(Addr addr, bool is_write, Tick t)
{
    const Addr line = lineAddr(addr);
    const unsigned set = setIndex(line);
    const Addr tag = tagOf(line);

    // Bank conflict: the bank serving this line is pipelined but can
    // start only one access per cycle.
    PipelinedUnits& bank = bankPorts[line % bankPorts.size()];
    const Tick start = bank.acquire(t, clock.period());
    const Tick hit_done = start + clock.toTicks(cacheParams.hit_latency);

    statGroup.add(is_write ? statWrites : statReads, 1);

    int way = findWay(set, tag);
    if (way >= 0) {
        // Hit — but if the line's fill is still in flight, the access
        // completes when the fill does.
        Line& entry = setBase(set)[unsigned(way)];
        touchLru(set, unsigned(way));
        if (is_write)
            entry.dirty = true;
        Tick done = hit_done;
        if (entry.fill > hit_done) {
            done = entry.fill;
            statGroup.add(statMshrMerges, 1);
        }
        statGroup.add(statHits, 1);
        return done;
    }

    // Miss: allocate an MSHR (stalling if none are free), fetch the
    // line from the next level, then fill.
    statGroup.add(statMisses, 1);
    Tick fill = 0;
    const Tick want = hit_done;  // miss detected after the lookup
    const Tick grant = mshrPool.acquire(want, [&](Tick g) {
        fill = next->access(addr, false, g) + clock.period();
        return fill;
    });
    statGroup.add(statMshrWait, double(grant - want));

    // Victim handling: write back dirty victims to the next level
    // (bandwidth is charged there; the fill does not wait for it).
    // The writeback leaves when the miss is sent — issuing it at the
    // fill time would park a future reservation on the next level's
    // channel and stall earlier arrivals behind it.
    const unsigned victim = victimWay(set);
    Line& entry = setBase(set)[victim];
    if (entry.valid && entry.dirty) {
        const Addr victim_line = entry.tag * sets + set;
        next->access(victim_line * cacheParams.line_bytes, true,
                     grant);
        statGroup.add(statWritebacks, 1);
    }

    // The victim's in-flight fill state dies with the line (the
    // fill tick is overwritten below): a stale value would merge a
    // later re-fetch of the same line against the pre-eviction fill.
    entry.valid = true;
    entry.dirty = is_write;
    entry.tag = tag;
    entry.fill = fill;
    validMask[set] |= std::uint16_t(1u << victim);
    touchLru(set, victim);

    // Stream prefetch: pull the next lines in parallel with the
    // demand miss (launched at miss detection, not at fill, and not
    // holding demand MSHRs — a dedicated prefetch queue).
    for (unsigned i = 1; i <= cacheParams.prefetch_lines; ++i)
        prefetchLine(line + i, want);

    return fill;
}

void
Cache::prefetchLine(Addr line, Tick t)
{
    const unsigned set = setIndex(line);
    const Addr tag = tagOf(line);
    // A line's fill state lives in its tag entry, so "already cached"
    // covers "already in flight" — an uncached line cannot have an
    // outstanding fill.
    if (findWay(set, tag) >= 0)
        return;
    statGroup.add(statPrefetches, 1);
    const Tick fill = next->access(line * cacheParams.line_bytes,
                                   false, t) + clock.period();
    const unsigned victim = victimWay(set);
    Line& entry = setBase(set)[victim];
    if (entry.valid && entry.dirty) {
        const Addr victim_line = entry.tag * sets + set;
        next->access(victim_line * cacheParams.line_bytes, true, t);
        statGroup.add(statWritebacks, 1);
    }
    entry.valid = true;
    entry.dirty = false;
    entry.tag = tag;
    entry.fill = fill;
    validMask[set] |= std::uint16_t(1u << victim);
    touchLru(set, victim);
}

void
Cache::resetTiming()
{
    for (auto& bank : bankPorts)
        bank.reset();
    mshrPool.reset();
    // Fill ticks are timing state: the new epoch's bank clocks start
    // at zero, so ticks from the old epoch must not merge against it.
    for (Line& line : tagArray)
        line.fill = 0;
    statGroup.clear();
}

void
Cache::setActiveWays(unsigned active_ways)
{
    if (active_ways == 0 || active_ways > cacheParams.assoc)
        fatal("cache %s: cannot set %u active ways (assoc %u)",
              cacheParams.name.c_str(), active_ways, cacheParams.assoc);
    liveWays = active_ways;
}

InvalidateResult
Cache::invalidateWays(unsigned way_begin, unsigned way_end)
{
    if (way_end > cacheParams.assoc || way_begin > way_end)
        panic("cache %s: bad way range [%u, %u)",
              cacheParams.name.c_str(), way_begin, way_end);
    InvalidateResult result;
    for (unsigned s = 0; s < sets; ++s) {
        Line* base = setBase(s);
        for (unsigned w = way_begin; w < way_end; ++w) {
            Line& line = base[w];
            if (line.valid) {
                ++result.valid_lines;
                if (line.dirty)
                    ++result.dirty_lines;
            }
            // Line{} also drops the in-flight fill state with the
            // line, or a re-fetch after the carve-out would merge
            // against a pre-carve-out fill.
            line = Line{};
            validMask[s] &= std::uint16_t(~(1u << w));
        }
    }
    return result;
}

void
Cache::invalidateAll()
{
    invalidateWays(0, cacheParams.assoc);
}

void
Cache::touch(Addr addr, bool dirty)
{
    const Addr line = lineAddr(addr);
    const unsigned set = setIndex(line);
    const Addr tag = tagOf(line);
    int way = findWay(set, tag);
    if (way < 0) {
        way = int(victimWay(set));
        Line& entry = setBase(set)[unsigned(way)];
        entry.valid = true;
        entry.dirty = false;
        entry.tag = tag;
        entry.fill = 0;  // warmed in without timing side effects
        validMask[set] |= std::uint16_t(1u << unsigned(way));
    }
    Line& entry = setBase(set)[unsigned(way)];
    touchLru(set, unsigned(way));
    entry.dirty = entry.dirty || dirty;
}

bool
Cache::isCached(Addr addr) const
{
    const Addr line = lineAddr(addr);
    return findWay(setIndex(line), tagOf(line)) >= 0;
}

} // namespace eve
