#include "mem/cache.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/log.hh"

namespace eve
{

Cache::Cache(const CacheParams& params, MemObject* next_level)
    : cacheParams(params),
      next(next_level),
      clock(params.clock_ns),
      sets(unsigned(params.size_bytes /
                    (std::uint64_t(params.line_bytes) * params.assoc))),
      liveWays(params.assoc),
      tagArray(sets, std::vector<Line>(params.assoc)),
      mshrPool(params.mshrs),
      statGroup(params.name)
{
    if (!next)
        panic("cache %s: next level is null", params.name.c_str());
    if (sets == 0 || !isPow2(sets))
        fatal("cache %s: set count %u must be a nonzero power of two",
              params.name.c_str(), sets);
    bankPorts.reserve(params.banks);
    for (unsigned i = 0; i < params.banks; ++i)
        bankPorts.emplace_back(1);
}

int
Cache::findWay(unsigned set, Addr tag) const
{
    for (unsigned w = 0; w < liveWays; ++w) {
        const Line& line = tagArray[set][w];
        if (line.valid && line.tag == tag)
            return int(w);
    }
    return -1;
}

unsigned
Cache::victimWay(unsigned set) const
{
    unsigned victim = 0;
    std::uint64_t best = ~std::uint64_t{0};
    for (unsigned w = 0; w < liveWays; ++w) {
        const Line& line = tagArray[set][w];
        if (!line.valid)
            return w;
        if (line.lru < best) {
            best = line.lru;
            victim = w;
        }
    }
    return victim;
}

Tick
Cache::access(Addr addr, bool is_write, Tick t)
{
    const Addr line = lineAddr(addr);
    const unsigned set = setIndex(line);
    const Addr tag = tagOf(line);

    // Bank conflict: the bank serving this line is pipelined but can
    // start only one access per cycle.
    PipelinedUnits& bank = bankPorts[line % bankPorts.size()];
    const Tick start = bank.acquire(t, clock.period());
    const Tick hit_done = start + clock.toTicks(cacheParams.hit_latency);

    statGroup.add(is_write ? "writes" : "reads", 1);

    int way = findWay(set, tag);
    if (way >= 0) {
        // Hit — but if the line's fill is still in flight, the access
        // completes when the fill does.
        Line& entry = tagArray[set][unsigned(way)];
        entry.lru = ++lruClock;
        if (is_write)
            entry.dirty = true;
        Tick done = hit_done;
        auto it = outstanding.find(line);
        if (it != outstanding.end()) {
            if (it->second > hit_done) {
                done = it->second;
                statGroup.add("mshr_merges", 1);
            } else {
                outstanding.erase(it);
            }
        }
        statGroup.add("hits", 1);
        return done;
    }

    // Miss: allocate an MSHR (stalling if none are free), fetch the
    // line from the next level, then fill.
    statGroup.add("misses", 1);
    Tick fill = 0;
    const Tick want = hit_done;  // miss detected after the lookup
    const Tick grant = mshrPool.acquire(want, [&](Tick g) {
        fill = next->access(addr, false, g) + clock.period();
        return fill;
    });
    statGroup.add("mshr_wait_ticks", double(grant - want));

    // Victim handling: write back dirty victims to the next level
    // (bandwidth is charged there; the fill does not wait for it).
    // The writeback leaves when the miss is sent — issuing it at the
    // fill time would park a future reservation on the next level's
    // channel and stall earlier arrivals behind it.
    const unsigned victim = victimWay(set);
    Line& entry = tagArray[set][victim];
    if (entry.valid) {
        const Addr victim_line = entry.tag * sets + set;
        if (entry.dirty) {
            next->access(victim_line * cacheParams.line_bytes, true,
                         grant);
            statGroup.add("writebacks", 1);
        }
        // The victim's in-flight fill state dies with the line: a
        // stale entry would merge a later re-fetch of the same line
        // against the pre-eviction fill tick.
        outstanding.erase(victim_line);
    }

    entry.valid = true;
    entry.dirty = is_write;
    entry.tag = tag;
    entry.lru = ++lruClock;

    outstanding[line] = fill;
    // Keep the outstanding map from growing without bound: drop
    // entries that completed long before this access.
    if (outstanding.size() > 4 * cacheParams.mshrs) {
        for (auto it = outstanding.begin(); it != outstanding.end();) {
            if (it->second <= start)
                it = outstanding.erase(it);
            else
                ++it;
        }
    }

    // Stream prefetch: pull the next lines in parallel with the
    // demand miss (launched at miss detection, not at fill, and not
    // holding demand MSHRs — a dedicated prefetch queue).
    for (unsigned i = 1; i <= cacheParams.prefetch_lines; ++i)
        prefetchLine(line + i, want);

    return fill;
}

void
Cache::prefetchLine(Addr line, Tick t)
{
    const unsigned set = setIndex(line);
    const Addr tag = tagOf(line);
    if (findWay(set, tag) >= 0 || outstanding.count(line))
        return;
    statGroup.add("prefetches", 1);
    const Tick fill = next->access(line * cacheParams.line_bytes,
                                   false, t) + clock.period();
    const unsigned victim = victimWay(set);
    Line& entry = tagArray[set][victim];
    if (entry.valid) {
        const Addr victim_line = entry.tag * sets + set;
        if (entry.dirty) {
            next->access(victim_line * cacheParams.line_bytes, true, t);
            statGroup.add("writebacks", 1);
        }
        outstanding.erase(victim_line);
    }
    entry.valid = true;
    entry.dirty = false;
    entry.tag = tag;
    entry.lru = ++lruClock;
    outstanding[line] = fill;
}

void
Cache::resetTiming()
{
    for (auto& bank : bankPorts)
        bank.reset();
    mshrPool.reset();
    outstanding.clear();
    statGroup.clear();
}

void
Cache::setActiveWays(unsigned active_ways)
{
    if (active_ways == 0 || active_ways > cacheParams.assoc)
        fatal("cache %s: cannot set %u active ways (assoc %u)",
              cacheParams.name.c_str(), active_ways, cacheParams.assoc);
    liveWays = active_ways;
}

InvalidateResult
Cache::invalidateWays(unsigned way_begin, unsigned way_end)
{
    if (way_end > cacheParams.assoc || way_begin > way_end)
        panic("cache %s: bad way range [%u, %u)",
              cacheParams.name.c_str(), way_begin, way_end);
    InvalidateResult result;
    for (unsigned s = 0; s < sets; ++s) {
        for (unsigned w = way_begin; w < way_end; ++w) {
            Line& line = tagArray[s][w];
            if (line.valid) {
                ++result.valid_lines;
                if (line.dirty)
                    ++result.dirty_lines;
                // Drop in-flight fill state with the line, or a later
                // stream prefetch of the same line is suppressed and
                // the hit path merges against a pre-carve-out fill.
                outstanding.erase(line.tag * sets + s);
            }
            line = Line{};
        }
    }
    return result;
}

void
Cache::invalidateAll()
{
    invalidateWays(0, cacheParams.assoc);
    outstanding.clear();
}

void
Cache::touch(Addr addr, bool dirty)
{
    const Addr line = lineAddr(addr);
    const unsigned set = setIndex(line);
    const Addr tag = tagOf(line);
    int way = findWay(set, tag);
    if (way < 0) {
        way = int(victimWay(set));
        Line& entry = tagArray[set][unsigned(way)];
        entry.valid = true;
        entry.dirty = false;
        entry.tag = tag;
    }
    Line& entry = tagArray[set][unsigned(way)];
    entry.lru = ++lruClock;
    entry.dirty = entry.dirty || dirty;
}

bool
Cache::isCached(Addr addr) const
{
    const Addr line = lineAddr(addr);
    return findWay(setIndex(line), tagOf(line)) >= 0;
}

} // namespace eve
