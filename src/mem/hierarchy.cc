#include "mem/hierarchy.hh"

namespace eve
{

namespace
{

CacheParams
llcParams(const HierarchyParams& params)
{
    CacheParams p;
    p.name = "llc";
    p.size_bytes = 2 * 1024 * 1024;
    p.assoc = 16;
    p.hit_latency = 12;
    p.mshrs = params.llc_mshrs;
    p.banks = 8;
    p.clock_ns = params.clock_ns;
    p.prefetch_lines = params.llc_prefetch_lines;
    return p;
}

} // namespace

MemHierarchy::MemHierarchy(const HierarchyParams& params)
    : hierParams(params)
{
    dramChannel = std::make_unique<Dram>(params.dram);
    dramView = dramChannel.get();
    llcCache = std::make_unique<Cache>(llcParams(params),
                                       dramChannel.get());
    llcView = llcCache.get();
    llcTimingPort = llcView;
    buildPrivateLevels();
}

MemHierarchy::MemHierarchy(const HierarchyParams& params,
                           Cache& shared_llc, Dram& shared_dram,
                           MemObject* llc_gate)
    : hierParams(params)
{
    llcView = &shared_llc;
    dramView = &shared_dram;
    llcTimingPort = llc_gate ? llc_gate : llcView;
    buildPrivateLevels();
}

void
MemHierarchy::buildPrivateLevels()
{
    const HierarchyParams& params = hierParams;

    CacheParams l2_p;
    l2_p.name = "l2";
    l2_p.size_bytes = params.l2_vector_mode ? 256 * 1024 : 512 * 1024;
    l2_p.assoc = params.l2_vector_mode ? 4 : 8;
    l2_p.hit_latency = 8;
    l2_p.banks = 8;
    l2_p.mshrs = params.l2_mshrs;
    l2_p.clock_ns = params.clock_ns;
    l2Cache = std::make_unique<Cache>(l2_p, llcTimingPort);

    CacheParams l1d_p;
    l1d_p.name = "l1d";
    l1d_p.size_bytes = 32 * 1024;
    l1d_p.assoc = 4;
    l1d_p.hit_latency = 2;
    l1d_p.mshrs = 16;
    l1d_p.clock_ns = params.clock_ns;
    l1dCache = std::make_unique<Cache>(l1d_p, l2Cache.get());

    CacheParams l1i_p;
    l1i_p.name = "l1i";
    l1i_p.size_bytes = 32 * 1024;
    l1i_p.assoc = 4;
    l1i_p.hit_latency = 1;
    l1i_p.mshrs = 16;
    l1i_p.clock_ns = params.clock_ns;
    l1iCache = std::make_unique<Cache>(l1i_p, l2Cache.get());
}

void
MemHierarchy::resetTiming()
{
    if (dramChannel)
        dramChannel->resetTiming();
    if (llcCache)
        llcCache->resetTiming();
    l2Cache->resetTiming();
    l1dCache->resetTiming();
    l1iCache->resetTiming();
}

void
MemHierarchy::warmRange(Addr begin, Addr end)
{
    const unsigned line = l1dCache->params().line_bytes;
    for (Addr a = begin; a < end; a += line) {
        l1dCache->touch(a);
        l2Cache->touch(a);
        llcView->touch(a);
    }
}

SharedUncore::SharedUncore(const HierarchyParams& params)
{
    dramChannel = std::make_unique<Dram>(params.dram);
    llcCache = std::make_unique<Cache>(llcParams(params),
                                       dramChannel.get());
}

} // namespace eve
