/**
 * @file
 * Minimal JSON value and recursive-descent parser.
 *
 * Originally private to the result cache (parsing resultToJson
 * records back); promoted to common/ when the sweep service grew a
 * newline-delimited JSON wire protocol that needs the same parser.
 * Object members keep insertion order, so ordered payloads (axes
 * maps, stat maps) survive round trips; the serializing side lives
 * in common/stats.hh (jsonEscape, jsonNumber, statsToJson).
 */

#ifndef EVE_COMMON_JSON_HH
#define EVE_COMMON_JSON_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace eve
{

/** One parsed JSON value (a small tagged union over std types). */
struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Object, Array };
    Type type = Type::Null;
    bool boolean = false;
    double number = 0;
    std::string text;
    std::vector<std::pair<std::string, JsonValue>> members;
    std::vector<JsonValue> elements;

    /** First member named @p key, or nullptr (objects only). */
    const JsonValue* find(const std::string& key) const;

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isString() const { return type == Type::String; }
    bool isNumber() const { return type == Type::Number; }
};

/**
 * Parse @p text (one complete JSON value, nothing trailing) into
 * @p out. Returns false on malformed input; @p out is then
 * unspecified. Unicode escapes above the BMP are not supported
 * (jsonEscape never emits them).
 */
bool parseJson(const std::string& text, JsonValue& out);

/** Member @p key of @p obj as a number, or @p fallback. */
double jsonNumberField(const JsonValue& obj, const char* key,
                       double fallback = 0);

/** Member @p key of @p obj as a string, or @p fallback. */
std::string jsonStringField(const JsonValue& obj, const char* key,
                            const std::string& fallback = "");

} // namespace eve

#endif // EVE_COMMON_JSON_HH
