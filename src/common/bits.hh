/**
 * @file
 * Bit-manipulation helpers used by the SRAM model and the layout code.
 */

#ifndef EVE_COMMON_BITS_HH
#define EVE_COMMON_BITS_HH

#include <bit>
#include <cstdint>
#include <string_view>

#include "common/log.hh"

namespace eve
{

/** Extract bit @p pos (0 = LSB) from @p value. */
constexpr bool
bit(std::uint64_t value, unsigned pos)
{
    return (value >> pos) & 1;
}

/** Extract bits [lo, lo+width) from @p value. */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned lo, unsigned width)
{
    if (width >= 64)
        return value >> lo;
    return (value >> lo) & ((std::uint64_t{1} << width) - 1);
}

/** Return @p value with bit @p pos set to @p b. */
constexpr std::uint64_t
insertBit(std::uint64_t value, unsigned pos, bool b)
{
    std::uint64_t mask = std::uint64_t{1} << pos;
    return b ? (value | mask) : (value & ~mask);
}

/** True iff @p v is a power of two (zero is not). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Integer log2 of a power of two. */
constexpr unsigned
log2i(std::uint64_t v)
{
    return static_cast<unsigned>(std::bit_width(v) - 1);
}

/** Divide rounding up. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/**
 * 64-bit FNV-1a over a byte string. Stable across platforms and
 * processes — used for durable content keys (config fingerprints,
 * result-cache keys), where std::hash's per-process seeding would
 * break resumability.
 */
constexpr std::uint64_t
fnv1a64(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace eve

#endif // EVE_COMMON_BITS_HH
