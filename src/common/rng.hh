/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Workload generators and property tests need reproducible randomness
 * that does not depend on the standard library's unspecified
 * distributions; this generator is seeded explicitly everywhere.
 */

#ifndef EVE_COMMON_RNG_HH
#define EVE_COMMON_RNG_HH

#include <cstdint>

namespace eve
{

/** xoshiro256** generator with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 expansion of the seed into the full state.
        std::uint64_t x = seed;
        for (auto& word : state) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next 64 uniformly random bits. */
    std::uint64_t
    next()
    {
        auto rotl = [](std::uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform value in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform signed 32-bit value. */
    std::int32_t i32() { return static_cast<std::int32_t>(next()); }

    /** Uniform value in [lo, hi]. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

  private:
    std::uint64_t state[4] = {};
};

} // namespace eve

#endif // EVE_COMMON_RNG_HH
