/**
 * @file
 * Fundamental scalar types shared across the simulator.
 *
 * The simulator keeps two notions of time: *cycles* in a component's
 * own clock domain, and *ticks* in a global picosecond-resolution
 * timebase used when components in different clock domains (e.g. an
 * EVE-16 engine running at a degraded cycle time next to a 1.025 ns
 * core) must exchange timestamps.
 */

#ifndef EVE_COMMON_TYPES_HH
#define EVE_COMMON_TYPES_HH

#include <cstdint>

namespace eve
{

/** Byte address in a workload's flat address space. */
using Addr = std::uint64_t;

/** Global time in picoseconds. */
using Tick = std::uint64_t;

/** Time expressed in a component's own clock cycles. */
using Cycles = std::uint64_t;

/** Number of picoseconds in one nanosecond. */
constexpr Tick ticksPerNs = 1000;

/**
 * A clock domain converting between cycles and ticks.
 *
 * Components capture a ClockDomain by value; it is a pure conversion
 * helper, not a scheduler.
 */
class ClockDomain
{
  public:
    /** Construct a domain with the given cycle time in nanoseconds. */
    explicit constexpr ClockDomain(double period_ns = 1.0)
        : periodTicks(static_cast<Tick>(period_ns * ticksPerNs))
    {}

    /** Cycle period in ticks (picoseconds). */
    constexpr Tick period() const { return periodTicks; }

    /** Cycle period in nanoseconds. */
    constexpr double periodNs() const
    {
        return static_cast<double>(periodTicks) / ticksPerNs;
    }

    /** Convert a cycle count to ticks. */
    constexpr Tick toTicks(Cycles c) const { return c * periodTicks; }

    /** Convert ticks to whole cycles, rounding up. */
    constexpr Cycles
    toCycles(Tick t) const
    {
        return (t + periodTicks - 1) / periodTicks;
    }

  private:
    Tick periodTicks;
};

} // namespace eve

#endif // EVE_COMMON_TYPES_HH
