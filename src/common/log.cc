#include "common/log.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace eve
{

namespace
{

std::atomic<bool> informEnabled{true};

// Serializes sink writes so concurrent Runner jobs cannot interleave
// partial lines. Each message is formatted before the lock is taken.
std::mutex&
logMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

std::string
vformat(const char* fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

void
panic(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "panic: %s\n", msg.c_str());
    }
    std::abort();
}

void
fatal(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    }
    std::exit(1);
}

void
warn(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char* fmt, ...)
{
    if (!informEnabled.load(std::memory_order_relaxed))
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
setInformEnabled(bool enabled)
{
    informEnabled.store(enabled, std::memory_order_relaxed);
}

} // namespace eve
